# Tier-1 verification plus the race-detection gate for the parallel
# experiment harness. `make verify` is the pre-merge check.

GO ?= go

.PHONY: verify build test vet race race-harness chaos bench results profile

# Tier-1: build + tests, then vet, then the worker pool's determinism
# test under the race detector (fast, targeted), then the chaos soak.
verify: build test vet race-harness chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full race sweep across every package (slow: includes the network soak
# tests).
race:
	$(GO) test -race ./...

# The harness worker pool and the sim grids it drives, under -race.
# This includes the determinism regression test that compares
# parallel=1 against parallel=8 byte for byte.
race-harness:
	$(GO) test -race ./internal/harness/... ./internal/sim/...

# The E24 chaos soak (random fail/repair timeline + invariant watchdog)
# under the race detector with a pinned scheduler width, so the step
# loop's monitor hook is exercised with real goroutine interleaving.
chaos:
	GOMAXPROCS=4 $(GO) test -race -run 'TestChaosSoak|TestSweepSurvives|TestSweepPointTimeout' ./internal/sim/

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Regenerate the quick-scale result tables checked into the repo.
results:
	$(GO) run ./cmd/crbench -exp all -scale quick -quiet > results_quick.txt

# Profile a representative sweep (E5 buffer-depth grid, serial mode for
# a clean call tree). Inspect with `go tool pprof profile/cpu.out` or
# `go tool trace profile/trace.out`.
PROFILE_EXP ?= E5
profile:
	mkdir -p profile
	$(GO) run ./cmd/crbench -exp $(PROFILE_EXP) -scale quick -quiet \
		-cpuprofile profile/cpu.out -memprofile profile/mem.out -trace profile/trace.out
	$(GO) tool pprof -top -nodecount=15 profile/cpu.out
