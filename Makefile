# Tier-1 verification plus the race-detection gate for the parallel
# experiment harness. `make verify` is the pre-merge check.

GO ?= go

.PHONY: verify build test vet lint staticcheck race race-harness race-sharded chaos fuzz bench bench-kernel bench-sharded bench-buffers alloc-gate snapshot-pin results profile

# Tier-1: build + tests, then vet, then the custom static-invariant
# suite, then the cycle-kernel allocation gate, then the worker pool's
# determinism test under the race detector (fast, targeted), then the
# sharded-kernel race gate, then the checkpoint/restore resume pin,
# then the chaos soak.
verify: build test vet lint alloc-gate race-harness race-sharded snapshot-pin chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own analyzers (internal/analysis via cmd/crlint): map-range
# determinism, wall-clock purity, seed-derivation discipline and
# hot-path allocation freedom. Must be clean at merge; justify real
# escapes with //cr: annotations instead of weakening the analyzers.
# The same binary also works as `go vet -vettool` (see DESIGN.md §6).
lint:
	$(GO) run ./cmd/crlint ./...

# Optional deep lint: staticcheck, version-pinned so results are
# reproducible. Gated on tool availability: the CI/dev container may be
# offline with an empty module cache (no x/tools), in which case the
# target skips with a note instead of failing — `make lint`'s custom
# analyzers remain the hard merge gate either way. When the probe
# succeeds, staticcheck findings do fail the target.
STATICCHECK_VERSION ?= v0.4.7
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... ; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline module cache); skipped — make lint still gates"; \
	fi

# Full race sweep across every package (slow: includes the network soak
# tests).
race:
	$(GO) test -race ./...

# The harness worker pool and the sim grids it drives, under -race.
# This includes the determinism regression test that compares
# parallel=1 against parallel=8 byte for byte.
race-harness:
	$(GO) test -race ./internal/harness/... ./internal/sim/...

# The sharded cycle kernel under the race detector with a pinned
# scheduler width: the serial-vs-sharded byte-identity pin, cross-mode
# snapshot restore, sharded reset, and the full-harness run (fault
# timeline + hazard + watchdog + sampler attached) at shard counts
# including one that does not divide the node count. Every parallel
# phase and merge barrier executes with real goroutine interleaving.
race-sharded:
	GOMAXPROCS=4 $(GO) test -race -count=1 \
		-run 'TestSharded|TestShardPartition' \
		./internal/network/ ./internal/sim/

# The chaos soaks (random fail/repair timeline, the load-coupled hazard
# process, and the graceful-degradation controller's recovery arc, all
# with the invariant watchdog) under the race detector with a pinned
# scheduler width, so the step loop's monitor hook is exercised with
# real goroutine interleaving.
chaos:
	GOMAXPROCS=4 $(GO) test -race -run 'TestChaosSoak|TestSweepSurvives|TestSweepPointTimeout|TestDegradeControllerRecovers|TestHazardNetworkDeterminism' ./internal/sim/ ./internal/network/

# Short-budget fuzz pass over the checkpoint-container reader: arbitrary
# bytes must yield either a valid canonical container or a *FormatError,
# never a panic or a partial payload. CI runs this budget on every
# merge; crank FUZZTIME locally for a deeper soak.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/snapshot/ -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) -run '^FuzzDecode$$'

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Deterministic-resume pin: checkpoint at cycle K, restore, continue —
# byte-identical to an unbroken run, at the network, replayer, service
# and binary (crsimd) layers, under the race detector and uncached so
# the guarantee cannot silently go stale.
snapshot-pin:
	$(GO) test -race -count=1 \
		-run 'TestResume|TestServiceResume|TestReplayerPosition|TestResetAfterRestore' \
		./internal/network/ ./internal/sim/ ./internal/workload/ ./cmd/crsimd/

# Allocation-regression gate: after warmup, one loaded simulation cycle
# (traffic + step + drain) must not allocate. Run uncached so it cannot
# silently go stale.
alloc-gate:
	$(GO) test ./internal/network/ -run TestSteadyStateZeroAlloc -count=1

# Cycle-kernel microbenchmarks (idle / low-load / saturated step cost on
# a 16x16 torus), regenerating BENCH_PR4.json. The baseline block pins
# the pre-refactor numbers (commit 2ec2b68, same machine class) so the
# artifact always carries the before/after comparison.
bench-kernel:
	@mkdir -p profile
	$(GO) test ./internal/network/ -run '^$$' -bench BenchmarkStep -benchmem -count=1 \
		| tee profile/bench_kernel.txt
	@awk 'BEGIN { \
		print "{"; \
		print "  \"schema\": \"kernel-bench/1\","; \
		print "  \"benchmark\": \"internal/network BenchmarkStep* (16x16 CR torus, 2 VCs)\","; \
		print "  \"baseline_commit\": \"2ec2b68\","; \
		print "  \"baseline\": ["; \
		print "    {\"name\": \"StepIdle\", \"ns_per_op\": 32167, \"bytes_per_op\": 0, \"allocs_per_op\": 0},"; \
		print "    {\"name\": \"StepLowLoad\", \"ns_per_op\": 86231, \"bytes_per_op\": 19112, \"allocs_per_op\": 180},"; \
		print "    {\"name\": \"StepSaturated\", \"ns_per_op\": 197583, \"bytes_per_op\": 70100, \"allocs_per_op\": 533}"; \
		print "  ],"; \
		print "  \"current\": ["; \
	} \
	/^BenchmarkStep/ { \
		name = $$1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$$/, "", name); \
		if (n++) printf ",\n"; \
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			name, $$3, $$5, $$7; \
	} \
	END { print "\n  ]\n}" }' profile/bench_kernel.txt > BENCH_PR4.json
	@cat BENCH_PR4.json

# Sharded-kernel benchmarks (serial vs sharded step cost at 64x64,
# 256x256 and 1024x1024), regenerating BENCH_PR8.json. The rows record
# whatever the current host measures; the artifact's host block captures
# GOMAXPROCS so single-core runs (where sharding is pure overhead) are
# distinguishable from multi-core ones (where 256x256 saturated should
# approach GOMAXPROCS-way speedup).
bench-sharded:
	@mkdir -p profile
	$(GO) test ./internal/network/ -run '^$$' -bench BenchmarkStepShard -benchmem -count=1 -timeout 60m \
		| tee profile/bench_sharded.txt
	@awk 'BEGIN { \
		print "{"; \
		print "  \"schema\": \"kernel-bench/1\","; \
		print "  \"benchmark\": \"internal/network BenchmarkStepShard (CR torus; k64/k256 at 0.9 load, k1024 at 0.05)\","; \
		print "  \"gomaxprocs\": "'"$$(nproc)"'","; \
		print "  \"current\": ["; \
	} \
	/^BenchmarkStep/ { \
		name = $$1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$$/, "", name); \
		if (n++) printf ",\n"; \
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			name, $$3, $$5, $$7; \
	} \
	END { print "\n  ]\n}" }' profile/bench_sharded.txt > BENCH_PR8.json
	@cat BENCH_PR8.json

# Buffer-organization benchmarks (step cost fifo vs damq vs shared at a
# saturated 64x64 CR torus, serial and sharded), regenerating
# BENCH_PR9.json. The pooled organizations pay free-list pointer chasing
# and the granted-window ledger per head/tail against the static arena's
# modulo indexing; the sharded rows add the window advertisements riding
# the credit mailbox matrix.
bench-buffers:
	@mkdir -p profile
	$(GO) test ./internal/network/ -run '^$$' -bench BenchmarkStepBufferOrg -benchmem -count=1 -timeout 30m \
		| tee profile/bench_buforg.txt
	@awk 'BEGIN { \
		print "{"; \
		print "  \"schema\": \"kernel-bench/1\","; \
		print "  \"benchmark\": \"internal/network BenchmarkStepBufferOrg (64x64 CR torus, 0.9 load)\","; \
		print "  \"gomaxprocs\": "'"$$(nproc)"'","; \
		print "  \"current\": ["; \
	} \
	/^BenchmarkStep/ { \
		name = $$1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$$/, "", name); \
		if (n++) printf ",\n"; \
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			name, $$3, $$5, $$7; \
	} \
	END { print "\n  ]\n}" }' profile/bench_buforg.txt > BENCH_PR9.json
	@cat BENCH_PR9.json

# Regenerate the quick-scale result tables checked into the repo.
results:
	$(GO) run ./cmd/crbench -exp all -scale quick -quiet > results_quick.txt

# Profile a representative sweep (E5 buffer-depth grid, serial mode for
# a clean call tree). Inspect with `go tool pprof profile/cpu.out` or
# `go tool trace profile/trace.out`.
PROFILE_EXP ?= E5
profile:
	mkdir -p profile
	$(GO) run ./cmd/crbench -exp $(PROFILE_EXP) -scale quick -quiet \
		-cpuprofile profile/cpu.out -memprofile profile/mem.out -trace profile/trace.out
	$(GO) tool pprof -top -nodecount=15 profile/cpu.out
