// Command crsimd runs a simulation as a long-lived service: a network
// fed by a trace-driven workload, stepping continuously, checkpointing
// its complete state on an interval and on SIGINT/SIGTERM, and
// restoring from the latest checkpoint on start. Killing the process
// and restarting it is therefore lossless — the resumed run is
// byte-identical to one that never stopped (the sim.Service resume
// guarantee), which the final stream-hash line makes checkable.
//
// With -listen the service exposes live observability over HTTP:
// /status (JSON summary), /metrics (current registry values, text) and
// /series (sampled time-series, JSON).
//
// A load-coupled failure process (-hazard-lambda0/-hazard-alpha) and
// the graceful-degradation controller (-slo-p95) turn the daemon into
// an availability testbed: /status reports the controller state
// (healthy/degraded/shedding), shed counts, hazard fault events and
// the served-traffic availability ratio.
//
// Examples:
//
//	crsimd -k 8 -workload diurnal -cycles 50000 -checkpoint-dir ckpt
//	crsimd -k 8 -workload hotspot -protocol fcr -fault-rate 1e-4 \
//	    -checkpoint-dir ckpt -checkpoint-every 5000 -listen 127.0.0.1:8080
//	crsimd -k 8 -protocol fcr -hazard-lambda0 1e-6 -hazard-alpha 6 \
//	    -slo-p95 800 -fail-budget 4 -cycles 100000 -listen 127.0.0.1:8080
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/sim"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
	"crnet/internal/traffic"
	"crnet/internal/workload"

	"flag"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintf(os.Stderr, "crsimd: %v\n", err)
		os.Exit(2)
	}
}

// generators maps -workload names to trace generators.
var generators = map[string]func(workload.TraceSpec) *workload.Trace{
	"uniform":   workload.GenUniform,
	"bursty":    workload.GenBursty,
	"diurnal":   workload.GenDiurnal,
	"hotspot":   workload.GenHotspot,
	"incast":    workload.GenIncast,
	"permstorm": workload.GenPermutationStorm,
}

// run is main with its dependencies injected: args and stdout as in the
// other binaries, plus the signal channel so tests can deliver a
// SIGTERM and observe the checkpoint-and-exit path without killing the
// test process.
func run(args []string, stdout io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("crsimd", flag.ContinueOnError)
	var (
		topoName  = fs.String("topo", "torus", "topology: torus, mesh, hypercube")
		k         = fs.Int("k", 8, "radix for torus/mesh")
		dims      = fs.Int("dims", 2, "dimensions (or hypercube order)")
		protocol  = fs.String("protocol", "cr", "protocol: cr or fcr")
		faultRate = fs.Float64("fault-rate", 0, "transient corruption probability per flit-hop")

		hazardLambda0 = fs.Float64("hazard-lambda0", 0, "base link failure intensity per cycle for the load-coupled hazard (0: hazard off)")
		hazardAlpha   = fs.Float64("hazard-alpha", 0, "load-coupling exponent: failure intensity = lambda0 * exp(alpha * utilization)")
		hazardMTTR    = fs.Float64("hazard-mttr", 2000, "mean link repair time in cycles for hazard failures")

		sloP95     = fs.Int64("slo-p95", 0, "delivered-latency p95 SLO in cycles; enables the graceful-degradation controller (0: off)")
		sloWindow  = fs.Int64("slo-window", 512, "degradation control-window length in cycles")
		failBudget = fs.Int64("fail-budget", 0, "fault events per window that breach the SLO (0: failure-density signal off)")

		workloadName = fs.String("workload", "uniform", "trace workload: uniform, bursty, diurnal, hotspot, incast, permstorm")
		tracePath    = fs.String("trace", "", "replay a binary trace file instead of generating one")
		load         = fs.Float64("load", 0.4, "offered load (fraction of capacity)")
		msgLen       = fs.Int("msglen", 16, "message length in flits")
		span         = fs.Int64("span", 20000, "generated trace span in cycles (loops forever)")
		seed         = fs.Uint64("seed", 1, "seed for the network and the trace generator")

		cycles    = fs.Int64("cycles", 0, "stop once the cycle counter reaches this (0: run until signal)")
		batch     = fs.Int64("batch", 256, "cycles simulated per step batch (checkpoint/serve granularity)")
		ckptDir   = fs.String("checkpoint-dir", "", "checkpoint directory (empty: checkpointing off)")
		ckptEvery = fs.Int64("checkpoint-every", 10000, "checkpoint interval in cycles")

		listen      = fs.String("listen", "", "serve /status /metrics /series on this address")
		sampleEvery = fs.Int64("sample-every", 100, "metrics sampling interval in cycles (0: off)")
		sampleCap   = fs.Int("sample-cap", 512, "sample ring capacity")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var topo topology.Topology
	switch *topoName {
	case "torus":
		topo = topology.NewTorus(*k, *dims)
	case "mesh":
		topo = topology.NewMesh(*k, *dims)
	case "hypercube":
		topo = topology.NewHypercube(*dims)
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}

	cfg := network.Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		TransientRate: *faultRate,
		Seed:          *seed,
		Check:         true,
	}
	switch *protocol {
	case "cr":
		cfg.Protocol = core.CR
	case "fcr":
		cfg.Protocol = core.FCR
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	if *hazardLambda0 > 0 {
		cfg.Hazard = &faults.HazardSpec{
			LinkLambda0: *hazardLambda0,
			Alpha:       *hazardAlpha,
			LinkMTTR:    *hazardMTTR,
			Seed:        *seed,
		}
	}

	var trace *workload.Trace
	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			return err
		}
		if trace, err = workload.DecodeTrace(*tracePath, data); err != nil {
			return err
		}
		if trace.Nodes != topo.Nodes() {
			return fmt.Errorf("trace %q has %d nodes, topology has %d", *tracePath, trace.Nodes, topo.Nodes())
		}
	} else {
		gen, ok := generators[*workloadName]
		if !ok {
			return fmt.Errorf("unknown workload %q", *workloadName)
		}
		spec := workload.TraceFor(topo, *load, *msgLen, *span, *seed, traffic.CapacityFlitsPerNode(topo))
		trace = gen(spec)
	}

	var degrade *sim.DegradeConfig
	if *sloP95 > 0 {
		degrade = &sim.DegradeConfig{
			LatencySLO: *sloP95,
			Window:     *sloWindow,
			FailBudget: *failBudget,
		}
	}
	svc, err := sim.NewService(sim.ServiceConfig{
		Net:         cfg,
		Trace:       trace,
		Loop:        true,
		SampleEvery: *sampleEvery,
		SampleCap:   *sampleCap,
		Degrade:     degrade,
	})
	if err != nil {
		return err
	}
	srv := &server{svc: svc}

	// Attach to the latest checkpoint, if any.
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o777); err != nil {
			return err
		}
		if path, cycle, ok := snapshot.Latest(*ckptDir); ok {
			_, payload, err := snapshot.ReadFile(path)
			if err != nil {
				return fmt.Errorf("restore %s: %w", path, err)
			}
			if err := svc.Restore(payload); err != nil {
				return fmt.Errorf("restore %s: %w", path, err)
			}
			fmt.Fprintf(stdout, "restored cycle=%d from %s\n", cycle, path)
		}
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
		go http.Serve(ln, srv.mux()) //nolint:errcheck — dies with the process
	}

	checkpoint := func(why string) error {
		if *ckptDir == "" {
			return nil
		}
		cycle := svc.Cycle()
		path := filepath.Join(*ckptDir, snapshot.FileName(cycle))
		if err := snapshot.WriteFile(path, cycle, svc.Save()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "checkpoint cycle=%d reason=%s file=%s\n", cycle, why, path)
		return nil
	}

	lastCkpt := svc.Cycle()
	for {
		select {
		case sig := <-stop:
			fmt.Fprintf(stdout, "signal %v: checkpointing and exiting\n", sig)
			return checkpoint("signal")
		default:
		}
		n := *batch
		if *cycles > 0 {
			if left := *cycles - svc.Cycle(); left < n {
				n = left
			}
		}
		if n <= 0 {
			break
		}
		srv.mu.Lock()
		err := svc.Step(n)
		srv.mu.Unlock()
		if err != nil {
			// Preserve the wreckage for post-mortem before reporting.
			if cerr := checkpoint("unhealthy"); cerr != nil {
				return fmt.Errorf("%w (checkpoint also failed: %v)", err, cerr)
			}
			return err
		}
		if *ckptEvery > 0 && svc.Cycle()-lastCkpt >= *ckptEvery {
			if err := checkpoint("interval"); err != nil {
				return err
			}
			lastCkpt = svc.Cycle()
		}
	}

	if err := checkpoint("final"); err != nil {
		return err
	}
	st := svc.Status()
	fmt.Fprintf(stdout, "done cycle=%d delivered=%d corrupt=%d avg_latency=%.2f p95=%d stream_hash=%s\n",
		st.Cycle, st.Delivered, st.Corrupt, st.AvgLatency, st.P95Latency, st.StreamHash)
	if st.Degrade != "" {
		fmt.Fprintf(stdout, "degrade state=%s shed=%d breached_windows=%d fault_events=%d availability=%.6f\n",
			st.Degrade, st.Shed, st.BreachedWindows, st.FaultEvents, st.Availability)
	}
	return nil
}

// server wraps the service with the mutex shared between the step loop
// and the HTTP handlers: batches step inside the lock, handlers read
// inside it, so every response is a consistent between-batches view.
type server struct {
	mu  sync.Mutex
	svc *sim.Service
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/series", s.handleSeries)
	return mux
}

func (s *server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.svc.Status()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st) //nolint:errcheck — client went away
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	reg := s.svc.Registry()
	if reg == nil {
		s.mu.Unlock()
		http.Error(w, "sampling disabled (-sample-every 0)", http.StatusNotFound)
		return
	}
	names, values := reg.Names(), reg.Sample()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for i, name := range names {
		fmt.Fprintf(w, "%s %g\n", name, values[i])
	}
}

func (s *server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	series := s.svc.Series()
	s.mu.Unlock()
	if series == nil {
		http.Error(w, "sampling disabled (-sample-every 0)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(series) //nolint:errcheck — client went away
}
