package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/sim"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
	"crnet/internal/workload"
)

func testNetConfig() network.Config {
	return network.Config{
		Topo:     topology.NewTorus(4, 2),
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Seed:     2,
		Check:    true,
	}
}

var hashLine = regexp.MustCompile(`stream_hash=([0-9a-f]{16})`)

func runArgs(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, make(chan os.Signal)); err != nil {
		t.Fatalf("run %v: %v\n%s", args, err, out.String())
	}
	return out.String()
}

// TestResumeMatchesUnbroken is the binary-level smoke test of the whole
// subsystem: run to 600 cycles with checkpoints, start again with a
// higher target (restores from the final checkpoint), and the combined
// run's delivery stream hash equals a run that never stopped.
func TestResumeMatchesUnbroken(t *testing.T) {
	base := []string{"-k", "4", "-workload", "hotspot", "-protocol", "fcr",
		"-fault-rate", "5e-4", "-span", "500", "-seed", "11",
		"-batch", "100", "-checkpoint-every", "300", "-sample-every", "50"}

	dir := t.TempDir()
	out1 := runArgs(t, append(base, "-cycles", "600", "-checkpoint-dir", dir)...)
	if !strings.Contains(out1, "reason=final") {
		t.Fatalf("first run wrote no final checkpoint:\n%s", out1)
	}
	out2 := runArgs(t, append(base, "-cycles", "1200", "-checkpoint-dir", dir)...)
	if !strings.Contains(out2, "restored cycle=600") {
		t.Fatalf("second run did not restore:\n%s", out2)
	}

	unbroken := runArgs(t, append(base, "-cycles", "1200", "-checkpoint-dir", t.TempDir())...)
	h2, hu := hashLine.FindStringSubmatch(out2), hashLine.FindStringSubmatch(unbroken)
	if h2 == nil || hu == nil {
		t.Fatalf("missing stream_hash lines:\n%s\n%s", out2, unbroken)
	}
	if h2[1] != hu[1] {
		t.Fatalf("resumed stream hash %s != unbroken %s", h2[1], hu[1])
	}
}

// TestSignalCheckpointsAndExits drives the daemon loop (no cycle
// bound), waits for an interval checkpoint, then delivers a SIGTERM and
// expects a clean exit with a signal checkpoint on disk.
func TestSignalCheckpointsAndExits(t *testing.T) {
	dir := t.TempDir()
	stop := make(chan os.Signal, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-k", "4", "-workload", "bursty", "-seed", "3",
			"-batch", "50", "-checkpoint-dir", dir, "-checkpoint-every", "200"},
			&out, stop)
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, ok := snapshot.Latest(dir); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no interval checkpoint appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("run after SIGTERM: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reason=signal") {
		t.Fatalf("no signal checkpoint logged:\n%s", out.String())
	}
	if _, _, ok := snapshot.Latest(dir); !ok {
		t.Fatal("no checkpoint on disk after SIGTERM")
	}
}

// TestTraceFileReplay feeds a pre-materialized binary trace file.
func TestTraceFileReplay(t *testing.T) {
	trace := workload.GenDiurnal(workload.TraceSpec{
		Nodes: 16, Cycles: 400, Rate: 0.05, MsgLen: 8, Seed: 4,
	})
	path := filepath.Join(t.TempDir(), "diurnal.crtrace")
	if err := os.WriteFile(path, trace.EncodeBinary(), 0o666); err != nil {
		t.Fatal(err)
	}
	out := runArgs(t, "-k", "4", "-trace", path, "-cycles", "800", "-sample-every", "0")
	if m := hashLine.FindStringSubmatch(out); m == nil {
		t.Fatalf("no summary line:\n%s", out)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "klein-bottle"},
		{"-protocol", "tcp"},
		{"-workload", "nosuch"},
		{"-trace", "/nonexistent/file"},
	} {
		var out bytes.Buffer
		if err := run(args, &out, make(chan os.Signal)); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestHTTPEndpoints exercises the live observability mux against a
// stepping service.
func TestHTTPEndpoints(t *testing.T) {
	svc, err := sim.NewService(sim.ServiceConfig{
		Net: testNetConfig(),
		Trace: workload.GenUniform(workload.TraceSpec{
			Nodes: 16, Cycles: 300, Rate: 0.05, MsgLen: 8, Seed: 2,
		}),
		Loop:        true,
		SampleEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Step(500); err != nil {
		t.Fatal(err)
	}
	srv := &server{svc: svc}
	mux := srv.mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var st sim.ServiceStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, rec.Body.String())
	}
	if st.Cycle != 500 || st.Delivered == 0 {
		t.Fatalf("/status = %+v, want cycle 500 and deliveries", st)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "injected_flits") {
		t.Fatalf("/metrics missing counters:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/series", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "injected_flits") {
		t.Fatalf("/series = %d:\n%s", rec.Code, rec.Body.String())
	}
}

// TestResumeWithHazardDegradeFlags is the binary-level resume pin for
// the availability subsystems: with the load-coupled hazard and the
// degradation controller both enabled by flags, a checkpointed-and-
// restarted run reproduces the unbroken run's delivery stream hash and
// final degradation line exactly.
func TestResumeWithHazardDegradeFlags(t *testing.T) {
	base := []string{"-k", "4", "-workload", "uniform", "-protocol", "fcr",
		"-load", "0.5", "-span", "500", "-seed", "19",
		"-hazard-lambda0", "2e-5", "-hazard-alpha", "5", "-hazard-mttr", "200",
		"-slo-p95", "250", "-slo-window", "128", "-fail-budget", "4",
		"-batch", "100", "-checkpoint-every", "300", "-sample-every", "50"}

	dir := t.TempDir()
	runArgs(t, append(base, "-cycles", "600", "-checkpoint-dir", dir)...)
	out2 := runArgs(t, append(base, "-cycles", "2000", "-checkpoint-dir", dir)...)
	if !strings.Contains(out2, "restored cycle=600") {
		t.Fatalf("second run did not restore:\n%s", out2)
	}
	unbroken := runArgs(t, append(base, "-cycles", "2000", "-checkpoint-dir", t.TempDir())...)

	h2, hu := hashLine.FindStringSubmatch(out2), hashLine.FindStringSubmatch(unbroken)
	if h2 == nil || hu == nil {
		t.Fatalf("missing stream_hash lines:\n%s\n%s", out2, unbroken)
	}
	if h2[1] != hu[1] {
		t.Fatalf("resumed stream hash %s != unbroken %s", h2[1], hu[1])
	}

	degLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "degrade state=") {
				return line
			}
		}
		t.Fatalf("no degrade line:\n%s", out)
		return ""
	}
	if d2, du := degLine(out2), degLine(unbroken); d2 != du {
		t.Fatalf("degradation summary diverged:\n  resumed:  %s\n  unbroken: %s", d2, du)
	}
	if !strings.Contains(degLine(unbroken), "fault_events=") {
		t.Fatal("degrade line missing fault_events")
	}
}
