package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTorusSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-topo", "torus", "-k", "4", "-dims", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"topology:      4x4 torus",
		"nodes:         16",
		"degree:        4 ports/node",
		"diameter:      4 hops",
		"capacity:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRouteDisplay(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-topo", "torus", "-k", "4", "-from", "0", "-to", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "route 0 -> 5 (distance 2)") {
		t.Fatalf("route header missing:\n%s", out)
	}
	if !strings.Contains(out, "DOR -> port") || !strings.Contains(out, "adaptive ports:") {
		t.Fatalf("per-hop lines missing:\n%s", out)
	}
	if !strings.Contains(out, "5: destination") {
		t.Fatalf("route does not reach destination:\n%s", out)
	}
	// A distance-2 route: header + 2 hop lines + destination line.
	routePart := out[strings.Index(out, "route 0 -> 5"):]
	if lines := strings.Count(strings.TrimSpace(routePart), "\n"); lines != 3 {
		t.Fatalf("expected 3 route lines after header, got %d:\n%s", lines, routePart)
	}
}

func TestRunMeshAndHypercube(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-topo", "mesh", "-k", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes:         16") {
		t.Fatalf("mesh summary wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-topo", "hypercube", "-dims", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes:         16") {
		t.Fatalf("hypercube summary wrong:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-topo", "nope"}, &buf); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := run([]string{"-k", "4", "-from", "0", "-to", "99"}, &buf); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}
