// Command crtopo inspects a topology: size, diameter, average distance,
// uniform capacity, and optionally the dimension-order route and minimal
// port sets between two nodes — a debugging aid for routing work.
//
// Examples:
//
//	crtopo -topo torus -k 16 -dims 2
//	crtopo -topo torus -k 8 -dims 2 -from 0 -to 36
package main

import (
	"flag"
	"fmt"
	"os"

	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

func main() {
	var (
		topoName = flag.String("topo", "torus", "topology: torus, mesh, hypercube")
		k        = flag.Int("k", 8, "radix for torus/mesh")
		dims     = flag.Int("dims", 2, "dimensions (or hypercube order)")
		from     = flag.Int("from", -1, "source node for route display")
		to       = flag.Int("to", -1, "destination node for route display")
	)
	flag.Parse()

	var topo topology.Topology
	switch *topoName {
	case "torus":
		topo = topology.NewTorus(*k, *dims)
	case "mesh":
		topo = topology.NewMesh(*k, *dims)
	case "hypercube":
		topo = topology.NewHypercube(*dims)
	default:
		fmt.Fprintf(os.Stderr, "crtopo: unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	fmt.Printf("topology:      %s\n", topo.Name())
	fmt.Printf("nodes:         %d\n", topo.Nodes())
	fmt.Printf("degree:        %d ports/node\n", topo.Degree())
	fmt.Printf("diameter:      %d hops\n", topo.Diameter())
	fmt.Printf("avg distance:  %.3f hops (distinct pairs)\n", topo.AverageDistance())
	fmt.Printf("capacity:      %.4f flits/node/cycle (uniform traffic)\n", traffic.CapacityFlitsPerNode(topo))

	if *from < 0 || *to < 0 {
		return
	}
	src, dst := topology.NodeID(*from), topology.NodeID(*to)
	if int(src) >= topo.Nodes() || int(dst) >= topo.Nodes() {
		fmt.Fprintln(os.Stderr, "crtopo: node out of range")
		os.Exit(2)
	}
	fmt.Printf("\nroute %d -> %d (distance %d):\n", src, dst, topo.Distance(src, dst))

	// Dimension-order walk with the candidate sets at each hop.
	alg := routing.DOR{}
	adaptive := routing.MinimalAdaptive{}
	cur := src
	inPort, inVC := topology.InvalidPort, -1
	for cur != dst {
		req := routing.Request{
			Topo: topo, Cur: cur, Dst: dst,
			InPort: inPort, InVC: inVC, NumVCs: alg.MinVCs(topo),
		}
		dor := alg.Route(req, nil)
		req.NumVCs = 1
		min := adaptive.Route(req, nil)
		if len(dor) == 0 {
			fmt.Printf("  %4d: no DOR candidate (unreachable)\n", cur)
			break
		}
		c := dor[0]
		next, _ := topo.Neighbor(cur, c.Port)
		fmt.Printf("  %4d: DOR -> port %d vc %d (to %d); adaptive ports: %s\n",
			cur, c.Port, c.VC, next, portList(min))
		inPort = topo.ReversePort(cur, c.Port)
		inVC = c.VC
		cur = next
	}
	fmt.Printf("  %4d: destination\n", dst)
}

func portList(cands []routing.Candidate) string {
	seen := map[topology.Port]bool{}
	s := ""
	for _, c := range cands {
		if seen[c.Port] {
			continue
		}
		seen[c.Port] = true
		if s != "" {
			s += ","
		}
		s += fmt.Sprint(int(c.Port))
	}
	if s == "" {
		return "(none)"
	}
	return s
}
