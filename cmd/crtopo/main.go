// Command crtopo inspects a topology: size, diameter, average distance,
// uniform capacity, and optionally the dimension-order route and minimal
// port sets between two nodes — a debugging aid for routing work.
//
// Examples:
//
//	crtopo -topo torus -k 16 -dims 2
//	crtopo -topo torus -k 8 -dims 2 -from 0 -to 36
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "crtopo: %v\n", err)
		os.Exit(2)
	}
}

// run is main with its dependencies injected so tests can drive the
// whole flag-to-report path and inspect the output.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crtopo", flag.ContinueOnError)
	var (
		topoName = fs.String("topo", "torus", "topology: torus, mesh, hypercube")
		k        = fs.Int("k", 8, "radix for torus/mesh")
		dims     = fs.Int("dims", 2, "dimensions (or hypercube order)")
		from     = fs.Int("from", -1, "source node for route display")
		to       = fs.Int("to", -1, "destination node for route display")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var topo topology.Topology
	switch *topoName {
	case "torus":
		topo = topology.NewTorus(*k, *dims)
	case "mesh":
		topo = topology.NewMesh(*k, *dims)
	case "hypercube":
		topo = topology.NewHypercube(*dims)
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}

	fmt.Fprintf(stdout, "topology:      %s\n", topo.Name())
	fmt.Fprintf(stdout, "nodes:         %d\n", topo.Nodes())
	fmt.Fprintf(stdout, "degree:        %d ports/node\n", topo.Degree())
	fmt.Fprintf(stdout, "diameter:      %d hops\n", topo.Diameter())
	fmt.Fprintf(stdout, "avg distance:  %.3f hops (distinct pairs)\n", topo.AverageDistance())
	fmt.Fprintf(stdout, "capacity:      %.4f flits/node/cycle (uniform traffic)\n", traffic.CapacityFlitsPerNode(topo))

	if *from < 0 || *to < 0 {
		return nil
	}
	src, dst := topology.NodeID(*from), topology.NodeID(*to)
	if int(src) >= topo.Nodes() || int(dst) >= topo.Nodes() {
		return fmt.Errorf("node out of range")
	}
	fmt.Fprintf(stdout, "\nroute %d -> %d (distance %d):\n", src, dst, topo.Distance(src, dst))

	// Dimension-order walk with the candidate sets at each hop.
	alg := routing.DOR{}
	adaptive := routing.MinimalAdaptive{}
	cur := src
	inPort, inVC := topology.InvalidPort, -1
	for cur != dst {
		req := routing.Request{
			Topo: topo, Cur: cur, Dst: dst,
			InPort: inPort, InVC: inVC, NumVCs: alg.MinVCs(topo),
		}
		dor := alg.Route(req, nil)
		req.NumVCs = 1
		min := adaptive.Route(req, nil)
		if len(dor) == 0 {
			fmt.Fprintf(stdout, "  %4d: no DOR candidate (unreachable)\n", cur)
			break
		}
		c := dor[0]
		next, _ := topo.Neighbor(cur, c.Port)
		fmt.Fprintf(stdout, "  %4d: DOR -> port %d vc %d (to %d); adaptive ports: %s\n",
			cur, c.Port, c.VC, next, portList(min))
		inPort = topo.ReversePort(cur, c.Port)
		inVC = c.VC
		cur = next
	}
	fmt.Fprintf(stdout, "  %4d: destination\n", dst)
	return nil
}

func portList(cands []routing.Candidate) string {
	seen := map[topology.Port]bool{}
	s := ""
	for _, c := range cands {
		if seen[c.Port] {
			continue
		}
		seen[c.Port] = true
		if s != "" {
			s += ","
		}
		s += fmt.Sprint(int(c.Port))
	}
	if s == "" {
		return "(none)"
	}
	return s
}
