package main

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := buildConfig("torus", 8, 2, "cr", "", 0, 2, 1, 1, 0, "exp", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protocol != core.CR {
		t.Fatalf("protocol %v", cfg.Protocol)
	}
	if _, ok := cfg.Alg.(routing.MinimalAdaptive); !ok {
		t.Fatalf("cr default routing = %T, want adaptive", cfg.Alg)
	}
	if cfg.Backoff.Kind != core.BackoffExponential {
		t.Fatal("default backoff not exponential")
	}

	cfg, err = buildConfig("torus", 8, 2, "plain", "", 0, 2, 1, 1, 0, "exp", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.Alg.(routing.DOR); !ok {
		t.Fatalf("plain default routing = %T, want DOR", cfg.Alg)
	}
}

func TestBuildConfigTopologies(t *testing.T) {
	cases := []struct {
		topo  string
		k, d  int
		nodes int
	}{
		{"torus", 4, 2, 16},
		{"mesh", 4, 2, 16},
		{"hypercube", 0, 5, 32},
	}
	for _, c := range cases {
		cfg, err := buildConfig(c.topo, c.k, c.d, "cr", "adaptive", 1, 2, 1, 1, 0, "exp", 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.topo, err)
		}
		if cfg.Topo.Nodes() != c.nodes {
			t.Fatalf("%s: %d nodes, want %d", c.topo, cfg.Topo.Nodes(), c.nodes)
		}
	}
}

func TestBuildConfigStaticBackoff(t *testing.T) {
	cfg, err := buildConfig("torus", 4, 2, "cr", "", 0, 2, 1, 1, 0, "32", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backoff.Kind != core.BackoffStatic || cfg.Backoff.Gap != 32 {
		t.Fatalf("backoff %+v", cfg.Backoff)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := []struct {
		topo, proto, alg, backoff string
	}{
		{"ring", "cr", "", "exp"},
		{"torus", "xyz", "", "exp"},
		{"torus", "cr", "magic", "exp"},
		{"torus", "cr", "", "fast"},
		{"torus", "cr", "", "-3"},
	}
	for _, c := range cases {
		if _, err := buildConfig(c.topo, 4, 2, c.proto, c.alg, 0, 2, 1, 1, 0, c.backoff, 0, 1); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}

func TestBuildConfigDuato(t *testing.T) {
	cfg, err := buildConfig("torus", 4, 2, "plain", "duato", 0, 2, 1, 1, 0, "exp", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alg.MinVCs(topology.NewTorus(4, 2)) != 3 {
		t.Fatal("duato routing not configured")
	}
}
