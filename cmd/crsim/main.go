// Command crsim runs one network simulation and prints its metrics.
//
// Examples:
//
//	crsim -topo torus -k 16 -dims 2 -protocol cr -load 0.5
//	crsim -protocol fcr -fault-rate 1e-4 -load 0.4 -msglen 32
//	crsim -protocol plain -routing dor -bufdepth 16 -load 0.7
package main

import (
	"flag"
	"fmt"
	"os"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/sim"
	"crnet/internal/topology"
)

func main() {
	var (
		topoName  = flag.String("topo", "torus", "topology: torus, mesh, hypercube")
		k         = flag.Int("k", 16, "radix (nodes per dimension) for torus/mesh")
		dims      = flag.Int("dims", 2, "dimensions (torus/mesh) or hypercube order")
		protocol  = flag.String("protocol", "cr", "protocol: plain, cr, fcr")
		algName   = flag.String("routing", "", "routing: adaptive, dor, duato (default: adaptive for cr/fcr, dor for plain)")
		vcs       = flag.Int("vcs", 0, "virtual channels per port (0 = algorithm minimum)")
		bufDepth  = flag.Int("bufdepth", 2, "flit buffer depth per virtual channel")
		injCh     = flag.Int("inj", 1, "injection channels per node")
		ejCh      = flag.Int("ej", 1, "ejection channels per node")
		load      = flag.Float64("load", 0.5, "offered load as a fraction of capacity")
		msgLen    = flag.Int("msglen", 16, "message length in flits")
		pattern   = flag.String("pattern", "uniform", "traffic: uniform, transpose, bit-reversal, bit-complement, hotspot")
		timeout   = flag.Int("timeout", 0, "CR kill timeout in cycles (0 = length x VCs rule)")
		backoff   = flag.String("backoff", "exp", "retransmission gap: exp or a static cycle count")
		faultRate = flag.Float64("fault-rate", 0, "transient corruption probability per flit-hop")
		warmup    = flag.Int64("warmup", 2000, "warmup cycles")
		measure   = flag.Int64("measure", 10000, "measurement cycles")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		csv       = flag.Bool("csv", false, "print a CSV row instead of the report")
		heatmap   = flag.Bool("heatmap", false, "print a per-node link-utilization heatmap (2-D grids)")
	)
	flag.Parse()

	cfg, err := buildConfig(*topoName, *k, *dims, *protocol, *algName, *vcs, *bufDepth,
		*injCh, *ejCh, *timeout, *backoff, *faultRate, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crsim:", err)
		os.Exit(2)
	}
	m, net, err := sim.RunWithNetwork(sim.Config{
		Net:           cfg,
		Pattern:       *pattern,
		Load:          *load,
		MsgLen:        *msgLen,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crsim:", err)
		os.Exit(1)
	}
	if *heatmap {
		if err := printHeatmap(cfg, net); err != nil {
			fmt.Fprintln(os.Stderr, "crsim:", err)
			os.Exit(1)
		}
	}
	if *csv {
		fmt.Printf("%s,%s,%v,%v,%v,%v,%d,%d,%v,%v,%v\n",
			cfg.Topo.Name(), *protocol, *load, m.Throughput, m.AvgLatency,
			m.P95Latency, m.Delivered, m.Censored, m.KillsPerMsg, m.RetriesPerMsg, m.PadOverhead)
		return
	}
	printReport(cfg, *pattern, *load, *msgLen, m)
}

func buildConfig(topoName string, k, dims int, protocol, algName string, vcs, bufDepth,
	injCh, ejCh, timeout int, backoff string, faultRate float64, seed uint64) (network.Config, error) {

	var topo topology.Topology
	switch topoName {
	case "torus":
		topo = topology.NewTorus(k, dims)
	case "mesh":
		topo = topology.NewMesh(k, dims)
	case "hypercube":
		topo = topology.NewHypercube(dims)
	default:
		return network.Config{}, fmt.Errorf("unknown topology %q", topoName)
	}

	var proto core.Protocol
	switch protocol {
	case "plain":
		proto = core.Plain
	case "cr":
		proto = core.CR
	case "fcr":
		proto = core.FCR
	default:
		return network.Config{}, fmt.Errorf("unknown protocol %q", protocol)
	}

	if algName == "" {
		if proto == core.Plain {
			algName = "dor"
		} else {
			algName = "adaptive"
		}
	}
	var alg routing.Algorithm
	switch algName {
	case "adaptive":
		alg = routing.MinimalAdaptive{}
	case "dor":
		alg = routing.DOR{}
	case "duato":
		alg = routing.Duato{AdaptiveVCs: 1}
	default:
		return network.Config{}, fmt.Errorf("unknown routing %q", algName)
	}

	b := core.Backoff{Kind: core.BackoffExponential, Gap: 8}
	if backoff != "exp" {
		var gap int
		if _, err := fmt.Sscanf(backoff, "%d", &gap); err != nil || gap < 1 {
			return network.Config{}, fmt.Errorf("bad backoff %q (want \"exp\" or a positive integer)", backoff)
		}
		b = core.Backoff{Kind: core.BackoffStatic, Gap: gap}
	}

	return network.Config{
		Topo:              topo,
		Alg:               alg,
		Protocol:          proto,
		VCs:               vcs,
		BufDepth:          bufDepth,
		InjectionChannels: injCh,
		EjectionChannels:  ejCh,
		Timeout:           timeout,
		Backoff:           b,
		TransientRate:     faultRate,
		Seed:              seed,
	}, nil
}

func printReport(cfg network.Config, pattern string, load float64, msgLen int, m sim.Metrics) {
	vcs := cfg.VCs
	if vcs == 0 {
		vcs = cfg.Alg.MinVCs(cfg.Topo)
	}
	fmt.Printf("network:   %s, %s routing, protocol %s, %d VC x %d flits\n",
		cfg.Topo.Name(), cfg.Alg.Name(), cfg.Protocol, vcs, cfg.BufDepth)
	fmt.Printf("workload:  %s, %d-flit messages, offered %.2f of capacity (%.4f flits/node/cycle)\n",
		pattern, msgLen, load, m.OfferedLoad)
	fmt.Printf("delivered: %d messages (%d censored)\n", m.Delivered, m.Censored)
	fmt.Printf("throughput: %.4f flits/node/cycle (%.1f%% of capacity)\n", m.Throughput, 100*m.ThroughputFrac)
	fmt.Printf("latency:   avg %.1f  p50 %d  p95 %d  p99 %d  max %d cycles\n",
		m.AvgLatency, m.P50Latency, m.P95Latency, m.P99Latency, m.MaxLatency)
	fmt.Printf("protocol:  %.4f kills/msg, %.4f retries/msg, %.4f fkills/msg, pad overhead %.3f\n",
		m.KillsPerMsg, m.RetriesPerMsg, m.FKillsPerMsg, m.PadOverhead)
	if m.TransientFaults > 0 || m.DeliveredCorrupt > 0 {
		fmt.Printf("faults:    %d injected, %d corrupt deliveries, %d late fkills\n",
			m.TransientFaults, m.DeliveredCorrupt, m.LateFKills)
	}
	if m.FailedMessages > 0 {
		fmt.Printf("WARNING:   %d messages abandoned after max retries\n", m.FailedMessages)
	}
	if m.Saturated() {
		fmt.Println("note:      network is saturated at this load")
	}
}

// printHeatmap renders per-node outgoing-link utilization for 2-D grids
// as an ASCII intensity map (relative to the busiest node).
func printHeatmap(cfg network.Config, net *network.Network) error {
	g, ok := cfg.Topo.(*topology.Grid)
	if !ok || g.Dims() != 2 {
		return fmt.Errorf("heatmap needs a 2-D torus or mesh, have %s", cfg.Topo.Name())
	}
	perNode := make([]int64, g.Nodes())
	for _, ll := range net.LinkLoads() {
		perNode[ll.Link.Node] += ll.Flits
	}
	var max int64 = 1
	for _, v := range perNode {
		if v > max {
			max = v
		}
	}
	const ramp = " .:-=+*#%@"
	fmt.Println("link-utilization heatmap (rows = y, columns = x; @ = busiest node):")
	for y := g.Radix() - 1; y >= 0; y-- {
		fmt.Printf("  y=%2d  ", y)
		for x := 0; x < g.Radix(); x++ {
			v := perNode[g.Node(x, y)]
			idx := int(v * int64(len(ramp)-1) / max)
			fmt.Printf("%c", ramp[idx])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}
