package main

import (
	"testing"

	"crnet/internal/stats"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) < 21 {
		t.Fatalf("all: %v (%d)", err, len(all))
	}
	one, err := selectExperiments("e3")
	if err != nil || len(one) != 1 || one[0].ID != "E3" {
		t.Fatalf("single: %v %v", err, one)
	}
	many, err := selectExperiments("E1, e5 ,E21")
	if err != nil || len(many) != 3 || many[2].ID != "E21" {
		t.Fatalf("list: %v %v", err, many)
	}
	if _, err := selectExperiments("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := selectExperiments("E1,,E2"); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestFailRowsDetectsFailCells(t *testing.T) {
	prop := stats.NewTable("props", "property", "value", "expectation", "pass")
	prop.AddRow("a", "1", "1", "PASS")
	prop.AddRow("b", "2", "0", "FAIL")
	prop.AddRow("c", "0", "0", "PASS")
	if got := failRows(prop, prop.Columns); len(got) != 1 || got[0] != "b" {
		t.Fatalf("failRows = %v, want [b]", got)
	}

	// Tables without a pass column never gate the exit code, even if a
	// cell happens to contain the string FAIL.
	plain := stats.NewTable("series", "scheme", "note")
	plain.AddRow("x", "FAIL")
	if got := failRows(plain, plain.Columns); got != nil {
		t.Fatalf("pass-less table produced failures: %v", got)
	}
}
