package main

import "testing"

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) < 21 {
		t.Fatalf("all: %v (%d)", err, len(all))
	}
	one, err := selectExperiments("e3")
	if err != nil || len(one) != 1 || one[0].ID != "E3" {
		t.Fatalf("single: %v %v", err, one)
	}
	many, err := selectExperiments("E1, e5 ,E21")
	if err != nil || len(many) != 3 || many[2].ID != "E21" {
		t.Fatalf("list: %v %v", err, many)
	}
	if _, err := selectExperiments("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := selectExperiments("E1,,E2"); err == nil {
		t.Fatal("empty id accepted")
	}
}
