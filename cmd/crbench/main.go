// Command crbench regenerates the paper's tables and figures.
//
// Each experiment (E1..E21, see DESIGN.md) sweeps the parameter the
// corresponding figure plots and prints the series as an aligned table
// (or CSV with -csv). -scale quick runs an 8x8 torus with short windows;
// -scale full reproduces the paper's 16x16 torus.
//
// Examples:
//
//	crbench -list
//	crbench -exp E3
//	crbench -exp all -scale full -csv > results.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crnet/internal/sim"
)

// selectExperiments resolves an -exp argument: "all", a single id, or a
// comma-separated id list.
func selectExperiments(arg string) ([]sim.Experiment, error) {
	if strings.EqualFold(arg, "all") {
		return sim.Experiments, nil
	}
	var out []sim.Experiment
	for _, part := range strings.Split(arg, ",") {
		id := strings.ToUpper(strings.TrimSpace(part))
		e, ok := sim.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", part)
		}
		out = append(out, e)
	}
	return out, nil
}

func main() {
	var (
		expID = flag.String("exp", "all", "experiment ids (e.g. E3 or E1,E5,E21) or \"all\"")
		scale = flag.String("scale", "quick", "quick (8x8, fast) or full (16x16, paper scale)")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.Experiments {
			fmt.Printf("%-4s %-60s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var s sim.Scale
	switch *scale {
	case "quick":
		s = sim.Quick
	case "full":
		s = sim.Full
	default:
		fmt.Fprintf(os.Stderr, "crbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	selected, err := selectExperiments(*expID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
		os.Exit(2)
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		tbl := e.Run(s)
		if *csv {
			fmt.Printf("# %s: %s [%s]\n", e.ID, e.Title, e.Paper)
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl.String())
			fmt.Printf("(%s, scale %s, %v)\n", e.Paper, *scale, time.Since(start).Round(time.Millisecond))
		}
	}
}
