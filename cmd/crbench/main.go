// Command crbench regenerates the paper's tables and figures.
//
// Each experiment (E1..E21, see DESIGN.md) sweeps the parameter the
// corresponding figure plots and prints the series as an aligned table
// (or CSV with -csv). -scale quick runs an 8x8 torus with short windows;
// -scale full reproduces the paper's 16x16 torus.
//
// Grid-based experiments run their sweep points over a worker pool
// (-parallel, default all cores); results are byte-identical for every
// worker count, so -parallel only changes wall-clock. Progress and
// timing go to stderr, result tables to stdout. -json additionally
// writes a versioned machine-readable artifact (schema, git version,
// config echo, per-point wall-clock) for the BENCH_*.json perf
// trajectory.
//
// Examples:
//
//	crbench -list
//	crbench -exp E3
//	crbench -exp E5 -parallel 8
//	crbench -exp all -scale full -csv > results.csv
//	crbench -exp E1,E5,E20 -json bench.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"crnet/internal/harness"
	"crnet/internal/sim"
)

// selectExperiments resolves an -exp argument: "all", a single id, or a
// comma-separated id list.
func selectExperiments(arg string) ([]sim.Experiment, error) {
	if strings.EqualFold(arg, "all") {
		return sim.Experiments, nil
	}
	var out []sim.Experiment
	for _, part := range strings.Split(arg, ",") {
		id := strings.ToUpper(strings.TrimSpace(part))
		e, ok := sim.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", part)
		}
		out = append(out, e)
	}
	return out, nil
}

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment ids (e.g. E3 or E1,E5,E21) or \"all\"")
		scale    = flag.String("scale", "quick", "quick (8x8, fast) or full (16x16, paper scale)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Int("parallel", 0, "sweep worker pool size (0 = all cores, 1 = serial; results identical)")
		jsonOut  = flag.String("json", "", "also write a versioned JSON results artifact to this file")
		quiet    = flag.Bool("quiet", false, "suppress progress/timing output on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.Experiments {
			fmt.Printf("%-4s %-60s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var s sim.Scale
	switch *scale {
	case "quick":
		s = sim.Quick
	case "full":
		s = sim.Full
	default:
		fmt.Fprintf(os.Stderr, "crbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	s.Parallel = *parallel
	if !*quiet {
		s.Progress = os.Stderr
	}

	selected, err := selectExperiments(*expID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
		os.Exit(2)
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var art *harness.Artifact
	if *jsonOut != "" {
		art = &harness.Artifact{
			Schema:      harness.SchemaVersion,
			Tool:        "crbench",
			CreatedAt:   time.Now().UTC().Format(time.RFC3339),
			GitDescribe: harness.GitDescribe(),
			Scale: harness.ScaleEcho{
				Name: *scale, K: s.K, MsgLen: s.MsgLen,
				Warmup: s.Warmup, Measure: s.Measure, Loads: s.Loads, Seed: s.Seed,
			},
			Parallel: workers,
		}
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		var sweeps []harness.SweepTiming
		if art != nil {
			s.Collect = func(label string, pointMS []float64) {
				sweeps = append(sweeps, harness.SweepTiming{Label: label, PointMS: pointMS})
			}
		}
		start := time.Now()
		tbl := e.Run(s)
		elapsed := time.Since(start)
		if *csv {
			fmt.Printf("# %s: %s [%s]\n", e.ID, e.Title, e.Paper)
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl.String())
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done (%s, scale %s, %d workers, %v)\n",
				e.ID, e.Paper, *scale, workers, elapsed.Round(time.Millisecond))
		}
		if art != nil {
			art.Experiments = append(art.Experiments, harness.ExperimentResult{
				ID: e.ID, Title: e.Title, Paper: e.Paper,
				Table:     tbl.JSON(),
				ElapsedMS: float64(elapsed) / float64(time.Millisecond),
				Sweeps:    sweeps,
			})
		}
	}

	if art != nil {
		if err := art.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "crbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s (schema v%d, %d experiments)\n", *jsonOut, art.Schema, len(art.Experiments))
		}
	}
}
