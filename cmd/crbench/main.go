// Command crbench regenerates the paper's tables and figures.
//
// Each experiment (E1..E24, see DESIGN.md) sweeps the parameter the
// corresponding figure plots and prints the series as an aligned table
// (or CSV with -csv). -scale quick runs an 8x8 torus with short windows;
// -scale full reproduces the paper's 16x16 torus. -chaos selects the
// chaos/robustness subset (E22-E24, E29-E30); -bisect runs checkpoint
// bisection forensics (see sim.Bisect) instead of experiments.
//
// Grid-based experiments run their sweep points over a worker pool
// (-parallel, default all cores); results are byte-identical for every
// worker count, so -parallel only changes wall-clock. Independently,
// -shards N splits each simulated network itself across N workers (the
// sharded cycle kernel, pinned byte-identical to the serial one) —
// useful when one big network, not many points, dominates the run.
// Profiling flags force both back to serial for a clean call tree.
// Progress and timing go to stderr, result tables to stdout. -json additionally
// writes a versioned machine-readable artifact (schema, git version,
// config echo, per-point wall-clock, per-point failures) for the
// BENCH_*.json perf trajectory.
//
// Sweeps are crash-proof: a point that panics, trips the invariant
// watchdog, or exceeds -point-timeout is recorded in the artifact's
// errors section and the remaining points still run. crbench exits
// non-zero when a property table (E14, E24) contains a FAIL row or any
// sweep point failed, so CI catches broken protocol claims even though
// the run itself completes.
//
// Examples:
//
//	crbench -list
//	crbench -exp E3
//	crbench -exp E5 -parallel 8
//	crbench -chaos -point-timeout 5m -json chaos.json
//	crbench -exp all -scale full -csv > results.csv
//	crbench -exp E1,E5,E20 -json bench.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"crnet/internal/harness"
	"crnet/internal/invariant"
	"crnet/internal/router"
	"crnet/internal/sim"
)

// selectExperiments resolves an -exp argument: "all", a single id, or a
// comma-separated id list.
func selectExperiments(arg string) ([]sim.Experiment, error) {
	if strings.EqualFold(arg, "all") {
		return sim.Experiments, nil
	}
	var out []sim.Experiment
	for _, part := range strings.Split(arg, ",") {
		id := strings.ToUpper(strings.TrimSpace(part))
		e, ok := sim.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", part)
		}
		out = append(out, e)
	}
	return out, nil
}

// failRows returns the failing property rows of a table: those whose
// "pass" column reads FAIL. Tables without a pass column have none.
func failRows(t interface {
	NumRows() int
	Row(int) []string
}, columns []string) []string {
	passCol := -1
	for i, c := range columns {
		if c == "pass" {
			passCol = i
		}
	}
	if passCol < 0 {
		return nil
	}
	var out []string
	for i := 0; i < t.NumRows(); i++ {
		row := t.Row(i)
		if row[passCol] == "FAIL" {
			out = append(out, row[0])
		}
	}
	return out
}

func main() {
	// All real work happens in run so that deferred profile/trace
	// finalizers fire before the process exits (os.Exit skips defers).
	os.Exit(run())
}

// run returns the process exit code through a named result so the
// deferred profile/trace finalizers can flip a clean run red when a
// profile fails to flush or close — a truncated profile silently
// poisons any perf comparison built on it.
func run() (code int) {
	var (
		expID         = flag.String("exp", "all", "experiment ids (e.g. E3 or E1,E5,E21) or \"all\"")
		chaos         = flag.Bool("chaos", false, "run the chaos/robustness experiments (E22-E24, E29-E30); overrides -exp")
		scale         = flag.String("scale", "quick", "quick (8x8, fast) or full (16x16, paper scale)")
		csv           = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list          = flag.Bool("list", false, "list experiments and exit")
		parallel      = flag.Int("parallel", 0, "sweep worker pool size (0 = all cores, 1 = serial; results identical)")
		shards        = flag.Int("shards", 0, "shard each simulated network across N workers (0/1 = serial kernel; results identical)")
		buforg        = flag.String("buforg", "", "router buffer organization for experiments that don't pick their own: fifo (default), damq or shared — changes results")
		timeout       = flag.Duration("point-timeout", 0, "per-sweep-point wall-clock budget (0 = unbounded); exceeded points are recorded as errors")
		jsonOut       = flag.String("json", "", "also write a versioned JSON results artifact to this file")
		quiet         = flag.Bool("quiet", false, "suppress progress/timing output on stderr")
		tsDir         = flag.String("timeseries", "", "write sampled metric time-series as CSV files into this directory (experiments that sample, e.g. E26)")
		bisect        = flag.Bool("bisect", false, "checkpoint-bisection forensics on the canonical chaos service instead of experiments")
		bisectHorizon = flag.Int64("bisect-horizon", 20000, "detection-pass length in cycles for -bisect")
		bisectCkpt    = flag.Int64("bisect-ckpt", 1024, "checkpoint grid spacing in cycles for -bisect")
		bisectHops    = flag.Int("bisect-hop-budget", 0, "watchdog hop budget for -bisect (0 = honest default; shrink it to plant a tripwire)")
		bisectWindow  = flag.Int("bisect-deadlock-window", 0, "watchdog deadlock window for -bisect (0 = honest default)")
		cpuProf       = flag.String("cpuprofile", "", "write a CPU profile to this file (forces -parallel 1)")
		memProf       = flag.String("memprofile", "", "write a heap profile to this file (forces -parallel 1)")
		traceOut      = flag.String("trace", "", "write a runtime execution trace to this file (forces -parallel 1)")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.Experiments {
			fmt.Printf("%-4s %-60s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}

	var s sim.Scale
	switch *scale {
	case "quick":
		s = sim.Quick
	case "full":
		s = sim.Full
	default:
		fmt.Fprintf(os.Stderr, "crbench: unknown scale %q\n", *scale)
		return 2
	}
	// Profiling wants one goroutine doing the simulating, so the profile
	// reads as a single clean call tree: force the harness's serial mode
	// and the serial cycle kernel.
	profiling := *cpuProf != "" || *memProf != "" || *traceOut != ""
	if profiling {
		*parallel = 1
		*shards = 1
	}
	s.Parallel = *parallel
	s.Shards = *shards
	org, err := router.ParseBufferOrg(*buforg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
		return 2
	}
	s.BufOrg = org
	s.PointTimeout = *timeout
	if !*quiet {
		s.Progress = os.Stderr
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "crbench: starting CPU profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "crbench: closing CPU profile: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "crbench: starting trace: %v\n", err)
			return 1
		}
		defer func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "crbench: closing trace: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			fail := func(err error) {
				fmt.Fprintf(os.Stderr, "crbench: heap profile: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
			f, err := os.Create(*memProf)
			if err != nil {
				fail(err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fail(err)
				return
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}

	if *bisect {
		rep, err := sim.Bisect(sim.BisectConfig{
			Service:         sim.DefaultBisectService(s),
			Watchdog:        invariant.Config{HopBudget: *bisectHops, DeadlockWindow: *bisectWindow},
			Horizon:         *bisectHorizon,
			CheckpointEvery: *bisectCkpt,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: bisect: %v\n", err)
			return 1
		}
		fmt.Println(rep.String())
		if rep.Violation != nil {
			return 1
		}
		return 0
	}

	sel := *expID
	if *chaos {
		sel = strings.Join(sim.ChaosExperiments, ",")
	}
	selected, err := selectExperiments(sel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
		return 2
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var art *harness.Artifact
	if *jsonOut != "" {
		art = &harness.Artifact{
			Schema:      harness.SchemaVersion,
			Tool:        "crbench",
			CreatedAt:   time.Now().UTC().Format(time.RFC3339),
			GitDescribe: harness.GitDescribe(),
			Scale: harness.ScaleEcho{
				Name: *scale, K: s.K, MsgLen: s.MsgLen,
				Warmup: s.Warmup, Measure: s.Measure, Loads: s.Loads, Seed: s.Seed,
			},
			Parallel: workers,
		}
	}

	failed := false
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		var sweeps []harness.SweepTiming
		var pointErrs []harness.PointError
		var pointSeries []harness.PointSeries
		if art != nil {
			s.Collect = func(label string, pointMS []float64) {
				sweeps = append(sweeps, harness.SweepTiming{Label: label, PointMS: pointMS})
			}
		}
		if art != nil || *tsDir != "" {
			s.CollectSeries = func(label string, series []harness.PointSeries) {
				pointSeries = append(pointSeries, series...)
			}
		}
		s.CollectErrors = func(label string, errs []harness.PointError) {
			pointErrs = append(pointErrs, errs...)
			for _, pe := range errs {
				fmt.Fprintf(os.Stderr, "%s/%s point %d %s: %s\n", e.ID, label, pe.Index, pe.Kind, pe.Err)
			}
		}
		start := time.Now()
		tbl := e.Run(s)
		elapsed := time.Since(start)
		if *csv {
			fmt.Printf("# %s: %s [%s]\n", e.ID, e.Title, e.Paper)
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl.String())
		}
		if fr := failRows(tbl, tbl.Columns); len(fr) != 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: FAIL: %s\n", e.ID, strings.Join(fr, "; "))
		}
		if len(pointErrs) != 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: %d sweep point(s) failed\n", e.ID, len(pointErrs))
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done (%s, scale %s, %d workers, %v)\n",
				e.ID, e.Paper, *scale, workers, elapsed.Round(time.Millisecond))
		}
		if *tsDir != "" && len(pointSeries) != 0 {
			if err := writeSeriesCSVs(*tsDir, e.ID, pointSeries); err != nil {
				fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
				return 1
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "%s: wrote %d time-series CSVs to %s\n", e.ID, len(pointSeries), *tsDir)
			}
		}
		if art != nil {
			art.Experiments = append(art.Experiments, harness.ExperimentResult{
				ID: e.ID, Title: e.Title, Paper: e.Paper,
				Table:      tbl.JSON(),
				ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
				Sweeps:     sweeps,
				Errors:     pointErrs,
				TimeSeries: pointSeries,
			})
		}
	}

	if art != nil {
		if err := art.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "crbench: writing %s: %v\n", *jsonOut, err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s (schema v%d, %d experiments)\n", *jsonOut, art.Schema, len(art.Experiments))
		}
	}
	if failed {
		// The artifact is written first: a red run still leaves the full
		// evidence on disk.
		return 1
	}
	return 0
}

// writeSeriesCSVs dumps each sampled point's time-series as one CSV
// named <exp>_<label>_<load>.csv under dir (created if absent).
func writeSeriesCSVs(dir, exp string, series []harness.PointSeries) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sanitize := strings.NewReplacer("/", "-", " ", "", "(", "", ")", "", ",", "-", "=", "")
	for _, ps := range series {
		name := fmt.Sprintf("%s_%s_%.2f.csv", exp, sanitize.Replace(ps.Label), ps.Load)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(ps.Data.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
