package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"crnet/internal/analysis"
)

// vetConfig is the package unit description `go vet` hands a vettool,
// mirroring the fields x/tools' unitchecker reads. PackageFile maps
// import paths to compiler export data, so type-checking a unit needs
// no reloading — the go command has already built everything.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one `go vet` package unit. crlint's analyzers
// keep no cross-package facts, so the .vetx fact file is written empty
// — but it must exist, or the go command fails the action.
func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "crlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "crlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Facts-only pass over a dependency: nothing to compute.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "crlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		e, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, cfg.Compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "crlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{
		PkgPath: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
