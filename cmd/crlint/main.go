// Command crlint is the repo's static invariant gate: a multichecker
// for the custom analyzers under internal/analysis that enforce the
// simulator's determinism (detmap), cycle-time purity (wallclock),
// seed-derivation discipline (rngsource), hot-path allocation freedom
// (hotalloc), snapshot coverage (snapfields) and shard isolation
// (shardsafe). See DESIGN.md §6 for why these are load-bearing.
//
// Standalone:
//
//	go run ./cmd/crlint ./...        # lint the module (make lint does this)
//	crlint ./internal/network/...    # lint a subtree
//	crlint -json ./...               # machine-readable findings (CI artifact)
//
// As a vet tool (the same binary speaks the `go vet -vettool`
// unitchecker protocol: the -V=full/-flags handshake plus *.cfg
// package units):
//
//	go build -o crlint ./cmd/crlint
//	go vet -vettool=$(pwd)/crlint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error (standalone);
// under -vettool, findings print to stderr and exit 2, matching
// x/tools' unitchecker.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"crnet/internal/analysis"
	"crnet/internal/analysis/detmap"
	"crnet/internal/analysis/hotalloc"
	"crnet/internal/analysis/rngsource"
	"crnet/internal/analysis/shardsafe"
	"crnet/internal/analysis/snapfields"
	"crnet/internal/analysis/wallclock"
)

// analyzers is the suite crlint runs; keep cmd/crlint/main_test.go's
// clean-repo gate in sync with DESIGN.md §6 when extending it.
var analyzers = []*analysis.Analyzer{
	detmap.Analyzer,
	wallclock.Analyzer,
	rngsource.Analyzer,
	hotalloc.Analyzer,
	snapfields.Analyzer,
	shardsafe.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run dispatches between the vet-tool handshake, vet config units and
// the standalone package-pattern mode. dir anchors relative patterns so
// tests can point run at the module root.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	// `go vet` handshake: -V=full must print a stable fingerprint line
	// (the content ID go caches vet results under), -flags the JSON
	// list of tool flags (none beyond the standard ones).
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Fprintf(stdout, "crlint version devel buildID=%s\n", selfID())
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetUnit(args[0], stderr)
	}

	fs := flag.NewFlagSet("crlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of the human format")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: crlint [-json] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "crlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "crlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable shape -json emits, one element
// per finding; CI uploads the array as an artifact and turns it into
// source annotations. Escape names the //cr: annotation that would
// justify the finding ("" when none applies).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Escape   string `json:"escape,omitempty"`
}

// writeJSON renders findings (already position-sorted by analysis.Run)
// as an indented JSON array; an empty run prints [] so consumers can
// always parse the output.
func writeJSON(w io.Writer, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Col:      f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Escape:   f.Escape,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selfID hashes the executable so `go vet` re-runs the tool whenever it
// is rebuilt with different analyzers instead of serving stale cached
// diagnostics.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
