package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the merge gate: the whole module must pass every
// analyzer. A finding here means either a real determinism/purity
// violation or a missing //cr: justification — fix the code or justify
// the escape, never weaken the analyzer.
func TestRepoIsClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, "../..", &out, &errw); code != 0 {
		t.Fatalf("crlint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// TestVetHandshake checks the `go vet -vettool` version/flags protocol:
// -V=full must print a fingerprint line and -flags the tool's extra
// flags (none), both exiting 0 without analyzing anything.
func TestVetHandshake(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-V=full"}, ".", &out, &errw); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, errw.String())
	}
	if !strings.HasPrefix(out.String(), "crlint version ") || !strings.Contains(out.String(), "buildID=") {
		t.Errorf("-V=full output %q: want crlint version line with buildID", out.String())
	}
	out.Reset()
	if code := run([]string{"-flags"}, ".", &out, &errw); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, errw.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-flags output %q: want []", out.String())
	}
}

// TestFindingsExitStatus runs the standalone mode against a fixture
// tree (which deliberately violates the analyzers) and expects exit 1
// with findings on stdout.
func TestFindingsExitStatus(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"./internal/analysis/rngsource/testdata/src/core/"}, "../..", &out, &errw)
	if code != 1 {
		t.Fatalf("fixture lint exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "rngsource:") {
		t.Errorf("fixture findings missing rngsource diagnostics:\n%s", out.String())
	}
}

// TestOutputFormats pins the two output formats against each other: the
// -json array must carry exactly the findings the human format prints,
// with file/line/col/analyzer/message round-tripping into the human
// line shape and the escape field naming the //cr: annotation that
// would justify each finding.
func TestOutputFormats(t *testing.T) {
	const fixture = "./internal/analysis/snapfields/testdata/src/core/"
	var human, errw bytes.Buffer
	if code := run([]string{fixture}, "../..", &human, &errw); code != 1 {
		t.Fatalf("human lint exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, human.String(), errw.String())
	}
	var jsonOut bytes.Buffer
	errw.Reset()
	if code := run([]string{"-json", fixture}, "../..", &jsonOut, &errw); code != 1 {
		t.Fatalf("-json lint exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, jsonOut.String(), errw.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(jsonOut.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, jsonOut.String())
	}
	humanLines := strings.Split(strings.TrimSpace(human.String()), "\n")
	if len(findings) == 0 || len(findings) != len(humanLines) {
		t.Fatalf("-json carries %d findings, human format %d lines", len(findings), len(humanLines))
	}
	for i, f := range findings {
		want := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		if humanLines[i] != want {
			t.Errorf("finding %d mismatch:\nhuman: %s\njson:  %s", i, humanLines[i], want)
		}
		if f.Analyzer != "snapfields" {
			t.Errorf("finding %d analyzer = %q, want snapfields", i, f.Analyzer)
		}
		if f.Escape != "nosnap" {
			t.Errorf("finding %d escape = %q, want nosnap", i, f.Escape)
		}
	}
}

// TestJSONEmptyArray checks a clean run emits [] (not null), so CI
// consumers can always parse the artifact.
func TestJSONEmptyArray(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-json", "./internal/flit/"}, "../..", &out, &errw); code != 0 {
		t.Fatalf("-json on clean package exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-json clean output %q, want []", out.String())
	}
}

// buildSelf compiles the crlint binary once for vettool tests.
func buildSelf(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "crlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/crlint")
	cmd.Dir = "../.."
	if outb, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/crlint: %v\n%s", err, outb)
	}
	return bin
}

// TestVettoolClean drives the full `go vet -vettool` protocol against a
// clean package of this module.
func TestVettoolClean(t *testing.T) {
	bin := buildSelf(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/flit/")
	cmd.Dir = "../.."
	if outb, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, outb)
	}
}

// TestVettoolFindsViolations builds a scratch module that shadows the
// crnet module path (so its internal/core is treated as simulation
// core) with a math/rand import, and expects `go vet -vettool` to fail
// with an rngsource diagnostic.
func TestVettoolFindsViolations(t *testing.T) {
	bin := buildSelf(t)
	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module crnet\n\ngo 1.21\n")
	writeFile(t, filepath.Join(mod, "internal", "core", "core.go"), `package core

import "math/rand"

func Jitter() int { return rand.Intn(8) }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/")
	cmd.Dir = mod
	outb, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on violating package succeeded; want failure\n%s", outb)
	}
	if !strings.Contains(string(outb), "math/rand imported in simulation-core") {
		t.Errorf("vet output missing rngsource diagnostic:\n%s", outb)
	}
}

// TestVettoolFindsSnapfields plants a codec that drops a field in a
// scratch module's simulation core and expects the vet protocol to
// surface the snapfields diagnostic.
func TestVettoolFindsSnapfields(t *testing.T) {
	bin := buildSelf(t)
	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module crnet\n\ngo 1.21\n")
	writeFile(t, filepath.Join(mod, "internal", "core", "core.go"), `package core

type enc struct{ buf []int }

func (e *enc) put(v int) { e.buf = append(e.buf, v) }

type dec struct{ i int }

func (d *dec) get() int { d.i++; return d.i }

type counter struct {
	hits int
	miss int
}

func (c *counter) SaveState(e *enc) { e.put(c.hits) }
func (c *counter) LoadState(d *dec) { c.hits = d.get() }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/")
	cmd.Dir = mod
	outb, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on dropped-field codec succeeded; want failure\n%s", outb)
	}
	if !strings.Contains(string(outb), "field counter.miss is not referenced") {
		t.Errorf("vet output missing snapfields diagnostic:\n%s", outb)
	}
}

// TestVettoolFindsShardsafe plants a shard* phase body writing shared
// network state in a scratch module and expects the vet protocol to
// surface the shardsafe diagnostic.
func TestVettoolFindsShardsafe(t *testing.T) {
	bin := buildSelf(t)
	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module crnet\n\ngo 1.21\n")
	writeFile(t, filepath.Join(mod, "internal", "network", "network.go"), `package network

type Network struct {
	shards []int
	cycle  int
}

func (n *Network) shardWorker(si int) {
	n.shards[si]++
	n.cycle++
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/network/")
	cmd.Dir = mod
	outb, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on shard-unsafe package succeeded; want failure\n%s", outb)
	}
	if !strings.Contains(string(outb), "write to shared Network.cycle") {
		t.Errorf("vet output missing shardsafe diagnostic:\n%s", outb)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
