// Command crtrace runs a short simulation and prints the event timeline
// of one message — every injection, hop arrival, corruption, tear-down
// signal, ejection and delivery across all of its transmission attempts.
// A debugging lens on the CR/FCR protocol in action.
//
// Examples:
//
//	crtrace -k 8 -load 0.6                # trace the first killed message
//	crtrace -k 8 -msg 42                  # trace message id 42
//	crtrace -fault-rate 1e-3 -protocol fcr  # watch an FKILL retransmission
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "crtrace: %v\n", err)
		os.Exit(2)
	}
}

// run is main with its dependencies injected so tests can drive the
// whole flag-to-trace path and inspect the output.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crtrace", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 8, "torus radix")
		protocol  = fs.String("protocol", "cr", "protocol: cr or fcr")
		load      = fs.Float64("load", 0.6, "offered load (fraction of capacity)")
		msgLen    = fs.Int("msglen", 16, "message length in flits")
		faultRate = fs.Float64("fault-rate", 0, "transient corruption rate per flit-hop")
		msgID     = fs.Int64("msg", 0, "message id to trace (0 = first message that gets killed or FKILLed)")
		cycles    = fs.Int64("cycles", 20000, "maximum cycles to simulate")
		seed      = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto := core.CR
	if *protocol == "fcr" {
		proto = core.FCR
	} else if *protocol != "cr" {
		return fmt.Errorf("protocol must be cr or fcr")
	}
	topo := topology.NewTorus(*k, 2)
	net := network.New(network.Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      proto,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		TransientRate: *faultRate,
		Seed:          *seed,
	})

	// Record all events; select the interesting message afterwards.
	var events []network.Event
	net.SetTracer(func(e network.Event) { events = append(events, e) })

	gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, *load, *msgLen, *seed+7)
	target := *msgID
	delivered := false
	for c := int64(0); c < *cycles && !delivered; c++ {
		for node := 0; node < topo.Nodes(); node++ {
			if m, ok := gen.Tick(topology.NodeID(node), c); ok {
				net.SubmitMessage(m)
			}
		}
		net.Step()
		for _, e := range events[len(events)-min(len(events), 512):] {
			if target == 0 && (e.Kind == network.EvKill || e.Kind == network.EvFKill) && e.Worm != 0 {
				target = int64(e.Worm.Message())
			}
		}
		for _, d := range net.DrainDeliveries() {
			if target != 0 && int64(d.Msg) == target {
				delivered = true
			}
		}
	}
	if target == 0 {
		fmt.Fprintln(stdout, "crtrace: no message was killed in the window; rerun with higher -load or -fault-rate")
		return nil
	}

	fmt.Fprintf(stdout, "trace of message %d (%s, %s, load %.2f):\n", target, topo.Name(), proto, *load)
	shown := 0
	for _, e := range events {
		if int64(e.Worm.Message()) != target {
			continue
		}
		// Compress per-hop arrivals of body flits: show head/tail flits
		// and every protocol event, skip interior data flit arrivals.
		if (e.Kind == network.EvArrive || e.Kind == network.EvEject) && e.Seq > 0 {
			continue
		}
		if e.Kind == network.EvInject && e.Seq > 0 {
			continue
		}
		fmt.Fprintln(stdout, " ", e)
		shown++
	}
	fmt.Fprintf(stdout, "(%d events shown; head-flit hops and protocol events only)\n", shown)
	if !delivered {
		fmt.Fprintln(stdout, "note: message was still undelivered when tracing stopped")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
