package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunTracesKilledMessage drives the main path on a 4x4 torus at a
// load high enough to force kills and checks a well-formed trace comes
// out.
func TestRunTracesKilledMessage(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-k", "4", "-load", "0.9", "-msglen", "8", "-cycles", "8000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "no message was killed") {
		t.Fatalf("no kill at 0.9 load on a 4x4 torus — suspicious:\n%s", out)
	}
	if !strings.Contains(out, "trace of message ") || !strings.Contains(out, "4x4 torus") {
		t.Fatalf("trace header malformed:\n%s", out)
	}
	if !strings.Contains(out, "events shown; head-flit hops and protocol events only") {
		t.Fatalf("trace footer missing:\n%s", out)
	}
	// A killed message's timeline must show at least inject + kill.
	if !strings.Contains(out, "KILL") {
		t.Fatalf("trace of a killed message shows no KILL event:\n%s", out)
	}
}

// TestRunTracesFKillUnderFaults watches the FCR path: with transient
// corruption an FKILL retransmission should be traced.
func TestRunTracesFKillUnderFaults(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-k", "4", "-protocol", "fcr", "-load", "0.3", "-msglen", "8",
		"-fault-rate", "5e-3", "-cycles", "8000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "no message was killed") {
		t.Fatalf("no FKILL at fault rate 5e-3:\n%s", out)
	}
	if !strings.Contains(out, "FCR") {
		t.Fatalf("header does not echo protocol:\n%s", out)
	}
}

// TestRunDeterministic pins the debugging contract: same seed, same
// trace, byte for byte.
func TestRunDeterministic(t *testing.T) {
	args := []string{"-k", "4", "-load", "0.9", "-msglen", "8", "-cycles", "4000", "-seed", "7"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed produced different traces:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
}

func TestRunRejectsBadProtocol(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "tcp"}, &buf); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

// TestRunQuietWindow checks the graceful no-kill path: a window far
// shorter than the kill timeout cannot contain a kill.
func TestRunQuietWindow(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "4", "-load", "0.05", "-msglen", "8", "-cycles", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no message was killed") {
		t.Fatalf("expected quiet-window notice:\n%s", buf.String())
	}
}
