// Topology generality: the same CR protocol engine runs unchanged on a
// torus, a mesh and a hypercube — the paper's claim that CR applies to
// arbitrary topologies because deadlock freedom comes from the protocol,
// not from topology-specific virtual-channel schedules.
//
//	go run ./examples/custom_topology
package main

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/sim"
	"crnet/internal/stats"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

func main() {
	// An irregular machine: four 4-node clusters on a ring, one express
	// chord across — no dimension order exists here, but CR still works.
	var edges []topology.Edge
	for c := 0; c < 4; c++ {
		base := topology.NodeID(c * 4)
		edges = append(edges,
			topology.Edge{A: base, B: base + 1}, topology.Edge{A: base, B: base + 2},
			topology.Edge{A: base + 1, B: base + 3}, topology.Edge{A: base + 2, B: base + 3},
			topology.Edge{A: base + 3, B: topology.NodeID((c*4 + 4) % 16)},
		)
	}
	edges = append(edges, topology.Edge{A: 1, B: 9}) // express chord
	irregular := topology.MustIrregular("4-cluster ring", 16, edges)

	topos := []topology.Topology{
		topology.NewTorus(8, 2),  // 64 nodes, wraparound rings
		topology.NewMesh(8, 2),   // 64 nodes, no wraparound
		topology.NewHypercube(6), // 64 nodes, 6 dimensions
		topology.NewTorus(4, 3),  // 64 nodes, 3-D torus
		irregular,                // 16 nodes, no regular structure at all
	}
	t := stats.NewTable("CR across topologies (64 nodes, uniform traffic, load 0.3, 16-flit messages)",
		"topology", "diameter", "avg_dist", "capacity", "thpt", "avg_latency", "kills/msg")
	for _, topo := range topos {
		m, err := sim.Run(sim.Config{
			Net: network.Config{
				Topo:     topo,
				Alg:      routing.MinimalAdaptive{},
				Protocol: core.CR,
				BufDepth: 2,
				Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
				Seed:     1,
			},
			Pattern:       "uniform",
			Load:          0.3,
			MsgLen:        16,
			WarmupCycles:  1000,
			MeasureCycles: 5000,
			Seed:          99,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(topo.Name(), topo.Diameter(), topo.AverageDistance(),
			traffic.CapacityFlitsPerNode(topo), m.Throughput, m.AvgLatency, m.KillsPerMsg)
	}
	fmt.Print(t.String())
	fmt.Println("\nNo virtual-channel schedule was changed between rows: the CR")
	fmt.Println("injector only needs each topology's distance function for padding.")
	fmt.Println("The last row has no dimension order at all — DOR cannot route it,")
	fmt.Println("but CR's protocol-level deadlock freedom does not care.")
}
