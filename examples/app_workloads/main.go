// Application workloads: closed-loop communication phases (stencil halo
// exchange, personalized all-to-all, client/server RPC) driven to
// completion on CR and on the DOR baseline — the software-level view of
// the network that the paper's introduction motivates.
//
//	go run ./examples/app_workloads
package main

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/stats"
	"crnet/internal/topology"
	"crnet/internal/workload"
)

func main() {
	g := topology.NewTorus(8, 2)
	schemes := []struct {
		name string
		cfg  network.Config
	}{
		{"CR", network.Config{
			Topo: g, Alg: routing.MinimalAdaptive{}, Protocol: core.CR,
			BufDepth: 2, Backoff: core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		}},
		{"FCR+faults", network.Config{
			Topo: g, Alg: routing.MinimalAdaptive{}, Protocol: core.FCR,
			BufDepth: 2, Backoff: core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			TransientRate: 1e-4,
		}},
		{"DOR", network.Config{
			Topo: g, Alg: routing.DOR{}, Protocol: core.Plain, BufDepth: 2,
		}},
	}
	builders := []func() workload.Workload{
		func() workload.Workload { return workload.NewStencil(g, 20, 16) },
		func() workload.Workload { return workload.NewAllToAll(g.Nodes(), 16, 4) },
		func() workload.Workload {
			servers := []topology.NodeID{0, topology.NodeID(g.Nodes() / 2)}
			return workload.NewRPC(g.Nodes(), servers, 10, 2, 16)
		},
	}

	t := stats.NewTable("Application communication phases on an 8x8 torus",
		"workload", "scheme", "completion_cycles", "messages", "kills+retries")
	for _, build := range builders {
		for _, sc := range schemes {
			w := build()
			res, err := workload.Drive(network.New(sc.cfg), w, 2_000_000)
			if err != nil {
				panic(err)
			}
			cycles := fmt.Sprint(res.CompletionCycles)
			if !res.Completed {
				cycles = "did not finish"
			}
			t.AddRow(w.Name(), sc.name, cycles, res.Messages, res.Kills+res.Retries)
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nNote the FCR row: the same application finishes with end-to-end")
	fmt.Println("data integrity under transient faults, with no software retry layer.")
}
