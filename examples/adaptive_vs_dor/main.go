// Adaptive vs dimension-order routing: the workload from the paper's
// motivation. On transpose traffic every dimension-order route in a
// quadrant funnels through the same turn nodes, while adaptive routing
// spreads messages across all minimal paths. CR delivers full adaptivity
// without virtual channels; DOR gets twice CR's buffer budget and still
// loses as the pattern skews.
//
//	go run ./examples/adaptive_vs_dor
package main

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/sim"
	"crnet/internal/stats"
	"crnet/internal/topology"
)

func run(alg routing.Algorithm, protocol core.Protocol, bufDepth int, pattern string, load float64) sim.Metrics {
	m, err := sim.Run(sim.Config{
		Net: network.Config{
			Topo:     topology.NewTorus(8, 2),
			Alg:      alg,
			Protocol: protocol,
			BufDepth: bufDepth,
			Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			Seed:     1,
		},
		Pattern:       pattern,
		Load:          load,
		MsgLen:        16,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
		Seed:          7,
	})
	if err != nil {
		panic(err)
	}
	return m
}

func main() {
	t := stats.NewTable("CR (adaptive, 1 VC x 2 flits) vs DOR (2 VCs x 2 flits) on an 8x8 torus",
		"pattern", "load", "CR thpt", "DOR thpt", "CR latency", "DOR latency")
	for _, pattern := range []string{"uniform", "transpose", "bit-reversal"} {
		for _, load := range []float64{0.2, 0.4, 0.6} {
			cr := run(routing.MinimalAdaptive{}, core.CR, 2, pattern, load)
			dor := run(routing.DOR{}, core.Plain, 2, pattern, load)
			t.AddRow(pattern, load, cr.Throughput, dor.Throughput, cr.AvgLatency, dor.AvgLatency)
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nCR's margin grows on the skewed patterns: adaptivity routes around")
	fmt.Println("the hot diagonals that dimension-order routing must pass through.")
}
