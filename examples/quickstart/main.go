// Quickstart: build an 8x8 torus with Compressionless Routing, offer a
// moderate uniform load, and print the delivered performance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/sim"
	"crnet/internal/topology"
)

func main() {
	// A CR network needs no virtual channels: fully adaptive minimal
	// routing with 2-flit buffers, deadlock handled by the CR protocol's
	// source timeout + kill + retransmit.
	cfg := network.Config{
		Topo:     topology.NewTorus(8, 2),
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		VCs:      1,
		BufDepth: 2,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Seed:     1,
	}

	m, err := sim.Run(sim.Config{
		Net:           cfg,
		Pattern:       "uniform",
		Load:          0.25, // fraction of the torus' uniform capacity
		MsgLen:        16,   // flits per message
		WarmupCycles:  1000,
		MeasureCycles: 5000,
		Seed:          42,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("Compressionless Routing on an 8x8 torus, uniform traffic at 25% load")
	fmt.Printf("  delivered:   %d messages\n", m.Delivered)
	fmt.Printf("  throughput:  %.4f flits/node/cycle\n", m.Throughput)
	fmt.Printf("  latency:     avg %.1f cycles (p95 %d)\n", m.AvgLatency, m.P95Latency)
	fmt.Printf("  kills:       %.4f per message (deadlock recovery events)\n", m.KillsPerMsg)
	fmt.Printf("  pad cost:    %.3f pad flits per data flit\n", m.PadOverhead)
	fmt.Printf("  integrity:   %d corrupt, %d reordered, %d failed\n",
		m.DeliveredCorrupt, m.OrderErrors, m.FailedMessages)
}
