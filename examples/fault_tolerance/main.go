// Fault tolerance with FCR: transient data corruption on every link and
// a permanent link failure mid-run. FCR detects corrupt flits with
// per-flit checksums, tears the worm down backward (FKILL) before the
// source finishes its padded injection, and retransmits — end-to-end
// intact delivery with no acknowledgement messages and no software
// retry buffers. An unprotected CR network on the same faulty links
// silently delivers corrupted payloads.
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/sim"
	"crnet/internal/topology"
)

func main() {
	topo := topology.NewTorus(8, 2)
	base := network.Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.FCR,
		BufDepth:      2,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		TransientRate: 5e-4, // one corruption per 2000 flit-hops
		MisrouteAfter: 2,    // route around dead links from the 3rd attempt
		MaxDetours:    4,
		Seed:          11,
	}
	// Kill four random links a third of the way into the run.
	base.Faults = faults.RandomLinks(network.LinksOf(topo), 4, 3000, 5)

	fmt.Println("FCR on an 8x8 torus: transient corruption (5e-4/flit-hop) + 4 links die at cycle 3000")
	m, err := sim.Run(sim.Config{
		Net:           base,
		Pattern:       "uniform",
		Load:          0.25,
		MsgLen:        16,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		Seed:          23,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  delivered:        %d messages, %d corrupt  <- FCR guarantee: zero corrupt\n",
		m.Delivered, m.DeliveredCorrupt)
	fmt.Printf("  faults injected:  %d transient corruptions\n", m.TransientFaults)
	fmt.Printf("  fkill retries:    %.4f per message\n", m.FKillsPerMsg)
	fmt.Printf("  misroute hops:    %d (routing around the dead links)\n", m.Misroutes)
	fmt.Printf("  late fkills:      %d  <- padding bound held\n", m.LateFKills)
	fmt.Printf("  abandoned:        %d messages\n", m.FailedMessages)
	fmt.Printf("  latency:          avg %.1f cycles (p95 %d)\n\n", m.AvgLatency, m.P95Latency)

	// The same faults without FCR's protection: CR pads and retries for
	// deadlock recovery but carries no checksums, so corrupt payloads
	// reach the application.
	unprotected := base
	unprotected.Protocol = core.CR
	unprotected.Faults = nil // keep it to transient faults only
	mu, err := sim.Run(sim.Config{
		Net:           unprotected,
		Pattern:       "uniform",
		Load:          0.25,
		MsgLen:        16,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		Seed:          23,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("Same transient faults without FCR protection (plain CR):")
	fmt.Printf("  delivered:        %d messages, %d corrupt  <- silent data corruption\n",
		mu.Delivered, mu.DeliveredCorrupt)
}
