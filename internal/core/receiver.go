package core

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/topology"
)

// FKiller lets the receiver tear a worm down backward from one of its
// node's ejection channels; the network wires it to the local router.
type FKiller interface {
	FKill(channel int, worm flit.WormID)
}

// Delivery is one message handed to the local node by the receiver.
type Delivery struct {
	Msg     flit.MessageID
	Worm    flit.WormID
	Src     topology.NodeID
	DataLen int
	Time    int64
	// DataOK reports whether every data payload matched the expected
	// deterministic pattern end to end. Under FCR it is always true for
	// delivered messages (corrupt worms are FKILLed); under Plain/CR
	// with fault injection it exposes silent data corruption.
	DataOK bool

	// Stamps are the source-side phase timestamps of the delivered
	// attempt, copied from its head flit; HeadArrived is the cycle that
	// head reached this receiver. Together with Time (tail drained)
	// they decompose end-to-end latency into queue/retry/flight/drain
	// phases (see internal/obs.PhaseBreakdown).
	Stamps      flit.Stamps
	HeadArrived int64
}

// RecvStats counts receiver-side events.
type RecvStats struct {
	Delivered     int64 // messages delivered to the node
	CorruptData   int64 // delivered messages with payload mismatches (non-FCR)
	FKillsSent    int64 // backward tear-downs requested on corruption
	KilledPartial int64 // partial worms discarded by forward kills
	DataFlits     int64 // head+data flits received
	PadFlits      int64 // padding flits received and stripped
	OrderErrors   int64 // per source FIFO violations observed
}

// assembly is the in-progress reception state of one worm.
type assembly struct {
	src     topology.NodeID
	msg     flit.MessageID
	dataLen int
	nextSeq int
	channel int
	dataOK  bool

	stamps      flit.Stamps // phase timestamps from the head flit
	headArrived int64       // cycle the head reached this receiver
}

// Receiver is one node's reception engine: it assembles worms from the
// ejection channels, strips padding, verifies checksums under FCR and
// delivers completed messages.
type Receiver struct {
	cfg    Config          //cr:nosnap construction parameters
	node   topology.NodeID //cr:nosnap node identity, fixed at construction
	fkill  FKiller         //cr:nosnap port adapter, rewired by the owner after restore
	checks bool            //cr:nosnap derived from cfg at construction (end-to-end payload pattern checking)

	asm map[flit.WormID]*assembly
	// deliveries accumulates the cycle's completions; drained holds the
	// slice handed out by the previous Drain, reused as the next
	// accumulation buffer (double buffering — no allocation per cycle).
	deliveries []Delivery                         //cr:nosnap cycle-transient completions, cleared by LoadState; checkpoints sit at drain boundaries
	drained    []Delivery                         //cr:nosnap spare drain buffer, re-grown on demand
	pool       []*assembly                        //cr:nosnap recycled assembly records, empty-rebuilt on demand
	lastSeen   map[topology.NodeID]flit.MessageID // per-source FIFO watermark
	stats      RecvStats
}

// NewReceiver returns a receiver for node. fkill may be nil only for
// Plain and CR configurations (they never send FKILLs).
func NewReceiver(cfg Config, node topology.NodeID, fkill FKiller) *Receiver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Protocol == FCR && fkill == nil {
		panic("core: FCR receiver needs an FKiller")
	}
	return &Receiver{
		cfg:      cfg,
		node:     node,
		fkill:    fkill,
		checks:   true,
		asm:      make(map[flit.WormID]*assembly),
		lastSeen: make(map[topology.NodeID]flit.MessageID),
	}
}

// Stats returns a copy of the receiver's counters.
func (rc *Receiver) Stats() RecvStats { return rc.stats }

// Pending returns the number of partially received worms.
func (rc *Receiver) Pending() int { return len(rc.asm) }

// Drain returns and clears the deliveries accumulated since the last
// call. The simulation harness drains once per cycle. The returned slice
// is only valid until the call after next: the receiver alternates two
// buffers, so callers must copy anything they keep past one cycle.
//
//cr:hotpath delivery handoff, once per accepting receiver per cycle
func (rc *Receiver) Drain() []Delivery {
	d := rc.deliveries
	rc.deliveries = rc.drained[:0]
	rc.drained = d
	return d
}

// Reset returns the receiver to its initial empty state, retaining its
// allocated buffers.
func (rc *Receiver) Reset() {
	// The visit order only decides which *assembly pointers land where in
	// the pool, and getAsm zeroes a record before reuse, so pointer
	// identity is the sole difference — unobservable in any simulation
	// output.
	//cr:orderinvariant only pool pointer order varies; records are zeroed on reuse
	for w, a := range rc.asm {
		rc.putAsm(a)
		delete(rc.asm, w)
	}
	clear(rc.lastSeen)
	rc.deliveries = rc.deliveries[:0]
	rc.drained = rc.drained[:0]
	rc.stats = RecvStats{}
}

// getAsm takes an assembly record from the pool (or allocates one) and
// initializes it.
//
//cr:hotpath assembly acquisition on every head flit
func (rc *Receiver) getAsm() *assembly {
	if n := len(rc.pool); n > 0 {
		a := rc.pool[n-1]
		rc.pool = rc.pool[:n-1]
		*a = assembly{}
		return a
	}
	return &assembly{} //cr:alloc pool miss, only before the pool warms up; steady state always hits
}

//cr:hotpath assembly release on every delivery or tear-down
func (rc *Receiver) putAsm(a *assembly) { rc.pool = append(rc.pool, a) }

// Accept consumes one flit arriving on ejection channel ch at cycle now.
//
//cr:hotpath per-flit reception entry point
func (rc *Receiver) Accept(ch int, f flit.Flit, now int64) {
	a := rc.asm[f.Worm]
	if f.Kind == flit.Head {
		if a != nil {
			panic(fmt.Sprintf("core: duplicate head for worm %d at node %d", f.Worm, rc.node))
		}
		if rc.cfg.Protocol == FCR && !f.Verify() {
			// Corrupt header that slipped to the destination (possible
			// when corruption happens on the final link).
			rc.reject(ch, f.Worm)
			return
		}
		h := flit.DecodeHeader(f.Payload)
		a = rc.getAsm()
		*a = assembly{src: h.Src, msg: f.Worm.Message(), dataLen: h.DataLen, nextSeq: 1, channel: ch, dataOK: true,
			stamps: f.Stamps, headArrived: now}
		rc.asm[f.Worm] = a
		rc.stats.DataFlits++
		if f.Tail {
			rc.deliver(f.Worm, a, now)
		}
		return
	}
	if a == nil {
		// Flits of a worm we already rejected; the router purge races
		// one flit — it is absorbed there, so reaching here means a
		// protocol bug.
		panic(fmt.Sprintf("core: body flit %v without assembly at node %d", f, rc.node))
	}
	if f.Seq != a.nextSeq {
		panic(fmt.Sprintf("core: worm %d flit out of order at node %d: seq %d, want %d",
			f.Worm, rc.node, f.Seq, a.nextSeq))
	}
	a.nextSeq++
	switch f.Kind {
	case flit.Data:
		rc.stats.DataFlits++
		if rc.cfg.Protocol == FCR && !f.Verify() {
			rc.reject(ch, f.Worm)
			return
		}
		if rc.checks && f.Payload != flit.PayloadWord(a.msg, f.Seq) {
			a.dataOK = false
		}
	case flit.Pad:
		rc.stats.PadFlits++
		// Padding carries no information; corruption on it is ignored
		// (the data was already verified by the time pads arrive).
	}
	if f.Tail {
		rc.deliver(f.Worm, a, now)
	}
}

// reject tears the worm down backward and forgets it.
func (rc *Receiver) reject(ch int, worm flit.WormID) {
	rc.stats.FKillsSent++
	if a, ok := rc.asm[worm]; ok {
		rc.putAsm(a)
		delete(rc.asm, worm)
	}
	rc.fkill.FKill(ch, worm)
}

//cr:hotpath message completion on every tail flit
func (rc *Receiver) deliver(worm flit.WormID, a *assembly, now int64) {
	delete(rc.asm, worm)
	defer rc.putAsm(a)
	rc.stats.Delivered++
	if !a.dataOK {
		rc.stats.CorruptData++
	}
	if last, ok := rc.lastSeen[a.src]; ok && a.msg < last {
		rc.stats.OrderErrors++
	}
	rc.lastSeen[a.src] = a.msg
	rc.deliveries = append(rc.deliveries, Delivery{
		Msg:         a.msg,
		Worm:        worm,
		Src:         a.src,
		DataLen:     a.dataLen,
		Time:        now,
		DataOK:      a.dataOK,
		Stamps:      a.stamps,
		HeadArrived: a.headArrived,
	})
}

// Discard drops the partial assembly of a worm whose forward KILL
// reached the destination.
func (rc *Receiver) Discard(worm flit.WormID) {
	if a, ok := rc.asm[worm]; ok {
		rc.putAsm(a)
		delete(rc.asm, worm)
		rc.stats.KilledPartial++
	}
}
