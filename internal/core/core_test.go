package core

import (
	"testing"
	"testing/quick"

	"crnet/internal/flit"
	"crnet/internal/topology"
)

// fakePort is a scripted injection channel for driving the injector.
type fakePort struct {
	free     int
	notReady bool
	injected []flit.Flit
	kills    []flit.WormID
}

func (p *fakePort) Ready() bool { return !p.notReady }
func (p *fakePort) Free() int   { return p.free }
func (p *fakePort) Inject(f flit.Flit) {
	if p.free == 0 {
		panic("inject into full port")
	}
	p.injected = append(p.injected, f)
}
func (p *fakePort) Kill(w flit.WormID) { p.kills = append(p.kills, w) }

func crConfig() Config {
	return Config{Protocol: CR, BufDepth: 2, VCs: 1, Backoff: Backoff{Kind: BackoffStatic, Gap: 8}}
}

func fcrConfig() Config {
	c := crConfig()
	c.Protocol = FCR
	return c
}

func newInj(t *testing.T, cfg Config, ports ...*fakePort) (*Injector, []*fakePort) {
	t.Helper()
	if len(ports) == 0 {
		ports = []*fakePort{{free: 1 << 20}}
	}
	ifaces := make([]Port, len(ports))
	for i, p := range ports {
		ifaces[i] = p
	}
	topo := topology.NewTorus(8, 2)
	return NewInjector(cfg, topo, 0, ifaces, 1), ports
}

func msgTo(dst topology.NodeID, length int) flit.Message {
	return flit.Message{ID: 1, Src: 0, Dst: dst, DataLen: length}
}

func TestConfigValidate(t *testing.T) {
	good := crConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Protocol: Protocol(9), BufDepth: 2, VCs: 1},
		{Protocol: CR, BufDepth: 0, VCs: 1},
		{Protocol: CR, BufDepth: 2, VCs: 0},
		{Protocol: CR, BufDepth: 2, VCs: 1, Timeout: -1},
		{Protocol: CR, BufDepth: 2, VCs: 1, MaxAttempts: 300},
		{Protocol: CR, BufDepth: 2, VCs: 1, MisrouteAfter: 1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestBackoffPolicies(t *testing.T) {
	s := Backoff{Kind: BackoffStatic, Gap: 16}
	for a := 0; a < 5; a++ {
		if s.GapFor(a) != 16 {
			t.Fatalf("static gap(%d) = %d", a, s.GapFor(a))
		}
	}
	e := Backoff{Kind: BackoffExponential, Gap: 4, Cap: 64}
	want := []int{4, 8, 16, 32, 64, 64, 64}
	for a, w := range want {
		if got := e.GapFor(a); got != w {
			t.Fatalf("exp gap(%d) = %d, want %d", a, got, w)
		}
	}
	// Default cap and overflow safety.
	d := Backoff{Kind: BackoffExponential, Gap: 2}
	if d.GapFor(100) != 128 {
		t.Fatalf("default cap = %d, want 64*2", d.GapFor(100))
	}
	z := Backoff{Kind: BackoffStatic}
	if z.GapFor(0) != 1 {
		t.Fatal("zero gap not clamped to 1")
	}
}

func TestSlackAndIminMonotone(t *testing.T) {
	f := func(distRaw, bufRaw uint8) bool {
		dist := int(distRaw%32) + 1
		buf := int(bufRaw%8) + 1
		s := SlackBound(dist, buf)
		if s != buf*(dist+1) {
			return false
		}
		if IminCR(dist, buf) != s+1 {
			return false
		}
		// FCR length dominates CR's commit bound and grows with data.
		if IminFCR(10, dist, buf) <= IminCR(dist, buf) {
			return false
		}
		return IminFCR(11, dist, buf) == IminFCR(10, dist, buf)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRPaddingShortMessage(t *testing.T) {
	inj, ports := newInj(t, crConfig())
	dst := topology.NodeID(3) // distance 3 on the 8x2 torus
	inj.Submit(msgTo(dst, 4))
	for c := int64(0); c < 100 && inj.Busy() || len(ports[0].injected) == 0; c++ {
		inj.Tick(c)
	}
	// dist=3, B=2: Imin = 2*4 + 1 = 9; message 4 flits -> 5 pads.
	want := IminCR(3, 2)
	if got := len(ports[0].injected); got != want {
		t.Fatalf("injected %d flits, want %d", got, want)
	}
	pads := 0
	for _, f := range ports[0].injected {
		if f.Kind == flit.Pad {
			pads++
		}
	}
	if pads != want-4 {
		t.Fatalf("pads = %d, want %d", pads, want-4)
	}
	last := ports[0].injected[len(ports[0].injected)-1]
	if !last.Tail {
		t.Fatal("final flit not tail-marked")
	}
	st := inj.Stats()
	if st.Completed != 1 || st.PadFlits != int64(want-4) || st.DataFlits != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCRLongMessageNoPadding(t *testing.T) {
	inj, ports := newInj(t, crConfig())
	dst := topology.NodeID(1)
	inj.Submit(msgTo(dst, 64)) // dist 1: Imin = 2*2+1 = 5 << 64
	for c := int64(0); c < 200; c++ {
		inj.Tick(c)
	}
	if got := len(ports[0].injected); got != 64 {
		t.Fatalf("injected %d flits, want 64 (no padding)", got)
	}
}

func TestPlainProtocolNoPaddingNoKills(t *testing.T) {
	cfg := crConfig()
	cfg.Protocol = Plain
	inj, ports := newInj(t, cfg, &fakePort{free: 0})
	inj.Submit(msgTo(3, 4))
	for c := int64(0); c < 1000; c++ {
		inj.Tick(c)
	}
	if len(ports[0].kills) != 0 {
		t.Fatal("plain protocol killed a worm")
	}
	if inj.Stats().StallCycles == 0 {
		t.Fatal("expected stalls against a full port")
	}
}

func TestTimeoutKillAndRetry(t *testing.T) {
	cfg := crConfig()
	cfg.Timeout = 10
	port := &fakePort{free: 0} // injection always blocked
	inj, _ := newInj(t, cfg, port)
	inj.Submit(msgTo(3, 4))
	var killCycle int64 = -1
	for c := int64(0); c < 12; c++ {
		inj.Tick(c)
		if len(port.kills) == 1 && killCycle < 0 {
			killCycle = c
		}
	}
	if killCycle != 9 {
		t.Fatalf("kill at cycle %d, want 9 (10 stalled ticks)", killCycle)
	}
	if inj.Stats().Kills != 1 {
		t.Fatalf("Kills = %d", inj.Stats().Kills)
	}
	// After the jittered static gap (8-16 cycles), the retry starts with
	// attempt 1 and needs 12 more ticks to finish the 12-flit frame.
	port.free = 1 << 20
	for c := killCycle + 1; c < killCycle+60; c++ {
		inj.Tick(c)
	}
	if inj.Stats().Retries != 1 {
		t.Fatalf("Retries = %d", inj.Stats().Retries)
	}
	if len(port.injected) == 0 || port.injected[0].Worm.Attempt() != 1 {
		t.Fatal("retry did not use attempt 1")
	}
	if inj.Stats().Completed != 1 {
		t.Fatal("retried message did not complete")
	}
}

func TestTimeoutRuleDefault(t *testing.T) {
	// timeout = framedLen * VCs when Timeout == 0.
	cfg := crConfig()
	cfg.VCs = 2
	port := &fakePort{free: 0}
	inj, _ := newInj(t, cfg, port)
	inj.Submit(msgTo(3, 4))
	timeout := int64(IminCR(3, 2) * 2) // framed length x 2 VCs
	for c := int64(0); c < timeout-1; c++ {
		inj.Tick(c)
	}
	if len(port.kills) != 0 {
		t.Fatal("killed before rule timeout")
	}
	inj.Tick(timeout - 1)
	if len(port.kills) != 1 {
		t.Fatal("no kill at rule timeout")
	}
}

func TestNoKillAfterCommit(t *testing.T) {
	cfg := crConfig()
	cfg.Timeout = 5
	port := &fakePort{free: 1 << 20}
	inj, _ := newInj(t, cfg, port)
	inj.Submit(msgTo(3, 64)) // Imin = 9 << 64
	var c int64
	for ; c < 20; c++ { // inject 20 flits > Imin
		inj.Tick(c)
	}
	port.free = 0 // block forever
	for ; c < 200; c++ {
		inj.Tick(c)
	}
	if len(port.kills) != 0 {
		t.Fatal("committed worm was killed")
	}
}

func TestMaxAttemptsGivesUp(t *testing.T) {
	cfg := crConfig()
	cfg.Timeout = 2
	cfg.MaxAttempts = 3
	cfg.Backoff = Backoff{Kind: BackoffStatic, Gap: 1}
	port := &fakePort{free: 0}
	inj, _ := newInj(t, cfg, port)
	inj.Submit(msgTo(3, 4))
	for c := int64(0); c < 100; c++ {
		inj.Tick(c)
	}
	st := inj.Stats()
	if st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", st.Failed)
	}
	if st.Kills != 3 {
		t.Fatalf("Kills = %d, want 3 (attempts 0,1,2)", st.Kills)
	}
	if inj.Busy() {
		t.Fatal("injector still busy after giving up")
	}
}

func TestFKilledTriggersRetry(t *testing.T) {
	cfg := fcrConfig()
	port := &fakePort{free: 2} // trickle so the worm stays in flight
	inj, _ := newInj(t, cfg, port)
	inj.Submit(msgTo(3, 16))
	inj.Tick(0)
	inj.Tick(1)
	worm := port.injected[0].Worm
	inj.FKilled(worm, 2)
	st := inj.Stats()
	if st.FKills != 1 {
		t.Fatalf("FKills = %d", st.FKills)
	}
	// Retry after the gap with the next attempt id.
	port.free = 1 << 20
	for c := int64(3); c < 200; c++ {
		inj.Tick(c)
	}
	if inj.Stats().Retries != 1 || inj.Stats().Completed != 1 {
		t.Fatalf("stats after FKILL retry: %+v", inj.Stats())
	}
}

func TestFKilledStaleAndLate(t *testing.T) {
	inj, ports := newInj(t, fcrConfig())
	inj.Submit(msgTo(3, 4))
	for c := int64(0); c < 100; c++ {
		inj.Tick(c)
	}
	worm := ports[0].injected[0].Worm
	inj.FKilled(worm, 100) // after completion
	if inj.Stats().LateFKills+inj.Stats().StaleFKills != 1 {
		t.Fatalf("late/stale FKILL not counted: %+v", inj.Stats())
	}
	inj.FKilled(flit.MakeWormID(999, 0), 100) // unknown worm
	if inj.Stats().LateFKills+inj.Stats().StaleFKills != 2 {
		t.Fatalf("unknown FKILL not counted: %+v", inj.Stats())
	}
}

func TestFCRPaddingCoversReturnPath(t *testing.T) {
	inj, ports := newInj(t, fcrConfig())
	dst := topology.NodeID(3)
	inj.Submit(msgTo(dst, 4))
	for c := int64(0); c < 200; c++ {
		inj.Tick(c)
	}
	want := IminFCR(4, 3, 2)
	if got := len(ports[0].injected); got != want {
		t.Fatalf("FCR frame = %d flits, want %d", got, want)
	}
}

func TestMisrouteWidensPadding(t *testing.T) {
	cfg := crConfig()
	cfg.Timeout = 2
	cfg.MisrouteAfter = 1
	cfg.MaxDetours = 2
	cfg.Backoff = Backoff{Kind: BackoffStatic, Gap: 1}
	port := &fakePort{free: 0}
	inj, _ := newInj(t, cfg, port)
	inj.Submit(msgTo(3, 4))
	// Attempt 0 gets killed; attempt 1 may misroute so pads widen.
	var c int64
	for ; len(port.kills) == 0; c++ {
		inj.Tick(c)
	}
	port.free = 1 << 20
	for ; c < 300; c++ {
		inj.Tick(c)
	}
	want := IminCR(3+2*2, 2)
	if got := len(port.injected); got != want {
		t.Fatalf("misrouted attempt frame = %d flits, want %d", got, want)
	}
}

func TestMultiChannelParallelSends(t *testing.T) {
	p1, p2 := &fakePort{free: 1 << 20}, &fakePort{free: 1 << 20}
	inj, _ := newInj(t, crConfig(), p1, p2)
	m1 := msgTo(3, 4)
	m2 := msgTo(5, 4)
	m2.ID = 2
	inj.Submit(m1)
	inj.Submit(m2)
	inj.Tick(0)
	if len(p1.injected) != 1 || len(p2.injected) != 1 {
		t.Fatalf("both channels should start: %d/%d", len(p1.injected), len(p2.injected))
	}
	if p1.injected[0].Dst == p2.injected[0].Dst {
		t.Fatal("same message on both channels")
	}
}

func TestQueueFIFO(t *testing.T) {
	port := &fakePort{free: 1 << 20}
	inj, _ := newInj(t, crConfig(), port)
	for i := 1; i <= 3; i++ {
		m := msgTo(3, 2)
		m.ID = flit.MessageID(i)
		inj.Submit(m)
	}
	for c := int64(0); c < 200; c++ {
		inj.Tick(c)
	}
	var order []flit.MessageID
	for _, f := range port.injected {
		if f.Kind == flit.Head {
			order = append(order, f.Worm.Message())
		}
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("transmission order %v", order)
	}
}

// --- Receiver tests ---

type fakeFKiller struct {
	calls []struct {
		ch   int
		worm flit.WormID
	}
}

func (f *fakeFKiller) FKill(ch int, worm flit.WormID) {
	f.calls = append(f.calls, struct {
		ch   int
		worm flit.WormID
	}{ch, worm})
}

func feedWorm(rc *Receiver, fr flit.Frame, ch int, start int64) {
	for s := 0; s < fr.TotalLen(); s++ {
		rc.Accept(ch, fr.FlitAt(s), start+int64(s))
	}
}

func TestReceiverDeliversAndStripsPads(t *testing.T) {
	rc := NewReceiver(crConfig(), 5, nil)
	fr := flit.Frame{Msg: flit.Message{ID: 7, Src: 1, Dst: 5, DataLen: 4}, PadLen: 6}
	feedWorm(rc, fr, 0, 100)
	ds := rc.Drain()
	if len(ds) != 1 {
		t.Fatalf("%d deliveries", len(ds))
	}
	d := ds[0]
	if d.Msg != 7 || d.Src != 1 || d.DataLen != 4 || !d.DataOK || d.Time != 109 {
		t.Fatalf("delivery %+v", d)
	}
	st := rc.Stats()
	if st.PadFlits != 6 || st.DataFlits != 4 || st.Delivered != 1 {
		t.Fatalf("stats %+v", st)
	}
	if rc.Pending() != 0 {
		t.Fatal("assembly leaked")
	}
	if len(rc.Drain()) != 0 {
		t.Fatal("drain not cleared")
	}
}

func TestReceiverSingleFlitMessage(t *testing.T) {
	rc := NewReceiver(crConfig(), 5, nil)
	fr := flit.Frame{Msg: flit.Message{ID: 9, Src: 2, Dst: 5, DataLen: 1}}
	feedWorm(rc, fr, 0, 0)
	if len(rc.Drain()) != 1 {
		t.Fatal("single-flit worm not delivered")
	}
}

func TestReceiverFKillsCorruptData(t *testing.T) {
	fk := &fakeFKiller{}
	rc := NewReceiver(fcrConfig(), 5, fk)
	fr := flit.Frame{Msg: flit.Message{ID: 7, Src: 1, Dst: 5, DataLen: 4}, PadLen: 6}
	rc.Accept(1, fr.FlitAt(0), 0)
	bad := fr.FlitAt(1)
	bad.Payload ^= 1 << 3
	rc.Accept(1, bad, 1)
	if len(fk.calls) != 1 || fk.calls[0].ch != 1 || fk.calls[0].worm != fr.WormID() {
		t.Fatalf("FKill calls %v", fk.calls)
	}
	if rc.Pending() != 0 {
		t.Fatal("rejected worm still pending")
	}
	if len(rc.Drain()) != 0 {
		t.Fatal("rejected worm delivered")
	}
	if rc.Stats().FKillsSent != 1 {
		t.Fatalf("stats %+v", rc.Stats())
	}
}

func TestReceiverFKillsCorruptHeadAtDestination(t *testing.T) {
	fk := &fakeFKiller{}
	rc := NewReceiver(fcrConfig(), 5, fk)
	fr := flit.Frame{Msg: flit.Message{ID: 7, Src: 1, Dst: 5, DataLen: 4}, PadLen: 6}
	bad := fr.FlitAt(0)
	bad.Payload ^= 1 << 60
	rc.Accept(0, bad, 0)
	if len(fk.calls) != 1 {
		t.Fatal("corrupt head at destination not FKILLed")
	}
}

func TestReceiverCRPassesCorruptionThroughFlagged(t *testing.T) {
	// CR has no FCR verification: corrupted payloads are delivered but
	// flagged DataOK=false by the end-to-end checker.
	rc := NewReceiver(crConfig(), 5, nil)
	fr := flit.Frame{Msg: flit.Message{ID: 7, Src: 1, Dst: 5, DataLen: 3}, PadLen: 8}
	rc.Accept(0, fr.FlitAt(0), 0)
	bad := fr.FlitAt(1)
	bad.Payload ^= 1
	rc.Accept(0, bad, 1)
	for s := 2; s < fr.TotalLen(); s++ {
		rc.Accept(0, fr.FlitAt(s), int64(s))
	}
	ds := rc.Drain()
	if len(ds) != 1 || ds[0].DataOK {
		t.Fatalf("corrupt CR delivery not flagged: %+v", ds)
	}
	if rc.Stats().CorruptData != 1 {
		t.Fatalf("stats %+v", rc.Stats())
	}
}

func TestReceiverDiscardOnForwardKill(t *testing.T) {
	rc := NewReceiver(crConfig(), 5, nil)
	fr := flit.Frame{Msg: flit.Message{ID: 7, Src: 1, Dst: 5, DataLen: 4}, PadLen: 6}
	rc.Accept(0, fr.FlitAt(0), 0)
	rc.Accept(0, fr.FlitAt(1), 1)
	rc.Discard(fr.WormID())
	if rc.Pending() != 0 {
		t.Fatal("discard left assembly")
	}
	if rc.Stats().KilledPartial != 1 {
		t.Fatalf("stats %+v", rc.Stats())
	}
	rc.Discard(fr.WormID()) // idempotent
	if rc.Stats().KilledPartial != 1 {
		t.Fatal("double discard counted twice")
	}
}

func TestReceiverOrderWatermark(t *testing.T) {
	rc := NewReceiver(crConfig(), 5, nil)
	mk := func(id flit.MessageID) flit.Frame {
		return flit.Frame{Msg: flit.Message{ID: id, Src: 1, Dst: 5, DataLen: 2}}
	}
	feedWorm(rc, mk(10), 0, 0)
	feedWorm(rc, mk(12), 0, 10)
	feedWorm(rc, mk(11), 0, 20) // out of order from source 1
	if rc.Stats().OrderErrors != 1 {
		t.Fatalf("OrderErrors = %d, want 1", rc.Stats().OrderErrors)
	}
}

func TestReceiverOutOfSeqPanics(t *testing.T) {
	rc := NewReceiver(crConfig(), 5, nil)
	fr := flit.Frame{Msg: flit.Message{ID: 7, Src: 1, Dst: 5, DataLen: 4}, PadLen: 6}
	rc.Accept(0, fr.FlitAt(0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("seq gap not detected")
		}
	}()
	rc.Accept(0, fr.FlitAt(2), 1)
}

func TestProtocolString(t *testing.T) {
	if Plain.String() != "plain" || CR.String() != "CR" || FCR.String() != "FCR" {
		t.Fatal("protocol strings wrong")
	}
}

func TestPadAdjustWidensAndShrinks(t *testing.T) {
	base := fcrConfig()
	widened := base
	widened.PadAdjust = 10
	shrunk := base
	shrunk.PadAdjust = -1000 // clamped at zero pads

	count := func(cfg Config) int {
		inj, ports := newInj(t, cfg)
		inj.Submit(msgTo(3, 4))
		for c := int64(0); c < 400; c++ {
			inj.Tick(c)
		}
		return len(ports[0].injected)
	}
	baseLen := count(base)
	if got := count(widened); got != baseLen+10 {
		t.Fatalf("widened frame = %d, want %d", got, baseLen+10)
	}
	if got := count(shrunk); got != 4 {
		t.Fatalf("fully shrunk frame = %d, want bare message length 4", got)
	}
}

func TestPadAdjustAppliesToCRToo(t *testing.T) {
	cfg := crConfig()
	cfg.PadAdjust = 5
	inj, ports := newInj(t, cfg)
	inj.Submit(msgTo(3, 4))
	for c := int64(0); c < 400; c++ {
		inj.Tick(c)
	}
	want := IminCR(3, 2) + 5
	if got := len(ports[0].injected); got != want {
		t.Fatalf("CR adjusted frame = %d, want %d", got, want)
	}
}

func TestFKilledMultiChannelDisambiguation(t *testing.T) {
	p1, p2 := &fakePort{free: 2}, &fakePort{free: 2}
	inj, _ := newInj(t, fcrConfig(), p1, p2)
	m1 := msgTo(3, 16)
	m2 := msgTo(5, 16)
	m2.ID = 2
	inj.Submit(m1)
	inj.Submit(m2)
	inj.Tick(0) // both channels start
	worm2 := p2.injected[0].Worm
	inj.FKilled(worm2, 1)
	st := inj.Stats()
	if st.FKills != 1 {
		t.Fatalf("FKills = %d", st.FKills)
	}
	// Channel 1's worm must keep sending: next tick injects its flit.
	before := len(p1.injected)
	inj.Tick(1)
	if len(p1.injected) != before+1 {
		t.Fatal("FKILL of channel 2's worm stalled channel 1")
	}
}

func TestInjectorRespectsNotReadyChannel(t *testing.T) {
	port := &fakePort{free: 1 << 20, notReady: true}
	inj, _ := newInj(t, crConfig(), port)
	inj.Submit(msgTo(3, 4))
	for c := int64(0); c < 50; c++ {
		inj.Tick(c)
	}
	if len(port.injected) != 0 {
		t.Fatal("injected into a not-ready channel")
	}
	port.notReady = false
	for c := int64(50); c < 200; c++ {
		inj.Tick(c)
	}
	if inj.Stats().Completed != 1 {
		t.Fatal("message did not complete after channel became ready")
	}
}
