package core

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/rng"
	"crnet/internal/topology"
)

// Port is one injection channel into the local router, provided by the
// network. Free/Inject mirror the router's injection buffer; Kill
// applies an out-of-band forward kill to the channel's current worm and
// propagates the tear-down into the network.
type Port interface {
	// Ready reports whether the channel is idle and empty, so a new
	// worm's head may enter. The previous worm's tail must have left the
	// injection buffer before the next worm starts (wormhole channels
	// carry one worm at a time).
	Ready() bool
	// Free returns the free flit slots of the channel's buffer.
	Free() int
	// Inject appends one flit; the caller must have checked Free.
	Inject(f flit.Flit)
	// Kill tears down the given worm starting at this injection channel.
	Kill(worm flit.WormID)
}

// chState is the per-injection-channel protocol engine state machine.
type chState struct {
	phase   chPhase
	frame   flit.Frame
	imin    int // commit threshold in injected flits (timeout kills allowed below it)
	next    int // next flit sequence to inject
	stall   int // consecutive cycles injection made no progress
	retryAt int64

	createTime   int64 // message creation (queue latency base)
	attemptStart int64 // current attempt's first injection cycle

	// Phase-timestamp bookkeeping for the latency decomposition: the
	// head-injection cycle of attempt 0, the cumulative cycles spent in
	// chWaiting (retransmission backoff), and when the current wait
	// began. Stamped onto each attempt's head flit (see flit.Stamps).
	firstInject int64
	backoff     int64
	waitStart   int64
}

type chPhase int

const (
	chIdle chPhase = iota
	chSending
	chWaiting // backoff before retransmission
)

// InjStats counts injector-side protocol events.
type InjStats struct {
	Submitted   int64 // messages accepted into the queue
	Completed   int64 // worms fully injected (source-side completion)
	Kills       int64 // timeout kills issued
	FKills      int64 // backward FKILLs received (FCR retransmissions)
	StaleFKills int64 // FKILLs for worms no longer being sent
	Failed      int64 // messages abandoned after MaxAttempts
	Retries     int64 // retransmission attempts started
	DataFlits   int64 // data flits injected (including heads)
	PadFlits    int64 // protocol padding flits injected
	StallCycles int64 // injection-blocked cycles while sending
	LateFKills  int64 // FKILLs after the worm completed (must be 0; pad bound check)
}

// Failure records one message abandoned after exhausting its attempts,
// for the watchdog's delivery-obligation check: an abandonment is only
// legitimate if the fault schedule actually disconnected Src from Dst.
type Failure struct {
	Msg      flit.MessageID
	Src, Dst topology.NodeID
	Created  int64 // message creation cycle
	Cycle    int64 // abandonment cycle
	Attempts int
}

// maxFailureRecords bounds the per-injector failure log so a pathological
// run cannot grow memory without bound; counters in InjStats stay exact.
const maxFailureRecords = 1024

// Injector is one node's transmission engine. It owns a FIFO of pending
// messages and drives one protocol state machine per injection channel.
// Messages are transmitted serially per channel and a killed message
// retries in place, so injection order per channel matches submission
// order. The paper's order-preservation property — per source/destination
// pair FIFO delivery — follows when both interfaces use a single channel:
// serial injection orders the worms and the destination's single ejection
// channel serializes their completion. Multi-channel interfaces trade
// this ordering for bandwidth (a later message may overtake a congested
// earlier one through the second ejection channel).
type Injector struct {
	cfg   Config            //cr:nosnap construction parameters
	topo  topology.Topology //cr:nosnap immutable, supplied by the constructor
	node  topology.NodeID   //cr:nosnap node identity, fixed at construction
	ports []Port            //cr:nosnap port adapters, rewired by the owner after restore
	chs   []chState
	// queue[qhead:] holds the pending messages; the consumed prefix is
	// compacted away periodically so steady-state popping neither shifts
	// elements nor reallocates.
	queue      []flit.Message
	qhead      int
	jitter     *rng.Source
	jitterSeed uint64 //cr:nosnap construction-time seed; the live jitter rng state is what snapshots carry
	stats      InjStats

	failures []Failure
}

// NewInjector returns an injector for node using the given injection
// channels. seed feeds the retransmission-jitter stream: like Ethernet's
// binary exponential backoff, CR must randomize retransmission gaps or
// colliding worms retry in lockstep and livelock; each node gets an
// independent deterministic stream. It panics on invalid configuration.
func NewInjector(cfg Config, topo topology.Topology, node topology.NodeID, ports []Port, seed uint64) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(ports) == 0 {
		panic("core: injector needs at least one port")
	}
	js := seed ^ (uint64(node)+1)*0x9e3779b97f4a7c15
	return &Injector{
		cfg:        cfg,
		topo:       topo,
		node:       node,
		ports:      ports,
		chs:        make([]chState, len(ports)),
		jitter:     rng.New(js),
		jitterSeed: js,
	}
}

// Reset returns the injector to its initial state: channels idle, queue
// empty, stats zeroed, and the jitter stream rewound to its seed, so a
// reset injector reproduces a fresh one's behavior exactly.
func (in *Injector) Reset() {
	clear(in.chs)
	in.queue = in.queue[:0]
	in.qhead = 0
	in.stats = InjStats{}
	in.failures = in.failures[:0]
	in.jitter = rng.New(in.jitterSeed)
}

// backoffGap returns the jittered retransmission gap after a failed
// attempt: the policy gap plus a uniform random extension of up to the
// same length, breaking retry synchronization between colliding sources.
func (in *Injector) backoffGap(attempt int) int64 {
	g := in.cfg.Backoff.GapFor(attempt)
	return int64(g + in.jitter.Intn(g+1))
}

// Stats returns a copy of the injector's counters.
func (in *Injector) Stats() InjStats { return in.stats }

// Failures returns the abandoned-message records (capped at 1024; the
// Failed counter in Stats is always exact).
func (in *Injector) Failures() []Failure { return in.failures }

// QueueLen returns the number of submitted messages not yet being sent.
func (in *Injector) QueueLen() int { return len(in.queue) - in.qhead }

// Busy reports whether any channel is sending or backing off.
func (in *Injector) Busy() bool {
	for i := range in.chs {
		if in.chs[i].phase != chIdle {
			return true
		}
	}
	return false
}

// Submit queues a message for transmission.
func (in *Injector) Submit(m flit.Message) {
	if err := m.Validate(in.topo.Nodes()); err != nil {
		panic(err)
	}
	in.stats.Submitted++
	in.queue = append(in.queue, m)
}

// maxPathHops returns the path-length bound used for slack computations
// on a given attempt: the minimal distance, widened by the detour budget
// once misrouting is permitted.
func (in *Injector) maxPathHops(dst topology.NodeID, attempt int) int {
	d := in.topo.Distance(in.node, dst)
	if in.cfg.MisrouteAfter > 0 && attempt >= in.cfg.MisrouteAfter {
		d += 2 * in.cfg.MaxDetours
	}
	return d
}

// buildFrame frames a message for the given attempt, applying the
// protocol's padding rule, and returns the frame plus the commit
// threshold (imin) below which timeout kills are permitted.
//
//cr:hotpath framing on every attempt start (first send and each retry)
func (in *Injector) buildFrame(m flit.Message, attempt int) (flit.Frame, int) {
	dist := in.maxPathHops(m.Dst, attempt)
	switch in.cfg.Protocol {
	case Plain:
		return flit.Frame{Msg: m, Attempt: attempt}, 0
	case CR:
		imin := IminCR(dist, in.cfg.BufDepth)
		pad := clampPad(imin-m.DataLen+in.cfg.PadAdjust, 0)
		return flit.Frame{Msg: m, Attempt: attempt, PadLen: pad}, imin
	case FCR:
		total := IminFCR(m.DataLen, dist, in.cfg.BufDepth)
		pad := clampPad(total-m.DataLen+in.cfg.PadAdjust, 0)
		// Timeout kills are only safe (and only needed) before the
		// header is provably consumed.
		return flit.Frame{Msg: m, Attempt: attempt, PadLen: pad}, IminCR(dist, in.cfg.BufDepth)
	default:
		panic(fmt.Sprintf("core: bad protocol %v", in.cfg.Protocol))
	}
}

func (in *Injector) timeout(fr flit.Frame) int {
	if in.cfg.Timeout > 0 {
		return in.cfg.Timeout
	}
	vcs := in.cfg.VCs
	if vcs < 1 {
		vcs = 1
	}
	return fr.TotalLen() * vcs
}

// clampPad floors a pad length at min.
func clampPad(pad, min int) int {
	if pad < min {
		return min
	}
	return pad
}

// Tick advances every channel by one cycle: starting queued messages,
// injecting at most one flit per channel, detecting stall timeouts, and
// resuming after backoff.
//
//cr:hotpath injector entry point, once per active injector per cycle
func (in *Injector) Tick(now int64) {
	for i := range in.chs {
		in.tickChannel(now, i)
	}
}

//cr:hotpath per-channel protocol state machine, every active cycle
func (in *Injector) tickChannel(now int64, i int) {
	ch := &in.chs[i]
	switch ch.phase {
	case chIdle:
		if in.qhead == len(in.queue) || !in.ports[i].Ready() {
			return
		}
		m := in.queue[in.qhead]
		in.qhead++
		if in.qhead == len(in.queue) {
			// Drained: rewind onto the retained backing array.
			in.queue = in.queue[:0]
			in.qhead = 0
		} else if in.qhead >= 64 && in.qhead*2 >= len(in.queue) {
			// Compact the consumed prefix so the array stops growing.
			n := copy(in.queue, in.queue[in.qhead:])
			in.queue = in.queue[:n]
			in.qhead = 0
		}
		ch.frame, ch.imin = in.buildFrame(m, 0)
		ch.phase = chSending
		ch.next = 0
		ch.stall = 0
		ch.createTime = m.CreateTime
		ch.attemptStart = now
		ch.firstInject = -1
		ch.backoff = 0
		in.inject(now, i)
	case chSending:
		in.inject(now, i)
	case chWaiting:
		if now < ch.retryAt || !in.ports[i].Ready() {
			return
		}
		ch.backoff += now - ch.waitStart
		attempt := ch.frame.Attempt + 1
		if attempt >= in.cfg.maxAttempts() || attempt >= flit.MaxAttempts {
			in.stats.Failed++
			if len(in.failures) < maxFailureRecords {
				in.failures = append(in.failures, Failure{
					Msg: ch.frame.Msg.ID, Src: ch.frame.Msg.Src, Dst: ch.frame.Msg.Dst,
					Created: ch.createTime, Cycle: now, Attempts: attempt,
				})
			}
			ch.phase = chIdle
			// Try to start the next message this cycle.
			in.tickChannel(now, i)
			return
		}
		in.stats.Retries++
		ch.frame, ch.imin = in.buildFrame(ch.frame.Msg, attempt)
		ch.phase = chSending
		ch.next = 0
		ch.stall = 0
		ch.attemptStart = now
		in.inject(now, i)
	}
}

// inject attempts to push one flit of the current frame.
//
//cr:hotpath one flit injected per sending channel per cycle
func (in *Injector) inject(now int64, i int) {
	ch := &in.chs[i]
	port := in.ports[i]
	if port.Free() == 0 {
		in.stalled(now, i)
		return
	}
	f := ch.frame.FlitAt(ch.next)
	if ch.next == 0 {
		// Stamp the head with the phase timestamps of this attempt; the
		// receiver carries them into the delivery record so the
		// observability layer can decompose end-to-end latency.
		if ch.firstInject < 0 {
			ch.firstInject = now
		}
		f.Stamps = flit.Stamps{
			Create:        ch.createTime,
			FirstInject:   ch.firstInject,
			AttemptInject: now,
			Backoff:       ch.backoff,
		}
	}
	port.Inject(f)
	ch.next++
	ch.stall = 0
	if f.Kind == flit.Pad {
		in.stats.PadFlits++
	} else {
		in.stats.DataFlits++
	}
	if ch.next == ch.frame.TotalLen() {
		in.stats.Completed++
		ch.phase = chIdle
	}
}

// stalled advances the stall clock and kills the worm when a potential
// deadlock is detected: the source has been unable to inject for the
// timeout period while the worm is not yet committed (fewer than imin
// flits in the network, so the header may still be blocked in a cycle).
//
//cr:hotpath stall bookkeeping on every blocked injection cycle
func (in *Injector) stalled(now int64, i int) {
	ch := &in.chs[i]
	in.stats.StallCycles++
	ch.stall++
	if in.cfg.Protocol == Plain {
		return
	}
	if ch.next >= ch.imin {
		return // committed: the header has been consumed, it will drain
	}
	if ch.stall < in.timeout(ch.frame) {
		return
	}
	in.stats.Kills++
	in.ports[i].Kill(ch.frame.WormID())
	ch.phase = chWaiting
	ch.waitStart = now
	ch.retryAt = now + in.backoffGap(ch.frame.Attempt)
}

// FKilled notifies the injector that a backward FKILL for worm reached
// this source at cycle now (the router has already purged the injection
// channel). The channel backs off and retransmits.
//
//cr:hotpath per-FKILL notification; frequent under FCR with faults
func (in *Injector) FKilled(worm flit.WormID, now int64) {
	for i := range in.chs {
		ch := &in.chs[i]
		if ch.phase == chSending && ch.frame.WormID() == worm {
			in.stats.FKills++
			ch.phase = chWaiting
			ch.waitStart = now
			// FKILL means the attempt was rejected by the receiver (or a
			// dead link), not congestion; retry after the base gap.
			ch.retryAt = now + in.backoffGap(0)
			return
		}
		if ch.frame.WormID() == worm && ch.phase != chSending {
			in.stats.StaleFKills++
			return
		}
	}
	// The worm completed injection before its FKILL arrived: the FCR
	// padding bound was violated. Counted so tests can assert zero.
	in.stats.LateFKills++
}
