package core

import (
	"fmt"

	"crnet/internal/snapshot"
)

// Throttle is a deterministic admission gate: out of every den offers
// it admits exactly num, spread as evenly as the integer lattice allows
// (error-diffusion, the one-dimensional Bresenham rule). No randomness
// is involved, so two runs that offer the same sequence admit the same
// subset — the property the degradation controller needs to keep sweeps
// byte-reproducible while shedding load.
type Throttle struct {
	num, den int64
	acc      int64
}

// SetRate sets the admitted fraction to num/den. num is clamped into
// [0, den]; den <= 0 (or num == den) means admit everything. The
// accumulator is clamped into the new lattice so a rate change cannot
// manufacture a burst of admissions.
func (t *Throttle) SetRate(num, den int64) {
	if den <= 0 {
		num, den = 1, 1
	}
	if num < 0 {
		num = 0
	}
	if num > den {
		num = den
	}
	t.num, t.den = num, den
	if t.acc >= den {
		t.acc = den - 1
	}
}

// Rate returns the current admitted fraction as (num, den); (0, 0)
// means the throttle was never configured and admits everything.
func (t *Throttle) Rate() (num, den int64) { return t.num, t.den }

// Allow consumes one offer and reports whether it is admitted.
//
//cr:hotpath per-submission admission decision while degraded
func (t *Throttle) Allow() bool {
	if t.den <= 0 || t.num >= t.den {
		return true
	}
	t.acc += t.num
	if t.acc >= t.den {
		t.acc -= t.den
		return true
	}
	return false
}

// SaveState serializes the throttle (rate and accumulator).
func (t *Throttle) SaveState(e *snapshot.Encoder) {
	e.Varint(t.num)
	e.Varint(t.den)
	e.Varint(t.acc)
}

// LoadState restores a state saved by SaveState. The decoded triple is
// range-checked against the invariants SetRate/Allow maintain — den
// non-negative, num in [0, den], acc in [0, den) when den > 0, and all
// zero when never configured — so a corrupt or hand-crafted snapshot
// cannot silently skew admissions (an out-of-range accumulator would
// bias every Allow decision until it happened to re-enter the lattice).
func (t *Throttle) LoadState(d *snapshot.Decoder) error {
	num := d.Varint()
	den := d.Varint()
	acc := d.Varint()
	if err := d.Err(); err != nil {
		return err
	}
	valid := (num == 0 && den == 0 && acc == 0) ||
		(den > 0 && num >= 0 && num <= den && acc >= 0 && acc < den)
	if !valid {
		return fmt.Errorf("core: throttle state num=%d den=%d acc=%d out of range", num, den, acc)
	}
	t.num, t.den, t.acc = num, den, acc
	return nil
}
