package core_test

import (
	"fmt"

	"crnet/internal/core"
)

// The compressionless slack bound: how many flits a blocked worm can
// absorb, and the padding CR derives from it.
func ExampleSlackBound() {
	const dist, bufDepth = 4, 2 // 4 hops, 2-flit buffers
	slack := core.SlackBound(dist, bufDepth)
	imin := core.IminCR(dist, bufDepth)
	fmt.Printf("slack=%d flits, Imin=%d\n", slack, imin)
	// A 6-flit message must be padded to Imin.
	fmt.Printf("pad for a 6-flit message: %d\n", imin-6)
	// Output:
	// slack=10 flits, Imin=11
	// pad for a 6-flit message: 5
}

// FCR pads further so a backward FKILL always beats the worm's tail.
func ExampleIminFCR() {
	const dataLen, dist, bufDepth = 8, 4, 2
	fmt.Printf("CR frame: %d flits\n", max(dataLen, core.IminCR(dist, bufDepth)))
	fmt.Printf("FCR frame: %d flits\n", core.IminFCR(dataLen, dist, bufDepth))
	// Output:
	// CR frame: 11 flits
	// FCR frame: 26 flits
}

// Exponential backoff doubles the retransmission gap per failed attempt.
func ExampleBackoff_GapFor() {
	b := core.Backoff{Kind: core.BackoffExponential, Gap: 8, Cap: 64}
	for attempt := 0; attempt < 5; attempt++ {
		fmt.Print(b.GapFor(attempt), " ")
	}
	fmt.Println()
	// Output:
	// 8 16 32 64 64
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
