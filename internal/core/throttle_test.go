package core

import (
	"testing"

	"crnet/internal/snapshot"
)

func TestThrottleZeroValueAdmitsAll(t *testing.T) {
	var th Throttle
	for i := 0; i < 100; i++ {
		if !th.Allow() {
			t.Fatalf("zero-value throttle rejected offer %d", i)
		}
	}
}

func TestThrottleExactFraction(t *testing.T) {
	cases := []struct{ num, den int64 }{
		{1, 1}, {0, 1}, {1, 2}, {7, 10}, {2, 5}, {999, 1000},
	}
	for _, c := range cases {
		var th Throttle
		th.SetRate(c.num, c.den)
		var admitted int64
		const offers = 10 * 1000
		for i := 0; i < offers; i++ {
			if th.Allow() {
				admitted++
			}
		}
		want := offers * c.num / c.den
		if admitted != want {
			t.Errorf("rate %d/%d: admitted %d of %d, want %d", c.num, c.den, admitted, offers, want)
		}
	}
}

func TestThrottleEvenSpread(t *testing.T) {
	// At 1/2 no two consecutive offers may both be admitted and no two
	// consecutive offers may both be rejected.
	var th Throttle
	th.SetRate(1, 2)
	prev := th.Allow()
	for i := 0; i < 1000; i++ {
		cur := th.Allow()
		if cur == prev {
			t.Fatalf("offer %d: 1/2 throttle produced a run (%t, %t)", i, prev, cur)
		}
		prev = cur
	}
}

func TestThrottleClamps(t *testing.T) {
	var th Throttle
	th.SetRate(-5, 10)
	if th.Allow() {
		t.Fatal("negative numerator admitted")
	}
	th.SetRate(15, 10)
	if !th.Allow() {
		t.Fatal("numerator above denominator rejected")
	}
	th.SetRate(3, 0)
	if !th.Allow() {
		t.Fatal("zero denominator rejected")
	}
}

func TestThrottleStateRoundTrip(t *testing.T) {
	var a Throttle
	a.SetRate(7, 10)
	for i := 0; i < 137; i++ {
		a.Allow()
	}
	var e snapshot.Encoder
	a.SaveState(&e)

	var b Throttle
	d := snapshot.NewDecoder(e.Bytes())
	if err := b.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a.Allow() != b.Allow() {
			t.Fatalf("restored throttle diverged at offer %d", i)
		}
	}
}
