package core

import (
	"testing"

	"crnet/internal/snapshot"
)

func TestThrottleZeroValueAdmitsAll(t *testing.T) {
	var th Throttle
	for i := 0; i < 100; i++ {
		if !th.Allow() {
			t.Fatalf("zero-value throttle rejected offer %d", i)
		}
	}
}

func TestThrottleExactFraction(t *testing.T) {
	cases := []struct{ num, den int64 }{
		{1, 1}, {0, 1}, {1, 2}, {7, 10}, {2, 5}, {999, 1000},
	}
	for _, c := range cases {
		var th Throttle
		th.SetRate(c.num, c.den)
		var admitted int64
		const offers = 10 * 1000
		for i := 0; i < offers; i++ {
			if th.Allow() {
				admitted++
			}
		}
		want := offers * c.num / c.den
		if admitted != want {
			t.Errorf("rate %d/%d: admitted %d of %d, want %d", c.num, c.den, admitted, offers, want)
		}
	}
}

func TestThrottleEvenSpread(t *testing.T) {
	// At 1/2 no two consecutive offers may both be admitted and no two
	// consecutive offers may both be rejected.
	var th Throttle
	th.SetRate(1, 2)
	prev := th.Allow()
	for i := 0; i < 1000; i++ {
		cur := th.Allow()
		if cur == prev {
			t.Fatalf("offer %d: 1/2 throttle produced a run (%t, %t)", i, prev, cur)
		}
		prev = cur
	}
}

func TestThrottleClamps(t *testing.T) {
	var th Throttle
	th.SetRate(-5, 10)
	if th.Allow() {
		t.Fatal("negative numerator admitted")
	}
	th.SetRate(15, 10)
	if !th.Allow() {
		t.Fatal("numerator above denominator rejected")
	}
	th.SetRate(3, 0)
	if !th.Allow() {
		t.Fatal("zero denominator rejected")
	}
}

// TestThrottleLoadRejectsCorruptState pins the LoadState range gate: a
// corrupt or hand-crafted snapshot must not install a triple the
// throttle's own transitions can never produce (it would silently skew
// every admission decision until the accumulator re-entered the
// lattice).
func TestThrottleLoadRejectsCorruptState(t *testing.T) {
	cases := []struct {
		name          string
		num, den, acc int64
		ok            bool
	}{
		{"never-configured zero", 0, 0, 0, true},
		{"valid mid-lattice", 7, 10, 3, true},
		{"valid acc at top", 7, 10, 9, true},
		{"acc equal to den", 7, 10, 10, false},
		{"acc above den", 7, 10, 11, false},
		{"negative acc", 7, 10, -1, false},
		{"num above den", 11, 10, 0, false},
		{"negative num", -1, 10, 0, false},
		{"negative den", 1, -10, 0, false},
		{"zero den with num", 1, 0, 0, false},
		{"zero den with acc", 0, 0, 1, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e snapshot.Encoder
			e.Varint(c.num)
			e.Varint(c.den)
			e.Varint(c.acc)
			var th Throttle
			err := th.LoadState(snapshot.NewDecoder(e.Bytes()))
			if c.ok && err != nil {
				t.Fatalf("valid state %d/%d acc=%d rejected: %v", c.num, c.den, c.acc, err)
			}
			if !c.ok {
				if err == nil {
					t.Fatalf("corrupt state %d/%d acc=%d accepted", c.num, c.den, c.acc)
				}
				if n, d := th.Rate(); n != 0 || d != 0 {
					t.Fatalf("rejected state still mutated the throttle: rate %d/%d", n, d)
				}
			}
		})
	}
}

func TestThrottleStateRoundTrip(t *testing.T) {
	var a Throttle
	a.SetRate(7, 10)
	for i := 0; i < 137; i++ {
		a.Allow()
	}
	var e snapshot.Encoder
	a.SaveState(&e)

	var b Throttle
	d := snapshot.NewDecoder(e.Bytes())
	if err := b.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a.Allow() != b.Allow() {
			t.Fatalf("restored throttle diverged at offer %d", i)
		}
	}
}
