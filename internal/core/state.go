package core

import (
	"fmt"
	"sort"

	"crnet/internal/flit"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
)

// Checkpoint codecs for the node-interface engines. The injector's
// protocol state machines (including the jitter RNG position — the
// retransmission stream must continue, not restart) and the receiver's
// partial worm assemblies are the per-node state a resumed run needs to
// continue byte-identically.

// maxSnapshotItems bounds decoded collection sizes so a corrupt length
// field cannot drive a huge allocation before validation fails.
const maxSnapshotItems = 1 << 24

// SaveState appends the injector's mutable state to a snapshot: every
// channel's protocol engine, the pending message queue (the consumed
// prefix is dropped — only queue[qhead:] is live), the jitter RNG
// position, the counters and the failure log.
func (in *Injector) SaveState(e *snapshot.Encoder) {
	e.Uvarint(uint64(len(in.chs)))
	for i := range in.chs {
		ch := &in.chs[i]
		e.Int(int(ch.phase))
		flit.PutFrame(e, ch.frame)
		e.Int(ch.imin)
		e.Int(ch.next)
		e.Int(ch.stall)
		e.Varint(ch.retryAt)
		e.Varint(ch.createTime)
		e.Varint(ch.attemptStart)
		e.Varint(ch.firstInject)
		e.Varint(ch.backoff)
		e.Varint(ch.waitStart)
	}
	pending := in.queue[in.qhead:]
	e.Uvarint(uint64(len(pending)))
	for _, m := range pending {
		flit.PutMessage(e, m)
	}
	st := in.jitter.State()
	e.U64(st[0])
	e.U64(st[1])
	e.U64(st[2])
	e.U64(st[3])
	s := &in.stats
	e.Varint(s.Submitted)
	e.Varint(s.Completed)
	e.Varint(s.Kills)
	e.Varint(s.FKills)
	e.Varint(s.StaleFKills)
	e.Varint(s.Failed)
	e.Varint(s.Retries)
	e.Varint(s.DataFlits)
	e.Varint(s.PadFlits)
	e.Varint(s.StallCycles)
	e.Varint(s.LateFKills)
	e.Uvarint(uint64(len(in.failures)))
	for _, f := range in.failures {
		e.U64(uint64(f.Msg))
		e.Varint(int64(f.Src))
		e.Varint(int64(f.Dst))
		e.Varint(f.Created)
		e.Varint(f.Cycle)
		e.Int(f.Attempts)
	}
}

// LoadState restores a state written by SaveState into an injector with
// the same channel count.
func (in *Injector) LoadState(d *snapshot.Decoder) error {
	nch := d.Count(maxSnapshotItems)
	if err := d.Err(); err != nil {
		return err
	}
	if nch != len(in.chs) {
		return fmt.Errorf("core: snapshot has %d injection channels, injector has %d", nch, len(in.chs))
	}
	for i := range in.chs {
		ch := &in.chs[i]
		ch.phase = chPhase(d.Int())
		ch.frame = flit.GetFrame(d)
		ch.imin = d.Int()
		ch.next = d.Int()
		ch.stall = d.Int()
		ch.retryAt = d.Varint()
		ch.createTime = d.Varint()
		ch.attemptStart = d.Varint()
		ch.firstInject = d.Varint()
		ch.backoff = d.Varint()
		ch.waitStart = d.Varint()
	}
	nq := d.Count(maxSnapshotItems)
	if err := d.Err(); err != nil {
		return err
	}
	queue := in.queue[:0]
	for i := 0; i < nq; i++ {
		queue = append(queue, flit.GetMessage(d))
	}
	var st [4]uint64
	st[0], st[1], st[2], st[3] = d.U64(), d.U64(), d.U64(), d.U64()
	s := InjStats{
		Submitted:   d.Varint(),
		Completed:   d.Varint(),
		Kills:       d.Varint(),
		FKills:      d.Varint(),
		StaleFKills: d.Varint(),
		Failed:      d.Varint(),
		Retries:     d.Varint(),
		DataFlits:   d.Varint(),
		PadFlits:    d.Varint(),
		StallCycles: d.Varint(),
		LateFKills:  d.Varint(),
	}
	nf := d.Count(maxFailureRecords)
	if err := d.Err(); err != nil {
		return err
	}
	failures := in.failures[:0]
	for i := 0; i < nf; i++ {
		failures = append(failures, Failure{
			Msg:      flit.MessageID(d.U64()),
			Src:      topology.NodeID(d.Varint()),
			Dst:      topology.NodeID(d.Varint()),
			Created:  d.Varint(),
			Cycle:    d.Varint(),
			Attempts: d.Int(),
		})
	}
	if err := d.Err(); err != nil {
		return err
	}
	in.queue = queue
	in.qhead = 0
	in.jitter.SetState(st)
	in.stats = s
	in.failures = failures
	return nil
}

// SaveState appends the receiver's mutable state to a snapshot: the
// in-progress worm assemblies, the per-source FIFO watermarks and the
// counters. The per-cycle delivery buffers are not serialized — the
// network drains them inside every Step, so they are empty at any
// cycle boundary a checkpoint can observe.
func (rc *Receiver) SaveState(e *snapshot.Encoder) {
	worms := make([]flit.WormID, 0, len(rc.asm))
	// Sorted before encoding, so map iteration order cannot leak into
	// checkpoint bytes.
	//cr:orderinvariant keys are collected and sorted before use
	for w := range rc.asm {
		worms = append(worms, w)
	}
	sort.Slice(worms, func(i, j int) bool { return worms[i] < worms[j] })
	e.Uvarint(uint64(len(worms)))
	for _, w := range worms {
		a := rc.asm[w]
		e.U64(uint64(w))
		e.Varint(int64(a.src))
		e.U64(uint64(a.msg))
		e.Int(a.dataLen)
		e.Int(a.nextSeq)
		e.Int(a.channel)
		e.Bool(a.dataOK)
		flit.PutStamps(e, a.stamps)
		e.Varint(a.headArrived)
	}
	srcs := make([]topology.NodeID, 0, len(rc.lastSeen))
	//cr:orderinvariant keys are collected and sorted before use
	for src := range rc.lastSeen {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	e.Uvarint(uint64(len(srcs)))
	for _, src := range srcs {
		e.Varint(int64(src))
		e.U64(uint64(rc.lastSeen[src]))
	}
	s := &rc.stats
	e.Varint(s.Delivered)
	e.Varint(s.CorruptData)
	e.Varint(s.FKillsSent)
	e.Varint(s.KilledPartial)
	e.Varint(s.DataFlits)
	e.Varint(s.PadFlits)
	e.Varint(s.OrderErrors)
}

// LoadState restores a state written by SaveState. Existing assemblies
// and watermarks are replaced.
func (rc *Receiver) LoadState(d *snapshot.Decoder) error {
	na := d.Count(maxSnapshotItems)
	if err := d.Err(); err != nil {
		return err
	}
	type loaded struct {
		worm flit.WormID
		asm  assembly
	}
	asms := make([]loaded, na)
	for i := range asms {
		asms[i].worm = flit.WormID(d.U64())
		a := &asms[i].asm
		a.src = topology.NodeID(d.Varint())
		a.msg = flit.MessageID(d.U64())
		a.dataLen = d.Int()
		a.nextSeq = d.Int()
		a.channel = d.Int()
		a.dataOK = d.Bool()
		a.stamps = flit.GetStamps(d)
		a.headArrived = d.Varint()
	}
	ns := d.Count(maxSnapshotItems)
	if err := d.Err(); err != nil {
		return err
	}
	type watermark struct {
		src topology.NodeID
		msg flit.MessageID
	}
	marks := make([]watermark, ns)
	for i := range marks {
		marks[i].src = topology.NodeID(d.Varint())
		marks[i].msg = flit.MessageID(d.U64())
	}
	s := RecvStats{
		Delivered:     d.Varint(),
		CorruptData:   d.Varint(),
		FKillsSent:    d.Varint(),
		KilledPartial: d.Varint(),
		DataFlits:     d.Varint(),
		PadFlits:      d.Varint(),
		OrderErrors:   d.Varint(),
	}
	if err := d.Err(); err != nil {
		return err
	}
	// Pool pointer identity is unobservable; see Reset.
	//cr:orderinvariant only pool pointer order varies; records are zeroed on reuse
	for w, a := range rc.asm {
		rc.putAsm(a)
		delete(rc.asm, w)
	}
	for i := range asms {
		a := rc.getAsm()
		*a = asms[i].asm
		rc.asm[asms[i].worm] = a
	}
	clear(rc.lastSeen)
	for _, m := range marks {
		rc.lastSeen[m.src] = m.msg
	}
	rc.deliveries = rc.deliveries[:0]
	rc.drained = rc.drained[:0]
	rc.stats = s
	return nil
}
