// Package core implements the paper's contribution: the Compressionless
// Routing (CR) and Fault-tolerant Compressionless Routing (FCR) protocol
// engines that sit in each node's network interface.
//
// The injector side pads worms to the minimum injection length, watches
// its own injection progress to detect potential deadlock (the
// compressionless property turns a blocked header into a source-visible
// stall), kills and retransmits with configurable backoff, and tracks
// commitment — the point where flow control alone proves the header has
// been consumed at the destination.
//
// The receiver side assembles worms, strips protocol padding, verifies
// per-flit checksums (FCR), triggers backward FKILL tear-downs on
// corruption, and delivers exactly-once, in per-channel FIFO order.
package core

import (
	"fmt"
)

// Protocol selects the network-interface protocol.
type Protocol int

const (
	// Plain is baseline wormhole transmission: no padding, no timeouts,
	// no kills. Deadlock freedom must come from the routing algorithm
	// (e.g. DOR with datelines). Used for the paper's DOR baselines.
	Plain Protocol = iota
	// CR is Compressionless Routing: padding to the minimum injection
	// length, source-timeout deadlock detection, kill and retransmit.
	CR
	// FCR is Fault-tolerant CR: CR plus end-to-end per-flit checksums,
	// extended padding so a backward FKILL always reaches the source
	// before the worm's tail is injected, and retransmission on FKILL.
	FCR
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Plain:
		return "plain"
	case CR:
		return "CR"
	case FCR:
		return "FCR"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// BackoffKind selects the retransmission-gap policy (the paper's Fig. 11
// compares static gaps against dynamic exponential backoff).
type BackoffKind int

const (
	// BackoffStatic waits a fixed gap between retransmission attempts.
	BackoffStatic BackoffKind = iota
	// BackoffExponential doubles the gap each failed attempt, capped.
	BackoffExponential
)

// Backoff is a retransmission-gap policy.
type Backoff struct {
	Kind BackoffKind
	// Gap is the static gap, or the exponential policy's base.
	Gap int
	// Cap bounds the exponential gap; 0 means 64 * Gap.
	Cap int
}

// Gap returns the wait after failed attempt number `attempt` (0-based).
func (b Backoff) GapFor(attempt int) int {
	gap := b.Gap
	if gap < 1 {
		gap = 1
	}
	if b.Kind == BackoffStatic {
		return gap
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 64 * gap
	}
	if attempt > 30 {
		return cap
	}
	g := gap << uint(attempt)
	if g > cap || g <= 0 {
		return cap
	}
	return g
}

// Config parameterizes the CR/FCR engines. The zero value is not valid;
// fill the required fields and call Validate.
type Config struct {
	// Protocol selects Plain, CR or FCR.
	Protocol Protocol
	// BufDepth is the per-VC buffer depth of the routers; the protocol
	// needs it to compute slack bounds (Imin).
	BufDepth int
	// VCs is the routers' virtual channel count; it enters the paper's
	// default timeout rule.
	VCs int
	// Timeout is the source stall timeout in cycles; 0 applies the
	// paper's rule: framed length x max(1, VCs).
	Timeout int
	// Backoff is the retransmission-gap policy.
	Backoff Backoff
	// MaxAttempts gives up on a message after this many transmission
	// attempts (it is then counted failed); 0 means 64. Values above the
	// worm-id attempt space are rejected.
	MaxAttempts int
	// MisrouteAfter, when positive, allows attempts >= MisrouteAfter to
	// take up to MaxDetours non-minimal hops (fault tolerance). The
	// injector widens padding accordingly.
	MisrouteAfter int
	// MaxDetours bounds non-minimal hops per worm when misrouting.
	MaxDetours int
	// PadAdjust adds to (or, negative, removes from) the computed CR/FCR
	// padding. It exists for the padding-margin ablation: shrinking FCR's
	// pad below the slack + FKILL-latency bound makes late FKILLs — and
	// thus lost messages — possible, demonstrating the bound is load-
	// bearing. Production configurations leave it zero.
	PadAdjust int
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Protocol != Plain && c.Protocol != CR && c.Protocol != FCR {
		return fmt.Errorf("core: unknown protocol %d", c.Protocol)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("core: BufDepth = %d", c.BufDepth)
	}
	if c.VCs < 1 {
		return fmt.Errorf("core: VCs = %d", c.VCs)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("core: Timeout = %d", c.Timeout)
	}
	if c.MaxAttempts < 0 || c.MaxAttempts > 255 {
		return fmt.Errorf("core: MaxAttempts = %d outside [0,255]", c.MaxAttempts)
	}
	if c.MisrouteAfter > 0 && c.MaxDetours < 1 {
		return fmt.Errorf("core: misrouting enabled with MaxDetours = %d", c.MaxDetours)
	}
	return nil
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts == 0 {
		return 64
	}
	return c.MaxAttempts
}

// SlackBound returns the maximum number of flits that can be absorbed by
// the network between a source and the consumption point over a path of
// dist hops with bufDepth-deep virtual-channel buffers: the injection
// buffer plus one input buffer per hop — bufDepth*(dist+1).
//
// Link registers add no capacity: credit-based flow control only
// releases a flit onto a link when a downstream buffer slot is reserved
// for it, so buffered + in-flight flits per hop never exceed bufDepth.
// The bound is tight — the parametric compressionless test in the
// network package verifies a blocked worm absorbs exactly this many
// flits for every (dist, depth) pair.
//
// If a source has successfully injected more than SlackBound flits of a
// worm, at least one flit has been consumed at the destination — which,
// by FIFO worm order, means the header has. This is the compressionless
// property CR is built on.
func SlackBound(dist, bufDepth int) int {
	return bufDepth * (dist + 1)
}

// IminCR returns CR's minimum injection length for a worm whose path is
// at most dist hops: one more than the slack bound, so a fully injected
// worm has provably delivered its header.
func IminCR(dist, bufDepth int) int {
	return SlackBound(dist, bufDepth) + 1
}

// fcrMargin covers the cycle-phase offsets between ejection-side
// verification and injection-side abort in the simulator's discrete
// timing model.
const fcrMargin = 4

// IminFCR returns FCR's minimum worm length for a message of dataLen
// flits over a path of at most dist hops: the data itself, plus the
// slack needed to guarantee the last data flit has been verified at the
// receiver, plus the backward FKILL latency (one hop per cycle), plus a
// small engine margin. While the source is injecting the resulting
// padding run, any FKILL provoked by the message's data is guaranteed to
// arrive, so "injection finished without FKILL" certifies intact
// delivery without an acknowledgement message.
func IminFCR(dataLen, dist, bufDepth int) int {
	return dataLen + SlackBound(dist, bufDepth) + dist + fcrMargin
}
