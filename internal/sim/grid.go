package sim

import (
	"crnet/internal/harness"
	"crnet/internal/invariant"
	"crnet/internal/network"
	"crnet/internal/router"
	"crnet/internal/traffic"
)

// Point is one simulation point in a declarative sweep grid: the full
// recipe for one independent run. Experiment drivers build a []Point in
// the order their table rows should appear; the harness executes the
// grid over a worker pool and hands results back in the same order, so
// table layout never depends on scheduling.
type Point struct {
	// Series labels the point's row group in the result table (e.g.
	// "CR(d=2)" or a backoff-scheme name).
	Series string
	// Pattern is the traffic pattern name (see traffic.ByName).
	Pattern string
	// Load is the offered load as a fraction of uniform capacity.
	Load float64
	// MsgLen is the message length in flits; ignored when Lengths is set.
	MsgLen int
	// Lengths optionally overrides MsgLen with a length model.
	Lengths traffic.LengthModel
	// Net is the network configuration under test.
	Net network.Config
	// Watchdog, when set, installs an invariant watchdog on the point's
	// network; a violation aborts the point and is recorded as a sweep
	// error instead of polluting the table with garbage numbers.
	Watchdog *invariant.Config
	// Degrade, when set, installs the graceful-degradation controller
	// on the point's run (see sim.Config.Degrade).
	Degrade *DegradeConfig
	// Replicate distinguishes repeated runs of an otherwise identical
	// point; it is provenance only (each point already derives an
	// independent seed from its grid index).
	Replicate int
	// SampleEvery/SampleCap, when SampleEvery is positive, enable the
	// per-cycle metrics sampler for this point (see sim.Config); the
	// resulting time-series rides in Metrics.Series.
	SampleEvery int64
	SampleCap   int
}

// sweep executes a point grid over the crash-proof harness and returns
// the metrics in grid order. Each point derives its own traffic seed
// via splitmix64 from (Scale.Seed, point index), so the stochastic
// streams are independent of both neighbouring points and worker
// scheduling: serial and parallel runs are bitwise identical.
//
// A point that errors, panics or exceeds Scale.PointTimeout no longer
// takes the sweep down: its slot holds zero metrics, the failure is
// reported through Scale.CollectErrors (and from there into the JSON
// artifact's errors section), and every other point still completes.
func (s Scale) sweep(label string, points []Point) []Metrics {
	var onPoint func()
	if s.Progress != nil {
		pr := harness.NewProgress(s.Progress, label, len(points))
		onPoint = pr.Point
	}
	// Wall-clock timing is the harness's concern, not the core's: the
	// sweep engine measures each point and reports it back here, so this
	// package stays free of time.Now (crlint wallclock).
	durs := make([]float64, len(points))
	opt := harness.SafeOptions{
		Options:      harness.Options{Workers: s.Parallel, OnPoint: onPoint},
		PointTimeout: s.PointTimeout,
		OnPointMS:    func(i int, ms float64) { durs[i] = ms },
	}
	ms, errs := harness.SweepSafe(len(points), opt, func(i int, cancel <-chan struct{}) (Metrics, error) {
		p := points[i]
		net := p.Net
		if net.Shards == 0 {
			net.Shards = s.Shards
		}
		if net.BufOrg == router.OrgStaticFIFO {
			net.BufOrg = s.BufOrg
		}
		m, err := Run(Config{
			Net:           net,
			Pattern:       p.Pattern,
			Load:          p.Load,
			MsgLen:        p.MsgLen,
			Lengths:       p.Lengths,
			WarmupCycles:  s.Warmup,
			MeasureCycles: s.Measure,
			Seed:          harness.PointSeed(s.Seed, i),
			Watchdog:      p.Watchdog,
			Degrade:       p.Degrade,
			Cancel:        cancel,
			SampleEvery:   p.SampleEvery,
			SampleCap:     p.SampleCap,
		})
		if err != nil {
			return Metrics{}, err
		}
		return m, nil
	})
	if s.Collect != nil {
		s.Collect(label, durs)
	}
	if s.CollectErrors != nil && len(errs) > 0 {
		s.CollectErrors(label, errs)
	}
	if s.CollectSeries != nil {
		var series []harness.PointSeries
		for i, m := range ms {
			if m.Series != nil {
				series = append(series, harness.PointSeries{
					Label: points[i].Series,
					Load:  points[i].Load,
					Data:  m.Series.JSON(),
				})
			}
		}
		if len(series) > 0 {
			s.CollectSeries(label, series)
		}
	}
	return ms
}

// loadGrid builds the common sweep shape: one point per offered-load
// value, all sharing a series label and network config.
func (s Scale) loadGrid(series, pattern string, net network.Config) []Point {
	pts := make([]Point, 0, len(s.Loads))
	for _, load := range s.Loads {
		pts = append(pts, Point{Series: series, Pattern: pattern, Load: load, MsgLen: s.MsgLen, Net: net})
	}
	return pts
}
