package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepPreservesGridOrder(t *testing.T) {
	s := tiny
	s.Parallel = 4
	// Points at clearly separated loads: results must come back in grid
	// order, not completion order (the light points finish first).
	pts := []Point{
		{Series: "hi", Pattern: "uniform", Load: 0.8, MsgLen: 8, Net: s.crNet()},
		{Series: "lo", Pattern: "uniform", Load: 0.1, MsgLen: 8, Net: s.crNet()},
		{Series: "hi", Pattern: "uniform", Load: 0.8, MsgLen: 8, Net: s.crNet()},
		{Series: "lo", Pattern: "uniform", Load: 0.1, MsgLen: 8, Net: s.crNet()},
	}
	ms := s.sweep("order", pts)
	if len(ms) != len(pts) {
		t.Fatalf("%d results for %d points", len(ms), len(pts))
	}
	for i, p := range pts {
		if ms[i].OfferedFrac != p.Load {
			t.Fatalf("result %d has load %v, point has %v: order lost", i, ms[i].OfferedFrac, p.Load)
		}
	}
}

func TestSweepPerPointSeedsDiffer(t *testing.T) {
	s := tiny
	s.Parallel = 1
	// Two identical points (replicates) must see different traffic
	// streams via their grid index, hence (almost surely) different
	// delivered counts or latencies.
	pts := []Point{
		{Series: "r0", Pattern: "uniform", Load: 0.5, MsgLen: 8, Net: s.crNet(), Replicate: 0},
		{Series: "r1", Pattern: "uniform", Load: 0.5, MsgLen: 8, Net: s.crNet(), Replicate: 1},
	}
	ms := s.sweep("reps", pts)
	if ms[0] == ms[1] {
		t.Fatalf("replicates produced identical metrics — per-point seeding is broken: %+v", ms[0])
	}
}

func TestSweepProgressAndCollect(t *testing.T) {
	s := tiny
	s.Parallel = 2
	var buf bytes.Buffer
	s.Progress = &buf
	var label string
	var timings []float64
	s.Collect = func(l string, pointMS []float64) { label, timings = l, pointMS }

	pts := s.loadGrid("CR", "uniform", s.crNet())
	s.sweep("E1", pts)

	if label != "E1" {
		t.Fatalf("Collect label = %q", label)
	}
	if len(timings) != len(pts) {
		t.Fatalf("%d timings for %d points", len(timings), len(pts))
	}
	for i, ms := range timings {
		if ms <= 0 {
			t.Fatalf("point %d has non-positive wall-clock %v", i, ms)
		}
	}
	// The final progress line always prints.
	if !strings.Contains(buf.String(), "E1: 2/2 points (100%)") {
		t.Fatalf("progress output missing completion line:\n%s", buf.String())
	}
}

func TestLoadGrid(t *testing.T) {
	pts := tiny.loadGrid("CR", "transpose", tiny.crNet())
	if len(pts) != len(tiny.Loads) {
		t.Fatalf("%d points for %d loads", len(pts), len(tiny.Loads))
	}
	for i, p := range pts {
		if p.Load != tiny.Loads[i] || p.Series != "CR" || p.Pattern != "transpose" || p.MsgLen != tiny.MsgLen {
			t.Fatalf("point %d malformed: %+v", i, p)
		}
	}
}
