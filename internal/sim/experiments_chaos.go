package sim

import (
	"fmt"

	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/harness"
	"crnet/internal/invariant"
	"crnet/internal/network"
	"crnet/internal/rng"
	"crnet/internal/stats"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// E22BurstyFaults compares bursty (Gilbert-Elliott) corruption against
// i.i.d. corruption at the same long-run average rate. FCR must stay
// intact under both; the interesting question is the cost profile — a
// burst hits many flits of the same worms in a short span, concentrating
// FKILL retries, where the i.i.d. process spreads them thinly.
func E22BurstyFaults(s Scale) *stats.Table {
	t := stats.NewTable("E22: bursty (Gilbert-Elliott) vs i.i.d. corruption at equal average rate (FCR, load=0.4)",
		"scheme", "avg_rate", "avg_latency", "fkills/msg", "corrupt_deliveries", "faults_injected")
	rates := []float64{1e-4, 1e-3, 1e-2}
	const load = 0.4
	var pts []Point
	for _, rate := range rates {
		iid := s.fcrNet()
		iid.TransientRate = rate
		// Mean sojourns 900/100: the bad state carries the whole rate
		// budget in 10% of the cycles, 10x the i.i.d. intensity.
		spec := faults.EqualRateBurst(rate, 900, 100)
		burst := s.fcrNet()
		burst.Burst = &spec
		pts = append(pts,
			Point{Series: "iid", Pattern: "uniform", Load: load, MsgLen: s.MsgLen, Net: iid},
			Point{Series: "bursty", Pattern: "uniform", Load: load, MsgLen: s.MsgLen, Net: burst})
	}
	for i, m := range s.sweep("E22", pts) {
		t.AddRow(pts[i].Series, rates[i/2], m.AvgLatency, m.FKillsPerMsg, m.DeliveredCorrupt, m.TransientFaults)
	}
	return t
}

// failRepairSchedule picks n random links and returns a timeline that
// fails all of them at failAt and repairs all of them at repairAt.
func failRepairSchedule(links []faults.LinkID, n int, failAt, repairAt int64, seed uint64) *faults.Schedule {
	if n > len(links) {
		panic(fmt.Sprintf("sim: want %d dead links, only %d candidates", n, len(links)))
	}
	r := rng.New(seed)
	perm := make([]int, len(links))
	r.Perm(perm)
	events := make([]faults.Event, 0, 2*n)
	for i := 0; i < n; i++ {
		events = append(events,
			faults.Event{Cycle: failAt, Link: links[perm[i]]},
			faults.Event{Cycle: repairAt, Link: links[perm[i]], Up: true})
	}
	return faults.NewSchedule(events)
}

// E23FailRepair runs the fail-then-repair scenario: the network runs
// clean, loses eight links mid-run, then gets them back. Latency is
// reported per phase (messages bucketed by creation cycle): it degrades
// while the links are down — minimal paths gone, misrouting engaged —
// then, after a settling window that drains the outage backlog, returns
// to baseline. The network stays connected throughout, so not a single
// message may be abandoned.
func E23FailRepair(s Scale) *stats.Table {
	t := stats.NewTable("E23: fail-then-repair, FCR with misrouting (load=0.1, 8 links)",
		"phase", "cycles", "avg_latency", "p95", "delivered", "failed_msgs")
	// Low enough load that the post-repair network can also drain the
	// backlog queued up during the outage — otherwise every later
	// window inherits the outage's queueing and recovery never shows.
	const load, deadLinks = 0.1, 8
	w := s.Measure / 4
	failAt, repairAt := s.Warmup+w, s.Warmup+2*w

	topo := s.torus()
	cfg := s.fcrNet()
	cfg.MisrouteAfter = 2
	cfg.MaxDetours = 4
	cfg.Faults = failRepairSchedule(network.LinksOf(topo), deadLinks, failAt, repairAt,
		harness.PointSeed(s.Seed, 2300))
	net := network.New(cfg)

	pattern, err := traffic.ByName("uniform", topo)
	if err != nil {
		panic(err)
	}
	gen := traffic.NewGeneratorLengths(topo, pattern, load, traffic.FixedLength(s.MsgLen),
		harness.PointSeed(s.Seed, 2301))

	// Creation-cycle phase boundaries: [warmup,failAt) clean,
	// [failAt,repairAt) faulted, [repairAt,settleEnd) settling (the
	// outage backlog drains), [settleEnd,injEnd) recovered.
	settleEnd := s.Warmup + 3*w
	injEnd := s.Warmup + 4*w
	bounds := [4]int64{failAt, repairAt, settleEnd, injEnd}
	phaseOf := func(created int64) int {
		if created < s.Warmup {
			return -1 // warmup traffic: not measured
		}
		for p, b := range bounds {
			if created < b {
				return p
			}
		}
		return len(bounds) - 1
	}
	const phases = 4
	var (
		window    = make(map[flit.MessageID]int64)
		pending   int // measured messages not yet delivered
		lat       [phases]stats.Welford
		hist      [phases]*stats.Histogram
		delivered [phases]int64
		failedAt  [phases + 1]int64 // injector Failed counter at warmup end + each phase boundary
	)
	for p := range hist {
		hist[p] = stats.NewHistogram(16, 4096)
	}
	drainEnd := injEnd + 4*s.Measure
	for cycle := int64(0); cycle < drainEnd; cycle++ {
		if cycle == s.Warmup {
			failedAt[0] = net.InjectorStats().Failed
		}
		for p, b := range bounds {
			if cycle == b {
				failedAt[p+1] = net.InjectorStats().Failed
			}
		}
		if cycle < injEnd {
			for node := 0; node < topo.Nodes(); node++ {
				if m, ok := gen.Tick(topology.NodeID(node), cycle); ok {
					if phaseOf(m.CreateTime) >= 0 {
						window[m.ID] = m.CreateTime
						pending++
					}
					net.SubmitMessage(m)
				}
			}
		}
		net.Step()
		for _, d := range net.DrainDeliveries() {
			created, ok := window[d.Msg]
			if !ok {
				continue
			}
			delete(window, d.Msg)
			pending--
			p := phaseOf(created)
			delivered[p]++
			lat[p].Add(float64(d.Time - created))
			hist[p].Add(d.Time - created)
		}
		if cycle >= injEnd && pending == 0 {
			break
		}
	}
	// Failures during the drain (if any) attribute to the last phase.
	failedAt[phases] = net.InjectorStats().Failed

	names := [phases]string{"baseline", "faulted", "settling", "recovered"}
	for p := 0; p < phases; p++ {
		t.AddRow(names[p], w, lat[p].Mean(), hist[p].Percentile(0.95), delivered[p], failedAt[p+1]-failedAt[p])
	}
	return t
}

// E24ChaosSoak is the chaos soak: FCR with misrouting under a random
// MTBF/MTTR fail-and-repair timeline over links and nodes, audited every
// step by the invariant watchdog. Like E14 it reports PASS/FAIL property
// rows — a FAIL here means the protocol (or the simulator) broke under
// chaos, and crbench exits non-zero on it.
func E24ChaosSoak(s Scale) *stats.Table {
	t := stats.NewTable("E24: chaos soak with invariant watchdog (FCR, load=0.3)",
		"property", "value", "expectation", "pass")
	const load = 0.3
	topo := s.torus()
	horizon := s.Warmup + s.Measure
	timeline := faults.RandomTimeline(faults.TimelineConfig{
		Links:    network.LinksOf(topo),
		Nodes:    []int{3, topo.Nodes()/2 + 1},
		LinkMTBF: float64(40 * s.Measure), LinkMTTR: float64(s.Measure / 20),
		NodeMTBF: float64(2 * s.Measure), NodeMTTR: float64(s.Measure / 20),
		Start:   s.Warmup / 2,
		Horizon: horizon,
		Seed:    harness.PointSeed(s.Seed, 2400),
	})
	faultEvents := len(timeline.Events())

	cfg := s.fcrNet()
	cfg.MisrouteAfter = 2
	cfg.MaxDetours = 4
	cfg.Faults = timeline
	m, err := Run(Config{
		Net:           cfg,
		Pattern:       "uniform",
		Load:          load,
		MsgLen:        s.MsgLen,
		WarmupCycles:  s.Warmup,
		MeasureCycles: s.Measure,
		Seed:          harness.PointSeed(s.Seed, 2401),
		Watchdog:      &invariant.Config{},
	})

	check := func(name string, value interface{}, ok bool, expectation string) {
		pass := "PASS"
		if !ok {
			pass = "FAIL"
		}
		t.AddRow(name, fmt.Sprint(value), expectation, pass)
	}
	health := "healthy"
	if err != nil {
		health = err.Error()
	}
	check("run health", health, err == nil, "healthy")
	check("invariant violations", m.Violations, m.Violations == 0, "0")
	check("watchdog scans", m.WatchdogScans, m.WatchdogScans > 0, "> 0 (watchdog not vacuous)")
	check("fault events scheduled", faultEvents, faultEvents > 0, "> 0 (chaos not vacuous)")
	check("delivered messages", m.Delivered, m.Delivered > 0, "> 0")
	check("corrupt deliveries", m.DeliveredCorrupt, m.DeliveredCorrupt == 0, "0")
	check("order violations", m.OrderErrors, m.OrderErrors == 0, "0")
	return t
}
