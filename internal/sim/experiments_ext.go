package sim

import (
	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/stats"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// The experiments in this file cover the paper's discussion-section
// material beyond the main evaluation figures: the alternate timeout
// schemes of Section 7, the turn-model comparison implied by the related
// work (reference [19]), the latency-variance discussion (reference
// [32]) and bimodal traffic loads from the same companion study.

// E15TimeoutSchemes reproduces the Section 7/8 ablation: the chosen
// source-based timeout against a path-wide scheme where every router
// kills worms it has held blocked too long. The paper's finding: the
// path-wide schemes produce unnecessary message kills and inferior
// performance, because a router cannot tell a committed-but-slow worm
// from a deadlocked one.
func E15TimeoutSchemes(s Scale) *stats.Table {
	t := stats.NewTable("E15 (Sec. 7/8): source-based vs path-wide timeout",
		"scheme", "offered(frac)", "thpt(flits/node/cyc)", "avg_latency", "kills/msg", "retries/msg")
	for _, load := range s.Loads {
		m := s.run(s.crNet(), "uniform", load, s.MsgLen)
		t.AddRow("source-based", load, m.Throughput, m.AvgLatency, m.KillsPerMsg, m.RetriesPerMsg)
	}
	for _, load := range s.Loads {
		net := s.crNet()
		// Same detection horizon as the source scheme's default rule;
		// the source timeout is disabled to isolate the scheme.
		net.RouterTimeout = s.MsgLen
		net.Timeout = 1 << 20
		m := s.run(net, "uniform", load, s.MsgLen)
		// Path-wide kills surface as FKILL retransmissions at sources.
		t.AddRow("path-wide", load, m.Throughput, m.AvgLatency, m.FKillsPerMsg, m.RetriesPerMsg)
	}
	return t
}

// E16TurnModel compares the three adaptivity levels available without
// (or nearly without) virtual channels on an 8x8 mesh: DOR (none),
// west-first turn model (partial, reference [19]), and CR (full). The
// turn model needs no protocol support but is topology-limited — it does
// not extend to the torus, which is exactly the gap CR fills.
func E16TurnModel(s Scale) *stats.Table {
	t := stats.NewTable("E16: adaptivity without VCs on the mesh: DOR vs west-first vs CR",
		"pattern", "scheme", "offered(frac)", "thpt(flits/node/cyc)", "avg_latency")
	mesh := topology.NewMesh(s.K, 2)
	mk := func(alg routing.Algorithm, proto core.Protocol) network.Config {
		return network.Config{
			Topo:     mesh,
			Alg:      alg,
			Protocol: proto,
			BufDepth: 2,
			Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			Seed:     s.Seed,
		}
	}
	schemes := []struct {
		name string
		cfg  network.Config
	}{
		{"DOR", mk(routing.DOR{}, core.Plain)},
		{"west-first", mk(routing.WestFirst{}, core.Plain)},
		{"CR", mk(routing.MinimalAdaptive{}, core.CR)},
	}
	for _, pattern := range []string{"uniform", "transpose"} {
		for _, sc := range schemes {
			for _, load := range s.Loads {
				m := s.run(sc.cfg, pattern, load, s.MsgLen)
				t.AddRow(pattern, sc.name, load, m.Throughput, m.AvgLatency)
			}
		}
	}
	return t
}

// E17LatencyDistribution addresses the paper's variance discussion
// (Section 7, reference [32]): kills and retransmissions give some CR
// messages much larger latencies, widening the distribution's tail even
// where the mean is competitive. Reported: the latency percentiles of CR
// and DOR at moderate and high load.
func E17LatencyDistribution(s Scale) *stats.Table {
	t := stats.NewTable("E17: latency distribution tails, CR vs DOR",
		"scheme", "offered(frac)", "avg", "p50", "p95", "p99", "max")
	for _, load := range []float64{0.3, 0.6} {
		mc := s.run(s.crNet(), "uniform", load, s.MsgLen)
		md := s.run(s.dorNet(1, 2), "uniform", load, s.MsgLen)
		t.AddRow("CR", load, mc.AvgLatency, mc.P50Latency, mc.P95Latency, mc.P99Latency, mc.MaxLatency)
		t.AddRow("DOR", load, md.AvgLatency, md.P50Latency, md.P95Latency, md.P99Latency, md.MaxLatency)
	}
	return t
}

// E18BimodalTraffic runs the bimodal short/long message mix (reference
// [32]): 4-flit protocol messages with a fraction of 64-flit data
// messages. CR's padding hits short messages hardest while adaptivity
// helps the long ones, so the mix probes both ends of the trade.
func E18BimodalTraffic(s Scale) *stats.Table {
	t := stats.NewTable("E18: bimodal traffic (4/64-flit mix)",
		"scheme", "long_frac", "offered(frac)", "thpt(flits/node/cyc)", "avg_latency", "p99")
	const load = 0.4
	for _, longFrac := range []float64{0.0, 0.1, 0.3, 0.5} {
		model := traffic.Bimodal{Short: 4, Long: 64, LongFrac: longFrac}
		for _, sc := range []struct {
			name string
			net  network.Config
		}{
			{"CR", s.crNet()},
			{"DOR", s.dorNet(1, 2)},
		} {
			m, err := Run(Config{
				Net:           sc.net,
				Pattern:       "uniform",
				Load:          load,
				Lengths:       model,
				WarmupCycles:  s.Warmup,
				MeasureCycles: s.Measure,
				Seed:          s.Seed + 77,
			})
			if err != nil {
				panic(err)
			}
			t.AddRow(sc.name, longFrac, load, m.Throughput, m.AvgLatency, m.P99Latency)
		}
	}
	return t
}
