package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"crnet/internal/faults"
	"crnet/internal/invariant"
	"crnet/internal/network"
)

// TestShardedRunWithHarnessAttached drives the sharded kernel through
// the full sim harness — fault timeline, hazard coupling, transient
// corruption, invariant watchdog, and the metrics sampler (which
// installs a tracer) all attached — at shard counts including one that
// does not divide the node count and the host's parallelism. It exists
// to run under -race (see the race-sharded make target): the serial
// phases, parallel phases, and merge barriers all execute with every
// observer wired in, so any unsynchronized access to shared state
// surfaces as a race report. It also pins that metrics are identical
// to the serial kernel's even with the whole harness attached.
func TestShardedRunWithHarnessAttached(t *testing.T) {
	scale := Scale{K: 6, MsgLen: 8, Seed: 11}
	base := scale.fcrNet()
	base.VCs = 2
	base.TransientRate = 1e-3
	base.Check = true
	base.Hazard = &faults.HazardSpec{
		LinkLambda0: 2e-5,
		Alpha:       4,
		LinkMTTR:    120,
		EvalEvery:   32,
		Seed:        99,
	}
	timeline := faults.TimelineConfig{
		Links:    network.LinksOf(base.Topo),
		LinkMTBF: 800, LinkMTTR: 50,
		Start: 100, Horizon: 1500,
		Seed: 21,
	}
	run := func(shards int) Metrics {
		net := base
		net.Shards = shards
		// Each run gets its own timeline: the schedule is stateful.
		net.Faults = faults.RandomTimeline(timeline)
		m, err := Run(Config{
			Net:           net,
			Load:          0.5,
			MsgLen:        8,
			WarmupCycles:  300,
			MeasureCycles: 1500,
			Seed:          7,
			Watchdog:      &invariant.Config{CheckEvery: 32},
			SampleEvery:   16,
			SampleCap:     64,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return m
	}
	serial := run(0)
	if serial.Delivered == 0 {
		t.Fatal("serial reference delivered nothing")
	}
	if serial.Violations != 0 {
		t.Fatalf("serial reference tripped the watchdog: %d violations", serial.Violations)
	}
	counts := []int{1, 2, 7}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	for _, s := range counts {
		s := s
		t.Run(fmt.Sprintf("shards%d", s), func(t *testing.T) {
			got := run(s)
			if got.Violations != 0 {
				t.Fatalf("watchdog recorded %d violations", got.Violations)
			}
			// Histogram aggregates live behind pointers; compare their
			// sums, then zero them so the flat fields compare with ==.
			if got.Phases.Total.Sum() != serial.Phases.Total.Sum() {
				t.Fatalf("phase decomposition diverged: %d vs %d end-to-end cycles",
					got.Phases.Total.Sum(), serial.Phases.Total.Sum())
			}
			a, b := got, serial
			a.Phases, b.Phases = nil, nil
			a.Series, b.Series = nil, nil
			if a != b {
				t.Fatalf("sharded metrics diverged from serial:\nsharded: %+v\nserial:  %+v", a, b)
			}
			if !reflect.DeepEqual(got.Series, serial.Series) {
				t.Fatalf("sampled time-series diverged: %d vs %d rows",
					got.Series.Len(), serial.Series.Len())
			}
		})
	}
}
