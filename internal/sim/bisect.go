package sim

import (
	"fmt"

	"crnet/internal/faults"
	"crnet/internal/harness"
	"crnet/internal/invariant"
	"crnet/internal/workload"
)

// Checkpoint bisection: when a long run trips the invariant watchdog,
// the interesting question is not "did it break" but "when did it
// break" — the first cycle at which the network stopped auditing clean.
// The watchdog only scans every CheckEvery cycles, so the detection
// cycle can trail the actual corruption by a full scan period, and on
// a multi-million-cycle soak, re-running from zero with a finer scan
// is wasteful. Bisect instead records in-memory checkpoints on a fixed
// grid during the detection pass, then binary-searches the failure
// cycle: each probe restores the nearest checkpoint at or below the
// probe cycle, replays forward, and runs a fresh full audit. The
// search assumes the violation is persistent once present (true for
// conservation imbalances and latched deadlock windows; livelock hops
// can in principle clear when a worm dies, in which case Bisect still
// localizes one clean-to-violating transition).

// BisectConfig parameterizes a forensic bisection run.
type BisectConfig struct {
	// Service is the simulation under investigation. It is rebuilt from
	// scratch for every probe, so the config must be reusable (it is
	// never mutated).
	Service ServiceConfig
	// Watchdog configures the invariant audits, both the detection
	// monitor and the per-probe audits.
	Watchdog invariant.Config
	// Horizon is how many cycles the detection pass runs (required).
	Horizon int64
	// CheckpointEvery is the checkpoint grid spacing in cycles
	// (default 1024). Probe replay cost is bounded by this.
	CheckpointEvery int64
}

// BisectReport is the outcome of a bisection.
type BisectReport struct {
	// Violation is the watchdog violation that triggered the search;
	// nil means the detection pass ran the full horizon clean.
	Violation *invariant.Violation
	// FirstBad is the first cycle whose full audit fails (only
	// meaningful when Violation is non-nil). The detection cycle in
	// Violation.Cycle can be later: detection scans on a period, the
	// bisection pins the transition to one cycle.
	FirstBad int64
	// Probes counts binary-search probes; StepsReplayed the total
	// cycles re-simulated across them; Checkpoints the snapshots taken
	// during the detection pass.
	Probes        int
	StepsReplayed int64
	Checkpoints   int
}

// String renders the one-line forensic summary.
func (r BisectReport) String() string {
	if r.Violation == nil {
		return fmt.Sprintf("bisect: clean run, no violation within horizon (%d checkpoints)", r.Checkpoints)
	}
	return fmt.Sprintf("bisect: first %s violation at cycle %d (detected at cycle %d: %s) — %d probes, %d cycles replayed, %d checkpoints",
		r.Violation.Kind, r.FirstBad, r.Violation.Cycle, r.Violation.Detail,
		r.Probes, r.StepsReplayed, r.Checkpoints)
}

// Bisect runs the detection pass and, if it trips, binary-searches the
// first violating cycle. The returned error covers infrastructure
// failures (invalid config, a probe that cannot restore); a watchdog
// violation is a finding, not an error.
func Bisect(cfg BisectConfig) (BisectReport, error) {
	var rep BisectReport
	if cfg.Horizon <= 0 {
		return rep, fmt.Errorf("sim: bisect requires a positive horizon")
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 1024
	}

	// Detection pass: watchdog installed as the network monitor, one
	// in-memory checkpoint per grid point. Step in grid-sized chunks so
	// checkpoints land exactly on the grid.
	svc, err := NewService(cfg.Service)
	if err != nil {
		return rep, err
	}
	dog := invariant.New(cfg.Watchdog)
	svc.Network().SetMonitor(dog)
	type checkpointAt struct {
		cycle int64
		data  []byte
	}
	ckpts := []checkpointAt{{0, svc.Save()}}
	tripped := false
	for svc.Cycle() < cfg.Horizon {
		n := every - svc.Cycle()%every
		if rem := cfg.Horizon - svc.Cycle(); rem < n {
			n = rem
		}
		if err := svc.Step(n); err != nil {
			tripped = true
			break
		}
		ckpts = append(ckpts, checkpointAt{svc.Cycle(), svc.Save()})
	}
	rep.Checkpoints = len(ckpts)
	if !tripped {
		return rep, nil
	}
	vs := dog.Violations()
	if len(vs) == 0 {
		// Step failed for a non-watchdog reason (e.g. an externally
		// latched health error); that is not bisectable.
		return rep, fmt.Errorf("sim: bisect detection stopped without a watchdog violation")
	}
	rep.Violation = &vs[0]

	// probe reports whether a fresh full audit fails at cycle c: restore
	// the nearest checkpoint at or below c, replay forward monitor-free,
	// audit with a fresh watchdog. Determinism makes the replayed state
	// bit-identical to the detection pass's state at c.
	probe := func(c int64) (bool, error) {
		base := ckpts[0]
		for i := len(ckpts) - 1; i >= 0; i-- {
			if ckpts[i].cycle <= c {
				base = ckpts[i]
				break
			}
		}
		p, err := NewService(cfg.Service)
		if err != nil {
			return false, err
		}
		if err := p.Restore(base.data); err != nil {
			return false, fmt.Errorf("sim: bisect probe restore at cycle %d: %w", base.cycle, err)
		}
		if c > base.cycle {
			if err := p.Step(c - base.cycle); err != nil {
				return false, fmt.Errorf("sim: bisect probe replay to cycle %d: %w", c, err)
			}
		}
		rep.Probes++
		rep.StepsReplayed += c - base.cycle
		return invariant.New(cfg.Watchdog).Audit(p.Network()) != nil, nil
	}

	// Invariant: audit passes at lo (cycle 0 is a fresh network), fails
	// at hi (the detection scan that latched health).
	lo, hi := int64(0), rep.Violation.Cycle
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		bad, err := probe(mid)
		if err != nil {
			return rep, err
		}
		if bad {
			hi = mid
		} else {
			lo = mid
		}
	}
	rep.FirstBad = hi
	return rep, nil
}

// DefaultBisectService is the canonical forensic scenario behind
// crbench -bisect: the chaos fabric (FCR with misrouting under a
// load-coupled hazard) fed by a looping uniform trace. With the
// watchdog at its honest defaults the scenario audits clean; tightening
// the budgets (-bisect-hop-budget, -bisect-deadlock-window) plants a
// tripwire to demonstrate the forensics on demand.
func DefaultBisectService(s Scale) ServiceConfig {
	net := s.fcrNet()
	net.MisrouteAfter = 2
	net.MaxDetours = 4
	net.Hazard = &faults.HazardSpec{
		LinkLambda0: 2e-6,
		Alpha:       6,
		LinkMTTR:    float64(s.Measure / 12),
		EvalEvery:   64,
		Seed:        harness.PointSeed(s.Seed, 3100),
	}
	return ServiceConfig{
		Net: net,
		Trace: workload.GenUniform(workload.TraceSpec{
			Nodes:  s.K * s.K,
			Cycles: 2000,
			Rate:   0.01,
			MsgLen: s.MsgLen,
			Seed:   harness.PointSeed(s.Seed, 3101),
		}),
		Loop: true,
	}
}
