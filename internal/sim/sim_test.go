package sim

import (
	"strings"
	"testing"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// tiny is a fast scale for exercising every experiment driver in tests.
var tiny = Scale{
	K:       4,
	MsgLen:  8,
	Warmup:  300,
	Measure: 1200,
	Loads:   []float64{0.3, 0.7},
	Seed:    3,
}

func tinyRun(t *testing.T, net network.Config, load float64) Metrics {
	t.Helper()
	m, err := Run(Config{
		Net:           net,
		Load:          load,
		MsgLen:        8,
		WarmupCycles:  300,
		MeasureCycles: 1500,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunLowLoadCR(t *testing.T) {
	m := tinyRun(t, tiny.crNet(), 0.2)
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if m.Saturated() {
		t.Fatalf("0.2 load saturated: %+v", m)
	}
	if m.AvgLatency <= 0 || m.P95Latency < m.P50Latency {
		t.Fatalf("latency stats inconsistent: %+v", m)
	}
	// Throughput should be near offered load at low load.
	if m.Throughput < 0.5*m.OfferedLoad || m.Throughput > 1.5*m.OfferedLoad {
		t.Fatalf("throughput %v far from offered %v", m.Throughput, m.OfferedLoad)
	}
	if m.DeliveredCorrupt != 0 || m.OrderErrors != 0 || m.FailedMessages != 0 {
		t.Fatalf("integrity violated: %+v", m)
	}
	if m.PadOverhead <= 0 {
		t.Fatal("CR with 8-flit messages should pad")
	}
}

func TestRunThroughputMonotoneUntilSaturation(t *testing.T) {
	prev := -1.0
	for _, load := range []float64{0.1, 0.3, 0.5} {
		m := tinyRun(t, tiny.crNet(), load)
		if m.Throughput < prev*0.8 {
			t.Fatalf("throughput collapsed from %v to %v at load %v", prev, m.Throughput, load)
		}
		prev = m.Throughput
	}
}

func TestRunOversaturationCensors(t *testing.T) {
	m := tinyRun(t, tiny.dorNet(1, 2), 1.2)
	if !m.Saturated() {
		t.Fatalf("1.2x load did not saturate DOR: %+v", m)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Net: tiny.crNet(), MsgLen: 0, Load: 0.5}); err == nil {
		t.Fatal("MsgLen 0 accepted")
	}
	if _, err := Run(Config{Net: tiny.crNet(), MsgLen: 8, Load: -1}); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := Run(Config{Net: tiny.crNet(), MsgLen: 8, Load: 0.5, Pattern: "nope"}); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Net: tiny.fcrNet(), Load: 0.5, MsgLen: 8, WarmupCycles: 200, MeasureCycles: 800, Seed: 5}
	cfg.Net.TransientRate = 1e-3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the histogram aggregates behind the pointers, then zero
	// them so the flat fields compare with ==.
	if a.Phases.Total.Sum() != b.Phases.Total.Sum() || a.Phases.Queue.Sum() != b.Phases.Queue.Sum() {
		t.Fatalf("phase decomposition diverged: %d vs %d end-to-end cycles",
			a.Phases.Total.Sum(), b.Phases.Total.Sum())
	}
	a.Phases, b.Phases = nil, nil
	if a != b {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestScaleConfigs(t *testing.T) {
	if Quick.torus().Nodes() != 64 || Full.torus().Nodes() != 256 {
		t.Fatal("scale topologies wrong")
	}
	cr := Quick.crNet()
	if cr.Protocol != core.CR || cr.VCs != 1 || cr.BufDepth != 2 {
		t.Fatalf("canonical CR config wrong: %+v", cr)
	}
	if _, ok := cr.Alg.(routing.MinimalAdaptive); !ok {
		t.Fatal("CR config not minimal adaptive")
	}
	dor := Quick.dorNet(2, 4)
	if dor.Protocol != core.Plain || dor.BufDepth != 4 {
		t.Fatalf("DOR config wrong: %+v", dor)
	}
	if dor.Alg.MinVCs(topology.NewTorus(8, 2)) != 4 {
		t.Fatal("DOR lanes wrong")
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) != 32 {
		t.Fatalf("%d experiments registered, want 32", len(Experiments))
	}
	for _, id := range ChaosExperiments {
		if _, ok := ByID(id); !ok {
			t.Fatalf("chaos subset lists unknown experiment %s", id)
		}
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.Title != e.Title {
			t.Fatalf("ByID(%s) broken", e.ID)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

// expectedColumns pins each experiment's table schema so report
// consumers (the benchmarks, EXPERIMENTS.md, downstream CSV tooling)
// notice accidental drift.
var expectedColumns = map[string]int{
	"E1": 6, "E2": 5, "E3": 5, "E4": 5, "E5": 6, "E6": 6, "E7": 6,
	"E8": 6, "E9": 6, "E10": 5, "E11": 8, "E12": 6, "E13": 5, "E14": 4,
	"E15": 6, "E16": 5, "E17": 7, "E18": 6, "E19": 6, "E20": 6, "E21": 5,
	"E22": 6, "E23": 6, "E24": 4, "E25": 9, "E26": 8, "E27": 8, "E28": 6,
	"E29": 9, "E30": 4, "E31": 6, "E32": 8,
}

// Every experiment driver must run end to end and produce a non-empty,
// well-formed table at tiny scale.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests take ~10s")
	}
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(tiny)
			if tbl.NumRows() == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if want, ok := expectedColumns[e.ID]; !ok {
				t.Fatalf("%s missing from expectedColumns", e.ID)
			} else if got := len(tbl.Columns); got != want {
				t.Fatalf("%s has %d columns, schema pin says %d", e.ID, got, want)
			}
			out := tbl.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s table title missing id:\n%s", e.ID, out)
			}
			if csv := tbl.CSV(); len(strings.Split(csv, "\n")) < 2 {
				t.Fatalf("%s CSV malformed", e.ID)
			}
		})
	}
}

// E14 is the property experiment: at tiny scale its PASS column must be
// all PASS.
func TestE14PropertiesAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("property run takes a few seconds")
	}
	tbl := E14Properties(tiny)
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		if row[len(row)-1] != "PASS" {
			t.Errorf("property %q failed: %v", row[0], row)
		}
	}
}

func TestRunWithBimodalLengths(t *testing.T) {
	cfg := Config{
		Net:           tiny.crNet(),
		Load:          0.3,
		Lengths:       traffic.Bimodal{Short: 4, Long: 32, LongFrac: 0.25},
		WarmupCycles:  300,
		MeasureCycles: 1500,
		Seed:          9,
	}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("bimodal run delivered nothing")
	}
	if m.DeliveredCorrupt != 0 || m.FailedMessages != 0 {
		t.Fatalf("integrity violated: %+v", m)
	}
}

func TestRunWithNetworkExposesLinkLoads(t *testing.T) {
	m, net, err := RunWithNetwork(Config{
		Net:           tiny.crNet(),
		Load:          0.3,
		MsgLen:        8,
		WarmupCycles:  200,
		MeasureCycles: 800,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if net == nil {
		t.Fatal("nil network returned")
	}
	var total int64
	for _, ll := range net.LinkLoads() {
		total += ll.Flits
	}
	if total == 0 || m.Delivered == 0 {
		t.Fatal("no traffic observed on links")
	}
}
