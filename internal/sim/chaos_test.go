package sim

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/harness"
	"crnet/internal/invariant"
	"crnet/internal/routing"
	"crnet/internal/topology"

	"crnet/internal/network"
)

// soakScale is a reduced scale for the chaos tests: big enough for the
// fault timeline to actually fire, small enough for -race CI runs.
var soakScale = Scale{
	K:       8,
	MsgLen:  16,
	Warmup:  1000,
	Measure: 4000,
	Loads:   []float64{0.3},
	Seed:    1,
}

func tableFailures(t *testing.T, tbl interface {
	NumRows() int
	Row(int) []string
}, passCol int) []string {
	t.Helper()
	var fails []string
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		if row[passCol] == "FAIL" {
			fails = append(fails, row[0]+"="+row[1])
		}
	}
	return fails
}

// TestChaosSoak runs the E24 chaos soak (random fail/repair timeline
// over links and nodes, invariant watchdog auditing every scan period)
// and requires every property row to PASS. The Makefile's chaos target
// runs exactly this test under the race detector.
func TestChaosSoak(t *testing.T) {
	tbl := E24ChaosSoak(soakScale)
	if fails := tableFailures(t, tbl, 3); len(fails) != 0 {
		t.Fatalf("chaos soak property failures: %v\n%s", fails, tbl.String())
	}
}

// TestE23FailRepairRecovers pins the E23 acceptance criteria: latency
// degrades while the links are down, returns to baseline after the
// settling window, and no message is ever abandoned (the network stays
// connected).
func TestE23FailRepairRecovers(t *testing.T) {
	// Quick scale: soakScale's shorter windows (~380 messages each) are
	// too noisy to separate recovery from sampling error.
	tbl := E23FailRepair(Quick)
	cell := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tbl.Row(row)[col], 64)
		if err != nil {
			t.Fatalf("row %d col %d %q: %v", row, col, tbl.Row(row)[col], err)
		}
		return v
	}
	baseline, faulted, recovered := cell(0, 2), cell(1, 2), cell(3, 2)
	if faulted < 1.1*baseline {
		t.Errorf("outage did not degrade latency: baseline %.1f, faulted %.1f", baseline, faulted)
	}
	if recovered > 1.25*baseline {
		t.Errorf("latency did not recover: baseline %.1f, recovered %.1f", baseline, recovered)
	}
	for p := 0; p < tbl.NumRows(); p++ {
		if failed := tbl.Row(p)[5]; failed != "0" {
			t.Errorf("phase %s abandoned %s messages while connected", tbl.Row(p)[0], failed)
		}
	}
	if t.Failed() {
		t.Fatalf("\n%s", tbl.String())
	}
}

// TestE9FaultSeedsDecorrelated pins E9's fault-schedule seeding: the
// splitmix64-derived seed per dead-link count is deterministic (same
// schedule on every call) and decorrelated (different counts draw from
// visibly different permutations, not nested prefixes of one stream).
func TestE9FaultSeedsDecorrelated(t *testing.T) {
	links := network.LinksOf(topology.NewTorus(8, 2))
	first := map[faults.LinkID]bool{}
	for _, dead := range []int{1, 2, 4, 8} {
		a := faults.RandomLinks(links, dead, 100, harness.PointSeed(1, 900+dead))
		b := faults.RandomLinks(links, dead, 100, harness.PointSeed(1, 900+dead))
		if fmt.Sprint(a.Events()) != fmt.Sprint(b.Events()) {
			t.Fatalf("dead=%d: schedule not deterministic", dead)
		}
		first[a.Events()[0].Link] = true
	}
	// A shared seed would make every schedule a prefix of the same
	// permutation (identical first pick); derived seeds must not.
	if len(first) < 2 {
		t.Fatalf("fault schedules share their first dead link %v: seeds correlated", first)
	}
}

// TestSweepSurvivesUnhealthyPoint is the crash-proof-harness integration
// test at the sim layer: a grid whose middle point deadlocks (plain
// adaptive routing, watchdog armed) completes anyway — the healthy
// points keep their metrics, the sick point lands in CollectErrors with
// the structured violation text.
func TestSweepSurvivesUnhealthyPoint(t *testing.T) {
	s := Scale{K: 4, MsgLen: 8, Warmup: 300, Measure: 2000, Seed: 1, Parallel: 2}
	var got []harness.PointError
	s.CollectErrors = func(label string, errs []harness.PointError) {
		if label != "mixed" {
			t.Errorf("errors reported for label %q", label)
		}
		got = append(got, errs...)
	}
	healthy := network.Config{
		Topo:     topology.NewTorus(4, 2),
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
	}
	sick := healthy
	sick.Protocol = core.Plain // 1 VC fully adaptive: deadlocks under load
	dog := &invariant.Config{DeadlockWindow: 400, CheckEvery: 50}
	pts := []Point{
		{Series: "ok", Pattern: "uniform", Load: 0.2, MsgLen: 8, Net: healthy, Watchdog: dog},
		{Series: "deadlock", Pattern: "tornado", Load: 0.9, MsgLen: 8, Net: sick, Watchdog: dog},
		{Series: "ok", Pattern: "uniform", Load: 0.3, MsgLen: 8, Net: healthy, Watchdog: dog},
	}
	ms := s.sweep("mixed", pts)
	if len(ms) != 3 {
		t.Fatalf("sweep returned %d results, want 3", len(ms))
	}
	if len(got) != 1 || got[0].Index != 1 {
		t.Fatalf("want exactly the deadlocked point in errors, got %+v", got)
	}
	if got[0].Kind != harness.PointErrKind {
		t.Fatalf("violation recorded as %q, want %q", got[0].Kind, harness.PointErrKind)
	}
	if ms[1] != (Metrics{}) {
		t.Fatalf("failed point slot not zeroed: %+v", ms[1])
	}
	for _, i := range []int{0, 2} {
		if ms[i].Delivered == 0 || ms[i].WatchdogScans == 0 {
			t.Fatalf("healthy point %d lost its metrics: %+v", i, ms[i])
		}
	}
}

// TestSweepPointTimeout: a point that cannot finish inside its
// wall-clock budget is cancelled and recorded as a timeout while the
// rest of the sweep completes.
func TestSweepPointTimeout(t *testing.T) {
	// A huge measurement window the 1ms budget cannot possibly cover;
	// the Cancel channel is polled every 1024 cycles, so cancellation
	// lands promptly regardless.
	s := Scale{K: 8, MsgLen: 16, Warmup: 1000, Measure: 50_000_000, Seed: 1,
		Parallel: 1, PointTimeout: time.Millisecond}
	var got []harness.PointError
	s.CollectErrors = func(_ string, errs []harness.PointError) { got = append(got, errs...) }
	net := network.Config{
		Topo:     topology.NewTorus(8, 2),
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
	}
	pts := []Point{{Series: "slow", Pattern: "uniform", Load: 0.3, MsgLen: 16, Net: net}}
	start := time.Now()
	s.sweep("slow", pts)
	if time.Since(start) > 2*time.Minute {
		t.Fatal("timed-out point was not cancelled")
	}
	if len(got) != 1 || got[0].Kind != harness.PointTimedOut {
		t.Fatalf("want one timeout error, got %+v", got)
	}
}
