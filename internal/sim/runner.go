// Package sim provides the experiment harness: it wires a network
// configuration to a synthetic workload, runs warmup and measurement
// windows, and reduces the run to the metrics the paper's figures plot
// (latency vs offered load, throughput, kill/retry rates, PDS counts,
// padding overhead). The experiment drivers that regenerate each of the
// paper's figures and tables live in this package too and are shared by
// cmd/crbench and the repository's benchmarks.
package sim

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/invariant"
	"crnet/internal/network"
	"crnet/internal/obs"
	"crnet/internal/stats"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// Config describes one simulation run.
type Config struct {
	// Net is the network configuration (topology, routing, protocol...).
	Net network.Config
	// Pattern names the traffic pattern (see traffic.ByName).
	Pattern string
	// Load is the offered load as a fraction of the topology's uniform
	// saturation capacity.
	Load float64
	// MsgLen is the message length in flits (head included).
	MsgLen int
	// Lengths optionally overrides MsgLen with a message-length model
	// (e.g. traffic.Bimodal); MsgLen is ignored when set.
	Lengths traffic.LengthModel
	// WarmupCycles are simulated but not measured; 0 means 2000.
	WarmupCycles int64
	// MeasureCycles is the measurement window; 0 means 10000.
	MeasureCycles int64
	// DrainCycles bounds the post-measurement drain that lets messages
	// born in the window finish; 0 means 4 x MeasureCycles.
	DrainCycles int64
	// Seed drives traffic generation (fault seeds live in Net).
	Seed uint64
	// Watchdog, when set, installs an invariant watchdog on the network;
	// the run aborts with the violation the moment one is detected
	// instead of silently producing garbage metrics.
	Watchdog *invariant.Config
	// Cancel, when set, aborts the run (with an error) shortly after the
	// channel closes. The crash-proof sweep harness uses it to reclaim
	// points that exceed their wall-clock budget.
	Cancel <-chan struct{}
	// Degrade, when set, installs the graceful-degradation controller:
	// offered messages pass through its deterministic admission gate
	// (shed messages are counted, not submitted) and delivered latency
	// plus fault density drive its hysteresis state machine.
	Degrade *DegradeConfig

	// SampleEvery, when positive, turns on the per-cycle metrics sampler:
	// every SampleEvery cycles the observability registry (per-VC buffer
	// occupancy, in-flight worms, link utilization, kill/eject counters)
	// is snapshotted into a ring buffer exported as Metrics.Series.
	SampleEvery int64
	// SampleCap bounds the ring buffer; once full, the oldest samples are
	// evicted so the series covers the tail of the run. 0 means 512.
	SampleCap int
}

func (c *Config) fillDefaults() error {
	if c.Lengths == nil {
		if c.MsgLen < 1 {
			return fmt.Errorf("sim: MsgLen = %d", c.MsgLen)
		}
		c.Lengths = traffic.FixedLength(c.MsgLen)
	}
	if c.Load < 0 {
		return fmt.Errorf("sim: Load = %v", c.Load)
	}
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 2000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 4 * c.MeasureCycles
	}
	return nil
}

// Metrics is the reduction of one run. Event rates cover the measurement
// window; latency covers messages created in the window (delivered
// within the bounded drain).
type Metrics struct {
	// OfferedLoad is the generated load in flits/node/cycle.
	OfferedLoad float64
	// OfferedFrac is OfferedLoad as a fraction of uniform capacity.
	OfferedFrac float64
	// Throughput is delivered data flits/node/cycle in the window.
	Throughput float64
	// ThroughputFrac is Throughput as a fraction of uniform capacity.
	ThroughputFrac float64

	// Delivered counts window messages delivered; Censored counts those
	// still undelivered at the drain bound (grows past saturation).
	Delivered int64
	Censored  int64

	// Latency statistics in cycles, message creation to delivery.
	AvgLatency float64
	P50Latency int64
	P95Latency int64
	P99Latency int64
	MaxLatency int64

	// MaxNetResidence is the worst observed in-network residence of a
	// delivered window message: injection of the delivered attempt to
	// tail drained (the flight + drain phases). Queueing and retries are
	// excluded, so this is the quantity the analytical per-flow bound
	// (internal/bound, experiment E32) speaks about.
	MaxNetResidence int64

	// Phase latency decomposition: mean cycles per delivered window
	// message spent in each phase. The four phases partition AvgLatency
	// exactly (see obs.PhaseBreakdown): Queue is creation to first
	// injection, Retry first injection to the delivered attempt's
	// injection, Flight injection to header arrival, Drain header arrival
	// to tail drained. BackoffLatency is the retransmission-gap portion
	// of RetryLatency.
	QueueLatency   float64
	RetryLatency   float64
	FlightLatency  float64
	DrainLatency   float64
	BackoffLatency float64

	// Protocol event rates, normalized per delivered window message.
	KillsPerMsg   float64
	RetriesPerMsg float64
	FKillsPerMsg  float64
	PDSPerMsg     float64
	// PadOverhead is pad flits per data flit injected in the window.
	PadOverhead float64

	// Integrity and liveness (whole run).
	DeliveredCorrupt int64 // DataOK == false window deliveries (zero under FCR)
	FailedMessages   int64 // abandoned after MaxAttempts
	OrderErrors      int64
	LateFKills       int64
	TransientFaults  int64
	Misroutes        int64
	StaleSignals     int64

	// Watchdog results (zero unless Config.Watchdog was set).
	Violations    int64 // invariant violations recorded
	WatchdogScans int64 // audits performed

	// FaultEventsApplied counts failure events (timeline + hazard) the
	// network applied over the whole run.
	FaultEventsApplied int64
	// Degradation-controller results (zero unless Config.Degrade was
	// set). ShedMessages counts offers the controller refused during
	// the measurement window (they join Censored in the availability
	// denominator); DegradeFinal is the controller's final state name.
	ShedMessages       int64
	DegradeTransitions int64
	BreachedWindows    int64
	DegradeFinal       string

	// Phases holds the full per-phase latency histograms behind the mean
	// decomposition above (percentiles, sums, clamp counters).
	Phases *obs.PhaseBreakdown `json:"-"`
	// Series is the sampled counter/gauge time-series; nil unless
	// Config.SampleEvery was positive.
	Series *obs.Series `json:"-"`
}

// Saturated reports whether the run is past the saturation point, using
// the censoring ratio (undelivered window messages).
func (m Metrics) Saturated() bool {
	total := m.Delivered + m.Censored
	return total > 0 && float64(m.Censored) > 0.02*float64(total)
}

// snapshot captures the monotone counters used for window deltas.
type snapshot struct {
	kills, fkills, retries   int64
	dataFlits, padFlits      int64
	recvDataFlits            int64
	pds, misroutes, staleSig int64
}

func takeSnapshot(net *network.Network) snapshot {
	is := net.InjectorStats()
	rs := net.RouterStats()
	return snapshot{
		kills:         is.Kills,
		fkills:        is.FKills,
		retries:       is.Retries,
		dataFlits:     is.DataFlits,
		padFlits:      is.PadFlits,
		recvDataFlits: net.ReceiverStats().DataFlits,
		pds:           rs.PDS,
		misroutes:     rs.Misroutes,
		staleSig:      rs.StaleSignals,
	}
}

// buildSampler wires the observability registry to net — tracer-fed
// event counters plus polled occupancy/utilization gauges — and returns
// the registry alongside a sampler ticking it every `every` cycles. The
// registry is returned separately so long-running services can expose
// it as a live metrics endpoint and checkpoint its counter state.
func buildSampler(net *network.Network, every int64, sampleCap int) (*obs.Registry, *obs.Sampler) {
	reg := obs.NewRegistry()

	injected := reg.Counter("injected_flits")
	ejected := reg.Counter("ejected_flits")
	corrupted := reg.Counter("corrupt_flits")
	kills := reg.Counter("kill_signals")
	fkills := reg.Counter("fkill_signals")
	net.SetTracer(func(e network.Event) {
		switch e.Kind {
		case network.EvInject:
			injected.Inc()
		case network.EvEject:
			ejected.Inc()
		case network.EvCorrupt:
			corrupted.Inc()
		case network.EvKill:
			kills.Inc()
		case network.EvFKill:
			fkills.Inc()
		}
	})

	// Gauges are polled in registration order; occupancy_total runs
	// first and caches the per-VC scan for the occupancy_vc gauges.
	var occ []int64
	reg.Gauge("occupancy_total", func() float64 {
		occ = net.OccupancyPerVCInto(occ)
		var t int64
		for _, v := range occ {
			t += v
		}
		return float64(t)
	})
	for vc := 0; vc < net.VCs(); vc++ {
		vc := vc
		reg.Gauge(fmt.Sprintf("occupancy_vc%d", vc), func() float64 { return float64(occ[vc]) })
	}
	reg.Gauge("injection_occupancy", func() float64 { return float64(net.InjectionOccupancy()) })
	reg.Gauge("inflight_worms", func() float64 { return float64(net.PendingWorms()) })
	reg.Gauge("inflight_flits", func() float64 { return float64(net.InFlightFlits()) })
	reg.Gauge("queued_messages", func() float64 { return float64(net.QueuedMessages()) })
	reg.Gauge("source_kills", func() float64 { return float64(net.InjectorStats().Kills) })
	links := float64(net.LinkCount())
	reg.Gauge("link_utilization", func() float64 {
		if c := net.Cycle(); c > 0 && links > 0 {
			return float64(net.LinkFlits()) / (links * float64(c))
		}
		return 0
	})

	cap := sampleCap
	if cap <= 0 {
		cap = 512
	}
	return reg, obs.NewSampler(reg, every, cap)
}

// Run executes one simulation and returns its metrics. A non-nil error
// alongside non-zero metrics means the run aborted mid-flight — a
// watchdog violation or a cancellation — and the metrics cover only the
// portion that ran.
func Run(cfg Config) (Metrics, error) {
	m, _, err := RunWithNetwork(cfg)
	return m, err
}

// RunWithNetwork is Run but also returns the simulated network for
// post-run inspection (link utilization, per-node statistics).
func RunWithNetwork(cfg Config) (Metrics, *network.Network, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Metrics{}, nil, err
	}
	net := network.New(cfg.Net)
	var dog *invariant.Watchdog
	if cfg.Watchdog != nil {
		dog = invariant.New(*cfg.Watchdog)
	}
	topo := net.Topology()
	pattern, err := traffic.ByName(cfg.Pattern, topo)
	if err != nil {
		return Metrics{}, nil, err
	}
	gen := traffic.NewGeneratorLengths(topo, pattern, cfg.Load, cfg.Lengths, cfg.Seed)

	var deg *Degrader
	if cfg.Degrade != nil {
		deg = NewDegrader(*cfg.Degrade)
	}

	window := make(map[flit.MessageID]int64) // message -> creation cycle
	hist := stats.NewHistogram(16, 4096)
	phases := obs.NewPhaseBreakdown(16, 4096)
	var lat stats.Welford
	var s0, s1 snapshot

	// The watchdog and the sampler attach through the kernel's single
	// hook seam: Monitor fires after each cycle's phases, Observer after
	// the clock advances (so polled gauges see the post-step state).
	var sampler *obs.Sampler
	var hooks network.Hooks
	if dog != nil {
		hooks.Monitor = dog
	}
	if cfg.SampleEvery > 0 {
		_, sampler = buildSampler(net, cfg.SampleEvery, cfg.SampleCap)
		hooks.Observer = sampler.Tick
	}
	net.SetHooks(hooks)

	measureStart := cfg.WarmupCycles
	measureEnd := cfg.WarmupCycles + cfg.MeasureCycles
	drainEnd := measureEnd + cfg.DrainCycles

	var delivered, corrupt, shed int64
	var maxNetResidence int64
	var abortErr error
loop:
	for cycle := int64(0); cycle < drainEnd; cycle++ {
		switch cycle {
		case measureStart:
			s0 = takeSnapshot(net)
		case measureEnd:
			s1 = takeSnapshot(net)
		}
		if cycle < measureEnd {
			for node := 0; node < topo.Nodes(); node++ {
				if m, ok := gen.Tick(topology.NodeID(node), cycle); ok {
					if deg != nil && !deg.Admit() {
						if cycle >= measureStart {
							shed++
						}
						continue
					}
					if cycle >= measureStart {
						window[m.ID] = m.CreateTime
					}
					net.SubmitMessage(m)
				}
			}
		}
		net.Step()
		for _, d := range net.DrainDeliveries() {
			if deg != nil {
				deg.Observe(d.Time - d.Stamps.Create)
			}
			created, ok := window[d.Msg]
			if !ok {
				continue
			}
			delete(window, d.Msg)
			delivered++
			l := d.Time - created
			lat.Add(float64(l))
			hist.Add(l)
			if nr := d.Time - d.Stamps.AttemptInject; nr > maxNetResidence {
				maxNetResidence = nr
			}
			phases.Add(d.Stamps.FirstInject-created,
				d.Stamps.AttemptInject-d.Stamps.FirstInject,
				d.HeadArrived-d.Stamps.AttemptInject,
				d.Time-d.HeadArrived,
				d.Stamps.Backoff)
			if !d.DataOK {
				corrupt++
			}
		}
		if deg != nil {
			deg.EndCycle(net.Cycle(), net.FaultEventsApplied(), net.Health() == nil)
		}
		if err := net.Health(); err != nil {
			abortErr = err
			if cycle < measureEnd {
				s1 = takeSnapshot(net) // partial window: whatever happened so far
				if cycle < measureStart {
					s0 = s1
				}
			}
			break loop
		}
		if cfg.Cancel != nil && cycle&1023 == 0 {
			select {
			case <-cfg.Cancel:
				abortErr = fmt.Errorf("sim: run cancelled at cycle %d", cycle)
				break loop
			default:
			}
		}
		if cycle >= measureEnd && len(window) == 0 {
			break
		}
	}
	if measureEnd >= drainEnd && abortErr == nil {
		s1 = takeSnapshot(net)
	}

	nodes := float64(topo.Nodes())
	capacity := traffic.CapacityFlitsPerNode(topo)
	measure := float64(cfg.MeasureCycles)

	m := Metrics{
		OfferedLoad:      cfg.Load * capacity,
		OfferedFrac:      cfg.Load,
		Throughput:       float64(s1.recvDataFlits-s0.recvDataFlits) / nodes / measure,
		Delivered:        delivered,
		Censored:         int64(len(window)),
		AvgLatency:       lat.Mean(),
		P50Latency:       hist.Percentile(0.50),
		P95Latency:       hist.Percentile(0.95),
		P99Latency:       hist.Percentile(0.99),
		MaxLatency:       hist.Max(),
		MaxNetResidence:  maxNetResidence,
		QueueLatency:     phases.Queue.Mean(),
		RetryLatency:     phases.Retry.Mean(),
		FlightLatency:    phases.Flight.Mean(),
		DrainLatency:     phases.Drain.Mean(),
		BackoffLatency:   phases.Backoff.Mean(),
		Phases:           phases,
		DeliveredCorrupt: corrupt,
		FailedMessages:   net.InjectorStats().Failed,
		OrderErrors:      net.ReceiverStats().OrderErrors,
		LateFKills:       net.InjectorStats().LateFKills,
		TransientFaults:  net.TransientFaults(),
		Misroutes:        s1.misroutes - s0.misroutes,
		StaleSignals:     s1.staleSig - s0.staleSig,
	}
	m.ThroughputFrac = m.Throughput / capacity
	if delivered > 0 {
		m.KillsPerMsg = float64(s1.kills-s0.kills) / float64(delivered)
		m.RetriesPerMsg = float64(s1.retries-s0.retries) / float64(delivered)
		m.FKillsPerMsg = float64(s1.fkills-s0.fkills) / float64(delivered)
		m.PDSPerMsg = float64(s1.pds-s0.pds) / float64(delivered)
	}
	if d := s1.dataFlits - s0.dataFlits; d > 0 {
		m.PadOverhead = float64(s1.padFlits-s0.padFlits) / float64(d)
	}
	if dog != nil {
		m.Violations = int64(len(dog.Violations()))
		m.WatchdogScans = dog.Scans()
	}
	m.FaultEventsApplied = net.FaultEventsApplied()
	if deg != nil {
		m.ShedMessages = shed
		m.DegradeTransitions = deg.Transitions()
		m.BreachedWindows = deg.BreachedWindows()
		m.DegradeFinal = deg.State().String()
	}
	if sampler != nil {
		m.Series = sampler.Series()
	}
	if err := phases.CheckSum(); err != nil && abortErr == nil {
		abortErr = err
	}
	return m, net, abortErr
}
