package sim

import (
	"crnet/internal/router"
	"crnet/internal/stats"
)

// E20SelectionPolicy ablates the router's adaptive output-selection
// policy — the "which free minimal channel do I take" decision the paper
// leaves to the implementation. Rotating (deterministic spreading),
// first-candidate (no spreading) and least-loaded (credit-aware) are
// compared under uniform and transpose traffic.
func E20SelectionPolicy(s Scale) *stats.Table {
	t := stats.NewTable("E20: adaptive output-selection policy ablation",
		"policy", "pattern", "offered(frac)", "thpt(flits/node/cyc)", "avg_latency", "kills/msg")
	policies := []router.Selection{router.SelectRotating, router.SelectFirst, router.SelectLeastLoaded}
	var pts []Point
	for _, pol := range policies {
		for _, pattern := range []string{"uniform", "transpose"} {
			for _, load := range []float64{0.3, 0.6} {
				net := s.crNet()
				net.Select = pol
				pts = append(pts, Point{Series: pol.String(), Pattern: pattern, Load: load, MsgLen: s.MsgLen, Net: net})
			}
		}
	}
	for i, m := range s.sweep("E20", pts) {
		t.AddRow(pts[i].Series, pts[i].Pattern, pts[i].Load, m.Throughput, m.AvgLatency, m.KillsPerMsg)
	}
	return t
}

// E21PaddingMargin shows FCR's padding bound is load-bearing: shrinking
// the pad below slack + FKILL-latency lets the source finish injecting
// before a fault's FKILL can arrive: the backward tear-down dies at a
// hop the tail already released (a stale signal) and the message is
// silently lost — the source believes it delivered, the receiver
// discarded it. With the designed padding (adjust >= 0) no message is
// ever lost.
func E21PaddingMargin(s Scale) *stats.Table {
	t := stats.NewTable("E21: FCR padding-margin ablation (fault rate 2e-3, load 0.3)",
		"pad_adjust", "lost_msgs", "stale_signals", "fkills/msg", "avg_latency")
	const load = 0.3
	for _, adjust := range []int{-100, -24, -12, -6, 0, 8} {
		net := s.fcrNet()
		net.TransientRate = 2e-3
		net.PadAdjust = adjust
		m := s.run(net, "uniform", load, s.MsgLen)
		// A lost message is one the source completed but the receiver
		// rejected: it shows up as a censored window message after the
		// drain. The FKILL that should have caught it dies mid-path at a
		// hop the tail already released (a stale backward signal).
		t.AddRow(adjust, m.Censored, m.StaleSignals, m.FKillsPerMsg, m.AvgLatency)
	}
	return t
}
