package sim

import (
	"strings"
	"testing"

	"crnet/internal/core"
	"crnet/internal/invariant"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/workload"
)

// bisectServiceCfg is a small, busy fabric for bisection tests: FCR
// with misrouting on a 4x2 torus, looping uniform traffic.
func bisectServiceCfg() ServiceConfig {
	return ServiceConfig{
		Net: network.Config{
			Topo:          topology.NewTorus(4, 2),
			Alg:           routing.MinimalAdaptive{},
			Protocol:      core.FCR,
			Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			MisrouteAfter: 2,
			MaxDetours:    4,
			Seed:          5,
		},
		Trace: workload.GenUniform(workload.TraceSpec{
			Nodes: 16, Cycles: 500, Rate: 0.02, MsgLen: 6, Seed: 23,
		}),
		Loop: true,
	}
}

// TestBisectFindsPlantedViolation plants a violation by shrinking the
// watchdog's hop budget to less than a single minimal route, so the
// first worm to claim a second channel convicts as livelock, and
// verifies the bisection pins the exact transition cycle: a fresh
// replay audits clean at FirstBad-1 and dirty at FirstBad.
func TestBisectFindsPlantedViolation(t *testing.T) {
	wcfg := invariant.Config{HopBudget: 1, CheckEvery: 64}
	rep, err := Bisect(BisectConfig{
		Service:         bisectServiceCfg(),
		Watchdog:        wcfg,
		Horizon:         4000,
		CheckpointEvery: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("planted violation not detected")
	}
	if rep.Violation.Kind != invariant.Livelock {
		t.Fatalf("violation kind = %v, want livelock", rep.Violation.Kind)
	}
	if rep.FirstBad <= 0 || rep.FirstBad > rep.Violation.Cycle {
		t.Fatalf("FirstBad = %d, detection cycle %d", rep.FirstBad, rep.Violation.Cycle)
	}
	if rep.Probes == 0 {
		t.Fatal("bisection made no probes")
	}

	// Independent verification from a fresh, monitor-free replay.
	auditAt := func(c int64) error {
		svc, err := NewService(bisectServiceCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Step(c); err != nil {
			t.Fatal(err)
		}
		return invariant.New(wcfg).Audit(svc.Network())
	}
	if err := auditAt(rep.FirstBad - 1); err != nil {
		t.Fatalf("audit at FirstBad-1 (%d) not clean: %v", rep.FirstBad-1, err)
	}
	if auditAt(rep.FirstBad) == nil {
		t.Fatalf("audit at FirstBad (%d) clean; bisection mislocated the transition", rep.FirstBad)
	}

	line := rep.String()
	if !strings.Contains(line, "livelock") || !strings.Contains(line, "first") {
		t.Fatalf("forensic line missing substance: %q", line)
	}
}

// TestBisectCleanRun: with the watchdog at honest defaults the same
// scenario audits clean for the whole horizon.
func TestBisectCleanRun(t *testing.T) {
	rep, err := Bisect(BisectConfig{
		Service:         bisectServiceCfg(),
		Watchdog:        invariant.Config{},
		Horizon:         2000,
		CheckpointEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("clean scenario reported a violation: %v", rep.Violation)
	}
	if rep.Checkpoints < 4 {
		t.Fatalf("checkpoints = %d, want the full grid", rep.Checkpoints)
	}
	if !strings.Contains(rep.String(), "clean") {
		t.Fatalf("clean report line: %q", rep.String())
	}
}

// TestBisectRejectsBadConfig: a zero horizon is a caller bug.
func TestBisectRejectsBadConfig(t *testing.T) {
	if _, err := Bisect(BisectConfig{Service: bisectServiceCfg()}); err == nil {
		t.Fatal("zero horizon accepted")
	}
}
