package sim

import (
	"bytes"
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/workload"
)

// svcCfg builds the service-test configuration: FCR on a 4x4 torus with
// transient corruption and a fault timeline, fed by a looping hotspot
// trace, sampler on. Each call constructs a fresh fault Schedule (the
// cursor is mutable run state — never share one between networks).
func svcCfg() ServiceConfig {
	return ServiceConfig{
		Net: network.Config{
			Topo:          topology.NewTorus(4, 2),
			Alg:           routing.MinimalAdaptive{},
			Protocol:      core.FCR,
			Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			TransientRate: 5e-3,
			Seed:          21,
			Faults: faults.NewSchedule([]faults.Event{
				{Cycle: 150, Link: faults.LinkID{Node: 1, Port: 0}},
				{Cycle: 450, Link: faults.LinkID{Node: 1, Port: 0}, Up: true},
			}),
			Check: true,
		},
		Trace: workload.GenHotspot(workload.TraceSpec{
			Nodes: 16, Cycles: 600, Rate: 0.04, MsgLen: 8, Seed: 5,
			Hotspot: workload.HotspotSpec{Fraction: 0.5, HotNodes: 2},
		}),
		Loop:        true,
		SampleEvery: 50,
		SampleCap:   128,
	}
}

// TestServiceResumeByteIdentical is the service-level kill-resume
// guarantee: Save at cycle K, Restore into a freshly built service,
// and the continuation — delivery stream hash, statistics, sampler
// ring, full state bytes — matches an unbroken run exactly.
func TestServiceResumeByteIdentical(t *testing.T) {
	const K, M = 400, 1200

	ref, err := NewService(svcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Step(M); err != nil {
		t.Fatal(err)
	}

	first, err := NewService(svcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Step(K); err != nil {
		t.Fatal(err)
	}
	ckpt := first.Save()

	resumed, err := NewService(svcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if resumed.Cycle() != K {
		t.Fatalf("restored cycle = %d, want %d", resumed.Cycle(), K)
	}
	if err := resumed.Step(M - K); err != nil {
		t.Fatal(err)
	}

	refStatus, resStatus := ref.Status(), resumed.Status()
	if refStatus.Delivered == 0 {
		t.Fatal("reference service delivered nothing; test is vacuous")
	}
	if ref.Network().TransientFaults() == 0 {
		t.Fatal("no transient corruption occurred; test is vacuous")
	}
	if refStatus != resStatus {
		t.Fatalf("status diverged:\n  unbroken: %+v\n  resumed:  %+v", refStatus, resStatus)
	}
	if ref.StreamHash() != resumed.StreamHash() {
		t.Fatalf("stream hash diverged: %016x != %016x", resumed.StreamHash(), ref.StreamHash())
	}
	if !bytes.Equal(ref.Save(), resumed.Save()) {
		t.Fatal("final service states differ after resume")
	}

	refSeries, resSeries := ref.Series(), resumed.Series()
	if refSeries == nil || resSeries == nil {
		t.Fatal("sampler series missing")
	}
	if len(refSeries.Samples) == 0 {
		t.Fatal("sampler took no samples; test is vacuous")
	}
	if len(resSeries.Samples) != len(refSeries.Samples) {
		t.Fatalf("sample counts differ: %d != %d", len(resSeries.Samples), len(refSeries.Samples))
	}
}

// TestServiceRestoreRejectsMismatch: a payload restores only into a
// service configured identically to its saver.
func TestServiceRestoreRejectsMismatch(t *testing.T) {
	donor, err := NewService(svcCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.Step(200); err != nil {
		t.Fatal(err)
	}
	ckpt := donor.Save()

	// Different trace: replayer fingerprint gate.
	cfg := svcCfg()
	cfg.Trace = workload.GenUniform(workload.TraceSpec{Nodes: 16, Cycles: 600, Rate: 0.04, MsgLen: 8, Seed: 5})
	other, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(ckpt); err == nil {
		t.Fatal("restore accepted under a different trace")
	}

	// Sampler off in the target: presence gate.
	cfg = svcCfg()
	cfg.SampleEvery = 0
	plain, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(ckpt); err == nil {
		t.Fatal("restore accepted without a sampler")
	}

	// Unknown payload version.
	target, err := NewService(svcCfg())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), ckpt...)
	bad[0] = 99
	if err := target.Restore(bad); err == nil {
		t.Fatal("restore accepted an unknown payload version")
	}
}

// TestServiceDoneDrains: a non-looping trace runs dry, the network
// drains, and Done flips once nothing is queued or in flight.
func TestServiceDoneDrains(t *testing.T) {
	cfg := svcCfg()
	cfg.Trace = workload.GenBursty(workload.TraceSpec{Nodes: 16, Cycles: 300, Rate: 0.03, MsgLen: 6, Seed: 9})
	cfg.Loop = false
	cfg.Net.TransientRate = 0 // corrupted worms retry forever under load 0; keep the drain finite
	cfg.Net.Faults = nil
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && !s.Done(); i++ {
		if err := s.Step(100); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatal("service never drained")
	}
	st := s.Status()
	if st.Submitted == 0 || st.Delivered != st.Submitted {
		t.Fatalf("delivered %d of %d submitted", st.Delivered, st.Submitted)
	}
}
