package sim

import (
	"bytes"
	"strings"
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/network"
	"crnet/internal/routing"
	snap "crnet/internal/snapshot"
	"crnet/internal/topology"
	"crnet/internal/workload"
)

// degCfg is a tight controller for unit tests: 100-cycle windows, enter
// after 1 breach, exit after 2 clean windows.
func degCfg() DegradeConfig {
	return DegradeConfig{
		LatencySLO: 50,
		Window:     100,
		EnterAfter: 1,
		ExitAfter:  2,
	}
}

// breachWindow feeds a window's worth of over-SLO deliveries and closes
// it at the given boundary cycle.
func breachWindow(d *Degrader, boundary int64) {
	for i := 0; i < 20; i++ {
		d.Observe(500)
	}
	d.EndCycle(boundary, 0, true)
}

func cleanWindow(d *Degrader, boundary int64) {
	for i := 0; i < 20; i++ {
		d.Observe(5)
	}
	d.EndCycle(boundary, 0, true)
}

func TestDegraderLadder(t *testing.T) {
	d := NewDegrader(degCfg())
	if d.State() != DegradeHealthy {
		t.Fatalf("fresh controller state = %v", d.State())
	}

	breachWindow(d, 100)
	if d.State() != DegradeDegraded {
		t.Fatalf("after 1 breached window: %v", d.State())
	}
	breachWindow(d, 200)
	if d.State() != DegradeShedding {
		t.Fatalf("after 2 breached windows: %v", d.State())
	}
	// Further breaches cannot go past shedding.
	breachWindow(d, 300)
	if d.State() != DegradeShedding {
		t.Fatalf("breach past shedding: %v", d.State())
	}

	// Hysteresis on the way back: one clean window is not enough.
	cleanWindow(d, 400)
	if d.State() != DegradeShedding {
		t.Fatalf("one clean window already stepped up: %v", d.State())
	}
	cleanWindow(d, 500)
	if d.State() != DegradeDegraded {
		t.Fatalf("two clean windows did not step up: %v", d.State())
	}
	cleanWindow(d, 600)
	cleanWindow(d, 700)
	if d.State() != DegradeHealthy {
		t.Fatalf("controller did not recover: %v", d.State())
	}
	if d.Transitions() != 4 {
		t.Fatalf("transitions = %d, want 4", d.Transitions())
	}
	if d.BreachedWindows() != 3 {
		t.Fatalf("breached windows = %d, want 3", d.BreachedWindows())
	}
}

func TestDegraderBreachSignals(t *testing.T) {
	// Unhealthy latch breaches regardless of latency.
	d := NewDegrader(degCfg())
	d.EndCycle(100, 0, false)
	if d.BreachedWindows() != 1 {
		t.Fatal("health latch did not breach the window")
	}

	// Fail budget.
	cfg := degCfg()
	cfg.FailBudget = 3
	d = NewDegrader(cfg)
	d.EndCycle(100, 2, true) // 2 fails < budget
	if d.BreachedWindows() != 0 {
		t.Fatal("under-budget fault density breached")
	}
	d.EndCycle(200, 5, true) // 3 more fails in this window
	if d.BreachedWindows() != 1 {
		t.Fatal("over-budget fault density did not breach")
	}

	// Admitted-but-zero-deliveries stall.
	d = NewDegrader(degCfg())
	d.Admit()
	d.EndCycle(100, 0, true)
	if d.BreachedWindows() != 1 {
		t.Fatal("stalled window (admissions, no deliveries) did not breach")
	}

	// Empty window is clean.
	d = NewDegrader(degCfg())
	d.EndCycle(100, 0, true)
	if d.BreachedWindows() != 0 {
		t.Fatal("idle window breached")
	}
}

func TestDegraderSheddingRates(t *testing.T) {
	d := NewDegrader(degCfg())
	breachWindow(d, 100)
	breachWindow(d, 200) // now shedding at the default 400 permille
	var admitted int64
	for i := 0; i < 1000; i++ {
		if d.Admit() {
			admitted++
		}
	}
	if admitted != 400 {
		t.Fatalf("shedding state admitted %d/1000, want 400", admitted)
	}
	if d.Shed() != 600 {
		t.Fatalf("Shed() = %d, want 600", d.Shed())
	}
}

func TestDegraderStateRoundTrip(t *testing.T) {
	d := NewDegrader(degCfg())
	breachWindow(d, 100)
	for i := 0; i < 137; i++ {
		d.Admit()
	}
	d.Observe(30)
	var e snap.Encoder
	d.SaveState(&e)

	r := NewDegrader(degCfg())
	dec := snap.NewDecoder(e.Bytes())
	if err := r.LoadState(dec); err != nil {
		t.Fatal(err)
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	if r.State() != d.State() || r.Shed() != d.Shed() || r.Admitted() != d.Admitted() {
		t.Fatal("restored controller counters diverged")
	}
	// Same admission decisions and window behavior afterwards.
	for i := 0; i < 500; i++ {
		if d.Admit() != r.Admit() {
			t.Fatalf("admission diverged at offer %d", i)
		}
	}
	d.EndCycle(200, 0, true)
	r.EndCycle(200, 0, true)
	if d.State() != r.State() {
		t.Fatal("window scoring diverged after restore")
	}
}

// degradeServiceCfg: a service under load-coupled chaos with the
// controller installed, for the resume pin and the chaos soak.
func degradeServiceCfg() ServiceConfig {
	cfg := svcCfg()
	cfg.Net.Hazard = &faults.HazardSpec{
		LinkLambda0: 2e-5,
		Alpha:       4,
		LinkMTTR:    150,
		EvalEvery:   32,
		Seed:        31,
	}
	cfg.Degrade = &DegradeConfig{
		LatencySLO: 200,
		Window:     128,
		FailBudget: 6,
	}
	return cfg
}

// TestServiceResumeWithDegrader extends the service resume pin to the
// degradation controller and the hazard process together: checkpoint
// mid-run, restore, and the continuation (admission decisions, window
// scoring, hazard draws) is byte-identical. The name matches the
// `make snapshot-pin` filter.
func TestServiceResumeWithDegrader(t *testing.T) {
	const K, M = 700, 2500

	ref, err := NewService(degradeServiceCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Step(M); err != nil {
		t.Fatal(err)
	}
	fails, _ := ref.Network().HazardCounts()
	if fails == 0 {
		t.Fatal("hazard inert; test is vacuous")
	}

	first, err := NewService(degradeServiceCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Step(K); err != nil {
		t.Fatal(err)
	}
	ckpt := first.Save()

	resumed, err := NewService(degradeServiceCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Step(M - K); err != nil {
		t.Fatal(err)
	}

	if ref.Status() != resumed.Status() {
		t.Fatalf("status diverged:\n  unbroken: %+v\n  resumed:  %+v", ref.Status(), resumed.Status())
	}
	if !bytes.Equal(ref.Save(), resumed.Save()) {
		t.Fatal("final service states differ after degrader resume")
	}
}

// TestServiceDegraderPresencePinned: a checkpoint taken with a
// controller must not restore into a service without one (and vice
// versa).
func TestServiceDegraderPresencePinned(t *testing.T) {
	withDeg, err := NewService(degradeServiceCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := withDeg.Step(100); err != nil {
		t.Fatal(err)
	}
	ckpt := withDeg.Save()

	plainCfg := degradeServiceCfg()
	plainCfg.Degrade = nil
	plain, err := NewService(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(ckpt); err == nil {
		t.Fatal("degrader checkpoint restored into a controller-less service")
	}
}

// TestDegradeControllerRecovers drives a run through a failure storm
// and verifies the full arc — healthy, degraded under stress, healthy
// again once the storm passes — on a real network. Part of the
// `make chaos` soak.
func TestDegradeControllerRecovers(t *testing.T) {
	// A storm of link failures between cycles 1000 and 2000 on the
	// scheduled timeline; no hazard, so the post-storm fabric is clean.
	var evs []faults.Event
	for i := 0; i < 12; i++ {
		link := faults.LinkID{Node: i, Port: i % 4}
		evs = append(evs, faults.Event{Cycle: int64(1000 + 40*i), Link: link})
		evs = append(evs, faults.Event{Cycle: int64(2000 + 10*i), Link: link, Up: true})
	}
	cfg := ServiceConfig{
		Net: network.Config{
			Topo:          topology.NewTorus(4, 2),
			Alg:           routing.MinimalAdaptive{},
			Protocol:      core.FCR,
			Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			MisrouteAfter: 2,
			MaxDetours:    4,
			Seed:          3,
			Faults:        faults.NewSchedule(evs),
		},
		Trace: workload.GenUniform(workload.TraceSpec{
			Nodes: 16, Cycles: 1000, Rate: 0.02, MsgLen: 6, Seed: 17,
		}),
		Loop: true,
		Degrade: &DegradeConfig{
			LatencySLO: 300,
			Window:     128,
			FailBudget: 2,
			ExitAfter:  2,
		},
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sawStress := false
	for c := 0; c < 8000; c += 100 {
		if err := svc.Step(100); err != nil {
			t.Fatal(err)
		}
		if svc.Status().Degrade != "healthy" {
			sawStress = true
		}
	}
	st := svc.Status()
	if !sawStress {
		t.Fatal("controller never left healthy during the failure storm")
	}
	if st.Degrade != "healthy" {
		t.Fatalf("controller did not recover after the storm: %s (breached=%d)",
			st.Degrade, st.BreachedWindows)
	}
	if st.Shed == 0 {
		t.Fatal("controller degraded but shed nothing")
	}
	if st.Delivered == 0 {
		t.Fatal("nothing delivered; test is vacuous")
	}
}

// TestDegraderLoadStateRejectsCorruptSnapshots is the regression table
// for the controller codec's validation: an out-of-range state byte, a
// gate section violating the throttle invariants, a window histogram
// saved under a different SLO, and damaged payloads must all be refused
// before the controller is mutated.
func TestDegraderLoadStateRejectsCorruptSnapshots(t *testing.T) {
	save := func(d *Degrader) []byte {
		var e snap.Encoder
		d.SaveState(&e)
		return e.Bytes()
	}
	build := func() *Degrader {
		d := NewDegrader(degCfg())
		breachWindow(d, 100)
		for i := 0; i < 137; i++ {
			d.Admit()
		}
		return d
	}
	// Sanity: an unmodified snapshot restores cleanly.
	if err := NewDegrader(degCfg()).LoadState(snap.NewDecoder(save(build()))); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	cases := []struct {
		name, wantSub string
		build         func(t *testing.T) []byte
	}{
		{"state-out-of-range", "degrade state", func(t *testing.T) []byte {
			raw := save(build())
			raw[0] = 9 // the state byte leads the payload; 9 is past shedding
			return raw
		}},
		{"throttle-out-of-range", "throttle state", func(t *testing.T) []byte {
			var e snap.Encoder
			e.U8(uint8(DegradeHealthy))
			e.Varint(5) // admit 5 of every 2: violates num <= den
			e.Varint(2)
			e.Varint(0)
			return e.Bytes()
		}},
		{"window-histogram-shape", "histogram shape", func(t *testing.T) []byte {
			// A 6400-cycle SLO widens the latency buckets, so the window
			// histogram's shape no longer matches the target controller's.
			cfg := degCfg()
			cfg.LatencySLO = 6400
			return save(NewDegrader(cfg))
		}},
		{"truncated", "truncated", func(t *testing.T) []byte {
			raw := save(build())
			return raw[:len(raw)-1]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := NewDegrader(degCfg()).LoadState(snap.NewDecoder(tc.build(t)))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
