package sim

import (
	"fmt"
	"math"

	"crnet/internal/faults"
	"crnet/internal/harness"
	"crnet/internal/invariant"
	"crnet/internal/stats"
)

// Load-dependent reliability experiments (ROADMAP item 5): the hazard
// process couples failure intensity to live utilization, so pushing
// offered load now pushes the fault rate too. E29 charts the resulting
// availability surface and its knee; E30 soaks the graceful-degradation
// controller against the same storm with the controller off as the
// contrast arm.

// e29Hazard builds the availability-curve hazard: link failures only,
// base intensity low enough that an idle fabric rides out a run nearly
// untouched, with the load coupling supplying the drama.
func (s Scale) e29Hazard(alpha float64) *faults.HazardSpec {
	return &faults.HazardSpec{
		LinkLambda0: 6e-7,
		Alpha:       alpha,
		LinkMTTR:    float64(s.Measure / 8),
		EvalEvery:   64,
		Seed:        harness.PointSeed(s.Seed, 2900),
	}
}

// availabilityOf reduces one run to the served-traffic SLO ratio:
// messages delivered with intact payloads over every message that
// reached a final disposition — delivered, still undelivered at the
// drain bound (censored), shed by the controller, or abandoned by its
// source.
func availabilityOf(m Metrics) float64 {
	total := m.Delivered + m.Censored + m.ShedMessages + m.FailedMessages
	if total <= 0 {
		return 1
	}
	return float64(m.Delivered-m.DeliveredCorrupt) / float64(total)
}

// nines converts an availability ratio into "nines" notation
// (0.999 → 3.0), capped at 9 so a perfect short run prints finitely.
func nines(a float64) float64 {
	if a >= 1 {
		return 9
	}
	if a <= 0 {
		return 0
	}
	n := -math.Log10(1 - a)
	if n > 9 {
		n = 9
	}
	return n
}

// E29AvailabilityCurves sweeps offered load against the hazard coupling
// exponent alpha and reports the availability (nines of
// delivered-intact messages) of FCR with misrouting. With alpha = 0 the
// fault process is load-independent and availability stays flat; as
// alpha grows, load feeds failure intensity and the curve develops a
// knee — the operating point past which kill-retry plus repair can no
// longer hold the SLO. The final arm re-runs the steepest coupling with
// node failures switched on as well: a failed node silences a whole
// router (every incident link at once) instead of one channel, so the
// same event budget buys a deeper availability hit. The knee column
// marks the first load in each series whose availability falls below
// three nines.
func E29AvailabilityCurves(s Scale) *stats.Table {
	t := stats.NewTable("E29: availability vs offered load under load-coupled failures (FCR+misroute, link MTTR=measure/8)",
		"series", "offered", "fault_events", "delivered", "censored", "failed", "availability", "nines", "knee")
	// The baseline (alpha=0) holds full availability until the fabric's
	// own congestion knee; raising the coupling exponent pulls the knee
	// to lower offered loads and deepens the collapse past it. The node
	// arm couples router failures to load on top of the link process.
	nodeHazard := s.e29Hazard(8)
	nodeHazard.NodeLambda0 = 2e-7
	nodeHazard.NodeMTTR = float64(s.Measure / 8)
	series := []struct {
		label  string
		hazard *faults.HazardSpec
	}{
		{"alpha=0", s.e29Hazard(0)},
		{"alpha=4", s.e29Hazard(4)},
		{"alpha=8", s.e29Hazard(8)},
		{"alpha=8+node", nodeHazard},
	}
	var pts []Point
	for _, sr := range series {
		net := s.fcrNet()
		net.MisrouteAfter = 2
		net.MaxDetours = 4
		net.Hazard = sr.hazard
		for _, load := range s.Loads {
			pts = append(pts, Point{
				Series: sr.label, Pattern: "uniform",
				Load: load, MsgLen: s.MsgLen, Net: net,
			})
		}
	}
	ms := s.sweep("E29", pts)
	for si, sr := range series {
		kneed := false
		for li, load := range s.Loads {
			m := ms[si*len(s.Loads)+li]
			avail := availabilityOf(m)
			knee := ""
			if !kneed && avail < 0.999 {
				kneed = true
				knee = "<- knee (<3 nines)"
			}
			t.AddRow(sr.label, load, m.FaultEventsApplied, m.Delivered, m.Censored,
				m.FailedMessages, fmt.Sprintf("%.6f", avail), fmt.Sprintf("%.1f", nines(avail)), knee)
		}
	}
	return t
}

// E30DegradationSoak stress-tests the graceful-degradation controller:
// FCR with misrouting under an aggressive load-coupled hazard at high
// offered load, watchdog on, run twice — controller on vs off. The
// controller must keep the run clean (no violations, goodput floor
// held) while visibly shedding; the off arm exists as contrast and is
// expected to carry a larger undelivered backlog and worse tail
// latency. PASS/FAIL rows, like E24: a FAIL fails crbench.
func E30DegradationSoak(s Scale) *stats.Table {
	t := stats.NewTable("E30: degradation soak, controller on vs off (FCR+misroute, load=0.8, alpha=8)",
		"property", "value", "expectation", "pass")
	const load = 0.8
	hazard := &faults.HazardSpec{
		LinkLambda0: 2e-6,
		Alpha:       8,
		LinkMTTR:    float64(s.Measure / 12),
		EvalEvery:   64,
		Seed:        harness.PointSeed(s.Seed, 3000),
	}
	net := s.fcrNet()
	net.MisrouteAfter = 2
	net.MaxDetours = 4
	net.Hazard = hazard

	runArm := func(deg *DegradeConfig, seedIdx int) Metrics {
		m, err := Run(Config{
			Net:           net,
			Pattern:       "uniform",
			Load:          load,
			MsgLen:        s.MsgLen,
			WarmupCycles:  s.Warmup,
			MeasureCycles: s.Measure,
			Seed:          harness.PointSeed(s.Seed, seedIdx),
			Watchdog:      &invariant.Config{},
			Degrade:       deg,
		})
		if err != nil {
			// An aborted arm still reports: the PASS/FAIL rows expose it.
			m.DegradeFinal = "aborted: " + err.Error()
		}
		return m
	}
	// Both arms share one traffic seed so they face the same offered
	// stream; the controller is the only difference.
	on := runArm(&DegradeConfig{
		LatencySLO: 8 * int64(s.MsgLen) * 4,
		Window:     256,
		FailBudget: 4,
	}, 3001)
	off := runArm(nil, 3001)

	check := func(name string, value interface{}, ok bool, expectation string) {
		pass := "PASS"
		if !ok {
			pass = "FAIL"
		}
		t.AddRow(name, fmt.Sprint(value), expectation, pass)
	}
	check("on: invariant violations", on.Violations, on.Violations == 0, "0")
	check("on: watchdog scans", on.WatchdogScans, on.WatchdogScans > 0, "> 0 (watchdog not vacuous)")
	check("on: fault events", on.FaultEventsApplied, on.FaultEventsApplied > 0, "> 0 (hazard not vacuous)")
	check("on: controller engaged (shed)", on.ShedMessages, on.ShedMessages > 0, "> 0")
	check("on: delivered messages", on.Delivered, on.Delivered > 0, "> 0")
	check("on: corrupt deliveries", on.DeliveredCorrupt, on.DeliveredCorrupt == 0, "0")
	// Goodput floor: shedding must not cost delivered throughput. Backing
	// offered load off a storm-choked fabric should deliver at least as
	// many messages as stuffing it full does — that is the whole case for
	// graceful degradation.
	check("on: goodput floor", on.Delivered, on.Delivered >= off.Delivered,
		fmt.Sprintf(">= %d (controller-off delivered)", off.Delivered))
	check("off: fault events", off.FaultEventsApplied, off.FaultEventsApplied > 0, "> 0 (contrast not vacuous)")
	// The contrast: without shedding the same storm leaves a larger
	// undelivered backlog (censored + abandoned).
	onBacklog := on.Censored + on.FailedMessages
	offBacklog := off.Censored + off.FailedMessages
	check("off: backlog exceeds on-arm", fmt.Sprintf("off=%d on=%d", offBacklog, onBacklog),
		offBacklog > onBacklog, "controller-off backlog > controller-on")
	check("availability (on vs off)",
		fmt.Sprintf("on=%.4f off=%.4f", availabilityOf(on), availabilityOf(off)),
		availabilityOf(on) >= availabilityOf(off), "on >= off")
	check("on: final controller state", on.DegradeFinal, on.DegradeFinal != "", "reported")
	return t
}
