package sim

import (
	"fmt"
	"io"
	"time"

	"crnet/internal/core"
	"crnet/internal/harness"
	"crnet/internal/network"
	"crnet/internal/router"
	"crnet/internal/routing"
	"crnet/internal/stats"
	"crnet/internal/topology"
)

// Scale sets the size/duration knobs shared by every experiment, so the
// full paper-scale runs and quick CI-sized runs use identical drivers.
type Scale struct {
	// K is the torus radix; experiments run on a KxK torus.
	K int
	// MsgLen is the default message length in flits.
	MsgLen int
	// Warmup and Measure are the window lengths in cycles.
	Warmup  int64
	Measure int64
	// Loads are the offered-load points (fraction of capacity) swept by
	// the latency/throughput experiments.
	Loads []float64
	// Seed drives all stochastic processes.
	Seed uint64

	// Parallel bounds the harness worker pool used by grid-based
	// experiment drivers: 0 means runtime.GOMAXPROCS(0), 1 runs
	// serially. Results are byte-identical for every value.
	Parallel int
	// Shards selects the sharded cycle kernel for every sweep point
	// whose network config does not choose for itself: 0 or 1 runs the
	// serial kernel, N > 1 splits each simulated network across N
	// workers (see network.Config.Shards). Like Parallel, results are
	// byte-identical for every value — the sharded kernel is pinned
	// against the serial one — so Shards only changes wall-clock.
	Shards int
	// BufOrg overrides the router buffer organization for every sweep
	// point whose network config keeps the static default (points that
	// pick an organization themselves — the E31 axis — are left alone).
	// Unlike Shards this DOES change results: it is the crbench -buforg
	// axis for re-running experiments under DAMQ or credit-shared
	// buffers.
	BufOrg router.BufferOrg
	// Progress, when non-nil, receives per-sweep progress lines
	// (points done/total, ETA) — normally os.Stderr so stdout stays
	// comparable between runs.
	Progress io.Writer
	// Collect, when non-nil, receives each sweep's per-point wall-clock
	// (milliseconds, grid order) for JSON artifacts.
	Collect func(label string, pointMS []float64)
	// PointTimeout bounds one sweep point's wall-clock; 0 means
	// unbounded. A point that exceeds it is cancelled and recorded as a
	// sweep error; the rest of the sweep completes.
	PointTimeout time.Duration
	// CollectErrors, when non-nil, receives each sweep's failed points
	// (panics, watchdog violations, timeouts) for the JSON artifact's
	// errors section. Only called for sweeps that had failures.
	CollectErrors func(label string, errs []harness.PointError)
	// CollectSeries, when non-nil, receives the sampled metric
	// time-series of points that ran with the per-cycle sampler enabled
	// (Point.SampleEvery > 0), in grid order, for the JSON artifact's
	// time_series section and -timeseries CSV export. Only called for
	// sweeps that sampled.
	CollectSeries func(label string, series []harness.PointSeries)
}

// Quick is the CI-sized scale: an 8x8 torus and short windows. Shapes
// (who wins, where curves diverge) match Full; absolute numbers are
// noisier.
var Quick = Scale{
	K:       8,
	MsgLen:  16,
	Warmup:  1500,
	Measure: 6000,
	Loads:   []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9},
	Seed:    1,
}

// Full is the paper-scale setting: a 16x16 torus (256 nodes) as in the
// paper's simulations, with long measurement windows.
var Full = Scale{
	K:       16,
	MsgLen:  16,
	Warmup:  5000,
	Measure: 20000,
	Loads:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
	Seed:    1,
}

func (s Scale) torus() *topology.Grid { return topology.NewTorus(s.K, 2) }

// crNet returns the canonical CR network: fully adaptive minimal
// routing, no virtual channels, 2-flit buffers, exponential backoff.
func (s Scale) crNet() network.Config {
	return network.Config{
		Topo:     s.torus(),
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		VCs:      1,
		BufDepth: 2,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Seed:     s.Seed,
	}
}

// fcrNet returns the canonical FCR network.
func (s Scale) fcrNet() network.Config {
	c := s.crNet()
	c.Protocol = core.FCR
	return c
}

// dorNet returns the paper's DOR baseline: dimension-order routing with
// the 2-VC dateline discipline and the given FIFO depth per VC.
func (s Scale) dorNet(lanes, bufDepth int) network.Config {
	return network.Config{
		Topo:     s.torus(),
		Alg:      routing.DOR{Lanes: lanes},
		Protocol: core.Plain,
		BufDepth: bufDepth,
		Seed:     s.Seed,
	}
}

func (s Scale) run(net network.Config, pattern string, load float64, msgLen int) Metrics {
	if net.BufOrg == router.OrgStaticFIFO {
		net.BufOrg = s.BufOrg
	}
	m, err := Run(Config{
		Net:           net,
		Pattern:       pattern,
		Load:          load,
		MsgLen:        msgLen,
		WarmupCycles:  s.Warmup,
		MeasureCycles: s.Measure,
		Seed:          s.Seed + 77,
	})
	if err != nil {
		panic(err) // experiment configurations are static; errors are bugs
	}
	return m
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	// Paper names the table/figure being reproduced.
	Paper string
	Run   func(Scale) *stats.Table
}

// Experiments lists every reproduced figure/table, in paper order.
var Experiments = []Experiment{
	{"E1", "CR latency and throughput vs offered load", "Sec. 6.1 base curves", E1LatencyVsLoad},
	{"E2", "CR kill/retry rates vs offered load", "Sec. 6.1 recovery cost", E2KillRate},
	{"E3", "Static vs dynamic retransmission gaps", "Fig. 11", E3RetransmissionGap},
	{"E4", "Potential deadlock situations via Duato escape usage", "Sec. 6 PDS estimate", E4PDSEstimate},
	{"E5", "CR vs DOR across buffer depths", "Fig. 14(a),(b)", E5BufferDepth},
	{"E6", "CR vs DOR across virtual channels (equal buffer budget)", "Fig. 14(c),(d)", E6VirtualChannels},
	{"E7", "Interface bandwidth: injection/ejection channels", "Fig. 14(e),(f)", E7InterfaceBandwidth},
	{"E8", "FCR under transient fault rates", "Sec. 6.2", E8TransientFaults},
	{"E9", "FCR under permanent link faults", "Sec. 6.2", E9PermanentFaults},
	{"E10", "Timeout sensitivity and false kills", "Sec. 7 timeout discussion", E10TimeoutSensitivity},
	{"E11", "Hardware complexity model", "Sec. 5, Figs. 7-8", E11HardwareCost},
	{"E12", "Traffic patterns: adaptivity payoff", "Sec. 6.1 non-uniform claim", E12TrafficPatterns},
	{"E13", "Padding overhead vs message length", "Sec. 7 overhead discussion", E13PaddingOverhead},
	{"E14", "Protocol properties under stress", "Sec. 3-4 claims", E14Properties},
	{"E15", "Source-based vs path-wide timeout schemes", "Sec. 7/8 ablation", E15TimeoutSchemes},
	{"E16", "Turn-model (west-first) vs DOR vs CR on the mesh", "Related work [19]", E16TurnModel},
	{"E17", "Latency distribution tails", "Sec. 7 variance discussion [32]", E17LatencyDistribution},
	{"E18", "Bimodal message-length traffic", "Companion study [32]", E18BimodalTraffic},
	{"E19", "Application workloads: stencil, all-to-all, RPC", "Intro motivation (software layers)", E19Applications},
	{"E20", "Adaptive output-selection policy ablation", "Implementation choice (Sec. 5)", E20SelectionPolicy},
	{"E21", "FCR padding-margin ablation (bound is load-bearing)", "Sec. 4 padding rule", E21PaddingMargin},
	{"E22", "Bursty (Gilbert-Elliott) vs i.i.d. corruption at equal rate", "Sec. 6.2 extension", E22BurstyFaults},
	{"E23", "Fail-then-repair: degradation and recovery", "Sec. 6.2 extension", E23FailRepair},
	{"E24", "Chaos soak with invariant watchdog", "Sec. 3-4 claims under chaos", E24ChaosSoak},
	{"E25", "Latency decomposition: queue/retry/flight/drain phases", "Sec. 6.1 latency anatomy", E25LatencyDecomposition},
	{"E26", "Buffer occupancy time-series around the saturation knee", "Sec. 6.1 congestion dynamics", E26OccupancySeries},
	{"E27", "Trace-driven workload replay latency", "Service extension (Sec. 6.1 workloads)", E27TraceReplay},
	{"E28", "Kill-resume equivalence: checkpoint/restore vs unbroken run", "Checkpoint subsystem validation", E28KillResume},
	{"E29", "Availability vs load under load-coupled failures", "Sec. 6.2 extension (reliability SLO)", E29AvailabilityCurves},
	{"E30", "Degradation soak: controller on vs off", "Sec. 6.2 extension (graceful degradation)", E30DegradationSoak},
	{"E31", "Buffer organizations: static FIFO vs DAMQ vs credit-shared", "Sec. 5 buffer design extension", E31BufferOrgs},
	{"E32", "Analytical latency bound vs observed residence per organization", "Sec. 4 analysis extension", E32LatencyBound},
}

// ChaosExperiments lists the chaos/robustness subset selected by
// crbench's -chaos flag.
var ChaosExperiments = []string{"E22", "E23", "E24", "E29", "E30"}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// addLoadRow is the common row shape for latency/throughput sweeps.
func addLoadRow(t *stats.Table, scheme string, load float64, m Metrics) {
	sat := ""
	if m.Saturated() {
		sat = "saturated"
	}
	t.AddRow(scheme, load, m.Throughput, m.AvgLatency, m.P95Latency, sat)
}

func loadColumns() []string {
	return []string{"scheme", "offered(frac)", "thpt(flits/node/cyc)", "avg_latency", "p95", "note"}
}

// E1LatencyVsLoad reproduces the paper's base CR performance curves:
// average latency and accepted throughput against offered load, uniform
// traffic, 16-flit messages on the torus.
func E1LatencyVsLoad(s Scale) *stats.Table {
	t := stats.NewTable("E1: CR latency/throughput vs offered load ("+s.torus().Name()+")", loadColumns()...)
	pts := s.loadGrid("CR", "uniform", s.crNet())
	for i, m := range s.sweep("E1", pts) {
		addLoadRow(t, pts[i].Series, pts[i].Load, m)
	}
	return t
}

// E2KillRate reports the deadlock-recovery cost: kills and retries per
// delivered message, and the padding overhead, across load.
func E2KillRate(s Scale) *stats.Table {
	t := stats.NewTable("E2: CR kill/retry behavior vs load",
		"offered(frac)", "kills/msg", "retries/msg", "pad_overhead", "avg_latency")
	for _, load := range s.Loads {
		m := s.run(s.crNet(), "uniform", load, s.MsgLen)
		t.AddRow(load, m.KillsPerMsg, m.RetriesPerMsg, m.PadOverhead, m.AvgLatency)
	}
	return t
}

// E3RetransmissionGap reproduces Fig. 11: static retransmission gaps of
// several sizes against the dynamic (exponential backoff) scheme, with
// the kill timeout fixed at 32 cycles as in the paper.
func E3RetransmissionGap(s Scale) *stats.Table {
	t := stats.NewTable("E3 (Fig. 11): retransmission gap schemes, timeout=32",
		"scheme", "offered(frac)", "thpt(flits/node/cyc)", "avg_latency", "kills/msg")
	schemes := []struct {
		name string
		b    core.Backoff
	}{
		{"static-8", core.Backoff{Kind: core.BackoffStatic, Gap: 8}},
		{"static-16", core.Backoff{Kind: core.BackoffStatic, Gap: 16}},
		{"static-32", core.Backoff{Kind: core.BackoffStatic, Gap: 32}},
		{"static-64", core.Backoff{Kind: core.BackoffStatic, Gap: 64}},
		{"static-128", core.Backoff{Kind: core.BackoffStatic, Gap: 128}},
		{"dynamic-exp", core.Backoff{Kind: core.BackoffExponential, Gap: 8}},
	}
	var pts []Point
	for _, sc := range schemes {
		net := s.crNet()
		net.Timeout = 32
		net.Backoff = sc.b
		pts = append(pts, s.loadGrid(sc.name, "uniform", net)...)
	}
	for i, m := range s.sweep("E3", pts) {
		t.AddRow(pts[i].Series, pts[i].Load, m.Throughput, m.AvgLatency, m.KillsPerMsg)
	}
	return t
}

// E4PDSEstimate reproduces the paper's potential-deadlock-situation
// estimate: a Duato-routed network counts how often blocked headers are
// forced onto the dimension-order escape channels; CR's kill rate at the
// same load is shown beside it (CR recovers instead of avoiding).
func E4PDSEstimate(s Scale) *stats.Table {
	t := stats.NewTable("E4: potential deadlock situations (Duato escape usage) vs CR kills",
		"offered(frac)", "duato_pds/msg", "cr_kills/msg", "duato_thpt", "cr_thpt")
	duato := network.Config{
		Topo:     s.torus(),
		Alg:      routing.Duato{AdaptiveVCs: 1},
		Protocol: core.Plain,
		BufDepth: 2,
		Seed:     s.Seed,
	}
	for _, load := range s.Loads {
		md := s.run(duato, "uniform", load, s.MsgLen)
		mc := s.run(s.crNet(), "uniform", load, s.MsgLen)
		t.AddRow(load, md.PDSPerMsg, mc.KillsPerMsg, md.Throughput, mc.Throughput)
	}
	return t
}

// E5BufferDepth reproduces Fig. 14(a),(b): DOR with progressively deeper
// FIFO buffers against CR with fixed 2-flit buffers. The paper's
// observation: CR with 2-flit buffers matches a DOR network with far
// deeper FIFOs.
func E5BufferDepth(s Scale) *stats.Table {
	t := stats.NewTable("E5 (Fig. 14a,b): buffer depth, CR depth-2 vs DOR depth sweep", loadColumns()...)
	pts := s.loadGrid("CR(d=2)", "uniform", s.crNet())
	for _, depth := range []int{2, 4, 8, 16} {
		pts = append(pts, s.loadGrid(fmt.Sprintf("DOR(d=%d)", depth), "uniform", s.dorNet(1, depth))...)
	}
	for i, m := range s.sweep("E5", pts) {
		addLoadRow(t, pts[i].Series, pts[i].Load, m)
	}
	return t
}

// E6VirtualChannels reproduces Fig. 14(c),(d): virtual-channel sweeps.
// CR fixes 2-flit buffers per VC and varies VC count; DOR receives an
// equal total buffer budget per port (more lanes, shallower FIFOs).
func E6VirtualChannels(s Scale) *stats.Table {
	t := stats.NewTable("E6 (Fig. 14c,d): virtual channels at equal buffer budget", loadColumns()...)
	const budget = 16 // flits per physical port for DOR
	var pts []Point
	for _, vcs := range []int{1, 2, 4, 8} {
		net := s.crNet()
		net.VCs = vcs
		pts = append(pts, s.loadGrid(fmt.Sprintf("CR(vc=%d)", vcs), "uniform", net)...)
	}
	for _, lanes := range []int{1, 2, 4} {
		depth := budget / (2 * lanes) // 2 dateline classes per lane
		pts = append(pts, s.loadGrid(fmt.Sprintf("DOR(vc=%d,d=%d)", 2*lanes, depth), "uniform", s.dorNet(lanes, depth))...)
	}
	for i, m := range s.sweep("E6", pts) {
		addLoadRow(t, pts[i].Series, pts[i].Load, m)
	}
	return t
}

// E7InterfaceBandwidth reproduces Fig. 14(e),(f): the effect of multiple
// injection/ejection channels per node. A single sink channel throttles
// peak throughput; widening the interface lets CR's adaptivity show.
func E7InterfaceBandwidth(s Scale) *stats.Table {
	t := stats.NewTable("E7 (Fig. 14e,f): interface channels per node", loadColumns()...)
	for _, ch := range []int{1, 2, 4} {
		cr := s.crNet()
		cr.InjectionChannels, cr.EjectionChannels = ch, ch
		dor := s.dorNet(1, 8)
		dor.InjectionChannels, dor.EjectionChannels = ch, ch
		for _, load := range s.Loads {
			m := s.run(cr, "uniform", load, s.MsgLen)
			addLoadRow(t, fmt.Sprintf("CR(ch=%d)", ch), load, m)
		}
		for _, load := range s.Loads {
			m := s.run(dor, "uniform", load, s.MsgLen)
			addLoadRow(t, fmt.Sprintf("DOR(ch=%d)", ch), load, m)
		}
	}
	return t
}
