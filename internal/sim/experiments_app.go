package sim

import (
	"fmt"

	"crnet/internal/network"
	"crnet/internal/stats"
	"crnet/internal/topology"
	"crnet/internal/workload"
)

// E19Applications measures closed-loop application communication —
// stencil halo exchange, personalized all-to-all and client/server RPC —
// to completion on CR and on the DOR baseline. This is the software-level
// view the paper's introduction motivates: the network's job is to finish
// the application's communication phases, and CR's claim is that it does
// so without the deadlock-avoidance hardware or software retry layers.
func E19Applications(s Scale) *stats.Table {
	t := stats.NewTable("E19: application workload completion time",
		"workload", "scheme", "cycles", "messages", "kills", "cycles/msg")
	g := s.torus()
	budget := int64(200) * int64(g.Nodes()) * 40 // generous; runs complete far earlier

	mkWorkloads := func() []workload.Workload {
		return []workload.Workload{
			workload.NewStencil(g, 10, s.MsgLen),
			workload.NewAllToAll(g.Nodes(), s.MsgLen, 4),
			workload.NewRPC(g.Nodes(), []topology.NodeID{0, topology.NodeID(g.Nodes() / 2)}, 8, 2, s.MsgLen),
		}
	}
	schemes := []struct {
		name string
		cfg  network.Config
	}{
		{"CR", s.crNet()},
		{"DOR", s.dorNet(1, 2)},
	}
	for i := range mkWorkloads() {
		for _, sc := range schemes {
			w := mkWorkloads()[i]
			res, err := workload.Drive(network.New(sc.cfg), w, budget)
			if err != nil {
				panic(err)
			}
			cycles := fmt.Sprint(res.CompletionCycles)
			if !res.Completed {
				cycles = "DNF"
			}
			perMsg := float64(res.CompletionCycles) / float64(res.Messages)
			t.AddRow(w.Name(), sc.name, cycles, res.Messages, res.Kills, perMsg)
		}
	}
	return t
}
