package sim

import (
	"crnet/internal/bound"
	"crnet/internal/network"
	"crnet/internal/router"
	"crnet/internal/stats"
)

// Buffer-organization experiments. E31 re-runs the paper's buffer
// economics axes (the E5/E6 question: what does a fixed silicon budget
// buy?) across the three router buffer organizations; E32 checks the
// analytical per-flow latency bound (internal/bound) against the worst
// observed in-network residence under each organization.

// E31BufferOrgs sweeps the three buffer organizations — static FIFO,
// per-port DAMQ and router-wide credit-shared — at an equal slot budget
// across the protocols the paper's buffer figures compare: CR with one
// VC (where a port-wide pool is one deep FIFO), CR with four VCs (where
// sharing competes with the VC discipline for the same slots) and
// deep-buffered DOR. Sharing pays where a static partition strands
// capacity on idle VCs; it costs where the wider absorption window
// stretches CR's padding (AbsorbDepth grows with the window cap).
func E31BufferOrgs(s Scale) *stats.Table {
	t := stats.NewTable("E31: buffer organizations (fifo/damq/shared) at equal slot budget", loadColumns()...)
	var pts []Point
	for _, org := range router.BufferOrgs {
		cr1 := s.crNet()
		cr1.BufOrg = org
		cr4 := s.crNet()
		cr4.VCs = 4
		cr4.BufOrg = org
		dor := s.dorNet(2, 4)
		dor.BufOrg = org
		pts = append(pts, s.loadGrid(org.String()+"/CR(vc=1)", "uniform", cr1)...)
		pts = append(pts, s.loadGrid(org.String()+"/CR(vc=4)", "uniform", cr4)...)
		pts = append(pts, s.loadGrid(org.String()+"/DOR(vc=4,d=4)", "uniform", dor)...)
	}
	for i, m := range s.sweep("E31", pts) {
		addLoadRow(t, pts[i].Series, pts[i].Load, m)
	}
	return t
}

// orgBoundModel builds the analytical latency model for a CR network
// config: topology geometry plus the organization's worst-case per-hop
// absorption (router.Config.AbsorbDepth — BufDepth for static FIFO, the
// window cap for the shared organizations).
func orgBoundModel(s Scale, net network.Config) bound.Model {
	topo := s.torus()
	rc := router.Config{
		VCs:        net.VCs,
		BufDepth:   net.BufDepth,
		Org:        net.BufOrg,
		BufReserve: net.BufReserve,
		BufShare:   net.BufShare,
	}
	return bound.Model{
		Degree:            topo.Degree(),
		Diameter:          topo.Diameter(),
		VCs:               net.VCs,
		InjectionChannels: 1,
		Absorb:            rc.AbsorbDepth(topo.Degree()),
		MsgLen:            s.MsgLen,
		CR:                true,
	}
}

// E32LatencyBound checks the direct-interference latency bound against
// observation: for every buffer organization, at the E17 load points,
// the worst in-network residence of any delivered attempt (injection to
// tail drained — the phases the bound models; queueing and retries are
// excluded) must stay under bound.NetworkBound. The headroom column is
// bound/observed; a FAIL verdict means the analytical model lost to the
// simulator and needs revisiting.
func E32LatencyBound(s Scale) *stats.Table {
	t := stats.NewTable("E32: analytical per-flow bound vs observed worst in-network residence (CR)",
		"org", "offered(frac)", "absorb", "worm_len", "bound", "observed_max", "headroom", "verdict")
	var pts []Point
	for _, org := range router.BufferOrgs {
		net := s.crNet()
		net.BufOrg = org
		for _, load := range []float64{0.3, 0.6} {
			pts = append(pts, Point{Series: org.String(), Pattern: "uniform", Load: load, MsgLen: s.MsgLen, Net: net})
		}
	}
	for i, m := range s.sweep("E32", pts) {
		mod := orgBoundModel(s, pts[i].Net)
		b := mod.NetworkBound()
		verdict := "PASS"
		if m.MaxNetResidence > int64(b) {
			verdict = "FAIL"
		}
		headroom := 0.0
		if m.MaxNetResidence > 0 {
			headroom = float64(b) / float64(m.MaxNetResidence)
		}
		t.AddRow(pts[i].Series, pts[i].Load, mod.Absorb, mod.FlowLen(mod.Diameter),
			b, m.MaxNetResidence, headroom, verdict)
	}
	return t
}
