package sim

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/network"
	"crnet/internal/obs"
	snap "crnet/internal/snapshot"
	"crnet/internal/stats"
	"crnet/internal/workload"
)

// serviceStateVersion versions the Service's snapshot payload layout
// (the bytes between the checkpoint container header and its CRC).
const serviceStateVersion = 2

// FNV-1a 64-bit parameters, used for the delivery stream hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ServiceConfig describes a long-running trace-driven simulation.
type ServiceConfig struct {
	// Net configures the simulated network.
	Net network.Config
	// Trace is the workload replayed into the network. It must validate
	// and its node count must match the topology.
	Trace *workload.Trace
	// Loop repeats the trace forever (each epoch shifted by the trace
	// duration); otherwise injection runs dry after the last record.
	Loop bool
	// SampleEvery, when positive, attaches the observability registry
	// and samples it every SampleEvery cycles (see Registry/Series).
	SampleEvery int64
	// SampleCap bounds the sample ring (default 512).
	SampleCap int
	// Degrade, when set, installs the graceful-degradation controller:
	// trace submissions pass through its deterministic admission gate
	// and its state/counters surface via Status and the registry.
	Degrade *DegradeConfig
}

// Service is a checkpointable, continuously stepping simulation: a
// network fed by a trace replayer, with cumulative delivery statistics
// and an optional live metrics registry. It is the engine behind
// cmd/crsimd — everything wall-clock- or transport-flavored (signals,
// HTTP, checkpoint files) lives in the binary; the Service itself is
// deterministic and snapshot-exact: Save at cycle K, Restore into a
// fresh Service, and the continuation is byte-identical to one that
// never stopped (pinned by TestServiceResumeByteIdentical).
type Service struct {
	cfg     ServiceConfig
	net     *network.Network
	rep     *workload.Replayer
	reg     *obs.Registry // nil unless SampleEvery > 0
	sampler *obs.Sampler  // nil unless SampleEvery > 0
	deg     *Degrader     // nil unless cfg.Degrade is set
	// sub is the replayer's submission target: the network itself, or
	// the degradation gate in front of it. Built once so the per-tick
	// interface value does not allocate.
	sub workload.Submitter

	delivered int64
	corrupt   int64
	lat       stats.Welford
	hist      *stats.Histogram
	// streamHash folds every delivery record (ids, timestamps, payload
	// verdict) into one FNV-1a value: two runs delivered identical
	// streams iff their hashes agree, which is how the kill-resume
	// equivalence experiment (E28) and crsimd's /status expose
	// determinism without shipping full logs.
	streamHash uint64
}

// NewService validates the configuration and builds the service at
// cycle zero.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("sim: service requires a trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("sim: service trace: %w", err)
	}
	if cfg.Net.Topo == nil {
		return nil, fmt.Errorf("sim: service requires a topology")
	}
	if got, want := cfg.Trace.Nodes, cfg.Net.Topo.Nodes(); got != want {
		return nil, fmt.Errorf("sim: trace %q has %d nodes, topology %q has %d",
			cfg.Trace.Name, got, cfg.Net.Topo.Name(), want)
	}
	s := &Service{
		cfg:        cfg,
		net:        network.New(cfg.Net),
		rep:        workload.NewReplayer(cfg.Trace, cfg.Loop),
		hist:       stats.NewHistogram(16, 4096),
		streamHash: fnvOffset64,
	}
	if cfg.SampleEvery > 0 {
		s.reg, s.sampler = buildSampler(s.net, cfg.SampleEvery, cfg.SampleCap)
		s.net.SetHooks(network.Hooks{Observer: s.sampler.Tick})
	}
	s.sub = s.net
	if cfg.Degrade != nil {
		s.deg = NewDegrader(*cfg.Degrade)
		s.sub = &gatedSubmitter{net: s.net, deg: s.deg}
		if s.reg != nil {
			s.reg.Gauge("degrade_state", func() float64 { return float64(s.deg.State()) })
			s.reg.Gauge("shed_messages", func() float64 { return float64(s.deg.Shed()) })
		}
	}
	return s, nil
}

// gatedSubmitter interposes the degradation controller between the
// trace replayer and the network: refused messages are counted as shed
// and never reach an injector.
type gatedSubmitter struct {
	net *network.Network
	deg *Degrader
}

//cr:hotpath per-trace-record admission gate on the service step path
func (g *gatedSubmitter) SubmitMessage(m flit.Message) {
	if g.deg.Admit() {
		g.net.SubmitMessage(m)
	}
}

// Step advances the simulation n cycles: replays due trace records,
// steps the network, drains deliveries into the cumulative statistics.
// It stops early with an error if the network latches unhealthy.
func (s *Service) Step(n int64) error {
	for i := int64(0); i < n; i++ {
		s.rep.Tick(s.sub, s.net.Cycle())
		s.net.Step()
		for _, d := range s.net.DrainDeliveries() {
			s.observe(d)
		}
		if s.deg != nil {
			s.deg.EndCycle(s.net.Cycle(), s.net.FaultEventsApplied(), s.net.Health() == nil)
		}
		if err := s.net.Health(); err != nil {
			return fmt.Errorf("sim: service unhealthy at cycle %d: %w", s.net.Cycle(), err)
		}
	}
	return nil
}

// observe folds one delivery into the cumulative statistics and the
// stream hash.
//
//cr:hotpath per-delivery accounting on the service step path
func (s *Service) observe(d core.Delivery) {
	s.delivered++
	if !d.DataOK {
		s.corrupt++
	}
	latency := d.Time - d.Stamps.Create
	s.lat.Add(float64(latency))
	s.hist.Add(latency)
	if s.deg != nil {
		s.deg.Observe(latency)
	}

	h := s.streamHash
	h = fnvMix(h, uint64(d.Msg))
	h = fnvMix(h, uint64(d.Worm))
	h = fnvMix(h, uint64(d.Src))
	h = fnvMix(h, uint64(d.DataLen))
	h = fnvMix(h, uint64(d.Time))
	if d.DataOK {
		h = fnvMix(h, 1)
	} else {
		h = fnvMix(h, 0)
	}
	h = fnvMix(h, uint64(d.HeadArrived))
	h = fnvMix(h, uint64(d.Stamps.Create))
	h = fnvMix(h, uint64(d.Stamps.FirstInject))
	h = fnvMix(h, uint64(d.Stamps.AttemptInject))
	h = fnvMix(h, uint64(d.Stamps.Backoff))
	s.streamHash = h
}

// fnvMix folds the eight bytes of v (little-endian) into an FNV-1a
// running hash.
//
//cr:hotpath stream-hash word fold
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Save serializes the complete service state — network, replay
// position, cumulative statistics, stream hash, sampler — as a payload
// for snapshot.Encode/WriteFile. The returned slice is freshly
// allocated.
func (s *Service) Save() []byte {
	var e snap.Encoder
	e.U32(serviceStateVersion)
	s.net.SaveState(&e)
	s.rep.SaveState(&e)
	e.Varint(s.delivered)
	e.Varint(s.corrupt)
	s.lat.SaveState(&e)
	s.hist.SaveState(&e)
	e.U64(s.streamHash)
	e.Bool(s.sampler != nil)
	if s.sampler != nil {
		s.reg.SaveState(&e)
		s.sampler.SaveState(&e)
	}
	e.Bool(s.deg != nil)
	if s.deg != nil {
		s.deg.SaveState(&e)
	}
	return append([]byte(nil), e.Bytes()...)
}

// Restore loads a payload written by Save into this service. The
// service must be configured identically to the saver: the network
// config fingerprint, trace fingerprint, loop mode and sampler
// presence are all checked, and a mismatch is refused before the
// corresponding component is touched. Payload integrity is the
// checkpoint container's job (CRC) — a decode error here means a
// version or configuration mismatch, and the service must be discarded
// (components restore in sequence, so a late failure can leave earlier
// ones already updated).
func (s *Service) Restore(payload []byte) error {
	d := snap.NewDecoder(payload)
	if v := d.U32(); d.Err() == nil && v != serviceStateVersion {
		return fmt.Errorf("sim: service snapshot version %d, want %d", v, serviceStateVersion)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.net.LoadState(d); err != nil {
		return fmt.Errorf("sim: restore network: %w", err)
	}
	if err := s.rep.LoadState(d); err != nil {
		return fmt.Errorf("sim: restore replayer: %w", err)
	}
	s.delivered = d.Varint()
	s.corrupt = d.Varint()
	if err := s.lat.LoadState(d); err != nil {
		return fmt.Errorf("sim: restore latency stats: %w", err)
	}
	if err := s.hist.LoadState(d); err != nil {
		return fmt.Errorf("sim: restore latency histogram: %w", err)
	}
	s.streamHash = d.U64()
	hasSampler := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasSampler != (s.sampler != nil) {
		return fmt.Errorf("sim: snapshot sampler=%t, service sampler=%t", hasSampler, s.sampler != nil)
	}
	if s.sampler != nil {
		if err := s.reg.LoadState(d); err != nil {
			return fmt.Errorf("sim: restore registry: %w", err)
		}
		if err := s.sampler.LoadState(d); err != nil {
			return fmt.Errorf("sim: restore sampler: %w", err)
		}
	}
	hasDeg := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasDeg != (s.deg != nil) {
		return fmt.Errorf("sim: snapshot degrader=%t, service degrader=%t", hasDeg, s.deg != nil)
	}
	if s.deg != nil {
		if err := s.deg.LoadState(d); err != nil {
			return fmt.Errorf("sim: restore degrader: %w", err)
		}
	}
	return d.Finish()
}

// Cycle returns the current simulation cycle.
func (s *Service) Cycle() int64 { return s.net.Cycle() }

// Network exposes the simulated network (read-mostly: tests and status
// endpoints).
func (s *Service) Network() *network.Network { return s.net }

// Done reports whether a non-looping trace has been fully submitted
// and the network has gone quiet (no queued, in-flight or undrained
// work) — the natural stopping point for finite replays.
func (s *Service) Done() bool {
	return s.rep.Done() && s.net.QueuedMessages() == 0 && s.net.PendingWorms() == 0
}

// Registry returns the live metrics registry, or nil when sampling is
// off.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Series returns the sampled metric time-series, or nil when sampling
// is off.
func (s *Service) Series() *obs.Series {
	if s.sampler == nil {
		return nil
	}
	return s.sampler.Series()
}

// StreamHash returns the FNV-1a hash of the delivery stream so far.
func (s *Service) StreamHash() uint64 { return s.streamHash }

// ServiceStatus is a point-in-time summary of a running service,
// JSON-shaped for crsimd's /status endpoint.
type ServiceStatus struct {
	Cycle         int64   `json:"cycle"`
	Trace         string  `json:"trace"`
	Loop          bool    `json:"loop"`
	Done          bool    `json:"done"`
	Submitted     int64   `json:"submitted"`
	Delivered     int64   `json:"delivered"`
	Corrupt       int64   `json:"corrupt"`
	Queued        int     `json:"queued_messages"`
	InFlightWorms int     `json:"inflight_worms"`
	InFlightFlits int64   `json:"inflight_flits"`
	AvgLatency    float64 `json:"avg_latency"`
	P50Latency    int64   `json:"p50_latency"`
	P95Latency    int64   `json:"p95_latency"`
	P99Latency    int64   `json:"p99_latency"`
	MaxLatency    int64   `json:"max_latency"`
	Retries       int64   `json:"retries"`
	Kills         int64   `json:"kills"`
	StreamHash    string  `json:"stream_hash"`
	Health        string  `json:"health,omitempty"`

	// Degradation and availability. Degrade is the controller state name
	// ("healthy"/"degraded"/"shedding"; empty when no controller is
	// configured); Availability is delivered-intact over all finally
	// disposed messages (delivered + shed + abandoned), 1 when nothing
	// has been disposed yet.
	Degrade         string  `json:"degrade,omitempty"`
	Shed            int64   `json:"shed_messages"`
	BreachedWindows int64   `json:"breached_windows"`
	FaultEvents     int64   `json:"fault_events"`
	HazardDown      int     `json:"hazard_down"`
	Availability    float64 `json:"availability"`
}

// Status summarizes the service's current state.
func (s *Service) Status() ServiceStatus {
	is := s.net.InjectorStats()
	st := ServiceStatus{
		Cycle:         s.net.Cycle(),
		Trace:         s.cfg.Trace.Name,
		Loop:          s.cfg.Loop,
		Done:          s.Done(),
		Submitted:     s.rep.Submitted(),
		Delivered:     s.delivered,
		Corrupt:       s.corrupt,
		Queued:        s.net.QueuedMessages(),
		InFlightWorms: s.net.PendingWorms(),
		InFlightFlits: s.net.InFlightFlits(),
		AvgLatency:    s.lat.Mean(),
		P50Latency:    s.hist.Percentile(0.50),
		P95Latency:    s.hist.Percentile(0.95),
		P99Latency:    s.hist.Percentile(0.99),
		MaxLatency:    s.hist.Max(),
		Retries:       is.Retries,
		Kills:         is.Kills,
		StreamHash:    fmt.Sprintf("%016x", s.streamHash),
		FaultEvents:   s.net.FaultEventsApplied(),
		HazardDown:    s.net.HazardDown(),
	}
	if err := s.net.Health(); err != nil {
		st.Health = err.Error()
	}
	if s.deg != nil {
		st.Degrade = s.deg.State().String()
		st.Shed = s.deg.Shed()
		st.BreachedWindows = s.deg.BreachedWindows()
	}
	st.Availability = availability(s.delivered, s.corrupt, st.Shed, is.Failed)
	return st
}

// availability is the served-traffic SLO ratio: messages delivered with
// intact payloads over every message with a final disposition —
// delivered, shed by the controller, or abandoned by its source. It is
// 1 while nothing has been disposed.
func availability(delivered, corrupt, shed, failed int64) float64 {
	total := delivered + shed + failed
	if total <= 0 {
		return 1
	}
	return float64(delivered-corrupt) / float64(total)
}
