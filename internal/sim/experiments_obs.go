package sim

import "crnet/internal/stats"

// E25LatencyDecomposition decomposes end-to-end latency into the four
// phases the source/destination timestamps delimit — queue (creation to
// first injection), retry (failed attempts + backoff), flight (header
// routing) and drain (body serialization behind the header) — across
// the E5 load sweep. The decomposition shows WHERE CR pays its
// pre-saturation latency premium over deep-buffered DOR: padding and
// serialization (drain) plus retry backoff, not slower routing
// (flight). sum_err is the exact integer residue of the partition and
// must be 0 at every point.
func E25LatencyDecomposition(s Scale) *stats.Table {
	t := stats.NewTable("E25: latency decomposition (queue/retry/flight/drain) vs load",
		"scheme", "offered(frac)", "avg_latency", "queue", "retry", "flight", "drain", "backoff", "sum_err")
	pts := s.loadGrid("CR(d=2)", "uniform", s.crNet())
	pts = append(pts, s.loadGrid("DOR(d=2)", "uniform", s.dorNet(1, 2))...)
	pts = append(pts, s.loadGrid("DOR(d=16)", "uniform", s.dorNet(1, 16))...)
	for i, m := range s.sweep("E25", pts) {
		sumErr := 0.0
		if m.Phases != nil { // nil on failed sweep points (zero metrics)
			parts := m.Phases.Queue.Sum() + m.Phases.Retry.Sum() + m.Phases.Flight.Sum() + m.Phases.Drain.Sum()
			sumErr = float64(parts - m.Phases.Total.Sum())
		}
		t.AddRow(pts[i].Series, pts[i].Load, m.AvgLatency,
			m.QueueLatency, m.RetryLatency, m.FlightLatency, m.DrainLatency,
			m.BackoffLatency, sumErr)
	}
	return t
}

// E26OccupancySeries samples per-VC buffer occupancy, in-flight worms
// and kill counters on a fixed cadence through CR load points around
// the saturation knee, reducing each point's retained time-series to
// summary statistics here; the full series rides in the JSON
// artifact's time_series section (schema v3) and exports as CSV via
// crbench -timeseries.
func E26OccupancySeries(s Scale) *stats.Table {
	t := stats.NewTable("E26: buffer occupancy time-series around the saturation knee (CR)",
		"scheme", "offered(frac)", "samples", "occ_mean", "occ_max", "inflight_mean", "kills_delta", "link_util")
	every := s.Measure / 100
	if every < 1 {
		every = 1
	}
	pts := s.loadGrid("CR(d=2)", "uniform", s.crNet())
	for i := range pts {
		pts[i].SampleEvery = every
	}
	for i, m := range s.sweep("E26", pts) {
		if m.Series == nil { // failed sweep point
			t.AddRow(pts[i].Series, pts[i].Load, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
			continue
		}
		occMean, occMax := m.Series.ColumnStats("occupancy_total")
		inflight, _ := m.Series.ColumnStats("inflight_worms")
		t.AddRow(pts[i].Series, pts[i].Load, m.Series.Len(),
			occMean, occMax, inflight,
			m.Series.Delta("source_kills"), m.Series.Last("link_utilization"))
	}
	return t
}
