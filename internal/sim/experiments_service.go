package sim

import (
	"bytes"

	"crnet/internal/faults"
	"crnet/internal/network"
	"crnet/internal/stats"
	"crnet/internal/traffic"
	"crnet/internal/workload"
)

// E27TraceReplay measures end-to-end latency under materialized
// trace-driven workloads — the service path (internal/workload +
// sim.Service) rather than the open-loop generators the other
// experiments use. Each trace is generated once and replayed through
// both CR and FCR-with-corruption, so the two schemes see literally
// the same message sequence. Statistics cover the full run (no warmup
// split: a replay is a finite artifact, not a stationary process). The
// stream hash pins the delivery stream byte-for-byte in results files.
func E27TraceReplay(s Scale) *stats.Table {
	t := stats.NewTable("E27: trace-driven workload replay (load 0.4, full-run stats)",
		"workload", "scheme", "delivered", "corrupt", "avg_latency", "p95", "p99", "stream_hash")
	topo := s.torus()
	cycles := s.Warmup + s.Measure
	capacity := traffic.CapacityFlitsPerNode(topo)

	gens := []struct {
		name string
		gen  func(workload.TraceSpec) *workload.Trace
	}{
		{"diurnal", workload.GenDiurnal},
		{"hotspot", workload.GenHotspot},
		{"bursty", workload.GenBursty},
		{"incast", workload.GenIncast},
	}
	nets := []struct {
		name string
		cfg  func() network.Config
	}{
		{"CR", s.crNet},
		{"FCR+corrupt", func() network.Config {
			c := s.fcrNet()
			c.TransientRate = 1e-4
			return c
		}},
	}
	for _, g := range gens {
		spec := workload.TraceFor(topo, 0.4, s.MsgLen, cycles, s.Seed+101, capacity)
		trace := g.gen(spec)
		for _, nc := range nets {
			svc, err := NewService(ServiceConfig{Net: nc.cfg(), Trace: trace, Loop: true})
			if err != nil {
				panic(err)
			}
			if err := svc.Step(cycles); err != nil {
				panic(err)
			}
			st := svc.Status()
			t.AddRow(g.name, nc.name, st.Delivered, st.Corrupt,
				st.AvgLatency, st.P95Latency, st.P99Latency, st.StreamHash)
		}
	}
	return t
}

// E28KillResume validates the checkpoint/restore subsystem end to end:
// for each scenario, an unbroken run races a run that is checkpointed
// at cycles/3, restored into a freshly built service, and continued.
// The verdict is PASS only if the delivery stream hashes AND the full
// serialized final states are byte-identical — under clean traffic,
// under transient corruption, and under a permanent fault timeline
// whose events fire on both sides of the checkpoint.
func E28KillResume(s Scale) *stats.Table {
	t := stats.NewTable("E28: kill-resume equivalence — restored run vs unbroken run",
		"scenario", "ckpt_cycle", "cycles", "delivered", "stream_hash", "verdict")
	topo := s.torus()
	cycles := s.Measure
	ckptAt := cycles / 3
	capacity := traffic.CapacityFlitsPerNode(topo)
	spec := func(seed uint64) workload.TraceSpec {
		return workload.TraceFor(topo, 0.3, s.MsgLen, cycles, seed, capacity)
	}

	scenarios := []struct {
		name  string
		build func() ServiceConfig
	}{
		{"uniform/CR", func() ServiceConfig {
			return ServiceConfig{Net: s.crNet(), Trace: workload.GenUniform(spec(s.Seed + 7)), Loop: true}
		}},
		{"hotspot/FCR+corrupt", func() ServiceConfig {
			c := s.fcrNet()
			c.TransientRate = 2e-4
			return ServiceConfig{Net: c, Trace: workload.GenHotspot(spec(s.Seed + 8)), Loop: true}
		}},
		{"bursty/FCR+faults", func() ServiceConfig {
			c := s.fcrNet()
			c.TransientRate = 2e-4
			// A fresh Schedule per call: the cursor is mutable run state,
			// and the timeline straddles the checkpoint cycle.
			c.Faults = faults.NewSchedule([]faults.Event{
				{Cycle: cycles / 4, Link: faults.LinkID{Node: 1, Port: 0}},
				{Cycle: cycles / 2, Link: faults.LinkID{Node: 1, Port: 0}, Up: true},
			})
			return ServiceConfig{Net: c, Trace: workload.GenBursty(spec(s.Seed + 9)), Loop: true,
				SampleEvery: 500}
		}},
	}
	for _, sc := range scenarios {
		ref := mustService(sc.build())
		mustStep(ref, cycles)

		first := mustService(sc.build())
		mustStep(first, ckptAt)
		ckpt := first.Save()

		resumed := mustService(sc.build())
		if err := resumed.Restore(ckpt); err != nil {
			panic(err)
		}
		mustStep(resumed, cycles-ckptAt)

		verdict := "PASS"
		if ref.StreamHash() != resumed.StreamHash() || !bytes.Equal(ref.Save(), resumed.Save()) {
			verdict = "FAIL"
		}
		st := ref.Status()
		t.AddRow(sc.name, ckptAt, cycles, st.Delivered, st.StreamHash, verdict)
	}
	return t
}

func mustService(cfg ServiceConfig) *Service {
	s, err := NewService(cfg)
	if err != nil {
		panic(err) // experiment configurations are static; errors are bugs
	}
	return s
}

func mustStep(s *Service, n int64) {
	if err := s.Step(n); err != nil {
		panic(err)
	}
}
