package sim

import (
	"fmt"

	"crnet/internal/faults"
	"crnet/internal/harness"
	"crnet/internal/network"
	"crnet/internal/stats"
)

// E8TransientFaults reproduces the paper's FCR evaluation under
// transient faults: per-flit-hop corruption rates from 0 to 1e-2. FCR
// must deliver every message intact (zero corrupt deliveries, zero late
// FKILLs); latency and FKILL-retry rates grow with the fault rate. The
// unprotected CR network at the same rates is shown for contrast — it
// silently delivers corrupted data.
func E8TransientFaults(s Scale) *stats.Table {
	t := stats.NewTable("E8: transient faults, FCR vs unprotected CR (load=0.4)",
		"scheme", "fault_rate", "avg_latency", "fkills/msg", "corrupt_deliveries", "late_fkills")
	rates := []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}
	const load = 0.4
	for _, rate := range rates {
		net := s.fcrNet()
		net.TransientRate = rate
		m := s.run(net, "uniform", load, s.MsgLen)
		t.AddRow("FCR", rate, m.AvgLatency, m.FKillsPerMsg, m.DeliveredCorrupt, m.LateFKills)
	}
	for _, rate := range rates {
		net := s.crNet()
		net.TransientRate = rate
		m := s.run(net, "uniform", load, s.MsgLen)
		t.AddRow("CR", rate, m.AvgLatency, m.FKillsPerMsg, m.DeliveredCorrupt, m.LateFKills)
	}
	return t
}

// E9PermanentFaults evaluates FCR against permanent link failures: n
// random links die at the end of warmup; messages reroute adaptively and
// misroute when minimal paths are gone. Reported: latency inflation,
// misroute usage, messages abandoned (should be zero while the network
// stays connected).
func E9PermanentFaults(s Scale) *stats.Table {
	t := stats.NewTable("E9: permanent link faults under FCR (load=0.3)",
		"dead_links", "thpt(flits/node/cyc)", "avg_latency", "p95", "misroutes", "failed_msgs")
	const load = 0.3
	for _, dead := range []int{0, 1, 2, 4, 8} {
		net := s.fcrNet()
		net.MisrouteAfter = 2
		net.MaxDetours = 4
		if dead > 0 {
			// Link ids depend only on topology; the schedule seed is
			// splitmix-derived so fault sets stay decorrelated across
			// sweep points (and from the traffic seeds).
			net.Faults = faults.RandomLinks(network.LinksOf(net.Topo), dead, s.Warmup, harness.PointSeed(s.Seed, 900+dead))
		}
		m := s.run(net, "uniform", load, s.MsgLen)
		t.AddRow(dead, m.Throughput, m.AvgLatency, m.P95Latency, m.Misroutes, m.FailedMessages)
	}
	return t
}

// E10TimeoutSensitivity explores the timeout parameter the paper
// discusses in Section 7: too short a timeout produces false kills
// (retries without deadlock), too long slows recovery. The paper's rule
// (framed length x VCs) is included.
func E10TimeoutSensitivity(s Scale) *stats.Table {
	t := stats.NewTable("E10: timeout sensitivity",
		"timeout", "offered(frac)", "avg_latency", "kills/msg", "retries/msg")
	timeouts := []int{8, 16, 32, 64, 128, 0} // 0 = the paper's rule
	loads := []float64{0.3, 0.6, 0.8}
	for _, timeout := range timeouts {
		name := fmt.Sprint(timeout)
		if timeout == 0 {
			name = "rule(LxVC)"
		}
		for _, load := range loads {
			net := s.crNet()
			net.Timeout = timeout
			m := s.run(net, "uniform", load, s.MsgLen)
			t.AddRow(name, load, m.AvgLatency, m.KillsPerMsg, m.RetriesPerMsg)
		}
	}
	return t
}

// E11HardwareCost reproduces the paper's implementation-complexity
// discussion (Section 5, Figs. 7-8) as a counted-resource model: buffer
// flits, virtual-channel state machines, arbiter ports, counters and
// comparators per router plus injector/receiver additions, for each
// scheme at its canonical configuration. CR's pitch: adaptive routing
// with fewer virtual channels and only counters/comparators added at the
// interfaces.
func E11HardwareCost(s Scale) *stats.Table {
	t := stats.NewTable("E11: hardware complexity model (per node)",
		"scheme", "VCs/port", "buffer_flits", "vc_state_machines", "arbiter_inputs",
		"interface_counters", "interface_comparators", "checksum_units")
	type scheme struct {
		name     string
		vcs      int
		bufDepth int
		// interface additions
		counters, comparators, checksums int
	}
	deg := 4 // 2-D torus router
	rows := []scheme{
		// DOR torus: 2 VCs for datelines, deep FIFOs, plain interface.
		{"DOR(2vc,d=16)", 2, 16, 0, 0, 0},
		// Duato: adaptive VC + 2 escape VCs.
		{"Duato(3vc,d=2)", 3, 2, 0, 0, 0},
		// CR: 1 VC, 2-flit buffers; injector adds the Imin/pad counter,
		// the stall timer and their comparators.
		{"CR(1vc,d=2)", 1, 2, 3, 2, 0},
		// FCR: CR plus per-flit checksum generation/check at interfaces
		// and per-hop header check in the router.
		{"FCR(1vc,d=2)", 1, 2, 3, 2, 2},
	}
	for _, r := range rows {
		bufferFlits := deg * r.vcs * r.bufDepth
		vcFSMs := deg * r.vcs
		arbIn := deg * (deg*r.vcs + 1) // per output: all input VCs + injection
		t.AddRow(r.name, r.vcs, bufferFlits, vcFSMs, arbIn, r.counters, r.comparators, r.checksums)
	}
	return t
}

// E12TrafficPatterns tests the claim that CR's adaptivity pays off most
// on non-uniform traffic: CR vs DOR (equal buffer resources) across
// traffic patterns.
func E12TrafficPatterns(s Scale) *stats.Table {
	t := stats.NewTable("E12: traffic patterns, CR vs DOR",
		"pattern", "scheme", "offered(frac)", "thpt(flits/node/cyc)", "avg_latency", "note")
	patterns := []string{"uniform", "transpose", "bit-reversal", "hotspot"}
	loads := []float64{0.3, 0.5, 0.7}
	var pts []Point
	for _, p := range patterns {
		for _, load := range loads {
			pts = append(pts,
				Point{Series: "CR", Pattern: p, Load: load, MsgLen: s.MsgLen, Net: s.crNet()},
				Point{Series: "DOR", Pattern: p, Load: load, MsgLen: s.MsgLen, Net: s.dorNet(1, 2)})
		}
	}
	for i, m := range s.sweep("E12", pts) {
		note := ""
		if m.Saturated() {
			note = "saturated"
		}
		t.AddRow(pts[i].Pattern, pts[i].Series, pts[i].Load, m.Throughput, m.AvgLatency, note)
	}
	return t
}

// E13PaddingOverhead quantifies CR/FCR's padding cost across message
// lengths: short messages pay the most (padding to Imin), long messages
// pay nothing under CR and a bounded extra under FCR. Measured at a low
// load so queueing does not distort the flit accounting.
func E13PaddingOverhead(s Scale) *stats.Table {
	t := stats.NewTable("E13: padding overhead vs message length (load=0.2)",
		"msg_len", "cr_pad/data", "fcr_pad/data", "cr_latency", "fcr_latency")
	for _, msgLen := range []int{4, 8, 16, 32, 64} {
		mc := s.run(s.crNet(), "uniform", 0.2, msgLen)
		mf := s.run(s.fcrNet(), "uniform", 0.2, msgLen)
		t.AddRow(msgLen, mc.PadOverhead, mf.PadOverhead, mc.AvgLatency, mf.AvgLatency)
	}
	return t
}

// E14Properties stresses the protocol claims directly and reports
// pass/fail rows: exactly-once delivery, per-pair order preservation,
// intact data under FCR with faults, zero late FKILLs (padding bound),
// and liveness (no failed messages below saturation).
func E14Properties(s Scale) *stats.Table {
	t := stats.NewTable("E14: protocol properties under stress",
		"property", "value", "expectation", "pass")
	net := s.fcrNet()
	net.TransientRate = 1e-3
	m := s.run(net, "uniform", 0.6, s.MsgLen)
	check := func(name string, value interface{}, ok bool, expectation string) {
		pass := "PASS"
		if !ok {
			pass = "FAIL"
		}
		t.AddRow(name, fmt.Sprint(value), expectation, pass)
	}
	check("corrupt deliveries (FCR)", m.DeliveredCorrupt, m.DeliveredCorrupt == 0, "0")
	check("late FKILLs", m.LateFKills, m.LateFKills == 0, "0")
	check("order violations", m.OrderErrors, m.OrderErrors == 0, "0")
	check("failed messages", m.FailedMessages, m.FailedMessages == 0, "0")
	check("transient faults injected", m.TransientFaults, m.TransientFaults > 0, "> 0 (test not vacuous)")
	check("fkill retries observed", m.FKillsPerMsg, m.FKillsPerMsg > 0 || m.TransientFaults == 0, "> 0 under faults")
	return t
}
