package sim

import (
	"fmt"

	"crnet/internal/core"
	snap "crnet/internal/snapshot"
	"crnet/internal/stats"
)

// Graceful degradation: when observed health worsens — the watchdog
// latches, fault density spikes, or delivered latency breaches its SLO
// — the right move for a fabric serving live traffic is to shed offered
// load, not to keep stuffing a struggling network until it collapses.
// The Degrader is a deterministic three-state controller
// (healthy → degraded → shedding) with hysteresis: it walks states on
// consecutive breached/clean control windows and gates submissions
// through a core.Throttle, so the same run always sheds the same
// messages and sweeps stay byte-reproducible.

// DegradeState is the controller's position in the degradation ladder.
type DegradeState uint8

const (
	// DegradeHealthy admits all offered traffic.
	DegradeHealthy DegradeState = iota
	// DegradeDegraded throttles admissions to DegradedPermille.
	DegradeDegraded
	// DegradeShedding throttles admissions to SheddingPermille.
	DegradeShedding
)

func (s DegradeState) String() string {
	switch s {
	case DegradeHealthy:
		return "healthy"
	case DegradeDegraded:
		return "degraded"
	case DegradeShedding:
		return "shedding"
	}
	return "invalid"
}

// DegradeConfig parameterizes the controller. The zero value of every
// field selects a sensible default except LatencySLO, which is required
// (there is no universal latency target).
type DegradeConfig struct {
	// LatencySLO is the delivered-latency objective in cycles: a control
	// window whose p95 delivery latency exceeds it counts as breached.
	LatencySLO int64
	// Window is the control-window length in cycles (default 512).
	Window int64
	// FailBudget marks a window breached when it applies at least this
	// many fault failure events; 0 disables the failure-density signal.
	FailBudget int64
	// EnterAfter consecutive breached windows step the controller one
	// state down the ladder (default 2). ExitAfter consecutive clean
	// windows step it back up (default 4, slower out than in).
	EnterAfter int
	ExitAfter  int
	// DegradedPermille/SheddingPermille are the admitted fractions, in
	// thousandths, for the two throttled states (defaults 700 and 400).
	DegradedPermille int64
	SheddingPermille int64
}

func (c DegradeConfig) window() int64 {
	if c.Window <= 0 {
		return 512
	}
	return c.Window
}

func (c DegradeConfig) enterAfter() int {
	if c.EnterAfter <= 0 {
		return 2
	}
	return c.EnterAfter
}

func (c DegradeConfig) exitAfter() int {
	if c.ExitAfter <= 0 {
		return 4
	}
	return c.ExitAfter
}

func (c DegradeConfig) degradedPermille() int64 {
	if c.DegradedPermille <= 0 {
		return 700
	}
	return c.DegradedPermille
}

func (c DegradeConfig) sheddingPermille() int64 {
	if c.SheddingPermille <= 0 {
		return 400
	}
	return c.SheddingPermille
}

// Degrader is the stateful controller. Drive it with Admit per offered
// message, Observe per delivery, and EndCycle once per cycle.
type Degrader struct {
	cfg   DegradeConfig //cr:nosnap configuration, fixed at construction
	state DegradeState
	gate  core.Throttle

	// Per-window accounting, reset at each window boundary.
	winLatency  *stats.Histogram
	winFails0   int64 // FaultEventsApplied at the window's start
	winAdmitted int64
	winShed     int64
	winDeliv    int64

	breaches int // consecutive breached windows
	cleans   int // consecutive clean windows

	// Cumulative counters for availability accounting.
	shed            int64
	admitted        int64
	transitions     int64
	breachedWindows int64
}

// NewDegrader builds a controller in the healthy state.
func NewDegrader(cfg DegradeConfig) *Degrader {
	d := &Degrader{cfg: cfg}
	// Bucket width scales with the SLO so the p95 read at the breach
	// threshold is sharp; the overflow bucket catches the rest.
	w := cfg.LatencySLO / 64
	if w < 1 {
		w = 1
	}
	d.winLatency = stats.NewHistogram(w, 256)
	d.applyState()
	return d
}

func (d *Degrader) applyState() {
	switch d.state {
	case DegradeHealthy:
		d.gate.SetRate(1, 1)
	case DegradeDegraded:
		d.gate.SetRate(d.cfg.degradedPermille(), 1000)
	case DegradeShedding:
		d.gate.SetRate(d.cfg.sheddingPermille(), 1000)
	}
}

// Admit consumes one offered message and reports whether to submit it;
// a false return is a shed message, counted for availability.
//
//cr:hotpath per-offered-message admission gate
func (d *Degrader) Admit() bool {
	if d.gate.Allow() {
		d.winAdmitted++
		d.admitted++
		return true
	}
	d.winShed++
	d.shed++
	return false
}

// Observe records one delivered message's latency in cycles.
//
//cr:hotpath per-delivery latency observation
func (d *Degrader) Observe(latency int64) {
	d.winDeliv++
	d.winLatency.Add(latency)
}

// EndCycle closes out cycle now: on a window boundary it scores the
// window against the health signals, walks the hysteresis ladder, and
// opens the next window. failEvents is the network's cumulative
// FaultEventsApplied; healthy is whether the watchdog latch is clear.
//
//cr:hotpath per-cycle window-boundary check
func (d *Degrader) EndCycle(now int64, failEvents int64, healthy bool) {
	w := d.cfg.window()
	if now == 0 || now%w != 0 {
		return
	}
	breached := !healthy
	if !breached && d.cfg.LatencySLO > 0 && d.winLatency.N() > 0 &&
		d.winLatency.Percentile(0.95) > d.cfg.LatencySLO {
		breached = true
	}
	if !breached && d.cfg.FailBudget > 0 && failEvents-d.winFails0 >= d.cfg.FailBudget {
		breached = true
	}
	// A window that admitted traffic but delivered nothing is a stall
	// the latency signal cannot see (no deliveries, no percentile).
	if !breached && d.winAdmitted > 0 && d.winDeliv == 0 {
		breached = true
	}

	if breached {
		d.breachedWindows++
		d.breaches++
		d.cleans = 0
		if d.breaches >= d.cfg.enterAfter() && d.state < DegradeShedding {
			d.state++
			d.transitions++
			d.breaches = 0
			d.applyState()
		}
	} else {
		d.cleans++
		d.breaches = 0
		if d.cleans >= d.cfg.exitAfter() && d.state > DegradeHealthy {
			d.state--
			d.transitions++
			d.cleans = 0
			d.applyState()
		}
	}

	d.winLatency.Reset()
	d.winFails0 = failEvents
	d.winAdmitted, d.winShed, d.winDeliv = 0, 0, 0
}

// State returns the controller's current position.
func (d *Degrader) State() DegradeState { return d.state }

// Shed returns how many offered messages were shed in total.
func (d *Degrader) Shed() int64 { return d.shed }

// Admitted returns how many offered messages were admitted in total.
func (d *Degrader) Admitted() int64 { return d.admitted }

// Transitions returns how many state changes the controller has made.
func (d *Degrader) Transitions() int64 { return d.transitions }

// BreachedWindows returns how many control windows scored as breached.
func (d *Degrader) BreachedWindows() int64 { return d.breachedWindows }

// SaveState serializes the controller (config is not serialized; the
// owner reconstructs the Degrader from the same DegradeConfig).
func (d *Degrader) SaveState(e *snap.Encoder) {
	e.U8(uint8(d.state))
	d.gate.SaveState(e)
	d.winLatency.SaveState(e)
	e.Varint(d.winFails0)
	e.Varint(d.winAdmitted)
	e.Varint(d.winShed)
	e.Varint(d.winDeliv)
	e.Int(d.breaches)
	e.Int(d.cleans)
	e.Varint(d.shed)
	e.Varint(d.admitted)
	e.Varint(d.transitions)
	e.Varint(d.breachedWindows)
}

// LoadState restores a state saved by SaveState into a controller built
// from the same DegradeConfig.
func (d *Degrader) LoadState(dec *snap.Decoder) error {
	state := DegradeState(dec.U8())
	if state > DegradeShedding {
		return fmt.Errorf("sim: snapshot degrade state %d out of range", state)
	}
	if err := d.gate.LoadState(dec); err != nil {
		return err
	}
	if err := d.winLatency.LoadState(dec); err != nil {
		return err
	}
	winFails0 := dec.Varint()
	winAdmitted := dec.Varint()
	winShed := dec.Varint()
	winDeliv := dec.Varint()
	breaches := dec.Int()
	cleans := dec.Int()
	shed := dec.Varint()
	admitted := dec.Varint()
	transitions := dec.Varint()
	breachedWindows := dec.Varint()
	if err := dec.Err(); err != nil {
		return err
	}
	d.state = state
	d.winFails0 = winFails0
	d.winAdmitted, d.winShed, d.winDeliv = winAdmitted, winShed, winDeliv
	d.breaches, d.cleans = breaches, cleans
	d.shed, d.admitted = shed, admitted
	d.transitions, d.breachedWindows = transitions, breachedWindows
	return nil
}
