package workload

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"crnet/internal/rng"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
)

// Trace-driven workloads: where the closed-loop Workload types react to
// deliveries, a Trace is a fully materialized open-loop message
// schedule — every (cycle, src, dst, length) decided ahead of time.
// Materialization is what makes long-running service workloads
// checkpointable: a Replayer's position in a trace is three integers,
// so a restored run offers byte-identical load from the first resumed
// cycle, and the same trace file replayed on two protocols is a
// controlled comparison.
//
// Traces serialize to a versioned binary container (magic, version,
// CRC-protected payload) using the snapshot codec; generators for
// bursty, diurnal, hotspot, incast and permutation-storm streams are
// deterministic functions of (topology, seed, parameters).

// TraceMagic identifies a serialized trace file.
const TraceMagic = "CRTRACE1"

// TraceVersion is the current trace container format version.
const TraceVersion = 1

// TraceRecord schedules one message: at Cycle, Src submits a
// DataLen-flit message to Dst.
type TraceRecord struct {
	Cycle   int64
	Src     topology.NodeID
	Dst     topology.NodeID
	DataLen int
}

// Trace is a materialized message schedule for a machine of Nodes
// nodes. Records are ordered by cycle (ties in generation order, which
// replay preserves).
type Trace struct {
	Name    string
	Nodes   int
	Records []TraceRecord
}

// Validate checks the trace's internal consistency: records sorted by
// cycle, every endpoint within [0, Nodes), positive lengths.
func (t *Trace) Validate() error {
	if t.Nodes < 2 {
		return fmt.Errorf("workload: trace %q has %d nodes", t.Name, t.Nodes)
	}
	last := int64(0)
	for i, r := range t.Records {
		if r.Cycle < last {
			return fmt.Errorf("workload: trace %q record %d out of order (cycle %d after %d)", t.Name, i, r.Cycle, last)
		}
		last = r.Cycle
		if r.Src == r.Dst || r.Src < 0 || int(r.Src) >= t.Nodes || r.Dst < 0 || int(r.Dst) >= t.Nodes {
			return fmt.Errorf("workload: trace %q record %d endpoints %d->%d invalid", t.Name, i, r.Src, r.Dst)
		}
		if r.DataLen < 1 {
			return fmt.Errorf("workload: trace %q record %d length %d", t.Name, i, r.DataLen)
		}
	}
	return nil
}

// Duration returns the cycle span of the trace: one past the last
// record's cycle (the loop period when replaying cyclically).
func (t *Trace) Duration() int64 {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Cycle + 1
}

// Fingerprint digests the full schedule. The replayer embeds it in
// checkpoints so a resumed service cannot silently continue with a
// different trace than the one the checkpoint was taken under.
func (t *Trace) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", t.Name, t.Nodes, len(t.Records))
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, r := range t.Records {
		put(uint64(r.Cycle))
		put(uint64(r.Src))
		put(uint64(r.Dst))
		put(uint64(r.DataLen))
	}
	return h.Sum64()
}

// EncodeBinary serializes the trace: magic, version, name, node count,
// then the records with delta-encoded cycles, closed by a CRC-32 (IEEE)
// of everything preceding it.
func (t *Trace) EncodeBinary() []byte {
	var e snapshot.Encoder
	e.Raw([]byte(TraceMagic))
	e.U32(TraceVersion)
	e.String(t.Name)
	e.Varint(int64(t.Nodes))
	e.Uvarint(uint64(len(t.Records)))
	prev := int64(0)
	for _, r := range t.Records {
		e.Uvarint(uint64(r.Cycle - prev))
		prev = r.Cycle
		e.Varint(int64(r.Src))
		e.Varint(int64(r.Dst))
		e.Uvarint(uint64(r.DataLen))
	}
	e.U32(crc32.ChecksumIEEE(e.Bytes()))
	return e.Bytes()
}

// DecodeTrace parses a serialized trace. name labels errors (typically
// the file path). The CRC is verified over the whole prefix before the
// decoded trace is returned; the result additionally passes Validate.
func DecodeTrace(name string, data []byte) (*Trace, error) {
	fail := func(reason string) (*Trace, error) {
		return nil, &snapshot.FormatError{Path: name, Reason: reason}
	}
	if len(data) < len(TraceMagic)+4+4 {
		return fail(fmt.Sprintf("too short (%d bytes)", len(data)))
	}
	if string(data[:len(TraceMagic)]) != TraceMagic {
		return fail("bad magic (not a trace file)")
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	want := uint32(crcBytes[0]) | uint32(crcBytes[1])<<8 | uint32(crcBytes[2])<<16 | uint32(crcBytes[3])<<24
	if got := crc32.ChecksumIEEE(body); got != want {
		return fail(fmt.Sprintf("checksum mismatch (%08x != %08x)", got, want))
	}
	d := snapshot.NewDecoder(body[len(TraceMagic):])
	if v := d.U32(); v != TraceVersion {
		return fail(fmt.Sprintf("unsupported version %d (have %d)", v, TraceVersion))
	}
	t := &Trace{Name: d.String(), Nodes: int(d.Varint())}
	n := d.Count(1 << 28)
	if err := d.Err(); err != nil {
		return fail(err.Error())
	}
	t.Records = make([]TraceRecord, n)
	cycle := int64(0)
	for i := range t.Records {
		cycle += int64(d.Uvarint())
		t.Records[i] = TraceRecord{
			Cycle:   cycle,
			Src:     topology.NodeID(d.Varint()),
			Dst:     topology.NodeID(d.Varint()),
			DataLen: int(d.Uvarint()),
		}
	}
	if err := d.Finish(); err != nil {
		return fail(err.Error())
	}
	if err := t.Validate(); err != nil {
		return fail(err.Error())
	}
	return t, nil
}

// TraceSpec carries the parameters shared by every generator: the
// machine size, the cycle span to cover, the per-node message arrival
// probability per cycle at nominal intensity, the message length in
// flits, and the deterministic seed.
type TraceSpec struct {
	Nodes   int
	Cycles  int64
	Rate    float64 // messages per node per cycle at nominal intensity
	MsgLen  int
	Seed    uint64
	Hotspot HotspotSpec
	Burst   BurstTraceSpec
	Diurnal DiurnalSpec
	Storm   StormSpec
}

// HotspotSpec skews destination choice toward a few hot nodes.
type HotspotSpec struct {
	// Fraction of messages aimed at a hot node (0 disables skew).
	Fraction float64
	// HotNodes is how many distinct hot destinations share the skewed
	// traffic; 0 means 1.
	HotNodes int
}

// BurstTraceSpec modulates arrivals with a two-state (calm/burst)
// Markov chain, the arrival-process analogue of the Gilbert-Elliott
// corruption model: long calm stretches at a fraction of the nominal
// rate punctuated by bursts at a multiple of it.
type BurstTraceSpec struct {
	// MeanCalm and MeanBurst are the expected state dwell times in
	// cycles; 0 means 500 and 50.
	MeanCalm  float64
	MeanBurst float64
	// CalmFactor and BurstFactor scale the nominal rate in each state;
	// 0 means 0.5 and 4.
	CalmFactor  float64
	BurstFactor float64
}

// DiurnalSpec modulates arrivals sinusoidally — the load curve of a
// long-running service with a daily cycle, compressed to simulation
// time.
type DiurnalSpec struct {
	// Period is the modulation wavelength in cycles; 0 means the whole
	// trace span.
	Period int64
	// Amplitude in [0,1] scales the swing around the nominal rate; 0
	// means 0.8.
	Amplitude float64
}

// StormSpec drives the permutation-storm generator: traffic follows a
// fixed random permutation (every node sends to exactly one partner —
// the adversarial pattern for adaptive routing), reshuffled
// periodically so the congestion pattern keeps moving.
type StormSpec struct {
	// ReshuffleEvery is the cycles between permutation changes; 0 means
	// 1000.
	ReshuffleEvery int64
}

func (s *TraceSpec) validate(kind string) {
	if s.Nodes < 2 || s.Cycles < 1 || s.MsgLen < 1 || s.Rate < 0 || s.Rate > 1 {
		panic(fmt.Sprintf("workload: %s trace spec nodes=%d cycles=%d rate=%g len=%d",
			kind, s.Nodes, s.Cycles, s.Rate, s.MsgLen))
	}
}

// uniformDst draws a destination for src uniformly from the other nodes.
func uniformDst(r *rng.Source, nodes int, src topology.NodeID) topology.NodeID {
	d := topology.NodeID(r.Intn(nodes - 1))
	if d >= src {
		d++
	}
	return d
}

// GenUniform materializes a plain uniform-random Bernoulli arrival
// stream — the baseline the shaped generators are compared against.
func GenUniform(spec TraceSpec) *Trace {
	spec.validate("uniform")
	r := rng.New(spec.Seed)
	t := &Trace{Name: fmt.Sprintf("uniform(n=%d,rate=%g)", spec.Nodes, spec.Rate), Nodes: spec.Nodes}
	for c := int64(0); c < spec.Cycles; c++ {
		for n := 0; n < spec.Nodes; n++ {
			if r.Bernoulli(spec.Rate) {
				src := topology.NodeID(n)
				t.Records = append(t.Records, TraceRecord{
					Cycle: c, Src: src, Dst: uniformDst(r, spec.Nodes, src), DataLen: spec.MsgLen,
				})
			}
		}
	}
	return t
}

// GenBursty materializes a bursty arrival stream: a global two-state
// calm/burst Markov chain scales every node's arrival probability, so
// load arrives in correlated surges rather than as an i.i.d. trickle.
func GenBursty(spec TraceSpec) *Trace {
	spec.validate("bursty")
	b := spec.Burst
	if b.MeanCalm <= 0 {
		b.MeanCalm = 500
	}
	if b.MeanBurst <= 0 {
		b.MeanBurst = 50
	}
	if b.CalmFactor <= 0 {
		b.CalmFactor = 0.5
	}
	if b.BurstFactor <= 0 {
		b.BurstFactor = 4
	}
	r := rng.New(spec.Seed)
	t := &Trace{
		Name:  fmt.Sprintf("bursty(n=%d,rate=%g,calm=%g,burst=%g)", spec.Nodes, spec.Rate, b.MeanCalm, b.MeanBurst),
		Nodes: spec.Nodes,
	}
	burst := false
	for c := int64(0); c < spec.Cycles; c++ {
		if burst {
			if r.Bernoulli(1 / b.MeanBurst) {
				burst = false
			}
		} else if r.Bernoulli(1 / b.MeanCalm) {
			burst = true
		}
		rate := spec.Rate * b.CalmFactor
		if burst {
			rate = spec.Rate * b.BurstFactor
		}
		if rate > 1 {
			rate = 1
		}
		for n := 0; n < spec.Nodes; n++ {
			if r.Bernoulli(rate) {
				src := topology.NodeID(n)
				t.Records = append(t.Records, TraceRecord{
					Cycle: c, Src: src, Dst: uniformDst(r, spec.Nodes, src), DataLen: spec.MsgLen,
				})
			}
		}
	}
	return t
}

// GenDiurnal materializes a sinusoidally modulated arrival stream:
// rate(c) = Rate * (1 + Amplitude*sin(2πc/Period)) / (1 + Amplitude),
// normalized so the peak never exceeds the nominal rate.
func GenDiurnal(spec TraceSpec) *Trace {
	spec.validate("diurnal")
	d := spec.Diurnal
	if d.Period <= 0 {
		d.Period = spec.Cycles
	}
	if d.Amplitude <= 0 {
		d.Amplitude = 0.8
	}
	r := rng.New(spec.Seed)
	t := &Trace{
		Name:  fmt.Sprintf("diurnal(n=%d,rate=%g,period=%d)", spec.Nodes, spec.Rate, d.Period),
		Nodes: spec.Nodes,
	}
	for c := int64(0); c < spec.Cycles; c++ {
		phase := 2 * math.Pi * float64(c%d.Period) / float64(d.Period)
		rate := spec.Rate * (1 + d.Amplitude*math.Sin(phase)) / (1 + d.Amplitude)
		for n := 0; n < spec.Nodes; n++ {
			if r.Bernoulli(rate) {
				src := topology.NodeID(n)
				t.Records = append(t.Records, TraceRecord{
					Cycle: c, Src: src, Dst: uniformDst(r, spec.Nodes, src), DataLen: spec.MsgLen,
				})
			}
		}
	}
	return t
}

// GenHotspot materializes a destination-skewed stream: a fraction of
// all messages converge on a few hot nodes (chosen deterministically
// from the seed), the classic adversarial load for adaptive routing.
func GenHotspot(spec TraceSpec) *Trace {
	spec.validate("hotspot")
	h := spec.Hotspot
	if h.Fraction <= 0 {
		h.Fraction = 0.3
	}
	if h.HotNodes <= 0 {
		h.HotNodes = 1
	}
	if h.HotNodes > spec.Nodes {
		h.HotNodes = spec.Nodes
	}
	r := rng.New(spec.Seed)
	perm := make([]int, spec.Nodes)
	r.Perm(perm)
	hot := perm[:h.HotNodes]
	t := &Trace{
		Name:  fmt.Sprintf("hotspot(n=%d,rate=%g,frac=%g,hot=%d)", spec.Nodes, spec.Rate, h.Fraction, h.HotNodes),
		Nodes: spec.Nodes,
	}
	for c := int64(0); c < spec.Cycles; c++ {
		for n := 0; n < spec.Nodes; n++ {
			if !r.Bernoulli(spec.Rate) {
				continue
			}
			src := topology.NodeID(n)
			var dst topology.NodeID
			if r.Bernoulli(h.Fraction) {
				dst = topology.NodeID(hot[r.Intn(len(hot))])
				if dst == src {
					dst = uniformDst(r, spec.Nodes, src)
				}
			} else {
				dst = uniformDst(r, spec.Nodes, src)
			}
			t.Records = append(t.Records, TraceRecord{Cycle: c, Src: src, Dst: dst, DataLen: spec.MsgLen})
		}
	}
	return t
}

// GenIncast materializes periodic incast storms: every interval
// (spec.Storm.ReshuffleEvery cycles) a freshly chosen target is
// bombarded by every other node simultaneously (the fan-in collapse
// pattern of reduction and shuffle phases). Between storms the
// background is uniform traffic at the nominal rate.
func GenIncast(spec TraceSpec) *Trace {
	spec.validate("incast")
	period := spec.Storm.ReshuffleEvery
	if period <= 0 {
		period = 1000
	}
	r := rng.New(spec.Seed)
	t := &Trace{
		Name:  fmt.Sprintf("incast(n=%d,rate=%g,period=%d)", spec.Nodes, spec.Rate, period),
		Nodes: spec.Nodes,
	}
	target := 0
	for c := int64(0); c < spec.Cycles; c++ {
		if c%period == 0 {
			target = r.Intn(spec.Nodes)
			for n := 0; n < spec.Nodes; n++ {
				if n == target {
					continue
				}
				t.Records = append(t.Records, TraceRecord{
					Cycle: c, Src: topology.NodeID(n), Dst: topology.NodeID(target), DataLen: spec.MsgLen,
				})
			}
			continue
		}
		for n := 0; n < spec.Nodes; n++ {
			if r.Bernoulli(spec.Rate) {
				src := topology.NodeID(n)
				t.Records = append(t.Records, TraceRecord{
					Cycle: c, Src: src, Dst: uniformDst(r, spec.Nodes, src), DataLen: spec.MsgLen,
				})
			}
		}
	}
	return t
}

// GenPermutationStorm materializes permutation traffic: every node
// sends only to its partner under a random permutation, reshuffled
// every spec.Storm.ReshuffleEvery cycles. Permutations concentrate
// every flow on a single path pair, the stress pattern where adaptive
// routing's choice of output matters most.
func GenPermutationStorm(spec TraceSpec) *Trace {
	spec.validate("permutation-storm")
	every := spec.Storm.ReshuffleEvery
	if every <= 0 {
		every = 1000
	}
	r := rng.New(spec.Seed)
	perm := make([]int, spec.Nodes)
	t := &Trace{
		Name:  fmt.Sprintf("permstorm(n=%d,rate=%g,every=%d)", spec.Nodes, spec.Rate, every),
		Nodes: spec.Nodes,
	}
	for c := int64(0); c < spec.Cycles; c++ {
		if c%every == 0 {
			r.Perm(perm)
		}
		for n := 0; n < spec.Nodes; n++ {
			dst := perm[n]
			if dst == n {
				continue // fixed point: this node sits the interval out
			}
			if r.Bernoulli(spec.Rate) {
				t.Records = append(t.Records, TraceRecord{
					Cycle: c, Src: topology.NodeID(n), Dst: topology.NodeID(dst), DataLen: spec.MsgLen,
				})
			}
		}
	}
	return t
}
