package workload

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/network"
)

// Result summarizes one workload execution.
type Result struct {
	// Completed reports whether the workload finished within the cycle
	// budget.
	Completed bool
	// CompletionCycles is the cycle at which the workload finished (or
	// the budget, if it did not).
	CompletionCycles int64
	// Messages and DataFlits count the workload's traffic.
	Messages  int64
	DataFlits int64
	// Kills and Retries are the CR protocol events incurred.
	Kills   int64
	Retries int64
}

// Drive couples a workload to a network and runs it to completion (or
// the maxCycles budget). The network must be freshly constructed; the
// driver owns its cycle loop.
func Drive(net *network.Network, w Workload, maxCycles int64) (Result, error) {
	nodes := net.Topology().Nodes()
	tagOf := make(map[flit.MessageID]Tag)
	var nextID flit.MessageID
	var res Result

	submit := func(msgs []Msg) error {
		for _, m := range msgs {
			if err := m.validate(nodes); err != nil {
				return err
			}
			nextID++
			tagOf[nextID] = m.Tag
			res.Messages++
			res.DataFlits += int64(m.DataLen)
			net.SubmitMessage(flit.Message{
				ID:         nextID,
				Src:        m.Src,
				Dst:        m.Dst,
				DataLen:    m.DataLen,
				CreateTime: net.Cycle(),
			})
		}
		return nil
	}

	if err := submit(w.Start()); err != nil {
		return res, err
	}
	if w.Done() {
		return res, fmt.Errorf("workload %s done before any traffic", w.Name())
	}
	for net.Cycle() < maxCycles {
		net.Step()
		for _, d := range net.DrainDeliveries() {
			tag, ok := tagOf[d.Msg]
			if !ok {
				return res, fmt.Errorf("workload: delivery for unknown message %d", d.Msg)
			}
			delete(tagOf, d.Msg)
			if err := submit(w.Deliver(tag)); err != nil {
				return res, err
			}
		}
		if w.Done() {
			res.Completed = true
			break
		}
	}
	res.CompletionCycles = net.Cycle()
	is := net.InjectorStats()
	res.Kills = is.Kills
	res.Retries = is.Retries
	if res.Completed && len(tagOf) != 0 {
		return res, fmt.Errorf("workload: finished with %d undelivered messages", len(tagOf))
	}
	return res, nil
}
