package workload

import (
	"fmt"

	"crnet/internal/topology"
)

// AllToAll is a personalized all-to-all exchange (the communication core
// of FFT transposes and sample-sort): every node sends one message to
// every other node, with at most Window sends outstanding per source.
// The workload finishes when every message has been delivered.
type AllToAll struct {
	Nodes  int
	MsgLen int
	// Window bounds outstanding sends per source; 0 means 4. Larger
	// windows expose more concurrency and more contention.
	Window int

	nextPeer  []int // next destination offset per source
	remaining int
	tagSrc    map[Tag]topology.NodeID
	nextTag   Tag
}

// NewAllToAll constructs the exchange. It panics on invalid parameters.
func NewAllToAll(nodes, msgLen, window int) *AllToAll {
	if nodes < 2 || msgLen < 1 || window < 0 {
		panic(fmt.Sprintf("workload: alltoall nodes=%d msgLen=%d window=%d", nodes, msgLen, window))
	}
	if window == 0 {
		window = 4
	}
	return &AllToAll{
		Nodes:     nodes,
		MsgLen:    msgLen,
		Window:    window,
		nextPeer:  make([]int, nodes),
		remaining: nodes * (nodes - 1),
		tagSrc:    make(map[Tag]topology.NodeID),
	}
}

// Name implements Workload.
func (a *AllToAll) Name() string {
	return fmt.Sprintf("alltoall(n=%d,len=%d,win=%d)", a.Nodes, a.MsgLen, a.Window)
}

// next returns src's next message, or ok=false when src has sent all.
func (a *AllToAll) next(src topology.NodeID) (Msg, bool) {
	off := a.nextPeer[src]
	if off >= a.Nodes-1 {
		return Msg{}, false
	}
	a.nextPeer[src]++
	// Staggered schedule: node i's k-th partner is i+k+1 mod n, so no
	// destination is hit by everyone at once.
	dst := topology.NodeID((int(src) + off + 1) % a.Nodes)
	a.nextTag++
	a.tagSrc[a.nextTag] = src
	return Msg{Tag: a.nextTag, Src: src, Dst: dst, DataLen: a.MsgLen}, true
}

// Start implements Workload.
func (a *AllToAll) Start() []Msg {
	var msgs []Msg
	for src := 0; src < a.Nodes; src++ {
		for w := 0; w < a.Window; w++ {
			if m, ok := a.next(topology.NodeID(src)); ok {
				msgs = append(msgs, m)
			}
		}
	}
	return msgs
}

// Deliver implements Workload: each delivery frees one window slot at
// its source.
func (a *AllToAll) Deliver(tag Tag) []Msg {
	src, ok := a.tagSrc[tag]
	if !ok {
		panic(fmt.Sprintf("workload: unknown alltoall tag %d", tag))
	}
	delete(a.tagSrc, tag)
	a.remaining--
	if m, ok := a.next(src); ok {
		return []Msg{m}
	}
	return nil
}

// Done implements Workload.
func (a *AllToAll) Done() bool { return a.remaining == 0 }

// RPC models request/response client-server traffic: every client node
// issues Rounds sequential requests (short messages) to a fixed set of
// server nodes, each answered with a longer response; a client sends its
// next request only after receiving the previous response. This is the
// software pattern whose buffer-allocation and retry layers the paper
// argues CR/FCR eliminate.
type RPC struct {
	Nodes      int
	Servers    []topology.NodeID
	Rounds     int
	RequestLen int
	ReplyLen   int

	clientRound []int // completed rounds per client; -1 for server nodes
	inFlight    map[Tag]rpcRef
	remaining   int
	nextTag     Tag
}

type rpcRef struct {
	client  topology.NodeID
	server  topology.NodeID
	isReply bool
}

// NewRPC constructs the client/server workload. Every non-server node is
// a client of server `client mod len(servers)`.
func NewRPC(nodes int, servers []topology.NodeID, rounds, reqLen, repLen int) *RPC {
	if nodes < 2 || len(servers) == 0 || rounds < 1 || reqLen < 1 || repLen < 1 {
		panic(fmt.Sprintf("workload: rpc nodes=%d servers=%d rounds=%d", nodes, len(servers), rounds))
	}
	r := &RPC{
		Nodes:       nodes,
		Servers:     servers,
		Rounds:      rounds,
		RequestLen:  reqLen,
		ReplyLen:    repLen,
		clientRound: make([]int, nodes),
		inFlight:    make(map[Tag]rpcRef),
	}
	isServer := map[topology.NodeID]bool{}
	for _, s := range servers {
		isServer[s] = true
	}
	clients := 0
	for n := 0; n < nodes; n++ {
		if isServer[topology.NodeID(n)] {
			r.clientRound[n] = -1
			continue
		}
		clients++
	}
	if clients == 0 {
		panic("workload: rpc has no clients")
	}
	r.remaining = clients * rounds
	return r
}

// Name implements Workload.
func (r *RPC) Name() string {
	return fmt.Sprintf("rpc(servers=%d,rounds=%d,%d/%d)", len(r.Servers), r.Rounds, r.RequestLen, r.ReplyLen)
}

func (r *RPC) serverOf(client topology.NodeID) topology.NodeID {
	return r.Servers[int(client)%len(r.Servers)]
}

func (r *RPC) request(client topology.NodeID) Msg {
	server := r.serverOf(client)
	r.nextTag++
	r.inFlight[r.nextTag] = rpcRef{client: client, server: server}
	return Msg{Tag: r.nextTag, Src: client, Dst: server, DataLen: r.RequestLen}
}

// Start implements Workload.
func (r *RPC) Start() []Msg {
	var msgs []Msg
	for n := 0; n < r.Nodes; n++ {
		if r.clientRound[n] >= 0 {
			msgs = append(msgs, r.request(topology.NodeID(n)))
		}
	}
	return msgs
}

// Deliver implements Workload.
func (r *RPC) Deliver(tag Tag) []Msg {
	ref, ok := r.inFlight[tag]
	if !ok {
		panic(fmt.Sprintf("workload: unknown rpc tag %d", tag))
	}
	delete(r.inFlight, tag)
	if !ref.isReply {
		// Request arrived at the server: send the response.
		r.nextTag++
		r.inFlight[r.nextTag] = rpcRef{client: ref.client, server: ref.server, isReply: true}
		return []Msg{{Tag: r.nextTag, Src: ref.server, Dst: ref.client, DataLen: r.ReplyLen}}
	}
	// Response arrived at the client: round complete.
	r.remaining--
	c := int(ref.client)
	r.clientRound[c]++
	if r.clientRound[c] < r.Rounds {
		return []Msg{r.request(ref.client)}
	}
	return nil
}

// Done implements Workload.
func (r *RPC) Done() bool { return r.remaining == 0 }
