package workload

import (
	"errors"
	"testing"

	"crnet/internal/flit"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
)

func testSpec(seed uint64) TraceSpec {
	return TraceSpec{Nodes: 16, Cycles: 2000, Rate: 0.02, MsgLen: 8, Seed: seed}
}

func TestGeneratorsDeterministicAndValid(t *testing.T) {
	gens := []struct {
		name string
		gen  func(TraceSpec) *Trace
	}{
		{"uniform", GenUniform},
		{"bursty", GenBursty},
		{"diurnal", GenDiurnal},
		{"hotspot", GenHotspot},
		{"incast", GenIncast},
		{"permstorm", GenPermutationStorm},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			a, b := g.gen(testSpec(7)), g.gen(testSpec(7))
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatal("same seed produced different traces")
			}
			if len(a.Records) == 0 {
				t.Fatal("empty trace")
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			c := g.gen(testSpec(8))
			if a.Fingerprint() == c.Fingerprint() {
				t.Fatal("different seeds produced identical traces")
			}
		})
	}
}

func TestTraceBinaryRoundTrip(t *testing.T) {
	orig := GenBursty(testSpec(3))
	data := orig.EncodeBinary()
	got, err := DecodeTrace("test", data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Nodes != orig.Nodes || len(got.Records) != len(orig.Records) {
		t.Fatalf("round trip changed shape: %q/%d/%d != %q/%d/%d",
			got.Name, got.Nodes, len(got.Records), orig.Name, orig.Nodes, len(orig.Records))
	}
	if got.Fingerprint() != orig.Fingerprint() {
		t.Fatal("round trip changed contents")
	}
}

func TestTraceDecodeRejectsCorruption(t *testing.T) {
	data := GenUniform(testSpec(1)).EncodeBinary()
	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bit-flip", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mangle(append([]byte(nil), data...))
			_, err := DecodeTrace("bad", bad)
			if err == nil {
				t.Fatal("corrupt trace accepted")
			}
			var ferr *snapshot.FormatError
			if !errors.As(err, &ferr) {
				t.Fatalf("error %v is not a *snapshot.FormatError", err)
			}
		})
	}
}

// recordingSink captures submissions for replay comparison.
type recordingSink struct{ msgs []flit.Message }

func (s *recordingSink) SubmitMessage(m flit.Message) { s.msgs = append(s.msgs, m) }

func TestReplayerPositionRoundTrip(t *testing.T) {
	trace := GenHotspot(testSpec(5))

	// Unbroken replay of 3000 cycles (looping past the 2000-cycle span).
	ref := NewReplayer(trace, true)
	var refSink recordingSink
	for c := int64(0); c < 3000; c++ {
		ref.Tick(&refSink, c)
	}

	// Broken replay: checkpoint at 1500, restore into a fresh replayer.
	first := NewReplayer(trace, true)
	var sink recordingSink
	for c := int64(0); c < 1500; c++ {
		first.Tick(&sink, c)
	}
	var e snapshot.Encoder
	first.SaveState(&e)
	resumed := NewReplayer(trace, true)
	if err := resumed.LoadState(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	for c := int64(1500); c < 3000; c++ {
		resumed.Tick(&sink, c)
	}

	if len(sink.msgs) != len(refSink.msgs) {
		t.Fatalf("resumed replay submitted %d messages, unbroken %d", len(sink.msgs), len(refSink.msgs))
	}
	for i := range refSink.msgs {
		if sink.msgs[i] != refSink.msgs[i] {
			t.Fatalf("submission %d diverged: %+v != %+v", i, sink.msgs[i], refSink.msgs[i])
		}
	}
}

func TestReplayerRejectsForeignTrace(t *testing.T) {
	a := NewReplayer(GenUniform(testSpec(1)), false)
	var sink recordingSink
	a.Tick(&sink, 0)
	var e snapshot.Encoder
	a.SaveState(&e)

	b := NewReplayer(GenUniform(testSpec(2)), false)
	if err := b.LoadState(snapshot.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("position restored under a different trace")
	}
	c := NewReplayer(GenUniform(testSpec(1)), true)
	if err := c.LoadState(snapshot.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("position restored under a different loop mode")
	}
}

func TestReplayerDoneAndLoop(t *testing.T) {
	trace := &Trace{Name: "tiny", Nodes: 4, Records: []TraceRecord{
		{Cycle: 0, Src: 0, Dst: 1, DataLen: 2},
		{Cycle: 5, Src: 2, Dst: 3, DataLen: 2},
	}}
	r := NewReplayer(trace, false)
	var sink recordingSink
	for c := int64(0); c < 10; c++ {
		r.Tick(&sink, c)
	}
	if !r.Done() || len(sink.msgs) != 2 {
		t.Fatalf("done=%t msgs=%d, want true/2", r.Done(), len(sink.msgs))
	}

	loop := NewReplayer(trace, true)
	sink.msgs = sink.msgs[:0]
	for c := int64(0); c < 12; c++ { // duration 6: two full epochs
		loop.Tick(&sink, c)
	}
	if loop.Done() {
		t.Fatal("looping replayer reported done")
	}
	if len(sink.msgs) != 4 {
		t.Fatalf("looping replay submitted %d messages over two epochs, want 4", len(sink.msgs))
	}
	if sink.msgs[2].CreateTime != 6 {
		t.Fatalf("second epoch first submission at cycle %d, want 6", sink.msgs[2].CreateTime)
	}
}

func TestTraceForDerivesRate(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	spec := TraceFor(topo, 0.2, 16, 1000, 9, 1.0)
	if spec.Nodes != topo.Nodes() || spec.Cycles != 1000 {
		t.Fatalf("spec shape %+v", spec)
	}
	want := 0.2 * 1.0 / 16
	if spec.Rate != want {
		t.Fatalf("rate = %g, want %g", spec.Rate, want)
	}
}
