package workload

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

func crNet(topo topology.Topology) *network.Network {
	return network.New(network.Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:    true,
	})
}

func dorNet(topo topology.Topology) *network.Network {
	return network.New(network.Config{
		Topo:     topo,
		Alg:      routing.DOR{},
		Protocol: core.Plain,
		BufDepth: 4,
		Check:    true,
	})
}

func TestStencilCompletes(t *testing.T) {
	g := topology.NewTorus(4, 2)
	w := NewStencil(g, 5, 8)
	res, err := Drive(crNet(g), w, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("stencil did not complete: %+v", res)
	}
	// 16 nodes x 4 neighbors x 5 iterations halo messages.
	if res.Messages != 16*4*5 {
		t.Fatalf("messages = %d, want %d", res.Messages, 16*4*5)
	}
	if res.DataFlits != res.Messages*8 {
		t.Fatalf("flits = %d", res.DataFlits)
	}
}

func TestStencilOnMeshHasFewerEdgeNeighbors(t *testing.T) {
	g := topology.NewMesh(3, 2)
	w := NewStencil(g, 2, 4)
	// Corner nodes have 2 neighbors, edges 3, center 4: total directed
	// halo messages per iteration = sum of degrees = 2*edges = 2*12=24.
	start := w.Start()
	if len(start) != 24 {
		t.Fatalf("start messages = %d, want 24", len(start))
	}
	res, err := Drive(dorNet(g), w, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Messages != 48 {
		t.Fatalf("mesh stencil result %+v", res)
	}
}

func TestStencilIterationOrderingPerNode(t *testing.T) {
	// With CR's per-channel FIFO and the stencil's ack discipline, the
	// workload must never see a halo from iteration k+2 while in k.
	// (The workload panics internally on unknown tags; completing at all
	// verifies the bookkeeping.)
	g := topology.NewTorus(4, 2)
	w := NewStencil(g, 10, 4)
	res, err := Drive(crNet(g), w, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("stencil incomplete")
	}
}

func TestAllToAllCompletesAndCountsExact(t *testing.T) {
	g := topology.NewTorus(4, 2)
	w := NewAllToAll(g.Nodes(), 8, 2)
	res, err := Drive(crNet(g), w, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("alltoall incomplete: %+v", res)
	}
	want := int64(16 * 15)
	if res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
}

func TestAllToAllWindowLimitsStartBurst(t *testing.T) {
	w := NewAllToAll(8, 4, 3)
	if got := len(w.Start()); got != 8*3 {
		t.Fatalf("start burst = %d, want 24", got)
	}
	w2 := NewAllToAll(8, 4, 100) // window larger than peers
	if got := len(w2.Start()); got != 8*7 {
		t.Fatalf("uncapped start = %d, want 56", got)
	}
}

func TestRPCCompletes(t *testing.T) {
	g := topology.NewTorus(4, 2)
	servers := []topology.NodeID{0, 5}
	w := NewRPC(g.Nodes(), servers, 3, 2, 16)
	res, err := Drive(crNet(g), w, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("rpc incomplete: %+v", res)
	}
	// 14 clients x 3 rounds x (request + reply).
	if res.Messages != 14*3*2 {
		t.Fatalf("messages = %d, want %d", res.Messages, 14*3*2)
	}
	wantFlits := int64(14 * 3 * (2 + 16))
	if res.DataFlits != wantFlits {
		t.Fatalf("flits = %d, want %d", res.DataFlits, wantFlits)
	}
}

func TestRPCSequentialRounds(t *testing.T) {
	// A client must never have two outstanding requests: after Start,
	// exactly one message per client.
	w := NewRPC(16, []topology.NodeID{3}, 5, 2, 8)
	if got := len(w.Start()); got != 15 {
		t.Fatalf("start = %d requests, want 15", got)
	}
}

func TestWorkloadValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"stencil 1-D":     func() { NewStencil(topology.NewTorus(4, 1), 1, 1) },
		"stencil iters":   func() { NewStencil(topology.NewTorus(4, 2), 0, 1) },
		"alltoall nodes":  func() { NewAllToAll(1, 4, 1) },
		"rpc no servers":  func() { NewRPC(4, nil, 1, 1, 1) },
		"rpc all servers": func() { NewRPC(2, []topology.NodeID{0, 1}, 1, 1, 1) },
		"rpc zero rounds": func() { NewRPC(4, []topology.NodeID{0}, 0, 1, 1) },
		"rpc zero replen": func() { NewRPC(4, []topology.NodeID{0}, 1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDriveBudgetExhaustion(t *testing.T) {
	g := topology.NewTorus(4, 2)
	w := NewAllToAll(g.Nodes(), 16, 4)
	res, err := Drive(crNet(g), w, 50) // far too few cycles
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("workload claimed completion in 50 cycles")
	}
	if res.CompletionCycles < 50 {
		t.Fatalf("budget cycles = %d", res.CompletionCycles)
	}
}

func TestDriveRejectsInvalidWorkloadMessages(t *testing.T) {
	g := topology.NewTorus(4, 2)
	bad := badWorkload{}
	if _, err := Drive(crNet(g), bad, 100); err == nil {
		t.Fatal("invalid workload message accepted")
	}
}

type badWorkload struct{}

func (badWorkload) Name() string      { return "bad" }
func (badWorkload) Start() []Msg      { return []Msg{{Tag: 1, Src: 0, Dst: 0, DataLen: 1}} }
func (badWorkload) Deliver(Tag) []Msg { return nil }
func (badWorkload) Done() bool        { return false }

func TestWorkloadDeterministicCompletion(t *testing.T) {
	g := topology.NewTorus(4, 2)
	run := func() int64 {
		w := NewAllToAll(g.Nodes(), 8, 2)
		res, err := Drive(crNet(g), w, 400000)
		if err != nil || !res.Completed {
			t.Fatalf("run failed: %v %+v", err, res)
		}
		return res.CompletionCycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("completion cycles diverged: %d vs %d", a, b)
	}
}

func TestWorkloadNames(t *testing.T) {
	g := topology.NewTorus(4, 2)
	for _, w := range []Workload{
		NewStencil(g, 1, 1),
		NewAllToAll(4, 1, 1),
		NewRPC(4, []topology.NodeID{0}, 1, 1, 1),
	} {
		if w.Name() == "" {
			t.Error("empty workload name")
		}
	}
}
