// Package workload models closed-loop parallel applications on top of
// the network: communication phases whose next messages depend on
// previous deliveries. Where package traffic measures the network with
// open-loop synthetic loads, workload measures what the paper's
// introduction actually motivates — how long application communication
// patterns take end to end, where a blocked or lost message stalls the
// computation that waits for it.
//
// A Workload emits messages and consumes delivery notifications; the
// Driver (see driver.go) couples it to a network and reports completion
// time. All workloads are deterministic given their configuration.
package workload

import (
	"fmt"

	"crnet/internal/topology"
)

// Workload is a closed-loop communication pattern.
//
// The driver calls Start once, then Deliver for every message delivered
// to its destination node; both return new messages to submit (the
// driver assigns IDs and stamps creation times). Done reports global
// completion.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Start returns the initial messages.
	Start() []Msg
	// Deliver notifies the workload that a previously returned message
	// reached its destination, and returns follow-up messages.
	Deliver(tag Tag) []Msg
	// Done reports whether the workload has finished.
	Done() bool
}

// Tag identifies a workload message across the network boundary.
type Tag int64

// Msg is a workload-level message request. DataLen is in flits.
type Msg struct {
	Tag     Tag
	Src     topology.NodeID
	Dst     topology.NodeID
	DataLen int
}

func (m Msg) validate(nodes int) error {
	if m.DataLen < 1 {
		return fmt.Errorf("workload: message tag %d has length %d", m.Tag, m.DataLen)
	}
	if m.Src == m.Dst || m.Src < 0 || int(m.Src) >= nodes || m.Dst < 0 || int(m.Dst) >= nodes {
		return fmt.Errorf("workload: message tag %d endpoints %d->%d invalid", m.Tag, m.Src, m.Dst)
	}
	return nil
}

// Stencil is an iterative nearest-neighbor halo exchange on a 2-D grid
// (the communication skeleton of Jacobi/CFD codes): every node sends a
// halo message to each grid neighbor each iteration and advances to the
// next iteration once it has sent and received all halos of the current
// one (bulk-synchronous per node, no global barrier).
type Stencil struct {
	Grid       *topology.Grid
	Iterations int
	HaloLen    int // flits per halo message

	node    []stencilNode
	done    int
	tagMeta map[Tag]stencilRef
	nextTag Tag
}

type stencilNode struct {
	iter     int // current iteration (0-based); == Iterations when finished
	sendAcks int // halo sends of this iteration confirmed delivered
	recvs    int // halo receives of this iteration
	pendSend []Msg
	finished bool
}

type stencilRef struct {
	src, dst topology.NodeID
	iter     int
}

// NewStencil constructs a stencil workload. It panics on invalid
// parameters (workloads are constructed from static experiment configs).
func NewStencil(g *topology.Grid, iterations, haloLen int) *Stencil {
	if g.Dims() != 2 {
		panic("workload: stencil needs a 2-D grid")
	}
	if iterations < 1 || haloLen < 1 {
		panic(fmt.Sprintf("workload: stencil iterations=%d haloLen=%d", iterations, haloLen))
	}
	return &Stencil{
		Grid:       g,
		Iterations: iterations,
		HaloLen:    haloLen,
		node:       make([]stencilNode, g.Nodes()),
		tagMeta:    make(map[Tag]stencilRef),
	}
}

// Name implements Workload.
func (s *Stencil) Name() string {
	return fmt.Sprintf("stencil(%dx%d,iters=%d,halo=%d)", s.Grid.Radix(), s.Grid.Radix(), s.Iterations, s.HaloLen)
}

// neighbors returns the distinct grid neighbors of n (4 on a torus;
// 2-4 on a mesh; duplicates removed on radix-2 tori).
func (s *Stencil) neighbors(n topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	for p := topology.Port(0); int(p) < s.Grid.Degree(); p++ {
		next, ok := s.Grid.Neighbor(n, p)
		if !ok || next == n {
			continue
		}
		dup := false
		for _, o := range out {
			if o == next {
				dup = true
			}
		}
		if !dup {
			out = append(out, next)
		}
	}
	return out
}

// Start implements Workload.
func (s *Stencil) Start() []Msg {
	var msgs []Msg
	for n := range s.node {
		msgs = append(msgs, s.halosOf(topology.NodeID(n))...)
	}
	return msgs
}

// halosOf creates node n's halo messages for its current iteration.
func (s *Stencil) halosOf(n topology.NodeID) []Msg {
	var msgs []Msg
	for _, nb := range s.neighbors(n) {
		s.nextTag++
		tag := s.nextTag
		s.tagMeta[tag] = stencilRef{src: n, dst: nb, iter: s.node[n].iter}
		msgs = append(msgs, Msg{Tag: tag, Src: n, Dst: nb, DataLen: s.HaloLen})
	}
	return msgs
}

// Deliver implements Workload. Delivery of a halo counts as a receive at
// the destination and a send-completion at the source; a node advances
// when both counts reach its neighbor count for the iteration.
func (s *Stencil) Deliver(tag Tag) []Msg {
	ref, ok := s.tagMeta[tag]
	if !ok {
		panic(fmt.Sprintf("workload: unknown stencil tag %d", tag))
	}
	delete(s.tagMeta, tag)
	var out []Msg
	out = append(out, s.sendDone(ref.src)...)
	out = append(out, s.recvDone(ref.dst, ref.iter)...)
	return out
}

func (s *Stencil) sendDone(n topology.NodeID) []Msg {
	st := &s.node[n]
	st.sendAcks++
	return s.maybeAdvance(n)
}

func (s *Stencil) recvDone(n topology.NodeID, iter int) []Msg {
	st := &s.node[n]
	if iter != st.iter {
		// A neighbor raced ahead: its iteration-k+1 halo arrived while n
		// is still in iteration k. Buffer it by counting it when n gets
		// there — model with a simple carry.
		st.pendSend = append(st.pendSend, Msg{}) // counted below via len
		return nil
	}
	st.recvs++
	return s.maybeAdvance(n)
}

func (s *Stencil) maybeAdvance(n topology.NodeID) []Msg {
	st := &s.node[n]
	need := len(s.neighbors(n))
	for st.recvs >= need && st.sendAcks >= need {
		st.iter++
		st.recvs -= need
		st.sendAcks -= need
		// Apply halos that arrived early for the new iteration.
		early := len(st.pendSend)
		st.pendSend = st.pendSend[:0]
		st.recvs += early
		if st.iter >= s.Iterations {
			if !st.finished {
				st.finished = true
				s.done++
			}
			return nil
		}
		return s.halosOf(n)
	}
	return nil
}

// Done implements Workload.
func (s *Stencil) Done() bool { return s.done == len(s.node) }
