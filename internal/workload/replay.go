package workload

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
)

// Submitter is the sink a Replayer feeds; network.Network satisfies it.
type Submitter interface {
	SubmitMessage(m flit.Message)
}

// Replayer feeds a materialized Trace into a network, one cycle at a
// time. Its entire position is three integers (record index, loop
// epoch, next message id), which is what makes trace-driven services
// checkpointable: SaveState/LoadState capture the position exactly, and
// a restored replayer submits the same messages with the same ids at
// the same cycles as one that never stopped.
type Replayer struct {
	trace *Trace
	loop  bool

	idx     int   // next record to submit
	epoch   int64 // completed loops (loop mode)
	nextMsg flit.MessageID
}

// NewReplayer returns a replayer over trace. With loop true the trace
// repeats forever, each epoch shifted by the trace duration; otherwise
// the replayer runs dry after the last record. The trace must validate.
func NewReplayer(trace *Trace, loop bool) *Replayer {
	if err := trace.Validate(); err != nil {
		panic(err)
	}
	if loop && trace.Duration() == 0 {
		panic("workload: cannot loop an empty trace")
	}
	return &Replayer{trace: trace, loop: loop}
}

// Trace returns the trace being replayed.
func (r *Replayer) Trace() *Trace { return r.trace }

// Done reports whether a non-looping replay has submitted every record.
func (r *Replayer) Done() bool {
	return !r.loop && r.idx >= len(r.trace.Records)
}

// Submitted returns how many messages have been submitted so far.
func (r *Replayer) Submitted() int64 { return int64(r.nextMsg) }

// Tick submits every record due at the given cycle and returns how many
// it submitted. Cycles must be visited in nondecreasing order; records
// whose time was skipped are submitted on the next call (late, but
// never lost and always in order).
//
//cr:hotpath trace replay tick, once per service cycle
func (r *Replayer) Tick(net Submitter, cycle int64) int {
	n := 0
	for {
		if r.idx >= len(r.trace.Records) {
			if !r.loop {
				return n
			}
			r.idx = 0
			r.epoch++
		}
		rec := &r.trace.Records[r.idx]
		due := rec.Cycle + r.epoch*r.trace.Duration()
		if due > cycle {
			return n
		}
		r.idx++
		r.nextMsg++
		net.SubmitMessage(flit.Message{
			ID:         r.nextMsg,
			Src:        rec.Src,
			Dst:        rec.Dst,
			DataLen:    rec.DataLen,
			CreateTime: cycle,
		})
		n++
	}
}

// SaveState appends the replayer's position to a snapshot, prefixed
// with the trace fingerprint so a restore under a different trace fails
// loudly.
func (r *Replayer) SaveState(e *snapshot.Encoder) {
	e.U64(r.trace.Fingerprint())
	e.Bool(r.loop)
	e.Int(r.idx)
	e.Varint(r.epoch)
	e.U64(uint64(r.nextMsg))
}

// LoadState restores a position written by SaveState. The replayer must
// hold the same trace (by fingerprint) and loop mode.
func (r *Replayer) LoadState(d *snapshot.Decoder) error {
	fp := d.U64()
	loop := d.Bool()
	idx := d.Int()
	epoch := d.Varint()
	next := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if want := r.trace.Fingerprint(); fp != want {
		return fmt.Errorf("workload: snapshot trace fingerprint %016x does not match %q (%016x)",
			fp, r.trace.Name, want)
	}
	if loop != r.loop {
		return fmt.Errorf("workload: snapshot loop=%t, replayer loop=%t", loop, r.loop)
	}
	if idx < 0 || idx > len(r.trace.Records) || epoch < 0 {
		return fmt.Errorf("workload: snapshot replay position idx=%d epoch=%d invalid", idx, epoch)
	}
	r.idx = idx
	r.epoch = epoch
	r.nextMsg = flit.MessageID(next)
	return nil
}

// TraceFor sizes a TraceSpec to a topology: node count from the
// topology, rate derived from the per-node flit capacity so that load
// is expressed as a fraction of saturation exactly like the open-loop
// traffic package does (rate = load * capacity / msgLen).
func TraceFor(topo topology.Topology, load float64, msgLen int, cycles int64, seed uint64, capacityFlitsPerNode float64) TraceSpec {
	if load <= 0 || msgLen < 1 || capacityFlitsPerNode <= 0 {
		panic(fmt.Sprintf("workload: TraceFor load=%g msgLen=%d capacity=%g", load, msgLen, capacityFlitsPerNode))
	}
	rate := load * capacityFlitsPerNode / float64(msgLen)
	if rate > 1 {
		rate = 1
	}
	return TraceSpec{
		Nodes:  topo.Nodes(),
		Cycles: cycles,
		Rate:   rate,
		MsgLen: msgLen,
		Seed:   seed,
	}
}
