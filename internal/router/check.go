package router

import "fmt"

// CheckInvariants verifies the router's internal consistency and returns
// a descriptive error on the first violation. Tests call it between
// cycles; production runs skip it.
//
// Invariants:
//   - buffer occupancy within [0, the VC's organization cap]
//   - network output credits within [0, window]; static FIFO pins the
//     window at BufDepth, the shared organizations bound it by
//     [reserve, maxWindow]. The lower bound is unconditional because
//     windows only shrink on a worm's normal release, which is
//     synchronous with its final tail refund (kill teardowns freeze
//     the tenure instead of shrinking — see Router.purge).
//   - every held output VC's owner input VC is active, claims the same
//     worm, and points back at the output
//   - every routed input VC's allocated output VC is held by its worm
//   - inactive input VCs hold no flits and no allocation
//   - the cached buffered-flit counter matches the sum over input VCs
//   - the buffer store's internal audit passes: slot conservation (per
//     pool, Σ VC chain lengths + free-list length == pool size), chain
//     lengths matching the router's occupancy counts, and the granted-
//     window ledger within bounds (shared organizations)
func (r *Router) CheckInvariants() error {
	total := 0
	for i := range r.ins {
		v := &r.ins[i]
		total += v.count
		if v.count < 0 || v.count > r.store.capOf(i) {
			return fmt.Errorf("router %d: input (%d,%d) occupancy %d", r.id, v.p, v.vc, v.count)
		}
		if !v.active {
			if v.count != 0 {
				return fmt.Errorf("router %d: inactive input (%d,%d) holds %d flits", r.id, v.p, v.vc, v.count)
			}
			if v.routed {
				return fmt.Errorf("router %d: inactive input (%d,%d) holds an allocation", r.id, v.p, v.vc)
			}
			continue
		}
		if v.routed {
			o := &r.outs[v.outP].vcs[v.outV]
			if !o.held || o.worm != v.worm || o.ownerP != v.p || o.ownerV != v.vc {
				return fmt.Errorf("router %d: input (%d,%d) allocation to (%d,%d) inconsistent",
					r.id, v.p, v.vc, v.outP, v.outV)
			}
		}
	}
	if total != r.buffered {
		return fmt.Errorf("router %d: buffered counter %d, actual %d", r.id, r.buffered, total)
	}
	wLo, wHi := r.cfg.initWindow(), r.cfg.maxWindow(r.deg)
	for p := range r.outs {
		out := &r.outs[p]
		for vc := range out.vcs {
			o := &out.vcs[vc]
			if !out.ejection && (o.window < wLo || o.window > wHi) {
				return fmt.Errorf("router %d: output (%d,%d) window %d outside [%d,%d]",
					r.id, p, vc, o.window, wLo, wHi)
			}
			if !out.ejection && (o.credit < 0 || o.credit > o.window) {
				return fmt.Errorf("router %d: output (%d,%d) credit %d with window %d",
					r.id, p, vc, o.credit, o.window)
			}
			if o.held {
				v := r.in(o.ownerP, o.ownerV)
				if !v.active || v.worm != o.worm || !v.routed || v.outP != p || v.outV != vc {
					return fmt.Errorf("router %d: output (%d,%d) owner (%d,%d) inconsistent",
						r.id, p, vc, o.ownerP, o.ownerV)
				}
			}
		}
	}
	if err := r.store.check(func(j int) int { return r.ins[j].count }); err != nil {
		return fmt.Errorf("router %d: buffer store: %w", r.id, err)
	}
	return nil
}

// CreditOf returns the credit count of output (p, vc); used by
// network-level conservation checks.
func (r *Router) CreditOf(p, vc int) int { return r.outs[p].vcs[vc].credit }

// BufferedAt returns the buffered flit count of input (p, vc); used by
// network-level conservation checks.
func (r *Router) BufferedAt(p, vc int) int { return r.in(p, vc).count }

// InputActive reports whether input (p, vc) hosts a worm.
func (r *Router) InputActive(p, vc int) bool { return r.in(p, vc).active }

// BufferedFlits returns the total number of flits buffered in the
// router, for network-level conservation checks. The count is maintained
// incrementally (CheckInvariants verifies it against the per-VC sums).
func (r *Router) BufferedFlits() int { return r.buffered }

// BufferCapacity returns the total flit capacity across every input VC
// (network and injection buffers): the denominator that turns
// BufferedFlits into an occupancy fraction. The slot budget is the same
// for every buffer organization.
func (r *Router) BufferCapacity() int { return r.store.totalSlots() }

// ActiveWormCount returns how many input VCs currently host a worm.
func (r *Router) ActiveWormCount() int {
	n := 0
	for i := range r.ins {
		if r.ins[i].active {
			n++
		}
	}
	return n
}
