package router

import (
	"fmt"

	"crnet/internal/flit"
)

// inIndex returns input VC (p, vc)'s index in the flat ins slice.
//
//cr:hotpath arbitration key, called per held output VC per cycle
func (r *Router) inIndex(p, vc int) int {
	if p < r.deg {
		return p*r.cfg.VCs + vc
	}
	return r.deg*r.cfg.VCs + (p - r.deg)
}

// Transmit forwards at most one flit per output channel. For each flit
// moved, moveFlit is called with the output port/VC (the network places
// it on the link, or hands it to the local receiver for ejection ports)
// and creditFlit is called with the input port/VC it left (the network
// refunds the upstream credit; injection ports are skipped since the
// injector reads buffer occupancy directly).
//
// Switch arbitration round-robins each output's pointer over the flat
// input-VC index space. Candidates are found through the output VCs'
// owner back-pointers rather than by scanning the inputs: every input
// with a flit for this output holds one of its VCs (a checked
// invariant), so the held VCs enumerate exactly the competitors, and
// the winner is the one whose input index comes first in round-robin
// order from rr — the same input a linear scan from rr would find.
//
//cr:hotpath switch transmission, once per active router per cycle
func (r *Router) Transmit(moveFlit func(outPort, outVC int, f flit.Flit), creditFlit func(inPort, inVC int)) {
	n := len(r.ins)
	for op := range r.outs {
		out := &r.outs[op]
		if !out.ejection && !out.linkUp {
			continue // dead or unconnected link transmits nothing
		}
		win, winKey := -1, n
		var winV *inVC
		for ovi := range out.vcs {
			ov := &out.vcs[ovi]
			if !ov.held {
				continue
			}
			if !out.ejection && ov.credit == 0 {
				continue
			}
			v := r.in(ov.ownerP, ov.ownerV)
			if v.count == 0 {
				continue
			}
			key := r.inIndex(ov.ownerP, ov.ownerV) - out.rr
			if key < 0 {
				key += n
			}
			if key < winKey {
				win, winKey, winV = ovi, key, v
			}
		}
		if win < 0 {
			continue
		}
		// Winner: move one flit.
		v := winV
		ov := &out.vcs[win]
		out.rr = (out.rr + winKey + 1) % n
		f := r.pop(v)
		r.buffered--
		if !out.ejection {
			ov.credit--
		}
		r.stats.FlitsMoved++
		if f.Tail {
			if r.cfg.Check && ov.worm != f.Worm {
				panic(fmt.Sprintf("router %d: tail of worm %d leaving unheld output", r.id, f.Worm))
			}
			ov.held = false
			v.active = false
			v.routed = false
			v.outP, v.outV = -1, -1
			// The worm has fully left this input VC: shrink its shared
			// window back to the reserve and re-grant the freed budget to
			// active siblings (no-op for static FIFO).
			r.store.release(int(v.idx), r.activeFn, r.emitFn)
		}
		if v.p < r.deg {
			creditFlit(v.p, v.vc)
		}
		moveFlit(op, win, f)
	}
}
