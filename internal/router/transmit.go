package router

import (
	"fmt"

	"crnet/internal/flit"
)

// inRef locates one input virtual channel for arbitration.
type inRef struct {
	p, vc int
	v     *inVC
}

// allInputs returns (building lazily) the flattened input VC list used
// by switch arbitration.
func (r *Router) allInputs() []inRef {
	if r.inRefs == nil {
		for p := range r.inputs {
			for vc := range r.inputs[p] {
				r.inRefs = append(r.inRefs, inRef{p: p, vc: vc, v: r.inputs[p][vc]})
			}
		}
	}
	return r.inRefs
}

// Transmit forwards at most one flit per output channel. For each flit
// moved, moveFlit is called with the output port/VC (the network places
// it on the link, or hands it to the local receiver for ejection ports)
// and creditFlit is called with the input port/VC it left (the network
// refunds the upstream credit; injection ports are skipped since the
// injector reads buffer occupancy directly).
func (r *Router) Transmit(moveFlit func(outPort, outVC int, f flit.Flit), creditFlit func(inPort, inVC int)) {
	refs := r.allInputs()
	for op := range r.outputs {
		out := r.outputs[op]
		if !out.ejection && !out.linkUp {
			continue // dead or unconnected link transmits nothing
		}
		n := len(refs)
		for i := 0; i < n; i++ {
			ref := refs[(out.rr+i)%n]
			v := ref.v
			if !v.active || !v.routed || v.outP != op || v.count == 0 {
				continue
			}
			ov := &out.vcs[v.outV]
			if !out.ejection && ov.credit == 0 {
				continue
			}
			// Winner: move one flit.
			out.rr = (out.rr + i + 1) % n
			f := v.pop()
			if !out.ejection {
				ov.credit--
			}
			r.stats.FlitsMoved++
			outVC := v.outV
			if f.Tail {
				if r.cfg.Check && (!ov.held || ov.worm != f.Worm) {
					panic(fmt.Sprintf("router %d: tail of worm %d leaving unheld output", r.id, f.Worm))
				}
				ov.held = false
				v.active = false
				v.routed = false
				v.outP, v.outV = -1, -1
			}
			if ref.p < r.deg {
				creditFlit(ref.p, ref.vc)
			}
			moveFlit(op, outVC, f)
			break
		}
	}
}
