package router

import (
	"testing"

	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

func testConfig() Config {
	return Config{VCs: 2, BufDepth: 2, InjectionChannels: 1, EjectionChannels: 1, Check: true}
}

func newTestRouter(t *testing.T, id topology.NodeID) *Router {
	t.Helper()
	return New(id, topology.NewTorus(4, 1), routing.MinimalAdaptive{}, testConfig())
}

type moved struct {
	port, vc int
	f        flit.Flit
}

// drain runs Transmit and returns flit movements and credited inputs.
func drain(r *Router) (moves []moved, credits [][2]int) {
	r.Transmit(
		func(p, vc int, f flit.Flit) { moves = append(moves, moved{p, vc, f}) },
		func(p, vc int) { credits = append(credits, [2]int{p, vc}) },
	)
	return moves, credits
}

func frame(id flit.MessageID, src, dst topology.NodeID, dataLen, pad, attempt int) flit.Frame {
	return flit.Frame{Msg: flit.Message{ID: id, Src: src, Dst: dst, DataLen: dataLen}, Attempt: attempt, PadLen: pad}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.NewTorus(4, 1)
	bad := []Config{
		{VCs: 0, BufDepth: 2, InjectionChannels: 1, EjectionChannels: 1},
		{VCs: 1, BufDepth: 0, InjectionChannels: 1, EjectionChannels: 1},
		{VCs: 1, BufDepth: 2, InjectionChannels: 0, EjectionChannels: 1},
		{VCs: 1, BufDepth: 2, InjectionChannels: 1, EjectionChannels: 0},
		{VCs: 1, BufDepth: 2, InjectionChannels: 1, EjectionChannels: 1, MisrouteAfter: 1, MaxDetours: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			New(0, topo, routing.MinimalAdaptive{}, cfg)
		}()
	}
	// Too few VCs for the algorithm must panic too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DOR on torus with 1 VC accepted")
			}
		}()
		New(0, topology.NewTorus(4, 2), routing.DOR{}, Config{VCs: 1, BufDepth: 2, InjectionChannels: 1, EjectionChannels: 1})
	}()
}

func TestInjectionFlowsToOutput(t *testing.T) {
	r := newTestRouter(t, 0)
	fr := frame(1, 0, 1, 2, 0, 0)
	if free := r.InjectionFree(0); free != 2 {
		t.Fatalf("fresh injection channel free = %d, want 2", free)
	}
	r.Inject(0, fr.FlitAt(0))
	r.Inject(0, fr.FlitAt(1))
	if free := r.InjectionFree(0); free != 0 {
		t.Fatalf("full injection channel free = %d, want 0", free)
	}
	if emits := r.RouteAndAllocate(nil); len(emits) != 0 {
		t.Fatalf("unexpected emits %v", emits)
	}
	moves, credits := drain(r)
	if len(moves) != 1 {
		t.Fatalf("got %d moves, want 1 (one flit per output per cycle)", len(moves))
	}
	// Destination 1 on a 4-ring is reachable only via the + port.
	if moves[0].port != int(topology.PortFor(0, true)) {
		t.Fatalf("head left on port %d", moves[0].port)
	}
	if moves[0].f.Kind != flit.Head {
		t.Fatalf("first flit out was %v", moves[0].f)
	}
	if len(credits) != 0 {
		t.Fatalf("injection dequeue emitted upstream credits %v", credits)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Second cycle moves the tail and releases everything.
	moves, _ = drain(r)
	if len(moves) != 1 || !moves[0].f.Tail {
		t.Fatalf("second move = %v", moves)
	}
	if r.ActiveWormCount() != 0 {
		t.Fatal("worm still active after tail left")
	}
	if r.BufferedFlits() != 0 {
		t.Fatal("flits left behind")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCreditsBlockTransmission(t *testing.T) {
	r := newTestRouter(t, 0)
	fr := frame(1, 0, 1, 4, 0, 0)
	r.Inject(0, fr.FlitAt(0))
	r.Inject(0, fr.FlitAt(1))
	r.RouteAndAllocate(nil)
	// BufDepth=2 credits: two flits go out, then stall.
	for i := 0; i < 2; i++ {
		if moves, _ := drain(r); len(moves) != 1 {
			t.Fatalf("cycle %d: %d moves", i, len(moves))
		}
	}
	if moves, _ := drain(r); len(moves) != 0 {
		t.Fatal("transmitted without credit")
	}
	// Refund one credit; one more flit (freshly injected) moves.
	r.Inject(0, fr.FlitAt(2))
	r.Credit(int(topology.PortFor(0, true)), vcOf(t, r))
	if moves, _ := drain(r); len(moves) != 1 {
		t.Fatal("credit refund did not unblock transmission")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// vcOf returns the VC the single active worm allocated on its output.
func vcOf(t *testing.T, r *Router) int {
	t.Helper()
	for i := range r.ins {
		if v := &r.ins[i]; v.active && v.routed {
			return v.outV
		}
	}
	t.Fatal("no routed worm")
	return -1
}

func TestEjectionAtDestination(t *testing.T) {
	r := newTestRouter(t, 2)
	// A worm for node 2 arrives on network port 0 (from node 3 side).
	fr := frame(9, 0, 2, 2, 0, 0)
	r.AcceptFlit(0, 0, fr.FlitAt(0))
	r.AcceptFlit(0, 1, frame(10, 1, 2, 1, 1, 0).FlitAt(0)) // second worm on other VC
	r.RouteAndAllocate(nil)
	moves, credits := drain(r)
	if len(moves) != 1 {
		t.Fatalf("%d moves, want 1 (single ejection channel serializes)", len(moves))
	}
	if !r.IsEjection(moves[0].port) {
		t.Fatalf("flit left on port %d, not ejection", moves[0].port)
	}
	if len(credits) != 1 || credits[0] != [2]int{0, 0} {
		t.Fatalf("credits = %v, want upstream (0,0)", credits)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondEjectionChannelParallelism(t *testing.T) {
	cfg := testConfig()
	cfg.EjectionChannels = 2
	r := New(2, topology.NewTorus(4, 1), routing.MinimalAdaptive{}, cfg)
	r.AcceptFlit(0, 0, frame(9, 0, 2, 1, 0, 0).FlitAt(0))
	r.AcceptFlit(0, 1, frame(10, 1, 2, 1, 0, 0).FlitAt(0))
	r.RouteAndAllocate(nil)
	moves, _ := drain(r)
	if len(moves) != 2 {
		t.Fatalf("%d moves, want 2 with two ejection channels", len(moves))
	}
}

func TestForwardKillPurgesAndPropagates(t *testing.T) {
	r := newTestRouter(t, 0)
	fr := frame(1, 0, 2, 8, 0, 0)
	r.Inject(0, fr.FlitAt(0))
	r.Inject(0, fr.FlitAt(1))
	r.RouteAndAllocate(nil)
	drain(r) // head moves out, body remains
	worm := fr.WormID()
	emits := r.ApplySignal(Signal{Kind: KillFwd, Port: r.InjPort(0), VC: 0, Worm: worm}, nil)
	// Must propagate forward over the allocated output; injection-side
	// purge emits no credits.
	var fwd *Emit
	for i := range emits {
		if emits[i].Kind == EmitKillFwd {
			fwd = &emits[i]
		}
		if emits[i].Kind == EmitCredits {
			t.Fatal("injection purge emitted upstream credits")
		}
	}
	if fwd == nil || fwd.Worm != worm {
		t.Fatalf("no forward propagation in %v", emits)
	}
	if r.ActiveWormCount() != 0 || r.BufferedFlits() != 0 {
		t.Fatal("kill left state behind")
	}
	if r.Stats().KillsFwd != 1 || r.Stats().PurgedFlits != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForwardKillBeforeRouting(t *testing.T) {
	r := newTestRouter(t, 0)
	fr := frame(1, 0, 2, 8, 0, 0)
	r.Inject(0, fr.FlitAt(0))
	emits := r.ApplySignal(Signal{Kind: KillFwd, Port: r.InjPort(0), VC: 0, Worm: fr.WormID()}, nil)
	for _, e := range emits {
		if e.Kind == EmitKillFwd {
			t.Fatal("unrouted worm propagated a forward kill")
		}
	}
	if r.ActiveWormCount() != 0 {
		t.Fatal("worm survived kill")
	}
}

func TestBackwardKillTearsOwnerAndPropagates(t *testing.T) {
	r := newTestRouter(t, 1)
	// Worm passing through node 1 toward node 2: arrives on network
	// input port 1 (-x side from node 0... use port index 1), routed out.
	fr := frame(5, 0, 2, 8, 0, 0)
	r.AcceptFlit(1, 0, fr.FlitAt(0))
	r.AcceptFlit(1, 0, fr.FlitAt(1))
	r.RouteAndAllocate(nil)
	drain(r) // head forwarded; one body flit left
	worm := fr.WormID()
	// FKILL arrives from downstream at the held output VC.
	outP, outV := heldOutput(t, r)
	emits := r.ApplySignal(Signal{Kind: KillBwd, Port: outP, VC: outV, Worm: worm}, nil)
	var bwd, creds *Emit
	for i := range emits {
		switch emits[i].Kind {
		case EmitKillBwd:
			bwd = &emits[i]
		case EmitCredits:
			creds = &emits[i]
		}
	}
	if bwd == nil || bwd.Port != 1 || bwd.VC != 0 {
		t.Fatalf("backward propagation wrong: %v", emits)
	}
	if creds == nil || creds.N != 1 {
		t.Fatalf("purge credits wrong: %v", emits)
	}
	if r.ActiveWormCount() != 0 {
		t.Fatal("owner VC still active")
	}
	// Straggler absorption: one more flit of the dead worm arrives.
	if !r.AcceptFlit(1, 0, fr.FlitAt(2)) {
		t.Fatal("straggler not absorbed")
	}
	if r.Stats().Stragglers != 1 {
		t.Fatal("straggler not counted")
	}
	// A different worm may then claim the VC.
	fr2 := frame(6, 0, 2, 2, 0, 0)
	if r.AcceptFlit(1, 0, fr2.FlitAt(0)) {
		t.Fatal("new worm's head wrongly absorbed")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func heldOutput(t *testing.T, r *Router) (int, int) {
	t.Helper()
	for p := range r.outs {
		for vc := range r.outs[p].vcs {
			if r.outs[p].vcs[vc].held {
				return p, vc
			}
		}
	}
	t.Fatal("no held output")
	return -1, -1
}

func TestStaleSignalsCounted(t *testing.T) {
	r := newTestRouter(t, 0)
	r.ApplySignal(Signal{Kind: KillFwd, Port: 0, VC: 0, Worm: 12345}, nil)
	r.ApplySignal(Signal{Kind: KillBwd, Port: 0, VC: 0, Worm: 12345}, nil)
	if got := r.Stats().StaleSignals; got != 2 {
		t.Fatalf("StaleSignals = %d, want 2", got)
	}
}

func TestCorruptHeaderTornDown(t *testing.T) {
	cfg := testConfig()
	cfg.VerifyHeaders = true
	r := New(1, topology.NewTorus(4, 1), routing.MinimalAdaptive{}, cfg)
	fr := frame(7, 0, 3, 4, 0, 0)
	head := fr.FlitAt(0)
	head.Payload ^= 1 << 13 // corrupt en route
	r.AcceptFlit(1, 0, head)
	emits := r.RouteAndAllocate(nil)
	var bwd bool
	for _, e := range emits {
		if e.Kind == EmitKillBwd && e.Port == 1 && e.VC == 0 {
			bwd = true
		}
	}
	if !bwd {
		t.Fatalf("corrupt header did not tear down backward: %v", emits)
	}
	if r.Stats().HeaderFaults != 1 {
		t.Fatal("header fault not counted")
	}
	if r.ActiveWormCount() != 0 {
		t.Fatal("corrupt worm still active")
	}
}

func TestDeadLinkBlocksRoutingAndTransmit(t *testing.T) {
	r := newTestRouter(t, 0)
	plusPort := int(topology.PortFor(0, true))
	r.SetLinkDown(plusPort)
	fr := frame(1, 0, 1, 2, 0, 0)
	r.Inject(0, fr.FlitAt(0))
	r.RouteAndAllocate(nil)
	// Node 1 is minimally reachable only via the dead +x port; the head
	// must stay blocked (no misrouting configured).
	if moves, _ := drain(r); len(moves) != 0 {
		t.Fatalf("flit crossed a dead link: %v", moves)
	}
	if r.Stats().HeadersRouted != 0 {
		t.Fatal("header allocated an output over a dead link")
	}
	if r.Stats().BlockedHeaders == 0 {
		t.Fatal("blocked header not counted")
	}
}

func TestMisrouteAroundDeadLink(t *testing.T) {
	cfg := testConfig()
	cfg.MisrouteAfter = 1
	cfg.MaxDetours = 4
	r := New(0, topology.NewTorus(4, 1), routing.MinimalAdaptive{}, cfg)
	plusPort := int(topology.PortFor(0, true))
	r.SetLinkDown(plusPort)
	fr := frame(1, 0, 1, 2, 0, 1) // attempt 1 >= MisrouteAfter
	r.Inject(0, fr.FlitAt(0))
	r.RouteAndAllocate(nil)
	moves, _ := drain(r)
	if len(moves) != 1 || moves[0].port != int(topology.PortFor(0, false)) {
		t.Fatalf("expected misroute via -x, got %v", moves)
	}
	if r.Stats().Misroutes != 1 {
		t.Fatal("misroute not counted")
	}
	if moves[0].f.Detours != 1 {
		t.Fatalf("head detour count = %d, want 1", moves[0].f.Detours)
	}
}

func TestMisrouteBlockedOnFirstAttempt(t *testing.T) {
	cfg := testConfig()
	cfg.MisrouteAfter = 2
	cfg.MaxDetours = 4
	r := New(0, topology.NewTorus(4, 1), routing.MinimalAdaptive{}, cfg)
	r.SetLinkDown(int(topology.PortFor(0, true)))
	fr := frame(1, 0, 1, 2, 0, 0) // attempt 0 < MisrouteAfter
	r.Inject(0, fr.FlitAt(0))
	r.RouteAndAllocate(nil)
	if moves, _ := drain(r); len(moves) != 0 {
		t.Fatalf("first attempt misrouted: %v", moves)
	}
}

func TestPDSCountedOnEscapeAllocation(t *testing.T) {
	g := topology.NewTorus(4, 2)
	alg := routing.Duato{AdaptiveVCs: 1}
	cfg := Config{VCs: alg.MinVCs(g), BufDepth: 2, InjectionChannels: 1, EjectionChannels: 1, Check: true}
	r := New(0, g, alg, cfg)
	// Fill the single adaptive VC (index 2) on the DOR port with another
	// worm so the new header is forced onto the escape channel.
	blocker := frame(50, 3, 2, 4, 0, 0)
	r.AcceptFlit(2, 2, blocker.FlitAt(0)) // arrives on +y input, adaptive VC
	r.RouteAndAllocate(nil)               // blocker claims an output
	// New worm destined straight +x: dorPort = +x.
	target := g.Node(1, 0)
	fr := frame(51, 0, target, 4, 0, 0)
	r.Inject(0, fr.FlitAt(0))
	// Occupy adaptive VC of the +x output with a third worm first.
	occupy := frame(52, 3, g.Node(2, 0), 4, 0, 0)
	r.AcceptFlit(1, 0, occupy.FlitAt(0))
	r.RouteAndAllocate(nil)
	if r.Stats().PDS == 0 {
		t.Skip("adaptive VC not exhausted in this arrangement") // configuration-dependent; integration tests cover PDS
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	r := newTestRouter(t, 0)
	fr := frame(1, 0, 2, 8, 0, 0)
	r.Inject(0, fr.FlitAt(0))
	r.Inject(0, fr.FlitAt(1))
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	r.Inject(0, fr.FlitAt(2)) // depth 2 exceeded
}

func TestAcceptHeadOnBusyVCPanics(t *testing.T) {
	r := newTestRouter(t, 0)
	r.AcceptFlit(0, 0, frame(1, 1, 2, 4, 0, 0).FlitAt(0))
	defer func() {
		if recover() == nil {
			t.Fatal("second head on busy VC did not panic")
		}
	}()
	r.AcceptFlit(0, 0, frame(2, 1, 2, 4, 0, 0).FlitAt(0))
}

func TestStatsAdd(t *testing.T) {
	a := Stats{FlitsMoved: 1, PDS: 2, KillsFwd: 3}
	a.Add(Stats{FlitsMoved: 10, PDS: 20, KillsFwd: 30, HeaderFaults: 5})
	if a.FlitsMoved != 11 || a.PDS != 22 || a.KillsFwd != 33 || a.HeaderFaults != 5 {
		t.Fatalf("Stats.Add wrong: %+v", a)
	}
}

func TestHeldAndActiveWorms(t *testing.T) {
	r := newTestRouter(t, 1)
	fr := frame(5, 0, 2, 8, 0, 0)
	r.AcceptFlit(1, 0, fr.FlitAt(0))
	r.RouteAndAllocate(nil)
	active := r.ActiveWorms(1, nil)
	if len(active) != 1 || active[0].Worm != fr.WormID() {
		t.Fatalf("ActiveWorms = %v", active)
	}
	outP, _ := heldOutput(t, r)
	held := r.HeldWorms(outP, nil)
	if len(held) != 1 || held[0].Worm != fr.WormID() {
		t.Fatalf("HeldWorms = %v", held)
	}
}

func TestSelectionStrings(t *testing.T) {
	if SelectRotating.String() != "rotating" || SelectFirst.String() != "first" ||
		SelectLeastLoaded.String() != "least-loaded" {
		t.Fatal("selection names wrong")
	}
	if Selection(9).String() == "" {
		t.Fatal("unknown selection has empty name")
	}
}

func TestCreditOverflowPanicsInCheckMode(t *testing.T) {
	r := newTestRouter(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("credit overflow not detected")
		}
	}()
	for i := 0; i < 10; i++ {
		r.Credit(0, 0)
	}
}

func TestSelectFirstAlwaysLowestCandidate(t *testing.T) {
	g := topology.NewTorus(8, 2)
	cfg := testConfig()
	cfg.Select = SelectFirst
	r := New(0, g, routing.MinimalAdaptive{}, cfg)
	// Destination diagonal: +x and +y both minimal; SelectFirst must
	// always claim the lowest (port 0 = +x, vc 0).
	for trial := 0; trial < 3; trial++ {
		fr := frame(flit.MessageID(trial+1), 0, g.Node(3, 3), 2, 0, 0)
		r.Inject(0, fr.FlitAt(0))
		r.RouteAndAllocate(nil)
		moves, _ := drain(r)
		if len(moves) != 1 || moves[0].port != 0 || moves[0].vc != 0 {
			t.Fatalf("trial %d: SelectFirst chose %+v", trial, moves)
		}
		// Tear down and refund the transmitted flit's credit (the
		// network's downstream straggler-absorption would do this).
		r.ApplySignal(Signal{Kind: KillFwd, Port: r.InjPort(0), VC: 0, Worm: fr.WormID()}, nil)
		r.ApplySignal(Signal{Kind: KillBwd, Port: 0, VC: 0, Worm: fr.WormID()}, nil)
		r.Credit(moves[0].port, moves[0].vc)
		if err := r.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
