package router

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/snapshot"
)

// Checkpoint codec for the router. Every mutable field is encoded in a
// fixed order: per-input-VC FIFO contents (logical order) plus worm
// claim, allocation and purge state; per-output round-robin pointers,
// link liveness and output VC credit/holder state; the allocation
// rotation; the event counters; and the livelock-watchdog watermark.
// Structural state (arena layout, port geometry, the linkUp closure)
// is reconstructed by New from configuration and is not serialized.
//
// The circular FIFOs are written front-to-back and restored with
// head=0: only the logical order is observable (push and pop address
// slots relative to head), so normalizing the head is behavior-
// preserving and makes the encoding independent of buffer history.

// SaveState appends the router's mutable state to a snapshot.
func (r *Router) SaveState(e *snapshot.Encoder) {
	for i := range r.ins {
		v := &r.ins[i]
		e.Uvarint(uint64(v.count))
		for k := 0; k < v.count; k++ {
			f := v.buf[(v.head+k)%len(v.buf)]
			flit.PutFlit(e, &f)
		}
		e.Bool(v.active)
		e.U64(uint64(v.worm))
		e.Bool(v.routed)
		e.Int(v.outP)
		e.Int(v.outV)
		e.U64(uint64(v.purgeWorm))
		e.Bool(v.purgeValid)
		e.Int(v.blocked)
	}
	for p := range r.outs {
		o := &r.outs[p]
		e.Int(o.rr)
		e.Bool(o.linkUp)
		for vc := range o.vcs {
			ov := &o.vcs[vc]
			e.Bool(ov.held)
			e.U64(uint64(ov.worm))
			e.Int(ov.ownerP)
			e.Int(ov.ownerV)
			e.Int(ov.credit)
		}
	}
	e.Int(r.allocRR)
	s := &r.stats
	e.Varint(s.FlitsMoved)
	e.Varint(s.HeadersRouted)
	e.Varint(s.PDS)
	e.Varint(s.Misroutes)
	e.Varint(s.KillsFwd)
	e.Varint(s.RouterKills)
	e.Varint(s.KillsBwd)
	e.Varint(s.StaleSignals)
	e.Varint(s.PurgedFlits)
	e.Varint(s.Stragglers)
	e.Varint(s.HeaderFaults)
	e.Varint(s.BlockedHeaders)
	e.Int(r.maxHops)
	e.U64(uint64(r.maxHopsWorm))
}

// LoadState restores a state written by SaveState into a router of the
// same geometry (same topology, VC count, buffer depth and channel
// counts — guaranteed by the network's config fingerprint check). The
// total buffered count is recomputed from the restored FIFOs.
func (r *Router) LoadState(d *snapshot.Decoder) error {
	buffered := 0
	for i := range r.ins {
		v := &r.ins[i]
		count := d.Count(len(v.buf))
		if err := d.Err(); err != nil {
			return fmt.Errorf("router %d: input VC %d: %w", r.id, i, err)
		}
		for k := 0; k < count; k++ {
			v.buf[k] = flit.GetFlit(d)
		}
		v.head, v.count = 0, count
		buffered += count
		v.active = d.Bool()
		v.worm = flit.WormID(d.U64())
		v.routed = d.Bool()
		v.outP = d.Int()
		v.outV = d.Int()
		v.purgeWorm = flit.WormID(d.U64())
		v.purgeValid = d.Bool()
		v.blocked = d.Int()
	}
	for p := range r.outs {
		o := &r.outs[p]
		o.rr = d.Int()
		o.linkUp = d.Bool()
		for vc := range o.vcs {
			ov := &o.vcs[vc]
			ov.held = d.Bool()
			ov.worm = flit.WormID(d.U64())
			ov.ownerP = d.Int()
			ov.ownerV = d.Int()
			ov.credit = d.Int()
		}
	}
	r.buffered = buffered
	r.allocRR = d.Int()
	s := &r.stats
	s.FlitsMoved = d.Varint()
	s.HeadersRouted = d.Varint()
	s.PDS = d.Varint()
	s.Misroutes = d.Varint()
	s.KillsFwd = d.Varint()
	s.RouterKills = d.Varint()
	s.KillsBwd = d.Varint()
	s.StaleSignals = d.Varint()
	s.PurgedFlits = d.Varint()
	s.Stragglers = d.Varint()
	s.HeaderFaults = d.Varint()
	s.BlockedHeaders = d.Varint()
	r.maxHops = d.Int()
	r.maxHopsWorm = flit.WormID(d.U64())
	if err := d.Err(); err != nil {
		return fmt.Errorf("router %d: %w", r.id, err)
	}
	return nil
}
