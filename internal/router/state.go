package router

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/snapshot"
)

// Checkpoint codec for the router. Every mutable field is encoded in a
// fixed order: per-input-VC FIFO contents (logical order) plus worm
// claim, allocation and purge state; the buffer organization's extra
// ledger (granted windows and grant rotation — empty for static FIFO);
// per-output round-robin pointers, link liveness and output VC
// window/credit/holder state; the allocation rotation; the event
// counters; and the livelock-watchdog watermark. Structural state
// (store geometry, port layout, the linkUp closure) is reconstructed by
// New from configuration and is not serialized.
//
// FIFOs are written front-to-back and restored into a freshly reset
// store: only the logical order is observable (push and pop address
// slots relative to the front), so slot placement and free-list order
// are rebuilt canonically on load instead of being serialized — the
// encoding is independent of buffer history in every organization.
//
// LoadState range-validates everything a corrupt or hostile snapshot
// could use to break the kernel: per-VC counts against the
// organization's cap (Decoder.Count), aggregate occupancy against pool
// capacity (loadVC fails when a pool runs out of slots even though each
// VC's count was individually plausible), the granted-window ledger
// against [reserve, maxWindow] and pool budget (loadExtra), and output
// credit/window pairs against 0 <= credit <= window <= maxWindow.

// SaveState appends the router's mutable state to a snapshot.
func (r *Router) SaveState(e *snapshot.Encoder) {
	for i := range r.ins {
		v := &r.ins[i]
		e.Uvarint(uint64(v.count))
		r.store.saveVC(e, i, v.count)
		e.Bool(v.active)
		e.U64(uint64(v.worm))
		e.Bool(v.routed)
		e.Int(v.outP)
		e.Int(v.outV)
		e.U64(uint64(v.purgeWorm))
		e.Bool(v.purgeValid)
		e.Int(v.blocked)
	}
	r.store.saveExtra(e)
	for p := range r.outs {
		o := &r.outs[p]
		e.Int(o.rr)
		e.Bool(o.linkUp)
		for vc := range o.vcs {
			ov := &o.vcs[vc]
			e.Bool(ov.held)
			e.U64(uint64(ov.worm))
			e.Int(ov.ownerP)
			e.Int(ov.ownerV)
			e.Int(ov.credit)
			e.Int(ov.window)
		}
	}
	e.Int(r.allocRR)
	s := &r.stats
	e.Varint(s.FlitsMoved)
	e.Varint(s.HeadersRouted)
	e.Varint(s.PDS)
	e.Varint(s.Misroutes)
	e.Varint(s.KillsFwd)
	e.Varint(s.RouterKills)
	e.Varint(s.KillsBwd)
	e.Varint(s.StaleSignals)
	e.Varint(s.PurgedFlits)
	e.Varint(s.Stragglers)
	e.Varint(s.HeaderFaults)
	e.Varint(s.BlockedHeaders)
	e.Int(r.maxHops)
	e.U64(uint64(r.maxHopsWorm))
}

// LoadState restores a state written by SaveState into a router of the
// same geometry (same topology, VC count, buffer depth and channel
// counts — guaranteed by the network's config fingerprint check). The
// total buffered count is recomputed from the restored FIFOs.
func (r *Router) LoadState(d *snapshot.Decoder) error {
	buffered := 0
	r.store.reset()
	for i := range r.ins {
		v := &r.ins[i]
		count := d.Count(r.store.capOf(i))
		if err := d.Err(); err != nil {
			return fmt.Errorf("router %d: input VC %d: %w", r.id, i, err)
		}
		if err := r.store.loadVC(d, i, count); err != nil {
			return fmt.Errorf("router %d: input VC %d: %w", r.id, i, err)
		}
		v.count = count
		buffered += count
		v.active = d.Bool()
		v.worm = flit.WormID(d.U64())
		v.routed = d.Bool()
		v.outP = d.Int()
		v.outV = d.Int()
		v.purgeWorm = flit.WormID(d.U64())
		v.purgeValid = d.Bool()
		v.blocked = d.Int()
	}
	if err := r.store.loadExtra(d); err != nil {
		return fmt.Errorf("router %d: buffer store: %w", r.id, err)
	}
	wLo, wHi := r.cfg.initWindow(), r.cfg.maxWindow(r.deg)
	for p := range r.outs {
		o := &r.outs[p]
		o.rr = d.Int()
		o.linkUp = d.Bool()
		for vc := range o.vcs {
			ov := &o.vcs[vc]
			ov.held = d.Bool()
			ov.worm = flit.WormID(d.U64())
			ov.ownerP = d.Int()
			ov.ownerV = d.Int()
			ov.credit = d.Int()
			ov.window = d.Int()
			if d.Err() != nil {
				break
			}
			if !o.ejection && (ov.credit < 0 || ov.credit > ov.window || ov.window < wLo || ov.window > wHi) {
				return fmt.Errorf("router %d: output (%d,%d) credit %d / window %d outside bounds [%d,%d]",
					r.id, p, vc, ov.credit, ov.window, wLo, wHi)
			}
		}
	}
	r.buffered = buffered
	r.allocRR = d.Int()
	s := &r.stats
	s.FlitsMoved = d.Varint()
	s.HeadersRouted = d.Varint()
	s.PDS = d.Varint()
	s.Misroutes = d.Varint()
	s.KillsFwd = d.Varint()
	s.RouterKills = d.Varint()
	s.KillsBwd = d.Varint()
	s.StaleSignals = d.Varint()
	s.PurgedFlits = d.Varint()
	s.Stragglers = d.Varint()
	s.HeaderFaults = d.Varint()
	s.BlockedHeaders = d.Varint()
	r.maxHops = d.Int()
	r.maxHopsWorm = flit.WormID(d.U64())
	if err := d.Err(); err != nil {
		return fmt.Errorf("router %d: %w", r.id, err)
	}
	return nil
}
