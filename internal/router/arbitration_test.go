package router

import (
	"testing"

	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// Two worms on different VCs of the same physical output must share the
// channel flit-by-flit under round-robin arbitration — neither starves.
func TestSwitchArbitrationInterleavesWorms(t *testing.T) {
	g := topology.NewTorus(8, 1)
	cfg := Config{VCs: 2, BufDepth: 4, InjectionChannels: 2, EjectionChannels: 1, Check: true}
	r := New(1, g, routing.MinimalAdaptive{}, cfg)

	// Both worms leave node 1 toward node 3 over the single +x port.
	frA := flit.Frame{Msg: flit.Message{ID: 1, Src: 1, Dst: 3, DataLen: 8}}
	frB := flit.Frame{Msg: flit.Message{ID: 2, Src: 1, Dst: 3, DataLen: 8}}
	r.Inject(0, frA.FlitAt(0))
	r.Inject(1, frB.FlitAt(0))
	r.RouteAndAllocate(nil)
	if r.Stats().HeadersRouted != 2 {
		t.Fatalf("both worms should allocate distinct VCs of +x, routed=%d", r.Stats().HeadersRouted)
	}

	nextA, nextB := 1, 1
	var sequence []flit.MessageID
	for cycle := 0; cycle < 40 && len(sequence) < 16; cycle++ {
		if nextA < 8 && r.InjectionFree(0) > 0 {
			r.Inject(0, frA.FlitAt(nextA))
			nextA++
		}
		if nextB < 8 && r.InjectionFree(1) > 0 {
			r.Inject(1, frB.FlitAt(nextB))
			nextB++
		}
		r.Transmit(
			func(p, vc int, f flit.Flit) {
				sequence = append(sequence, f.Worm.Message())
				// Return the credit immediately: downstream is fast.
				r.Credit(p, vc)
			},
			func(int, int) {},
		)
		if err := r.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sequence) != 16 {
		t.Fatalf("only %d flits crossed the shared channel, want 16", len(sequence))
	}
	// Fairness: over any window of 8 consecutive flits, both worms appear.
	for i := 0; i+8 <= len(sequence); i++ {
		seen := map[flit.MessageID]bool{}
		for _, id := range sequence[i : i+8] {
			seen[id] = true
		}
		if len(seen) < 2 {
			t.Fatalf("starvation window at %d: %v", i, sequence)
		}
	}
	// One flit per cycle on the physical channel was enforced implicitly
	// (Transmit emits at most one move per output); verify counts.
	if got := r.Stats().FlitsMoved; got != int64(len(sequence)) {
		t.Fatalf("FlitsMoved %d != observed %d", got, len(sequence))
	}
}

// A single worm must stream one flit per cycle through an uncontended
// router (full pipeline utilization).
func TestUncontendedWormStreamsAtFullRate(t *testing.T) {
	g := topology.NewTorus(8, 1)
	cfg := Config{VCs: 1, BufDepth: 2, InjectionChannels: 1, EjectionChannels: 1, Check: true}
	r := New(1, g, routing.MinimalAdaptive{}, cfg)
	fr := flit.Frame{Msg: flit.Message{ID: 1, Src: 1, Dst: 3, DataLen: 12}}
	next := 0
	moves := 0
	for cycle := 0; cycle < 40 && moves < 12; cycle++ {
		if next < 12 && r.InjectionFree(0) > 0 {
			r.Inject(0, fr.FlitAt(next))
			next++
		}
		r.RouteAndAllocate(nil)
		r.Transmit(
			func(p, vc int, f flit.Flit) {
				moves++
				r.Credit(p, vc)
			},
			func(int, int) {},
		)
	}
	if moves != 12 {
		t.Fatalf("streamed %d flits in 40 cycles, want 12", moves)
	}
}
