package router

import (
	"bytes"
	"strings"
	"testing"

	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
)

func TestBufferOrgParse(t *testing.T) {
	for _, org := range BufferOrgs {
		got, err := ParseBufferOrg(org.String())
		if err != nil || got != org {
			t.Errorf("ParseBufferOrg(%q) = %v, %v", org.String(), got, err)
		}
	}
	for s, want := range map[string]BufferOrg{"": OrgStaticFIFO, "static": OrgStaticFIFO, "credit-shared": OrgCreditShared} {
		if got, err := ParseBufferOrg(s); err != nil || got != want {
			t.Errorf("ParseBufferOrg(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseBufferOrg("bogus"); err == nil {
		t.Error("ParseBufferOrg accepted bogus name")
	}
}

// TestBufferOrgGeometry pins the pool geometry and window math: the
// slot budget is the same in every organization, and the window cap
// respects both the share bound and the siblings' reserves.
func TestBufferOrgGeometry(t *testing.T) {
	const deg = 2
	cfg := testConfig() // VCs 2, BufDepth 2, 1 inj, 1 ej
	nIn := deg*cfg.VCs + cfg.InjectionChannels
	for _, org := range BufferOrgs {
		cfg.Org = org
		s := newBufStore(cfg, deg, nIn)
		if got, want := s.totalSlots(), nIn*cfg.BufDepth; got != want {
			t.Errorf("%s: totalSlots %d, want %d", org, got, want)
		}
		// Injection channels are private BufDepth windows in every org.
		if got := s.capOf(nIn - 1); got != cfg.BufDepth {
			t.Errorf("%s: injection capOf %d, want %d", org, got, cfg.BufDepth)
		}
		if got, want := s.capOf(0), cfg.maxWindow(deg); got != want {
			t.Errorf("%s: network capOf %d, want maxWindow %d", org, got, want)
		}
	}
	// DAMQ, VCs=2, depth=2: pool of 4 slots over 2 VCs, reserve 1 →
	// window cap min(1+2, 4-1) = 3. Shared: pool of 8 over 4 VCs →
	// min(1+2, 8-3) = 3. A deep share cap is clamped by the reserves.
	cfg.Org = OrgDAMQ
	if w := cfg.maxWindow(deg); w != 3 {
		t.Errorf("damq maxWindow = %d, want 3", w)
	}
	cfg.Org = OrgCreditShared
	if w := cfg.maxWindow(deg); w != 3 {
		t.Errorf("shared maxWindow = %d, want 3", w)
	}
	cfg.BufShare = 100
	if w, want := cfg.maxWindow(deg), cfg.poolSlots(deg)-(cfg.groupVCs(deg)-1); w != want {
		t.Errorf("shared maxWindow with huge share = %d, want reserve-clamped %d", w, want)
	}
	cfg.BufShare = 0
	if cfg.AbsorbDepth(deg) != cfg.maxWindow(deg) {
		t.Error("AbsorbDepth must equal maxWindow for shared orgs")
	}
	cfg.Org = OrgStaticFIFO
	if cfg.AbsorbDepth(deg) != cfg.BufDepth {
		t.Error("AbsorbDepth must equal BufDepth for static FIFO")
	}
}

// TestPooledGrantLifecycle drives the granted-window ledger of one DAMQ
// pool through its whole protocol: grant on head (capped by the pool
// budget), release with shrink advertisement and round-robin sibling
// top-up, the tenure freeze across purge, and the silent link-repair
// reset.
func TestPooledGrantLifecycle(t *testing.T) {
	const deg = 2
	cfg := testConfig()
	cfg.Org = OrgDAMQ
	nIn := deg*cfg.VCs + cfg.InjectionChannels
	s := newBufStore(cfg, deg, nIn).(*pooledStore)
	// Pool 0 hosts VCs 0 and 1: poolCap 4, reserve 1, window cap 3.
	if s.granted[0] != 1 || s.granted[1] != 1 || s.grantSum[0] != 2 {
		t.Fatalf("fresh ledger granted=%v grantSum=%v", s.granted, s.grantSum)
	}
	// Head on VC 0: grows to the cap (3), bounded by budget 4-2=2.
	if g := s.grantOnHead(0); g != 2 {
		t.Fatalf("grantOnHead(0) = %d, want 2", g)
	}
	// Head on VC 1: budget exhausted (sum 4 == poolCap), no growth.
	if g := s.grantOnHead(1); g != 0 {
		t.Fatalf("grantOnHead(1) = %d, want 0 (budget exhausted)", g)
	}
	// Purge of VC 0 must NOT shrink its grant: the tenure freezes (a
	// kill can race a same-cycle reclaim upstream — see Router.purge).
	s.purge(0)
	if s.granted[0] != 3 || s.grantSum[0] != 4 {
		t.Fatalf("purge moved the ledger: granted=%v sum=%d", s.granted, s.grantSum)
	}
	// Normal release of VC 0: shrink back to the reserve, advertise -2,
	// and top VC 1 (active) up round-robin with the freed budget.
	var ads [][2]int
	s.release(0,
		func(j int) bool { return j == 1 },
		func(j, delta int) { ads = append(ads, [2]int{j, delta}) })
	if s.granted[0] != 1 || s.granted[1] != 3 || s.grantSum[0] != 4 {
		t.Fatalf("after release granted=%v sum=%d", s.granted, s.grantSum)
	}
	want := [][2]int{{0, -2}, {1, 2}}
	if len(ads) != 2 || ads[0] != want[0] || ads[1] != want[1] {
		t.Fatalf("release advertisements %v, want %v", ads, want)
	}
	// Release with no active sibling: the budget just returns.
	var quiet [][2]int
	s.release(1,
		func(int) bool { return false },
		func(j, delta int) { quiet = append(quiet, [2]int{j, delta}) })
	if len(quiet) != 1 || quiet[0] != [2]int{1, -2} || s.grantSum[0] != 2 {
		t.Fatalf("idle release ads=%v sum=%d", quiet, s.grantSum[0])
	}
	// Link repair: resetGrant returns a stranded tenure silently.
	s.grantOnHead(1)
	s.resetGrant(1)
	if s.granted[1] != 1 || s.grantSum[0] != 2 {
		t.Fatalf("resetGrant left granted=%v sum=%d", s.granted, s.grantSum)
	}
	// Pool 1 (VCs 2,3) was never touched.
	if s.grantSum[1] != 2 {
		t.Fatalf("pool 1 ledger moved: sum=%d", s.grantSum[1])
	}
	counts := func(int) int { return 0 }
	if err := s.check(counts); err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
}

// TestPooledFIFOOrder interleaves pushes, pops and purges across VCs
// sharing one pool and verifies per-VC FIFO order, slot conservation
// and injection-window independence.
func TestPooledFIFOOrder(t *testing.T) {
	const deg = 2
	cfg := testConfig()
	cfg.Org = OrgCreditShared
	nIn := deg*cfg.VCs + cfg.InjectionChannels
	s := newBufStore(cfg, deg, nIn).(*pooledStore)
	counts := make([]int, nIn)
	push := func(i int, f flit.Flit) { s.push(i, counts[i], f); counts[i]++ }
	pop := func(i int) flit.Flit { counts[i]--; return s.pop(i) }

	fr := frame(7, 0, 2, 6, 0, 0)
	// Grow the windows first, as the router does on head accept — the
	// audit enforces occupancy within the granted window.
	s.grantOnHead(0)
	s.grantOnHead(1)
	// Interleave two VCs of the shared pool so their chains' slots mix.
	push(0, fr.FlitAt(0))
	push(1, fr.FlitAt(3))
	push(0, fr.FlitAt(1))
	push(1, fr.FlitAt(4))
	push(0, fr.FlitAt(2))
	inj := nIn - 1
	push(inj, fr.FlitAt(5))
	if err := s.check(func(j int) int { return counts[j] }); err != nil {
		t.Fatal(err)
	}
	if f := s.front(0); f.Seq != fr.FlitAt(0).Seq {
		t.Fatalf("front(0) seq %d", f.Seq)
	}
	for k := 0; k < 3; k++ {
		if f := pop(0); f.Seq != fr.FlitAt(k).Seq {
			t.Fatalf("VC0 pop %d returned seq %d", k, f.Seq)
		}
	}
	s.purge(1)
	counts[1] = 0
	if f := pop(inj); !f.Tail {
		t.Fatal("injection pop lost the tail flit")
	}
	if err := s.check(func(j int) int { return counts[j] }); err != nil {
		t.Fatal(err)
	}
	if s.freeN[0] != s.poolCap {
		t.Fatalf("pool not fully free after drain: %d/%d", s.freeN[0], s.poolCap)
	}
}

// TestPooledSnapshotCanonical pins that the snapshot encoding depends
// only on logical FIFO order, not slot placement: a store whose chains
// are scrambled across the pool round-trips to a byte-identical
// re-encoding (free lists are rebuilt canonically on load).
func TestPooledSnapshotCanonical(t *testing.T) {
	const deg = 2
	cfg := testConfig()
	cfg.Org = OrgCreditShared
	nIn := deg*cfg.VCs + cfg.InjectionChannels
	build := func() (*pooledStore, []int) {
		s := newBufStore(cfg, deg, nIn).(*pooledStore)
		counts := make([]int, nIn)
		fr := frame(9, 1, 3, 8, 0, 1)
		push := func(i, k int) { s.push(i, counts[i], fr.FlitAt(k)); counts[i]++ }
		// Scramble slot placement: interleaved pushes with pops between.
		push(0, 0)
		push(1, 1)
		push(0, 2)
		s.pop(0)
		counts[0]--
		push(2, 3)
		push(0, 4)
		s.grantOnHead(0)
		return s, counts
	}
	encode := func(s *pooledStore, counts []int) []byte {
		var e snapshot.Encoder
		for i := 0; i < nIn; i++ {
			e.Uvarint(uint64(counts[i]))
			s.saveVC(&e, i, counts[i])
		}
		s.saveExtra(&e)
		return e.Bytes()
	}
	src, counts := build()
	raw := encode(src, counts)
	dst := newBufStore(cfg, deg, nIn).(*pooledStore)
	d := snapshot.NewDecoder(raw)
	got := make([]int, nIn)
	for i := 0; i < nIn; i++ {
		got[i] = d.Count(dst.capOf(i))
		if err := dst.loadVC(d, i, got[i]); err != nil {
			t.Fatalf("loadVC(%d): %v", i, err)
		}
	}
	if err := dst.loadExtra(d); err != nil {
		t.Fatalf("loadExtra: %v", err)
	}
	if err := dst.check(func(j int) int { return got[j] }); err != nil {
		t.Fatalf("restored audit: %v", err)
	}
	if again := encode(dst, got); !bytes.Equal(again, raw) {
		t.Fatal("re-encoding after restore is not byte-identical")
	}
}

func sharedTestRouter(t *testing.T) *Router {
	t.Helper()
	cfg := testConfig()
	cfg.Org = OrgCreditShared
	return New(1, topology.NewTorus(4, 1), routing.MinimalAdaptive{}, cfg)
}

// TestLoadStateRejectsCorruptSnapshots is the regression table for the
// snapshot range-validation fix: a corrupt or hostile payload must be
// rejected with a descriptive error in every place it could break the
// kernel — oversized per-VC counts, per-VC counts that are individually
// plausible but overflow the shared pool, a granted-window ledger
// outside its bounds or below the occupancy it must cover, a grant
// rotation cursor out of range, and credit/window pairs outside
// 0 <= credit <= window <= maxWindow.
func TestLoadStateRejectsCorruptSnapshots(t *testing.T) {
	save := func(r *Router) []byte {
		var e snapshot.Encoder
		r.SaveState(&e)
		return e.Bytes()
	}
	// Sanity: an unmodified snapshot restores cleanly.
	if err := sharedTestRouter(t).LoadState(snapshot.NewDecoder(save(sharedTestRouter(t)))); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	cases := []struct {
		name, wantSub string
		build         func(t *testing.T) []byte
	}{
		{"count-over-cap", "collection length", func(t *testing.T) []byte {
			// The payload's first byte is input VC 0's flit count
			// (uvarint); 100 is a single byte and far over the window cap.
			raw := save(sharedTestRouter(t))
			raw[0] = 100
			return raw
		}},
		{"pool-overflow", "overflow", func(t *testing.T) []byte {
			// Per-VC counts of 3 each pass the per-VC bound (window cap
			// 3) but three of them oversubscribe the 8-slot shared pool.
			// Built from a static-FIFO donor with BufDepth 3, whose
			// per-VC payload layout matches through the input section.
			cfg := testConfig()
			cfg.BufDepth = 3
			donor := New(1, topology.NewTorus(4, 1), routing.MinimalAdaptive{}, cfg)
			fr := frame(11, 1, 3, 9, 0, 0)
			for vc := 0; vc < 3; vc++ {
				for k := 0; k < 3; k++ {
					v := donor.in(vc/cfg.VCs, vc%cfg.VCs)
					donor.push(v, fr.FlitAt(vc*3+k))
				}
			}
			return save(donor)
		}},
		{"granted-over-cap", "granted window", func(t *testing.T) []byte {
			r := sharedTestRouter(t)
			r.store.(*pooledStore).granted[0] = 99
			return save(r)
		}},
		{"granted-below-occupancy", "exceeds granted", func(t *testing.T) []byte {
			// Two buffered flits against the default 1-slot grant.
			r := sharedTestRouter(t)
			fr := frame(12, 1, 3, 4, 0, 0)
			v := r.in(0, 0)
			r.push(v, fr.FlitAt(0))
			r.push(v, fr.FlitAt(1))
			return save(r)
		}},
		{"grant-sum-over-pool", "exceeds capacity", func(t *testing.T) []byte {
			// Every grant individually legal (<= cap 3) but the sum (12)
			// oversubscribes the 8-slot pool budget.
			r := sharedTestRouter(t)
			ps := r.store.(*pooledStore)
			for i := range ps.granted {
				ps.granted[i] = 3
			}
			return save(r)
		}},
		{"grant-rotation-out-of-range", "grant rotation", func(t *testing.T) []byte {
			r := sharedTestRouter(t)
			r.store.(*pooledStore).grantRR[0] = 9
			return save(r)
		}},
		{"credit-over-window", "outside bounds", func(t *testing.T) []byte {
			r := sharedTestRouter(t)
			ov := &r.outs[0].vcs[0]
			ov.credit = ov.window + 1
			return save(r)
		}},
		{"credit-negative", "outside bounds", func(t *testing.T) []byte {
			r := sharedTestRouter(t)
			r.outs[0].vcs[0].credit = -1
			return save(r)
		}},
		{"window-over-max", "outside bounds", func(t *testing.T) []byte {
			r := sharedTestRouter(t)
			ov := &r.outs[0].vcs[1]
			ov.window = 9
			ov.credit = 9
			return save(r)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.build(t)
			err := sharedTestRouter(t).LoadState(snapshot.NewDecoder(raw))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
