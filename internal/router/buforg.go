package router

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/snapshot"
)

// Buffer organizations. The router's input buffering is a seam
// (bufStore) with three implementations selected by Config.Org:
//
//   - OrgStaticFIFO: every input VC owns a private circular window of
//     BufDepth flits in one flat arena — bit-for-bit the original
//     kernel, and the default.
//   - OrgDAMQ: each network input port owns a linked-slot pool of
//     VCs*BufDepth flits shared across that port's VCs
//     (dynamically-allocated multi-queue). Every VC keeps a reserved
//     minimum of BufReserve slots so one hot VC cannot starve its
//     siblings; the rest is granted on demand.
//   - OrgCreditShared: one router-wide linked-slot pool of
//     deg*VCs*BufDepth flits shared across all network input ports,
//     with the same reserve discipline.
//
// Injection channels are private BufDepth windows in every org: the
// local injector reads their occupancy directly (InjectionFree), so
// they take no part in credit advertisement.
//
// Credit protocol under sharing: the upstream output VC tracks a
// dynamic window alongside its credit count, and a VC is claimable when
// credit == window (the generalized "fully drained" condition; for the
// static org window is constant BufDepth, reducing to the original
// rule). Windows start at the reserve; when a head flit is accepted the
// downstream pool grants the VC extra window up to its cap, advertised
// upstream as a credit+window delta; when the worm releases the VC the
// excess shrinks back to the reserve and is re-granted round-robin to
// active sibling VCs. All advertisement deltas are additive, so they
// commute with ordinary refunds inside a cycle and ride the sharded
// kernel's credit mailbox matrix unchanged (see network/shard.go).
//
// The DAMQ and credit-shared implementations share the pooledStore
// machinery and differ only in pool geometry (per-port vs router-wide).

// BufferOrg selects the router's input-buffer organization.
type BufferOrg uint8

const (
	// OrgStaticFIFO gives every input VC a private BufDepth window (the
	// default; byte-identical to the pre-seam kernel).
	OrgStaticFIFO BufferOrg = iota
	// OrgDAMQ shares a per-port slot pool across the port's VCs.
	OrgDAMQ
	// OrgCreditShared shares one router-wide slot pool across all
	// network input ports.
	OrgCreditShared
)

// String implements fmt.Stringer.
func (o BufferOrg) String() string {
	switch o {
	case OrgStaticFIFO:
		return "fifo"
	case OrgDAMQ:
		return "damq"
	case OrgCreditShared:
		return "shared"
	default:
		return fmt.Sprintf("BufferOrg(%d)", uint8(o))
	}
}

// ParseBufferOrg parses the names produced by String (sweep-axis and
// CLI flag values).
func ParseBufferOrg(s string) (BufferOrg, error) {
	switch s {
	case "fifo", "static", "":
		return OrgStaticFIFO, nil
	case "damq":
		return OrgDAMQ, nil
	case "shared", "credit-shared":
		return OrgCreditShared, nil
	default:
		return 0, fmt.Errorf("router: unknown buffer org %q (want fifo, damq or shared)", s)
	}
}

// BufferOrgs lists every organization, for sweep drivers.
var BufferOrgs = []BufferOrg{OrgStaticFIFO, OrgDAMQ, OrgCreditShared}

// bufReserve returns the effective per-VC reserved minimum for the
// shared orgs (Config.BufReserve, default 1).
func (c Config) bufReserve() int {
	if c.BufReserve > 0 {
		return c.BufReserve
	}
	return 1
}

// bufShare returns the effective per-VC sharing cap above the reserve
// (Config.BufShare, default BufDepth).
func (c Config) bufShare() int {
	if c.BufShare > 0 {
		return c.BufShare
	}
	return c.BufDepth
}

// initWindow is the window a network output VC starts with (and returns
// to whenever its worm releases it): the full depth for static FIFO,
// the reserve for the shared orgs.
func (c Config) initWindow() int {
	if c.Org == OrgStaticFIFO {
		return c.BufDepth
	}
	return c.bufReserve()
}

// groupVCs returns how many VCs share one pool under org geometry.
func (c Config) groupVCs(deg int) int {
	if c.Org == OrgCreditShared {
		return deg * c.VCs
	}
	return c.VCs
}

// poolSlots returns the slot count of one pool: the same silicon budget
// as the static arena over the pool's VC group.
func (c Config) poolSlots(deg int) int {
	return c.groupVCs(deg) * c.BufDepth
}

// maxWindow is the largest window one VC may be granted: reserve plus
// share, clamped so every sibling always keeps its reserve.
func (c Config) maxWindow(deg int) int {
	if c.Org == OrgStaticFIFO {
		return c.BufDepth
	}
	rsv := c.bufReserve()
	bound := c.poolSlots(deg) - (c.groupVCs(deg)-1)*rsv
	if w := rsv + c.bufShare(); w < bound {
		return w
	}
	return bound
}

// AbsorbDepth returns the worst-case per-hop, per-VC flit absorption of
// the organization — the quantity CR/FCR padding must be computed from
// for the protocol's commit bound to hold (core.IminCR assumes no hop
// can swallow more than this many flits of one worm). For static FIFO
// it is BufDepth; for the shared orgs it is the window cap.
func (c Config) AbsorbDepth(deg int) int { return c.maxWindow(deg) }

// bufStore is the buffer-organization seam: FIFO storage for every
// input VC (addressed by flat index, injection channels last) plus the
// org's window-grant policy and snapshot codec. Occupancy counts are
// maintained by the router (inVC.count) and passed in where storage
// needs them; the store owns slot placement, free lists and the
// granted-window ledger.
type bufStore interface {
	// push appends f to VC i's FIFO; n is the occupancy before the push
	// (the admission bound capOf was already checked by the caller).
	push(i, n int, f flit.Flit)
	// pop removes and returns VC i's front flit.
	pop(i int) flit.Flit
	// front returns a pointer to VC i's front flit.
	front(i int) *flit.Flit
	// purge drops every buffered flit of VC i.
	purge(i int)
	// capOf is VC i's maximum occupancy (its admission bound).
	capOf(i int) int
	// totalSlots is the aggregate flit capacity across all VCs.
	totalSlots() int
	// grantOnHead records a head flit accepted on network VC i and
	// returns the window growth to advertise upstream (0 for static).
	grantOnHead(i int) int
	// release records VC i's worm releasing the channel normally (tail
	// transmitted): the window shrinks back to the reserve and the freed
	// budget is re-granted round-robin to active siblings. emit is
	// called with (vc index, window delta) for every advertisement;
	// active reports whether a sibling currently hosts a worm. Kill
	// teardowns must NOT call release (see Router.purge): the tenure
	// freezes until the channel's next worm completes.
	release(i int, active func(j int) bool, emit func(j, delta int))
	// resetGrant silently returns VC i's granted window to the reserve
	// with no upstream advertisement — for link repair, where the
	// network resets the upstream window out of band (SetLinkUp).
	resetGrant(i int)
	// reset returns the store to its as-constructed state.
	reset()
	// saveVC/loadVC encode VC i's n buffered flits front-to-back.
	// loadVC assumes a freshly reset store and claims slots in
	// deterministic order (free lists are rebuilt canonically, not
	// serialized). It range-validates against pool capacity.
	saveVC(e *snapshot.Encoder, i, n int)
	loadVC(d *snapshot.Decoder, i, n int) error
	// saveExtra/loadExtra encode org-specific ledgers (granted windows,
	// grant rotation); empty for static FIFO. loadExtra range-validates
	// every count against pool capacity.
	saveExtra(e *snapshot.Encoder)
	loadExtra(d *snapshot.Decoder) error
	// check audits org invariants: slot conservation (per-VC chains +
	// free list == pool size), window-ledger bounds and occupancy
	// within granted windows. count returns VC j's occupancy.
	check(count func(j int) int) error
}

// newBufStore builds the configured organization for a router with the
// given degree and flat input-VC count (nIn = deg*VCs + injection).
func newBufStore(cfg Config, deg, nIn int) bufStore {
	switch cfg.Org {
	case OrgStaticFIFO:
		return newStaticStore(cfg, nIn)
	case OrgDAMQ:
		return newPooledStore(cfg, deg, nIn, deg, cfg.VCs)
	case OrgCreditShared:
		return newPooledStore(cfg, deg, nIn, 1, deg*cfg.VCs)
	default:
		panic(fmt.Sprintf("router: unknown buffer org %d", cfg.Org))
	}
}

// staticStore is the original organization: one flat arena, every VC a
// private circular BufDepth window.
type staticStore struct {
	arena []flit.Flit
	head  []int32
	depth int
}

func newStaticStore(cfg Config, nIn int) *staticStore {
	return &staticStore{
		arena: make([]flit.Flit, nIn*cfg.BufDepth),
		head:  make([]int32, nIn),
		depth: cfg.BufDepth,
	}
}

//cr:hotpath buffer push on every accepted flit
func (s *staticStore) push(i, n int, f flit.Flit) {
	s.arena[i*s.depth+(int(s.head[i])+n)%s.depth] = f
}

//cr:hotpath buffer pop on every transmitted flit
func (s *staticStore) pop(i int) flit.Flit {
	f := s.arena[i*s.depth+int(s.head[i])]
	s.head[i] = int32((int(s.head[i]) + 1) % s.depth)
	return f
}

//cr:hotpath front access during allocation and arbitration
func (s *staticStore) front(i int) *flit.Flit { return &s.arena[i*s.depth+int(s.head[i])] }

func (s *staticStore) purge(i int)                                 { s.head[i] = 0 }
func (s *staticStore) capOf(int) int                               { return s.depth }
func (s *staticStore) totalSlots() int                             { return len(s.arena) }
func (s *staticStore) grantOnHead(int) int                         { return 0 }
func (s *staticStore) release(int, func(int) bool, func(int, int)) {}
func (s *staticStore) resetGrant(int)                              {}
func (s *staticStore) saveExtra(*snapshot.Encoder)                 {}
func (s *staticStore) loadExtra(*snapshot.Decoder) error           { return nil }
func (s *staticStore) check(func(int) int) error                   { return nil }

func (s *staticStore) reset() {
	for i := range s.head {
		s.head[i] = 0
	}
}

func (s *staticStore) saveVC(e *snapshot.Encoder, i, n int) {
	base := i * s.depth
	for k := 0; k < n; k++ {
		f := s.arena[base+(int(s.head[i])+k)%s.depth]
		flit.PutFlit(e, &f)
	}
}

func (s *staticStore) loadVC(d *snapshot.Decoder, i, n int) error {
	base := i * s.depth
	for k := 0; k < n; k++ {
		s.arena[base+k] = flit.GetFlit(d)
	}
	s.head[i] = 0
	return d.Err()
}

// pooledStore implements the two shared organizations: linked-slot
// pools over the network input VCs (per-port pools for DAMQ, one
// router-wide pool for credit-shared) plus private static windows for
// the injection channels. Pool p covers pooled VCs
// [p*vcsPer, (p+1)*vcsPer) and slots [p*poolCap, (p+1)*poolCap).
type pooledStore struct {
	slots []flit.Flit
	next  []int32 // slot -> successor in its VC chain or free list (-1 end)

	vcHead []int32 // per pooled VC: chain head slot (-1 empty)
	vcTail []int32

	freeHead []int32 // per pool: free-list head slot (-1 empty)
	freeN    []int32 // per pool: free-list length

	granted  []int32 // per pooled VC: advertised window (the upstream mirror)
	grantSum []int32 // per pool: sum of granted (the advertisement budget)
	grantRR  []int32 // per pool: round-robin start for release top-ups

	pools   int
	vcsPer  int
	poolCap int32
	rsv     int32
	capW    int32

	nPooled int // pooled VC count; flat indices >= nPooled are injection

	inj      []flit.Flit // private injection windows
	injHead  []int32
	injDepth int
}

func newPooledStore(cfg Config, deg, nIn, pools, vcsPer int) *pooledStore {
	nPooled := pools * vcsPer
	nInj := nIn - nPooled
	s := &pooledStore{
		slots:    make([]flit.Flit, nPooled*cfg.BufDepth),
		next:     make([]int32, nPooled*cfg.BufDepth),
		vcHead:   make([]int32, nPooled),
		vcTail:   make([]int32, nPooled),
		freeHead: make([]int32, pools),
		freeN:    make([]int32, pools),
		granted:  make([]int32, nPooled),
		grantSum: make([]int32, pools),
		grantRR:  make([]int32, pools),
		pools:    pools,
		vcsPer:   vcsPer,
		poolCap:  int32(vcsPer * cfg.BufDepth),
		rsv:      int32(cfg.bufReserve()),
		capW:     int32(cfg.maxWindow(deg)),
		nPooled:  nPooled,
		inj:      make([]flit.Flit, nInj*cfg.BufDepth),
		injHead:  make([]int32, nInj),
		injDepth: cfg.BufDepth,
	}
	s.reset()
	return s
}

func (s *pooledStore) reset() {
	for i := range s.vcHead {
		s.vcHead[i], s.vcTail[i] = -1, -1
		s.granted[i] = s.rsv
	}
	for p := 0; p < s.pools; p++ {
		// Free list: ascending slot order (slot base+0 on top), rebuilt
		// identically by loadVC's claim order.
		base := int32(p) * s.poolCap
		s.freeHead[p] = -1
		for k := s.poolCap - 1; k >= 0; k-- {
			s.next[base+k] = s.freeHead[p]
			s.freeHead[p] = base + k
		}
		s.freeN[p] = s.poolCap
		s.grantSum[p] = int32(s.vcsPer) * s.rsv
		s.grantRR[p] = 0
	}
	for i := range s.injHead {
		s.injHead[i] = 0
	}
}

func (s *pooledStore) poolOf(i int) int { return i / s.vcsPer }

//cr:hotpath slot claim on every pooled-buffer push
func (s *pooledStore) allocSlot(pool int) int32 {
	h := s.freeHead[pool]
	if h < 0 {
		panic("router: buffer pool exhausted (credit protocol violated)")
	}
	s.freeHead[pool] = s.next[h]
	s.freeN[pool]--
	s.next[h] = -1
	return h
}

//cr:hotpath slot release on every pooled-buffer pop/purge
func (s *pooledStore) freeSlot(pool int, slot int32) {
	s.next[slot] = s.freeHead[pool]
	s.freeHead[pool] = slot
	s.freeN[pool]++
}

//cr:hotpath buffer push on every accepted flit
func (s *pooledStore) push(i, n int, f flit.Flit) {
	if i >= s.nPooled {
		j := i - s.nPooled
		s.inj[j*s.injDepth+(int(s.injHead[j])+n)%s.injDepth] = f
		return
	}
	slot := s.allocSlot(s.poolOf(i))
	s.slots[slot] = f
	if s.vcTail[i] < 0 {
		s.vcHead[i] = slot
	} else {
		s.next[s.vcTail[i]] = slot
	}
	s.vcTail[i] = slot
}

//cr:hotpath buffer pop on every transmitted flit
func (s *pooledStore) pop(i int) flit.Flit {
	if i >= s.nPooled {
		j := i - s.nPooled
		f := s.inj[j*s.injDepth+int(s.injHead[j])]
		s.injHead[j] = int32((int(s.injHead[j]) + 1) % s.injDepth)
		return f
	}
	h := s.vcHead[i]
	f := s.slots[h]
	s.vcHead[i] = s.next[h]
	if s.vcHead[i] < 0 {
		s.vcTail[i] = -1
	}
	s.freeSlot(s.poolOf(i), h)
	return f
}

//cr:hotpath front access during allocation and arbitration
func (s *pooledStore) front(i int) *flit.Flit {
	if i >= s.nPooled {
		j := i - s.nPooled
		return &s.inj[j*s.injDepth+int(s.injHead[j])]
	}
	return &s.slots[s.vcHead[i]]
}

func (s *pooledStore) purge(i int) {
	if i >= s.nPooled {
		s.injHead[i-s.nPooled] = 0
		return
	}
	pool := s.poolOf(i)
	for h := s.vcHead[i]; h >= 0; {
		nx := s.next[h]
		s.freeSlot(pool, h)
		h = nx
	}
	s.vcHead[i], s.vcTail[i] = -1, -1
}

func (s *pooledStore) capOf(i int) int {
	if i >= s.nPooled {
		return s.injDepth
	}
	return int(s.capW)
}

func (s *pooledStore) totalSlots() int { return len(s.slots) + len(s.inj) }

//cr:hotpath window grant decision on every accepted head flit
func (s *pooledStore) grantOnHead(i int) int {
	if i >= s.nPooled {
		return 0
	}
	pool := s.poolOf(i)
	g := s.capW - s.granted[i]
	if avail := s.poolCap - s.grantSum[pool]; g > avail {
		g = avail
	}
	if g <= 0 {
		return 0
	}
	s.granted[i] += g
	s.grantSum[pool] += g
	return int(g)
}

//cr:hotpath window release + sibling top-up on every worm completion
func (s *pooledStore) release(i int, active func(j int) bool, emit func(j, delta int)) {
	if i >= s.nPooled {
		return
	}
	pool := s.poolOf(i)
	shrink := s.granted[i] - s.rsv
	if shrink <= 0 {
		return
	}
	s.granted[i] = s.rsv
	s.grantSum[pool] -= shrink
	emit(i, int(-shrink))
	// Re-grant the freed budget round-robin to active siblings below
	// their cap, so a waiting worm picks up the shared slots the moment
	// they exist (DAMQ's "use the space somebody else isn't").
	avail := s.poolCap - s.grantSum[pool]
	base := pool * s.vcsPer
	nv := int32(s.vcsPer)
	start := s.grantRR[pool]
	for k := int32(0); k < nv && avail > 0; k++ {
		j := base + int((start+k)%nv)
		if j == i || !active(j) {
			continue
		}
		g := s.capW - s.granted[j]
		if g > avail {
			g = avail
		}
		if g <= 0 {
			continue
		}
		s.granted[j] += g
		s.grantSum[pool] += g
		avail -= g
		emit(j, int(g))
		s.grantRR[pool] = (start + k + 1) % nv
	}
}

func (s *pooledStore) resetGrant(i int) {
	if i >= s.nPooled {
		return
	}
	pool := s.poolOf(i)
	s.grantSum[pool] -= s.granted[i] - s.rsv
	s.granted[i] = s.rsv
}

func (s *pooledStore) saveVC(e *snapshot.Encoder, i, n int) {
	if i >= s.nPooled {
		j := i - s.nPooled
		base := j * s.injDepth
		for k := 0; k < n; k++ {
			f := s.inj[base+(int(s.injHead[j])+k)%s.injDepth]
			flit.PutFlit(e, &f)
		}
		return
	}
	for h := s.vcHead[i]; h >= 0; h = s.next[h] {
		flit.PutFlit(e, &s.slots[h])
	}
}

func (s *pooledStore) loadVC(d *snapshot.Decoder, i, n int) error {
	if i >= s.nPooled {
		j := i - s.nPooled
		base := j * s.injDepth
		for k := 0; k < n; k++ {
			s.inj[base+k] = flit.GetFlit(d)
		}
		s.injHead[j] = 0
		return d.Err()
	}
	pool := s.poolOf(i)
	for k := 0; k < n; k++ {
		f := flit.GetFlit(d)
		if s.freeHead[pool] < 0 {
			return fmt.Errorf("pool %d overflow: VC %d count %d exceeds free slots", pool, i, n)
		}
		s.push(i, k, f)
	}
	return d.Err()
}

func (s *pooledStore) saveExtra(e *snapshot.Encoder) {
	for i := 0; i < s.nPooled; i++ {
		e.Int(int(s.granted[i]))
	}
	for p := 0; p < s.pools; p++ {
		e.Int(int(s.grantRR[p]))
	}
}

func (s *pooledStore) loadExtra(d *snapshot.Decoder) error {
	for p := range s.grantSum {
		s.grantSum[p] = 0
	}
	for i := 0; i < s.nPooled; i++ {
		g := int32(d.Int())
		if err := d.Err(); err != nil {
			return err
		}
		if g < s.rsv || g > s.capW {
			return fmt.Errorf("VC %d granted window %d outside [%d,%d]", i, g, s.rsv, s.capW)
		}
		if occ := s.chainLen(i); int32(occ) > g {
			return fmt.Errorf("VC %d occupancy %d exceeds granted window %d", i, occ, g)
		}
		s.granted[i] = g
		s.grantSum[s.poolOf(i)] += g
	}
	for p := 0; p < s.pools; p++ {
		if s.grantSum[p] > s.poolCap {
			return fmt.Errorf("pool %d granted sum %d exceeds capacity %d", p, s.grantSum[p], s.poolCap)
		}
		rr := int32(d.Int())
		if rr < 0 || rr >= int32(s.vcsPer) {
			return fmt.Errorf("pool %d grant rotation %d outside [0,%d)", p, rr, s.vcsPer)
		}
		s.grantRR[p] = rr
	}
	return d.Err()
}

// chainLen walks VC i's slot chain (bounded by the pool size: the free
// lists and chains partition the slots, a checked invariant).
func (s *pooledStore) chainLen(i int) int {
	n := 0
	for h := s.vcHead[i]; h >= 0 && n <= int(s.poolCap); h = s.next[h] {
		n++
	}
	return n
}

func (s *pooledStore) check(count func(j int) int) error {
	for p := 0; p < s.pools; p++ {
		occ := 0
		gsum := int32(0)
		for k := 0; k < s.vcsPer; k++ {
			i := p*s.vcsPer + k
			n := count(i)
			if c := s.chainLen(i); c != n {
				return fmt.Errorf("pool %d VC %d chain length %d, occupancy %d", p, i, c, n)
			}
			if g := s.granted[i]; g < s.rsv || g > s.capW {
				return fmt.Errorf("pool %d VC %d granted %d outside [%d,%d]", p, i, g, s.rsv, s.capW)
			}
			if int32(n) > s.granted[i] {
				return fmt.Errorf("pool %d VC %d occupancy %d exceeds granted %d", p, i, n, s.granted[i])
			}
			occ += n
			gsum += s.granted[i]
		}
		free := 0
		for h := s.freeHead[p]; h >= 0 && free <= int(s.poolCap); h = s.next[h] {
			free++
		}
		if int32(free) != s.freeN[p] {
			return fmt.Errorf("pool %d free list length %d, counter %d", p, free, s.freeN[p])
		}
		if occ+free != int(s.poolCap) {
			return fmt.Errorf("pool %d slot conservation: %d occupied + %d free != %d",
				p, occ, free, s.poolCap)
		}
		if gsum != s.grantSum[p] {
			return fmt.Errorf("pool %d granted sum %d, counter %d", p, gsum, s.grantSum[p])
		}
		if gsum > s.poolCap {
			return fmt.Errorf("pool %d granted sum %d exceeds capacity %d", p, gsum, s.poolCap)
		}
		if rr := s.grantRR[p]; rr < 0 || rr >= int32(s.vcsPer) {
			return fmt.Errorf("pool %d grant rotation %d outside [0,%d)", p, rr, s.vcsPer)
		}
	}
	return nil
}
