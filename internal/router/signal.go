package router

import (
	"fmt"

	"crnet/internal/flit"
)

// SignalKind distinguishes the two out-of-band tear-down signals.
type SignalKind uint8

const (
	// KillFwd tears a worm down from the source side: it arrives at the
	// input virtual channel the worm occupies and propagates along the
	// worm's allocation chain toward its header.
	KillFwd SignalKind = iota
	// KillBwd (the paper's FKILL) tears a worm down from the destination
	// side: it arrives at the output virtual channel the worm holds and
	// propagates toward the source, which then retransmits.
	KillBwd
)

// String implements fmt.Stringer.
func (k SignalKind) String() string {
	if k == KillFwd {
		return "KILL"
	}
	return "FKILL"
}

// Signal is one tear-down event addressed to this router. For KillFwd,
// Port/VC name an input virtual channel; for KillBwd an output one.
type Signal struct {
	Kind SignalKind
	Port int
	VC   int
	Worm flit.WormID
}

// EmitKind classifies router outputs the network must deliver.
type EmitKind uint8

const (
	// EmitKillFwd propagates a forward kill over output Port/VC. On a
	// network port the network schedules KillFwd at the downstream
	// router next cycle; on an ejection port it tells the local receiver
	// to discard the partial worm.
	EmitKillFwd EmitKind = iota
	// EmitKillBwd propagates a backward kill over input Port/VC. On a
	// network port the network schedules KillBwd at the upstream router
	// next cycle; on an injection port it tells the local injector the
	// worm was FKILLed (retransmit).
	EmitKillBwd
	// EmitCredits refunds N buffer credits to the upstream output feeding
	// input Port/VC; emitted when a purge discards buffered flits.
	EmitCredits
)

// Emit is one side effect of a tear-down for the network to deliver.
type Emit struct {
	Kind EmitKind
	Port int
	VC   int
	Worm flit.WormID
	N    int // credits, for EmitCredits
}

// purge discards every buffered flit of v and returns the count.
//
// The shared organizations deliberately do NOT shrink the VC's granted
// window here: a kill can race a same-cycle claim of the freed upstream
// output VC (the upstream sees held clear in the signals phase and
// reclaims with the dead worm's credit==window in the same cycle's
// allocate phase, before any shrink event could arrive). Shrinking on
// purge would then leave the new worm streaming against a window larger
// than the downstream grant. Instead the grant tenure freezes across a
// kill — upstream window and downstream granted stay mirrored at the
// dead worm's level — and shrinks only on the next worm's normal
// release, which is synchronous with its final tail refund and
// therefore race-free. The cost is shared budget stranded on a killed
// channel until it hosts its next worm; the benefit is that
// credit ∈ [0, window] holds unconditionally.
func (r *Router) purge(v *inVC) int {
	n := v.count
	r.store.purge(int(v.idx))
	v.count = 0
	r.buffered -= n
	r.stats.PurgedFlits += int64(n)
	return n
}

// releaseIn resets an input VC after tear-down, arming the straggler
// absorber for the dead worm.
func releaseIn(v *inVC, worm flit.WormID) {
	v.active = false
	v.routed = false
	v.outP, v.outV = -1, -1
	v.purgeWorm = worm
	v.purgeValid = true
	v.blocked = 0
}

// ApplySignal processes one tear-down signal and returns the emissions
// the network must deliver (further propagation and credit refunds).
func (r *Router) ApplySignal(s Signal, emits []Emit) []Emit {
	switch s.Kind {
	case KillFwd:
		return r.applyKillFwd(s, emits)
	case KillBwd:
		return r.applyKillBwd(s, emits)
	default:
		panic(fmt.Sprintf("router: unknown signal kind %d", s.Kind))
	}
}

func (r *Router) applyKillFwd(s Signal, emits []Emit) []Emit {
	v := r.in(s.Port, s.VC)
	if !v.active || v.worm != s.Worm {
		// The worm is already gone (e.g. torn down by a dead-link sweep
		// racing the kill). Arm the absorber and drop the signal.
		r.stats.StaleSignals++
		v.purgeWorm = s.Worm
		v.purgeValid = true
		return emits
	}
	r.stats.KillsFwd++
	if purged := r.purge(v); purged > 0 && s.Port < r.deg {
		emits = append(emits, Emit{Kind: EmitCredits, Port: s.Port, VC: s.VC, Worm: s.Worm, N: purged})
	}
	if v.routed {
		o := &r.outs[v.outP].vcs[v.outV]
		if r.cfg.Check && (!o.held || o.worm != s.Worm) {
			panic(fmt.Sprintf("router %d: forward kill found inconsistent allocation", r.id))
		}
		o.held = false
		emits = append(emits, Emit{Kind: EmitKillFwd, Port: v.outP, VC: v.outV, Worm: s.Worm})
	}
	releaseIn(v, s.Worm)
	return emits
}

func (r *Router) applyKillBwd(s Signal, emits []Emit) []Emit {
	o := &r.outs[s.Port].vcs[s.VC]
	if !o.held || o.worm != s.Worm {
		// The worm's tail already passed here (possible only if the
		// protocol's padding bound was violated) or the worm was torn
		// down by another mechanism. Count it; FCR tests assert zero.
		r.stats.StaleSignals++
		return emits
	}
	r.stats.KillsBwd++
	v := r.in(o.ownerP, o.ownerV)
	if r.cfg.Check && (!v.active || v.worm != s.Worm) {
		panic(fmt.Sprintf("router %d: backward kill found inconsistent ownership", r.id))
	}
	if purged := r.purge(v); purged > 0 && o.ownerP < r.deg {
		emits = append(emits, Emit{Kind: EmitCredits, Port: o.ownerP, VC: o.ownerV, Worm: s.Worm, N: purged})
	}
	o.held = false
	emits = append(emits, Emit{Kind: EmitKillBwd, Port: o.ownerP, VC: o.ownerV, Worm: s.Worm})
	releaseIn(v, s.Worm)
	return emits
}

// WormAt describes a worm occupying a channel, for dead-link sweeps.
type WormAt struct {
	VC   int
	Worm flit.WormID
}

// HeldWorms returns the worms holding output virtual channels of network
// port p. When the link on p dies, the network tears each down backward
// (KillBwd at this router) so their sources retransmit on another path.
func (r *Router) HeldWorms(p int, buf []WormAt) []WormAt {
	for vc := range r.outs[p].vcs {
		o := &r.outs[p].vcs[vc]
		if o.held {
			buf = append(buf, WormAt{VC: vc, Worm: o.worm})
		}
	}
	return buf
}

// ActiveWorms returns the worms occupying input virtual channels of
// network port p. When the upstream link dies, the network tears each
// down forward (KillFwd at this router) to reclaim the orphaned
// downstream fragment.
func (r *Router) ActiveWorms(p int, buf []WormAt) []WormAt {
	for vc := 0; vc < r.numVCs(p); vc++ {
		v := r.in(p, vc)
		if v.active {
			buf = append(buf, WormAt{VC: vc, Worm: v.worm})
		}
	}
	return buf
}

// BlockedWorm describes a worm whose header has been stuck at output
// allocation, for the deadlock watchdog.
type BlockedWorm struct {
	Port, VC int
	Worm     flit.WormID
	// Blocked is how many consecutive cycles the header has failed
	// allocation.
	Blocked int
}

// BlockedWorms appends every worm (on any input, including injection
// channels) whose header has been blocked at allocation for at least
// min consecutive cycles. Worms that are routed, or whose header has
// not yet reached the buffer front, are progressing by definition and
// are not reported.
func (r *Router) BlockedWorms(min int, buf []BlockedWorm) []BlockedWorm {
	for i := range r.ins {
		v := &r.ins[i]
		if v.active && !v.routed && v.blocked >= min {
			buf = append(buf, BlockedWorm{Port: v.p, VC: v.vc, Worm: v.worm, Blocked: v.blocked})
		}
	}
	return buf
}

// Credit refunds one downstream buffer credit to output port p, VC vc.
// The overflow check is exact only for static FIFO, where the window is
// the constant BufDepth; the shared organizations can interleave plain
// refunds with window shrinks inside one credit phase, so their
// end-of-cycle bound (credit <= window) is asserted by CheckInvariants
// instead.
func (r *Router) Credit(p, vc int) {
	o := &r.outs[p].vcs[vc]
	o.credit++
	if r.cfg.Check && r.cfg.Org == OrgStaticFIFO && !r.outs[p].ejection && o.credit > r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: credit overflow on output (%d,%d)", r.id, p, vc))
	}
}

// CreditN refunds n credits at once (purge refunds).
func (r *Router) CreditN(p, vc, n int) {
	for i := 0; i < n; i++ {
		r.Credit(p, vc)
	}
}

// CreditAdvert publishes a downstream window delta for this router's
// input (port, vc) back to the upstream router feeding it. The network
// installs one per router (shared organizations only); deltas ride the
// same deterministic credit queues as plain refunds, so they commute
// with them inside a cycle and need no global ordering in the sharded
// kernel.
type CreditAdvert func(port, vc, delta int)

// SetAdvertiser installs the window-advertisement sink. A nil
// advertiser (the default) drops deltas, which is sound: the upstream
// window then stays at the reserve and the downstream ledger simply
// over-grants locally.
func (r *Router) SetAdvertiser(a CreditAdvert) { r.advert = a }

// ApplyCredit applies one credit event to output (p, vc): n plain
// refunds plus a window delta w (grants are positive, release shrinks
// negative). Plain credit application is ApplyCredit(p, vc, n, 0).
func (r *Router) ApplyCredit(p, vc, n, w int) {
	o := &r.outs[p].vcs[vc]
	o.credit += n + w
	o.window += w
	if r.cfg.Check && r.cfg.Org == OrgStaticFIFO && !r.outs[p].ejection && o.credit > r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: credit overflow on output (%d,%d)", r.id, p, vc))
	}
}
