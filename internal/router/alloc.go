package router

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// RouteAndAllocate routes every input virtual channel whose head flit is
// waiting at the buffer front and tries to claim an output virtual
// channel for it. Corrupt headers (under VerifyHeaders) trigger a
// backward tear-down whose emissions are appended to emits.
//
//cr:hotpath allocation entry point, once per active router per cycle
func (r *Router) RouteAndAllocate(emits []Emit) []Emit {
	for i := range r.ins {
		v := &r.ins[i]
		if !v.active || v.routed || v.count == 0 {
			continue
		}
		head := r.front(v)
		if r.cfg.Check && head.Kind != flit.Head {
			panic(fmt.Sprintf("router %d: unrouted VC (%d,%d) fronted by %v", r.id, v.p, v.vc, head))
		}
		if r.cfg.VerifyHeaders && !head.Verify() {
			emits = r.tearCorruptHeader(v, emits)
			continue
		}
		var ok bool
		if head.Dst == r.id {
			ok = r.allocateEjection(v)
		} else {
			ok = r.allocateNetwork(v, head)
		}
		if ok {
			v.blocked = 0
			continue
		}
		r.stats.BlockedHeaders++
		v.blocked++
		if r.cfg.RouterTimeout > 0 && v.blocked >= r.cfg.RouterTimeout {
			emits = r.tearBlockedWorm(v, emits)
		}
	}
	return emits
}

// tearBlockedWorm implements the path-wide timeout: the router kills a
// worm whose header it has held blocked for RouterTimeout cycles,
// tearing it down backward so the source retransmits. Unlike the
// source-based scheme, the router cannot know whether the worm is
// committed or merely slow — the source of the paper's "unnecessary
// kills" observation.
func (r *Router) tearBlockedWorm(v *inVC, emits []Emit) []Emit {
	r.stats.RouterKills++
	worm := v.worm
	if purged := r.purge(v); purged > 0 && v.p < r.deg {
		emits = append(emits, Emit{Kind: EmitCredits, Port: v.p, VC: v.vc, Worm: worm, N: purged})
	}
	emits = append(emits, Emit{Kind: EmitKillBwd, Port: v.p, VC: v.vc, Worm: worm})
	releaseIn(v, worm)
	return emits
}

// tearCorruptHeader handles FCR's per-hop header protection: the worm is
// purged here and torn down backward to its source.
func (r *Router) tearCorruptHeader(v *inVC, emits []Emit) []Emit {
	r.stats.HeaderFaults++
	worm := v.worm
	if purged := r.purge(v); purged > 0 && v.p < r.deg {
		emits = append(emits, Emit{Kind: EmitCredits, Port: v.p, VC: v.vc, Worm: worm, N: purged})
	}
	emits = append(emits, Emit{Kind: EmitKillBwd, Port: v.p, VC: v.vc, Worm: worm})
	releaseIn(v, worm)
	return emits
}

// allocateEjection claims a free ejection channel for a worm that has
// reached its destination.
//
//cr:hotpath ejection claim for every worm reaching its destination
func (r *Router) allocateEjection(v *inVC) bool {
	for e := r.deg; e < len(r.outs); e++ {
		o := &r.outs[e].vcs[0]
		if o.held {
			continue
		}
		o.held = true
		o.worm = v.worm
		o.ownerP, o.ownerV = v.p, v.vc
		v.routed = true
		v.outP, v.outV = e, 0
		r.stats.HeadersRouted++
		return true
	}
	return false
}

// allocateNetwork asks the routing algorithm for candidates and claims
// the first free one, rotating among equally preferred (non-escape)
// candidates for load spreading. Escape-channel allocations are counted
// as potential deadlock situations (PDS).
//
//cr:hotpath routing + VC claim for every waiting header, every cycle
func (r *Router) allocateNetwork(v *inVC, head *flit.Flit) bool {
	inPort := topology.InvalidPort
	inVCIdx := -1
	if v.p < r.deg {
		inPort = topology.Port(v.p)
		inVCIdx = v.vc
	}
	allowMisroute := r.cfg.MisrouteAfter > 0 &&
		head.Worm.Attempt() >= r.cfg.MisrouteAfter &&
		int(head.Detours) < r.cfg.MaxDetours
	req := routing.Request{
		Topo:          r.topo,
		Cur:           r.id,
		Dst:           head.Dst,
		InPort:        inPort,
		InVC:          inVCIdx,
		NumVCs:        r.cfg.VCs,
		AllowMisroute: allowMisroute,
		LinkUp:        r.linkUp,
		PortBuf:       r.portBuf[:0],
	}
	r.candBuf = r.alg.Route(req, r.candBuf[:0])
	if len(r.candBuf) == 0 {
		return false
	}

	// Pass 1: non-escape candidates, rotated for fairness.
	free := 0
	for i := range r.candBuf {
		c := r.candBuf[i]
		if !c.Escape && r.candFree(c) {
			r.candBuf[free] = c
			free++
		}
	}
	if free > 0 {
		return r.claim(v, head, r.selectCandidate(r.candBuf[:free]))
	}
	// Pass 2: escape candidates in preference order.
	r.candBuf = r.alg.Route(req, r.candBuf[:0])
	for _, c := range r.candBuf {
		if c.Escape && r.candFree(c) {
			return r.claim(v, head, c)
		}
	}
	return false
}

// selectCandidate applies the configured selection policy to a non-empty
// list of free, equally preferred candidates.
//
//cr:hotpath candidate selection on every successful allocation
func (r *Router) selectCandidate(free []routing.Candidate) routing.Candidate {
	switch r.cfg.Select {
	case SelectFirst:
		return free[0]
	case SelectLeastLoaded:
		best := free[0]
		bestCred := r.portCredit(best.Port)
		for _, c := range free[1:] {
			if cred := r.portCredit(c.Port); cred > bestCred {
				best, bestCred = c, cred
			}
		}
		return best
	default: // SelectRotating
		r.allocRR++
		return free[r.allocRR%len(free)]
	}
}

// portCredit returns the total downstream credit across a network
// output port's virtual channels — its "drained-ness".
//
//cr:hotpath least-loaded selection metric
func (r *Router) portCredit(p topology.Port) int {
	total := 0
	for vc := range r.outs[p].vcs {
		total += r.outs[p].vcs[vc].credit
	}
	return total
}

// candFree reports whether a candidate output VC can be claimed: link
// alive, not held, and the downstream buffer fully drained (all credits
// home — credit has returned to the current window). The credit
// condition keeps consecutive worms on one VC from overlapping — the
// new head must not arrive while the previous worm's tail is still
// buffered downstream. Under static FIFO the window is constant
// BufDepth, making this the original fixed-depth test; the shared
// organizations compare against the dynamically advertised window.
//
//cr:hotpath per-candidate freeness test during allocation
func (r *Router) candFree(c routing.Candidate) bool {
	out := &r.outs[c.Port]
	ov := &out.vcs[c.VC]
	return out.linkUp && !ov.held && ov.credit == ov.window
}

//cr:hotpath output-VC claim on every successful allocation
func (r *Router) claim(v *inVC, head *flit.Flit, c routing.Candidate) bool {
	o := &r.outs[c.Port].vcs[c.VC]
	o.held = true
	o.worm = v.worm
	o.ownerP, o.ownerV = v.p, v.vc
	v.routed = true
	v.outP, v.outV = int(c.Port), c.VC
	r.stats.HeadersRouted++
	if c.Escape {
		r.stats.PDS++
	}
	head.Hops++
	if int(head.Hops) > r.maxHops {
		r.maxHops = int(head.Hops)
		r.maxHopsWorm = head.Worm
	}
	next, _ := r.topo.Neighbor(r.id, c.Port)
	if r.topo.Distance(next, head.Dst) >= r.topo.Distance(r.id, head.Dst) {
		head.Detours++
		r.stats.Misroutes++
	}
	return true
}
