// Package router implements the wormhole router at every network node:
// per-virtual-channel input buffering with credit-based flow control,
// header routing and virtual-channel allocation, round-robin switch
// arbitration, and the out-of-band tear-down signalling (forward KILL,
// backward FKILL) that Compressionless Routing uses to recover from
// potential deadlocks and faults.
//
// The router is driven by the network package in four phases per cycle:
//
//  1. AcceptFlit — link arrivals from the previous cycle land in input
//     buffers (the network applies fault injection first).
//  2. ApplySignal — out-of-band KILL/FKILL signals scheduled for this
//     cycle tear down worm state and emit further propagations.
//  3. RouteAndAllocate — head flits at buffer fronts claim output
//     virtual channels (or an ejection channel at their destination).
//  4. Transmit — each output physical channel forwards at most one flit,
//     consuming a downstream credit; dequeues emit credits upstream.
//
// Layout: all virtual-channel state lives in flat, index-addressed
// slices — one contiguous []inVC for every input VC (network ports
// first, injection channels after), one contiguous []outVC behind the
// per-port output views, and a bufStore (see buforg.go) holding every
// input VC's FIFO storage under the configured buffer organization
// (static per-VC windows, per-port DAMQ pools, or one router-wide
// credit-shared pool). Construction performs the only allocations; the
// steady state allocates nothing in any organization.
//
// Activity: Busy reports whether any flit is buffered here. A router
// with no buffered flits has nothing to do in RouteAndAllocate or
// Transmit (both act only on occupied input VCs), which is what lets
// the network's cycle engine skip quiescent routers entirely.
//
// Determinism: all iteration is in fixed port/VC order and arbitration
// state advances deterministically, so identical inputs give identical
// simulations.
package router

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// Selection chooses among the free candidate outputs an adaptive
// routing function offers — the router's congestion-response policy.
type Selection uint8

const (
	// SelectRotating cycles a pointer over the free candidates: cheap,
	// deterministic load spreading (the default).
	SelectRotating Selection = iota
	// SelectFirst always takes the first free candidate in the routing
	// function's preference order (lowest dimension first): no load
	// spreading, the weakest policy.
	SelectFirst
	// SelectLeastLoaded takes the free candidate on the output port with
	// the most total downstream credit across its virtual channels — a
	// congestion-aware policy that steers worms toward drained
	// directions.
	SelectLeastLoaded
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case SelectRotating:
		return "rotating"
	case SelectFirst:
		return "first"
	case SelectLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("Selection(%d)", uint8(s))
	}
}

// Config carries the per-router structural parameters.
type Config struct {
	// VCs is the number of virtual channels per network input port.
	VCs int
	// BufDepth is the flit capacity of each virtual-channel buffer. CR
	// uses shallow buffers (the paper fixes 2); DOR baselines sweep it.
	BufDepth int
	// InjectionChannels is the number of injection ports from the local
	// node interface (each with a single VC of BufDepth flits).
	InjectionChannels int
	// EjectionChannels is the number of ejection ports to the local node
	// interface, each delivering one flit per cycle.
	EjectionChannels int
	// VerifyHeaders makes the router checksum-verify head flits before
	// routing them, tearing the worm down backward on corruption (FCR's
	// per-hop header protection).
	VerifyHeaders bool
	// RouterTimeout, when positive, enables the paper's "path-wide"
	// alternative timeout scheme (Section 7): a router whose input VC
	// holds a header blocked for RouterTimeout cycles tears the worm
	// down itself (backward to the source, which retransmits). The
	// paper's chosen design is the source-based timeout; this knob
	// exists for the ablation showing path-wide schemes kill more and
	// perform worse.
	RouterTimeout int
	// MisrouteAfter, when positive, allows worms on attempt >=
	// MisrouteAfter to take non-minimal hops around dead links, up to
	// MaxDetours per worm.
	MisrouteAfter int
	// MaxDetours bounds non-minimal hops per worm when misrouting.
	MaxDetours int
	// Select chooses among free adaptive candidates (default rotating).
	Select Selection
	// Org selects the input-buffer organization (default static FIFO;
	// see buforg.go).
	Org BufferOrg
	// BufReserve is the per-VC reserved slot minimum under the shared
	// organizations (DAMQ, credit-shared); 0 means 1. Ignored for
	// static FIFO.
	BufReserve int
	// BufShare is the per-VC sharing cap above the reserve under the
	// shared organizations; 0 means BufDepth. A VC's window never
	// exceeds BufReserve+BufShare (further clamped so every sibling
	// keeps its reserve). Ignored for static FIFO.
	BufShare int
	// Check enables internal invariant verification after every phase;
	// used by tests.
	Check bool
}

func (c Config) validate() error {
	if c.VCs < 1 {
		return fmt.Errorf("router: VCs = %d", c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("router: BufDepth = %d", c.BufDepth)
	}
	if c.InjectionChannels < 1 || c.EjectionChannels < 1 {
		return fmt.Errorf("router: need at least one injection and ejection channel, have %d/%d",
			c.InjectionChannels, c.EjectionChannels)
	}
	if c.MisrouteAfter > 0 && c.MaxDetours < 1 {
		return fmt.Errorf("router: misrouting enabled with MaxDetours = %d", c.MaxDetours)
	}
	if c.Org != OrgStaticFIFO && c.Org != OrgDAMQ && c.Org != OrgCreditShared {
		return fmt.Errorf("router: unknown buffer org %d", c.Org)
	}
	if c.BufReserve < 0 || c.BufReserve > c.BufDepth {
		return fmt.Errorf("router: BufReserve = %d with BufDepth = %d", c.BufReserve, c.BufDepth)
	}
	if c.BufShare < 0 {
		return fmt.Errorf("router: BufShare = %d", c.BufShare)
	}
	return nil
}

// inVC is the state of one input virtual channel: the occupancy of its
// FIFO (storage lives in the router's bufStore, addressed by the flat
// index idx) plus the worm claim and output allocation. p/vc record the
// VC's own address so flat iteration needs no index arithmetic.
type inVC struct {
	idx   int32 // flat index into the router's bufStore
	count int   // FIFO occupancy

	p  int // input port this VC belongs to
	vc int // VC index within the port

	active bool // a worm has claimed this VC (head arrived, tail not yet passed)
	worm   flit.WormID
	routed bool // output allocation held
	outP   int  // allocated output port
	outV   int  // allocated output VC

	// purgeWorm absorbs the single straggler flit that can be in flight
	// when a tear-down purges this VC.
	purgeWorm  flit.WormID
	purgeValid bool

	// blocked counts consecutive cycles a header waited for an output;
	// used by the path-wide timeout ablation (Config.RouterTimeout) and
	// by the deadlock watchdog (BlockedWorms).
	blocked int
}

//cr:hotpath front access during allocation and arbitration
func (r *Router) front(v *inVC) *flit.Flit { return r.store.front(int(v.idx)) }

//cr:hotpath buffer push on every accepted or injected flit
func (r *Router) push(v *inVC, f flit.Flit) {
	if v.count == r.store.capOf(int(v.idx)) {
		panic("router: input VC overflow (credit protocol violated)")
	}
	r.store.push(int(v.idx), v.count, f)
	v.count++
}

//cr:hotpath buffer pop on every transmitted flit
func (r *Router) pop(v *inVC) flit.Flit {
	if v.count == 0 {
		panic("router: pop from empty VC")
	}
	f := r.store.pop(int(v.idx))
	v.count--
	return f
}

// outVC is the state of one output virtual channel: the holding worm (if
// any), the credit count for the downstream buffer, and the current
// window — the downstream occupancy the worm may reach. For static FIFO
// the window is constant BufDepth; the shared organizations start at the
// reserve and move it with advertised deltas (see buforg.go).
type outVC struct {
	held   bool
	worm   flit.WormID
	ownerP int // input port of the owning worm
	ownerV int
	credit int
	window int // current downstream window (credit's ceiling)
}

// output is one output physical channel with its VCs and arbitration
// pointer. vcs is a window into the router's shared outVC arena.
type output struct {
	vcs    []outVC
	rr     int // round-robin pointer over flattened input VC indices
	linkUp bool
	// ejection marks local delivery channels: single VC, no credits,
	// one flit per cycle.
	ejection bool
}

// Stats are the router's event counters, accumulated over a run.
type Stats struct {
	FlitsMoved     int64 // flits forwarded through the crossbar
	HeadersRouted  int64 // successful output allocations
	PDS            int64 // escape-channel allocations (potential deadlock situations)
	Misroutes      int64 // non-minimal hops taken
	KillsFwd       int64 // forward KILL signals processed
	RouterKills    int64 // path-wide timeout kills initiated by routers
	KillsBwd       int64 // backward FKILL signals processed
	StaleSignals   int64 // tear-downs that found no matching worm
	PurgedFlits    int64 // flits discarded by tear-downs
	Stragglers     int64 // in-flight flits absorbed after a purge
	HeaderFaults   int64 // corrupt headers detected (VerifyHeaders)
	BlockedHeaders int64 // cycles a head flit waited for an output
}

// Add accumulates other's counters into s.
func (s *Stats) Add(o Stats) {
	s.FlitsMoved += o.FlitsMoved
	s.HeadersRouted += o.HeadersRouted
	s.PDS += o.PDS
	s.Misroutes += o.Misroutes
	s.KillsFwd += o.KillsFwd
	s.RouterKills += o.RouterKills
	s.KillsBwd += o.KillsBwd
	s.StaleSignals += o.StaleSignals
	s.PurgedFlits += o.PurgedFlits
	s.Stragglers += o.Stragglers
	s.HeaderFaults += o.HeaderFaults
	s.BlockedHeaders += o.BlockedHeaders
}

// Router is one wormhole router. Construct with New; drive with the
// phase methods. Routers are not safe for concurrent use — the network's
// cycle loop is single-threaded by design (determinism).
type Router struct {
	id   topology.NodeID   //cr:nosnap node identity, fixed at construction
	topo topology.Topology //cr:nosnap immutable, supplied by the constructor
	alg  routing.Algorithm //cr:nosnap stateless strategy object, supplied by the constructor
	cfg  Config            //cr:nosnap construction parameters
	deg  int               //cr:nosnap derived from the topology at construction

	// ins holds every input VC flat: network ports' VCs first
	// (port-major: port p's VCs occupy ins[p*VCs : (p+1)*VCs]), then one
	// single-VC entry per injection channel. The slice is never
	// reallocated, so *inVC pointers into it stay valid for the router's
	// lifetime.
	ins   []inVC
	store bufStore // FIFO storage under the configured organization

	// advert publishes window deltas upstream for the shared
	// organizations (nil until SetAdvertiser; static FIFO never calls
	// it). activeFn/emitFn are the pre-bound closures handed to
	// bufStore.release so the hot path passes no new allocations.
	advert   CreditAdvert       //cr:nosnap callback, reattached by the owner after restore
	activeFn func(j int) bool   //cr:nosnap pre-bound closure, rebuilt at construction
	emitFn   func(j, delta int) //cr:nosnap pre-bound closure, rebuilt at construction

	outs     []output // per output port; vcs window into outArena
	outArena []outVC  //cr:nosnap backing arena; its state is serialized through the outs windows

	// buffered is the total flit count across all input VCs, maintained
	// incrementally; Busy() == (buffered > 0) is the activity signal the
	// network's scheduler keys on.
	buffered int //cr:nosnap derived total, recomputed by LoadState from the restored input VCs

	allocRR int // rotation for adaptive candidate selection
	stats   Stats

	// maxHops is the largest per-worm hop count observed here (see
	// flit.Flit.Hops), the livelock watchdog's raw signal.
	maxHops     int
	maxHopsWorm flit.WormID

	candBuf []routing.Candidate      //cr:nosnap per-call scratch
	portBuf []topology.Port          //cr:nosnap per-call scratch handed to routing via Request.PortBuf
	linkUp  func(topology.Port) bool //cr:nosnap callback, reattached by the owner after restore
}

// New constructs a router for node id of topo using the routing
// algorithm alg. It panics on invalid configuration (construction-time
// errors are programming errors).
func New(id topology.NodeID, topo topology.Topology, alg routing.Algorithm, cfg Config) *Router {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if min := alg.MinVCs(topo); cfg.VCs < min {
		panic(fmt.Sprintf("router: %s needs %d VCs on %s, config has %d", alg.Name(), min, topo.Name(), cfg.VCs))
	}
	deg := topo.Degree()
	r := &Router{id: id, topo: topo, alg: alg, cfg: cfg, deg: deg}
	nIn := deg*cfg.VCs + cfg.InjectionChannels
	r.ins = make([]inVC, nIn)
	r.store = newBufStore(cfg, deg, nIn)
	for i := range r.ins {
		v := &r.ins[i]
		v.idx = int32(i)
		if i < deg*cfg.VCs {
			v.p, v.vc = i/cfg.VCs, i%cfg.VCs
		} else {
			v.p, v.vc = deg+(i-deg*cfg.VCs), 0
		}
		v.outP, v.outV = -1, -1
	}
	r.outs = make([]output, deg+cfg.EjectionChannels)
	r.outArena = make([]outVC, deg*cfg.VCs+cfg.EjectionChannels)
	for p := range r.outs {
		o := &r.outs[p]
		o.linkUp = true
		if p >= deg {
			o.ejection = true
			o.vcs = r.outArena[deg*cfg.VCs+(p-deg) : deg*cfg.VCs+(p-deg)+1]
			o.vcs[0] = outVC{credit: 1 << 30, window: 1 << 30}
		} else {
			o.vcs = r.outArena[p*cfg.VCs : (p+1)*cfg.VCs]
			w := cfg.initWindow()
			for v := range o.vcs {
				o.vcs[v].credit = w
				o.vcs[v].window = w
			}
			if _, ok := topo.Neighbor(id, topology.Port(p)); !ok {
				o.linkUp = false // unconnected mesh edge
			}
		}
	}
	r.portBuf = make([]topology.Port, 0, deg)
	r.linkUp = func(port topology.Port) bool { return r.outs[port].linkUp }
	r.activeFn = func(j int) bool { return r.ins[j].active }
	r.emitFn = func(j, delta int) {
		if r.advert == nil {
			return
		}
		v := &r.ins[j]
		r.advert(v.p, v.vc, delta)
	}
	return r
}

// in returns input VC (p, vc). Network ports hold cfg.VCs channels;
// injection ports (p >= deg) hold one.
func (r *Router) in(p, vc int) *inVC {
	if p < r.deg {
		return &r.ins[p*r.cfg.VCs+vc]
	}
	return &r.ins[r.deg*r.cfg.VCs+(p-r.deg)]
}

// numVCs returns how many virtual channels input port p carries.
func (r *Router) numVCs(p int) int {
	if p < r.deg {
		return r.cfg.VCs
	}
	return 1
}

// Reset returns the router to its as-constructed state — empty buffers,
// full credits, live links recomputed from the topology, zeroed
// counters and arbitration pointers — without allocating. Network.Reset
// uses it to reuse a network across runs.
func (r *Router) Reset() {
	for i := range r.ins {
		v := &r.ins[i]
		v.count = 0
		v.active, v.routed = false, false
		v.worm = 0
		v.outP, v.outV = -1, -1
		v.purgeWorm, v.purgeValid = 0, false
		v.blocked = 0
	}
	r.store.reset()
	for p := range r.outs {
		o := &r.outs[p]
		o.rr = 0
		if o.ejection {
			o.linkUp = true
			o.vcs[0] = outVC{credit: 1 << 30, window: 1 << 30}
			continue
		}
		_, connected := r.topo.Neighbor(r.id, topology.Port(p))
		o.linkUp = connected
		w := r.cfg.initWindow()
		for vc := range o.vcs {
			o.vcs[vc] = outVC{credit: w, window: w}
		}
	}
	r.buffered = 0
	r.allocRR = 0
	r.stats = Stats{}
	r.maxHops = 0
	r.maxHopsWorm = 0
}

// ID returns the router's node id.
func (r *Router) ID() topology.NodeID { return r.id }

// Stats returns a copy of the router's counters.
func (r *Router) Stats() Stats { return r.stats }

// Degree returns the number of network ports.
func (r *Router) Degree() int { return r.deg }

// Busy reports whether any flit is buffered in the router. A non-busy
// router does nothing in RouteAndAllocate or Transmit (both act only on
// occupied input VCs), so the network's cycle engine may skip it until
// a flit arrives or is injected.
func (r *Router) Busy() bool { return r.buffered > 0 }

// InjPort returns the input port index of injection channel ch.
func (r *Router) InjPort(ch int) int { return r.deg + ch }

// EjPort returns the output port index of ejection channel ch.
func (r *Router) EjPort(ch int) int { return r.deg + ch }

// IsEjection reports whether output port p is an ejection channel.
func (r *Router) IsEjection(p int) bool { return p >= r.deg }

// LinkUp reports whether the outgoing link on network port p is alive.
func (r *Router) LinkUp(p int) bool { return r.outs[p].linkUp }

// SetLinkDown marks the outgoing link on network port p dead. Worm
// tear-down for the link's victims is driven by the network via
// HeldWorms/ActiveWorms and ApplySignal.
func (r *Router) SetLinkDown(p int) { r.outs[p].linkUp = false }

// SetLinkUp restores the outgoing link on network port p after a repair:
// the link comes back with no holders and a fully drained downstream
// buffer (the network resets the downstream input side in the same
// event, which returns every downstream window to the reserve), so
// every virtual channel is immediately claimable at its initial window.
func (r *Router) SetLinkUp(p int) {
	out := &r.outs[p]
	out.linkUp = true
	w := r.cfg.initWindow()
	for vc := range out.vcs {
		o := &out.vcs[vc]
		o.held = false
		o.credit = w
		o.window = w
	}
}

// ResetInput clears the residue of a dead upstream link from network
// input port p after a repair: straggler-absorber markers and blocked
// counters are dropped, and any window grant stranded by a kill
// teardown is silently returned to the reserve — the repair path resets
// the upstream window to the reserve too (SetLinkUp), so the mirror is
// restored on both ends without an advertisement. Active worms must
// already have been torn down (the network sweeps ActiveWorms before
// calling this); buffered flits of live worms would be a protocol
// violation.
func (r *Router) ResetInput(p int) {
	for vc := 0; vc < r.numVCs(p); vc++ {
		v := r.in(p, vc)
		if v.active || v.count > 0 {
			panic(fmt.Sprintf("router %d: ResetInput(%d) with live worm %d (%d flits)", r.id, p, v.worm, v.count))
		}
		v.purgeValid = false
		v.purgeWorm = 0
		v.blocked = 0
		r.store.resetGrant(int(v.idx))
	}
}

// MaxHops returns the largest per-worm hop count any head flit showed
// while claiming a channel here, with the worm that set it — the
// livelock watchdog's raw signal.
func (r *Router) MaxHops() (int, flit.WormID) { return r.maxHops, r.maxHopsWorm }

// InjectionFree returns the free buffer slots of injection channel ch.
func (r *Router) InjectionFree(ch int) int {
	v := r.in(r.InjPort(ch), 0)
	return r.cfg.BufDepth - v.count
}

// InjectionReady reports whether injection channel ch is idle and empty,
// so a new worm's head flit may be injected.
func (r *Router) InjectionReady(ch int) bool {
	v := r.in(r.InjPort(ch), 0)
	return !v.active && v.count == 0
}

// Inject places a flit into injection channel ch's buffer. The caller
// (the NIC injector) must have checked InjectionFree. A head flit claims
// the channel for its worm.
func (r *Router) Inject(ch int, f flit.Flit) {
	v := r.in(r.InjPort(ch), 0)
	if f.Kind == flit.Head {
		if v.active {
			panic(fmt.Sprintf("router %d: injected head into busy channel %d", r.id, ch))
		}
		v.active = true
		v.worm = f.Worm
		v.purgeValid = false
		v.blocked = 0
	} else if !v.active || v.worm != f.Worm {
		panic(fmt.Sprintf("router %d: injected body flit of worm %d into channel owned by %d", r.id, f.Worm, v.worm))
	}
	r.push(v, f)
	r.buffered++
}

// AcceptFlit delivers a flit arriving over the incoming link of network
// input port p on virtual channel vc. It returns true if the flit was
// absorbed as a tear-down straggler (the network then refunds the
// upstream credit as if the flit had been consumed).
func (r *Router) AcceptFlit(p, vc int, f flit.Flit) bool {
	v := r.in(p, vc)
	if v.purgeValid && v.purgeWorm == f.Worm {
		r.stats.Stragglers++
		return true
	}
	if f.Kind == flit.Head {
		if v.active {
			panic(fmt.Sprintf("router %d: head of worm %d arrived on busy VC (%d,%d) owned by %d",
				r.id, f.Worm, p, vc, v.worm))
		}
		v.active = true
		v.worm = f.Worm
		v.routed = false
		v.purgeValid = false
		v.blocked = 0
		// Shared organizations grow the VC's window on head acceptance
		// and advertise the delta upstream (a no-op for static FIFO).
		if g := r.store.grantOnHead(int(v.idx)); g > 0 && r.advert != nil {
			r.advert(p, vc, g)
		}
	} else if r.cfg.Check && (!v.active || v.worm != f.Worm) {
		panic(fmt.Sprintf("router %d: body flit %v arrived on VC (%d,%d) not owned by its worm", r.id, f, p, vc))
	}
	r.push(v, f)
	r.buffered++
	return false
}
