package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableJSON(t *testing.T) {
	tbl := NewTable("T: demo", "scheme", "load", "thpt")
	tbl.AddRow("CR", 0.5, 0.301)
	tbl.AddRow("DOR", 0.5, 0.148)

	j := tbl.JSON()
	if j.Title != "T: demo" {
		t.Fatalf("title = %q", j.Title)
	}
	if len(j.Columns) != 3 || j.Columns[2] != "thpt" {
		t.Fatalf("columns = %v", j.Columns)
	}
	if len(j.Rows) != 2 || j.Rows[0][0] != "CR" {
		t.Fatalf("rows = %v", j.Rows)
	}
	// Cells must match the text renderer's formatting exactly.
	if j.Rows[0][2] != "0.301" || j.Rows[0][1] != "0.5" {
		t.Fatalf("float formatting drifted: %v", j.Rows[0])
	}

	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back TableJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows[1][0] != "DOR" {
		t.Fatalf("round trip lost data: %v", back)
	}
}

func TestTableJSONEmpty(t *testing.T) {
	tbl := NewTable("empty")
	b, err := json.Marshal(tbl.JSON())
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if strings.Contains(s, "null") {
		t.Fatalf("empty table encodes null: %s", s)
	}
}

func TestTableJSONIsACopy(t *testing.T) {
	tbl := NewTable("T", "a")
	tbl.AddRow("x")
	j := tbl.JSON()
	j.Rows[0][0] = "mutated"
	if tbl.Row(0)[0] != "x" {
		t.Fatal("JSON() aliases table storage")
	}
}
