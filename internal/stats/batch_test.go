package stats

import (
	"math"
	"testing"

	"crnet/internal/rng"
)

func TestBatchMeansIIDCoverage(t *testing.T) {
	// For iid uniform(0,10) data the true mean is 5; the 95% interval
	// should contain it in most replications.
	hits := 0
	const reps = 60
	for rep := 0; rep < reps; rep++ {
		r := rng.New(uint64(rep) + 1)
		bm := NewBatchMeans(50)
		for i := 0; i < 5000; i++ {
			bm.Add(r.Float64() * 10)
		}
		half, ok := bm.CI95()
		if !ok {
			t.Fatal("no CI with 100 batches")
		}
		if math.Abs(bm.Mean()-5) <= half {
			hits++
		}
	}
	// Expected ~57/60; require a loose lower bound.
	if hits < 50 {
		t.Fatalf("CI covered the true mean in only %d/%d replications", hits, reps)
	}
}

func TestBatchMeansCountsAndPartialBatch(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 25; i++ {
		bm.Add(float64(i))
	}
	if bm.Batches() != 2 {
		t.Fatalf("batches = %d, want 2 (partial third ignored)", bm.Batches())
	}
	// Batch means: mean(0..9)=4.5, mean(10..19)=14.5 -> grand mean 9.5.
	if bm.Mean() != 9.5 {
		t.Fatalf("mean = %v", bm.Mean())
	}
}

func TestBatchMeansCIRequiresTwoBatches(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 10; i++ {
		bm.Add(1)
	}
	if _, ok := bm.CI95(); ok {
		t.Fatal("CI reported with a single batch")
	}
	for i := 0; i < 10; i++ {
		bm.Add(3)
	}
	half, ok := bm.CI95()
	if !ok {
		t.Fatal("no CI with two batches")
	}
	// Two batch means 1 and 3: se = sqrt(2)/sqrt(2) = 1, t(1) = 12.706.
	if math.Abs(half-12.706) > 1e-9 {
		t.Fatalf("half-width = %v, want 12.706", half)
	}
}

func TestBatchMeansZeroVariance(t *testing.T) {
	bm := NewBatchMeans(5)
	for i := 0; i < 50; i++ {
		bm.Add(7)
	}
	half, ok := bm.CI95()
	if !ok || half != 0 {
		t.Fatalf("constant series: half=%v ok=%v", half, ok)
	}
	if bm.Mean() != 7 {
		t.Fatalf("mean = %v", bm.Mean())
	}
}

func TestTQuantileShape(t *testing.T) {
	if tQuantile975(1) != 12.706 {
		t.Fatal("df=1 quantile wrong")
	}
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		q := tQuantile975(df)
		if q > prev {
			t.Fatalf("t quantile not decreasing at df=%d", df)
		}
		prev = q
	}
	if tQuantile975(1000) != 1.960 {
		t.Fatal("large-df quantile should be normal")
	}
	if !math.IsInf(tQuantile975(0), 1) {
		t.Fatal("df=0 should be infinite")
	}
}

func TestBatchMeansBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("batch size 0 accepted")
		}
	}()
	NewBatchMeans(0)
}
