// Package stats provides the estimators and report formatting used by the
// simulation harness: streaming mean/variance (Welford), latency
// histograms with percentile queries, and aligned-text/CSV tables in the
// style of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford is a streaming mean/variance estimator. The zero value is ready
// to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation, or 0 with none.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with none.
func (w *Welford) Max() float64 { return w.max }

// Merge combines another estimator's observations into w (parallel
// Chan et al. update). Merging an estimator into itself is rejected:
// the update reads o while mutating w, so aliasing would silently
// double-count every moment (n and m2 doubled, variance corrupted).
func (w *Welford) Merge(o *Welford) {
	if w == o {
		panic("stats: Welford.Merge with itself would double-count")
	}
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Histogram is a fixed-width integer-valued histogram with an overflow
// bucket, sized for cycle-latency measurements.
type Histogram struct {
	width    int64 // bucket width in value units
	buckets  []int64
	overflow int64
	total    int64
	sum      int64
	maxSeen  int64
	clamped  int64 // negative observations clamped to zero
}

// NewHistogram returns a histogram with the given bucket width and bucket
// count; values >= width*buckets land in the overflow bucket.
func NewHistogram(width int64, buckets int) *Histogram {
	if width < 1 || buckets < 1 {
		panic(fmt.Sprintf("stats: invalid histogram shape width=%d buckets=%d", width, buckets))
	}
	return &Histogram{width: width, buckets: make([]int64, buckets)}
}

// Add records one non-negative observation. Negative values are clamped
// to zero and counted (see ClampedNegative): the mean and sum then
// cover the clamped value, so a non-zero clamp count marks the
// histogram's aggregates as suspect — callers deriving values by
// subtraction (e.g. phase timestamps) should assert it stays zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
		h.clamped++
	}
	if v > h.maxSeen {
		h.maxSeen = v
	}
	h.total++
	h.sum += v
	idx := v / h.width
	if idx >= int64(len(h.buckets)) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// Reset clears all observations in place, retaining the shape and the
// bucket allocation, so windowed consumers (e.g. the degradation
// controller's per-window latency view) can reuse one histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.overflow, h.total, h.sum, h.maxSeen, h.clamped = 0, 0, 0, 0, 0
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// Mean returns the exact mean of all observations (tracked outside the
// buckets, so it is not quantized).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.maxSeen }

// Sum returns the exact sum of all observations (after clamping).
func (h *Histogram) Sum() int64 { return h.sum }

// ClampedNegative returns how many negative observations were clamped
// to zero by Add. Non-zero means Mean()/Sum() no longer reflect the
// raw data the caller passed in.
func (h *Histogram) ClampedNegative() int64 { return h.clamped }

// Percentile returns an upper bound on the p-quantile (0 < p <= 1),
// quantized to bucket boundaries and clamped to the maximum seen value
// — a reported percentile can never exceed Max(). Observations in the
// overflow bucket report the maximum seen value.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		p = math.SmallestNonzeroFloat64
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(h.total)))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			// The bucket's upper bound can overshoot the data (e.g. a
			// single observation of 3 in a width-10 bucket would report
			// 10); the true quantile can never exceed the maximum.
			if ub := (int64(i) + 1) * h.width; ub < h.maxSeen {
				return ub
			}
			return h.maxSeen
		}
	}
	return h.maxSeen
}

// Table is a simple column-oriented result table that renders as aligned
// text (for terminals) or CSV (for plotting).
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted with %v; float64 values are
// formatted with 4 significant digits.
func (t *Table) AddRow(values ...interface{}) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d values, table has %d columns", len(values), len(t.Columns)))
	}
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%.1f", x)
	}
	return fmt.Sprintf("%.4g", x)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i's cells.
func (t *Table) Row(i int) []string { return t.rows[i] }

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Sort orders rows by the given column parsed as a float; non-numeric
// cells sort last, ties keep insertion order.
func (t *Table) Sort(column int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, errA := parseFloat(t.rows[i][column])
		b, errB := parseFloat(t.rows[j][column])
		if errA != nil {
			return false
		}
		if errB != nil {
			return true
		}
		return a < b
	})
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}
