package stats

import (
	"strings"
	"testing"

	"crnet/internal/snapshot"
)

// TestHistogramLoadStateRejectsCorruptSnapshots is the regression table
// for the histogram codec's shape validation: a snapshot taken from a
// differently shaped histogram (bucket width or count) or a damaged
// payload must be refused before any bucket is overwritten — merging
// counts across shapes silently corrupts percentiles.
func TestHistogramLoadStateRejectsCorruptSnapshots(t *testing.T) {
	build := func(width int64, buckets int) *Histogram {
		h := NewHistogram(width, buckets)
		for v := int64(0); v < 100; v += 7 {
			h.Add(v)
		}
		return h
	}
	save := func(h *Histogram) []byte {
		var e snapshot.Encoder
		h.SaveState(&e)
		return e.Bytes()
	}
	// Sanity: an unmodified snapshot restores cleanly.
	if err := build(4, 8).LoadState(snapshot.NewDecoder(save(build(4, 8)))); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	cases := []struct {
		name, wantSub string
		build         func(t *testing.T) []byte
	}{
		{"width-mismatch", "histogram shape", func(t *testing.T) []byte {
			return save(build(8, 8))
		}},
		{"bucket-count-mismatch", "histogram shape", func(t *testing.T) []byte {
			return save(build(4, 16))
		}},
		{"truncated", "truncated", func(t *testing.T) []byte {
			raw := save(build(4, 8))
			return raw[:len(raw)-1]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := build(4, 8).LoadState(snapshot.NewDecoder(tc.build(t)))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestWelfordLoadStateRejectsTruncation checks the running-moment
// codec's sticky-error handling: a payload cut inside the float section
// is refused and the estimator keeps its pre-load state.
func TestWelfordLoadStateRejectsTruncation(t *testing.T) {
	var w Welford
	for v := 1; v <= 32; v++ {
		w.Add(float64(v))
	}
	var e snapshot.Encoder
	w.SaveState(&e)
	raw := e.Bytes()

	var target Welford
	target.Add(7)
	before := target
	if err := target.LoadState(snapshot.NewDecoder(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated snapshot accepted")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error %q does not mention truncation", err)
	}
	if target != before {
		t.Fatal("failed load mutated the estimator")
	}
}
