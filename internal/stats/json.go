package stats

// TableJSON is the JSON shape of a Table: the title, the column header
// and every data row, cells pre-formatted exactly as the text/CSV
// renderers print them. Keeping cells as strings makes the JSON
// artifact byte-comparable with the rendered table (same float
// formatting) and sidesteps float round-tripping.
type TableJSON struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// JSON returns the table's JSON shape. Rows is never nil, so an empty
// table encodes as [] rather than null.
func (t *Table) JSON() TableJSON {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	cols := append([]string(nil), t.Columns...)
	if cols == nil {
		cols = []string{}
	}
	return TableJSON{Title: t.Title, Columns: cols, Rows: rows}
}
