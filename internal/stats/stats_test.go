package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"crnet/internal/rng"
)

func TestWelfordAgainstBruteForce(t *testing.T) {
	r := rng.New(1)
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := r.Float64()*100 - 50
		xs = append(xs, x)
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-7 {
		t.Fatalf("var %v, want %v", w.Var(), variance)
	}
	if w.N() != 1000 {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, x := range []float64{5, -3, 7, 0} {
		w.Add(x)
	}
	if w.Min() != -3 || w.Max() != 7 {
		t.Fatalf("min=%v max=%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford not neutral")
	}
	w.Add(4)
	if w.Var() != 0 {
		t.Fatal("single observation should have zero variance")
	}
}

func TestWelfordMergeEquivalence(t *testing.T) {
	f := func(seedRaw uint16, split uint8) bool {
		r := rng.New(uint64(seedRaw) + 1)
		n := 100
		k := int(split) % n
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := r.Float64() * 10
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-7 &&
			a.N() == all.N() && a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeWithEmpty(t *testing.T) {
	var a, b Welford
	a.Add(3)
	a.Merge(&b) // merge empty into non-empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed state")
	}
	var c Welford
	c.Merge(&a) // merge into empty
	if c.N() != 1 || c.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 10) // buckets [0,10), [10,20), ... overflow >= 100
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Mean(); math.Abs(got-49.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if h.Max() != 99 {
		t.Fatalf("max = %d", h.Max())
	}
	// Median of 0..99 is <= 50; bucket upper bound quantization.
	if p := h.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %d, want 50", p)
	}
	// The top bucket's upper bound (100) exceeds the data; the result is
	// clamped to the maximum observation.
	if p := h.Percentile(1.0); p != 99 {
		t.Fatalf("p100 = %d, want 99 (max seen)", p)
	}
	if h.Sum() != 4950 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(10, 2) // overflow at >= 20
	h.Add(5)
	h.Add(500)
	if p := h.Percentile(1.0); p != 500 {
		t.Fatalf("overflow percentile = %d, want max 500", p)
	}
	if h.Mean() != 252.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(10, 4)
	h.Add(-5)
	if h.N() != 1 || h.Percentile(1) != 0 {
		t.Fatalf("negative value not clamped to zero: p100 = %d", h.Percentile(1))
	}
	if h.ClampedNegative() != 1 {
		t.Fatalf("clamped counter = %d, want 1", h.ClampedNegative())
	}
	h.Add(7)
	if h.ClampedNegative() != 1 || h.Sum() != 7 {
		t.Fatal("clamp counter or sum moved on a valid observation")
	}
}

// TestPercentileNeverExceedsMax is the regression test for the bucket
// upper-bound bug: Percentile used to return (i+1)*width, which can
// exceed the largest observation (width 10, single observation 3 ->
// P50 reported 10 > max 3). Every reported percentile must now be
// bounded by Max().
func TestPercentileNeverExceedsMax(t *testing.T) {
	h := NewHistogram(10, 8)
	h.Add(3)
	if p := h.Percentile(0.5); p != 3 {
		t.Fatalf("p50 of single observation 3 = %d, want 3", p)
	}

	r := rng.New(11)
	cases := []*Histogram{h}
	big := NewHistogram(16, 32)
	for i := 0; i < 2000; i++ {
		big.Add(int64(r.Intn(1000))) // exercises overflow too (>= 512)
	}
	cases = append(cases, big)
	for ci, hh := range cases {
		for p := 0.01; p <= 1.0; p += 0.01 {
			if got := hh.Percentile(p); got > hh.Max() {
				t.Fatalf("case %d: Percentile(%.2f) = %d exceeds Max() = %d", ci, p, got, hh.Max())
			}
		}
	}
}

func TestWelfordSelfMergePanics(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	defer func() {
		if recover() == nil {
			t.Fatal("self-merge did not panic (it would double-count n and m2)")
		}
	}()
	w.Merge(&w)
}

func TestHistogramEmptyAndBadShape(t *testing.T) {
	h := NewHistogram(8, 4)
	if h.Percentile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not neutral")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape did not panic")
		}
	}()
	NewHistogram(0, 4)
}

func TestHistogramPercentileMonotone(t *testing.T) {
	r := rng.New(7)
	h := NewHistogram(4, 64)
	for i := 0; i < 5000; i++ {
		h.Add(int64(r.Intn(300)))
	}
	prev := int64(0)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone: p%.0f=%d < %d", p*100, v, prev)
		}
		prev = v
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "load", "latency", "note")
	tb.AddRow(0.1, 23.4567, "ok")
	tb.AddRow(0.2, 42.0, "sat,urated")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "23.46") {
		t.Fatalf("text render missing content:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "load,latency,note") {
		t.Fatalf("csv missing header:\n%s", csv)
	}
	if !strings.Contains(csv, `"sat,urated"`) {
		t.Fatalf("csv did not quote comma cell:\n%s", csv)
	}
	if tb.NumRows() != 2 || len(tb.Row(0)) != 3 {
		t.Fatal("row accessors wrong")
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	tb.AddRow(1)
}

func TestTableSort(t *testing.T) {
	tb := NewTable("x", "v")
	tb.AddRow(3.0)
	tb.AddRow(1.0)
	tb.AddRow(2.0)
	tb.Sort(0)
	if tb.Row(0)[0] != "1.0" || tb.Row(2)[0] != "3.0" {
		t.Fatalf("sort failed: %v %v %v", tb.Row(0), tb.Row(1), tb.Row(2))
	}
}

func TestTableCSVQuoteEscaping(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddRow(`say "hi"`)
	if want := "\"say \"\"hi\"\"\""; !strings.Contains(tb.CSV(), want) {
		t.Fatalf("quote escaping wrong: %s", tb.CSV())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram(10, 10)
	for i := int64(0); i < 50; i++ {
		h.Add(i)
	}
	// p <= 0 clamps to the smallest positive quantile; p > 1 clamps to 1.
	if h.Percentile(-1) != h.Percentile(1e-300) {
		t.Fatal("negative p not clamped")
	}
	if h.Percentile(2) != h.Percentile(1) {
		t.Fatal("p > 1 not clamped")
	}
}

func TestTableSortNonNumericLast(t *testing.T) {
	tb := NewTable("x", "v")
	tb.AddRow("saturated")
	tb.AddRow(2.0)
	tb.AddRow(1.0)
	tb.Sort(0)
	if tb.Row(0)[0] != "1.0" || tb.Row(2)[0] != "saturated" {
		t.Fatalf("non-numeric sort wrong: %v %v %v", tb.Row(0), tb.Row(1), tb.Row(2))
	}
}
