package stats

import (
	"fmt"
	"math"
)

// BatchMeans estimates a steady-state mean with a confidence interval
// from a correlated series (per-message latencies, per-cycle loads) by
// the method of non-overlapping batch means: consecutive observations
// are grouped into fixed-size batches whose means are approximately
// independent, and a Student-t interval is formed over the batch means.
type BatchMeans struct {
	batchSize int
	current   Welford
	means     Welford
	inBatch   int
}

// NewBatchMeans returns an estimator with the given batch size. Batch
// sizes should exceed the series' correlation length; a few hundred
// observations per batch is typical for network latencies.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic(fmt.Sprintf("stats: batch size %d", batchSize))
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add incorporates one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	b.inBatch++
	if b.inBatch == b.batchSize {
		b.means.Add(b.current.Mean())
		b.current = Welford{}
		b.inBatch = 0
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.means.N() }

// Mean returns the grand mean over completed batches (0 if none).
func (b *BatchMeans) Mean() float64 { return b.means.Mean() }

// CI95 returns the half-width of the 95% confidence interval of the
// mean. ok is false with fewer than two completed batches.
func (b *BatchMeans) CI95() (half float64, ok bool) {
	n := b.means.N()
	if n < 2 {
		return 0, false
	}
	se := b.means.Std() / math.Sqrt(float64(n))
	return tQuantile975(int(n-1)) * se, true
}

// tQuantile975 returns the 97.5% quantile of Student's t distribution
// with df degrees of freedom (two-sided 95% interval). Exact table for
// small df, normal approximation above 30.
func tQuantile975(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}
