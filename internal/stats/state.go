package stats

import (
	"fmt"

	"crnet/internal/snapshot"
)

// Checkpoint codecs: a long-running service accumulates latency into
// Welford/Histogram estimators, so resuming a run byte-identically
// requires restoring their exact internal state (float bit patterns
// included — F64 round-trips IEEE-754 bits, not decimal renderings).

// SaveState appends the estimator's state to a snapshot.
func (w *Welford) SaveState(e *snapshot.Encoder) {
	e.Varint(w.n)
	e.F64(w.mean)
	e.F64(w.m2)
	e.F64(w.min)
	e.F64(w.max)
}

// LoadState restores a state written by SaveState.
func (w *Welford) LoadState(d *snapshot.Decoder) error {
	n := d.Varint()
	mean, m2 := d.F64(), d.F64()
	min, max := d.F64(), d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	w.n, w.mean, w.m2, w.min, w.max = n, mean, m2, min, max
	return nil
}

// SaveState appends the histogram's state to a snapshot. The shape
// (bucket width and count) is included and validated on load: merging
// counts into a differently shaped histogram would silently corrupt
// percentiles.
func (h *Histogram) SaveState(e *snapshot.Encoder) {
	e.Varint(h.width)
	e.Uvarint(uint64(len(h.buckets)))
	for _, b := range h.buckets {
		e.Varint(b)
	}
	e.Varint(h.overflow)
	e.Varint(h.total)
	e.Varint(h.sum)
	e.Varint(h.maxSeen)
	e.Varint(h.clamped)
}

// LoadState restores a state written by SaveState into a histogram of
// the same shape.
func (h *Histogram) LoadState(d *snapshot.Decoder) error {
	width := d.Varint()
	n := d.Count(1 << 24)
	if err := d.Err(); err != nil {
		return err
	}
	if width != h.width || n != len(h.buckets) {
		return fmt.Errorf("stats: snapshot histogram shape width=%d buckets=%d, have width=%d buckets=%d",
			width, n, h.width, len(h.buckets))
	}
	buckets := make([]int64, n)
	for i := range buckets {
		buckets[i] = d.Varint()
	}
	overflow, total := d.Varint(), d.Varint()
	sum, maxSeen, clamped := d.Varint(), d.Varint(), d.Varint()
	if err := d.Err(); err != nil {
		return err
	}
	copy(h.buckets, buckets)
	h.overflow, h.total, h.sum, h.maxSeen, h.clamped = overflow, total, sum, maxSeen, clamped
	return nil
}
