// Package rng provides a small, deterministic pseudo-random number
// generator used by every stochastic component of the simulator.
//
// All simulation randomness flows through this package so that any
// experiment is exactly reproducible from its seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64; both are
// implemented here to keep the module dependency-free and to make the
// stream identical across Go releases (unlike math/rand's unspecified
// source).
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct one with New. Source is not safe for concurrent use;
// the simulator owns one Source per independent stochastic process.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64, which guarantees
// the four words of state are well mixed even for small seeds.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator to the stream determined by seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

// State returns the generator's four xoshiro256** state words, for
// checkpointing. Restoring them with SetState resumes the stream at
// exactly the next value.
func (r *Source) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// SetState installs a state previously captured with State. The
// all-zero state is invalid for xoshiro and is rejected with a panic
// (it can only arise from a corrupted or hand-rolled snapshot; the
// checkpoint container's checksum makes silent corruption unreachable).
func (r *Source) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: SetState with all-zero state")
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split returns a new Source whose stream is independent of r's for all
// practical purposes. It is used to give each node or process its own
// stream so that changing one component's consumption pattern does not
// perturb another's.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += t>>32 + aHi*bHi
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values of p outside [0,1]
// are clamped.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success. For
// p <= 0 it returns a very large value; for p >= 1 it returns 0.
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	u := r.Float64()
	// Inverse transform; both logs are of values in (0,1).
	n := math.Floor(math.Log(1-u) / math.Log(1-p))
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		n = math.MaxInt32
	}
	return int(n)
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
