package rng

import "testing"

func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	st := r.State()
	var want [16]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	var clone Source
	clone.SetState(st)
	for i := range want {
		if got := clone.Uint64(); got != want[i] {
			t.Fatalf("value %d after SetState: got %#x, want %#x", i, got, want[i])
		}
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("all-zero state accepted")
		}
	}()
	var r Source
	r.SetState([4]uint64{})
}
