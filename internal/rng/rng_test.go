package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestReseedRestartsStream(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d of 64 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent on %d of 64 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(12345)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(6)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(8)
	const p, trials = 0.25, 50000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // mean failures before success
	if got := sum / trials; math.Abs(got-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, got, want)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := New(9)
	if got := r.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
	if got := r.Geometric(0); got != math.MaxInt32 {
		t.Fatalf("Geometric(0) = %d, want MaxInt32", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(11)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d -> %d", sum, got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(256)
	}
}
