package harness

import (
	"bytes"
	"strings"
	"testing"
)

// futureArtifact is a payload "from the future": a schema number beyond
// SchemaVersion, a top-level section this code has never heard of, and
// a v4 checkpoint section.
const futureArtifact = `{
  "schema": 99,
  "tool": "crbench",
  "scale": {"name": "quick", "k": 8, "msg_len": 16, "warmup_cycles": 1500, "measure_cycles": 6000, "loads": [0.5], "seed": 1},
  "parallel": 4,
  "experiments": [],
  "checkpoint": {"file": "ckpt-0000000000004000.crsnap", "cycle": 16384, "trace": "diurnal", "stream_hash": "00c0ffee00c0ffee"},
  "quantum_sections": [{"qubits": 12}],
  "aux": {"note": "written by a newer tool"}
}`

// TestDecodeForwardCompat: a future-schema payload decodes, its known
// fields land, and its unknown fields are preserved and re-emitted.
func TestDecodeForwardCompat(t *testing.T) {
	a, err := DecodeArtifact(strings.NewReader(futureArtifact))
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != 99 || a.Tool != "crbench" || a.Scale.K != 8 {
		t.Fatalf("known fields misdecoded: %+v", a)
	}
	if a.Checkpoint == nil || a.Checkpoint.Cycle != 16384 || a.Checkpoint.StreamHash != "00c0ffee00c0ffee" {
		t.Fatalf("checkpoint section misdecoded: %+v", a.Checkpoint)
	}
	if len(a.Unknown) != 2 {
		t.Fatalf("unknown fields = %v, want quantum_sections and aux", a.Unknown)
	}

	var out bytes.Buffer
	if err := a.Encode(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"quantum_sections"`, `"qubits": 12`, `"written by a newer tool"`, `"checkpoint"`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("re-encoded artifact dropped %s:\n%s", want, out.String())
		}
	}

	// The round trip is stable: decode the re-encoding, encode again,
	// byte-identical.
	b, err := DecodeArtifact(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := b.Encode(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", out.String(), out2.String())
	}
}

// TestDecodeOldSchemas: v1-era payloads (no errors/time-series/
// checkpoint sections) still decode, with nothing spuriously classified
// as unknown.
func TestDecodeOldSchemas(t *testing.T) {
	const v1 = `{"schema": 1, "tool": "crbench", "scale": {"name": "quick"}, "parallel": 1, "experiments": []}`
	a, err := DecodeArtifact(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != 1 || len(a.Unknown) != 0 || a.Checkpoint != nil {
		t.Fatalf("v1 decode: %+v unknown=%v", a, a.Unknown)
	}
}

func TestDecodeRejectsInvalidSchema(t *testing.T) {
	for _, payload := range []string{
		`{"schema": 0, "tool": "x"}`,
		`{"tool": "x"}`,
		`not json`,
	} {
		if _, err := DecodeArtifact(strings.NewReader(payload)); err == nil {
			t.Errorf("payload %q accepted", payload)
		}
	}
}

// TestEncodeWithoutUnknownsUnchanged: artifacts built in-process (no
// Unknown map) encode exactly as the plain struct would — the custom
// marshaler must not perturb the existing byte-stable format.
func TestEncodeWithoutUnknownsUnchanged(t *testing.T) {
	a := &Artifact{Schema: SchemaVersion, Tool: "crbench", Scale: ScaleEcho{Name: "quick", K: 8}}
	var out bytes.Buffer
	if err := a.Encode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "{\n  \"schema\": 4,\n  \"tool\": \"crbench\",\n") {
		t.Fatalf("unexpected encoding:\n%s", out.String())
	}
	if strings.Contains(out.String(), "checkpoint") || strings.Contains(out.String(), "Unknown") {
		t.Fatalf("empty optional sections leaked:\n%s", out.String())
	}
}
