// The determinism regression test: a harness grid executed serially
// and with 8 workers must render byte-identical tables and canonical
// JSON artifacts. Run under -race this also proves the worker pool and
// the simulator's per-point isolation are data-race free — it is the
// test the Makefile's race target pins.
package harness_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"crnet/internal/harness"
	"crnet/internal/sim"
)

// detScale is a small grid that still exercises multi-series sweeps
// (E5 runs 5 series x 2 loads = 10 points).
var detScale = sim.Scale{
	K:       4,
	MsgLen:  8,
	Warmup:  300,
	Measure: 1200,
	Loads:   []float64{0.3, 0.7},
	Seed:    3,
}

// runArtifact executes the experiments at the given parallelism and
// packs results into an artifact the way crbench -json does.
func runArtifact(t *testing.T, ids []string, parallel int) (tables []string, art harness.Artifact) {
	t.Helper()
	s := detScale
	s.Parallel = parallel
	art = harness.Artifact{
		Schema:   harness.SchemaVersion,
		Tool:     "determinism-test",
		Scale:    harness.ScaleEcho{Name: "det", K: s.K, MsgLen: s.MsgLen, Warmup: s.Warmup, Measure: s.Measure, Loads: s.Loads, Seed: s.Seed},
		Parallel: parallel,
	}
	for _, id := range ids {
		var sweeps []harness.SweepTiming
		var series []harness.PointSeries
		s.Collect = func(label string, pointMS []float64) {
			sweeps = append(sweeps, harness.SweepTiming{Label: label, PointMS: pointMS})
		}
		s.CollectSeries = func(label string, ps []harness.PointSeries) {
			series = append(series, ps...)
		}
		e, ok := sim.ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		tbl := e.Run(s)
		tables = append(tables, tbl.String())
		art.Experiments = append(art.Experiments, harness.ExperimentResult{
			ID: e.ID, Title: e.Title, Paper: e.Paper, Table: tbl.JSON(), Sweeps: sweeps, TimeSeries: series,
		})
	}
	return tables, art
}

func TestParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~40 simulations")
	}
	// E25/E26 cover the observability layer: phase decomposition must be
	// identical across worker counts, and E26's sampled time-series ride
	// in the artifact's time_series section, so any scheduling leak into
	// the sampler shows up as a canonical-JSON diff.
	ids := []string{"E1", "E5", "E20", "E25", "E26"}
	serialTables, serialArt := runArtifact(t, ids, 1)
	parTables, parArt := runArtifact(t, ids, 8)

	for i := range ids {
		if serialTables[i] != parTables[i] {
			t.Errorf("%s: rendered tables differ between parallel=1 and parallel=8:\n--- serial ---\n%s--- parallel ---\n%s",
				ids[i], serialTables[i], parTables[i])
		}
	}

	sj, err := json.MarshalIndent(serialArt.Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.MarshalIndent(parArt.Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Errorf("canonical JSON artifacts differ between parallel=1 and parallel=8:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}

	// E26 must actually have produced time-series for every point.
	for _, e := range parArt.Experiments {
		if e.ID != "E26" {
			continue
		}
		if len(e.TimeSeries) != len(detScale.Loads) {
			t.Errorf("E26 produced %d time-series, want one per load (%d)",
				len(e.TimeSeries), len(detScale.Loads))
		}
		for _, ts := range e.TimeSeries {
			if len(ts.Data.Cycles) == 0 {
				t.Errorf("E26 %s load %.2f: empty time-series", ts.Label, ts.Load)
			}
		}
	}

	// The sweep timing channel must report one sample per point.
	for _, e := range parArt.Experiments {
		if len(e.Sweeps) == 0 {
			t.Errorf("%s reported no sweep timings", e.ID)
			continue
		}
		for _, sw := range e.Sweeps {
			if len(sw.PointMS) == 0 {
				t.Errorf("%s sweep %q has no per-point timings", e.ID, sw.Label)
			}
		}
	}
}

// TestPerPointSeedsAreIndependent pins the seed-derivation contract:
// two identical configurations at different grid indices draw different
// traffic streams, so replicates are real replicates.
func TestPerPointSeedsAreIndependent(t *testing.T) {
	if a, b := harness.PointSeed(detScale.Seed, 0), harness.PointSeed(detScale.Seed, 1); a == b {
		t.Fatal("adjacent points share a seed")
	}
}
