// Package harness is the parallel experiment engine: it schedules a
// declarative grid of independent simulation points over a bounded
// worker pool while keeping results bitwise identical to a serial run.
//
// Determinism rests on two rules. First, every point owns its inputs:
// the per-point RNG seed is derived with splitmix64 from (base seed,
// point index) by PointSeed, so no point's stochastic stream depends on
// scheduling order. Second, workers write results into a slice slot
// reserved per index and the caller reads them back in grid order, so
// the aggregate (tables, JSON artifacts) is byte-identical for any
// worker count.
//
// The package also defines the versioned JSON artifact written by
// `crbench -json` (see artifact.go) and the stderr progress reporter
// used for long sweeps (see progress.go).
package harness

import (
	"runtime"
	"sync"
)

// Options configures one Sweep.
type Options struct {
	// Workers bounds the worker pool. 0 (or negative) means
	// runtime.GOMAXPROCS(0); 1 runs the sweep serially on the calling
	// goroutine, which is useful for profiling and as the determinism
	// reference.
	Workers int
	// OnPoint, when non-nil, is called once per completed point, from
	// the completing worker's goroutine. It must be safe for concurrent
	// use (Progress.Point is).
	OnPoint func()
}

// workers resolves the effective pool size for n points.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep evaluates fn(i) for every i in [0, n) over the worker pool and
// returns the results indexed by i. The returned slice is identical for
// any worker count: result order is grid order, never completion order.
// fn must not depend on shared mutable state (each simulation point
// builds its own network); panics in fn propagate to the caller.
func Sweep[T any](n int, opt Options, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	results := make([]T, n)
	w := opt.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(i)
			if opt.OnPoint != nil {
				opt.OnPoint()
			}
		}
		return results
	}

	// Each worker pulls the next unclaimed index and writes only its own
	// slot, so the only shared state is the index counter and the
	// panic-forwarding cell.
	var (
		next     int64
		mu       sync.Mutex
		wg       sync.WaitGroup
		panicked any
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
						}
					}()
					results[i] = fn(i)
					if opt.OnPoint != nil {
						opt.OnPoint()
					}
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return results
}

// PointSeed derives the RNG seed for one grid point from the sweep's
// base seed and the point's index. It is the index-th output of a
// splitmix64 stream seeded at base, so distinct points get well-mixed,
// effectively independent seeds and the mapping never depends on worker
// scheduling. Index -1 (i.e. offset zero) is reserved for the sweep
// itself.
func PointSeed(base uint64, index int) uint64 {
	x := base + uint64(index+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
