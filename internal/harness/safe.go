package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SafeOptions configures one SweepSafe.
type SafeOptions struct {
	Options
	// PointTimeout bounds one point's wall-clock; 0 means no bound. A
	// point that exceeds it has its cancel channel closed and is
	// recorded as a timeout; its goroutine is abandoned (a point that
	// ignores cancellation leaks a goroutine for the sweep's remainder
	// but cannot stall it).
	PointTimeout time.Duration
	// OnPointMS, when non-nil, receives each successful point's
	// wall-clock duration in milliseconds, from the completing worker's
	// goroutine (calls for distinct indices may be concurrent). Failed
	// points report their partial timing through PointError.ElapsedMS
	// instead. This is the only wall-clock measurement a sweep needs:
	// callers in the simulation core must consume it rather than
	// sampling time.Now themselves (crlint's wallclock analyzer enforces
	// that).
	OnPointMS func(i int, ms float64)
}

// PointError records one failed sweep point for the artifact's errors
// section: the sweep completed, this point did not.
type PointError struct {
	// Index is the point's grid index.
	Index int `json:"index"`
	// Kind is "error", "panic" or "timeout".
	Kind string `json:"kind"`
	// Err is the error or panic message.
	Err string `json:"error"`
	// ElapsedMS is how long the point ran before failing (partial
	// timing; zeroed by Artifact.Canonical).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// Error kinds recorded in PointError.Kind.
const (
	PointErrKind   = "error"
	PointPanicKind = "panic"
	PointTimedOut  = "timeout"
)

// SweepSafe is Sweep hardened for chaos runs: fn returns an error
// instead of panicking the sweep, panics are captured per point, and an
// optional per-point timeout cancels runaways. The sweep always
// completes; failed points keep the zero T in the results slice and are
// reported in the second return value, sorted by index. fn receives a
// cancel channel that closes when the point times out — long-running
// points should poll it (sim.Config.Cancel does).
//
// Result determinism matches Sweep: successful slots are byte-identical
// for any worker count. Which points fail is deterministic for errors
// and panics; timeouts depend on wall-clock by nature.
func SweepSafe[T any](n int, opt SafeOptions, fn func(i int, cancel <-chan struct{}) (T, error)) ([]T, []PointError) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	var (
		mu   sync.Mutex
		errs []PointError
		wg   sync.WaitGroup
		next int64
	)
	fail := func(pe PointError) {
		mu.Lock()
		errs = append(errs, pe)
		mu.Unlock()
	}
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		i := int(next)
		next++
		return i
	}

	// outcome carries a child goroutine's result back to its worker.
	type outcome struct {
		val T
		err error
		pan any
		dur time.Duration
	}
	runPoint := func(i int) {
		start := time.Now()
		cancel := make(chan struct{})
		done := make(chan outcome, 1)
		go func() {
			var o outcome
			defer func() {
				if r := recover(); r != nil {
					o.pan = r
				}
				o.dur = time.Since(start)
				done <- o
			}()
			o.val, o.err = fn(i, cancel)
		}()

		var timeout <-chan time.Time
		if opt.PointTimeout > 0 {
			tm := time.NewTimer(opt.PointTimeout)
			defer tm.Stop()
			timeout = tm.C
		}
		select {
		case o := <-done:
			ms := float64(o.dur) / float64(time.Millisecond)
			switch {
			case o.pan != nil:
				fail(PointError{Index: i, Kind: PointPanicKind, Err: fmt.Sprint(o.pan), ElapsedMS: ms})
			case o.err != nil:
				fail(PointError{Index: i, Kind: PointErrKind, Err: o.err.Error(), ElapsedMS: ms})
			default:
				results[i] = o.val
				if opt.OnPointMS != nil {
					opt.OnPointMS(i, ms)
				}
			}
		case <-timeout:
			close(cancel) // ask the point to stop; do not wait for it
			fail(PointError{
				Index: i, Kind: PointTimedOut,
				Err:       fmt.Sprintf("point exceeded timeout %v", opt.PointTimeout),
				ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
			})
		}
		if opt.OnPoint != nil {
			opt.OnPoint()
		}
	}

	w := opt.workers(n)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				runPoint(i)
			}
		}()
	}
	wg.Wait()
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return results, errs
}
