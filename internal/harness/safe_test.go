package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSweepSafeAllHealthy(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, errs := SweepSafe(25, SafeOptions{Options: Options{Workers: workers}},
			func(i int, _ <-chan struct{}) (int, error) { return i * i, nil })
		if len(errs) != 0 {
			t.Fatalf("workers=%d: healthy sweep reported errors: %v", workers, errs)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepSafeEmpty(t *testing.T) {
	got, errs := SweepSafe(0, SafeOptions{}, func(i int, _ <-chan struct{}) (int, error) { return i, nil })
	if got != nil || errs != nil {
		t.Fatalf("empty sweep returned %v, %v", got, errs)
	}
}

// The acceptance criterion: a sweep containing a panicking point and a
// hanging point still completes, reports both failures, and returns the
// results of every other point.
func TestSweepSafeSurvivesPanicAndHang(t *testing.T) {
	const n = 12
	got, errs := SweepSafe(n, SafeOptions{
		Options:      Options{Workers: 4},
		PointTimeout: 100 * time.Millisecond,
	}, func(i int, cancel <-chan struct{}) (int, error) {
		switch i {
		case 3:
			panic(fmt.Sprintf("point %d exploded", i))
		case 7:
			<-cancel // hang until told to stop
			return 0, errors.New("cancelled")
		case 9:
			return 0, fmt.Errorf("point %d failed politely", i)
		}
		return i * 10, nil
	})
	if len(errs) != 3 {
		t.Fatalf("want 3 point errors, got %v", errs)
	}
	want := map[int]string{3: PointPanicKind, 7: PointTimedOut, 9: PointErrKind}
	for _, pe := range errs {
		if want[pe.Index] != pe.Kind {
			t.Fatalf("point %d recorded kind %q, want %q (%+v)", pe.Index, pe.Kind, want[pe.Index], pe)
		}
		if pe.Err == "" {
			t.Fatalf("point %d has empty error text", pe.Index)
		}
		delete(want, pe.Index)
	}
	for i, v := range got {
		switch i {
		case 3, 7, 9:
			if v != 0 {
				t.Fatalf("failed point %d has non-zero result %d", i, v)
			}
		default:
			if v != i*10 {
				t.Fatalf("healthy point %d lost its result: got %d, want %d", i, v, i*10)
			}
		}
	}
}

func TestSweepSafeErrorsSortedByIndex(t *testing.T) {
	_, errs := SweepSafe(20, SafeOptions{Options: Options{Workers: 8}},
		func(i int, _ <-chan struct{}) (int, error) {
			if i%3 == 0 {
				return 0, errors.New("x")
			}
			return i, nil
		})
	for j := 1; j < len(errs); j++ {
		if errs[j-1].Index >= errs[j].Index {
			t.Fatalf("errors not sorted by index: %v", errs)
		}
	}
	if len(errs) != 7 {
		t.Fatalf("want 7 errors, got %d", len(errs))
	}
}

func TestSweepSafeSerialDoesNotStallOnHang(t *testing.T) {
	// Workers=1 must still time out a hung point and finish the rest.
	start := time.Now()
	got, errs := SweepSafe(4, SafeOptions{
		Options:      Options{Workers: 1},
		PointTimeout: 50 * time.Millisecond,
	}, func(i int, cancel <-chan struct{}) (int, error) {
		if i == 1 {
			<-cancel
			return 0, errors.New("cancelled")
		}
		return i + 1, nil
	})
	if time.Since(start) > 5*time.Second {
		t.Fatal("serial sweep stalled on the hung point")
	}
	if len(errs) != 1 || errs[0].Index != 1 || errs[0].Kind != PointTimedOut {
		t.Fatalf("want one timeout at index 1, got %v", errs)
	}
	for _, i := range []int{0, 2, 3} {
		if got[i] != i+1 {
			t.Fatalf("point %d result %d, want %d", i, got[i], i+1)
		}
	}
}

// The failures reach the artifact's errors section and survive a JSON
// round trip; Canonical strips only the wall-clock portion.
func TestArtifactErrorsSection(t *testing.T) {
	_, errs := SweepSafe(3, SafeOptions{Options: Options{Workers: 1}},
		func(i int, _ <-chan struct{}) (int, error) {
			if i == 1 {
				panic("boom")
			}
			return i, nil
		})
	a := Artifact{
		Schema: SchemaVersion,
		Tool:   "crbench",
		Scale:  ScaleEcho{Name: "quick"},
		Experiments: []ExperimentResult{
			{ID: "E24", Title: "chaos", Errors: errs, ElapsedMS: 12},
		},
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"errors"`) || !strings.Contains(buf.String(), `"panic"`) {
		t.Fatalf("artifact JSON missing errors section:\n%s", buf.String())
	}
	var back Artifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments[0].Errors) != 1 {
		t.Fatalf("errors lost in round trip: %+v", back.Experiments[0])
	}
	pe := back.Experiments[0].Errors[0]
	if pe.Index != 1 || pe.Kind != PointPanicKind || pe.Err != "boom" {
		t.Fatalf("round-tripped error mangled: %+v", pe)
	}

	c := a.Canonical()
	if got := c.Experiments[0].Errors[0]; got.ElapsedMS != 0 {
		t.Fatalf("Canonical kept error timing: %+v", got)
	}
	if got := c.Experiments[0].Errors[0]; got.Index != 1 || got.Kind != PointPanicKind {
		t.Fatalf("Canonical dropped error identity: %+v", got)
	}
	if a.Experiments[0].Errors[0].ElapsedMS == 0 && errs[0].ElapsedMS != 0 {
		t.Fatal("Canonical mutated the original artifact")
	}
}
