package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strings"

	"crnet/internal/obs"
	"crnet/internal/stats"
)

// SchemaVersion identifies the JSON artifact layout. Bump it on any
// field change so downstream tooling (trajectory plots, regression
// diffs across BENCH_*.json files) can refuse payloads it does not
// understand.
//
// v2: ExperimentResult gained the Errors section — per-point failures
// (error / panic / timeout) recorded by crash-proof sweeps instead of
// aborting the whole run.
//
// v3: ExperimentResult gained the TimeSeries section — per-point
// sampled metric time-series (buffer occupancy, link utilization,
// in-flight worms...) from the observability sampler. DecodeArtifact
// still reads v1 and v2 payloads: the new section is additive and
// simply absent there.
//
// v4: Artifact gained the Checkpoint section (provenance of runs that
// attached to a crsimd checkpoint) — and, more importantly, the
// decoder became forward-compatible: top-level fields it does not
// recognize are preserved verbatim and re-emitted on encode, so a v4
// consumer round-trips payloads from FUTURE schemas losslessly instead
// of refusing them, and future additive sections (like Checkpoint was
// to v3) remain readable by today's code.
const SchemaVersion = 4

// Artifact is the machine-readable record of one harness run: the
// result series of every experiment executed plus enough provenance
// (config echo, seed, code version, timings) to reproduce or diff it.
type Artifact struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Tool names the producing binary, e.g. "crbench".
	Tool string `json:"tool"`
	// CreatedAt is the RFC 3339 wall-clock time of the run.
	CreatedAt string `json:"created_at,omitempty"`
	// GitDescribe records the code version (git describe --always --dirty).
	GitDescribe string `json:"git_describe,omitempty"`
	// Scale echoes the run configuration: the named scale plus the
	// knobs that determine every number in the series.
	Scale ScaleEcho `json:"scale"`
	// Parallel is the resolved worker-pool size used for the run. It is
	// provenance only: results are identical for every value.
	Parallel int `json:"parallel"`
	// Experiments holds one entry per experiment, in execution order.
	Experiments []ExperimentResult `json:"experiments"`
	// Checkpoint records the simulation checkpoint a run was attached to,
	// for artifacts produced from a restored long-running service
	// (schema v4+). Absent for ordinary from-scratch runs.
	Checkpoint *CheckpointMeta `json:"checkpoint,omitempty"`

	// Unknown preserves top-level JSON fields this version of the code
	// does not recognize (payloads from future schemas), keyed by field
	// name. They re-emit verbatim on encode — deleting data a newer tool
	// wrote would make round-tripping lossy. Populated by DecodeArtifact;
	// nil on artifacts built in-process.
	Unknown map[string]json.RawMessage `json:"-"`
}

// CheckpointMeta is the provenance of a checkpoint-attached run: which
// checkpoint file the service restored from, at what cycle, and the
// delivery stream hash at save time (schema v4).
type CheckpointMeta struct {
	File       string `json:"file,omitempty"`
	Cycle      int64  `json:"cycle"`
	Trace      string `json:"trace,omitempty"`
	StreamHash string `json:"stream_hash,omitempty"`
}

// ScaleEcho echoes the simulation scale an artifact was produced at.
type ScaleEcho struct {
	Name    string    `json:"name"`
	K       int       `json:"k"`
	MsgLen  int       `json:"msg_len"`
	Warmup  int64     `json:"warmup_cycles"`
	Measure int64     `json:"measure_cycles"`
	Loads   []float64 `json:"loads"`
	Seed    uint64    `json:"seed"`
}

// ExperimentResult is one experiment's series plus its timings.
type ExperimentResult struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Paper string `json:"paper,omitempty"`
	// Table is the experiment's full result series (same rows the text
	// table renders).
	Table stats.TableJSON `json:"table"`
	// ElapsedMS is the experiment's wall-clock time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Sweeps records per-point wall-clock for each harness sweep the
	// experiment ran (experiments not yet converted to the harness have
	// none).
	Sweeps []SweepTiming `json:"sweeps,omitempty"`
	// Errors lists sweep points that failed (panicked, errored or timed
	// out) instead of producing a result. The table rows for those
	// points carry zero values; a non-empty Errors section marks the
	// experiment as partial. Absent on fully successful runs.
	Errors []PointError `json:"errors,omitempty"`
	// TimeSeries holds the sampled metric time-series of points that ran
	// with the per-cycle sampler enabled (schema v3+). Absent otherwise.
	TimeSeries []PointSeries `json:"time_series,omitempty"`
}

// PointSeries is one sweep point's sampled time-series, labelled with
// its series name and load so plots can locate it without re-deriving
// the grid.
type PointSeries struct {
	Label string         `json:"label"`
	Load  float64        `json:"load,omitempty"`
	Data  obs.SeriesJSON `json:"data"`
}

// SweepTiming is the per-point wall-clock of one sweep, in grid order.
type SweepTiming struct {
	Label   string    `json:"label"`
	PointMS []float64 `json:"point_ms"`
}

// Canonical returns a copy of the artifact with every field that may
// legitimately differ between two equivalent runs zeroed: wall-clock
// timings, creation time, code version and worker count. Two runs of
// the same experiments at the same scale must produce byte-identical
// canonical encodings regardless of parallelism — the determinism
// regression test asserts exactly this.
func (a *Artifact) Canonical() Artifact {
	c := *a
	c.CreatedAt = ""
	c.GitDescribe = ""
	c.Parallel = 0
	c.Experiments = make([]ExperimentResult, len(a.Experiments))
	for i, e := range a.Experiments {
		e.ElapsedMS = 0
		if e.Sweeps != nil {
			sweeps := make([]SweepTiming, len(e.Sweeps))
			for j, s := range e.Sweeps {
				sweeps[j] = SweepTiming{Label: s.Label, PointMS: make([]float64, len(s.PointMS))}
			}
			e.Sweeps = sweeps
		}
		if e.Errors != nil {
			errs := make([]PointError, len(e.Errors))
			for j, pe := range e.Errors {
				pe.ElapsedMS = 0
				errs[j] = pe
			}
			e.Errors = errs
		}
		c.Experiments[i] = e
	}
	return c
}

// artifactFields is Artifact without its methods, so the custom
// (un)marshalers below can delegate the known fields to encoding/json
// without recursing.
type artifactFields Artifact

// knownArtifactKeys returns the set of top-level JSON keys the Artifact
// struct itself owns, derived from the struct tags so it cannot drift
// from the field list.
func knownArtifactKeys() map[string]bool {
	known := make(map[string]bool)
	t := reflect.TypeOf(Artifact{})
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			known[name] = true
		}
	}
	return known
}

// UnmarshalJSON decodes the known fields as usual and stows every
// unrecognized top-level field in Unknown, so payloads written by
// newer schemas survive a decode/encode round trip intact.
func (a *Artifact) UnmarshalJSON(b []byte) error {
	var fields artifactFields
	if err := json.Unmarshal(b, &fields); err != nil {
		return err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*a = Artifact(fields)
	known := knownArtifactKeys()
	for k, v := range raw {
		if !known[k] {
			if a.Unknown == nil {
				a.Unknown = make(map[string]json.RawMessage)
			}
			a.Unknown[k] = v
		}
	}
	return nil
}

// MarshalJSON emits the known fields followed by the preserved unknown
// fields in sorted key order (deterministic bytes for identical
// artifacts).
func (a Artifact) MarshalJSON() ([]byte, error) {
	b, err := json.Marshal(artifactFields(a))
	if err != nil {
		return nil, err
	}
	if len(a.Unknown) == 0 {
		return b, nil
	}
	keys := make([]string, 0, len(a.Unknown))
	for k := range a.Unknown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.Write(b[:len(b)-1]) // reopen the object: drop the closing brace
	for _, k := range keys {
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.WriteByte(',')
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(a.Unknown[k])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Encode writes the artifact as indented JSON followed by a newline.
func (a *Artifact) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DecodeArtifact reads a JSON artifact produced by any schema version
// from v1 up. Older payloads decode with their newer sections (v2
// errors, v3 time-series, v4 checkpoint) simply absent. Payloads from
// FUTURE schemas decode too (v4 forward-compat guarantee): schemas are
// additive, so the known sections are readable, and any unrecognized
// fields are preserved in Unknown and re-emitted on encode. Callers
// that cannot tolerate missing future semantics can still compare
// a.Schema against SchemaVersion themselves.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("harness: decoding artifact: %w", err)
	}
	if a.Schema < 1 {
		return nil, fmt.Errorf("harness: artifact schema %d invalid (want >= 1)", a.Schema)
	}
	return &a, nil
}

// ReadArtifactFile decodes the artifact at path.
func ReadArtifactFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeArtifact(f)
}

// WriteFile writes the artifact to path, creating or truncating it.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// GitDescribe returns `git describe --always --dirty` for provenance,
// or "" when git or the repository is unavailable (artifacts must still
// be writable from an exported source tree).
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
