package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crnet/internal/obs"
	"crnet/internal/stats"
)

func TestSweepReturnsGridOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got := Sweep(37, Options{Workers: workers}, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	if got := Sweep(0, Options{}, func(i int) int { return i }); got != nil {
		t.Fatalf("empty sweep returned %v", got)
	}
}

func TestSweepRunsEveryPointOnce(t *testing.T) {
	var calls [64]int32
	Sweep(len(calls), Options{Workers: 7}, func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("point %d ran %d times", i, c)
		}
	}
}

func TestSweepOnPointCount(t *testing.T) {
	var n int64
	Sweep(25, Options{Workers: 4, OnPoint: func() { atomic.AddInt64(&n, 1) }}, func(i int) int { return i })
	if n != 25 {
		t.Fatalf("OnPoint fired %d times, want 25", n)
	}
}

func TestSweepBoundsWorkers(t *testing.T) {
	var live, peak int64
	Sweep(32, Options{Workers: 3}, func(i int) int {
		cur := atomic.AddInt64(&live, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&live, -1)
		return i
	})
	if peak > 3 {
		t.Fatalf("pool ran %d concurrent points, bound is 3", peak)
	}
}

func TestSweepPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	Sweep(8, Options{Workers: 4}, func(i int) int {
		if i == 5 {
			panic("boom")
		}
		return i
	})
}

func TestPointSeed(t *testing.T) {
	// Distinct indices and bases must give distinct, well-mixed seeds.
	seen := map[uint64]bool{}
	for _, base := range []uint64{0, 1, 2, 1 << 40} {
		for i := 0; i < 1000; i++ {
			s := PointSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	// Deterministic: the mapping is part of the artifact contract.
	if a, b := PointSeed(1, 7), PointSeed(1, 7); a != b {
		t.Fatalf("PointSeed not deterministic: %d vs %d", a, b)
	}
	// Small bases must not produce small (poorly mixed) seeds.
	if s := PointSeed(0, 0); s < 1<<32 {
		t.Fatalf("PointSeed(0,0) = %d looks unmixed", s)
	}
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(1000, 0)
	p := NewProgress(&buf, "E5", 4)
	p.now = func() time.Time { return clock }
	p.start = clock

	p.Point() // t=0: prints (first line; last is zero)
	clock = clock.Add(200 * time.Millisecond)
	p.Point() // throttled
	clock = clock.Add(2 * time.Second)
	p.Point() // prints with ETA
	clock = clock.Add(time.Second)
	p.Point() // final point always prints

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d progress lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "E5: 3/4 points (75%)") {
		t.Fatalf("unexpected progress line: %q", lines[1])
	}
	if !strings.Contains(lines[1], "ETA") {
		t.Fatalf("no ETA in %q", lines[1])
	}
	if !strings.Contains(lines[2], "4/4") || !strings.Contains(lines[2], "done in") {
		t.Fatalf("final line wrong: %q", lines[2])
	}
	if p.Done() != 4 {
		t.Fatalf("Done() = %d", p.Done())
	}
}

// An instantaneous first point (elapsed below the clock resolution)
// must render ETA "?" rather than extrapolating a nonsense "0s"; the
// estimate appears once the clock has actually advanced.
func TestProgressETAFirstInstantPoint(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(1000, 0)
	p := NewProgress(&buf, "E1", 3)
	p.now = func() time.Time { return clock }
	p.start = clock

	p.Point() // zero elapsed: no basis for an estimate
	if line := buf.String(); !strings.Contains(line, "ETA ?") {
		t.Fatalf("instant first point extrapolated an ETA: %q", line)
	}
	buf.Reset()
	clock = clock.Add(2 * time.Second)
	p.Point()
	if line := buf.String(); !strings.Contains(line, "ETA 1s") {
		t.Fatalf("expected 1s estimate after 2s/2 points: %q", line)
	}
}

func TestProgressNilWriter(t *testing.T) {
	p := NewProgress(nil, "x", 2)
	p.Point()
	p.Point() // must not panic
	if p.Done() != 2 {
		t.Fatal("counters broken with nil writer")
	}
}

func TestArtifactCanonicalStripsTimings(t *testing.T) {
	tbl := stats.NewTable("T", "a", "b")
	tbl.AddRow("x", 1.5)
	a := Artifact{
		Schema:      SchemaVersion,
		Tool:        "crbench",
		CreatedAt:   "2026-08-05T00:00:00Z",
		GitDescribe: "abc123-dirty",
		Scale:       ScaleEcho{Name: "quick", K: 8, Seed: 1},
		Parallel:    8,
		Experiments: []ExperimentResult{{
			ID: "E5", Title: "t", Paper: "p",
			Table:     tbl.JSON(),
			ElapsedMS: 123.4,
			Sweeps:    []SweepTiming{{Label: "E5", PointMS: []float64{1, 2, 3}}},
		}},
	}
	b := a
	b.CreatedAt = "2026-08-05T11:11:11Z"
	b.GitDescribe = "def456"
	b.Parallel = 1
	b.Experiments = []ExperimentResult{a.Experiments[0]}
	b.Experiments[0].ElapsedMS = 999
	b.Experiments[0].Sweeps = []SweepTiming{{Label: "E5", PointMS: []float64{9, 9, 9}}}

	ca, err := json.Marshal(a.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(b.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ca, cb)
	}
	// Canonicalizing must not mutate the original.
	if a.Experiments[0].ElapsedMS != 123.4 || a.Experiments[0].Sweeps[0].PointMS[0] != 1 {
		t.Fatal("Canonical mutated its receiver")
	}
	// The series data must survive canonicalization.
	if !strings.Contains(string(ca), `"rows":[["x","1.5"]]`) {
		t.Fatalf("canonical artifact lost table rows: %s", ca)
	}
}

func TestDecodeArtifactBackwardCompat(t *testing.T) {
	// A v2 payload (pre time-series) must decode cleanly with the new
	// section absent.
	v2 := `{"schema":2,"tool":"crbench","scale":{"name":"quick","k":8,"msg_len":8,` +
		`"warmup_cycles":1,"measure_cycles":2,"loads":[0.1],"seed":1},"parallel":4,` +
		`"experiments":[{"id":"E5","title":"t","table":{"title":"T","columns":["a"],"rows":[]},` +
		`"errors":[{"index":0,"label":"x","kind":"panic","message":"boom"}]}]}`
	a, err := DecodeArtifact(strings.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != 2 || len(a.Experiments) != 1 || a.Experiments[0].TimeSeries != nil {
		t.Fatalf("v2 decode wrong: %+v", a)
	}

	// A payload from a future schema decodes additively (v4 contract —
	// see TestDecodeForwardCompat for the full round-trip guarantees).
	future := fmt.Sprintf(`{"schema":%d,"tool":"crbench"}`, SchemaVersion+1)
	if _, err := DecodeArtifact(strings.NewReader(future)); err != nil {
		t.Fatalf("future schema refused: %v", err)
	}
	if _, err := DecodeArtifact(strings.NewReader(`{"schema":0}`)); err == nil {
		t.Fatal("schema 0 accepted")
	}
}

func TestArtifactTimeSeriesRoundTrip(t *testing.T) {
	tbl := stats.NewTable("T", "a")
	a := Artifact{
		Schema: SchemaVersion,
		Tool:   "crbench",
		Scale:  ScaleEcho{Name: "quick"},
		Experiments: []ExperimentResult{{
			ID: "E26", Title: "occupancy", Table: tbl.JSON(),
			TimeSeries: []PointSeries{{
				Label: "CR(d=2)", Load: 0.6,
				Data: obs.SeriesJSON{
					Every:   50,
					Columns: []string{"occupancy_total"},
					Cycles:  []int64{0, 50},
					Values:  [][]float64{{0}, {12}},
				},
			}},
		}},
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := back.Experiments[0].TimeSeries
	if len(ts) != 1 || ts[0].Label != "CR(d=2)" || ts[0].Data.Values[1][0] != 12 {
		t.Fatalf("time-series round trip broken: %+v", ts)
	}
	// Time-series are deterministic data: Canonical must keep them.
	if c := a.Canonical(); len(c.Experiments[0].TimeSeries) != 1 {
		t.Fatal("Canonical dropped the time-series section")
	}
}

func TestArtifactEncode(t *testing.T) {
	a := Artifact{Schema: SchemaVersion, Tool: "crbench", Scale: ScaleEcho{Name: "quick"}}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("artifact file must end with a newline")
	}
	var back Artifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.Scale.Name != "quick" {
		t.Fatalf("round trip broken: %+v", back)
	}
}
