package harness

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports sweep progress (points done/total, ETA) to a writer,
// normally stderr so that stdout stays byte-identical between runs. It
// is safe for concurrent use by the worker pool; output is throttled so
// large sweeps do not flood the terminal.
type Progress struct {
	mu        sync.Mutex
	w         io.Writer
	label     string
	total     int
	done      int
	start     time.Time
	last      time.Time
	minPeriod time.Duration
	now       func() time.Time // injectable for tests
}

// NewProgress returns a reporter for a sweep of total points, labelled
// with label (typically the experiment id). Writes go to w; a nil w
// disables output but keeps the counters working.
func NewProgress(w io.Writer, label string, total int) *Progress {
	p := &Progress{
		w:         w,
		label:     label,
		total:     total,
		minPeriod: time.Second,
		now:       time.Now,
	}
	p.start = p.now()
	return p
}

// Point records one completed point and, at most once per second,
// prints a `label: done/total points (pct%), ETA ...` line.
func (p *Progress) Point() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	t := p.now()
	if p.w == nil || (t.Sub(p.last) < p.minPeriod && p.done != p.total) {
		return
	}
	p.last = t
	fmt.Fprint(p.w, p.line(t))
}

// line renders the current progress line; the caller holds p.mu.
func (p *Progress) line(t time.Time) string {
	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(p.done) / float64(p.total)
	}
	eta := "?"
	if elapsed := t.Sub(p.start); p.done > 0 && p.done < p.total {
		// Sub-resolution points give elapsed == 0 and would render the
		// nonsense estimate "0s"; keep "?" until the clock has moved.
		if perPoint := elapsed / time.Duration(p.done); perPoint > 0 {
			eta = (perPoint * time.Duration(p.total-p.done)).Round(time.Second).String()
		}
	} else if p.done >= p.total {
		eta = "done in " + t.Sub(p.start).Round(time.Millisecond).String()
	}
	return fmt.Sprintf("%s: %d/%d points (%.0f%%), ETA %s\n", p.label, p.done, p.total, pct, eta)
}

// Done returns how many points have completed.
func (p *Progress) Done() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}
