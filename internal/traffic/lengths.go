package traffic

import (
	"fmt"

	"crnet/internal/rng"
)

// LengthModel draws per-message lengths. The paper's companion study
// (Kim & Chien, "Network performance under bimodal traffic loads") and
// its Section 7 variance discussion motivate mixing short protocol
// messages with long data messages.
type LengthModel interface {
	// Name identifies the model in reports.
	Name() string
	// Mean returns the expected length in flits (used to normalize
	// offered load).
	Mean() float64
	// Length draws one message length (>= 1).
	Length(r *rng.Source) int
}

// FixedLength is the constant-length model used in most experiments.
type FixedLength int

// Name implements LengthModel.
func (f FixedLength) Name() string { return fmt.Sprintf("fixed(%d)", int(f)) }

// Mean implements LengthModel.
func (f FixedLength) Mean() float64 { return float64(f) }

// Length implements LengthModel.
func (f FixedLength) Length(*rng.Source) int { return int(f) }

// Bimodal draws Short flits with probability 1-LongFrac and Long flits
// with probability LongFrac — the classic request/response + bulk-data
// mix.
type Bimodal struct {
	Short, Long int
	LongFrac    float64
}

// Name implements LengthModel.
func (b Bimodal) Name() string {
	return fmt.Sprintf("bimodal(%d/%d@%.2f)", b.Short, b.Long, b.LongFrac)
}

// Mean implements LengthModel.
func (b Bimodal) Mean() float64 {
	return float64(b.Short)*(1-b.LongFrac) + float64(b.Long)*b.LongFrac
}

// Length implements LengthModel.
func (b Bimodal) Length(r *rng.Source) int {
	if r.Bernoulli(b.LongFrac) {
		return b.Long
	}
	return b.Short
}

func (b Bimodal) validate() error {
	if b.Short < 1 || b.Long < b.Short {
		return fmt.Errorf("traffic: bimodal lengths %d/%d invalid", b.Short, b.Long)
	}
	if b.LongFrac < 0 || b.LongFrac > 1 {
		return fmt.Errorf("traffic: bimodal long fraction %v outside [0,1]", b.LongFrac)
	}
	return nil
}
