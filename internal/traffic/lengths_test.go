package traffic

import (
	"math"
	"testing"

	"crnet/internal/rng"
	"crnet/internal/topology"
)

func TestFixedLength(t *testing.T) {
	f := FixedLength(16)
	if f.Mean() != 16 || f.Length(nil) != 16 {
		t.Fatal("fixed length broken")
	}
	if f.Name() != "fixed(16)" {
		t.Fatalf("name %q", f.Name())
	}
}

func TestBimodalMeanAndDraws(t *testing.T) {
	b := Bimodal{Short: 4, Long: 64, LongFrac: 0.25}
	if want := 4*0.75 + 64*0.25; b.Mean() != want {
		t.Fatalf("mean %v, want %v", b.Mean(), want)
	}
	r := rng.New(1)
	longs := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		switch b.Length(r) {
		case 64:
			longs++
		case 4:
		default:
			t.Fatal("unexpected length")
		}
	}
	if got := float64(longs) / trials; math.Abs(got-0.25) > 0.01 {
		t.Fatalf("long fraction %v, want 0.25", got)
	}
}

func TestBimodalEdgeFractions(t *testing.T) {
	r := rng.New(2)
	all4 := Bimodal{Short: 4, Long: 64, LongFrac: 0}
	all64 := Bimodal{Short: 4, Long: 64, LongFrac: 1}
	for i := 0; i < 100; i++ {
		if all4.Length(r) != 4 || all64.Length(r) != 64 {
			t.Fatal("edge fractions broken")
		}
	}
}

func TestBimodalGeneratorLoadNormalization(t *testing.T) {
	g := topology.NewTorus(8, 2)
	model := Bimodal{Short: 4, Long: 64, LongFrac: 0.2}
	const load = 0.4
	gen := NewGeneratorLengths(g, Uniform{Nodes: g.Nodes()}, load, model, 5)
	const cycles = 30000
	flits := 0
	for cyc := int64(0); cyc < cycles; cyc++ {
		for n := topology.NodeID(0); int(n) < g.Nodes(); n++ {
			if m, ok := gen.Tick(n, cyc); ok {
				flits += m.DataLen
			}
		}
	}
	offered := float64(flits) / cycles / float64(g.Nodes())
	want := load * CapacityFlitsPerNode(g)
	if math.Abs(offered-want)/want > 0.05 {
		t.Fatalf("bimodal offered %v flits/node/cycle, want %v", offered, want)
	}
}

func TestBimodalValidation(t *testing.T) {
	g := topology.NewTorus(4, 2)
	bad := []Bimodal{
		{Short: 0, Long: 8, LongFrac: 0.5},
		{Short: 8, Long: 4, LongFrac: 0.5},
		{Short: 4, Long: 8, LongFrac: 1.5},
	}
	for _, b := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad bimodal %+v accepted", b)
				}
			}()
			NewGeneratorLengths(g, Uniform{Nodes: g.Nodes()}, 0.5, b, 1)
		}()
	}
}
