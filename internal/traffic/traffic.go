// Package traffic generates the synthetic workloads the paper evaluates
// on: spatial destination patterns (uniform random, transpose,
// bit-reversal, bit-complement, hotspot) combined with a Bernoulli
// open-loop injection process normalized against the topology's uniform
// saturation capacity.
package traffic

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/rng"
	"crnet/internal/topology"
)

// Pattern maps a source node to a destination for each generated message.
// Deterministic patterns (transpose, bit-reversal) ignore the random
// source; stochastic ones (uniform, hotspot) draw from it.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Dest returns the destination for a message from src. It must never
	// return src; sources whose pattern maps to themselves (e.g. the
	// diagonal under transpose) are remapped by the implementation.
	Dest(src topology.NodeID, r *rng.Source) topology.NodeID
}

// Uniform sends each message to a destination drawn uniformly from all
// other nodes — the paper's primary workload.
type Uniform struct{ Nodes int }

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src topology.NodeID, r *rng.Source) topology.NodeID {
	d := topology.NodeID(r.Intn(u.Nodes - 1))
	if d >= src {
		d++
	}
	return d
}

// Transpose sends (x, y) to (y, x) on a 2-D grid; diagonal nodes fall
// back to the antipode so every node contributes load. Transpose stresses
// one diagonal of the network and rewards adaptivity.
type Transpose struct{ Grid *topology.Grid }

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (t Transpose) Dest(src topology.NodeID, _ *rng.Source) topology.NodeID {
	g := t.Grid
	if g.Dims() != 2 {
		panic("traffic: transpose requires a 2-D grid")
	}
	x, y := g.Coord(src, 0), g.Coord(src, 1)
	if x == y {
		return antipode(g, src)
	}
	return g.Node(y, x)
}

func antipode(g *topology.Grid, src topology.NodeID) topology.NodeID {
	k := g.Radix()
	coords := make([]int, g.Dims())
	for d := range coords {
		coords[d] = (g.Coord(src, d) + k/2) % k
	}
	dst := g.Node(coords...)
	if dst == src { // k == 1 cannot happen (radix >= 2), but be safe
		dst = (src + 1) % topology.NodeID(g.Nodes())
	}
	return dst
}

// BitReversal sends the node whose index is the bit-reversed source
// index (over the log2(nodes) address bits). Nodes mapping to themselves
// fall back to the complement address.
type BitReversal struct{ Nodes int }

// Name implements Pattern.
func (BitReversal) Name() string { return "bit-reversal" }

// Dest implements Pattern.
func (b BitReversal) Dest(src topology.NodeID, _ *rng.Source) topology.NodeID {
	bits := addressBits(b.Nodes)
	v := uint(src)
	var rev uint
	for i := 0; i < bits; i++ {
		rev = rev<<1 | (v & 1)
		v >>= 1
	}
	dst := topology.NodeID(rev)
	if dst == src {
		dst = topology.NodeID(uint(src) ^ (1<<uint(bits) - 1))
	}
	if dst == src { // single-node network; callers validate earlier
		dst = (src + 1) % topology.NodeID(b.Nodes)
	}
	return dst
}

// BitComplement sends each node to the complement of its address bits —
// the worst-case distance permutation on tori and hypercubes.
type BitComplement struct{ Nodes int }

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// Dest implements Pattern.
func (b BitComplement) Dest(src topology.NodeID, _ *rng.Source) topology.NodeID {
	bits := addressBits(b.Nodes)
	dst := topology.NodeID(uint(src) ^ (1<<uint(bits) - 1))
	if int(dst) >= b.Nodes || dst == src {
		dst = (src + topology.NodeID(b.Nodes/2)) % topology.NodeID(b.Nodes)
	}
	if dst == src {
		dst = (src + 1) % topology.NodeID(b.Nodes)
	}
	return dst
}

func addressBits(nodes int) int {
	bits := 0
	for 1<<uint(bits) < nodes {
		bits++
	}
	return bits
}

// Hotspot sends each message to one of the Spots with probability Frac,
// and uniformly otherwise — the classic contention workload.
type Hotspot struct {
	Nodes int
	Spots []topology.NodeID
	Frac  float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d@%.2f)", len(h.Spots), h.Frac) }

// Dest implements Pattern.
func (h Hotspot) Dest(src topology.NodeID, r *rng.Source) topology.NodeID {
	if len(h.Spots) > 0 && r.Bernoulli(h.Frac) {
		d := h.Spots[r.Intn(len(h.Spots))]
		if d != src {
			return d
		}
	}
	return Uniform{Nodes: h.Nodes}.Dest(src, r)
}

// ByName constructs a pattern from its report name; grids are required
// for transpose. Supported: uniform, transpose, bit-reversal,
// bit-complement, hotspot (4 corner spots at 20%).
func ByName(name string, topo topology.Topology) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{Nodes: topo.Nodes()}, nil
	case "transpose":
		g, ok := topo.(*topology.Grid)
		if !ok || g.Dims() != 2 {
			return nil, fmt.Errorf("traffic: transpose needs a 2-D grid, have %s", topo.Name())
		}
		return Transpose{Grid: g}, nil
	case "bit-reversal":
		return BitReversal{Nodes: topo.Nodes()}, nil
	case "bit-complement":
		return BitComplement{Nodes: topo.Nodes()}, nil
	case "hotspot":
		spots := []topology.NodeID{0, topology.NodeID(topo.Nodes() / 2)}
		return Hotspot{Nodes: topo.Nodes(), Spots: spots, Frac: 0.2}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// Generator produces messages for every node with a Bernoulli process.
//
// Load is expressed as a fraction of the network's uniform-traffic
// saturation capacity; see CapacityFlitsPerNode.
type Generator struct {
	pattern Pattern
	lengths LengthModel
	prob    float64 // per-node, per-cycle message start probability
	nodeRNG []*rng.Source
	nextID  flit.MessageID
}

// CapacityFlitsPerNode returns the theoretical saturation injection
// bandwidth for uniform traffic, in flits per node per cycle: each node
// owns Degree() unidirectional links and each flit consumes
// AverageDistance() link traversals, so capacity = degree / avgDistance.
// Node-interface limits (one flit per injection channel per cycle) are
// accounted for by the caller.
func CapacityFlitsPerNode(topo topology.Topology) float64 {
	return float64(topo.Degree()) / topo.AverageDistance()
}

// NewGenerator returns a generator that offers `load` fraction of
// capacity with fixed-length messages of msgLen flits. Each node gets an
// independent RNG stream split from seed so results are reproducible and
// insensitive to node evaluation order.
func NewGenerator(topo topology.Topology, pattern Pattern, load float64, msgLen int, seed uint64) *Generator {
	if msgLen < 1 {
		panic(fmt.Sprintf("traffic: message length %d", msgLen))
	}
	return NewGeneratorLengths(topo, pattern, load, FixedLength(msgLen), seed)
}

// NewGeneratorLengths is NewGenerator with an arbitrary message-length
// model; offered load is normalized by the model's mean length.
func NewGeneratorLengths(topo topology.Topology, pattern Pattern, load float64, lengths LengthModel, seed uint64) *Generator {
	if load < 0 {
		panic(fmt.Sprintf("traffic: negative load %v", load))
	}
	if b, ok := lengths.(Bimodal); ok {
		if err := b.validate(); err != nil {
			panic(err)
		}
	}
	if lengths.Mean() < 1 {
		panic(fmt.Sprintf("traffic: mean message length %v < 1", lengths.Mean()))
	}
	flitsPerCycle := load * CapacityFlitsPerNode(topo)
	g := &Generator{
		pattern: pattern,
		lengths: lengths,
		prob:    flitsPerCycle / lengths.Mean(),
		nodeRNG: make([]*rng.Source, topo.Nodes()),
	}
	root := rng.New(seed)
	for i := range g.nodeRNG {
		g.nodeRNG[i] = root.Split()
	}
	return g
}

// MessageProb returns the per-node per-cycle message start probability.
func (g *Generator) MessageProb() float64 { return g.prob }

// Tick returns the message originating at node src this cycle, or ok =
// false. At most one message per node per cycle is generated; loads
// requiring more than one message per cycle per node saturate the
// Bernoulli process and are clamped (such loads exceed any single
// injection channel anyway).
func (g *Generator) Tick(src topology.NodeID, now int64) (flit.Message, bool) {
	r := g.nodeRNG[src]
	if !r.Bernoulli(g.prob) {
		return flit.Message{}, false
	}
	g.nextID++
	return flit.Message{
		ID:         g.nextID,
		Src:        src,
		Dst:        g.pattern.Dest(src, r),
		DataLen:    g.lengths.Length(r),
		CreateTime: now,
	}, true
}
