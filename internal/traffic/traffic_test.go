package traffic

import (
	"math"
	"testing"

	"crnet/internal/rng"
	"crnet/internal/topology"
)

func TestPatternsNeverSelfSend(t *testing.T) {
	g := topology.NewTorus(8, 2)
	r := rng.New(1)
	patterns := []Pattern{
		Uniform{Nodes: g.Nodes()},
		Transpose{Grid: g},
		BitReversal{Nodes: g.Nodes()},
		BitComplement{Nodes: g.Nodes()},
		Hotspot{Nodes: g.Nodes(), Spots: []topology.NodeID{0, 32}, Frac: 0.3},
	}
	for _, p := range patterns {
		for src := topology.NodeID(0); int(src) < g.Nodes(); src++ {
			for trial := 0; trial < 20; trial++ {
				if d := p.Dest(src, r); d == src {
					t.Fatalf("%s: self-send from %d", p.Name(), src)
				} else if d < 0 || int(d) >= g.Nodes() {
					t.Fatalf("%s: dest %d out of range", p.Name(), d)
				}
			}
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	const nodes = 16
	u := Uniform{Nodes: nodes}
	r := rng.New(2)
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 2000; i++ {
		seen[u.Dest(3, r)] = true
	}
	if len(seen) != nodes-1 {
		t.Fatalf("uniform hit %d destinations, want %d", len(seen), nodes-1)
	}
}

func TestTransposeMapsCoordinates(t *testing.T) {
	g := topology.NewTorus(8, 2)
	p := Transpose{Grid: g}
	src := g.Node(2, 5)
	if got, want := p.Dest(src, nil), g.Node(5, 2); got != want {
		t.Fatalf("transpose(2,5) = %d, want %d", got, want)
	}
	// Diagonal falls back to antipode.
	diag := g.Node(3, 3)
	if got, want := p.Dest(diag, nil), g.Node(7, 7); got != want {
		t.Fatalf("transpose diagonal = %d, want antipode %d", got, want)
	}
}

func TestTransposeIsInvolutionOffDiagonal(t *testing.T) {
	g := topology.NewTorus(8, 2)
	p := Transpose{Grid: g}
	for src := topology.NodeID(0); int(src) < g.Nodes(); src++ {
		if g.Coord(src, 0) == g.Coord(src, 1) {
			continue
		}
		if back := p.Dest(p.Dest(src, nil), nil); back != src {
			t.Fatalf("transpose not involutive at %d", src)
		}
	}
}

func TestBitReversal(t *testing.T) {
	p := BitReversal{Nodes: 16} // 4 address bits
	if got := p.Dest(0b0001, nil); got != 0b1000 {
		t.Fatalf("reverse(0001) = %04b", got)
	}
	if got := p.Dest(0b0011, nil); got != 0b1100 {
		t.Fatalf("reverse(0011) = %04b", got)
	}
	// Palindromic address falls back to complement.
	if got := p.Dest(0b0110, nil); got != 0b1001 {
		t.Fatalf("palindrome fallback = %04b", got)
	}
}

func TestBitComplement(t *testing.T) {
	p := BitComplement{Nodes: 16}
	if got := p.Dest(0b0101, nil); got != 0b1010 {
		t.Fatalf("complement(0101) = %04b", got)
	}
}

func TestHotspotConcentration(t *testing.T) {
	const nodes = 64
	spot := topology.NodeID(17)
	p := Hotspot{Nodes: nodes, Spots: []topology.NodeID{spot}, Frac: 0.5}
	r := rng.New(3)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if p.Dest(0, r) == spot {
			hits++
		}
	}
	// ~50% direct + ~0.8% via the uniform tail.
	got := float64(hits) / trials
	if got < 0.45 || got > 0.56 {
		t.Fatalf("hotspot rate = %v, want ~0.5", got)
	}
}

func TestByName(t *testing.T) {
	g := topology.NewTorus(4, 2)
	for _, name := range []string{"uniform", "transpose", "bit-reversal", "bit-complement", "hotspot"} {
		p, err := ByName(name, g)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("pattern %q has empty name", name)
		}
	}
	if _, err := ByName("nope", g); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if _, err := ByName("transpose", topology.NewHypercube(4)); err == nil {
		t.Fatal("transpose on hypercube accepted")
	}
}

func TestCapacity(t *testing.T) {
	// 16-ary 2-cube torus: degree 4, avg distance = 2 * (16/4 adjusted for
	// distinct pairs). Capacity = 4/avgDist ~ 0.5 flits/node/cycle.
	g := topology.NewTorus(16, 2)
	c := CapacityFlitsPerNode(g)
	if c < 0.49 || c > 0.51 {
		t.Fatalf("torus capacity = %v, want ~0.5", c)
	}
}

func TestGeneratorRateMatchesLoad(t *testing.T) {
	g := topology.NewTorus(8, 2)
	const load, msgLen = 0.5, 16
	gen := NewGenerator(g, Uniform{Nodes: g.Nodes()}, load, msgLen, 42)
	const cycles = 20000
	messages := 0
	for cyc := int64(0); cyc < cycles; cyc++ {
		for n := topology.NodeID(0); int(n) < g.Nodes(); n++ {
			if _, ok := gen.Tick(n, cyc); ok {
				messages++
			}
		}
	}
	offered := float64(messages) * msgLen / float64(cycles) / float64(g.Nodes())
	want := load * CapacityFlitsPerNode(g)
	if math.Abs(offered-want)/want > 0.05 {
		t.Fatalf("offered %v flits/node/cycle, want %v", offered, want)
	}
}

func TestGeneratorMessagesAreValid(t *testing.T) {
	g := topology.NewTorus(4, 2)
	gen := NewGenerator(g, Uniform{Nodes: g.Nodes()}, 0.9, 8, 7)
	seen := map[uint64]bool{}
	for cyc := int64(0); cyc < 500; cyc++ {
		for n := topology.NodeID(0); int(n) < g.Nodes(); n++ {
			m, ok := gen.Tick(n, cyc)
			if !ok {
				continue
			}
			if err := m.Validate(g.Nodes()); err != nil {
				t.Fatal(err)
			}
			if m.Src != n || m.CreateTime != cyc || m.DataLen != 8 {
				t.Fatalf("message metadata wrong: %+v", m)
			}
			if seen[uint64(m.ID)] {
				t.Fatalf("duplicate message id %d", m.ID)
			}
			seen[uint64(m.ID)] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no messages generated at 0.9 load")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g := topology.NewTorus(4, 2)
	gen1 := NewGenerator(g, Uniform{Nodes: g.Nodes()}, 0.5, 4, 99)
	gen2 := NewGenerator(g, Uniform{Nodes: g.Nodes()}, 0.5, 4, 99)
	for cyc := int64(0); cyc < 200; cyc++ {
		for n := topology.NodeID(0); int(n) < g.Nodes(); n++ {
			m1, ok1 := gen1.Tick(n, cyc)
			m2, ok2 := gen2.Tick(n, cyc)
			if ok1 != ok2 || m1 != m2 {
				t.Fatalf("generators diverged at cycle %d node %d", cyc, n)
			}
		}
	}
}

func TestGeneratorPanicsOnBadArgs(t *testing.T) {
	g := topology.NewTorus(4, 2)
	for name, fn := range map[string]func(){
		"msgLen 0":      func() { NewGenerator(g, Uniform{Nodes: 16}, 0.5, 0, 1) },
		"negative load": func() { NewGenerator(g, Uniform{Nodes: 16}, -0.1, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
