package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Series is a sampled metrics time-series: one row per sample, one
// column per registered metric, in chronological order.
type Series struct {
	// Every is the sample cadence in cycles.
	Every int64
	// Columns are the metric names, in registry order.
	Columns []string
	// Samples are the retained snapshots, oldest first.
	Samples []Sample
}

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.Samples) }

// Column returns the index of the named column, or -1.
func (s *Series) Column(name string) int {
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// ColumnStats reduces one column to (mean, max) over the retained
// samples; both are 0 for an empty series or unknown column.
func (s *Series) ColumnStats(name string) (mean, max float64) {
	i := s.Column(name)
	if i < 0 || len(s.Samples) == 0 {
		return 0, 0
	}
	sum := 0.0
	max = s.Samples[0].Values[i]
	for _, sm := range s.Samples {
		v := sm.Values[i]
		sum += v
		if v > max {
			max = v
		}
	}
	return sum / float64(len(s.Samples)), max
}

// Delta returns the last-minus-first value of a column — the change of
// a cumulative counter over the retained window. 0 for empty series or
// unknown columns.
func (s *Series) Delta(name string) float64 {
	i := s.Column(name)
	if i < 0 || len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].Values[i] - s.Samples[0].Values[i]
}

// Last returns the most recent value of a column, or 0 for an empty
// series or unknown column.
func (s *Series) Last(name string) float64 {
	i := s.Column(name)
	if i < 0 || len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].Values[i]
}

// formatValue renders a sample value compactly and deterministically:
// integral values print without a fraction, others with %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// CSV renders the series with a header row: cycle, then each column.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("cycle")
	for _, c := range s.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, sm := range s.Samples {
		fmt.Fprintf(&b, "%d", sm.Cycle)
		for _, v := range sm.Values {
			b.WriteByte(',')
			b.WriteString(formatValue(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SeriesJSON is the JSON shape of a Series, columnar so repeated keys
// do not bloat the artifact: cycles[i] pairs with values[i][*].
type SeriesJSON struct {
	Every   int64       `json:"every"`
	Columns []string    `json:"columns"`
	Cycles  []int64     `json:"cycles"`
	Values  [][]float64 `json:"values"`
}

// CSV renders the JSON shape back to the same CSV a live Series
// produces, so artifact post-processing (crbench -timeseries) does not
// need the original Series.
func (j SeriesJSON) CSV() string {
	var b strings.Builder
	b.WriteString("cycle")
	for _, c := range j.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for i, cyc := range j.Cycles {
		fmt.Fprintf(&b, "%d", cyc)
		for _, v := range j.Values[i] {
			b.WriteByte(',')
			b.WriteString(formatValue(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON returns the series' JSON shape. Slices are never nil, so empty
// series encode as [] rather than null.
func (s *Series) JSON() SeriesJSON {
	j := SeriesJSON{
		Every:   s.Every,
		Columns: append([]string{}, s.Columns...),
		Cycles:  make([]int64, 0, len(s.Samples)),
		Values:  make([][]float64, 0, len(s.Samples)),
	}
	for _, sm := range s.Samples {
		j.Cycles = append(j.Cycles, sm.Cycle)
		j.Values = append(j.Values, append([]float64{}, sm.Values...))
	}
	return j
}
