package obs

import (
	"strings"
	"testing"

	"crnet/internal/snapshot"
)

// TestRegistryLoadStateRejectsCorruptSnapshots is the regression table
// for the registry codec's validation: a snapshot whose counter section
// disagrees with the live registry's composition, or whose payload is
// damaged, must be refused with a descriptive error before any counter
// is mutated.
func TestRegistryLoadStateRejectsCorruptSnapshots(t *testing.T) {
	build := func(counters int) *Registry {
		r := NewRegistry()
		for i := 0; i < counters; i++ {
			// Large values make the varints multi-byte, so truncation cuts
			// land inside an element instead of on the count bound.
			r.Counter(string(rune('a' + i))).Add(1 << 40)
		}
		return r
	}
	save := func(r *Registry) []byte {
		var e snapshot.Encoder
		r.SaveState(&e)
		return e.Bytes()
	}
	// Sanity: an unmodified snapshot restores cleanly.
	if err := build(2).LoadState(snapshot.NewDecoder(save(build(2)))); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	cases := []struct {
		name, wantSub string
		build         func(t *testing.T) []byte
	}{
		{"counter-count-mismatch", "counters", func(t *testing.T) []byte {
			return save(build(3))
		}},
		{"count-over-bound", "collection length", func(t *testing.T) []byte {
			var e snapshot.Encoder
			e.Uvarint(1 << 21) // over LoadState's 1<<20 counter bound
			return e.Bytes()
		}},
		{"truncated", "truncated", func(t *testing.T) []byte {
			raw := save(build(2))
			return raw[:len(raw)-1]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := build(2).LoadState(snapshot.NewDecoder(tc.build(t)))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestSamplerLoadStateRejectsCorruptSnapshots is the regression table
// for the sampler codec's validation: shape mismatches (cadence or ring
// capacity), a ring section longer than the capacity it claims, an
// eviction cursor outside the ring, and damaged payloads must all be
// refused before the ring is touched.
func TestSamplerLoadStateRejectsCorruptSnapshots(t *testing.T) {
	build := func(every int64, capacity int) *Sampler {
		reg := NewRegistry()
		reg.Counter("c")
		s := NewSampler(reg, every, capacity)
		for c := int64(1); c <= 10; c++ {
			s.Tick(c)
		}
		return s
	}
	save := func(s *Sampler) []byte {
		var e snapshot.Encoder
		s.SaveState(&e)
		return e.Bytes()
	}
	// Sanity: an unmodified snapshot restores cleanly.
	if err := build(4, 4).LoadState(snapshot.NewDecoder(save(build(4, 4)))); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	cases := []struct {
		name, wantSub string
		build         func(t *testing.T) []byte
	}{
		{"cadence-mismatch", "sampler shape", func(t *testing.T) []byte {
			return save(build(8, 4))
		}},
		{"capacity-mismatch", "sampler shape", func(t *testing.T) []byte {
			return save(build(4, 2))
		}},
		{"ring-len-over-cap", "exceeds cap", func(t *testing.T) []byte {
			var e snapshot.Encoder
			e.Varint(4)  // matching cadence
			e.Uvarint(4) // matching capacity
			e.Uvarint(5) // ring longer than its own capacity
			for i := 0; i < 8; i++ {
				e.U8(0) // filler so the length passes Count's remaining-bytes bound
			}
			return e.Bytes()
		}},
		{"next-out-of-range", "next index", func(t *testing.T) []byte {
			var e snapshot.Encoder
			e.Varint(4)  // matching cadence
			e.Uvarint(4) // matching capacity
			e.Uvarint(0) // empty ring
			e.Int(9)     // eviction cursor outside the ring
			e.Bool(false)
			e.Varint(0)
			return e.Bytes()
		}},
		{"truncated", "truncated", func(t *testing.T) []byte {
			raw := save(build(4, 4))
			return raw[:len(raw)/2]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := build(4, 4).LoadState(snapshot.NewDecoder(tc.build(t)))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
