package obs

import (
	"strings"
	"testing"
)

func TestRegistryOrderAndSample(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kills")
	g := 0.0
	r.Gauge("occ", func() float64 { return g })
	if got := r.Names(); len(got) != 2 || got[0] != "kills" || got[1] != "occ" {
		t.Fatalf("names = %v", got)
	}
	c.Inc()
	c.Add(2)
	g = 7.5
	s := r.Sample()
	if s[0] != 3 || s[1] != 7.5 {
		t.Fatalf("sample = %v", s)
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestRegistryRejectsDuplicatesAndBadProbes(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	for name, fn := range map[string]func(){
		"duplicate":     func() { r.Counter("x") },
		"empty name":    func() { r.Gauge("", func() float64 { return 0 }) },
		"nil gauge":     func() { r.Gauge("g", nil) },
		"negative add":  func() { r.Counter("c").Add(-1) },
		"dup gauge":     func() { r.Gauge("x", func() float64 { return 0 }) },
		"empty counter": func() { r.Counter("") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSamplerCadenceAndRing(t *testing.T) {
	r := NewRegistry()
	cycle := int64(0)
	r.Gauge("cyc", func() float64 { return float64(cycle) })
	s := NewSampler(r, 10, 4)
	for cycle = 0; cycle < 100; cycle++ {
		s.Tick(cycle)
	}
	if s.Taken() != 10 { // cycles 0,10,...,90
		t.Fatalf("taken = %d, want 10", s.Taken())
	}
	series := s.Series()
	if series.Len() != 4 {
		t.Fatalf("retained = %d, want ring capacity 4", series.Len())
	}
	// The ring keeps the most recent samples, chronologically ordered.
	want := []int64{60, 70, 80, 90}
	for i, sm := range series.Samples {
		if sm.Cycle != want[i] || sm.Values[0] != float64(want[i]) {
			t.Fatalf("sample %d = {%d %v}, want cycle %d", i, sm.Cycle, sm.Values, want[i])
		}
	}
	if series.Every != 10 {
		t.Fatalf("every = %d", series.Every)
	}
}

func TestSamplerNoWrapKeepsAll(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", func() float64 { return 1 })
	s := NewSampler(r, 5, 100)
	for c := int64(0); c < 50; c++ {
		s.Tick(c)
	}
	if got := s.Series().Len(); got != 10 {
		t.Fatalf("retained = %d, want 10", got)
	}
}

func TestSamplerBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cadence accepted")
		}
	}()
	NewSampler(NewRegistry(), 0, 4)
}

func TestSeriesReductionsAndCSV(t *testing.T) {
	r := NewRegistry()
	kills := r.Counter("kills")
	occ := 0.0
	r.Gauge("occ", func() float64 { return occ })
	s := NewSampler(r, 1, 16)
	for c := int64(0); c < 4; c++ {
		occ = float64(c) * 2.5
		kills.Add(int64(c)) // cumulative: 0, 1, 3, 6
		s.Tick(c)
	}
	series := s.Series()
	mean, max := series.ColumnStats("occ")
	if mean != (0+2.5+5+7.5)/4 || max != 7.5 {
		t.Fatalf("occ stats = %v/%v", mean, max)
	}
	if d := series.Delta("kills"); d != 6 {
		t.Fatalf("kills delta = %v, want 6", d)
	}
	if m, x := series.ColumnStats("nope"); m != 0 || x != 0 {
		t.Fatal("unknown column not neutral")
	}
	csv := series.CSV()
	if !strings.HasPrefix(csv, "cycle,kills,occ\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "\n1,1,2.5\n") {
		t.Fatalf("csv row wrong:\n%s", csv)
	}

	j := series.JSON()
	if j.Every != 1 || len(j.Cycles) != 4 || len(j.Values) != 4 || j.Values[3][0] != 6 {
		t.Fatalf("json shape wrong: %+v", j)
	}
}

func TestEmptySeriesJSONNotNull(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, 1, 1)
	j := s.Series().JSON()
	if j.Cycles == nil || j.Values == nil || j.Columns == nil {
		t.Fatal("empty series encodes null slices")
	}
}

func TestPhaseBreakdownSumInvariant(t *testing.T) {
	b := NewPhaseBreakdown(8, 64)
	b.Add(10, 0, 5, 20, 0)
	b.Add(3, 40, 6, 18, 32)
	if b.N() != 2 {
		t.Fatalf("n = %d", b.N())
	}
	if err := b.CheckSum(); err != nil {
		t.Fatalf("sum invariant: %v", err)
	}
	if b.Total.Sum() != 10+5+20+3+40+6+18 {
		t.Fatalf("total sum = %d", b.Total.Sum())
	}
	if b.Backoff.Sum() != 32 {
		t.Fatalf("backoff sum = %d", b.Backoff.Sum())
	}
	// A negative component (broken timestamp plumbing) must be detected.
	bad := NewPhaseBreakdown(8, 64)
	bad.Add(-1, 0, 1, 1, 0)
	if err := bad.CheckSum(); err == nil {
		t.Fatal("negative phase component not detected")
	}
}
