package obs

import (
	"fmt"

	"crnet/internal/stats"
)

// PhaseBreakdown decomposes end-to-end message latency into the four
// protocol phases the source and destination timestamps delimit:
//
//	Queue:  message creation -> first attempt's header injection
//	        (waiting in the injector queue and for the channel)
//	Retry:  first attempt's header injection -> delivered attempt's
//	        header injection (failed attempts, kill detection and
//	        retransmission backoff; zero for first-try deliveries)
//	Flight: delivered attempt's header injection -> header arrival at
//	        the destination (routing and link traversal)
//	Drain:  header arrival -> tail drained (serialization of the body
//	        and protocol padding behind the header)
//
// The phases partition the end-to-end interval exactly: their integer
// cycle counts sum to creation->delivery latency per message, so the
// histogram sums satisfy Queue+Retry+Flight+Drain == Total with no
// residue. CheckSum verifies that invariant.
//
// Backoff tracks, inside the Retry phase, the cycles the source spent
// waiting out retransmission gaps (as opposed to re-injecting), which
// is the knob the paper's Fig. 11 tunes.
type PhaseBreakdown struct {
	Queue  *stats.Histogram
	Retry  *stats.Histogram
	Flight *stats.Histogram
	Drain  *stats.Histogram
	// Total is the end-to-end latency histogram over the same messages.
	Total *stats.Histogram
	// Backoff is the retransmission-gap portion of Retry.
	Backoff *stats.Histogram
}

// NewPhaseBreakdown returns a breakdown whose histograms use the given
// bucket width and count (values beyond width*buckets land in overflow
// buckets; means stay exact).
func NewPhaseBreakdown(width int64, buckets int) *PhaseBreakdown {
	return &PhaseBreakdown{
		Queue:   stats.NewHistogram(width, buckets),
		Retry:   stats.NewHistogram(width, buckets),
		Flight:  stats.NewHistogram(width, buckets),
		Drain:   stats.NewHistogram(width, buckets),
		Total:   stats.NewHistogram(width, buckets),
		Backoff: stats.NewHistogram(width, buckets),
	}
}

// Add records one delivered message's phase components, in cycles.
// backoff must not exceed retry (it is a sub-interval of it).
func (b *PhaseBreakdown) Add(queue, retry, flight, drain, backoff int64) {
	b.Queue.Add(queue)
	b.Retry.Add(retry)
	b.Flight.Add(flight)
	b.Drain.Add(drain)
	b.Total.Add(queue + retry + flight + drain)
	b.Backoff.Add(backoff)
}

// N returns the number of messages recorded.
func (b *PhaseBreakdown) N() int64 { return b.Total.N() }

// CheckSum verifies the decomposition invariant: the phase sums add up
// to the end-to-end sum exactly, and no phase ever went negative (a
// negative component would have been clamped and counted by the
// histogram). A non-nil error means the timestamp plumbing is broken.
func (b *PhaseBreakdown) CheckSum() error {
	parts := b.Queue.Sum() + b.Retry.Sum() + b.Flight.Sum() + b.Drain.Sum()
	if parts != b.Total.Sum() {
		return fmt.Errorf("obs: phase sums %d != end-to-end sum %d", parts, b.Total.Sum())
	}
	for _, h := range []struct {
		name string
		h    *stats.Histogram
	}{{"queue", b.Queue}, {"retry", b.Retry}, {"flight", b.Flight}, {"drain", b.Drain}, {"backoff", b.Backoff}} {
		if n := h.h.ClampedNegative(); n != 0 {
			return fmt.Errorf("obs: %d negative %s components clamped", n, h.name)
		}
	}
	return nil
}
