package obs

import "fmt"

// Sample is one snapshot of every registered metric at a cycle.
type Sample struct {
	Cycle  int64
	Values []float64
}

// Sampler snapshots a registry on a fixed cadence into a bounded ring
// buffer, so a long run keeps the most recent window of samples at a
// fixed memory cost. Drive it with Tick once per cycle.
type Sampler struct {
	reg   *Registry //cr:nosnap wiring to the live registry, re-established by the owner after restore
	every int64
	ring  []Sample
	next  int  // ring slot for the next sample
	full  bool // the ring has wrapped at least once
	taken int64
}

// NewSampler returns a sampler reading reg every `every` cycles,
// retaining the most recent cap samples. It panics on a non-positive
// cadence or capacity.
func NewSampler(reg *Registry, every int64, cap int) *Sampler {
	if every < 1 || cap < 1 {
		panic(fmt.Sprintf("obs: invalid sampler shape every=%d cap=%d", every, cap))
	}
	return &Sampler{reg: reg, every: every, ring: make([]Sample, 0, cap)}
}

// Tick observes the clock; on cadence boundaries (cycle % every == 0)
// it takes a snapshot.
func (s *Sampler) Tick(cycle int64) {
	if cycle%s.every != 0 {
		return
	}
	sm := Sample{Cycle: cycle, Values: s.reg.Sample()}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sm)
	} else {
		s.ring[s.next] = sm
		s.next = (s.next + 1) % cap(s.ring)
		s.full = true
	}
	s.taken++
}

// Taken returns how many samples were recorded over the run, including
// those the ring has since evicted.
func (s *Sampler) Taken() int64 { return s.taken }

// Series copies the retained samples out in chronological order,
// together with the registry's column names and the cadence.
func (s *Sampler) Series() *Series {
	n := len(s.ring)
	out := &Series{
		Every:   s.every,
		Columns: s.reg.Names(),
		Samples: make([]Sample, 0, n),
	}
	start := 0
	if s.full {
		start = s.next
	}
	for i := 0; i < n; i++ {
		sm := s.ring[(start+i)%n]
		vals := append([]float64(nil), sm.Values...)
		out.Samples = append(out.Samples, Sample{Cycle: sm.Cycle, Values: vals})
	}
	return out
}
