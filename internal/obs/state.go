package obs

import (
	"fmt"

	"crnet/internal/snapshot"
)

// Checkpoint codecs for the observability layer. The sampler's ring
// buffer and the registry's counter values are part of a service run's
// observable state: a kill-resume run must export the same time-series
// an unbroken run would, so both are captured exactly. Gauges are
// closures over live simulator state and are not serialized — the
// restored network reproduces their values by construction.

// SaveState appends the registry's counter values, in registration
// order, to a snapshot. Gauge probes contribute nothing (they are
// polled, not accumulated); the counter count is recorded so a restore
// into a differently composed registry fails loudly.
func (r *Registry) SaveState(e *snapshot.Encoder) {
	var counters int
	for i := range r.probes {
		if r.probes[i].counter != nil {
			counters++
		}
	}
	e.Uvarint(uint64(counters))
	for i := range r.probes {
		if c := r.probes[i].counter; c != nil {
			e.Varint(c.Value())
		}
	}
}

// LoadState restores counter values written by SaveState. The registry
// must have the same counter probes, in the same order, as the one the
// snapshot was taken from (services rebuild their registry from static
// configuration, so this holds by construction).
func (r *Registry) LoadState(d *snapshot.Decoder) error {
	var counters []*Counter
	for i := range r.probes {
		if c := r.probes[i].counter; c != nil {
			counters = append(counters, c)
		}
	}
	n := d.Count(1 << 20)
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(counters) {
		return fmt.Errorf("obs: snapshot has %d counters, registry has %d", n, len(counters))
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = d.Varint()
	}
	if err := d.Err(); err != nil {
		return err
	}
	for i, c := range counters {
		c.v.Store(vals[i])
	}
	return nil
}

// SaveState appends the sampler's ring buffer to a snapshot: cadence,
// capacity, raw ring slots, the next-eviction index, the wrap flag and
// the total sample count. The raw layout (not the chronological view)
// is stored so the restored sampler's future evictions happen at
// exactly the same points.
func (s *Sampler) SaveState(e *snapshot.Encoder) {
	e.Varint(s.every)
	e.Uvarint(uint64(cap(s.ring)))
	e.Uvarint(uint64(len(s.ring)))
	for i := range s.ring {
		sm := &s.ring[i]
		e.Varint(sm.Cycle)
		e.Uvarint(uint64(len(sm.Values)))
		for _, v := range sm.Values {
			e.F64(v)
		}
	}
	e.Int(s.next)
	e.Bool(s.full)
	e.Varint(s.taken)
}

// LoadState restores a state written by SaveState. The sampler must
// have the same cadence and capacity as the snapshotted one; its ring
// contents are replaced.
func (s *Sampler) LoadState(d *snapshot.Decoder) error {
	every := d.Varint()
	// Capacity is a scalar (no elements follow it), so it must not go
	// through Count's remaining-bytes bound — a mostly-empty ring is
	// legitimately smaller than its capacity.
	ringCap := int(d.Uvarint())
	ringLen := d.Count(1 << 24)
	if err := d.Err(); err != nil {
		return err
	}
	if every != s.every || ringCap != cap(s.ring) {
		return fmt.Errorf("obs: snapshot sampler shape every=%d cap=%d, have every=%d cap=%d",
			every, ringCap, s.every, cap(s.ring))
	}
	if ringLen > ringCap {
		return fmt.Errorf("obs: snapshot sampler ring len %d exceeds cap %d", ringLen, ringCap)
	}
	ring := make([]Sample, ringLen)
	for i := range ring {
		cycle := d.Varint()
		nv := d.Count(1 << 20)
		if err := d.Err(); err != nil {
			return err
		}
		vals := make([]float64, nv)
		for j := range vals {
			vals[j] = d.F64()
		}
		ring[i] = Sample{Cycle: cycle, Values: vals}
	}
	next := d.Int()
	full := d.Bool()
	taken := d.Varint()
	if err := d.Err(); err != nil {
		return err
	}
	if next < 0 || next >= ringCap {
		return fmt.Errorf("obs: snapshot sampler next index %d outside ring cap %d", next, ringCap)
	}
	s.ring = s.ring[:0]
	s.ring = append(s.ring, ring...)
	s.next = next
	s.full = full
	s.taken = taken
	return nil
}
