// Package obs is the observability layer: a metrics registry of named
// counters and gauges, a per-cycle sampler that snapshots them into a
// bounded ring buffer, the time-series container those samples export
// to (CSV for plotting, JSON for the harness artifact), and the
// per-phase latency decomposition used to explain *where* end-to-end
// message latency comes from (queueing at the source, retransmission
// backoff, header flight, tail drain) instead of quoting one number.
//
// The package is deliberately free of simulator dependencies: the
// network feeds counters through its Tracer hook and gauges are plain
// closures, so the same registry/sampler machinery can observe any
// subsystem.
package obs

import (
	"fmt"
	"sync/atomic"
)

// Counter is a monotone event counter. Increments are atomic so a
// counter may be fed from a tracer callback while another goroutine
// reads samples; within the simulator everything is single-threaded
// per network, but the registry should not care.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are a caller bug; counters are monotone.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decremented by %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous measurement, polled at sample time.
type Gauge func() float64

// probe is one registered metric: exactly one of counter/gauge is set.
type probe struct {
	name    string
	counter *Counter
	gauge   Gauge
}

// Registry is an ordered collection of named metrics. Registration
// order is sample-column order, so a registry fully determines the
// schema of the series a sampler produces from it.
type Registry struct {
	probes []probe
	// names is a duplicate-registration guard only: it is looked up and
	// written, never ranged (crlint detmap audit), so all iteration order
	// comes from the probes slice and the schema stays deterministic.
	names map[string]bool //cr:nosnap duplicate-registration guard, rebuilt as probes re-register after restore
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(p probe) {
	if p.name == "" {
		panic("obs: metric with empty name")
	}
	if r.names[p.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", p.name))
	}
	r.names[p.name] = true
	r.probes = append(r.probes, p)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(probe{name: name, counter: c})
	return c
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name string, g Gauge) {
	if g == nil {
		panic(fmt.Sprintf("obs: nil gauge %q", name))
	}
	r.register(probe{name: name, gauge: g})
}

// Names returns the metric names in registration (column) order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.name
	}
	return out
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.probes) }

// Sample reads every metric in registration order. Counters report
// their cumulative value (consumers diff adjacent samples for rates);
// gauges are polled.
func (r *Registry) Sample() []float64 {
	out := make([]float64, len(r.probes))
	for i, p := range r.probes {
		if p.counter != nil {
			out[i] = float64(p.counter.Value())
		} else {
			out[i] = p.gauge()
		}
	}
	return out
}
