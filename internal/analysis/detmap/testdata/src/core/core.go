// Package core is a detmap fixture: its directory maps to
// crnet/internal/core, so simulation-core enforcement applies.
package core

import "sort"

// ID is a stand-in key type.
type ID int

// Sum ranges a map with an observable accumulation order (floats would
// differ per order; even for ints the analyzer cannot tell).
func Sum(m map[ID]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map m iterates in nondeterministic order`
		total += v
	}
	return total
}

// SortedKeys collects keys for sorted iteration. The collection loop
// itself is order-insensitive only because of the sort that follows,
// which is exactly what the annotation asserts.
func SortedKeys(m map[ID]float64) []int {
	keys := make([]int, 0, len(m))
	//cr:orderinvariant keys are sorted before any consumer sees them
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	return keys
}

// Clear is the provable pattern: every statement deletes the ranged
// map's current key, so no annotation is needed.
func Clear(m map[ID]float64) {
	for k := range m {
		delete(m, k)
	}
}

// Unjustified has the annotation but no reason, which is itself a
// finding: the justification is the point.
func Unjustified(m map[ID]int) int {
	n := 0
	//cr:orderinvariant
	for range m { // want `needs a justification`
		n++
	}
	return n
}

// Slices ranges a slice: order is defined, nothing to flag.
func Slices(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
