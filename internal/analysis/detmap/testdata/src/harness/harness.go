// Package harness is a detmap fixture for the exempt side: its
// directory maps to crnet/internal/harness, which is not a
// simulation-core package, so map iteration is unconstrained.
package harness

// Count may range maps freely outside the simulation core.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
