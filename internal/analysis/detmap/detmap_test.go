package detmap_test

import (
	"testing"

	"crnet/internal/analysis/analysistest"
	"crnet/internal/analysis/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer, "core", "harness")
}
