// Package detmap implements the crlint analyzer that forbids ranging
// over maps in simulation-core packages.
//
// Go randomizes map iteration order, so a `range m` loop whose body has
// any observable effect makes the simulator's output depend on the
// runtime's per-process hash seed — silently breaking the repo's
// byte-identical reproducibility guarantee (results_quick.txt, the
// parallel-harness determinism pin, Network.Reset reuse). The analyzer
// accepts two escapes: loops it can prove order-insensitive (a pure
// clearing loop, every statement a delete of the ranged map), and loops
// annotated `//cr:orderinvariant <justification>` for cases whose
// insensitivity needs a human argument.
package detmap

import (
	"go/ast"
	"go/types"

	"crnet/internal/analysis"
)

// Analyzer flags nondeterministic map iteration in the simulation core.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "forbid range over maps in simulation-core packages unless provably " +
		"order-insensitive or annotated //cr:orderinvariant with a justification",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !pass.IsCore() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if ann, ok := pass.Annotated(rs, "orderinvariant"); ok {
				if ann.Reason == "" {
					pass.ReportfEscape(rs.Pos(), "orderinvariant", "//cr:orderinvariant needs a justification (why is this loop order-insensitive?)")
				}
				return true
			}
			if clearingLoop(rs) {
				return true
			}
			pass.ReportfEscape(rs.Pos(), "orderinvariant",
				"range over map %s iterates in nondeterministic order in simulation-core package %s; iterate sorted keys or annotate //cr:orderinvariant with a justification",
				types.ExprString(rs.X), pass.CorePath())
			return true
		})
	}
	return nil
}

// clearingLoop reports whether the range loop is provably
// order-insensitive: every statement of its body deletes the ranged
// map's current key, so the net effect (an empty map) is the same for
// any visit order. This is the one pattern the Go spec itself blesses
// (delete during range is well-defined); anything richer — even
// "obviously" commutative accumulation — needs the annotation, because
// float addition, slice appends and callee side effects are all
// order-sensitive in ways a local check cannot rule out.
func clearingLoop(rs *ast.RangeStmt) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	if rs.Value != nil {
		// A used value variable means the body does more than clear.
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) == 0 {
		return false // empty body: pointless, but also harmless — still flag it
	}
	for _, stmt := range rs.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "delete" {
			return false
		}
		if types.ExprString(call.Args[0]) != types.ExprString(rs.X) {
			return false
		}
		if k, ok := call.Args[1].(*ast.Ident); !ok || k.Name != keyID.Name {
			return false
		}
	}
	return true
}
