package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package, ready to be
// analyzed.
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	annOnce sync.Once
	ann     *annIndex
}

// annotations returns the package's //cr: annotation index, built once
// and shared by every analyzer pass over the package (Run used to
// rebuild it per analyzer, which was pure rework: the index depends
// only on the parsed files).
func (p *Package) annotations() *annIndex {
	p.annOnce.Do(func() { p.ann = buildAnnIndex(p.Fset, p.Files) })
	return p.ann
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go tool would, relative to dir) to
// packages, parses their non-test Go sources and type-checks them
// against compiler export data. It shells out to `go list -export
// -deps`, so it needs the go toolchain but no network and no
// third-party modules: this is the same mechanism x/tools/go/packages
// uses, reduced to the single configuration the linters need.
//
// Test files are not loaded: every crlint invariant exempts test code,
// so analyzing package sources alone keeps the loader simple and makes
// `crlint ./...` time proportional to the simulator, not its tests.
//
// Loads are memoized per process on (dir, patterns): the go list
// subprocess plus parsing and type-checking dominate a lint run, and
// every analyzer sees the same immutable packages, so a driver (or a
// test binary exercising several analyzers over the same fixtures) pays
// for the load exactly once. Sources changing under a live process are
// not a supported use; crlint is a run-to-completion tool.
func Load(dir string, patterns ...string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	key := abs + "\x00" + strings.Join(patterns, "\x00")
	loadCache.Lock()
	if pkgs, ok := loadCache.memo[key]; ok {
		loadCache.Unlock()
		return pkgs, nil
	}
	loadCache.Unlock()
	pkgs, err := load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	loadCache.Lock()
	if loadCache.memo == nil {
		loadCache.memo = make(map[string][]*Package)
	}
	loadCache.memo[key] = pkgs
	loadCache.Unlock()
	return pkgs, nil
}

// loadCache memoizes Load results for the life of the process.
var loadCache struct {
	sync.Mutex
	memo map[string][]*Package
}

func load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPkg
	exportFor := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exportFor[lp.ImportPath] = lp.Export
		}
		// Vendoring or module remapping: the path written in source
		// differs from the resolved package; alias its export data.
		for as, actual := range lp.ImportMap {
			if e, ok := exportFor[actual]; ok && exportFor[as] == "" {
				exportFor[as] = e
			}
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		var names []string
		for _, f := range lp.GoFiles {
			path := filepath.Join(lp.Dir, f)
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, af)
			names = append(names, path)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var tcErr error
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error: func(err error) {
				if tcErr == nil {
					tcErr = err
				}
			},
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if tcErr == nil {
			tcErr = err
		}
		if tcErr != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, tcErr)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			GoFiles:   names,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// Finding is one positioned diagnostic from one analyzer.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
	// Escape is the //cr: annotation name that would justify the
	// finding, when one applies (see Diagnostic.Escape).
	Escape string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. Analyzer errors (not diagnostics) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				ann:       pkg.annotations(),
			}
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Escape:   d.Escape,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
