// Package wallclock implements the crlint analyzer that forbids
// wall-clock reads and waits in simulation-core packages.
//
// The simulator is cycle-timed: every timestamp, timeout and latency in
// the core is an int64 cycle counter, which is what makes runs exactly
// reproducible and lets the harness compare parallel and serial sweeps
// byte for byte. A time.Now or time.Sleep in the core couples results
// to the host's clock and scheduler. Wall-clock concerns (per-point
// durations, sweep timeouts, progress ETAs) belong to the exempt
// harness and cmd layers — see harness.SweepSafe, which measures point
// wall time so sim never has to. The escape annotation is
// `//cr:wallclock <justification>`, for measurement that provably
// cannot influence simulation state.
package wallclock

import (
	"fmt"
	"go/ast"
	"go/types"

	"crnet/internal/analysis"
)

// Analyzer flags wall-clock access in the simulation core.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and friends in simulation-core packages " +
		"(cycle counters only); annotate //cr:wallclock to justify an exemption",
	Run: run,
}

// forbidden are the time-package functions and methods that read, wait
// on or arm the wall clock. Types (time.Duration) and pure conversions
// remain allowed: configuration may be expressed in durations as long
// as the core never samples the clock. Reset covers the methods
// (*time.Timer).Reset and (*time.Ticker).Reset — re-arming a timer is a
// clock read by another name, and used to slip through when only
// package-level functions were matched.
var forbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "Reset": true,
}

func run(pass *analysis.Pass) error {
	if !pass.IsCore() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			fn, isFn := obj.(*types.Func)
			if !isFn || !forbidden[obj.Name()] {
				return true
			}
			if ann, ok := pass.Annotated(sel, "wallclock"); ok {
				if ann.Reason == "" {
					pass.ReportfEscape(sel.Pos(), "wallclock", "//cr:wallclock needs a justification (why can this clock read not influence simulation state?)")
				}
				return true
			}
			pass.ReportfEscape(sel.Pos(), "wallclock",
				"%s reads the wall clock in simulation-core package %s; the core is cycle-timed — move timing to harness/cmd or annotate //cr:wallclock with a justification",
				qualifiedName(fn), pass.CorePath())
			return true
		})
	}
	return nil
}

// qualifiedName renders a time-package function or method for a
// diagnostic: "time.Now" for package-level functions,
// "(*time.Timer).Reset" for methods, so the reader sees exactly which
// clock surface was touched.
func qualifiedName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), nil), fn.Name())
	}
	return "time." + fn.Name()
}
