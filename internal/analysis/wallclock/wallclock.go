// Package wallclock implements the crlint analyzer that forbids
// wall-clock reads and waits in simulation-core packages.
//
// The simulator is cycle-timed: every timestamp, timeout and latency in
// the core is an int64 cycle counter, which is what makes runs exactly
// reproducible and lets the harness compare parallel and serial sweeps
// byte for byte. A time.Now or time.Sleep in the core couples results
// to the host's clock and scheduler. Wall-clock concerns (per-point
// durations, sweep timeouts, progress ETAs) belong to the exempt
// harness and cmd layers — see harness.SweepSafe, which measures point
// wall time so sim never has to. The escape annotation is
// `//cr:wallclock <justification>`, for measurement that provably
// cannot influence simulation state.
package wallclock

import (
	"go/ast"
	"go/types"

	"crnet/internal/analysis"
)

// Analyzer flags wall-clock access in the simulation core.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and friends in simulation-core packages " +
		"(cycle counters only); annotate //cr:wallclock to justify an exemption",
	Run: run,
}

// forbidden are the package-level time functions that read or wait on
// the wall clock. Types (time.Duration) and pure conversions remain
// allowed: configuration may be expressed in durations as long as the
// core never samples the clock.
var forbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *analysis.Pass) error {
	if !pass.IsCore() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFn := obj.(*types.Func); !isFn || !forbidden[obj.Name()] {
				return true
			}
			if ann, ok := pass.Annotated(sel, "wallclock"); ok {
				if ann.Reason == "" {
					pass.Reportf(sel.Pos(), "//cr:wallclock needs a justification (why can this clock read not influence simulation state?)")
				}
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in simulation-core package %s; the core is cycle-timed — move timing to harness/cmd or annotate //cr:wallclock with a justification",
				obj.Name(), pass.CorePath())
			return true
		})
	}
	return nil
}
