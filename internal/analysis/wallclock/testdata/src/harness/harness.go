// Package harness is a wallclock fixture for the exempt side: the
// harness layer owns wall-clock measurement (point durations, timeouts,
// ETAs), so nothing here is flagged.
package harness

import "time"

// Elapsed measures real time, which is the harness's job.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Now is allowed outside the simulation core.
func Now() time.Time { return time.Now() }
