// Package sim is a wallclock fixture: its directory maps to
// crnet/internal/sim, a simulation-core package where the wall clock is
// off limits.
package sim

import "time"

// Cycles is fine: durations are configuration, not clock reads.
func Cycles(budget time.Duration) int64 {
	return int64(budget / time.Microsecond)
}

// Stamp samples the wall clock in the core.
func Stamp() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.UnixNano()
}

// Wait stalls on the host scheduler.
func Wait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// Justified measurement that cannot feed back into simulation state.
func Justified() time.Time {
	//cr:wallclock reporting-only timestamp, never read by the simulation
	return time.Now()
}

// Unjustified carries the annotation without a reason.
func Unjustified() time.Time {
	//cr:wallclock
	return time.Now() // want `needs a justification`
}

// ChannelWaits couples the core to the host clock through timer
// channels, which is Sleep by another name.
func ChannelWaits() {
	<-time.After(time.Millisecond) // want `time\.After reads the wall clock`
	<-time.Tick(time.Millisecond)  // want `time\.Tick reads the wall clock`
}

// Timers arm host-clock callbacks; construction and re-arming both
// sample the clock.
func Timers(d time.Duration) {
	tk := time.NewTicker(d) // want `time\.NewTicker reads the wall clock`
	tk.Reset(d)             // want `\(\*time\.Ticker\)\.Reset reads the wall clock`
	tm := time.NewTimer(d)  // want `time\.NewTimer reads the wall clock`
	tm.Reset(d)             // want `\(\*time\.Timer\)\.Reset reads the wall clock`
	tm.Stop()
}
