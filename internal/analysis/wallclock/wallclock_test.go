package wallclock_test

import (
	"testing"

	"crnet/internal/analysis/analysistest"
	"crnet/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "sim", "harness")
}
