// Package harness is an rngsource fixture for the exempt side: layers
// outside the simulation core may use math/rand (e.g. for jittered
// backoff in tooling that never touches simulation results).
package harness

import "math/rand"

// Jitter is allowed here: the harness is not simulation-core.
func Jitter() int { return rand.Intn(100) }
