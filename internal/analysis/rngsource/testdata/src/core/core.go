// Package core is an rngsource fixture: its directory maps to
// crnet/internal/core, where randomness must flow through
// crnet/internal/rng with derived seeds.
package core

import (
	"math/rand"           // want `math/rand imported in simulation-core`
	randv2 "math/rand/v2" // want `math/rand/v2 imported in simulation-core`

	"crnet/internal/rng"
)

// LegacyJitter uses the banned generator (its stream is unspecified
// across Go releases).
func LegacyJitter() int {
	return rand.Intn(8) + int(randv2.Uint64()%8)
}

// AdHoc seeds a stream with a literal, hiding it from the harness's
// per-point seed derivation.
func AdHoc() uint64 {
	r := rng.New(42) // want `rng\.New with constant seed 42`
	return r.Uint64()
}

// Derived takes its seed from configuration: this is the sanctioned
// shape (the caller derives seed via harness.PointSeed).
func Derived(seed uint64) uint64 {
	return rng.New(seed).Uint64()
}

// Reset reseeds from a constant expression; constants anywhere in the
// seed argument are flagged.
func Reset(r *rng.Source) {
	r.Reseed(7 * 11) // want `rng\.Reseed with constant seed`
}

// Golden uses a justified fixed stream.
func Golden() uint64 {
	r := rng.New(0xcafe) //cr:randsource golden-vector stream pinned by spec, not part of any sweep
	return r.Uint64()
}

// Unjustified carries the annotation without a reason.
func Unjustified() uint64 {
	//cr:randsource
	r := rng.New(1) // want `needs a justification`
	return r.Uint64()
}
