// Package rngsource implements the crlint analyzer that keeps all
// simulation-core randomness flowing through internal/rng streams with
// derived seeds.
//
// Two rules. First, math/rand and math/rand/v2 are banned outright in
// core packages: their streams are unspecified across Go releases and
// the top-level functions share seeded-once global state, either of
// which breaks cross-version and cross-worker reproducibility. The
// repo's xoshiro256** implementation (internal/rng) is the only
// sanctioned generator. Second, rng.New / (*rng.Source).Reseed must not
// be fed ad-hoc constant seeds in the core: a literal seed hides a
// stochastic stream from the harness's splitmix64 derivation
// (harness.PointSeed), so two sweep points could silently share a
// stream. Seeds must arrive through configuration. The escape
// annotation is `//cr:randsource <justification>`.
package rngsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"crnet/internal/analysis"
)

// Analyzer flags unsanctioned randomness in the simulation core.
var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc: "forbid math/rand imports and constant rng seeds in simulation-core " +
		"packages; randomness flows through internal/rng with derived seeds " +
		"(annotate //cr:randsource to justify an exemption)",
	Run: run,
}

const rngPath = "crnet/internal/rng"

func run(pass *analysis.Pass) error {
	if !pass.IsCore() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			if ann, ok := pass.Annotated(imp, "randsource"); ok && ann.Reason != "" {
				continue
			}
			pass.ReportfEscape(imp.Pos(), "randsource",
				"%s imported in simulation-core package %s; use crnet/internal/rng (stream is pinned across Go releases and seeded per point)",
				path, pass.CorePath())
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != rngPath {
				return true
			}
			if fn.Name() != "New" && fn.Name() != "Reseed" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			seed := call.Args[0]
			tv, ok := pass.TypesInfo.Types[seed]
			if !ok || tv.Value == nil {
				return true // non-constant seed: derived from config, fine
			}
			if ann, ok := pass.Annotated(call, "randsource"); ok {
				if ann.Reason == "" {
					pass.ReportfEscape(call.Pos(), "randsource", "//cr:randsource needs a justification (why may this stream bypass seed derivation?)")
				}
				return true
			}
			pass.ReportfEscape(seed.Pos(), "randsource",
				"rng.%s with constant seed %s in simulation-core package %s; derive seeds from configuration (e.g. harness.PointSeed) or annotate //cr:randsource with a justification",
				fn.Name(), types.ExprString(seed), pass.CorePath())
			return true
		})
	}
	return nil
}
