package rngsource_test

import (
	"testing"

	"crnet/internal/analysis/analysistest"
	"crnet/internal/analysis/rngsource"
)

func TestRngsource(t *testing.T) {
	analysistest.Run(t, rngsource.Analyzer, "core", "harness")
}
