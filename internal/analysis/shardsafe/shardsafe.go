// Package shardsafe implements the crlint analyzer that proves shard
// isolation statically: code reachable from the parallel phase bodies
// of the sharded cycle kernel must not touch Network-level shared state
// outside the sanctioned seams.
//
// The sharded kernel (internal/network/shard.go, DESIGN.md §10) runs
// the node-ordered phases on worker goroutines, one per shard, with the
// guarantee that results are byte-identical to the serial kernel. That
// only holds — and only races are absent — because workers confine
// their side effects to three seams: their own shard's sink (merged in
// shard order at the barrier), the credit mailbox matrix (commutative,
// applied column-wise by the owner), and shard-local state reached
// through the shard descriptors. A stray write to a Network field from
// a phase body compiles fine and may pass the quick-scale `-race` soak,
// which never schedules the interleaving that corrupts it. shardsafe is
// the static complement to TestShardedMatchesSerial and `make
// race-sharded`.
//
// Mechanically: the roots are the methods whose name starts with
// "shard" (shardWorker and the shard* phase bodies); the analyzer walks
// the package-local call graph from them — direct calls to same-package
// functions and methods, function literals inlined — and inside every
// reachable body flags
//
//   - writes (assignments, ++/--) whose target chain is rooted at a
//     receiver/variable of the root methods' type (Network),
//   - calls through func-typed fields of that type (n.tracer(ev)), and
//   - method calls on a pure field chain of that type when the method
//     can mutate it (pointer-receiver or interface method),
//
// unless the chain passes through the `shards` field (the shard
// descriptors ARE the shard-local seam) or the site carries a
// `//cr:sharded <reason>` escape. Escapes attach at three levels: the
// offending statement, the whole function (doc comment), or the struct
// field being touched — the last for fields that are immutable after
// construction (topo) or are the synchronization primitive itself (wg).
// An escape without a justification is itself a finding.
//
// Known soundness limits, covered by the dynamic race gate: writes
// through pointers obtained from helpers (l := n.linkAt(..); l.busy =
// true targets per-link state the executing shard owns), method calls
// whose receiver chain contains an index expression (n.routers[id] is
// per-node state owned by the executing shard), and adapter methods
// invoked through external packages (injPort/fkillPort reach phase code
// via core callbacks the package-local graph cannot see).
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"crnet/internal/analysis"
)

// Analyzer flags unsanctioned shared-state access in sharded phase code.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "forbid writes to Network-level shared state from code reachable from " +
		"the shard* parallel phase bodies unless routed through the per-shard " +
		"sink, the credit mailbox matrix, or the shard descriptors; annotate " +
		"//cr:sharded to justify an exemption",
	Run: run,
}

// seamField is the owner field whose subtree is the sanctioned
// shard-local seam: each worker touches only its own shard descriptor.
const seamField = "shards"

// rootPrefix marks the parallel phase bodies.
const rootPrefix = "shard"

func run(pass *analysis.Pass) error {
	// Shard isolation is a property of the sharded kernel; only the
	// network package (or a fixture standing for it) declares one.
	if pass.CorePath() != "crnet/internal/network" {
		return nil
	}

	declOf := map[*types.Func]*ast.FuncDecl{}
	structAST := map[*types.Named]*ast.StructType{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fo, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
					declOf[fo] = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						if named, ok := tn.Type().(*types.Named); ok {
							structAST[named] = st
						}
					}
				}
			}
		}
	}

	// Roots, grouped by owner (the receiver type of the shard* methods).
	rootsByOwner := map[*types.Named][]*ast.FuncDecl{}
	for fo, d := range declOf {
		if !strings.HasPrefix(fo.Name(), rootPrefix) {
			continue
		}
		recv := fo.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		if named := namedOf(recv.Type()); named != nil {
			rootsByOwner[named] = append(rootsByOwner[named], d)
		}
	}

	for owner, roots := range rootsByOwner {
		ownerStruct, ok := owner.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		s := &scanner{
			pass:        pass,
			owner:       owner,
			ownerStruct: ownerStruct,
			fieldDecl:   fieldDecls(structAST[owner], ownerStruct),
			declOf:      declOf,
			seen:        map[*ast.FuncDecl]bool{},
			reportedAnn: map[token.Pos]bool{},
		}
		for _, r := range roots {
			s.enqueue(r)
		}
		for len(s.queue) > 0 {
			d := s.queue[0]
			s.queue = s.queue[1:]
			s.scan(d)
		}
	}
	return nil
}

// fieldDecls maps top-level field indices of the owner struct to their
// declarations, so field-level //cr:sharded escapes can be resolved.
func fieldDecls(st *ast.StructType, fields *types.Struct) map[int]*ast.Field {
	out := map[int]*ast.Field{}
	if st == nil {
		return out
	}
	idx := 0
	for _, fld := range st.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n && idx < fields.NumFields(); j++ {
			out[idx] = fld
			idx++
		}
	}
	return out
}

// scanner walks the package-local call graph from the shard roots.
type scanner struct {
	pass        *analysis.Pass
	owner       *types.Named
	ownerStruct *types.Struct
	fieldDecl   map[int]*ast.Field
	declOf      map[*types.Func]*ast.FuncDecl
	queue       []*ast.FuncDecl
	seen        map[*ast.FuncDecl]bool
	reportedAnn map[token.Pos]bool // empty-reason escapes already reported
}

func (s *scanner) enqueue(d *ast.FuncDecl) {
	if d == nil || d.Body == nil || s.seen[d] {
		return
	}
	s.seen[d] = true
	s.queue = append(s.queue, d)
}

func (s *scanner) enqueueObj(obj types.Object) {
	fo, ok := obj.(*types.Func)
	if !ok || fo.Pkg() != s.pass.Pkg {
		return
	}
	s.enqueue(s.declOf[fo])
}

// scan inspects one reachable function body. A function-level
// //cr:sharded escape vouches for the whole body including its callees.
func (s *scanner) scan(d *ast.FuncDecl) {
	if ann, ok := s.pass.FuncAnnotated(d, "sharded"); ok {
		if ann.Reason == "" && !s.reportedAnn[ann.Pos] {
			s.reportedAnn[ann.Pos] = true
			s.pass.ReportfEscape(d.Pos(), "sharded",
				"//cr:sharded needs a justification (why is %s safe to run from shard workers?)", d.Name.Name)
		}
		return
	}
	fname := d.Name.Name
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				s.checkWrite(lhs, n, fname)
			}
		case *ast.IncDecStmt:
			s.checkWrite(n.X, n, fname)
		case *ast.CallExpr:
			s.checkCall(n, fname)
		}
		return true
	})
}

// checkWrite flags an assignment or ++/-- whose target chain is rooted
// at an owner-typed variable and does not pass through the shard seam.
func (s *scanner) checkWrite(lhs ast.Expr, stmt ast.Node, fname string) {
	root, inner, _, pure := unwrapChain(lhs)
	if !pure || root == nil || inner == nil || !s.isOwnerIdent(root) {
		return
	}
	sel := s.pass.TypesInfo.Selections[inner]
	if sel == nil || sel.Kind() != types.FieldVal || namedOf(sel.Recv()) != s.owner {
		return
	}
	idx := sel.Index()[0]
	fv := s.ownerStruct.Field(idx)
	if fv.Name() == seamField {
		return
	}
	if s.escaped(stmt, idx) {
		return
	}
	s.pass.ReportfEscape(stmt.Pos(), "sharded",
		"write to shared %s.%s in %s, which shard workers reach; route it through the per-shard sink, "+
			"the credit matrix, or the shard descriptors, or annotate //cr:sharded with a justification",
		s.owner.Obj().Name(), fv.Name(), fname)
}

// checkCall classifies one call: a violation (func-field call or
// mutating method call on a shared field chain), a call-graph edge to
// traverse, or neither.
func (s *scanner) checkCall(call *ast.CallExpr, fname string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		s.enqueueObj(s.pass.TypesInfo.Uses[fun])
	case *ast.SelectorExpr:
		root, inner, sawIndex, pure := unwrapChain(fun)
		if !pure || root == nil || !s.isOwnerIdent(root) {
			// Method on a local, parameter or imported package: traverse
			// when it resolves to a same-package declaration.
			s.enqueueObj(s.pass.TypesInfo.Uses[fun.Sel])
			return
		}
		top := s.pass.TypesInfo.Selections[fun]
		if top == nil {
			return
		}
		var firstIdx int
		switch {
		case inner == fun && top.Kind() == types.MethodVal && len(top.Index()) == 1:
			// A method of the owner itself: a call-graph edge.
			s.enqueueObj(s.pass.TypesInfo.Uses[fun.Sel])
			return
		case inner == fun:
			// Func-typed field, or a method promoted through an embedded
			// field; either way the owner field is Index()[0].
			firstIdx = top.Index()[0]
		default:
			innerSel := s.pass.TypesInfo.Selections[inner]
			if innerSel == nil || innerSel.Kind() != types.FieldVal || namedOf(innerSel.Recv()) != s.owner {
				return
			}
			firstIdx = innerSel.Index()[0]
		}
		fv := s.ownerStruct.Field(firstIdx)
		if fv.Name() == seamField {
			return
		}
		if top.Kind() == types.FieldVal {
			if s.escaped(call, firstIdx) {
				return
			}
			s.pass.ReportfEscape(call.Pos(), "sharded",
				"call through shared func field %s.%s in %s, which shard workers reach; defer it through "+
					"the sink or annotate //cr:sharded with a justification",
				s.owner.Obj().Name(), fv.Name(), fname)
			return
		}
		// Method call on a field chain. Index expressions select
		// per-node state the executing shard owns; the race gate covers
		// the partition argument.
		if sawIndex {
			return
		}
		if !mayMutate(s.pass.TypesInfo.Uses[fun.Sel]) {
			return
		}
		if s.escaped(call, firstIdx) {
			return
		}
		s.pass.ReportfEscape(call.Pos(), "sharded",
			"call to %s on shared field %s.%s in %s, which shard workers reach, may mutate it; "+
				"keep phase effects in the sink or annotate //cr:sharded with a justification",
			fun.Sel.Name, s.owner.Obj().Name(), fv.Name(), fname)
	}
}

// escaped reports whether the violation at node n (touching owner field
// idx) is covered by a //cr:sharded escape on the statement or on the
// field declaration, reporting missing justifications as it goes.
func (s *scanner) escaped(n ast.Node, idx int) bool {
	if ann, ok := s.pass.Annotated(n, "sharded"); ok {
		if ann.Reason == "" {
			s.pass.ReportfEscape(n.Pos(), "sharded",
				"//cr:sharded needs a justification (why is this shared-state access race-free?)")
		}
		return true
	}
	if fld := s.fieldDecl[idx]; fld != nil {
		if ann, ok := s.pass.Annotated(fld, "sharded"); ok {
			if ann.Reason == "" && !s.reportedAnn[ann.Pos] {
				s.reportedAnn[ann.Pos] = true
				s.pass.ReportfEscape(fld.Pos(), "sharded",
					"//cr:sharded needs a justification (why is field %s safe to touch from shard workers?)",
					s.ownerStruct.Field(idx).Name())
			}
			return true
		}
	}
	return false
}

// isOwnerIdent reports whether id names a variable (receiver, parameter
// or local) of the owner type.
func (s *scanner) isOwnerIdent(id *ast.Ident) bool {
	obj := s.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = s.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return ok && namedOf(v.Type()) == s.owner
}

// mayMutate reports whether calling obj can mutate its receiver: true
// for pointer-receiver methods and interface methods (unknown
// implementation), false for concrete value-receiver methods, which
// operate on a copy.
func mayMutate(obj types.Object) bool {
	fo, ok := obj.(*types.Func)
	if !ok {
		return true // unresolvable: assume the worst
	}
	sig, ok := fo.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	rt := sig.Recv().Type()
	if _, isPtr := rt.(*types.Pointer); isPtr {
		return true
	}
	return types.IsInterface(rt)
}

// unwrapChain peels selectors, indexing, parens and derefs off e down
// to its root identifier. inner is the innermost selector (the one
// whose X is the root); sawIndex reports indexing anywhere along the
// chain; pure is false when the chain passes through anything else
// (e.g. a call result).
func unwrapChain(e ast.Expr) (root *ast.Ident, inner *ast.SelectorExpr, sawIndex bool, pure bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, inner, sawIndex, true
		case *ast.SelectorExpr:
			inner = x
			e = x.X
		case *ast.IndexExpr:
			sawIndex = true
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil, false, false
		}
	}
}

// namedOf unwraps pointers to the defined type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
