package shardsafe_test

import (
	"testing"

	"crnet/internal/analysis/analysistest"
	"crnet/internal/analysis/shardsafe"
)

func TestShardsafe(t *testing.T) {
	analysistest.Run(t, shardsafe.Analyzer, "network", "router")
}
