// Package network is a shardsafe fixture: this directory maps to
// crnet/internal/network, so the analyzer treats the shard* methods
// below as the parallel phase roots and polices what they reach.
package network

// topo stands in for the immutable topology interface.
type topo interface{ neighbor(int) int }

// cfg has a value-receiver method: calling it copies the field and
// cannot mutate the Network.
type cfg struct{ max int }

func (c cfg) limit() int { return c.max }

// nodeSet has a pointer-receiver method, so calling it through a
// Network field mutates shared state.
type nodeSet struct{ ids []int32 }

func (s *nodeSet) add(id int32) { s.ids = append(s.ids, id) }

type router struct{ busy bool }

func (r *router) apply() { r.busy = true }

type receiver struct{ got []int }

func (r *receiver) drain() { r.got = r.got[:0] }

// sink collects per-shard side effects; Network embeds the serial one.
type sink struct {
	signals    []int
	deliveries int
}

func (s *sink) bump() { s.deliveries++ }

type shard struct {
	sink
	credits []int
}

type Network struct {
	sink
	shards    []shard
	recvMark  []bool
	routers   []*router
	receivers []receiver
	activeI   nodeSet
	tracer    func(int)
	hooks     topo
	cfg       cfg
	cycle     int
	lastEvent int
	dropped   int
	flits     int

	topo topo //cr:sharded topology is immutable after construction

	//cr:sharded
	scratch []int // want `//cr:sharded needs a justification`
}

// shardWorker is a root: everything it reaches is checked.
func (n *Network) shardWorker(si int) {
	sh := &n.shards[si]
	sh.credits = sh.credits[:0]                  // shard-local: rooted at the descriptor
	n.shards[si].credits = append(sh.credits, 7) // sanctioned seam: through shards
	n.recvMark[si] = false                       // want `write to shared Network\.recvMark in shardWorker`
	n.deliveries++                               // want `write to shared Network\.sink in shardWorker`
	n.tracer(si)                                 // want `call through shared func field Network\.tracer in shardWorker`
	n.activeI.add(int32(si))                     // want `call to add on shared field Network\.activeI in shardWorker`
	n.bump()                                     // want `call to bump on shared field Network\.sink in shardWorker`
	_ = n.hooks.neighbor(si)                     // want `call to neighbor on shared field Network\.hooks in shardWorker`
	_ = n.topo.neighbor(si)                      // field-level escape with a reason
	_ = n.cfg.limit()                            // value receiver: operates on a copy
	n.routers[si].apply()                        // per-node state: index in the chain
	n.receiverAt(si).drain()                     // call-result receiver: out of scope
	n.scratch = n.scratch[:0]                    // field-level escape (reason missing, flagged once at the field)
	n.scratch = append(n.scratch, si)            // second use through the same escape: no extra finding
	n.lastEvent = si                             //cr:sharded phase zero runs on a single worker
	n.helper()
	n.finalize()
	//cr:sharded
	n.dropped++ // want `//cr:sharded needs a justification`
	n.bury()
	defer func() { n.flits++ }() // want `write to shared Network\.flits in shardWorker`
}

// helper is not a root, but shardWorker reaches it.
func (n *Network) helper() {
	n.cycle++ // want `write to shared Network\.cycle in helper`
}

// receiverAt hands out per-node state; reading shared slices is fine.
func (n *Network) receiverAt(id int) *receiver {
	return &n.receivers[id]
}

//cr:sharded runs after the barrier on the coordinating goroutine
func (n *Network) finalize() {
	n.cycle++ // vouched for by the function-level escape above
}

//cr:sharded
func (n *Network) bury() { // want `//cr:sharded needs a justification`
	n.cycle++
}

// merge is neither a root nor reachable from one: the serial half may
// touch anything.
func (n *Network) merge() {
	n.recvMark[0] = true
	n.signals = n.signals[:0]
}
