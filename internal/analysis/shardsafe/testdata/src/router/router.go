// Package router is a shardsafe fixture for the gate: shard isolation
// is a property of the network package's kernel, so shard*-named
// methods elsewhere in the core are not roots and nothing is flagged.
package router

type Table struct {
	rows []int
	hits int
}

func (t *Table) shardScan(i int) {
	t.hits++
	t.rows = append(t.rows, i)
}
