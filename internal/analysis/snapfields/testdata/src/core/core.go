// Package core is a snapfields fixture: its directory maps to
// crnet/internal/core, a simulation-core package where every field of a
// checkpointable struct must be covered by both codec halves.
package core

// enc and dec stand in for snapshot.Encoder/Decoder.
type enc struct{ buf []int }

func (e *enc) put(v int) { e.buf = append(e.buf, v) }

type dec struct {
	buf []int
	i   int
}

func (d *dec) get() int { v := d.buf[d.i]; d.i++; return v }

// ring is embedded into gauge below; touching a promoted field counts
// as touching the embedded field.
type ring struct{ head, tail int }

// gauge exercises the violation shapes.
type gauge struct {
	value int
	// peak is saved but its restore was forgotten.
	peak int // want `field gauge\.peak is not referenced in LoadState`
	// ghost never made it into the codec at all.
	ghost int // want `field gauge\.ghost is not referenced in SaveState or LoadState`
	// helperCovered is serialized inside a directly-called helper.
	helperCovered int
	// deepCovered is only touched two calls deep, which is beyond the
	// one level of helper resolution the analyzer promises.
	deepCovered int // want `field gauge\.deepCovered is not referenced in SaveState or LoadState`
	//cr:nosnap rebuilt from configuration on restore
	cfgDerived int
	//cr:nosnap
	scratch []int // want `//cr:nosnap needs a justification`
	ring
}

func (g *gauge) SaveState(e *enc) {
	e.put(g.value)
	e.put(g.peak)
	g.saveRest(e)
	e.put(g.head)
}

func (g *gauge) LoadState(d *dec) {
	g.value = d.get()
	g.loadRest(d)
	g.head = d.get()
}

func (g *gauge) saveRest(e *enc) {
	e.put(g.helperCovered)
	g.saveDeep(e)
}

func (g *gauge) loadRest(d *dec) {
	g.helperCovered = d.get()
	g.loadDeep(d)
}

func (g *gauge) saveDeep(e *enc) { e.put(g.deepCovered) }
func (g *gauge) loadDeep(d *dec) { g.deepCovered = d.get() }

// cursor uses the short Save/Load pair, which pairs just the same.
type cursor struct {
	pos  int
	mark int // want `field cursor\.mark is not referenced in Load`
}

func (c *cursor) Save(e *enc) { e.put(c.pos); e.put(c.mark) }
func (c *cursor) Load(d *dec) { c.pos = d.get() }

// exporter has only half a pair: Save for export, no Load. Out of
// scope, so its unreferenced field is not a finding.
type exporter struct {
	rows int
	tmp  []int
}

func (x *exporter) Save(e *enc) { e.put(x.rows) }
