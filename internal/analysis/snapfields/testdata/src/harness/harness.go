// Package harness is a snapfields fixture for the exempt side: the
// harness layer is outside the simulation core, so an incomplete codec
// here is not crlint's business.
package harness

type enc struct{ buf []int }

func (e *enc) put(v int) { e.buf = append(e.buf, v) }

type dec struct {
	buf []int
	i   int
}

func (d *dec) get() int { v := d.buf[d.i]; d.i++; return v }

// report has a field the codec drops; outside the core that is allowed.
type report struct {
	points  int
	scratch []int
}

func (r *report) SaveState(e *enc) { e.put(r.points) }
func (r *report) LoadState(d *dec) { r.points = d.get() }
