package snapfields_test

import (
	"testing"

	"crnet/internal/analysis/analysistest"
	"crnet/internal/analysis/snapfields"
)

func TestSnapfields(t *testing.T) {
	analysistest.Run(t, snapfields.Analyzer, "core", "harness")
}
