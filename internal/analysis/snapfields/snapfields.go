// Package snapfields implements the crlint analyzer that proves
// snapshot coverage statically: every field of a checkpointable struct
// must be referenced by both halves of its codec, or carry an explicit
// justification for being excluded.
//
// The repo's resume guarantee (DESIGN.md §9, `make snapshot-pin`) is
// that a run restored from a checkpoint is byte-identical to an
// unbroken one. That guarantee is only as strong as the codecs: a field
// added to a state struct but forgotten in SaveState or LoadState
// compiles cleanly and diverges silently, typically long after the
// restore — exactly the bug class the obs ring `Count` misuse was (PR
// 6), caught then only because a pin test happened to cover the
// configuration. snapfields closes the gap at compile time.
//
// For every struct type in a simulation-core package that has a paired
// codec — methods SaveState/LoadState, or Save/Load — the analyzer
// enumerates the struct's fields via go/types and demands that each
// field be referenced in *both* methods, either directly or inside a
// same-package function or method the codec calls directly (helpers one
// level deep; codecs that bury field access deeper should hoist it or
// annotate). A field that is deliberately not serialized — derived
// state rebuilt on restore, configuration owned by the constructor,
// scratch buffers — carries `//cr:nosnap <reason>` on its declaration;
// the reason is mandatory, an empty annotation is itself a finding.
//
// "Referenced" is deliberately weaker than "serialized": the analyzer
// accepts any selection of the field inside the codec, so it cannot
// tell a write from a validation read. It is a tripwire for forgotten
// fields, not a proof of codec correctness — the snapshot pins remain
// the dynamic half of the guarantee. Types with only half a codec pair
// (e.g. a Save used for export with no Load) are out of scope.
package snapfields

import (
	"go/ast"
	"go/types"
	"strings"

	"crnet/internal/analysis"
)

// Analyzer flags state-struct fields missing from their snapshot codec.
var Analyzer = &analysis.Analyzer{
	Name: "snapfields",
	Doc: "require every field of a struct with paired SaveState/LoadState (or " +
		"Save/Load) methods in simulation-core packages to be referenced in both, " +
		"directly or via a directly-called same-package helper; annotate " +
		"//cr:nosnap to justify a field excluded from snapshots",
	Run: run,
}

// codecPairs are the method-name pairs that make a struct
// checkpointable. Both pairs are checked independently when a type
// carries both.
var codecPairs = [][2]string{
	{"SaveState", "LoadState"},
	{"Save", "Load"},
}

func run(pass *analysis.Pass) error {
	if !pass.IsCore() {
		return nil
	}

	// Index the package's function declarations (for depth-1 helper
	// resolution) and its struct type declarations.
	declOf := map[*types.Func]*ast.FuncDecl{}
	structAST := map[*types.Named]*ast.StructType{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fo, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
					declOf[fo] = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					if named, ok := tn.Type().(*types.Named); ok {
						structAST[named] = st
					}
				}
			}
		}
	}

	// Group methods by receiver type.
	methods := map[*types.Named]map[string]*ast.FuncDecl{}
	for fo, d := range declOf {
		recv := fo.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		named := namedOf(recv.Type())
		if named == nil {
			continue
		}
		if methods[named] == nil {
			methods[named] = map[string]*ast.FuncDecl{}
		}
		methods[named][fo.Name()] = d
	}

	for named, ms := range methods {
		st, ok := structAST[named]
		if !ok {
			continue
		}
		fields, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for _, pair := range codecPairs {
			save, okS := ms[pair[0]]
			load, okL := ms[pair[1]]
			if !okS || !okL {
				continue
			}
			saved := referencedFields(pass, named, save, declOf)
			loaded := referencedFields(pass, named, load, declOf)
			checkFields(pass, named, st, fields, pair, saved, loaded)
		}
	}
	return nil
}

// checkFields walks the struct's declared fields in source order and
// reports each one missing from either codec half without a justified
// //cr:nosnap escape.
func checkFields(pass *analysis.Pass, named *types.Named, st *ast.StructType,
	fields *types.Struct, pair [2]string, saved, loaded map[int]bool) {
	idx := 0
	for _, fld := range st.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for j := 0; j < n; j++ {
			if idx >= fields.NumFields() {
				return // blank or otherwise unmapped declarations; be safe
			}
			fv := fields.Field(idx)
			idx++
			var missing []string
			if !saved[idx-1] {
				missing = append(missing, pair[0])
			}
			if !loaded[idx-1] {
				missing = append(missing, pair[1])
			}
			if len(missing) == 0 {
				continue
			}
			if ann, ok := pass.Annotated(fld, "nosnap"); ok {
				if ann.Reason == "" {
					pass.ReportfEscape(fld.Pos(), "nosnap",
						"//cr:nosnap needs a justification (why is %s.%s excluded from snapshots?)",
						named.Obj().Name(), fv.Name())
				}
				continue
			}
			pass.ReportfEscape(fld.Pos(), "nosnap",
				"field %s.%s is not referenced in %s (directly or via a directly-called helper); "+
					"a snapshot will silently drop it — serialize it in both %s and %s, or annotate //cr:nosnap with a justification",
				named.Obj().Name(), fv.Name(), strings.Join(missing, " or "),
				pair[0], pair[1])
		}
	}
}

// referencedFields returns the set of top-level field indices of owner
// that fn's body selects, directly or inside a same-package function or
// method fn calls directly (one level of helpers). Promoted selections
// through an embedded field credit the embedded field itself: the codec
// demonstrably reaches into that subtree.
func referencedFields(pass *analysis.Pass, owner *types.Named,
	fn *ast.FuncDecl, declOf map[*types.Func]*ast.FuncDecl) map[int]bool {
	out := map[int]bool{}
	seen := map[*ast.FuncDecl]bool{}
	var scan func(d *ast.FuncDecl, depth int)
	scan = func(d *ast.FuncDecl, depth int) {
		if d == nil || d.Body == nil || seen[d] {
			return
		}
		seen[d] = true
		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if namedOf(sel.Recv()) == owner && len(sel.Index()) > 0 {
					out[sel.Index()[0]] = true
				}
			case *ast.CallExpr:
				if depth > 0 {
					return true
				}
				if callee := calleeDecl(pass, n, declOf); callee != nil {
					scan(callee, depth+1)
				}
			}
			return true
		})
	}
	scan(fn, 0)
	return out
}

// calleeDecl resolves a call to a same-package function or method
// declaration, or nil for builtins, externals and indirect calls.
func calleeDecl(pass *analysis.Pass, call *ast.CallExpr,
	declOf map[*types.Func]*ast.FuncDecl) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fo, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fo.Pkg() != pass.Pkg {
		return nil
	}
	return declOf[fo]
}

// namedOf unwraps pointers to the defined type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
