// Package core is a hotalloc fixture: functions annotated //cr:hotpath
// must not contain constructs that allocate on every execution.
package core

import "fmt"

// item is a value type; boxing it into an interface allocates.
type item struct{ a, b int }

// String implements fmt.Stringer with a value receiver.
func (it item) String() string { return "item" }

// Hot demonstrates every flagged construct and every escape.
//
//cr:hotpath fixture steady-state path
func Hot(buf []int, it item, s fmt.Stringer) []int {
	buf = append(buf, 1)      // ok: self-append reuses its backing
	other := append(buf, 2)   // want `append whose result does not flow back into buf`
	scratch := make([]int, 4) // want `make allocates`
	p := new(item)            // want `new allocates`
	q := &item{}              // want `&item escapes to the heap`
	lit := []int{1, 2}        // want `slice literal allocates`
	table := map[int]int{}    // want `map literal allocates`
	f := func() {}            // want `closure literal allocates`
	msg := "a" + s.String()   // want `string concatenation allocates`
	raw := []byte(msg)        // want `string/slice conversion copies`
	var str fmt.Stringer
	str = it              // want `assignment boxes`
	fmt.Println(len(raw)) // want `boxes int into interface`
	if len(buf) > 1<<20 {
		// ok: a block ending in panic is a failure path.
		panic(fmt.Sprintf("runaway buffer %d", len(buf)))
	}
	pool := &item{} //cr:alloc pool miss: only reached before steady state
	_, _, _, _, _, _, _, _ = other, scratch, p, q, lit, table, f, pool
	_ = str
	return append(buf, 3) // ok: returned for the caller to fold back
}

// Boxed returns a concrete value through an interface result.
//
//cr:hotpath fixture return-boxing path
func Boxed(it item) fmt.Stringer {
	return it // want `return boxes`
}

// Spawn starts a goroutine from a hot path.
//
//cr:hotpath fixture goroutine path
func Spawn(ch chan int) {
	go send(ch) // want `go statement allocates`
}

func send(ch chan int) { ch <- 1 }

// Cold is unannotated: the same constructs are not flagged.
func Cold() []int {
	m := map[int]int{1: 1}
	return []int{len(m)}
}
