package hotalloc_test

import (
	"testing"

	"crnet/internal/analysis/analysistest"
	"crnet/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "core")
}
