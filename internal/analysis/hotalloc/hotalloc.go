// Package hotalloc implements the crlint analyzer that keeps
// `//cr:hotpath`-annotated functions free of allocating constructs.
//
// PR 4 made the steady-state cycle kernel allocation-free, and the
// runtime gate (TestSteadyStateZeroAlloc, `make alloc-gate`) holds that
// line — but only for the configurations the test samples. hotalloc is
// the compile-time complement: every function annotated //cr:hotpath is
// rejected if it contains a construct that allocates on every
// execution, regardless of configuration. The two layers are
// deliberately complementary: hotalloc cannot see growth reallocation
// (a warmed-up self-append is free, a cold one is not), and the runtime
// gate cannot see paths its configurations never reach.
//
// Flagged constructs: make/new, &composite-literal, slice and map
// literals, closures, go statements, string concatenation and
// string<->[]byte conversions, appends whose result does not flow back
// into the appended slice (those can never reuse their backing), and
// interface boxing of non-pointer values (conversions, call arguments,
// assignments, returns). Two escapes: code inside a block that ends in
// panic is exempt (failure paths may allocate their message), and a
// statement annotated `//cr:alloc <justification>` is accepted — used
// for provably-cold paths such as pool misses that only occur during
// warmup.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"crnet/internal/analysis"
)

// Analyzer flags per-execution allocations in //cr:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocating constructs in //cr:hotpath functions; annotate " +
		"//cr:alloc to justify a cold-path exception",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, hot := pass.FuncAnnotated(fn, "hotpath"); !hot {
				continue
			}
			w := &walker{pass: pass, fn: fn}
			w.walk(fn.Body)
		}
	}
	return nil
}

// walker traverses one hot function keeping the ancestor stack, so a
// finding can be suppressed when it sits on a panicking failure path.
type walker struct {
	pass  *analysis.Pass
	fn    *ast.FuncDecl
	stack []ast.Node
}

// walk visits every node under root; ast.Inspect's f(nil) post-visit
// calls keep the ancestor stack balanced. check runs before its node is
// pushed, so the stack top is always the node's parent.
func (w *walker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		w.check(n)
		w.stack = append(w.stack, n)
		return true
	})
}

// report emits a finding unless the node is on a panic path or carries
// a //cr:alloc annotation.
func (w *walker) report(n ast.Node, format string, args ...any) {
	if w.onPanicPath() {
		return
	}
	if ann, ok := w.pass.Annotated(n, "alloc"); ok {
		if ann.Reason == "" {
			w.pass.ReportfEscape(n.Pos(), "alloc", "//cr:alloc needs a justification (why is this allocation cold?)")
		}
		return
	}
	w.pass.ReportfEscape(n.Pos(), "alloc", "%s in //cr:hotpath function %s (annotate //cr:alloc to justify a cold path)",
		fmt.Sprintf(format, args...), w.fn.Name.Name)
}

// onPanicPath reports whether the current node lies in a statement list
// that unconditionally ends in panic: the canonical invariant-guard
// shape `if bad { panic(fmt.Sprintf(...)) }`. Such blocks execute at
// most once per process, so their allocations cost nothing in steady
// state.
func (w *walker) onPanicPath() bool {
	for _, n := range w.stack {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		if len(list) == 0 {
			continue
		}
		if es, ok := list[len(list)-1].(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

func (w *walker) check(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		w.checkCall(n)
	case *ast.CompositeLit:
		w.checkCompositeLit(n)
	case *ast.FuncLit:
		w.report(n, "closure literal allocates")
	case *ast.GoStmt:
		w.report(n, "go statement allocates a goroutine (and is nondeterministic)")
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(w.pass.TypesInfo.TypeOf(n.X)) {
			w.report(n, "string concatenation allocates")
		}
	case *ast.AssignStmt:
		w.checkAssignBoxing(n)
	case *ast.ReturnStmt:
		w.checkReturnBoxing(n)
	}
}

func (w *walker) checkCall(call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		w.checkConversion(call, tv.Type)
		return
	}
	if tv.IsBuiltin() {
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok {
			return
		}
		switch id.Name {
		case "make":
			w.report(call, "make allocates")
		case "new":
			w.report(call, "new allocates")
		case "append":
			if !w.appendReusesBacking(call) {
				w.report(call, "append whose result does not flow back into %s cannot reuse its backing array",
					types.ExprString(call.Args[0]))
			}
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	w.checkArgBoxing(call, sig)
}

// checkConversion flags T(x) conversions that allocate: boxing into an
// interface and string<->[]byte/[]rune copies.
func (w *walker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := w.pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(target) {
		if boxes(src) {
			w.report(call, "conversion of %s to interface %s boxes the value", src, target)
		}
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	_, targetSlice := tu.(*types.Slice)
	_, srcSlice := su.(*types.Slice)
	if (isString(src) && targetSlice) || (srcSlice && isString(target)) {
		w.report(call, "string/slice conversion copies and allocates")
	}
}

// appendReusesBacking reports whether the append's result is assigned
// back to the slice being appended to (x = append(x, ...)) or returned
// for the caller to do so. Both shapes are allocation-free once the
// backing array has warmed up to its steady-state capacity; the runtime
// alloc gate covers the warmup growth.
func (w *walker) appendReusesBacking(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	dst := types.ExprString(call.Args[0])
	if len(w.stack) == 0 {
		return false
	}
	switch parent := w.stack[len(w.stack)-1].(type) {
	case *ast.AssignStmt:
		if len(parent.Lhs) == 1 && len(parent.Rhs) == 1 && parent.Rhs[0] == call {
			return types.ExprString(parent.Lhs[0]) == dst
		}
	case *ast.ReturnStmt:
		return true
	}
	return false
}

// checkArgBoxing flags concrete non-pointer arguments passed to
// interface-typed parameters (including variadic ...interface).
func (w *walker) checkArgBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := w.pass.TypesInfo.TypeOf(arg)
		if at != nil && boxes(at) {
			w.report(arg, "argument %s boxes %s into interface %s", types.ExprString(arg), at, pt)
		}
	}
}

func (w *walker) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lt := w.pass.TypesInfo.TypeOf(as.Lhs[0])
	rt := w.pass.TypesInfo.TypeOf(as.Rhs[0])
	if lt == nil || rt == nil || as.Tok == token.DEFINE {
		return
	}
	if types.IsInterface(lt) && boxes(rt) {
		w.report(as, "assignment boxes %s into interface %s", rt, lt)
	}
}

func (w *walker) checkReturnBoxing(ret *ast.ReturnStmt) {
	obj := w.pass.TypesInfo.Defs[w.fn.Name]
	fobj, ok := obj.(*types.Func)
	if !ok {
		return
	}
	results := fobj.Type().(*types.Signature).Results()
	if results == nil || results.Len() != len(ret.Results) {
		return
	}
	for i, expr := range ret.Results {
		rt := results.At(i).Type()
		et := w.pass.TypesInfo.TypeOf(expr)
		if et != nil && types.IsInterface(rt) && boxes(et) {
			w.report(expr, "return boxes %s into interface %s", et, rt)
		}
	}
}

// checkCompositeLit flags literals whose construction allocates: slice
// and map literals always do; a struct or array literal is a stack
// value unless its address is taken, which the UnaryExpr case catches.
func (w *walker) checkCompositeLit(lit *ast.CompositeLit) {
	t := w.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	if len(w.stack) > 0 {
		if u, ok := w.stack[len(w.stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
			w.report(u, "&%s escapes to the heap", types.ExprString(lit.Type))
			return
		}
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		w.report(lit, "slice literal allocates its backing array")
	case *types.Map:
		w.report(lit, "map literal allocates")
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointer-shaped values (pointers, channels, maps,
// functions, unsafe.Pointer) ride in the interface word for free;
// everything else is copied to the heap.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
