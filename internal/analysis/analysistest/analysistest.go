// Package analysistest runs one analyzer over fixture packages under
// the analyzer's testdata/src directory and checks its diagnostics
// against `// want` expectations, mirroring the x/tools package of the
// same name (reduced to the subset the crlint analyzers use).
//
// A fixture file marks each line that must produce a diagnostic with a
// trailing comment of quoted regular expressions:
//
//	for k := range m { // want `range over map`
//
// Every regexp must match exactly one diagnostic reported on its line,
// and every diagnostic must be claimed by exactly one regexp; anything
// unmatched in either direction fails the test. Fixture packages are
// real, compiling packages inside the module, so they type-check
// against the same export data as production code; a fixture directory
// named testdata/src/<name> is treated by the analyzers as the package
// crnet/internal/<name> (see analysis.CorePackage), which is how a
// fixture opts in to — or out of — simulation-core enforcement.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"crnet/internal/analysis"
)

// expectation is one `// want` regexp with its location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads ./testdata/src/<fixture> for each fixture name, applies the
// analyzer, and reports any mismatch between diagnostics and `// want`
// expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	if len(fixtures) == 0 {
		t.Fatal("analysistest: no fixtures given")
	}
	patterns := make([]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = "./testdata/src/" + f
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("analysistest: loaded %d packages for %d fixtures", len(pkgs), len(fixtures))
	}

	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ws, err := parseWants(pkg, f)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, fd := range findings {
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != fd.Position.Filename || w.line != fd.Position.Line {
				continue
			}
			if w.re.MatchString(fd.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s", fd.Position, fd.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the `// want` expectations of one file.
func parseWants(pkg *analysis.Package, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			res, err := parsePatterns(strings.TrimPrefix(text, "want "))
			if err != nil {
				return nil, fmt.Errorf("%s: bad want comment: %v", pos, err)
			}
			if len(res) == 0 {
				return nil, fmt.Errorf("%s: want comment without patterns", pos)
			}
			for _, re := range res {
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want payload into its quoted regexps. Both
// double quotes and backquotes are accepted; double-quoted patterns may
// escape the quote itself with a backslash.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' && quote == '"' {
				i++
				continue
			}
			if s[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		body := s[1:end]
		if quote == '"' {
			body = strings.ReplaceAll(body, `\"`, `"`)
		}
		re, err := regexp.Compile(body)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = s[end+1:]
	}
}
