// Package analysis is a dependency-free mirror of the
// golang.org/x/tools/go/analysis surface, just large enough to host the
// repo's custom static checkers (see the subpackages detmap, wallclock,
// rngsource and hotalloc, and the cmd/crlint driver).
//
// The module is deliberately stdlib-only (see DESIGN.md), so instead of
// importing x/tools this package re-implements the three pieces the
// checkers need: an Analyzer/Pass/Diagnostic vocabulary, a package
// loader built on `go list -export` plus go/types (load.go), and the
// `//cr:` annotation index that lets code opt in to (`//cr:hotpath`) or
// justify an exemption from (`//cr:orderinvariant`, `//cr:wallclock`,
// `//cr:randsource`, `//cr:alloc`) an invariant. The API shapes follow
// x/tools closely so the analyzers could be ported to a real
// go/analysis multichecker by swapping imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the checker's command-line name (lower case, no spaces).
	Name string
	// Doc is a one-paragraph description of what the checker enforces
	// and which annotation, if any, exempts a finding.
	Doc string
	// Run executes the check against one package and reports findings
	// through pass.Report. It returns an error only for operational
	// failures (diagnostics are not errors).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)

	ann *annIndex
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Escape names the //cr: annotation that would justify this finding
	// ("orderinvariant", "nosnap", ...), without the prefix. Machine
	// consumers (crlint -json) surface it so tooling can distinguish
	// "annotate here" findings from structural ones; the human format
	// leaves it to the message text. Empty when no annotation applies.
	Escape string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportfEscape reports a formatted diagnostic at pos tagged with the
// //cr: annotation name that would justify it (see Diagnostic.Escape).
func (p *Pass) ReportfEscape(pos token.Pos, escape, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Escape: escape})
}

// CorePath reports the simulation-core import path the pass's package
// stands for, applying the testdata fixture mapping (see CorePackage).
func (p *Pass) CorePath() string { return fixturePath(p.Pkg.Path()) }

// IsCore reports whether the pass's package is part of the simulation
// core, where the determinism/cycle-time/randomness invariants apply.
func (p *Pass) IsCore() bool { return CorePackage(p.Pkg.Path()) }

// InTestFile reports whether pos lies in a *_test.go file. Test code is
// exempt from every checker: the invariants guard the simulator itself,
// and tests legitimately use wall-clock deadlines and ad-hoc seeds.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// corePrefixes are the simulation-core packages: everything that runs
// inside (or aggregates) the cycle loop and therefore must be
// deterministic, cycle-timed and seed-driven. harness, cmd/* and the
// traffic generators' wall-clock-free subsets are deliberately absent:
// harness measures real wall time and owns os-level concerns. faults is
// in: the load-coupled hazard process draws inside the cycle loop.
// stats is in: Welford/histogram accumulators run per-cycle and their
// state rides in snapshots, so the same invariants apply.
var corePrefixes = []string{
	"crnet/internal/core",
	"crnet/internal/router",
	"crnet/internal/network",
	"crnet/internal/routing",
	"crnet/internal/sim",
	"crnet/internal/workload",
	"crnet/internal/obs",
	"crnet/internal/invariant",
	"crnet/internal/snapshot",
	"crnet/internal/faults",
	"crnet/internal/stats",
}

// CorePackage reports whether pkgPath is (or, for analyzer test
// fixtures, stands for) a simulation-core package.
//
// Fixture mapping: a package under some `testdata/src/` directory is
// treated as `crnet/internal/<remainder>`, so a fixture named
// testdata/src/core exercises the analyzer exactly as the real
// internal/core would, while testdata/src/harness stays exempt.
func CorePackage(pkgPath string) bool {
	path := fixturePath(pkgPath)
	for _, p := range corePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// fixturePath rewrites a testdata fixture import path to the core
// package path it stands for; other paths pass through unchanged.
func fixturePath(pkgPath string) string {
	if i := strings.Index(pkgPath, "testdata/src/"); i >= 0 {
		return "crnet/internal/" + pkgPath[i+len("testdata/src/"):]
	}
	return pkgPath
}

// ---- //cr: annotations ----

// Annotation is one parsed `//cr:<name> <justification>` comment.
type Annotation struct {
	Name    string // e.g. "orderinvariant", "hotpath"
	Reason  string // free text after the name; may be empty
	Pos     token.Pos
	File    string
	Line    int // line the comment starts on
	EndLine int // last line of the enclosing comment group
}

// annIndex holds every //cr: annotation of a package, keyed by file.
type annIndex struct {
	fset  *token.FileSet
	byPos map[string][]Annotation // filename -> annotations, by line
}

const annPrefix = "//cr:"

// buildAnnIndex scans the files' comments for //cr: directives.
func buildAnnIndex(fset *token.FileSet, files []*ast.File) *annIndex {
	idx := &annIndex{fset: fset, byPos: make(map[string][]Annotation)}
	for _, f := range files {
		for _, cg := range f.Comments {
			endLine := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, annPrefix) {
					continue
				}
				rest := text[len(annPrefix):]
				name := rest
				reason := ""
				if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
					name, reason = rest[:sp], strings.TrimSpace(rest[sp+1:])
				}
				pos := fset.Position(c.Pos())
				idx.byPos[pos.Filename] = append(idx.byPos[pos.Filename], Annotation{
					Name: name, Reason: reason, Pos: c.Pos(),
					File: pos.Filename, Line: pos.Line, EndLine: endLine,
				})
			}
		}
	}
	for _, anns := range idx.byPos {
		sort.Slice(anns, func(i, j int) bool { return anns[i].Line < anns[j].Line })
	}
	return idx
}

// Annotated reports whether node carries annotation name: the directive
// sits on the node's starting line (trailing comment) or its comment
// group ends on one of the two lines directly above (leading comment,
// possibly below other comment lines). Returns the annotation so
// checkers can demand a justification.
func (p *Pass) Annotated(node ast.Node, name string) (Annotation, bool) {
	pos := p.Fset.Position(node.Pos())
	for _, a := range p.ann.byPos[pos.Filename] {
		if a.Name != name {
			continue
		}
		if a.Line == pos.Line || (a.EndLine >= pos.Line-2 && a.EndLine < pos.Line) {
			return a, true
		}
	}
	return Annotation{}, false
}

// FuncAnnotated reports whether the function declaration carries
// annotation name: inside its doc comment, on the line directly above
// it, or trailing on the `func` line itself. Annotations inside the
// body belong to statements, not the function, and do not count.
func (p *Pass) FuncAnnotated(fn *ast.FuncDecl, name string) (Annotation, bool) {
	start := p.Fset.Position(fn.Pos())
	from := start.Line - 1
	if fn.Doc != nil {
		from = p.Fset.Position(fn.Doc.Pos()).Line - 1
	}
	for _, a := range p.ann.byPos[start.Filename] {
		if a.Name == name && a.Line >= from && a.Line <= start.Line {
			return a, true
		}
	}
	return Annotation{}, false
}

// Annotations returns every annotation with the given name in the
// package, for checkers that audit annotation hygiene.
func (p *Pass) Annotations(name string) []Annotation {
	var out []Annotation
	for _, anns := range p.ann.byPos {
		for _, a := range anns {
			if a.Name == name {
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
