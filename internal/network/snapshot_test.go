package network

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
)

// snapCfg builds the checkpoint-test configuration: FCR on a 4x2 torus
// with transient corruption and a fault timeline straddling the
// checkpoint cycle, so a restore must resume the corruption RNG stream
// mid-sequence and the fault cursor mid-timeline. Each call constructs
// a fresh Schedule: the cursor is mutable run state, so two networks
// must never share one.
func snapCfg() Config {
	return Config{
		Topo:          topology.NewTorus(4, 2),
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.FCR,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		TransientRate: 5e-3,
		Seed:          13,
		Faults: faults.NewSchedule([]faults.Event{
			{Cycle: 100, Link: faults.LinkID{Node: 0, Port: 0}},
			{Cycle: 300, Link: faults.LinkID{Node: 0, Port: 0}, Up: true},
			{Cycle: 600, Link: faults.LinkID{Node: 3, Port: 1}},
			{Cycle: 900, Link: faults.LinkID{Node: 3, Port: 1}, Up: true},
		}),
		Check: true,
	}
}

// snapSubmit submits the deterministic traffic schedule for one cycle:
// a fixed function of the cycle number, so the reference run and the
// restored run offer byte-identical load.
func snapSubmit(n *Network, cycle int64) {
	if cycle%3 != 0 {
		return
	}
	nodes := int64(n.Topology().Nodes())
	src := (cycle / 3) % nodes
	dst := (src + 3 + cycle%2) % nodes
	if dst == src {
		return
	}
	n.SubmitMessage(flit.Message{
		ID:         flit.MessageID(cycle/3 + 1),
		Src:        topology.NodeID(src),
		Dst:        topology.NodeID(dst),
		DataLen:    int(8 + cycle%5),
		CreateTime: cycle,
	})
}

// snapRun advances the network from its current cycle to cycle `to`,
// submitting the schedule and recording every delivery as a formatted
// line (cycle-ordered; order within a cycle is the drain order).
func snapRun(n *Network, to int64, log *[]string) {
	for n.Cycle() < to {
		snapSubmit(n, n.Cycle())
		n.Step()
		for _, d := range n.DrainDeliveries() {
			*log = append(*log, fmt.Sprintf("c%d msg=%d worm=%d src=%d len=%d ok=%t ha=%d st=%+v",
				d.Time, d.Msg, d.Worm, d.Src, d.DataLen, d.DataOK, d.HeadArrived, d.Stamps))
		}
	}
}

// TestResumeByteIdentical is the subsystem's pinned determinism
// guarantee: checkpoint at cycle K, restore into a freshly constructed
// network, and the continuation K→M — every delivery, every counter,
// every internal queue — is byte-identical to a run that never
// stopped, under transient corruption and a permanent-fault timeline
// whose events fire on both sides of K.
func TestResumeByteIdentical(t *testing.T) {
	const K, M = 400, 1200

	// Unbroken reference run.
	ref := New(snapCfg())
	var refLog []string
	snapRun(ref, M, &refLog)
	var refFinal snapshot.Encoder
	ref.SaveState(&refFinal)

	// Broken run: checkpoint at K...
	first := New(snapCfg())
	var firstLog []string
	snapRun(first, K, &firstLog)
	var ckpt snapshot.Encoder
	first.SaveState(&ckpt)

	// ...restore into a brand-new network, continue to M.
	resumed := New(snapCfg())
	if err := resumed.LoadState(snapshot.NewDecoder(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if resumed.Cycle() != K {
		t.Fatalf("restored cycle = %d, want %d", resumed.Cycle(), K)
	}
	resumedLog := append([]string(nil), firstLog...)
	snapRun(resumed, M, &resumedLog)
	var resumedFinal snapshot.Encoder
	resumed.SaveState(&resumedFinal)

	if len(refLog) == 0 {
		t.Fatal("reference run delivered nothing; test is vacuous")
	}
	if ref.TransientFaults() == 0 {
		t.Fatal("no transient corruption occurred; test is vacuous")
	}
	if ref.InjectorStats().Retries == 0 {
		t.Fatal("no retransmissions occurred; test is vacuous")
	}
	for i := range refLog {
		if i >= len(resumedLog) || resumedLog[i] != refLog[i] {
			got := "<missing>"
			if i < len(resumedLog) {
				got = resumedLog[i]
			}
			t.Fatalf("delivery %d diverged:\n  unbroken: %s\n  resumed:  %s", i, refLog[i], got)
		}
	}
	if len(resumedLog) != len(refLog) {
		t.Fatalf("resumed run delivered %d messages, unbroken %d", len(resumedLog), len(refLog))
	}
	if !bytes.Equal(refFinal.Bytes(), resumedFinal.Bytes()) {
		t.Fatalf("final states differ: unbroken %d bytes, resumed %d bytes",
			refFinal.Len(), resumedFinal.Len())
	}
}

// TestResumeMidFlight checkpoints while worms are in flight (flits on
// links, partial assemblies at receivers, injectors mid-frame) rather
// than at a quiet cycle, and still demands byte-identical continuation.
func TestResumeMidFlight(t *testing.T) {
	// Cycle 31 is one cycle after a submission burst at 30: injection
	// buffers and links are occupied.
	const K, M = 31, 500

	ref := New(snapCfg())
	var refLog []string
	snapRun(ref, M, &refLog)
	var refFinal snapshot.Encoder
	ref.SaveState(&refFinal)

	first := New(snapCfg())
	var log []string
	snapRun(first, K, &log)
	if first.InFlightFlits() == 0 && first.PendingWorms() == 0 {
		t.Fatal("nothing in flight at checkpoint; test is vacuous")
	}
	var ckpt snapshot.Encoder
	first.SaveState(&ckpt)

	resumed := New(snapCfg())
	if err := resumed.LoadState(snapshot.NewDecoder(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	snapRun(resumed, M, &log)
	var resumedFinal snapshot.Encoder
	resumed.SaveState(&resumedFinal)

	if len(log) != len(refLog) {
		t.Fatalf("resumed run delivered %d messages, unbroken %d", len(log), len(refLog))
	}
	for i := range refLog {
		if log[i] != refLog[i] {
			t.Fatalf("delivery %d diverged:\n  unbroken: %s\n  resumed:  %s", i, refLog[i], log[i])
		}
	}
	if !bytes.Equal(refFinal.Bytes(), resumedFinal.Bytes()) {
		t.Fatal("final states differ after mid-flight resume")
	}
}

// TestResetAfterRestoreEqualsFresh: satellite requirement — Reset on a
// restored network must yield exactly the state of a freshly
// constructed one (cycle zero, timeline rewound, corruption stream
// reseeded), so a service can restart a sweep after attaching to a
// checkpoint.
func TestResetAfterRestoreEqualsFresh(t *testing.T) {
	donor := New(snapCfg())
	var log []string
	snapRun(donor, 500, &log)
	var ckpt snapshot.Encoder
	donor.SaveState(&ckpt)

	restored := New(snapCfg())
	if err := restored.LoadState(snapshot.NewDecoder(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	restored.Reset()

	fresh := New(snapCfg())
	var a, b snapshot.Encoder
	restored.SaveState(&a)
	fresh.SaveState(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("reset-after-restore state differs from fresh construction")
	}

	// And the reset network must behave like a fresh one.
	var logA, logB []string
	snapRun(restored, 300, &logA)
	snapRun(fresh, 300, &logB)
	if fmt.Sprint(logA) != fmt.Sprint(logB) {
		t.Fatal("reset-after-restore run diverged from fresh run")
	}
}

// TestRestoreRejectsForeignConfig: a snapshot from a differently
// configured network is refused by the fingerprint gate before any
// state is touched.
func TestRestoreRejectsForeignConfig(t *testing.T) {
	donor := New(snapCfg())
	var log []string
	snapRun(donor, 200, &log)
	var ckpt snapshot.Encoder
	donor.SaveState(&ckpt)

	other := snapCfg()
	other.Seed = 14 // different corruption stream: structurally incompatible
	target := New(other)
	var before snapshot.Encoder
	target.SaveState(&before)

	if err := target.LoadState(snapshot.NewDecoder(ckpt.Bytes())); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
	var after snapshot.Encoder
	target.SaveState(&after)
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("rejected restore mutated the network")
	}
}

// TestRestoreRejectsCorruptPayload: container-level validation rejects
// a bit-flipped checkpoint file before LoadState ever runs, and the
// target network is untouched.
func TestRestoreRejectsCorruptPayload(t *testing.T) {
	donor := New(snapCfg())
	var log []string
	snapRun(donor, 200, &log)
	var payload snapshot.Encoder
	donor.SaveState(&payload)
	file := snapshot.Encode(donor.Cycle(), payload.Bytes())

	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bit-flip", func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-7] }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mangle(append([]byte(nil), file...))
			_, _, err := snapshot.Decode("ckpt", bad)
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			var ferr *snapshot.FormatError
			if !errors.As(err, &ferr) {
				t.Fatalf("error %v is not a *snapshot.FormatError", err)
			}
		})
	}
}
