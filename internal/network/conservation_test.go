package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// checkLinkConservation asserts, for every network link and VC:
// upstream credits + downstream buffered + in-flight == BufDepth.
func checkLinkConservation(t *testing.T, n *Network, vcs, depth int) {
	t.Helper()
	for id := 0; id < n.nodes; id++ {
		for p := 0; p < n.deg; p++ {
			l := n.linkAt(id, p)
			if !l.exists || !l.up {
				continue
			}
			// Lazy construction: a link between two never-touched
			// routers trivially conserves (full credits, empty buffers).
			if n.routers[id] == nil && n.routers[l.toNode] == nil {
				continue
			}
			up := n.routerAt(topology.NodeID(id))
			down := n.routerAt(topology.NodeID(l.toNode))
			for vc := 0; vc < vcs; vc++ {
				inFlight := 0
				if l.busy && int(l.vc) == vc {
					inFlight = 1
				}
				credit := up.CreditOf(p, vc)
				buffered := down.BufferedAt(int(l.toPort), vc)
				if credit+buffered+inFlight != depth {
					t.Fatalf("cycle %d: link (%d,%d) vc %d: credit %d + buffered %d + inflight %d != %d",
						n.Cycle(), id, p, vc, credit, buffered, inFlight, depth)
				}
			}
		}
	}
}

func TestCreditConservationUnderKillStorm(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	const vcs, depth = 2, 2
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		VCs:      vcs,
		BufDepth: depth,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Seed:     3,
		Check:    true,
	})
	gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.9, 8, 9)
	for c := int64(0); c < 8000; c++ {
		for node := 0; node < topo.Nodes(); node++ {
			if m, ok := gen.Tick(topology.NodeID(node), c); ok {
				n.SubmitMessage(m)
			}
		}
		n.Step()
		n.DrainDeliveries()
		checkLinkConservation(t, n, vcs, depth)
	}
	_ = flit.MessageID(0)
}
