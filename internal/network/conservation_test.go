package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// checkLinkConservation asserts, for every network link and VC:
// upstream credits + downstream buffered + in-flight == BufDepth.
func checkLinkConservation(t *testing.T, n *Network, vcs, depth int) {
	t.Helper()
	for id := range n.links {
		for p := range n.links[id] {
			l := &n.links[id][p]
			if !l.exists || !l.up {
				continue
			}
			for vc := 0; vc < vcs; vc++ {
				inFlight := 0
				if l.busy && l.vc == vc {
					inFlight = 1
				}
				credit := n.routers[id].CreditOf(p, vc)
				buffered := n.routers[l.toNode].BufferedAt(l.toPort, vc)
				if credit+buffered+inFlight != depth {
					t.Fatalf("cycle %d: link (%d,%d) vc %d: credit %d + buffered %d + inflight %d != %d",
						n.Cycle(), id, p, vc, credit, buffered, inFlight, depth)
				}
			}
		}
	}
}

func TestCreditConservationUnderKillStorm(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	const vcs, depth = 2, 2
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		VCs:      vcs,
		BufDepth: depth,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Seed:     3,
		Check:    true,
	})
	gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.9, 8, 9)
	for c := int64(0); c < 8000; c++ {
		for node := 0; node < topo.Nodes(); node++ {
			if m, ok := gen.Tick(topology.NodeID(node), c); ok {
				n.SubmitMessage(m)
			}
		}
		n.Step()
		n.DrainDeliveries()
		checkLinkConservation(t, n, vcs, depth)
	}
	_ = flit.MessageID(0)
}
