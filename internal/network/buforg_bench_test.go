package network

import (
	"fmt"
	"testing"

	"crnet/internal/core"
	"crnet/internal/router"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// Buffer-organization benchmarks: the per-cycle cost of Network.Step
// under each router buffer organization at a saturated 64x64 CR torus,
// serial and sharded. These are the rows `make bench-buffers` records
// in BENCH_PR9.json. The interesting comparison is fifo vs the pooled
// organizations at shards0: the linked-slot pools trade the static
// arena's modulo indexing for free-list pointer chasing plus the
// granted-window ledger on every head/tail, and the sharded rows show
// the window advertisements riding the credit mailbox matrix.
func BenchmarkStepBufferOrg(b *testing.B) {
	for _, org := range router.BufferOrgs {
		for _, shards := range []int{0, 4} {
			org, shards := org, shards
			b.Run(fmt.Sprintf("%s/shards%d", org, shards), func(b *testing.B) {
				n := New(Config{
					Topo:     topology.NewTorus(64, 2),
					Alg:      routing.MinimalAdaptive{},
					Protocol: core.CR,
					BufOrg:   org,
					Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
					Shards:   shards,
					Seed:     1,
				})
				topo := n.Topology()
				gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.9, 16, 1)
				tick := func(cycle int64) {
					for node := 0; node < topo.Nodes(); node++ {
						if m, ok := gen.Tick(topology.NodeID(node), cycle); ok {
							n.SubmitMessage(m)
						}
					}
					n.Step()
					n.DrainDeliveries()
				}
				const warmup = 300
				for cyc := int64(0); cyc < warmup; cyc++ {
					tick(cyc)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tick(warmup + int64(i))
				}
			})
		}
	}
}
