package network

import (
	"fmt"
	"reflect"
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/rng"
	"crnet/internal/router"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// TestNodeSetSortedIteration pins the worklist determinism contract:
// whatever order ids are added in, prepare yields ascending iteration
// order, and dedup holds.
func TestNodeSetSortedIteration(t *testing.T) {
	s := newNodeSet(16)
	for _, id := range []int32{9, 3, 14, 3, 0, 9, 7, 15, 1, 0} {
		s.add(id)
	}
	s.prepare()
	want := []int32{0, 1, 3, 7, 9, 14, 15}
	if !reflect.DeepEqual(s.ids, want) {
		t.Fatalf("ids after prepare = %v, want %v", s.ids, want)
	}
	// Pruning from the middle keeps the rest sorted without re-marking
	// dirty; a subsequent add must still end up in order.
	s.drop(7)
	kept := s.ids[:0]
	for _, id := range s.ids {
		if s.member[id] {
			kept = append(kept, id)
		}
	}
	s.ids = kept
	s.add(2)
	s.prepare()
	want = []int32{0, 1, 2, 3, 9, 14, 15}
	if !reflect.DeepEqual(s.ids, want) {
		t.Fatalf("ids after drop+add = %v, want %v", s.ids, want)
	}
	s.reset()
	if len(s.ids) != 0 || s.has(3) {
		t.Fatalf("reset left state behind: ids=%v", s.ids)
	}
	// The reset set must also come back clean: an empty list is
	// trivially sorted, so a reset that leaves dirty latched would make
	// the next prepare after Network.Reset run a pointless sort pass.
	if s.dirty {
		t.Fatal("reset left the set marked dirty")
	}
	s.add(4)
	s.add(1)
	s.prepare()
	if !reflect.DeepEqual(s.ids, []int32{1, 4}) {
		t.Fatalf("ids after reset+add = %v, want [1 4]", s.ids)
	}
}

// kernelSnapshot is everything observable about a run that the
// active-set scheduler must reproduce exactly: the per-cycle delivery
// stream and every counter the stats layer exposes.
type kernelSnapshot struct {
	deliveries []core.Delivery
	perCycle   []int // deliveries drained after each Step
	cycle      int64
	inj        core.InjStats
	recv       core.RecvStats
	flits      int64 // FlitsMoved
	transient  int64
	dropped    int64
}

func runKernel(n *Network, gen *traffic.Generator, trafficCycles, maxCycles int64) kernelSnapshot {
	var snap kernelSnapshot
	topo := n.Topology()
	for c := int64(0); c < maxCycles; c++ {
		if c < trafficCycles {
			for node := 0; node < topo.Nodes(); node++ {
				if m, ok := gen.Tick(topology.NodeID(node), c); ok {
					n.SubmitMessage(m)
				}
			}
		}
		n.Step()
		ds := n.DrainDeliveries()
		snap.perCycle = append(snap.perCycle, len(ds))
		snap.deliveries = append(snap.deliveries, ds...)
		if c >= trafficCycles && n.QueuedMessages() == 0 && n.PendingWorms() == 0 && !anyBusy(n) {
			break
		}
	}
	snap.cycle = n.Cycle()
	snap.inj = n.InjectorStats()
	snap.recv = n.ReceiverStats()
	snap.flits = n.RouterStats().FlitsMoved
	snap.transient = n.TransientFaults()
	snap.dropped = n.flitsDropped
	return snap
}

// TestActiveSetMatchesBruteForce is the scheduling soak: the worklist
// stepper and the scan-everything reference stepper must produce
// byte-identical runs — same deliveries in the same cycles, same cycle
// counts, same stats — across random small topologies with transient
// corruption, kill-heavy load, and permanent fail/repair timelines.
func TestActiveSetMatchesBruteForce(t *testing.T) {
	r := rng.New(0xAC71BE)
	const configs = 10
	for i := 0; i < configs; i++ {
		cfg, load, msgLen := randomConfig(r, uint64(i)+7000)
		// Always corrupt a little and always run a fail/repair timeline:
		// the fault paths are where activation bookkeeping is subtlest.
		cfg.TransientRate = 2e-3
		timeline := faults.TimelineConfig{
			Links:    LinksOf(cfg.Topo),
			LinkMTBF: 900, LinkMTTR: 60,
			Start: 50, Horizon: 2000,
			Seed: uint64(i) * 77,
		}
		name := fmt.Sprintf("cfg%02d_%s_%s", i, cfg.Topo.Name(), cfg.Protocol)
		t.Run(name, func(t *testing.T) {
			run := func(brute bool) kernelSnapshot {
				c := cfg
				c.Faults = faults.RandomTimeline(timeline)
				n := New(c)
				n.bruteForce = brute
				gen := traffic.NewGenerator(c.Topo, traffic.Uniform{Nodes: c.Topo.Nodes()}, load, msgLen, c.Seed+5)
				return runKernel(n, gen, 1500, 1500*60)
			}
			active, brute := run(false), run(true)
			if !reflect.DeepEqual(active, brute) {
				t.Errorf("active-set run diverged from brute-force reference:\nactive: cycle=%d deliveries=%d inj=%+v flits=%d\nbrute:  cycle=%d deliveries=%d inj=%+v flits=%d",
					active.cycle, len(active.deliveries), active.inj, active.flits,
					brute.cycle, len(brute.deliveries), brute.inj, brute.flits)
			}
		})
	}
}

// TestResetDeterminism: a Reset network must replay a run cycle for
// cycle — same deliveries, same stats — as a freshly constructed one,
// including with transient corruption and a permanent-fault timeline.
func TestResetDeterminism(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	// Each construction gets its own timeline: the schedule is stateful
	// (a cursor Reset rewinds), so sharing one across networks would
	// hand the second network a spent schedule.
	newNet := func() *Network {
		return New(Config{
			Topo:          topo,
			Alg:           routing.MinimalAdaptive{},
			Protocol:      core.FCR,
			Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			VCs:           2,
			BufDepth:      2,
			TransientRate: 1e-3,
			Seed:          42,
			Check:         true,
			Faults: faults.RandomTimeline(faults.TimelineConfig{
				Links:    LinksOf(topo),
				LinkMTBF: 600, LinkMTTR: 40,
				Start: 20, Horizon: 1000,
				Seed: 9,
			}),
		})
	}
	run := func(n *Network) kernelSnapshot {
		gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.3, 6, 123)
		return runKernel(n, gen, 800, 800*50)
	}
	n := newNet()
	first := run(n)
	n.Reset()
	if n.Cycle() != 0 || n.PendingWorms() != 0 || n.QueuedMessages() != 0 {
		t.Fatalf("Reset left residue: cycle=%d worms=%d queued=%d",
			n.Cycle(), n.PendingWorms(), n.QueuedMessages())
	}
	second := run(n)
	fresh := run(newNet())
	if !reflect.DeepEqual(first, second) {
		t.Errorf("run after Reset diverged: first cycle=%d deliveries=%d, second cycle=%d deliveries=%d",
			first.cycle, len(first.deliveries), second.cycle, len(second.deliveries))
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Errorf("fresh network diverged from original: first cycle=%d deliveries=%d, fresh cycle=%d deliveries=%d",
			first.cycle, len(first.deliveries), fresh.cycle, len(fresh.deliveries))
	}
}

// TestSteadyStateZeroAlloc is the allocation gate for the cycle kernel:
// after warmup, stepping a loaded network — traffic generation,
// submission, stepping, draining — must not allocate. Pool growth and
// slice reuse must have reached steady state. The gate holds for every
// buffer organization: the shared organizations' window grants, release
// top-ups and advertisement events must all ride preallocated storage.
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, org := range router.BufferOrgs {
		t.Run(org.String(), func(t *testing.T) {
			topo := topology.NewTorus(8, 2)
			n := New(Config{
				Topo:     topo,
				Alg:      routing.MinimalAdaptive{},
				Protocol: core.CR,
				BufOrg:   org,
				Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
				Seed:     1,
			})
			gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.3, 8, 1)
			cycle := int64(0)
			step := func() {
				for node := 0; node < topo.Nodes(); node++ {
					if m, ok := gen.Tick(topology.NodeID(node), cycle); ok {
						n.SubmitMessage(m)
					}
				}
				n.Step()
				n.DrainDeliveries()
				cycle++
			}
			for i := 0; i < 3000; i++ { // warmup: grow pools, queues, worklists
				step()
			}
			if avg := testing.AllocsPerRun(500, step); avg > 0 {
				t.Fatalf("%s: steady-state step loop allocates: %.2f allocs/run, want 0", org, avg)
			}
		})
	}
}
