package network

import (
	"fmt"
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/rng"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// TestSoakRandomConfigurations drives a spread of randomly drawn but
// valid configurations with router invariant checking enabled, asserting
// the protocol's global properties on each: no invariant panics, no lost
// or duplicated messages after drain, no order violations, no corrupt
// deliveries under FCR.
func TestSoakRandomConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak takes ~10s")
	}
	r := rng.New(0xC0FFEE)
	const configs = 14
	for i := 0; i < configs; i++ {
		cfg, load, msgLen := randomConfig(r, uint64(i))
		name := fmt.Sprintf("cfg%02d_%s_%s_vc%d_d%d", i, cfg.Topo.Name(), cfg.Protocol, cfg.VCs, cfg.BufDepth)
		t.Run(name, func(t *testing.T) {
			soakOne(t, cfg, load, msgLen)
		})
	}
}

// randomConfig draws one valid configuration.
func randomConfig(r *rng.Source, seed uint64) (Config, float64, int) {
	var topo topology.Topology
	switch r.Intn(4) {
	case 0:
		topo = topology.NewTorus(4, 2)
	case 1:
		topo = topology.NewTorus(3+r.Intn(3), 2)
	case 2:
		topo = topology.NewMesh(4, 2)
	default:
		topo = topology.NewHypercube(4)
	}
	cfg := Config{
		Topo:              topo,
		Protocol:          core.Protocol(1 + r.Intn(2)), // CR or FCR
		Alg:               routing.MinimalAdaptive{},
		VCs:               1 + r.Intn(3),
		BufDepth:          1 + r.Intn(4),
		InjectionChannels: 1 + r.Intn(2),
		EjectionChannels:  1 + r.Intn(2),
		Backoff:           core.Backoff{Kind: core.BackoffKind(r.Intn(2)), Gap: 4 << r.Intn(3)},
		Seed:              seed,
		Check:             true,
	}
	if r.Bernoulli(0.5) {
		cfg.TransientRate = 1e-3
	}
	if r.Bernoulli(0.3) {
		cfg.Timeout = 8 << r.Intn(4)
	}
	if r.Bernoulli(0.3) {
		cfg.RouterTimeout = 16 << r.Intn(3)
	}
	load := 0.2 + r.Float64()*0.6
	msgLen := 2 + r.Intn(24)
	return cfg, load, msgLen
}

func soakOne(t *testing.T, cfg Config, load float64, msgLen int) {
	t.Helper()
	n := New(cfg)
	topo := cfg.Topo
	gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, load, msgLen, cfg.Seed+99)
	submitted := map[flit.MessageID]bool{}
	delivered := map[flit.MessageID]bool{}
	const trafficCycles = 2500
	maxCycles := int64(trafficCycles * 80)
	for c := int64(0); c < maxCycles; c++ {
		if c < trafficCycles {
			for node := 0; node < topo.Nodes(); node++ {
				if m, ok := gen.Tick(topology.NodeID(node), c); ok {
					submitted[m.ID] = true
					n.SubmitMessage(m)
				}
			}
		}
		n.Step()
		for _, d := range n.DrainDeliveries() {
			if delivered[d.Msg] {
				t.Fatalf("message %d delivered twice", d.Msg)
			}
			if !submitted[d.Msg] {
				t.Fatalf("message %d delivered but never submitted", d.Msg)
			}
			delivered[d.Msg] = true
			if !d.DataOK && cfg.Protocol == core.FCR {
				t.Fatalf("FCR delivered corrupt message %d", d.Msg)
			}
		}
		if c >= trafficCycles && n.QueuedMessages() == 0 && n.PendingWorms() == 0 && !anyBusy(n) {
			break
		}
	}
	failed := n.InjectorStats().Failed
	if int64(len(delivered))+failed != int64(len(submitted)) {
		t.Fatalf("delivered %d + failed %d != submitted %d",
			len(delivered), failed, len(submitted))
	}
	if failed > 0 {
		// Extreme random configs (tiny buffers + tiny timeout) may give
		// up on a few messages; it must stay rare.
		if float64(failed) > 0.02*float64(len(submitted)) {
			t.Fatalf("%d of %d messages failed", failed, len(submitted))
		}
		t.Logf("note: %d of %d messages failed after max retries", failed, len(submitted))
	}
	if st := n.InjectorStats(); st.LateFKills != 0 {
		t.Fatalf("late FKILLs: %d", st.LateFKills)
	}
	// Per-pair FIFO delivery holds with a single-channel interface on
	// both sides: serial injection orders the worms, and the single
	// ejection channel serializes their completion. A second ejection
	// channel lets a later message overtake a congested earlier one.
	if cfg.InjectionChannels == 1 && cfg.EjectionChannels == 1 && n.ReceiverStats().OrderErrors != 0 {
		t.Fatalf("order violations with a single-channel interface: %d", n.ReceiverStats().OrderErrors)
	}
}
