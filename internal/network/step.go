package network

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/router"
	"crnet/internal/topology"
)

// This file implements the pipeline phases (see engine.go for the phase
// order and the hook seam). The kernel is activity-driven: instead of
// scanning every link, router, injector and receiver each cycle, each
// phase walks an incrementally maintained worklist, so an idle cycle
// costs O(active components), not O(network).
//
// Worklists and their maintenance:
//
//   - busyLinks: links carrying a flit, appended during transmit in
//     ascending (node, port) order — which is exactly the order a full
//     scan would visit them, so arrival order (and therefore every
//     downstream result) is unchanged.
//   - activeR: routers with at least one buffered flit. A router enters
//     when a flit lands (arrival or injection) and leaves when transmit
//     finds it drained. Routers without buffered flits provably no-op in
//     both allocate and transmit (every action there is gated on a
//     non-empty input VC), so skipping them is behavior-preserving.
//   - activeI: injectors with queued messages or an in-flight protocol
//     engine. An injector enters on SubmitMessage (and defensively on
//     FKilled) and leaves when every channel is idle and the queue is
//     empty — the state in which Tick provably does nothing.
//   - recvPend: receivers that accepted a flit this cycle; only they can
//     hold deliveries, so only they are drained.
//
// Both node sets are sorted ascending before use (nodeSet.prepare), so
// phase order matches the full scan's and cannot depend on incidental
// insertion order. The brute-force variants (bruteForce flag) scan
// everything exactly as the pre-worklist kernel did; the soak test
// cross-checks the two cycle by cycle. With Config.Shards > 1 the
// worklists live per shard and the node-ordered phases run on the shard
// workers (see shard.go); every phase body here threads the executing
// context's sink explicitly so the serial and sharded kernels share one
// implementation of the per-node work.

func (n *Network) activateRouter(id topology.NodeID) {
	if n.shards != nil {
		n.shards[n.nodeShard[id]].activeR.add(int32(id))
		return
	}
	if !n.bruteForce {
		n.activeR.add(int32(id))
	}
}

func (n *Network) activateInjector(id topology.NodeID) {
	if n.shards != nil {
		n.shards[n.nodeShard[id]].activeI.add(int32(id))
		return
	}
	if !n.bruteForce {
		n.activeI.add(int32(id)) //cr:sharded serial-kernel arm; sharded mode took the shards[...] branch above
	}
}

// phaseArrivals lands the flits that crossed links last cycle, applying
// transient fault corruption. Absorbed tear-down stragglers refund the
// upstream credit immediately (deferred to the credit phase).
//
//cr:hotpath arrivals phase of the cycle kernel
func (n *Network) phaseArrivals() bool {
	if n.bruteForce {
		return n.phaseArrivalsBrute()
	}
	// Swap the worklist out; transmit refills busyLinks this cycle.
	n.linkScratch, n.busyLinks = n.busyLinks, n.linkScratch[:0]
	any := false
	for _, ref := range n.linkScratch {
		l := n.linkAt(int(ref.node), int(ref.port))
		if !l.busy {
			continue // the flit was dropped by a fault after launch
		}
		any = true
		if n.arrive(int(ref.node), int(ref.port), l) {
			n.activateRouter(topology.NodeID(l.toNode))
		}
	}
	return any
}

func (n *Network) phaseArrivalsBrute() bool {
	n.busyLinks = n.busyLinks[:0] // discard the (unused) worklist
	any := false
	for id := 0; id < n.nodes; id++ {
		for p := 0; p < n.deg; p++ {
			l := n.linkAt(id, p)
			if !l.busy {
				continue
			}
			any = true
			n.arrive(id, p, l)
		}
	}
	return any
}

// arrive completes one link traversal: fault corruption is applied in
// place on the link's flit slot (so the hot path allocates nothing), the
// flit is handed to the downstream router, and straggler absorption
// refunds the upstream credit. It reports whether the flit reached the
// downstream router (false when the link died mid-flight). Serial
// kernel only; the sharded kernel splits this between prepassArrivals
// and shardArrivals.
//
//cr:hotpath per-flit arrival; runs once per busy link per cycle
func (n *Network) arrive(id, p int, l *link) bool {
	l.busy = false
	if !l.up {
		// The link died while the flit was in flight.
		n.flitsDropped++
		return false
	}
	if n.corrupter.Apply(&l.f) {
		n.flitsDegraded++
		n.trace(EvCorrupt, topology.NodeID(l.toNode), int(l.toPort), int(l.vc), l.f.Worm, l.f.Seq)
	}
	n.trace(EvArrive, topology.NodeID(l.toNode), int(l.toPort), int(l.vc), l.f.Worm, l.f.Seq)
	if n.routerAt(topology.NodeID(l.toNode)).AcceptFlit(int(l.toPort), int(l.vc), l.f) {
		// Straggler of a torn-down worm: consumed silently, credit flows
		// back as if it had been forwarded.
		n.pushCredit(&n.sink, topology.NodeID(id), p, int(l.vc), 1)
	}
	return true
}

// phaseFaultEvents applies the scheduled fault timeline, then — on its
// evaluation grid — the load-coupled hazard process. Timeline events
// always land before hazard events at the same cycle, and the hazard
// samples utilization signals collected this cycle, so the composite
// event order is deterministic. Always serial: event order is timeline
// order, not node order.
//
//cr:hotpath fault-events phase: one Pop plus one Due check per cycle
func (n *Network) phaseFaultEvents() {
	for _, ev := range n.hooks.Faults.Pop(n.cycle) {
		n.applyFaultEvent(ev)
	}
	if n.hazard != nil && n.hazard.Due(n.cycle) {
		n.collectHazardSignals()
		for _, ev := range n.hazard.Evaluate(n.cycle, n.hazardFlits, n.hazardLoad) {
			n.applyFaultEvent(ev)
		}
	}
}

// applyFaultEvent applies one link or node failure/repair. A node event
// fails (or repairs) every link incident to the node, both directions;
// causes are reference counted, so a link is up only when every cause
// of its death has been repaired.
func (n *Network) applyFaultEvent(ev faults.Event) {
	n.lastFault = n.cycle
	if !ev.Up {
		n.failEvents++
	}
	switch {
	case ev.Kind == faults.NodeEvent && !ev.Up:
		n.forEachIncident(ev.Node, n.failLink)
	case ev.Kind == faults.NodeEvent && ev.Up:
		n.forEachIncident(ev.Node, n.repairLink)
	case ev.Up:
		n.repairLink(ev.Link.Node, ev.Link.Port)
	default:
		n.failLink(ev.Link.Node, ev.Link.Port)
	}
}

// collectHazardSignals refills the hazard scratch vectors from the live
// counters: cumulative traversals per link (the hazard differences them
// into a window utilization) and the buffer-occupancy fraction per
// router. A router never constructed has never buffered a flit, so it
// contributes zero load. Runs only on hazard evaluation cycles.
//
//cr:hotpath hazard signal collection on the evaluation grid
func (n *Network) collectHazardSignals() {
	for i, id := range n.hazardLinks {
		n.hazardFlits[i] = n.linkAt(id.Node, id.Port).flits
	}
	for id, r := range n.routers {
		if r == nil {
			n.hazardLoad[id] = 0
			continue
		}
		if cap := r.BufferCapacity(); cap > 0 {
			n.hazardLoad[id] = float64(r.BufferedFlits()) / float64(cap)
		} else {
			n.hazardLoad[id] = 0
		}
	}
}

// forEachIncident visits every existing directed link touching node:
// its own output links and each neighbor's link back toward it.
func (n *Network) forEachIncident(node int, fn func(id, p int)) {
	for p := 0; p < n.deg; p++ {
		l := n.linkAt(node, p)
		if !l.exists {
			continue
		}
		fn(node, p)
		fn(int(l.toNode), int(n.topo.ReversePort(topology.NodeID(node), topology.Port(p))))
	}
}

// failLink adds one failure cause to a link. On the first cause the link
// is actually torn down: the in-flight flit (if any) is dropped and
// every worm holding the link is killed — backward from the upstream
// side (so its source retries on another path) and forward from the
// downstream side (so the orphaned fragment is reclaimed). A router
// never constructed holds no worms and needs no sweep; it learns about
// the dead link at construction time (see routerAt).
func (n *Network) failLink(id, p int) {
	l := n.linkAt(id, p)
	if !l.exists {
		return
	}
	l.downRefs++
	if l.downRefs > 1 {
		return // already down for another reason
	}
	l.up = false
	n.trace(EvLinkDown, topology.NodeID(id), p, 0, 0, -1)
	if l.busy {
		l.busy = false
		n.flitsDropped++
	}
	if up := n.routers[id]; up != nil {
		up.SetLinkDown(p)
		// Tear down holders on the upstream side.
		n.wormBuf = up.HeldWorms(p, n.wormBuf[:0])
		for _, w := range n.wormBuf {
			sig := router.Signal{Kind: router.KillBwd, Port: p, VC: w.VC, Worm: w.Worm}
			n.emitBuf = up.ApplySignal(sig, n.emitBuf[:0])
			n.routeEmits(&n.sink, topology.NodeID(id), n.emitBuf)
		}
	}
	// Reclaim the orphaned fragments on the downstream side.
	if down := n.routers[l.toNode]; down != nil {
		n.wormBuf = down.ActiveWorms(int(l.toPort), n.wormBuf[:0])
		for _, w := range n.wormBuf {
			sig := router.Signal{Kind: router.KillFwd, Port: int(l.toPort), VC: w.VC, Worm: w.Worm}
			n.emitBuf = down.ApplySignal(sig, n.emitBuf[:0])
			n.routeEmits(&n.sink, topology.NodeID(l.toNode), n.emitBuf)
		}
	}
}

// repairLink removes one failure cause from a link; when the last cause
// is gone the link comes back up with empty buffers and full credits.
// Repairing an up link is a no-op.
func (n *Network) repairLink(id, p int) {
	l := n.linkAt(id, p)
	if !l.exists || l.downRefs == 0 {
		return
	}
	l.downRefs--
	if l.downRefs > 0 {
		return // still down for another reason
	}
	// Any worm still occupying the downstream input (possible only if a
	// tear-down signal racing the failure was dropped) is reclaimed now,
	// before the state reset.
	if down := n.routers[l.toNode]; down != nil {
		n.wormBuf = down.ActiveWorms(int(l.toPort), n.wormBuf[:0])
		for _, w := range n.wormBuf {
			sig := router.Signal{Kind: router.KillFwd, Port: int(l.toPort), VC: w.VC, Worm: w.Worm}
			n.emitBuf = down.ApplySignal(sig, n.emitBuf[:0])
			n.routeEmits(&n.sink, topology.NodeID(l.toNode), n.emitBuf)
		}
		down.ResetInput(int(l.toPort))
	}
	// Scrub credit refunds queued for the dead-era output: the repair
	// resets its credits to full, so applying them would overflow. The
	// filter compacts in place onto the queue's own backing array. In
	// sharded mode the refunds may also sit in the credit matrix —
	// specifically in every shard's cell targeting this node's shard —
	// so those cells are scrubbed too.
	kept := n.credits[:0]
	for _, c := range n.credits {
		if int(c.node) != id || int(c.port) != p {
			kept = append(kept, c)
		}
	}
	n.credits = kept
	if n.shards != nil {
		d := n.nodeShard[id]
		for si := range n.shards {
			cell := n.shards[si].outCredits[d]
			k := cell[:0]
			for _, c := range cell {
				if int(c.node) != id || int(c.port) != p {
					k = append(k, c)
				}
			}
			n.shards[si].outCredits[d] = k
		}
	}
	if up := n.routers[id]; up != nil {
		up.SetLinkUp(p)
	}
	l.up = true
	l.busy = false
	n.trace(EvLinkUp, topology.NodeID(id), p, 0, 0, -1)
}

// phaseSignals delivers the tear-down signals scheduled for this cycle.
// The queue is intrinsically activity-proportional: an idle network has
// no signals in flight. Always serial: the queue's order is append
// order from last cycle's phases, not node order, so no spatial
// partition preserves it.
//
//cr:hotpath signals phase of the cycle kernel
func (n *Network) phaseSignals() {
	n.sigNow, n.signals = n.signals, n.sigNow[:0]
	for _, s := range n.sigNow {
		if s.sig.Kind == router.KillFwd {
			n.trace(EvKill, s.node, s.sig.Port, s.sig.VC, s.sig.Worm, -1)
		} else {
			n.trace(EvFKill, s.node, s.sig.Port, s.sig.VC, s.sig.Worm, -1)
		}
		n.emitBuf = n.routerAt(s.node).ApplySignal(s.sig, n.emitBuf[:0])
		n.routeEmits(&n.sink, s.node, n.emitBuf)
	}
}

// phaseInjectors advances the protocol engine of every node with pending
// work. An injector whose channels are all idle and whose queue is empty
// provably does nothing in Tick, so it is pruned until the next
// SubmitMessage re-activates it.
//
//cr:hotpath injectors phase of the cycle kernel
func (n *Network) phaseInjectors() {
	if n.bruteForce {
		for _, in := range n.injectors {
			if in != nil {
				in.Tick(n.cycle)
			}
		}
		return
	}
	n.activeI.prepare()
	kept := n.activeI.ids[:0]
	for _, id := range n.activeI.ids {
		in := n.injectors[id]
		in.Tick(n.cycle)
		if in.Busy() || in.QueueLen() > 0 {
			kept = append(kept, id)
		} else {
			n.activeI.drop(id)
		}
	}
	n.activeI.ids = kept
}

// phaseAllocate routes waiting headers and claims output channels.
//
//cr:hotpath allocate phase of the cycle kernel
func (n *Network) phaseAllocate() {
	if n.bruteForce {
		for id, r := range n.routers {
			if r == nil {
				continue
			}
			n.emitBuf = r.RouteAndAllocate(n.emitBuf[:0])
			if len(n.emitBuf) > 0 {
				n.routeEmits(&n.sink, topology.NodeID(id), n.emitBuf)
			}
		}
		return
	}
	n.activeR.prepare()
	for _, id := range n.activeR.ids {
		r := n.routers[id]
		n.emitBuf = r.RouteAndAllocate(n.emitBuf[:0])
		if len(n.emitBuf) > 0 {
			n.routeEmits(&n.sink, topology.NodeID(id), n.emitBuf)
		}
	}
}

// phaseTransmit forwards one flit per output channel per router; ejected
// flits reach receivers, network flits enter links, dequeues earn
// deferred upstream credits. Routers left with no buffered flits are
// pruned from the active set; a future arrival or injection re-adds
// them.
//
//cr:hotpath transmit phase of the cycle kernel
func (n *Network) phaseTransmit() bool {
	if n.bruteForce {
		moved := false
		for id := range n.routers {
			if n.routers[id] == nil {
				continue
			}
			if n.transmitRouter(&n.sink, id) {
				moved = true
			}
		}
		return moved
	}
	moved := false
	kept := n.activeR.ids[:0]
	for _, id := range n.activeR.ids {
		if n.transmitRouter(&n.sink, int(id)) {
			moved = true
		}
		if n.routers[id].Busy() {
			kept = append(kept, id)
		} else {
			n.activeR.drop(id)
		}
	}
	n.activeR.ids = kept
	return moved
}

// transmitRouter runs one router's switch-transmission, wiring its flit
// movements into links, receivers, the busy-link worklist and the
// deferred credit queue — all through the executing context's sink, so
// serial and sharded transmit share this body.
//
//cr:hotpath per-router transmit; runs once per active router per cycle
func (n *Network) transmitRouter(sk *sink, id int) bool {
	moved := false
	r := n.routers[id]
	node := topology.NodeID(id)
	deg := r.Degree()
	r.Transmit(
		// Both callbacks are non-escaping: Transmit only calls them, so
		// the compiler stack-allocates the closures (the runtime
		// alloc-gate test holds Step at zero allocs/cycle with them).
		//cr:alloc non-escaping closure, stack-allocated; verified by TestSteadyStateZeroAlloc
		func(outPort, outVC int, f flit.Flit) {
			moved = true
			if outPort >= deg {
				n.traceTo(sk, EvEject, node, outPort-deg, 0, f.Worm, f.Seq)
				sk.flitsEjected++
				if !n.recvMark[id] {
					n.recvMark[id] = true //cr:sharded recvMark[id] belongs to the shard that owns node id
					sk.recvPend = append(sk.recvPend, int32(id))
				}
				n.receiverAt(node).Accept(outPort-deg, f, n.cycle)
				return
			}
			l := n.linkAt(id, outPort)
			if !l.exists {
				panic(fmt.Sprintf("network: transmit on missing link (%d,%d)", id, outPort))
			}
			if l.busy {
				panic(fmt.Sprintf("network: link (%d,%d) double-booked", id, outPort))
			}
			l.busy = true
			l.vc = uint8(outVC)
			l.f = f
			l.flits++
			sk.busyLinks = append(sk.busyLinks, linkRef{node: int32(id), port: int32(outPort)})
		},
		//cr:alloc non-escaping closure, stack-allocated; verified by TestSteadyStateZeroAlloc
		func(inPort, inVC int) {
			upNode, upPort := n.upstreamOf(node, inPort)
			n.pushCredit(sk, upNode, upPort, inVC, 1)
		},
	)
	return moved
}

// phaseFKills applies receiver-initiated backward tear-downs.
//
//cr:hotpath fkills phase of the cycle kernel
func (n *Network) phaseFKills() {
	if len(n.fkills) == 0 {
		return
	}
	reqs := n.fkills
	n.fkills = n.fkills[:0]
	for _, req := range reqs {
		r := n.routerAt(req.node)
		sig := router.Signal{Kind: router.KillBwd, Port: r.EjPort(req.ch), VC: 0, Worm: req.worm}
		n.emitBuf = r.ApplySignal(sig, n.emitBuf[:0])
		n.routeEmits(&n.sink, req.node, n.emitBuf)
	}
	// Deliveries are collected after tear-downs so a rejected worm can
	// never appear in the same cycle's output.
}

// phaseCredits applies deferred credit refunds and collects deliveries.
// Only receivers that accepted a flit this cycle can hold deliveries, so
// only those (recvPend, in ascending node order by construction) are
// drained.
//
//cr:hotpath credits phase of the cycle kernel
func (n *Network) phaseCredits() {
	for _, c := range n.credits {
		n.routers[c.node].ApplyCredit(int(c.port), int(c.vc), int(c.n), int(c.w))
	}
	n.credits = n.credits[:0]
	if n.bruteForce {
		for _, id := range n.recvPend {
			n.recvMark[id] = false
		}
		n.recvPend = n.recvPend[:0]
		for id, rc := range n.receivers {
			if rc != nil {
				n.drainReceiver(&n.sink, id, rc)
			}
		}
		return
	}
	for _, id := range n.recvPend {
		n.recvMark[id] = false
		n.drainReceiver(&n.sink, int(id), n.receivers[id])
	}
	n.recvPend = n.recvPend[:0]
}

//cr:hotpath per-receiver delivery drain, once per accepting receiver per cycle
func (n *Network) drainReceiver(sk *sink, id int, rc *core.Receiver) {
	ds := rc.Drain()
	if len(ds) == 0 {
		return
	}
	if n.tracer != nil {
		for _, d := range ds {
			n.traceTo(sk, EvDeliver, topology.NodeID(id), 0, 0, d.Worm, -1)
		}
	}
	sk.deliveries = append(sk.deliveries, ds...)
}

// upstreamOf returns the node and output port feeding input port p of
// node id: the neighbor in direction p, through its reverse port.
func (n *Network) upstreamOf(id topology.NodeID, p int) (topology.NodeID, int) {
	up, ok := n.topo.Neighbor(id, topology.Port(p))
	if !ok {
		panic(fmt.Sprintf("network: no upstream for (%d,%d)", id, p))
	}
	return up, int(n.topo.ReversePort(id, topology.Port(p)))
}

// routeEmits delivers a router's tear-down side effects: further signal
// propagation (scheduled for next cycle), credit refunds (deferred to
// this cycle's credit phase), receiver discards and injector FKILL
// notifications (immediate). All queue appends go through sk — in a
// parallel phase that is the emitting node's own shard sink, merged
// into the global queues at the barrier.
//
//cr:hotpath tear-down emit fan-out, called from allocate/signal/fkill phases
func (n *Network) routeEmits(sk *sink, node topology.NodeID, emits []router.Emit) {
	r := n.routers[node]
	deg := r.Degree()
	for _, e := range emits {
		switch e.Kind {
		case router.EmitKillFwd:
			if e.Port >= deg {
				n.traceTo(sk, EvDiscard, node, e.Port-deg, 0, e.Worm, -1)
				n.receiverAt(node).Discard(e.Worm)
				continue
			}
			l := n.linkAt(int(node), e.Port)
			if !l.exists || !l.up {
				// The downstream fragment is (or will be) reclaimed by
				// the dead-link sweep.
				sk.killsDropped++
				continue
			}
			sk.signals = append(sk.signals, scheduledSignal{
				node: topology.NodeID(l.toNode),
				sig:  router.Signal{Kind: router.KillFwd, Port: int(l.toPort), VC: e.VC, Worm: e.Worm},
			})
		case router.EmitKillBwd:
			if e.Port >= deg {
				// Reached the source injection channel.
				n.activateInjector(node)
				n.injectorAt(node).FKilled(e.Worm, n.cycle)
				continue
			}
			upNode, upPort := n.upstreamOf(node, e.Port)
			if !n.linkAt(int(upNode), upPort).up {
				sk.killsDropped++
				continue
			}
			sk.signals = append(sk.signals, scheduledSignal{
				node: upNode,
				sig:  router.Signal{Kind: router.KillBwd, Port: upPort, VC: e.VC, Worm: e.Worm},
			})
		case router.EmitCredits:
			upNode, upPort := n.upstreamOf(node, e.Port)
			n.pushCredit(sk, upNode, upPort, e.VC, e.N)
		default:
			panic(fmt.Sprintf("network: unknown emit kind %d", e.Kind))
		}
	}
}
