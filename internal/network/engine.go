package network

import (
	"fmt"

	"crnet/internal/faults"
)

// Hooks is the single seam through which external machinery attaches to
// the cycle kernel. Everything that is not the network itself — the
// fault timeline, the invariant watchdog, the metrics sampler — plugs in
// here; the kernel consults each at one documented point of the step
// pipeline and nowhere else.
type Hooks struct {
	// Faults is the permanent-fault timeline, consulted once per cycle in
	// the fault-events phase. A nil Faults falls back to Config.Faults
	// (which may itself be nil: no permanent faults).
	Faults *faults.Schedule

	// Monitor runs after the phase pipeline, before the cycle counter
	// advances (it sees the network state at the end of cycle N with
	// Cycle() == N). Its first error latches the network unhealthy (see
	// Health); subsequent cycles skip it.
	Monitor Monitor

	// Observer runs last, after the cycle counter has advanced, with the
	// just-completed cycle number. Metric samplers hook in here: polled
	// gauges see the post-step state exactly as external callers polling
	// between Step calls would.
	Observer func(cycle int64)
}

// SetHooks installs the hook set, replacing any previous one. A nil
// Faults is substituted with Config.Faults so installing a monitor or
// observer never silently disables the configured fault timeline.
func (n *Network) SetHooks(h Hooks) {
	if h.Faults == nil {
		h.Faults = n.cfg.Faults
	}
	n.hooks = h
}

// enginePhase is one stage of the per-cycle kernel. run reports whether
// any flit made progress (moved across the switch or arrived over a
// link) — the signal feeding CyclesSinceProgress.
type enginePhase struct {
	name string
	run  func(*Network) bool
}

// pipeline is the cycle kernel's phase sequence — the authoritative,
// ordered statement of what one simulated cycle does. Determinism
// depends on this order and on every phase iterating its worklist in
// ascending (node, port) order; see the package comment for why signals
// precede arrivals.
var pipeline = [...]enginePhase{
	{"signals", func(n *Network) bool { n.phaseSignals(); return false }},
	{"arrivals", (*Network).phaseArrivals},
	{"fault-events", func(n *Network) bool { n.phaseFaultEvents(); return false }},
	{"injectors", func(n *Network) bool { n.phaseInjectors(); return false }},
	{"allocate", func(n *Network) bool { n.phaseAllocate(); return false }},
	{"transmit", (*Network).phaseTransmit},
	{"fkills", func(n *Network) bool { n.phaseFKills(); return false }},
	{"credits", func(n *Network) bool { n.phaseCredits(); return false }},
}

// Step advances the simulation one cycle: the phase pipeline, invariant
// checks (Config.Check), the Monitor hook, the cycle increment, and the
// Observer hook, in that order. With Config.Shards > 1 the pipeline
// runs sharded (see shard.go) with byte-identical results; the
// brute-force reference flag always selects the serial kernel.
//
//cr:hotpath cycle-kernel entry point; zero-alloc steady state (TestSteadyStateZeroAlloc)
func (n *Network) Step() {
	if n.shards != nil && !n.bruteForce {
		n.stepSharded()
		return
	}
	progressed := false
	for i := range pipeline {
		if pipeline[i].run(n) {
			progressed = true
		}
	}
	n.finishStep(progressed)
}

// finishStep is the per-cycle epilogue shared by the serial and sharded
// kernels: the progress clock, invariant checks, the Monitor hook, the
// cycle increment, and the Observer hook.
//
//cr:hotpath per-cycle epilogue of both kernels
func (n *Network) finishStep(progressed bool) {
	if progressed {
		n.lastProgress = n.cycle
	}
	if n.cfg.Check {
		for _, r := range n.routers {
			if r == nil {
				continue // never constructed, trivially consistent
			}
			if err := r.CheckInvariants(); err != nil {
				panic(fmt.Sprintf("cycle %d: %v", n.cycle, err))
			}
		}
	}
	if n.hooks.Monitor != nil && n.health == nil {
		if err := n.hooks.Monitor.AfterStep(n); err != nil {
			n.health = err
		}
	}
	n.cycle++
	if n.hooks.Observer != nil {
		n.hooks.Observer(n.cycle - 1)
	}
}

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// PhaseNames returns the pipeline's phase names in execution order, for
// documentation and tooling.
func PhaseNames() []string {
	out := make([]string, len(pipeline))
	for i, p := range pipeline {
		out[i] = p.name
	}
	return out
}
