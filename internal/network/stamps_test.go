package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/topology"
)

// checkStamps asserts one delivery's phase timestamps partition the
// creation->delivery interval: each phase boundary is ordered and no
// component is negative.
func checkStamps(t *testing.T, d core.Delivery) (queue, retry, flight, drain int64) {
	t.Helper()
	s := d.Stamps
	if s.FirstInject < s.Create {
		t.Fatalf("msg %d: first inject %d before creation %d", d.Msg, s.FirstInject, s.Create)
	}
	if s.AttemptInject < s.FirstInject {
		t.Fatalf("msg %d: attempt inject %d before first inject %d", d.Msg, s.AttemptInject, s.FirstInject)
	}
	if d.HeadArrived < s.AttemptInject {
		t.Fatalf("msg %d: head arrived %d before injection %d", d.Msg, d.HeadArrived, s.AttemptInject)
	}
	if d.Time < d.HeadArrived {
		t.Fatalf("msg %d: tail drained %d before head arrived %d", d.Msg, d.Time, d.HeadArrived)
	}
	if s.Backoff < 0 || s.Backoff > s.AttemptInject-s.FirstInject {
		t.Fatalf("msg %d: backoff %d outside retry phase [0,%d]", d.Msg, s.Backoff, s.AttemptInject-s.FirstInject)
	}
	return s.FirstInject - s.Create, s.AttemptInject - s.FirstInject, d.HeadArrived - s.AttemptInject, d.Time - d.HeadArrived
}

func TestPhaseStampsPartitionLatency(t *testing.T) {
	n := crNet(topology.NewTorus(8, 2))
	n.SubmitMessage(flit.Message{ID: 1, Src: 0, Dst: 5, DataLen: 4, CreateTime: 0})
	ds := runUntilIdle(t, n, 1000)
	if len(ds) != 1 {
		t.Fatalf("%d deliveries", len(ds))
	}
	d := ds[0]
	queue, retry, flight, drain := checkStamps(t, d)
	if queue+retry+flight+drain != d.Time-d.Stamps.Create {
		t.Fatalf("phases %d+%d+%d+%d do not sum to end-to-end %d",
			queue, retry, flight, drain, d.Time-d.Stamps.Create)
	}
	// Unloaded first-try delivery: no retry phase, no backoff.
	if retry != 0 || d.Stamps.Backoff != 0 {
		t.Fatalf("unloaded delivery shows retry=%d backoff=%d", retry, d.Stamps.Backoff)
	}
	if flight <= 0 {
		t.Fatalf("flight = %d over a multi-hop path", flight)
	}
}

// Under saturating antipodal CR load, kills and retransmissions happen;
// the retry phase must then be visible in the stamps and the partition
// must still be exact for every delivery.
func TestPhaseStampsUnderRetries(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      crNet(topo).cfg.Alg,
		Protocol: core.CR,
		Timeout:  8,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
	})
	id := flit.MessageID(1)
	for round := 0; round < 6; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2) % topo.Nodes()
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 16})
			id++
		}
	}
	ds := runUntilIdle(t, n, 200000)
	if n.InjectorStats().Kills == 0 {
		t.Fatal("contended run produced no kills; retry phase untested")
	}
	sawRetry := false
	for _, d := range ds {
		queue, retry, flight, drain := checkStamps(t, d)
		if queue+retry+flight+drain != d.Time-d.Stamps.Create {
			t.Fatalf("msg %d: phases do not partition end-to-end latency", d.Msg)
		}
		if retry > 0 {
			sawRetry = true
			if d.Worm.Attempt() == 0 {
				t.Fatalf("msg %d: retry phase %d on attempt 0", d.Msg, retry)
			}
		}
	}
	if !sawRetry {
		t.Fatal("kills observed but no delivery carried a retry phase")
	}
}
