package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// linkUp reads a link's up state through LinkLoads.
func linkUp(t *testing.T, n *Network, id faults.LinkID) bool {
	t.Helper()
	for _, l := range n.LinkLoads() {
		if l.Link == id {
			return l.Up
		}
	}
	t.Fatalf("link %v not found", id)
	return false
}

func TestLinksOfMatchesNetworkLinks(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.NewTorus(4, 2),
		topology.NewMesh(4, 2),
		topology.NewHypercube(3),
	} {
		n := crNet(topo)
		a, b := LinksOf(topo), n.Links()
		if len(a) != len(b) {
			t.Fatalf("%s: LinksOf %d links, network %d", topo.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: link %d differs: %v vs %v", topo.Name(), i, a[i], b[i])
			}
		}
	}
}

// A link that fails and is later repaired: traffic over it stalls and
// retries during the outage, then completes after the repair — with
// nothing abandoned and the flit ledger balanced.
func TestLinkFailThenRepairRecovers(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	doomed := faults.LinkID{Node: 0, Port: int(topology.PortFor(0, true))}
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.FCR,
		Backoff:  core.Backoff{Kind: core.BackoffStatic, Gap: 8},
		Faults: faults.NewSchedule([]faults.Event{
			{Cycle: 40, Link: doomed},
			{Cycle: 400, Link: doomed, Up: true},
		}),
		Check: true,
	})
	// 0 -> 1 is distance 1: with no misrouting, the doomed link is the
	// only minimal path, so delivery requires the repair.
	for i := 1; i <= 10; i++ {
		n.SubmitMessage(flit.Message{ID: flit.MessageID(i), Src: 0, Dst: 1, DataLen: 8})
	}
	n.Run(100)
	if linkUp(t, n, doomed) {
		t.Fatal("link still up after failure event")
	}
	ds := runUntilIdle(t, n, 300000)
	if !linkUp(t, n, doomed) {
		t.Fatal("link still down after repair event")
	}
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("delivered %d of %d after repair", len(ds), n.InjectorStats().Submitted)
	}
	for _, d := range ds {
		if !d.DataOK {
			t.Fatalf("corrupt delivery %+v", d)
		}
	}
	if n.InjectorStats().Failed != 0 {
		t.Fatalf("%d messages abandoned despite repair", n.InjectorStats().Failed)
	}
	if err := n.Ledger().Check(); err != nil {
		t.Fatal(err)
	}
}

// A node failure takes down every incident link (both directions); the
// matching repair brings them all back and traffic through the node
// completes.
func TestNodeFailureAndRepair(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.FCR,
		Backoff:  core.Backoff{Kind: core.BackoffStatic, Gap: 8},
		Faults: faults.NewSchedule([]faults.Event{
			{Cycle: 40, Kind: faults.NodeEvent, Node: 5},
			{Cycle: 600, Kind: faults.NodeEvent, Node: 5, Up: true},
		}),
		Check: true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 4; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			if src == 5 {
				continue // the doomed node neither sends nor receives here
			}
			dst := (src + 7 + round) % topo.Nodes()
			if dst == src || dst == 5 {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
	}
	n.Run(100)
	downCount := 0
	for _, l := range n.LinkLoads() {
		if !l.Up {
			downCount++
		}
	}
	// Degree-4 node: 4 outgoing + 4 incoming directed links dead.
	if downCount != 8 {
		t.Fatalf("%d links down after node failure, want 8", downCount)
	}
	ds := runUntilIdle(t, n, 400000)
	if c := n.Cycle(); c <= 600 {
		n.Run(601 - c) // make sure the repair event has fired
	}
	for _, l := range n.LinkLoads() {
		if !l.Up {
			t.Fatalf("link %v still down after node repair", l.Link)
		}
	}
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("delivered %d of %d around/after the dead node", len(ds), n.InjectorStats().Submitted)
	}
	if err := n.Ledger().Check(); err != nil {
		t.Fatal(err)
	}
}

// Overlapping failure causes are reference counted: a link killed by
// both its own event and its node's event needs both repairs.
func TestOverlappingFaultCausesRefcounted(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	l := faults.LinkID{Node: 0, Port: 0}
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffStatic, Gap: 8},
		Faults: faults.NewSchedule([]faults.Event{
			{Cycle: 10, Link: l},
			{Cycle: 20, Kind: faults.NodeEvent, Node: 0},
			{Cycle: 30, Link: l, Up: true},
			{Cycle: 50, Kind: faults.NodeEvent, Node: 0, Up: true},
			{Cycle: 70, Link: l, Up: true}, // repairing an up link: no-op
		}),
		Check: true,
	})
	n.Run(40)
	if linkUp(t, n, l) {
		t.Fatal("link up after one of two causes repaired")
	}
	n.Run(20)
	if !linkUp(t, n, l) {
		t.Fatal("link down after both causes repaired")
	}
	n.Run(40) // the no-op repair must not disturb anything
	if !linkUp(t, n, l) {
		t.Fatal("no-op repair changed link state")
	}
	if err := n.Ledger().Check(); err != nil {
		t.Fatal(err)
	}
}

// The Gilbert-Elliott process wired through Config.Burst injects
// corruption that FCR catches: intact delivery, non-zero fault count.
func TestBurstyCorruptionDeliveredIntact(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	spec := faults.EqualRateBurst(5e-3, 450, 50)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.FCR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Burst:    &spec,
		Seed:     13,
		Check:    true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 10; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + 3 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
	}
	ds := runUntilIdle(t, n, 500000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("delivered %d of %d under bursty faults", len(ds), n.InjectorStats().Submitted)
	}
	for _, d := range ds {
		if !d.DataOK {
			t.Fatalf("corrupt delivery %+v", d)
		}
	}
	if n.TransientFaults() == 0 {
		t.Fatal("bursty process injected nothing; test vacuous")
	}
}

// A random MTBF/MTTR chaos timeline with the conservation ledger checked
// every cycle: whatever fails and repairs, no flit may be lost or
// duplicated.
func TestChaosTimelineConservesFlits(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	cfg := Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.FCR,
		Backoff:       core.Backoff{Kind: core.BackoffStatic, Gap: 8},
		MisrouteAfter: 2,
		MaxDetours:    4,
		Check:         true,
	}
	cfg.Faults = faults.RandomTimeline(faults.TimelineConfig{
		Links:    LinksOf(topo),
		Nodes:    []int{3, 9},
		LinkMTBF: 4000, LinkMTTR: 150,
		NodeMTBF: 12000, NodeMTTR: 200,
		Start: 50, Horizon: 4000, Seed: 21,
	})
	n := New(cfg)
	id := flit.MessageID(1)
	for round := 0; round < 6; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + 5 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
	}
	for c := 0; c < 8000; c++ {
		n.Step()
		n.DrainDeliveries()
		if err := n.Ledger().Check(); err != nil {
			t.Fatalf("cycle %d: %v", n.Cycle(), err)
		}
	}
	if n.TransientFaults() != 0 {
		t.Fatal("no transient process configured but corruptions counted")
	}
}
