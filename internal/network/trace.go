package network

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/topology"
)

// EventKind classifies observable network occurrences for tracing.
type EventKind uint8

// Event kinds, in rough lifecycle order.
const (
	// EvInject: a flit entered an injection channel at Node.
	EvInject EventKind = iota
	// EvArrive: a flit landed at Node's input (Port, VC).
	EvArrive
	// EvCorrupt: the fault process corrupted a flit on the link into
	// Node's (Port, VC).
	EvCorrupt
	// EvEject: a flit was delivered to Node's receiver (Port = ejection
	// channel index).
	EvEject
	// EvKill: a forward KILL signal was applied at Node's input (Port, VC).
	EvKill
	// EvFKill: a backward FKILL signal was applied at Node's output
	// (Port, VC).
	EvFKill
	// EvDeliver: the receiver at Node completed a message.
	EvDeliver
	// EvDiscard: the receiver at Node discarded a partial worm.
	EvDiscard
	// EvLinkDown: the link at (Node, Port) failed.
	EvLinkDown
	// EvLinkUp: the link at (Node, Port) was repaired.
	EvLinkUp
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "INJECT"
	case EvArrive:
		return "ARRIVE"
	case EvCorrupt:
		return "CORRUPT"
	case EvEject:
		return "EJECT"
	case EvKill:
		return "KILL"
	case EvFKill:
		return "FKILL"
	case EvDeliver:
		return "DELIVER"
	case EvDiscard:
		return "DISCARD"
	case EvLinkDown:
		return "LINKDOWN"
	case EvLinkUp:
		return "LINKUP"
	default:
		return fmt.Sprintf("Event(%d)", uint8(k))
	}
}

// Event is one observable occurrence. Seq identifies the flit involved
// (-1 for non-flit events).
type Event struct {
	Cycle int64
	Kind  EventKind
	Node  topology.NodeID
	Port  int
	VC    int
	Worm  flit.WormID
	Seq   int
}

// String renders the event for trace logs.
func (e Event) String() string {
	return fmt.Sprintf("[%6d] %-8s node=%-4d port=%d vc=%d worm=%d.%d seq=%d",
		e.Cycle, e.Kind, e.Node, e.Port, e.VC, e.Worm.Message(), e.Worm.Attempt(), e.Seq)
}

// Tracer receives every traced event; install with SetTracer. The
// tracer runs synchronously inside the cycle loop — keep it cheap.
type Tracer func(Event)

// SetTracer installs (or, with nil, removes) the event tracer. Tracing
// is off by default and costs nothing when off.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

func (n *Network) trace(kind EventKind, node topology.NodeID, port, vc int, worm flit.WormID, seq int) {
	if n.tracer == nil {
		return
	}
	n.tracer(Event{Cycle: n.cycle, Kind: kind, Node: node, Port: port, VC: vc, Worm: worm, Seq: seq})
}

// traceTo is trace through an execution context's sink: a shard sink
// (deferred) buffers the event for the coordinator to replay in shard
// order at the barrier, so sharded runs emit the exact serial event
// sequence; the serial sink calls the tracer directly.
func (n *Network) traceTo(sk *sink, kind EventKind, node topology.NodeID, port, vc int, worm flit.WormID, seq int) {
	if n.tracer == nil {
		return
	}
	ev := Event{Cycle: n.cycle, Kind: kind, Node: node, Port: port, VC: vc, Worm: worm, Seq: seq}
	if sk.deferred {
		sk.events = append(sk.events, ev)
		return
	}
	n.tracer(ev) //cr:sharded shard sinks are always deferred; this call runs only on the serial path
}
