package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// Kernel microbenchmarks: the per-cycle cost of Network.Step at three
// operating points. These are the numbers `make bench-kernel` records in
// BENCH_PR4.json; the low-load case is the one the active-set scheduler
// is designed for (most of the network idle, cost O(active) instead of
// O(network)).
//
// All three run a 16x16 CR torus (the paper's machine scale); traffic is
// driven exactly like sim.Run drives it — one generator tick per node
// per cycle, deliveries drained every cycle — so a benchmarked step
// includes the full steady-state loop, not just the network phases.

const benchK = 16

func benchNetwork() *Network {
	return New(Config{
		Topo:     topology.NewTorus(benchK, 2),
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
	})
}

// stepLoop warms the network up for warmup cycles at the given load,
// then times b.N cycles of the submit/step/drain loop.
func stepLoop(b *testing.B, load float64, warmup int64) {
	b.Helper()
	n := benchNetwork()
	topo := n.Topology()
	var gen *traffic.Generator
	if load > 0 {
		gen = traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, load, 16, 1)
	}
	tick := func(cycle int64) {
		if gen != nil {
			for node := 0; node < topo.Nodes(); node++ {
				if m, ok := gen.Tick(topology.NodeID(node), cycle); ok {
					n.SubmitMessage(m)
				}
			}
		}
		n.Step()
		n.DrainDeliveries()
	}
	for c := int64(0); c < warmup; c++ {
		tick(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick(warmup + int64(i))
	}
}

// BenchmarkStepIdle is a completely quiescent network: no worms, no
// queued messages. The floor every sub-saturation experiment pays
// between bursts.
func BenchmarkStepIdle(b *testing.B) { stepLoop(b, 0, 100) }

// BenchmarkStepLowLoad offers 10% of saturation capacity — the common
// case in the paper's latency-vs-load sweeps, where most routers are
// idle on any given cycle.
func BenchmarkStepLowLoad(b *testing.B) { stepLoop(b, 0.1, 2000) }

// BenchmarkStepSaturated offers 90% of capacity: nearly every router
// busy, the active-set bookkeeping all overhead and no savings.
func BenchmarkStepSaturated(b *testing.B) { stepLoop(b, 0.9, 2000) }
