package network

import (
	"fmt"
	"reflect"
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/rng"
	"crnet/internal/router"
	"crnet/internal/routing"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// sharedOrgs are the two organizations with dynamic window grants — the
// ones whose advertisement traffic exercises machinery the static
// default never touches.
var sharedOrgs = []router.BufferOrg{router.OrgDAMQ, router.OrgCreditShared}

// TestShardedMatchesSerialBufferOrgs extends the serial/sharded pin to
// the shared buffer organizations: window grants, release top-ups and
// shrink advertisements all ride the cross-shard credit mailbox matrix,
// and the delivery stream, stats and trace must stay byte-identical to
// the serial kernel for every shard count — under transient corruption,
// a permanent fail/repair timeline and load-coupled hazards, which add
// kill teardowns and link repairs (the paths where the grant ledger is
// subtlest).
func TestShardedMatchesSerialBufferOrgs(t *testing.T) {
	for _, org := range sharedOrgs {
		r := rng.New(0xB0F0 + uint64(org))
		const configs = 3
		for i := 0; i < configs; i++ {
			cfg, load, msgLen := randomConfig(r, uint64(i)+9300+1000*uint64(org))
			cfg.BufOrg = org
			cfg.TransientRate = 2e-3
			cfg.Hazard = &faults.HazardSpec{
				LinkLambda0: 2e-5,
				NodeLambda0: 8e-6,
				Alpha:       4,
				LinkMTTR:    150,
				NodeMTTR:    200,
				EvalEvery:   32,
				Seed:        uint64(i)*131 + 7,
			}
			timeline := faults.TimelineConfig{
				Links:    LinksOf(cfg.Topo),
				LinkMTBF: 900, LinkMTTR: 60,
				Start: 50, Horizon: 2000,
				Seed: uint64(i)*77 + 3,
			}
			name := fmt.Sprintf("%s_cfg%02d_%s_%s", org, i, cfg.Topo.Name(), cfg.Protocol)
			t.Run(name, func(t *testing.T) {
				type tracedSnapshot struct {
					kernelSnapshot
					events []Event
				}
				run := func(shards int) tracedSnapshot {
					c := cfg
					c.Shards = shards
					c.Faults = faults.RandomTimeline(timeline)
					n := New(c)
					var snap tracedSnapshot
					n.SetTracer(func(ev Event) { snap.events = append(snap.events, ev) })
					gen := traffic.NewGenerator(c.Topo, traffic.Uniform{Nodes: c.Topo.Nodes()}, load, msgLen, c.Seed+5)
					snap.kernelSnapshot = runKernel(n, gen, 1200, 1200*60)
					return snap
				}
				serial := run(0)
				for _, s := range shardCounts() {
					got := run(s)
					if !reflect.DeepEqual(got.kernelSnapshot, serial.kernelSnapshot) {
						t.Errorf("shards=%d diverged from serial:\nsharded: cycle=%d deliveries=%d flits=%d\nserial:  cycle=%d deliveries=%d flits=%d",
							s, got.cycle, len(got.deliveries), got.flits,
							serial.cycle, len(serial.deliveries), serial.flits)
						continue
					}
					if !reflect.DeepEqual(got.events, serial.events) {
						t.Errorf("shards=%d trace diverged (%d vs %d events)", s, len(got.events), len(serial.events))
					}
				}
			})
		}
	}
}

// TestResumeBufferOrgStores pins the snapshot round trip of the
// organization-specific state: buffered flit chains, the granted-window
// ledger, grant rotation cursors and per-output windows must all
// restore such that the resumed network replays the rest of the run
// byte-identically — for every organization, mid-flight, with faults
// and kill teardowns in the window (stranded tenures included).
func TestResumeBufferOrgStores(t *testing.T) {
	for _, org := range router.BufferOrgs {
		t.Run(org.String(), func(t *testing.T) {
			topo := topology.NewTorus(5, 2)
			timeline := faults.TimelineConfig{
				Links:    LinksOf(topo),
				LinkMTBF: 700, LinkMTTR: 50,
				Start: 20, Horizon: 1200,
				Seed: 5,
			}
			newNet := func() *Network {
				return New(Config{
					Topo:          topo,
					Alg:           routing.MinimalAdaptive{},
					Protocol:      core.CR,
					BufOrg:        org,
					VCs:           2,
					BufDepth:      2,
					TransientRate: 1e-3,
					Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
					Seed:          17,
					Check:         true,
					Faults:        faults.RandomTimeline(timeline),
				})
			}
			drive := func(n *Network, from, to int64) []core.Delivery {
				gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.4, 7, 23)
				var out []core.Delivery
				for c := from; c < to; c++ {
					for node := 0; node < topo.Nodes(); node++ {
						if m, ok := gen.Tick(topology.NodeID(node), c); ok {
							n.SubmitMessage(m)
						}
					}
					n.Step()
					out = append(out, n.DrainDeliveries()...)
				}
				return out
			}
			const half, full = 600, 1200
			src := newNet()
			drive(src, 0, half)
			var e snapshot.Encoder
			src.SaveState(&e)
			rest := newNet()
			if err := rest.LoadState(snapshot.NewDecoder(e.Bytes())); err != nil {
				t.Fatalf("%s: restore failed: %v", org, err)
			}
			wantSecond := drive(src, half, full)
			gotSecond := drive(rest, half, full)
			if !reflect.DeepEqual(gotSecond, wantSecond) {
				t.Fatalf("%s: restored run diverged: %d deliveries vs %d", org, len(gotSecond), len(wantSecond))
			}
			if src.Cycle() != rest.Cycle() {
				t.Fatalf("%s: restored cycle %d, want %d", org, rest.Cycle(), src.Cycle())
			}
		})
	}
}

// TestChaosSoakBufferOrgs soaks the shared organizations under
// transient corruption and kill-heavy load with Check enabled, so
// every cycle audits slot conservation (per pool, Σ VC chain lengths +
// free-list length == pool size), the granted-window ledger bounds and
// the credit/window ranges — across the teardown churn where the grant
// tenure protocol is subtlest. The accounting oracle is strict: every
// submitted message must deliver exactly once (or be counted failed).
//
// Permanent fail/repair timelines are deliberately absent: no protocol
// variant guarantees lossless delivery under permanent faults in any
// organization (a committed worm whose path dies can be abandoned —
// static FIFO included), so the strict oracle cannot hold there. The
// faulted paths of the shared organizations (including grant resets on
// link repair) are pinned instead by TestShardedMatchesSerialBufferOrgs
// and TestResumeBufferOrgStores, whose oracles are determinism and
// snapshot fidelity. The path-wide timeout ablation is excluded for
// the same reason: it abandons the occasional committed worm even
// without faults.
func TestChaosSoakBufferOrgs(t *testing.T) {
	for _, org := range sharedOrgs {
		t.Run(org.String(), func(t *testing.T) {
			r := rng.New(0xC8A05 + uint64(org))
			for i := 0; i < 2; i++ {
				cfg, load, msgLen := randomConfig(r, uint64(i)+9700+1000*uint64(org))
				cfg.BufOrg = org
				cfg.TransientRate = 1e-3
				cfg.RouterTimeout = 0
				soakOne(t, cfg, load, msgLen)
			}
		})
	}
}
