package network

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/router"
	"crnet/internal/topology"
)

// Monitor observes the network after every cycle. The invariant
// watchdog (internal/invariant) implements it; the indirection keeps
// the network free of a dependency on its own checker.
type Monitor interface {
	// AfterStep runs after a cycle's phases complete, before the clock
	// advances. A non-nil error marks the network unhealthy: it is
	// latched (see Health) and the monitor is not called again.
	AfterStep(n *Network) error
}

// SetMonitor installs (or, with nil, removes) the per-cycle monitor.
// It is shorthand for setting Hooks.Monitor (see SetHooks), leaving the
// other hooks in place.
func (n *Network) SetMonitor(m Monitor) { n.hooks.Monitor = m }

// Health returns the first error the monitor reported, or nil while the
// run is healthy. Once set it never clears on its own: stepping,
// snapshot restore and Reset all preserve (or refuse to discard) the
// latch, so a violation cannot be lost by reuse. ClearHealth is the one
// explicit acknowledgement path.
func (n *Network) Health() error { return n.health }

// ClearHealth acknowledges and clears the health latch, returning the
// violation that was latched (nil if the network was healthy). It is
// the required prelude to Reset on an unhealthy network: the caller
// provably saw the error before discarding the state that produced it.
func (n *Network) ClearHealth() error {
	err := n.health
	n.health = nil
	return err
}

// FlitLedger is a snapshot of the network-wide flit conservation
// accounting. Every flit that enters at an injection port must leave at
// an ejection port, be purged by a tear-down, be absorbed as a
// tear-down straggler, or be dropped by a dying link — or still be in a
// buffer or on a link.
type FlitLedger struct {
	Injected   int64 // entered at injection ports
	Ejected    int64 // left at ejection ports
	Purged     int64 // discarded from buffers by tear-downs
	Stragglers int64 // in-flight flits absorbed after a purge
	Dropped    int64 // in-flight flits lost to link death
	Buffered   int64 // currently in router buffers
	InFlight   int64 // currently on links
}

// Check verifies conservation: all flits are accounted for exactly once.
func (l FlitLedger) Check() error {
	gone := l.Ejected + l.Purged + l.Stragglers + l.Dropped
	if l.Injected-gone != l.Buffered+l.InFlight {
		return fmt.Errorf(
			"flit conservation violated: injected %d - (ejected %d + purged %d + stragglers %d + dropped %d) = %d, but buffered %d + in-flight %d = %d",
			l.Injected, l.Ejected, l.Purged, l.Stragglers, l.Dropped, l.Injected-gone,
			l.Buffered, l.InFlight, l.Buffered+l.InFlight)
	}
	return nil
}

// Ledger captures the current conservation snapshot.
func (n *Network) Ledger() FlitLedger {
	l := FlitLedger{
		Injected: n.flitsInjected,
		Ejected:  n.flitsEjected,
		Dropped:  n.flitsDropped,
	}
	for _, r := range n.routers {
		if r == nil {
			continue // never constructed: never held a flit
		}
		s := r.Stats()
		l.Purged += s.PurgedFlits
		l.Stragglers += s.Stragglers
		l.Buffered += int64(r.BufferedFlits())
	}
	for i := range n.links {
		if n.links[i].busy {
			l.InFlight++
		}
	}
	return l
}

// LastFaultCycle returns the cycle of the most recent fault-timeline
// event applied (fail or repair), or -1 if none has fired. The watchdog
// uses it to decide whether a message's lifetime overlapped a topology
// change.
func (n *Network) LastFaultCycle() int64 { return n.lastFault }

// FaultEventsApplied returns how many failure events (timeline plus
// hazard; repairs excluded) have been applied so far. The degradation
// controller reads it to bound failure density per control window.
func (n *Network) FaultEventsApplied() int64 { return n.failEvents }

// HazardDown returns how many entities the load-coupled hazard process
// currently holds down (0 without a hazard).
func (n *Network) HazardDown() int {
	if n.hazard == nil {
		return 0
	}
	return n.hazard.Down()
}

// HazardCounts returns the hazard process's cumulative failure and
// repair counts (0, 0 without a hazard).
func (n *Network) HazardCounts() (failures, repairs int64) {
	if n.hazard == nil {
		return 0, 0
	}
	return n.hazard.Failures(), n.hazard.Repairs()
}

// Connected reports whether dst is reachable from src over currently-up
// links (BFS). Used by the delivery-obligation check: a message may
// only fail if its endpoints are actually disconnected.
func (n *Network) Connected(src, dst topology.NodeID) bool {
	if src == dst {
		return true
	}
	visited := make([]bool, n.nodes)
	queue := []topology.NodeID{src}
	visited[src] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for p := 0; p < n.deg; p++ {
			l := n.linkAt(int(cur), p)
			if !l.exists || !l.up || visited[l.toNode] {
				continue
			}
			if l.toNode == int32(dst) {
				return true
			}
			visited[l.toNode] = true
			queue = append(queue, topology.NodeID(l.toNode))
		}
	}
	return false
}

// MaxHops returns the largest per-worm hop count any head flit has shown
// while claiming a channel, with the worm that set it — the livelock
// watchdog's raw signal.
func (n *Network) MaxHops() (int, flit.WormID) {
	best, worm := 0, flit.WormID(0)
	for _, r := range n.routers {
		if r == nil {
			continue
		}
		if h, w := r.MaxHops(); h > best {
			best, worm = h, w
		}
	}
	return best, worm
}

// BlockedWormAt is a blocked worm with its router, for the deadlock
// watchdog.
type BlockedWormAt struct {
	Node topology.NodeID
	router.BlockedWorm
}

// BlockedWorms returns every worm whose header has been blocked at
// output allocation for at least min consecutive cycles, in node order.
func (n *Network) BlockedWorms(min int) []BlockedWormAt {
	var out []BlockedWormAt
	var buf []router.BlockedWorm
	for id, r := range n.routers {
		if r == nil {
			continue
		}
		buf = r.BlockedWorms(min, buf[:0])
		for _, b := range buf {
			out = append(out, BlockedWormAt{Node: topology.NodeID(id), BlockedWorm: b})
		}
	}
	return out
}

// MessageFailures returns every abandoned-message record across the
// injectors, in node order (each injector caps its log; the Failed
// counter in InjectorStats is always exact).
func (n *Network) MessageFailures() []core.Failure {
	var out []core.Failure
	for _, in := range n.injectors {
		if in == nil {
			continue
		}
		out = append(out, in.Failures()...)
	}
	return out
}
