package network

import (
	"runtime"
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// TestMillionNodeTorus pins the memory diet: a 1024x1024 torus (2^20
// nodes, 4M links) must construct and step within a modest heap. The
// flat link array is the only per-link cost (~120 B each, ~500 MB
// total); routers, injectors, and receivers are built lazily, so a run
// that touches a corner of the network pays only for that corner. The
// test routes real traffic through a handful of neighborhoods under the
// sharded kernel and then checks both that deliveries happen and that
// the component arrays stayed almost entirely nil.
func TestMillionNodeTorus(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node construction is slow in -short mode")
	}
	const k = 1024
	topo := topology.NewTorus(k, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Shards:   8,
		Seed:     1,
	})
	if n.LinkCount() != k*k*4 {
		t.Fatalf("link count = %d, want %d", n.LinkCount(), k*k*4)
	}

	// A few short-haul conversations scattered across the square: each
	// source talks to a node 3 hops away, so only small neighborhoods
	// ever construct routers.
	pairs := [][2]topology.NodeID{}
	for _, base := range []int{0, 511*k + 511, 1023*k + 1020, 256 * k} {
		src := topology.NodeID(base)
		dst := topology.NodeID((base + 3) % (k * k))
		pairs = append(pairs, [2]topology.NodeID{src, dst})
	}
	var id flit.MessageID
	for _, p := range pairs {
		id++
		n.SubmitMessage(flit.Message{ID: id, Src: p[0], Dst: p[1], DataLen: 4})
	}
	delivered := 0
	for c := 0; c < 400 && delivered < len(pairs); c++ {
		n.Step()
		delivered += len(n.DrainDeliveries())
	}
	if delivered != len(pairs) {
		t.Fatalf("delivered %d of %d messages in 400 cycles", delivered, len(pairs))
	}

	// The diet itself: lazy construction must have left nearly all of
	// the million component slots nil.
	built := 0
	for id := range n.routers {
		if n.routers[id] != nil {
			built++
		}
	}
	if built == 0 || built > 1024 {
		t.Fatalf("constructed %d routers, want a small non-zero neighborhood", built)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(n)       // the network must still be live when measured
	const heapBudget = 2 << 30 // 2 GiB, ~4x the link array
	if ms.HeapAlloc > heapBudget {
		t.Fatalf("heap after million-node run = %d MiB, budget %d MiB",
			ms.HeapAlloc>>20, heapBudget>>20)
	}
	t.Logf("heap after run: %d MiB, routers built: %d", ms.HeapAlloc>>20, built)
}
