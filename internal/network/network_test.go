package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

func crNet(topo topology.Topology) *Network {
	return New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:    true,
	})
}

// runUntilIdle steps until no worms, queues or busy injectors remain.
func runUntilIdle(t *testing.T, n *Network, maxCycles int64) []core.Delivery {
	t.Helper()
	var out []core.Delivery
	for c := int64(0); c < maxCycles; c++ {
		n.Step()
		out = append(out, n.DrainDeliveries()...)
		if n.QueuedMessages() == 0 && n.PendingWorms() == 0 && !anyBusy(n) {
			return out
		}
	}
	t.Fatalf("network not idle after %d cycles: queued=%d worms=%d",
		maxCycles, n.QueuedMessages(), n.PendingWorms())
	return nil
}

func anyBusy(n *Network) bool {
	for id := 0; id < n.topo.Nodes(); id++ {
		// Injectors are constructed lazily; an untouched one is idle.
		if in := n.injectors[id]; in != nil && in.Busy() {
			return true
		}
	}
	return false
}

func TestSingleMessageDelivery(t *testing.T) {
	n := crNet(topology.NewTorus(8, 2))
	m := flit.Message{ID: 1, Src: 0, Dst: 3, DataLen: 4, CreateTime: 0}
	n.SubmitMessage(m)
	ds := runUntilIdle(t, n, 1000)
	if len(ds) != 1 {
		t.Fatalf("%d deliveries, want 1", len(ds))
	}
	d := ds[0]
	if d.Msg != 1 || d.Src != 0 || d.DataLen != 4 || !d.DataOK {
		t.Fatalf("delivery %+v", d)
	}
	// Distance 3, frame = IminCR(3,2)=12 flits: latency should be small.
	if d.Time < 10 || d.Time > 60 {
		t.Fatalf("latency %d cycles out of expected range", d.Time)
	}
	if got := n.InjectorStats().Kills; got != 0 {
		t.Fatalf("unloaded network killed %d worms", got)
	}
}

func TestManyMessagesExactlyOnce(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := crNet(topo)
	want := map[flit.MessageID]topology.NodeID{}
	id := flit.MessageID(1)
	for src := 0; src < topo.Nodes(); src++ {
		for k := 0; k < 6; k++ {
			dst := (src + 1 + k*3) % topo.Nodes()
			if dst == src {
				dst = (dst + 1) % topo.Nodes()
			}
			m := flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 6}
			want[id] = topology.NodeID(dst)
			n.SubmitMessage(m)
			id++
		}
	}
	ds := runUntilIdle(t, n, 100000)
	if len(ds) != len(want) {
		t.Fatalf("%d deliveries, want %d", len(ds), len(want))
	}
	seen := map[flit.MessageID]bool{}
	for _, d := range ds {
		if seen[d.Msg] {
			t.Fatalf("message %d delivered twice", d.Msg)
		}
		seen[d.Msg] = true
		if !d.DataOK {
			t.Fatalf("message %d corrupted", d.Msg)
		}
		if _, ok := want[d.Msg]; !ok {
			t.Fatalf("unknown message %d delivered", d.Msg)
		}
	}
	if n.ReceiverStats().OrderErrors != 0 {
		t.Fatalf("order violations: %d", n.ReceiverStats().OrderErrors)
	}
}

// The compressionless property: when a worm's header is blocked, the
// source can inject at most SlackBound flits before stalling.
func TestCompressionlessSlackBound(t *testing.T) {
	topo := topology.NewTorus(8, 1)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Timeout:  100000, // never kill: we want to observe the stall
		Backoff:  core.Backoff{Kind: core.BackoffStatic, Gap: 8},
		Check:    true,
	})
	// A long worm from node 2 occupies node 0's single ejection channel.
	blocker := flit.Message{ID: 1, Src: 2, Dst: 0, DataLen: 400}
	n.SubmitMessage(blocker)
	n.Run(30) // let it reach the destination and start draining
	// Now node 7 (distance 1 from 0) sends to node 0: its header will
	// block at node 0's busy ejection channel.
	probe := flit.Message{ID: 2, Src: 7, Dst: 0, DataLen: 300}
	n.SubmitMessage(probe)
	n.Run(80)
	st := n.injectors[7].Stats()
	injected := st.DataFlits + st.PadFlits
	// Path = 1 hop: slack = B + 1*(B+1) = 2 + 3 = 5 flits absorbed, plus
	// the flit consumed... none consumed: header never ejected. Allow +1
	// for the flit captured in the destination ejection pipeline? The
	// header waits in node 0's input buffer, so exactly SlackBound fit.
	maxSlack := int64(core.SlackBound(1, 2))
	if injected > maxSlack {
		t.Fatalf("source injected %d flits with blocked header, slack bound is %d", injected, maxSlack)
	}
	if injected == 0 {
		t.Fatal("probe never started injecting")
	}
	if st.StallCycles == 0 {
		t.Fatal("blocked worm produced no source-visible stall")
	}
}

// Fully adaptive routing with no virtual channels and no CR protocol
// deadlocks under heavy load on a torus; the same network with CR always
// makes progress. This is the paper's core claim demonstrated.
func TestAdaptiveWithoutCRDeadlocks(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	build := func(protocol core.Protocol, timeout int) *Network {
		return New(Config{
			Topo:     topo,
			Alg:      routing.MinimalAdaptive{},
			Protocol: protocol,
			Timeout:  timeout,
			Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			Check:    true,
		})
	}
	load := func(n *Network) {
		id := flit.MessageID(1)
		// Dense antipodal permutation traffic with long messages wedges
		// the 1-VC adaptive network quickly.
		for round := 0; round < 8; round++ {
			for src := 0; src < topo.Nodes(); src++ {
				dst := (src + topo.Nodes()/2 + round) % topo.Nodes()
				if dst == src {
					continue
				}
				n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 24})
				id++
			}
		}
	}
	plain := build(core.Plain, 0)
	load(plain)
	plain.Run(8000)
	if plain.CyclesSinceProgress() < 1000 {
		t.Fatalf("plain adaptive network did not deadlock (last progress %d cycles ago)",
			plain.CyclesSinceProgress())
	}

	cr := build(core.CR, 0)
	load(cr)
	deliveries := 0
	for c := 0; c < 400000 && deliveries < int(cr.InjectorStats().Submitted); c++ {
		cr.Step()
		deliveries += len(cr.DrainDeliveries())
		if cr.QueuedMessages() == 0 && cr.PendingWorms() == 0 && !anyBusy(cr) {
			break
		}
		if cr.CyclesSinceProgress() > 5000 {
			t.Fatalf("CR network stalled for %d cycles", cr.CyclesSinceProgress())
		}
	}
	if got := cr.InjectorStats().Submitted; int64(deliveries) != got {
		t.Fatalf("CR delivered %d of %d messages", deliveries, got)
	}
	if cr.InjectorStats().Kills == 0 {
		t.Log("note: CR resolved the load without any kills")
	}
}

func TestDORBaselineDeliversUnderLoad(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.DOR{},
		Protocol: core.Plain,
		BufDepth: 4,
		Check:    true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 6; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src*7 + round*3 + 1) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
	}
	ds := runUntilIdle(t, n, 200000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("DOR delivered %d of %d", len(ds), n.InjectorStats().Submitted)
	}
	if n.InjectorStats().PadFlits != 0 {
		t.Fatal("plain protocol injected padding")
	}
	if n.RouterStats().PDS != 0 {
		t.Fatal("DOR counted PDS")
	}
}

func TestFCRTransientFaultsDeliveredIntact(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.FCR,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		TransientRate: 0.01,
		Seed:          7,
		Check:         true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 10; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + 3 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
	}
	ds := runUntilIdle(t, n, 500000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("FCR delivered %d of %d", len(ds), n.InjectorStats().Submitted)
	}
	for _, d := range ds {
		if !d.DataOK {
			t.Fatalf("FCR delivered corrupt data: %+v", d)
		}
	}
	if n.TransientFaults() == 0 {
		t.Fatal("fault process injected nothing; test is vacuous")
	}
	st := n.InjectorStats()
	if st.LateFKills != 0 {
		t.Fatalf("%d FKILLs arrived after worm completion: padding bound violated", st.LateFKills)
	}
	if st.FKills == 0 && n.ReceiverStats().FKillsSent == 0 && n.RouterStats().HeaderFaults == 0 {
		t.Fatal("faults injected but no FKILL activity observed")
	}
}

func TestCRWithoutFCRDeliversCorruptData(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.CR,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		TransientRate: 0.01,
		Seed:          11,
		Check:         true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 20; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + 5 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
	}
	runUntilIdle(t, n, 500000)
	if n.ReceiverStats().CorruptData == 0 {
		t.Fatal("expected silent corruption under CR without FCR protection")
	}
}

func TestPermanentFaultReroutedWithMisroute(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	var linkList []faults.LinkID
	// Kill node 0's +x link at cycle 40.
	linkList = append(linkList, faults.LinkID{Node: 0, Port: int(topology.PortFor(0, true))})
	n := New(Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.FCR,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		MisrouteAfter: 2,
		MaxDetours:    4,
		Faults:        faults.NewSchedule([]faults.Event{{Cycle: 40, Link: linkList[0]}}),
		Check:         true,
	})
	// Steady stream from node 0 to node 1 (straight over the doomed link).
	for i := 1; i <= 30; i++ {
		n.SubmitMessage(flit.Message{ID: flit.MessageID(i), Src: 0, Dst: 1, DataLen: 8})
	}
	ds := runUntilIdle(t, n, 300000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("delivered %d of %d despite misrouting", len(ds), n.InjectorStats().Submitted)
	}
	for _, d := range ds {
		if !d.DataOK {
			t.Fatalf("corrupt delivery %+v", d)
		}
	}
	if n.InjectorStats().Failed != 0 {
		t.Fatalf("%d messages failed", n.InjectorStats().Failed)
	}
}

func TestDuatoCountsPDS(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.Duato{AdaptiveVCs: 1},
		Protocol: core.Plain,
		Check:    true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 12; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2) % topo.Nodes()
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 16})
			id++
		}
	}
	ds := runUntilIdle(t, n, 300000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("Duato delivered %d of %d", len(ds), n.InjectorStats().Submitted)
	}
	if n.RouterStats().PDS == 0 {
		t.Fatal("antipodal saturation produced no PDS — escape channels never used")
	}
}

func TestMeshAndHypercubeEndToEnd(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.NewMesh(4, 2),
		topology.NewHypercube(4),
	} {
		n := crNet(topo)
		id := flit.MessageID(1)
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
		ds := runUntilIdle(t, n, 200000)
		if int64(len(ds)) != n.InjectorStats().Submitted {
			t.Fatalf("%s: delivered %d of %d", topo.Name(), len(ds), n.InjectorStats().Submitted)
		}
	}
}

func TestMultichannelInterface(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:              topo,
		Alg:               routing.MinimalAdaptive{},
		Protocol:          core.CR,
		InjectionChannels: 2,
		EjectionChannels:  2,
		Backoff:           core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:             true,
	})
	id := flit.MessageID(1)
	for k := 0; k < 40; k++ {
		n.SubmitMessage(flit.Message{ID: id, Src: 0, Dst: topology.NodeID(1 + k%3), DataLen: 8})
		id++
	}
	ds := runUntilIdle(t, n, 100000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("multichannel delivered %d of %d", len(ds), n.InjectorStats().Submitted)
	}
}

func TestDeterministicReplay(t *testing.T) {
	build := func() *Network {
		n := New(Config{
			Topo:          topology.NewTorus(4, 2),
			Alg:           routing.MinimalAdaptive{},
			Protocol:      core.FCR,
			Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			TransientRate: 0.005,
			Seed:          99,
		})
		id := flit.MessageID(1)
		for round := 0; round < 5; round++ {
			for src := 0; src < 16; src++ {
				n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID((src + 7) % 16), DataLen: 8})
				id++
			}
		}
		return n
	}
	a, b := build(), build()
	var da, db []core.Delivery
	for c := 0; c < 20000; c++ {
		a.Step()
		b.Step()
		da = append(da, a.DrainDeliveries()...)
		db = append(db, b.DrainDeliveries()...)
	}
	if len(da) != len(db) {
		t.Fatalf("replays diverged: %d vs %d deliveries", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("delivery %d diverged: %+v vs %+v", i, da[i], db[i])
		}
	}
	if len(da) == 0 {
		t.Fatal("no deliveries; test vacuous")
	}
}

func TestLinksEnumeration(t *testing.T) {
	n := crNet(topology.NewTorus(4, 2))
	links := n.Links()
	if len(links) != 16*4 {
		t.Fatalf("torus 4x4 has %d links, want 64", len(links))
	}
	m := New(Config{Topo: topology.NewMesh(4, 2), Alg: routing.MinimalAdaptive{}, Protocol: core.CR,
		Backoff: core.Backoff{Kind: core.BackoffStatic, Gap: 8}})
	// 4x4 mesh: 2 * 2 * (3*4) = 48 unidirectional links.
	if got := len(m.Links()); got != 48 {
		t.Fatalf("mesh links = %d, want 48", got)
	}
}

func TestConfigDefaultsAndErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil topo accepted")
		}
	}()
	New(Config{})
}
