package network

import (
	"crnet/internal/core"
	"crnet/internal/router"
	"crnet/internal/topology"
)

// Sharded stepping: one simulation partitioned across worker
// goroutines with byte-identical results to the serial kernel
// (see DESIGN.md §10).
//
// The node set is split into contiguous id ranges, one per shard. Each
// phase of the engine.go pipeline runs either serially on the
// coordinator (signals and fault events, whose iteration order is
// queue order rather than node order) or fanned out across the shards
// with a full barrier between phases. Workers touch only state owned
// by their node range — routers, injectors, receivers, output links,
// worklists — and push every cross-node side effect into their own
// sink; the coordinator merges the sinks *in shard order* at each
// barrier. Because shards are contiguous ascending id ranges and every
// phase walks its shard-local worklist ascending, concatenating the
// per-shard queues in shard order reproduces exactly the sequence the
// serial kernel would have appended — which is why results (traces,
// signal queues, delivery streams, stats) are byte-identical for every
// shard count.
//
// Credits are the one cross-shard flow that may target any node, so
// each shard sink carries a per-destination-shard matrix row
// (outCredits); in the credits phase each worker applies column
// [me] of every row to its own routers. Credit application is
// commutative (pure counter increments, read only by the next cycle's
// allocate), so only the multiset matters, and the matrix needs no
// global ordering.

// sink collects the cross-node side effects of one execution context:
// the serial kernel's (embedded in Network) or one shard's. Appends are
// always made by the context that owns the sink; merging into the
// global sink happens only at barriers, on the coordinator.
type sink struct {
	signals    []scheduledSignal
	credits    []creditEvent
	fkills     []fkillReq
	busyLinks  []linkRef
	recvPend   []int32
	deliveries []core.Delivery
	emitBuf    []router.Emit

	// outCredits is the per-destination-shard credit matrix row; nil on
	// the serial sink (credits then go to the flat queue above).
	outCredits [][]creditEvent

	// events buffers trace events when deferred is set (shard sinks):
	// workers cannot call the tracer concurrently, so they record and
	// the coordinator replays in shard order at the barrier.
	events   []Event
	deferred bool

	// moved reports switch-transmission progress for this context's
	// transmit phase; ORed into the cycle's progress flag.
	moved bool

	killsDropped  int64
	flitsInjected int64
	flitsEjected  int64
}

// reset empties the sink's queues and counters, keeping capacity.
func (s *sink) reset() {
	s.signals = s.signals[:0]
	s.credits = s.credits[:0]
	s.fkills = s.fkills[:0]
	s.busyLinks = s.busyLinks[:0]
	s.recvPend = s.recvPend[:0]
	s.deliveries = s.deliveries[:0]
	s.emitBuf = s.emitBuf[:0]
	for i := range s.outCredits {
		s.outCredits[i] = s.outCredits[i][:0]
	}
	s.events = s.events[:0]
	s.moved = false
	s.killsDropped, s.flitsInjected, s.flitsEjected = 0, 0, 0
}

// shard owns the contiguous node range [lo, hi): those nodes'
// routers/injectors/receivers, their output links, and the shard-local
// activity worklists.
type shard struct {
	sink
	lo, hi int32

	activeR nodeSet // this shard's routers with buffered flits
	activeI nodeSet // this shard's injectors with pending work

	// arrivals is this cycle's bucket of busy links whose flit lands in
	// this shard, filled by the coordinator's arrivals prepass in
	// global (node, port) order.
	arrivals []linkRef
}

func (sh *shard) reset() {
	sh.sink.reset()
	sh.activeR.reset()
	sh.activeI.reset()
	sh.arrivals = sh.arrivals[:0]
}

// initShards builds the shard partition. s <= 1 selects the serial
// kernel (no shards); s is clamped to the node count. The first
// (nodes mod s) shards are one node larger, so every shard count —
// dividing the node count or not — yields a total, contiguous,
// ascending partition.
func (n *Network) initShards(s int) {
	if s <= 1 {
		return
	}
	if s > n.nodes {
		s = n.nodes
	}
	n.shards = make([]shard, s)
	n.nodeShard = make([]int32, n.nodes)
	per, rem := n.nodes/s, n.nodes%s
	lo := 0
	for i := range n.shards {
		size := per
		if i < rem {
			size++
		}
		sh := &n.shards[i]
		sh.lo, sh.hi = int32(lo), int32(lo+size)
		sh.activeR = newNodeSet(n.nodes)
		sh.activeI = newNodeSet(n.nodes)
		sh.outCredits = make([][]creditEvent, s)
		sh.deferred = true
		for id := lo; id < lo+size; id++ {
			n.nodeShard[id] = int32(i)
		}
		lo += size
	}
}

// sinkFor returns the sink owning node's side effects: the node's
// shard sink when sharded, the serial sink otherwise. In parallel
// phases the executing worker is always node's owner, so the returned
// sink is safe to append to without synchronization.
func (n *Network) sinkFor(node topology.NodeID) *sink {
	if n.shards == nil {
		return &n.sink
	}
	return &n.shards[n.nodeShard[node]].sink
}

// pushCredit queues one deferred credit refund toward (node, port, vc).
// On a shard sink the refund is filed in the matrix row under the
// *destination* node's shard; on the serial sink it goes to the flat
// queue applied at the top of the credits phase.
func (n *Network) pushCredit(sk *sink, node topology.NodeID, port, vc, cnt int) {
	n.pushCreditEv(sk, creditEvent{node: int32(node), port: int16(port), vc: uint8(vc), n: int32(cnt)})
}

// pushCreditEv queues a fully formed credit event (plain refunds and/or
// a window-advertisement delta) through the same routing as pushCredit.
//
//cr:hotpath credit queueing on every flit move and window advertisement
func (n *Network) pushCreditEv(sk *sink, ev creditEvent) {
	if sk.outCredits != nil {
		d := n.nodeShard[ev.node]
		sk.outCredits[d] = append(sk.outCredits[d], ev)
		return
	}
	sk.credits = append(sk.credits, ev)
}

// shardPhase selects the worker body in forkJoin.
type shardPhase uint8

const (
	spArrivals shardPhase = iota
	spInjectors
	spAllocate
	spTransmit
	spFKills
	spCredits
)

// forkJoin runs one parallel phase: every shard's body on its own
// goroutine, full barrier before returning. Goroutines are per-phase
// rather than long-lived so the Network needs no Close and an idle
// network holds no threads; the spawn cost is far below one phase's
// work at the sizes where sharding is worth enabling.
func (n *Network) forkJoin(ph shardPhase) {
	n.wg.Add(len(n.shards))
	for i := range n.shards {
		go n.shardWorker(i, ph)
	}
	n.wg.Wait()
}

func (n *Network) shardWorker(i int, ph shardPhase) {
	defer n.wg.Done()
	sh := &n.shards[i]
	switch ph {
	case spArrivals:
		n.shardArrivals(sh)
	case spInjectors:
		n.shardInjectors(sh)
	case spAllocate:
		n.shardAllocate(sh)
	case spTransmit:
		n.shardTransmit(sh)
	case spFKills:
		n.shardFKills(sh)
	case spCredits:
		n.shardCredits(sh, int32(i))
	}
}

// mergeBarrier drains every shard sink into the global one, in shard
// order. Shards are contiguous ascending node ranges and each phase
// body iterates ascending, so this concatenation reproduces the exact
// append order of the serial kernel; buffered trace events replay the
// same way.
func (n *Network) mergeBarrier() {
	for i := range n.shards {
		sh := &n.shards[i]
		for _, ev := range sh.events {
			n.tracer(ev)
		}
		sh.events = sh.events[:0]
		if len(sh.signals) > 0 {
			n.signals = append(n.signals, sh.signals...)
			sh.signals = sh.signals[:0]
		}
		if len(sh.deliveries) > 0 {
			n.deliveries = append(n.deliveries, sh.deliveries...)
			sh.deliveries = sh.deliveries[:0]
		}
		if len(sh.credits) > 0 {
			// Shard sinks file credits in the matrix, so this queue is
			// normally empty; merged defensively to keep the invariant
			// "every queued credit is applied this cycle".
			n.credits = append(n.credits, sh.credits...)
			sh.credits = sh.credits[:0]
		}
	}
}

// stepSharded is Step's sharded twin: the same eight phases in the
// same order, with the node-ordered phases fanned out and a barrier
// (plus sink merge) between phases. Signals and fault events stay on
// the coordinator — their iteration order is queue order, which no
// spatial partition preserves — as does the arrivals prepass, which
// must draw the corruption RNG in global link order.
func (n *Network) stepSharded() {
	n.phaseSignals()
	any := n.prepassArrivals()
	n.forkJoin(spArrivals)
	n.phaseFaultEvents()
	n.forkJoin(spInjectors)
	n.mergeBarrier()
	n.forkJoin(spAllocate)
	n.mergeBarrier()
	n.forkJoin(spTransmit)
	n.mergeBarrier()
	moved := false
	for i := range n.shards {
		if n.shards[i].moved {
			moved = true
			n.shards[i].moved = false
		}
	}
	n.forkJoin(spFKills)
	n.mergeBarrier()
	n.applyGlobalCredits()
	n.forkJoin(spCredits)
	n.mergeBarrier()
	for i := range n.shards {
		sh := &n.shards[i]
		n.sink.killsDropped += sh.killsDropped
		n.sink.flitsInjected += sh.flitsInjected
		n.sink.flitsEjected += sh.flitsEjected
		sh.killsDropped, sh.flitsInjected, sh.flitsEjected = 0, 0, 0
	}
	n.finishStep(any || moved)
}

// prepassArrivals is the serial half of the sharded arrivals phase: it
// walks every shard's busy-link worklist in shard order (= the serial
// kernel's append order), clears link occupancy, applies drops and the
// corruption process (whose RNG stream must be drawn in global link
// order), emits the arrival traces, and buckets each surviving flit's
// link ref under the *downstream* node's shard for the parallel apply.
//
//cr:hotpath serial half of the sharded arrivals phase
func (n *Network) prepassArrivals() bool {
	any := false
	for si := range n.shards {
		sh := &n.shards[si]
		for _, ref := range sh.busyLinks {
			l := n.linkAt(int(ref.node), int(ref.port))
			if !l.busy {
				continue // dropped by a fault after launch
			}
			any = true
			l.busy = false
			if !l.up {
				n.flitsDropped++
				continue
			}
			if n.corrupter.Apply(&l.f) {
				n.flitsDegraded++
				n.trace(EvCorrupt, topology.NodeID(l.toNode), int(l.toPort), int(l.vc), l.f.Worm, l.f.Seq)
			}
			n.trace(EvArrive, topology.NodeID(l.toNode), int(l.toPort), int(l.vc), l.f.Worm, l.f.Seq)
			dst := &n.shards[n.nodeShard[l.toNode]]
			dst.arrivals = append(dst.arrivals, ref)
		}
		sh.busyLinks = sh.busyLinks[:0]
	}
	return any
}

// shardArrivals applies this shard's bucketed arrivals: hand each flit
// to its (owned) downstream router, refund straggler credits upstream
// through the matrix, and activate the router.
//
//cr:hotpath parallel half of the sharded arrivals phase
func (n *Network) shardArrivals(sh *shard) {
	sk := &sh.sink
	for _, ref := range sh.arrivals {
		l := n.linkAt(int(ref.node), int(ref.port))
		if n.routerAt(topology.NodeID(l.toNode)).AcceptFlit(int(l.toPort), int(l.vc), l.f) {
			n.pushCredit(sk, topology.NodeID(ref.node), int(ref.port), int(l.vc), 1)
		}
		sh.activeR.add(l.toNode)
	}
	sh.arrivals = sh.arrivals[:0]
}

// shardInjectors is phaseInjectors over this shard's worklist.
//
//cr:hotpath sharded injectors phase body
func (n *Network) shardInjectors(sh *shard) {
	sh.activeI.prepare()
	kept := sh.activeI.ids[:0]
	for _, id := range sh.activeI.ids {
		in := n.injectors[id]
		in.Tick(n.cycle)
		if in.Busy() || in.QueueLen() > 0 {
			kept = append(kept, id)
		} else {
			sh.activeI.drop(id)
		}
	}
	sh.activeI.ids = kept
}

// shardAllocate is phaseAllocate over this shard's worklist.
//
//cr:hotpath sharded allocate phase body
func (n *Network) shardAllocate(sh *shard) {
	sk := &sh.sink
	sh.activeR.prepare()
	for _, id := range sh.activeR.ids {
		r := n.routers[id]
		sk.emitBuf = r.RouteAndAllocate(sk.emitBuf[:0])
		if len(sk.emitBuf) > 0 {
			n.routeEmits(sk, topology.NodeID(id), sk.emitBuf)
		}
	}
}

// shardTransmit is phaseTransmit over this shard's worklist.
//
//cr:hotpath sharded transmit phase body
func (n *Network) shardTransmit(sh *shard) {
	sk := &sh.sink
	kept := sh.activeR.ids[:0]
	for _, id := range sh.activeR.ids {
		if n.transmitRouter(sk, int(id)) {
			sk.moved = true
		}
		if n.routers[id].Busy() {
			kept = append(kept, id)
		} else {
			sh.activeR.drop(id)
		}
	}
	sh.activeR.ids = kept
}

// shardFKills is phaseFKills over this shard's queue. FKill requests
// are filed at the receiver's own node, so the queue already contains
// only owned nodes and — being appended during the ascending transmit
// walk — is already in serial order.
//
//cr:hotpath sharded fkills phase body
func (n *Network) shardFKills(sh *shard) {
	if len(sh.fkills) == 0 {
		return
	}
	sk := &sh.sink
	reqs := sh.fkills
	sh.fkills = sh.fkills[:0]
	for _, req := range reqs {
		r := n.routers[req.node]
		sig := router.Signal{Kind: router.KillBwd, Port: r.EjPort(req.ch), VC: 0, Worm: req.worm}
		sk.emitBuf = r.ApplySignal(sig, sk.emitBuf[:0])
		n.routeEmits(sk, req.node, sk.emitBuf)
	}
}

// applyGlobalCredits serially applies the coordinator-accumulated
// credit queue (from the serial phases: signal delivery and fault
// sweeps) before the parallel matrix application; order does not
// matter — credits are commutative within a cycle — but these may
// target any node, so they cannot be applied from a worker.
//
//cr:hotpath serial half of the sharded credits phase
func (n *Network) applyGlobalCredits() {
	for _, c := range n.credits {
		n.routerAt(topology.NodeID(c.node)).ApplyCredit(int(c.port), int(c.vc), int(c.n), int(c.w))
	}
	n.credits = n.credits[:0]
}

// shardCredits applies column [me] of every shard's credit matrix to
// this shard's routers, then drains this shard's accepting receivers
// (ascending node order within the shard, matching the serial drain).
//
//cr:hotpath sharded credits phase body
func (n *Network) shardCredits(sh *shard, me int32) {
	sk := &sh.sink
	for si := range n.shards {
		cell := n.shards[si].outCredits[me]
		for _, c := range cell {
			n.routers[c.node].ApplyCredit(int(c.port), int(c.vc), int(c.n), int(c.w))
		}
		n.shards[si].outCredits[me] = cell[:0]
	}
	for _, id := range sk.recvPend {
		n.recvMark[id] = false //cr:sharded recvMark[id] belongs to the shard that owns node id
		n.drainReceiver(sk, int(id), n.receivers[id])
	}
	sk.recvPend = sk.recvPend[:0]
}
