package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// Path-wide timeout: routers themselves kill blocked worms and the
// sources retransmit; everything still arrives exactly once.
func TestRouterTimeoutPathWideScheme(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.CR,
		Timeout:       1 << 20, // effectively disable the source scheme
		RouterTimeout: 16,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:         true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 10; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 16})
			id++
		}
	}
	ds := runUntilIdle(t, n, 400000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("path-wide delivered %d of %d", len(ds), n.InjectorStats().Submitted)
	}
	if n.RouterStats().RouterKills == 0 {
		t.Fatal("path-wide scheme never fired under saturating load")
	}
	if n.InjectorStats().Kills != 0 {
		t.Fatal("source-based timeout fired despite being disabled")
	}
	seen := map[flit.MessageID]bool{}
	for _, d := range ds {
		if seen[d.Msg] {
			t.Fatalf("message %d delivered twice", d.Msg)
		}
		seen[d.Msg] = true
	}
}

func TestRouterTimeoutRejectsPlainProtocol(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RouterTimeout with Plain protocol accepted")
		}
	}()
	New(Config{
		Topo:          topology.NewTorus(4, 2),
		Alg:           routing.DOR{},
		Protocol:      core.Plain,
		RouterTimeout: 16,
	})
}

// West-first turn-model routing is deadlock-free on the mesh with a
// plain protocol (no CR support needed) under saturating load.
func TestWestFirstMeshDeliversUnderLoad(t *testing.T) {
	topo := topology.NewMesh(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.WestFirst{},
		Protocol: core.Plain,
		BufDepth: 2,
		Check:    true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 10; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src*5 + round + 1) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 12})
			id++
		}
	}
	ds := runUntilIdle(t, n, 300000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("west-first delivered %d of %d", len(ds), n.InjectorStats().Submitted)
	}
	if n.RouterStats().KillsFwd+n.RouterStats().KillsBwd != 0 {
		t.Fatal("turn-model run used tear-downs")
	}
}

// Bimodal message lengths flow end to end: both populations delivered.
func TestBimodalLengthsEndToEnd(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:    true,
	})
	id := flit.MessageID(1)
	shorts, longs := 0, 0
	for round := 0; round < 8; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + 5 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			length := 4
			if (int(id) % 4) == 0 {
				length = 48
				longs++
			} else {
				shorts++
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: length})
			id++
		}
	}
	ds := runUntilIdle(t, n, 400000)
	gotShort, gotLong := 0, 0
	for _, d := range ds {
		switch d.DataLen {
		case 4:
			gotShort++
		case 48:
			gotLong++
		default:
			t.Fatalf("unexpected delivered length %d", d.DataLen)
		}
	}
	if gotShort != shorts || gotLong != longs {
		t.Fatalf("delivered %d/%d short, %d/%d long", gotShort, shorts, gotLong, longs)
	}
}

// CR on an arbitrary irregular graph — the paper's topology-generality
// claim: the protocol needs only distances and minimal ports.
func TestIrregularTopologyCR(t *testing.T) {
	topo := topology.MustIrregular("pentagon+", 6, []topology.Edge{
		{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 4}, {A: 4, B: 0},
		{A: 5, B: 0}, {A: 5, B: 2},
	})
	n := New(Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.FCR,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		TransientRate: 1e-3,
		Check:         true,
	})
	id := flit.MessageID(1)
	for round := 0; round < 20; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + 1 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 8})
			id++
		}
	}
	ds := runUntilIdle(t, n, 300000)
	if int64(len(ds)) != n.InjectorStats().Submitted {
		t.Fatalf("irregular graph delivered %d of %d", len(ds), n.InjectorStats().Submitted)
	}
	for _, d := range ds {
		if !d.DataOK {
			t.Fatalf("corrupt delivery on irregular graph: %+v", d)
		}
	}
	if n.InjectorStats().LateFKills != 0 {
		t.Fatal("padding bound violated on irregular graph")
	}
}

// Link loads must account exactly for the network-link hops of delivered
// traffic on an otherwise idle network.
func TestLinkLoadsAccounting(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := crNet(topo)
	m := flit.Message{ID: 1, Src: 0, Dst: 2, DataLen: 4} // distance 2
	n.SubmitMessage(m)
	runUntilIdle(t, n, 2000)
	frameLen := int64(core.IminCR(2, 2))
	var total int64
	busiest := int64(0)
	for _, ll := range n.LinkLoads() {
		if !ll.Up {
			t.Fatal("link reported down")
		}
		total += ll.Flits
		if ll.Flits > busiest {
			busiest = ll.Flits
		}
	}
	if total != 2*frameLen {
		t.Fatalf("total link flits = %d, want %d (frame x 2 hops)", total, 2*frameLen)
	}
	if busiest != frameLen {
		t.Fatalf("busiest link carried %d, want %d", busiest, frameLen)
	}
}

// The compressionless property, parametrically: for every (distance,
// buffer depth), a worm whose header is blocked at its destination can
// absorb at most core.SlackBound(dist, depth) flits of source injection.
// This is the lemma CR's padding and commit rules are derived from; the
// simulator must honor it exactly.
func TestCompressionlessSlackBoundParametric(t *testing.T) {
	for _, depth := range []int{1, 2, 3} {
		for _, dist := range []int{1, 2, 3} {
			topo := topology.NewTorus(8, 1)
			n := New(Config{
				Topo:     topo,
				Alg:      routing.MinimalAdaptive{},
				Protocol: core.CR,
				BufDepth: depth,
				Timeout:  1 << 20, // never kill; we observe the stall
				Backoff:  core.Backoff{Kind: core.BackoffStatic, Gap: 8},
				Check:    true,
			})
			// A long blocker occupies node 0's ejection channel.
			n.SubmitMessage(flit.Message{ID: 1, Src: 4, Dst: 0, DataLen: 600})
			n.Run(60) // blocker reaches node 0 and starts draining
			// The probe from `dist` hops away blocks behind it.
			src := topology.NodeID(8 - dist)
			n.SubmitMessage(flit.Message{ID: 2, Src: src, Dst: 0, DataLen: 500})
			n.Run(120)
			st := n.Injector(src).Stats()
			injected := st.DataFlits + st.PadFlits
			bound := int64(core.SlackBound(dist, depth))
			if injected > bound {
				t.Errorf("dist=%d depth=%d: injected %d flits with blocked header, bound %d",
					dist, depth, injected, bound)
			}
			if injected < bound {
				// The bound must also be achievable: the worm should
				// fill all the slack before stalling.
				t.Errorf("dist=%d depth=%d: injected only %d flits, slack %d not filled",
					dist, depth, injected, bound)
			}
		}
	}
}
