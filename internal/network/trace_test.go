package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

func TestTracerEventLifecycle(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:    true,
	})
	var events []Event
	n.SetTracer(func(e Event) { events = append(events, e) })
	m := flit.Message{ID: 1, Src: 0, Dst: 3, DataLen: 4}
	n.SubmitMessage(m)
	ds := runUntilIdle(t, n, 2000)
	if len(ds) != 1 {
		t.Fatalf("deliveries = %d", len(ds))
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		if e.Worm.Message() != 1 {
			t.Fatalf("event for unknown message: %v", e)
		}
		kinds[e.Kind]++
	}
	dist := topo.Distance(0, 3) // 1 hop: (3,0) is a wraparound neighbor of (0,0)
	frameLen := core.IminCR(dist, 2)
	if kinds[EvInject] != frameLen {
		t.Fatalf("inject events = %d, want %d", kinds[EvInject], frameLen)
	}
	// Every flit crosses dist links and ejects once.
	if kinds[EvArrive] != dist*frameLen {
		t.Fatalf("arrive events = %d, want %d", kinds[EvArrive], dist*frameLen)
	}
	if kinds[EvEject] != frameLen {
		t.Fatalf("eject events = %d, want %d", kinds[EvEject], frameLen)
	}
	if kinds[EvDeliver] != 1 {
		t.Fatalf("deliver events = %d", kinds[EvDeliver])
	}
	if kinds[EvKill]+kinds[EvFKill]+kinds[EvCorrupt]+kinds[EvDiscard] != 0 {
		t.Fatalf("unexpected protocol events on an idle network: %v", kinds)
	}
	// Timeline ordering: first event is the head injection, last is the
	// delivery.
	if events[0].Kind != EvInject || events[0].Seq != 0 {
		t.Fatalf("first event %v", events[0])
	}
	if events[len(events)-1].Kind != EvDeliver {
		t.Fatalf("last event %v", events[len(events)-1])
	}
	prev := int64(-1)
	for _, e := range events {
		if e.Cycle < prev {
			t.Fatal("events out of cycle order")
		}
		prev = e.Cycle
	}
}

func TestTracerSeesKillsUnderContention(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Timeout:  8,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
	})
	kills := 0
	n.SetTracer(func(e Event) {
		if e.Kind == EvKill {
			kills++
		}
	})
	id := flit.MessageID(1)
	for round := 0; round < 6; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2) % topo.Nodes()
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 16})
			id++
		}
	}
	runUntilIdle(t, n, 200000)
	if kills == 0 {
		t.Fatal("no kill events traced under saturating antipodal load")
	}
}

// TestTracerPerWormOrderingUnderLoad drives a saturating antipodal
// load (kills and retransmissions happening) and checks every worm's
// event stream individually against the lifecycle state machine:
// each flit is injected before it arrives anywhere, arrives before it
// ejects, the head leads the worm, a delivery is an attempt's final
// event, and no attempt both dies (KILL/discard) and delivers.
func TestTracerPerWormOrderingUnderLoad(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Timeout:  8,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
	})
	perWorm := map[flit.WormID][]Event{}
	n.SetTracer(func(e Event) { perWorm[e.Worm] = append(perWorm[e.Worm], e) })
	id := flit.MessageID(1)
	for round := 0; round < 6; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2) % topo.Nodes()
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 16})
			id++
		}
	}
	ds := runUntilIdle(t, n, 200000)
	if len(ds) == 0 || n.InjectorStats().Kills == 0 {
		t.Fatalf("need deliveries AND kills to exercise the lifecycle: %d deliveries, %d kills",
			len(ds), n.InjectorStats().Kills)
	}
	killedAttempts := 0
	for worm, evs := range perWorm {
		injected := map[int]bool{} // seq -> seen EvInject
		arrived := map[int]bool{}
		delivered, dead := false, false
		prev := int64(-1)
		for _, e := range evs {
			if e.Cycle < prev {
				t.Fatalf("worm %v: events out of cycle order", worm)
			}
			prev = e.Cycle
			if delivered {
				t.Fatalf("worm %v: %v after delivery", worm, e)
			}
			switch e.Kind {
			case EvInject:
				if e.Seq != 0 && !injected[0] {
					t.Fatalf("worm %v: flit %d injected before the head", worm, e.Seq)
				}
				if injected[e.Seq] {
					t.Fatalf("worm %v: flit %d injected twice", worm, e.Seq)
				}
				injected[e.Seq] = true
			case EvArrive, EvCorrupt:
				if !injected[e.Seq] {
					t.Fatalf("worm %v: flit %d at a router input before injection", worm, e.Seq)
				}
				arrived[e.Seq] = true
			case EvEject:
				if !injected[e.Seq] {
					t.Fatalf("worm %v: flit %d ejected before injection", worm, e.Seq)
				}
				if e.Seq != 0 && !arrived[0] {
					t.Fatalf("worm %v: body flit %d ejected but the head never reached a router input", worm, e.Seq)
				}
			case EvDeliver:
				if dead {
					t.Fatalf("worm %v: delivered after KILL/discard", worm)
				}
				if !injected[0] {
					t.Fatalf("worm %v: delivered without injecting a head", worm)
				}
				delivered = true
			case EvKill, EvDiscard:
				dead = true
			}
		}
		if dead && !delivered {
			killedAttempts++
		}
	}
	if killedAttempts == 0 {
		t.Fatal("kills reported by the injector but no attempt's event stream shows one")
	}
}

func TestTracerOffByDefaultAndRemovable(t *testing.T) {
	n := crNet(topology.NewTorus(4, 2))
	calls := 0
	n.SetTracer(func(Event) { calls++ })
	n.SubmitMessage(flit.Message{ID: 1, Src: 0, Dst: 1, DataLen: 2})
	n.Run(5)
	if calls == 0 {
		t.Fatal("tracer installed but never called")
	}
	n.SetTracer(nil)
	before := calls
	n.Run(20)
	if calls != before {
		t.Fatal("tracer called after removal")
	}
}

func TestEventStringAndKinds(t *testing.T) {
	e := Event{Cycle: 7, Kind: EvKill, Node: 3, Port: 1, VC: 0, Worm: flit.MakeWormID(9, 2), Seq: -1}
	s := e.String()
	if s == "" || EventKind(200).String() == "" {
		t.Fatal("event strings empty")
	}
	for k := EvInject; k <= EvLinkDown; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}
