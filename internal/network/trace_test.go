package network

import (
	"testing"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

func TestTracerEventLifecycle(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:    true,
	})
	var events []Event
	n.SetTracer(func(e Event) { events = append(events, e) })
	m := flit.Message{ID: 1, Src: 0, Dst: 3, DataLen: 4}
	n.SubmitMessage(m)
	ds := runUntilIdle(t, n, 2000)
	if len(ds) != 1 {
		t.Fatalf("deliveries = %d", len(ds))
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		if e.Worm.Message() != 1 {
			t.Fatalf("event for unknown message: %v", e)
		}
		kinds[e.Kind]++
	}
	dist := topo.Distance(0, 3) // 1 hop: (3,0) is a wraparound neighbor of (0,0)
	frameLen := core.IminCR(dist, 2)
	if kinds[EvInject] != frameLen {
		t.Fatalf("inject events = %d, want %d", kinds[EvInject], frameLen)
	}
	// Every flit crosses dist links and ejects once.
	if kinds[EvArrive] != dist*frameLen {
		t.Fatalf("arrive events = %d, want %d", kinds[EvArrive], dist*frameLen)
	}
	if kinds[EvEject] != frameLen {
		t.Fatalf("eject events = %d, want %d", kinds[EvEject], frameLen)
	}
	if kinds[EvDeliver] != 1 {
		t.Fatalf("deliver events = %d", kinds[EvDeliver])
	}
	if kinds[EvKill]+kinds[EvFKill]+kinds[EvCorrupt]+kinds[EvDiscard] != 0 {
		t.Fatalf("unexpected protocol events on an idle network: %v", kinds)
	}
	// Timeline ordering: first event is the head injection, last is the
	// delivery.
	if events[0].Kind != EvInject || events[0].Seq != 0 {
		t.Fatalf("first event %v", events[0])
	}
	if events[len(events)-1].Kind != EvDeliver {
		t.Fatalf("last event %v", events[len(events)-1])
	}
	prev := int64(-1)
	for _, e := range events {
		if e.Cycle < prev {
			t.Fatal("events out of cycle order")
		}
		prev = e.Cycle
	}
}

func TestTracerSeesKillsUnderContention(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := New(Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: core.CR,
		Timeout:  8,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
	})
	kills := 0
	n.SetTracer(func(e Event) {
		if e.Kind == EvKill {
			kills++
		}
	})
	id := flit.MessageID(1)
	for round := 0; round < 6; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2) % topo.Nodes()
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 16})
			id++
		}
	}
	runUntilIdle(t, n, 200000)
	if kills == 0 {
		t.Fatal("no kill events traced under saturating antipodal load")
	}
}

func TestTracerOffByDefaultAndRemovable(t *testing.T) {
	n := crNet(topology.NewTorus(4, 2))
	calls := 0
	n.SetTracer(func(Event) { calls++ })
	n.SubmitMessage(flit.Message{ID: 1, Src: 0, Dst: 1, DataLen: 2})
	n.Run(5)
	if calls == 0 {
		t.Fatal("tracer installed but never called")
	}
	n.SetTracer(nil)
	before := calls
	n.Run(20)
	if calls != before {
		t.Fatal("tracer called after removal")
	}
}

func TestEventStringAndKinds(t *testing.T) {
	e := Event{Cycle: 7, Kind: EvKill, Node: 3, Port: 1, VC: 0, Worm: flit.MakeWormID(9, 2), Seq: -1}
	s := e.String()
	if s == "" || EventKind(200).String() == "" {
		t.Fatal("event strings empty")
	}
	for k := EvInject; k <= EvLinkDown; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}
