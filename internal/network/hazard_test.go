package network

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"crnet/internal/faults"
	"crnet/internal/snapshot"
)

// hazardCfg is snapCfg plus the load-coupled failure process, tuned so
// a few-thousand-cycle run sees both hazard failures and repairs.
func hazardCfg() Config {
	cfg := snapCfg()
	cfg.Hazard = &faults.HazardSpec{
		LinkLambda0: 2e-5,
		NodeLambda0: 2e-6,
		Alpha:       4,
		LinkMTTR:    200,
		NodeMTTR:    200,
		EvalEvery:   32,
		Seed:        21,
	}
	return cfg
}

// TestResumeWithHazardByteIdentical extends the resume pin to the
// load-coupled failure process: checkpoint mid-run with hazard-downed
// entities and live thinning streams, restore into a fresh network, and
// the continuation must match an unbroken run byte for byte. The name
// matches the `make snapshot-pin` filter.
func TestResumeWithHazardByteIdentical(t *testing.T) {
	const K, M = 1000, 4000

	ref := New(hazardCfg())
	var refLog []string
	snapRun(ref, M, &refLog)
	var refFinal snapshot.Encoder
	ref.SaveState(&refFinal)

	fails, repairs := ref.HazardCounts()
	if fails == 0 || repairs == 0 {
		t.Fatalf("hazard inert over %d cycles (failures=%d repairs=%d); test is vacuous", M, fails, repairs)
	}

	first := New(hazardCfg())
	var log []string
	snapRun(first, K, &log)
	var ckpt snapshot.Encoder
	first.SaveState(&ckpt)

	resumed := New(hazardCfg())
	if err := resumed.LoadState(snapshot.NewDecoder(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	snapRun(resumed, M, &log)
	var resumedFinal snapshot.Encoder
	resumed.SaveState(&resumedFinal)

	if len(log) != len(refLog) {
		t.Fatalf("resumed run delivered %d messages, unbroken %d", len(log), len(refLog))
	}
	for i := range refLog {
		if log[i] != refLog[i] {
			t.Fatalf("delivery %d diverged:\n  unbroken: %s\n  resumed:  %s", i, refLog[i], log[i])
		}
	}
	if !bytes.Equal(refFinal.Bytes(), resumedFinal.Bytes()) {
		t.Fatal("final states differ after hazard resume")
	}
	rf, rr := resumed.HazardCounts()
	if rf != fails || rr != repairs {
		t.Fatalf("hazard counters diverged: resumed %d/%d, unbroken %d/%d", rf, rr, fails, repairs)
	}
}

// TestHazardNetworkDeterminism: two networks from the same config see
// the identical composite fault process, and Reset replays it.
func TestHazardNetworkDeterminism(t *testing.T) {
	const M = 3000
	a, b := New(hazardCfg()), New(hazardCfg())
	var logA, logB []string
	snapRun(a, M, &logA)
	snapRun(b, M, &logB)
	var sa, sb snapshot.Encoder
	a.SaveState(&sa)
	b.SaveState(&sb)
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatal("identical configs diverged under hazard")
	}
	if a.FaultEventsApplied() == 0 {
		t.Fatal("no fault events applied; test is vacuous")
	}

	a.Reset()
	var logC []string
	snapRun(a, M, &logC)
	var sc snapshot.Encoder
	a.SaveState(&sc)
	if !bytes.Equal(sa.Bytes(), sc.Bytes()) {
		t.Fatal("reset network diverged from its first hazard run")
	}
}

// TestHazardFingerprintCoversSpec: differing hazard specs must not be
// checkpoint-interchangeable.
func TestHazardFingerprintCoversSpec(t *testing.T) {
	plain := New(snapCfg())
	hz := New(hazardCfg())
	if plain.ConfigFingerprint() == hz.ConfigFingerprint() {
		t.Fatal("fingerprint ignores the hazard spec")
	}
	other := hazardCfg()
	other.Hazard.Alpha++
	if New(other).ConfigFingerprint() == hz.ConfigFingerprint() {
		t.Fatal("fingerprint ignores hazard parameters")
	}
}

// stuckMonitor latches the network unhealthy at a fixed cycle.
type stuckMonitor struct{ at int64 }

func (m stuckMonitor) AfterStep(n *Network) error {
	if n.Cycle() >= m.at {
		return errors.New("synthetic violation for latch tests")
	}
	return nil
}

func latchedNetwork(t *testing.T) *Network {
	t.Helper()
	n := New(snapCfg())
	n.SetMonitor(stuckMonitor{at: 50})
	for i := 0; i < 60; i++ {
		n.Step()
	}
	if n.Health() == nil {
		t.Fatal("monitor failed to latch")
	}
	return n
}

// TestResetRefusesLatchedHealth: satellite requirement — a network
// latched unhealthy must not silently report healthy after reuse. Reset
// panics until the violation is acknowledged via ClearHealth.
func TestResetRefusesLatchedHealth(t *testing.T) {
	n := latchedNetwork(t)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Reset on a latched-unhealthy network did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "ClearHealth") {
				t.Fatalf("panic message does not point at ClearHealth: %v", r)
			}
		}()
		n.Reset()
	}()

	if err := n.ClearHealth(); err == nil {
		t.Fatal("ClearHealth returned nil on a latched network")
	}
	if n.Health() != nil {
		t.Fatal("ClearHealth did not clear the latch")
	}
	n.Reset() // must not panic now

	var a, b snapshot.Encoder
	n.SaveState(&a)
	// The monitor is a runtime attachment; mirror it on the fresh net.
	fresh := New(snapCfg())
	fresh.SetMonitor(stuckMonitor{at: 50})
	fresh.SaveState(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("acknowledged reset differs from fresh construction")
	}
}

// TestRestorePreservesHealthLatch: the latch travels through snapshots —
// restoring a checkpoint of an unhealthy network yields an unhealthy
// network, and Reset on it still refuses.
func TestRestorePreservesHealthLatch(t *testing.T) {
	n := latchedNetwork(t)
	var ckpt snapshot.Encoder
	n.SaveState(&ckpt)

	restored := New(snapCfg())
	if err := restored.LoadState(snapshot.NewDecoder(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Health() == nil {
		t.Fatal("restore dropped the health latch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset after restoring a latched snapshot did not panic")
		}
	}()
	restored.Reset()
}
