// Package network assembles a complete simulated machine: one wormhole
// router per node, CR/FCR injector and receiver engines in each node
// interface, the links between routers, fault injection, and the global
// deterministic cycle loop.
//
// Per-cycle phase order (all iteration in ascending node/port order):
//
//  1. Out-of-band KILL/FKILL signals scheduled for this cycle (before
//     arrivals, so a chasing kill clears a channel before a successor
//     worm's head can land on it).
//  2. Link arrivals from the previous cycle (transient faults applied).
//  3. Fault-timeline events: link/node failures with their tear-down
//     sweeps, and repairs that bring links back up.
//  4. Injector ticks (protocol state machines push flits, detect
//     timeouts, issue kills).
//  5. Routing and output virtual-channel allocation.
//  6. Switch transmission: one flit per output channel; ejected flits
//     reach receivers, receiver FKILL requests are queued.
//  7. Receiver FKILL tear-downs (local; propagation next cycle).
//  8. Credit application (credits earned this cycle become visible next).
//  9. Invariant checks (Config.Check), the Monitor hook (which can latch
//     the network unhealthy), the cycle increment, and the Observer hook.
//
// The pipeline itself is declared in engine.go; external machinery (the
// fault timeline, the invariant watchdog, the metrics sampler) attaches
// through the Hooks seam there. The phases are activity-driven: each
// walks an incrementally maintained worklist of busy links and active
// routers/injectors/receivers (see step.go), so idle cycles cost
// O(active) rather than O(network) while producing byte-identical
// results to a full scan.
package network

import (
	"fmt"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/router"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// Config describes a complete network. Topo and Alg are required.
type Config struct {
	Topo topology.Topology
	Alg  routing.Algorithm

	// Protocol selects the node-interface protocol (Plain wormhole for
	// the DOR baselines, CR, or FCR).
	Protocol core.Protocol
	// VCs is the virtual channel count per network port; 0 means the
	// algorithm's minimum.
	VCs int
	// BufDepth is the per-VC buffer depth; 0 means 2 (the paper's CR
	// setting).
	BufDepth int
	// InjectionChannels and EjectionChannels size the node interface;
	// 0 means 1.
	InjectionChannels int
	EjectionChannels  int

	// Timeout, Backoff, MaxAttempts parameterize CR/FCR (see core).
	Timeout int
	// RouterTimeout enables the path-wide timeout ablation (see
	// router.Config.RouterTimeout); requires a CR or FCR protocol so the
	// sources retransmit router-killed worms.
	RouterTimeout int
	Backoff       core.Backoff
	MaxAttempts   int
	// MisrouteAfter/MaxDetours enable routing around permanent faults.
	MisrouteAfter int
	MaxDetours    int
	// Select chooses the router's adaptive output-selection policy.
	Select router.Selection
	// PadAdjust tweaks CR/FCR padding for the padding-margin ablation.
	PadAdjust int

	// TransientRate is the per-flit, per-link corruption probability
	// (i.i.d. Bernoulli). Ignored when Burst is set.
	TransientRate float64
	// Burst, when non-nil, selects Gilbert-Elliott bursty corruption
	// instead of the Bernoulli process. The spec is immutable and safe
	// to share across networks; each network builds its own stateful
	// process from it.
	Burst *faults.BurstSpec
	// Seed seeds the transient fault process.
	Seed uint64
	// Faults schedules the permanent-fault timeline: link and node
	// failures and repairs.
	Faults *faults.Schedule
	// Hazard, when non-nil, adds a load-coupled failure-intensity
	// process on top of the scheduled timeline: each link and router
	// fails at rate lambda0*exp(alpha*load) with load sampled from the
	// live utilization signals (see faults.HazardSpec). The spec is
	// immutable and safe to share; each network builds its own stateful
	// process from it.
	Hazard *faults.HazardSpec

	// Check enables router invariant verification every cycle (slow;
	// tests only).
	Check bool
}

func (c *Config) fillDefaults() error {
	if c.Topo == nil || c.Alg == nil {
		return fmt.Errorf("network: Topo and Alg are required")
	}
	if c.VCs == 0 {
		c.VCs = c.Alg.MinVCs(c.Topo)
	}
	if c.BufDepth == 0 {
		c.BufDepth = 2
	}
	if c.InjectionChannels == 0 {
		c.InjectionChannels = 1
	}
	if c.EjectionChannels == 0 {
		c.EjectionChannels = 1
	}
	if c.RouterTimeout > 0 && c.Protocol == core.Plain {
		return fmt.Errorf("network: RouterTimeout needs CR or FCR (sources must retransmit)")
	}
	return nil
}

func (c Config) routerConfig() router.Config {
	return router.Config{
		VCs:               c.VCs,
		BufDepth:          c.BufDepth,
		InjectionChannels: c.InjectionChannels,
		EjectionChannels:  c.EjectionChannels,
		VerifyHeaders:     c.Protocol == core.FCR,
		RouterTimeout:     c.RouterTimeout,
		MisrouteAfter:     c.MisrouteAfter,
		MaxDetours:        c.MaxDetours,
		Select:            c.Select,
		Check:             c.Check,
	}
}

func (c Config) coreConfig() core.Config {
	return core.Config{
		Protocol:      c.Protocol,
		BufDepth:      c.BufDepth,
		VCs:           c.VCs,
		Timeout:       c.Timeout,
		Backoff:       c.Backoff,
		MaxAttempts:   c.MaxAttempts,
		MisrouteAfter: c.MisrouteAfter,
		MaxDetours:    c.MaxDetours,
		PadAdjust:     c.PadAdjust,
	}
}

// link is one unidirectional channel between routers.
type link struct {
	exists bool
	up     bool
	toNode topology.NodeID
	toPort int // input port index at toNode

	// downRefs reference-counts failure causes: a link can be taken
	// down both by its own LinkEvent and by an incident NodeEvent, and
	// only comes back up when every cause has been repaired. up is true
	// iff downRefs == 0.
	downRefs int

	busy bool
	vc   int
	f    flit.Flit

	// flits counts traversals, for utilization reporting.
	flits int64
}

// scheduledSignal is a tear-down signal due at a router next cycle.
type scheduledSignal struct {
	node topology.NodeID
	sig  router.Signal
}

// creditEvent is a deferred credit refund.
type creditEvent struct {
	node topology.NodeID
	port int
	vc   int
	n    int
}

// fkillReq is a receiver-initiated backward tear-down.
type fkillReq struct {
	node topology.NodeID
	ch   int
	worm flit.WormID
}

// Network is a complete simulated machine. Construct with New, drive
// with Step, feed with SubmitMessage, observe with DrainDeliveries and
// the stats accessors. Not safe for concurrent use.
type Network struct {
	cfg       Config
	topo      topology.Topology
	routers   []*router.Router
	injectors []*core.Injector
	receivers []*core.Receiver
	links     [][]link // [node][port]

	cycle     int64
	signals   []scheduledSignal // due next cycle
	sigNow    []scheduledSignal // being processed this cycle
	credits   []creditEvent
	fkills    []fkillReq
	corrupter faults.Corrupter
	emitBuf   []router.Emit
	wormBuf   []router.WormAt

	// deliveries accumulates this cycle's completions; drained holds the
	// slice handed out by the previous DrainDeliveries and is reused as
	// the next accumulation buffer (double buffering, no allocation).
	deliveries []core.Delivery
	drained    []core.Delivery

	// Activity worklists (see step.go for the maintenance protocol).
	busyLinks   []linkRef // links carrying a flit, ascending (node, port)
	linkScratch []linkRef // last cycle's worklist, being consumed
	activeR     nodeSet   // routers with buffered flits
	activeI     nodeSet   // injectors with queued or in-flight work
	recvPend    []int32   // receivers that accepted a flit this cycle
	recvMark    []bool    // recvPend dedup bitmap

	// bruteForce disables the worklists and restores scan-everything
	// phases; the soak test cross-checks the two cycle by cycle.
	bruteForce bool

	// Load-coupled failure process (nil unless cfg.Hazard is set).
	// hazardLinks fixes the entity order; hazardFlits/hazardLoad are
	// scratch vectors refilled from the live counters on evaluation
	// cycles only, so off-grid cycles pay one Due check.
	hazard      *faults.Hazard
	hazardLinks []faults.LinkID
	hazardFlits []int64
	hazardLoad  []float64

	tracer Tracer
	hooks  Hooks
	health error

	lastProgress  int64
	lastFault     int64 // cycle of the most recent fault-timeline event
	failEvents    int64 // fault *failure* events applied (timeline + hazard)
	killsDropped  int64 // signals dropped at dead links
	flitsDropped  int64 // in-flight flits lost to link death
	flitsDegraded int64 // transient corruptions applied on links
	flitsInjected int64 // flits entering the network at injection ports
	flitsEjected  int64 // flits leaving the network at ejection ports
}

// New builds the network. It panics on invalid configuration.
func New(cfg Config) *Network {
	if err := cfg.fillDefaults(); err != nil {
		panic(err)
	}
	topo := cfg.Topo
	nodes := topo.Nodes()
	n := &Network{
		cfg:       cfg,
		topo:      topo,
		routers:   make([]*router.Router, nodes),
		injectors: make([]*core.Injector, nodes),
		receivers: make([]*core.Receiver, nodes),
		links:     make([][]link, nodes),
		corrupter: newCorrupter(cfg),
		activeR:   newNodeSet(nodes),
		activeI:   newNodeSet(nodes),
		recvMark:  make([]bool, nodes),
		hooks:     Hooks{Faults: cfg.Faults},
		lastFault: -1,
	}
	rcfg := cfg.routerConfig()
	ccfg := cfg.coreConfig()
	for id := 0; id < nodes; id++ {
		node := topology.NodeID(id)
		n.routers[id] = router.New(node, topo, cfg.Alg, rcfg)
		ports := make([]core.Port, cfg.InjectionChannels)
		for ch := range ports {
			ports[ch] = injPort{net: n, node: node, ch: ch}
		}
		n.injectors[id] = core.NewInjector(ccfg, topo, node, ports, cfg.Seed)
		n.receivers[id] = core.NewReceiver(ccfg, node, fkillPort{net: n, node: node})
		n.links[id] = make([]link, topo.Degree())
		for p := range n.links[id] {
			next, ok := topo.Neighbor(node, topology.Port(p))
			if !ok {
				continue
			}
			n.links[id][p] = link{
				exists: true,
				up:     true,
				toNode: next,
				toPort: int(topo.ReversePort(node, topology.Port(p))),
			}
		}
	}
	if cfg.Hazard != nil {
		n.hazardLinks = n.Links()
		ids := make([]int, nodes)
		for id := range ids {
			ids[id] = id
		}
		n.hazard = faults.NewHazard(*cfg.Hazard, n.hazardLinks, ids)
		n.hazardFlits = make([]int64, len(n.hazardLinks))
		n.hazardLoad = make([]float64, nodes)
	}
	return n
}

// newCorrupter builds the configured transient-corruption process; New
// and Reset share it so a reset network replays the same fault stream.
func newCorrupter(cfg Config) faults.Corrupter {
	if cfg.Burst != nil {
		return faults.NewGilbertElliott(*cfg.Burst, cfg.Seed)
	}
	return faults.NewTransient(cfg.TransientRate, cfg.Seed)
}

// injPort adapts a router injection channel to core.Port.
type injPort struct {
	net  *Network
	node topology.NodeID
	ch   int
}

func (p injPort) Ready() bool {
	return p.net.routers[p.node].InjectionReady(p.ch)
}

func (p injPort) Free() int {
	return p.net.routers[p.node].InjectionFree(p.ch)
}

func (p injPort) Inject(f flit.Flit) {
	p.net.trace(EvInject, p.node, p.ch, 0, f.Worm, f.Seq)
	p.net.flitsInjected++
	p.net.activateRouter(p.node)
	p.net.routers[p.node].Inject(p.ch, f)
}

func (p injPort) Kill(worm flit.WormID) {
	r := p.net.routers[p.node]
	sig := router.Signal{Kind: router.KillFwd, Port: r.InjPort(p.ch), VC: 0, Worm: worm}
	p.net.emitBuf = r.ApplySignal(sig, p.net.emitBuf[:0])
	p.net.routeEmits(p.node, p.net.emitBuf)
}

// fkillPort lets a receiver tear worms down backward from its ejection
// channels; requests are queued and applied after the transmit phase.
type fkillPort struct {
	net  *Network
	node topology.NodeID
}

func (p fkillPort) FKill(ch int, worm flit.WormID) {
	p.net.fkills = append(p.net.fkills, fkillReq{node: p.node, ch: ch, worm: worm})
}

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// Topology returns the network's topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Injector returns node id's injector (for submitting traffic).
func (n *Network) Injector(id topology.NodeID) *core.Injector { return n.injectors[id] }

// Receiver returns node id's receiver.
func (n *Network) Receiver(id topology.NodeID) *core.Receiver { return n.receivers[id] }

// SubmitMessage queues m at its source node's injector.
func (n *Network) SubmitMessage(m flit.Message) {
	n.activateInjector(m.Src)
	n.injectors[m.Src].Submit(m)
}

// DrainDeliveries returns and clears all messages delivered since the
// last call. The returned slice is only valid until the call after
// next: the network alternates two buffers, so callers must copy
// anything they keep past one drain interval.
func (n *Network) DrainDeliveries() []core.Delivery {
	d := n.deliveries
	n.deliveries = n.drained[:0]
	n.drained = d
	return d
}

// Reset returns the network to its initial post-New state in place,
// retaining allocated buffers: cycle zero, empty queues and worklists,
// all links up, routers/injectors/receivers reset, counters cleared,
// the transient-corruption stream re-seeded and the fault timeline
// rewound. Installed hooks and the tracer are kept. A reset network is
// bit-for-bit equivalent to a freshly constructed one: identical
// traffic yields identical results (see TestResetDeterminism).
//
// Reset panics if the network is latched unhealthy: a watchdog
// violation must not be silently discarded by reuse. Callers that mean
// to reuse the network anyway must acknowledge the violation first via
// ClearHealth.
func (n *Network) Reset() {
	if n.health != nil {
		panic(fmt.Sprintf("network: Reset on a network latched unhealthy (%v); call ClearHealth to acknowledge", n.health))
	}
	n.cycle = 0
	n.signals = n.signals[:0]
	n.sigNow = n.sigNow[:0]
	n.credits = n.credits[:0]
	n.fkills = n.fkills[:0]
	n.corrupter = newCorrupter(n.cfg)
	n.deliveries = n.deliveries[:0]
	n.drained = n.drained[:0]
	n.health = nil
	n.lastProgress = 0
	n.lastFault = -1
	n.failEvents = 0
	n.killsDropped, n.flitsDropped, n.flitsDegraded = 0, 0, 0
	n.flitsInjected, n.flitsEjected = 0, 0
	if n.hazard != nil {
		n.hazard.Rewind()
	}
	for id := range n.links {
		for p := range n.links[id] {
			l := &n.links[id][p]
			l.up = l.exists
			l.downRefs = 0
			l.busy = false
			l.flits = 0
		}
	}
	for id := range n.routers {
		n.routers[id].Reset()
		n.injectors[id].Reset()
		n.receivers[id].Reset()
	}
	n.busyLinks = n.busyLinks[:0]
	n.linkScratch = n.linkScratch[:0]
	n.activeR.reset()
	n.activeI.reset()
	for _, id := range n.recvPend {
		n.recvMark[id] = false
	}
	n.recvPend = n.recvPend[:0]
	n.hooks.Faults.Rewind()
}

// CyclesSinceProgress returns how long no flit has moved or arrived;
// under CR this staying small is the liveness property.
func (n *Network) CyclesSinceProgress() int64 { return n.cycle - n.lastProgress }

// Links returns every existing link's id, for building fault schedules.
func (n *Network) Links() []faults.LinkID {
	var out []faults.LinkID
	for id := range n.links {
		for p := range n.links[id] {
			if n.links[id][p].exists {
				out = append(out, faults.LinkID{Node: id, Port: p})
			}
		}
	}
	return out
}

// LinksOf enumerates every unidirectional link of a topology without
// constructing a network — the cheap way to build fault schedules
// before the (expensive) network exists.
func LinksOf(topo topology.Topology) []faults.LinkID {
	var out []faults.LinkID
	for id := 0; id < topo.Nodes(); id++ {
		for p := 0; p < topo.Degree(); p++ {
			if _, ok := topo.Neighbor(topology.NodeID(id), topology.Port(p)); ok {
				out = append(out, faults.LinkID{Node: id, Port: p})
			}
		}
	}
	return out
}

// LinkLoad reports one link's traversal count for utilization analysis.
type LinkLoad struct {
	Link  faults.LinkID
	Up    bool
	Flits int64
}

// LinkLoads returns every existing link's traversal count since the
// start of the run, in (node, port) order.
func (n *Network) LinkLoads() []LinkLoad {
	var out []LinkLoad
	for id := range n.links {
		for p := range n.links[id] {
			l := &n.links[id][p]
			if !l.exists {
				continue
			}
			out = append(out, LinkLoad{
				Link:  faults.LinkID{Node: id, Port: p},
				Up:    l.up,
				Flits: l.flits,
			})
		}
	}
	return out
}

// RouterStats returns the sum of all routers' counters.
func (n *Network) RouterStats() router.Stats {
	var s router.Stats
	for _, r := range n.routers {
		s.Add(r.Stats())
	}
	return s
}

// InjectorStats returns the sum of all injectors' counters.
func (n *Network) InjectorStats() core.InjStats {
	var s core.InjStats
	for _, in := range n.injectors {
		o := in.Stats()
		s.Submitted += o.Submitted
		s.Completed += o.Completed
		s.Kills += o.Kills
		s.FKills += o.FKills
		s.StaleFKills += o.StaleFKills
		s.Failed += o.Failed
		s.Retries += o.Retries
		s.DataFlits += o.DataFlits
		s.PadFlits += o.PadFlits
		s.StallCycles += o.StallCycles
		s.LateFKills += o.LateFKills
	}
	return s
}

// ReceiverStats returns the sum of all receivers' counters.
func (n *Network) ReceiverStats() core.RecvStats {
	var s core.RecvStats
	for _, rc := range n.receivers {
		o := rc.Stats()
		s.Delivered += o.Delivered
		s.CorruptData += o.CorruptData
		s.FKillsSent += o.FKillsSent
		s.KilledPartial += o.KilledPartial
		s.DataFlits += o.DataFlits
		s.PadFlits += o.PadFlits
		s.OrderErrors += o.OrderErrors
	}
	return s
}

// TransientFaults returns how many corruptions the fault process applied.
func (n *Network) TransientFaults() int64 { return n.corrupter.Injected() }

// DroppedKillSignals returns tear-down signals dropped at dead links
// (their work is completed by the dead-link sweep instead).
func (n *Network) DroppedKillSignals() int64 { return n.killsDropped }

// QueuedMessages returns the total backlog across all injectors.
func (n *Network) QueuedMessages() int {
	total := 0
	for _, in := range n.injectors {
		total += in.QueueLen()
	}
	return total
}

// PendingWorms returns how many worms currently occupy router resources.
func (n *Network) PendingWorms() int {
	total := 0
	for _, r := range n.routers {
		total += r.ActiveWormCount()
	}
	return total
}

// VCs returns the configured virtual-channel count per network port.
func (n *Network) VCs() int { return n.cfg.VCs }

// OccupancyPerVC returns the buffered flit count per network virtual
// channel index, summed across every router's network input ports
// (injection buffers are excluded; see InjectionOccupancy). The
// per-cycle sampler polls it to build occupancy time-series.
func (n *Network) OccupancyPerVC() []int64 {
	return n.OccupancyPerVCInto(make([]int64, 0, n.cfg.VCs))
}

// OccupancyPerVCInto is OccupancyPerVC into a caller-provided buffer
// (grown as needed), so per-cycle pollers can avoid allocating.
func (n *Network) OccupancyPerVCInto(occ []int64) []int64 {
	occ = occ[:0]
	for vc := 0; vc < n.cfg.VCs; vc++ {
		occ = append(occ, 0)
	}
	for id, r := range n.routers {
		deg := len(n.links[id])
		for p := 0; p < deg; p++ {
			for vc := 0; vc < n.cfg.VCs; vc++ {
				occ[vc] += int64(r.BufferedAt(p, vc))
			}
		}
	}
	return occ
}

// InjectionOccupancy returns the flits buffered in injection channels
// across all routers.
func (n *Network) InjectionOccupancy() int64 {
	var occ int64
	for id, r := range n.routers {
		deg := len(n.links[id])
		for ch := 0; ch < n.cfg.InjectionChannels; ch++ {
			occ += int64(r.BufferedAt(deg+ch, 0))
		}
	}
	return occ
}

// InFlightFlits returns how many flits are currently crossing links.
func (n *Network) InFlightFlits() int64 {
	var c int64
	for id := range n.links {
		for p := range n.links[id] {
			if n.links[id][p].busy {
				c++
			}
		}
	}
	return c
}

// LinkFlits returns the cumulative flit traversals across all links
// since the start of the run; divided by links x cycles it gives the
// network-wide link utilization.
func (n *Network) LinkFlits() int64 {
	var c int64
	for id := range n.links {
		for p := range n.links[id] {
			c += n.links[id][p].flits
		}
	}
	return c
}

// LinkCount returns the number of existing unidirectional links.
func (n *Network) LinkCount() int {
	c := 0
	for id := range n.links {
		for p := range n.links[id] {
			if n.links[id][p].exists {
				c++
			}
		}
	}
	return c
}
