// Package network assembles a complete simulated machine: one wormhole
// router per node, CR/FCR injector and receiver engines in each node
// interface, the links between routers, fault injection, and the global
// deterministic cycle loop.
//
// Per-cycle phase order (all iteration in ascending node/port order):
//
//  1. Out-of-band KILL/FKILL signals scheduled for this cycle (before
//     arrivals, so a chasing kill clears a channel before a successor
//     worm's head can land on it).
//  2. Link arrivals from the previous cycle (transient faults applied).
//  3. Fault-timeline events: link/node failures with their tear-down
//     sweeps, and repairs that bring links back up.
//  4. Injector ticks (protocol state machines push flits, detect
//     timeouts, issue kills).
//  5. Routing and output virtual-channel allocation.
//  6. Switch transmission: one flit per output channel; ejected flits
//     reach receivers, receiver FKILL requests are queued.
//  7. Receiver FKILL tear-downs (local; propagation next cycle).
//  8. Credit application (credits earned this cycle become visible next).
//  9. Invariant checks (Config.Check), the Monitor hook (which can latch
//     the network unhealthy), the cycle increment, and the Observer hook.
//
// The pipeline itself is declared in engine.go; external machinery (the
// fault timeline, the invariant watchdog, the metrics sampler) attaches
// through the Hooks seam there. The phases are activity-driven: each
// walks an incrementally maintained worklist of busy links and active
// routers/injectors/receivers (see step.go), so idle cycles cost
// O(active) rather than O(network) while producing byte-identical
// results to a full scan.
//
// With Config.Shards > 1 the same pipeline runs sharded across worker
// goroutines with results byte-identical to the serial kernel; see
// shard.go for the partitioning and merge discipline.
package network

import (
	"fmt"
	"sync"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/router"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// Config describes a complete network. Topo and Alg are required.
type Config struct {
	Topo topology.Topology
	Alg  routing.Algorithm

	// Protocol selects the node-interface protocol (Plain wormhole for
	// the DOR baselines, CR, or FCR).
	Protocol core.Protocol
	// VCs is the virtual channel count per network port; 0 means the
	// algorithm's minimum. At most 255 (the link slot stores the VC
	// index in a byte).
	VCs int
	// BufDepth is the per-VC buffer depth; 0 means 2 (the paper's CR
	// setting).
	BufDepth int
	// BufOrg selects the router input-buffer organization: static
	// per-VC FIFOs (the default), per-port DAMQ pools, or one
	// router-wide credit-shared pool (see router.BufferOrg). The slot
	// budget is identical across organizations; they differ in how the
	// slots may be shared.
	BufOrg router.BufferOrg
	// BufReserve and BufShare parameterize the shared organizations:
	// the per-VC reserved slot minimum (0 means 1) and the sharing cap
	// above it (0 means BufDepth). Ignored for static FIFO.
	BufReserve int
	BufShare   int
	// InjectionChannels and EjectionChannels size the node interface;
	// 0 means 1.
	InjectionChannels int
	EjectionChannels  int

	// Timeout, Backoff, MaxAttempts parameterize CR/FCR (see core).
	Timeout int
	// RouterTimeout enables the path-wide timeout ablation (see
	// router.Config.RouterTimeout); requires a CR or FCR protocol so the
	// sources retransmit router-killed worms.
	RouterTimeout int
	Backoff       core.Backoff
	MaxAttempts   int
	// MisrouteAfter/MaxDetours enable routing around permanent faults.
	MisrouteAfter int
	MaxDetours    int
	// Select chooses the router's adaptive output-selection policy.
	Select router.Selection
	// PadAdjust tweaks CR/FCR padding for the padding-margin ablation.
	PadAdjust int

	// TransientRate is the per-flit, per-link corruption probability
	// (i.i.d. Bernoulli). Ignored when Burst is set.
	TransientRate float64
	// Burst, when non-nil, selects Gilbert-Elliott bursty corruption
	// instead of the Bernoulli process. The spec is immutable and safe
	// to share across networks; each network builds its own stateful
	// process from it.
	Burst *faults.BurstSpec
	// Seed seeds the transient fault process.
	Seed uint64
	// Faults schedules the permanent-fault timeline: link and node
	// failures and repairs.
	Faults *faults.Schedule
	// Hazard, when non-nil, adds a load-coupled failure-intensity
	// process on top of the scheduled timeline: each link and router
	// fails at rate lambda0*exp(alpha*load) with load sampled from the
	// live utilization signals (see faults.HazardSpec). The spec is
	// immutable and safe to share; each network builds its own stateful
	// process from it.
	Hazard *faults.HazardSpec

	// Shards, when > 1, steps the network across that many worker
	// goroutines (clamped to the node count), partitioning the node set
	// into contiguous id ranges. Results are byte-identical to the
	// serial kernel for every shard count — see shard.go for the
	// ordering discipline — so Shards, like the harness worker count,
	// only changes wall-clock. 0 or 1 selects the serial kernel.
	Shards int

	// Check enables router invariant verification every cycle (slow;
	// tests only).
	Check bool
}

func (c *Config) fillDefaults() error {
	if c.Topo == nil || c.Alg == nil {
		return fmt.Errorf("network: Topo and Alg are required")
	}
	if c.VCs == 0 {
		c.VCs = c.Alg.MinVCs(c.Topo)
	}
	if c.VCs > 255 {
		return fmt.Errorf("network: VCs = %d exceeds 255", c.VCs)
	}
	if c.BufDepth == 0 {
		c.BufDepth = 2
	}
	if c.InjectionChannels == 0 {
		c.InjectionChannels = 1
	}
	if c.EjectionChannels == 0 {
		c.EjectionChannels = 1
	}
	if c.Shards < 0 {
		c.Shards = 0
	}
	if c.RouterTimeout > 0 && c.Protocol == core.Plain {
		return fmt.Errorf("network: RouterTimeout needs CR or FCR (sources must retransmit)")
	}
	return nil
}

func (c Config) routerConfig() router.Config {
	return router.Config{
		VCs:               c.VCs,
		BufDepth:          c.BufDepth,
		InjectionChannels: c.InjectionChannels,
		EjectionChannels:  c.EjectionChannels,
		VerifyHeaders:     c.Protocol == core.FCR,
		RouterTimeout:     c.RouterTimeout,
		MisrouteAfter:     c.MisrouteAfter,
		MaxDetours:        c.MaxDetours,
		Select:            c.Select,
		Org:               c.BufOrg,
		BufReserve:        c.BufReserve,
		BufShare:          c.BufShare,
		Check:             c.Check,
	}
}

func (c Config) coreConfig() core.Config {
	return core.Config{
		Protocol: c.Protocol,
		// CR/FCR padding must cover the worst per-hop, per-VC flit
		// absorption of the buffer organization, not the nominal per-VC
		// depth: a shared pool can grant one worm a window up to its cap
		// at every hop, and the protocol's commit guarantee (tail held at
		// the source until the head reaches the destination) only holds
		// when Imin is computed from that absorption. For static FIFO
		// AbsorbDepth == BufDepth, so the padding is unchanged; sharing
		// buys throughput at the price of longer minimum worms.
		BufDepth:      c.routerConfig().AbsorbDepth(c.Topo.Degree()),
		VCs:           c.VCs,
		Timeout:       c.Timeout,
		Backoff:       c.Backoff,
		MaxAttempts:   c.MaxAttempts,
		MisrouteAfter: c.MisrouteAfter,
		MaxDetours:    c.MaxDetours,
		PadAdjust:     c.PadAdjust,
	}
}

// link is one unidirectional channel between routers. The struct is
// deliberately compact — node ids as int32, port/vc indices as small
// integers — because a million-node torus carries four million of
// these; see DESIGN.md §10 (memory diet).
type link struct {
	f     flit.Flit
	flits int64 // traversal count, for utilization reporting

	toNode int32
	toPort int16 // input port index at toNode

	// downRefs reference-counts failure causes: a link can be taken
	// down both by its own LinkEvent and by an incident NodeEvent, and
	// only comes back up when every cause has been repaired. up is true
	// iff downRefs == 0.
	downRefs int16

	vc     uint8
	exists bool
	up     bool
	busy   bool
}

// scheduledSignal is a tear-down signal due at a router next cycle.
type scheduledSignal struct {
	node topology.NodeID
	sig  router.Signal
}

// creditEvent is a deferred credit refund, compacted like link: a
// saturated big network queues one of these per flit moved per cycle.
// n counts plain refunds; w carries a window delta advertised by the
// shared buffer organizations (grants positive, release shrinks
// negative; always 0 for static FIFO). Both are additive and commute
// within a cycle, so the sharded kernel's credit matrix applies them
// with no global ordering.
type creditEvent struct {
	node int32
	port int16
	vc   uint8
	n    int32
	w    int32
}

// fkillReq is a receiver-initiated backward tear-down.
type fkillReq struct {
	node topology.NodeID
	ch   int
	worm flit.WormID
}

// Network is a complete simulated machine. Construct with New, drive
// with Step, feed with SubmitMessage, observe with DrainDeliveries and
// the stats accessors. Not safe for concurrent use (with Shards > 1
// the network manages its own internal workers; the external contract
// is unchanged).
type Network struct {
	cfg Config
	//cr:nosnap immutable, rebuilt from Config by the constructor; the snapshot carries the config fingerprint instead
	//cr:sharded immutable after construction, so concurrent reads are race-free
	topo  topology.Topology
	nodes int
	deg   int

	// routers/injectors/receivers are constructed lazily on first
	// touch (routerAt and friends): a node that never sees a flit never
	// pays for its ~kilobytes of arena state, which is what lets a
	// million-node network construct instantly and grow memory with
	// traffic instead of with topology size. Construction is
	// deterministic and state-free, so the touch order cannot affect
	// results. rcfg/ccfg are the precomputed construction parameters.
	routers   []*router.Router
	injectors []*core.Injector
	receivers []*core.Receiver
	rcfg      router.Config //cr:nosnap construction parameters precomputed from Config
	ccfg      core.Config   //cr:nosnap construction parameters precomputed from Config

	// links is the flat [node*degree+port] link array (uniform degree),
	// replacing a per-node slice-of-slices: one allocation, no header
	// per node, cache-linear iteration.
	links []link

	cycle     int64
	sigNow    []scheduledSignal //cr:nosnap mid-cycle scratch; snapshots are taken at cycle boundaries where it is empty
	corrupter faults.Corrupter
	wormBuf   []router.WormAt //cr:nosnap per-call scratch for worm sweeps

	// sink holds the cross-node side-effect queues of the serial
	// execution context: scheduled signals, deferred credits, FKILL
	// requests, the busy-link worklist, accepting receivers, completed
	// deliveries, and the flit counters fed from hot paths. Embedding
	// promotes the fields (n.credits, n.flitsInjected, ...), keeping
	// the serial kernel untouched; in sharded mode each shard owns its
	// own sink and the barriers merge them into this one in shard order
	// (see shard.go).
	sink

	// drained holds the slice handed out by the previous
	// DrainDeliveries and is reused as the next accumulation buffer
	// (double buffering, no allocation).
	drained []core.Delivery //cr:nosnap spare drain buffer; pending deliveries ride the sink, the spare is re-grown on demand

	// Activity worklists (see step.go for the maintenance protocol).
	linkScratch []linkRef //cr:nosnap consumed worklist; LoadState rebuilds it from the restored busy links
	activeR     nodeSet   // routers with buffered flits
	activeI     nodeSet   // injectors with queued or in-flight work
	recvMark    []bool    //cr:nosnap dedup bitmap, clear between cycles; LoadState re-allocates it

	// bruteForce disables the worklists and restores scan-everything
	// phases; the soak test cross-checks the two cycle by cycle.
	// It also forces the serial kernel regardless of Config.Shards.
	bruteForce bool //cr:nosnap test-only cross-check toggle, not simulation state

	// Sharded stepping (nil unless Config.Shards > 1): the shard
	// descriptors, the node→shard index, and the fork/join group.
	shards    []shard
	nodeShard []int32 //cr:nosnap derived node-to-shard index, rebuilt from Config by initShards
	//cr:nosnap synchronization primitive; serializing it is meaningless
	//cr:sharded the fork/join group is the shard synchronization protocol itself
	wg sync.WaitGroup

	// Load-coupled failure process (nil unless cfg.Hazard is set).
	// hazardLinks fixes the entity order; hazardFlits/hazardLoad are
	// scratch vectors refilled from the live counters on evaluation
	// cycles only, so off-grid cycles pay one Due check.
	hazard      *faults.Hazard
	hazardLinks []faults.LinkID //cr:nosnap fixed entity order, rebuilt from the topology on restore
	hazardFlits []int64         //cr:nosnap scratch refilled from live counters on evaluation cycles
	hazardLoad  []float64       //cr:nosnap scratch refilled from live counters on evaluation cycles

	tracer Tracer //cr:nosnap observer callback; the harness reattaches it after restore
	hooks  Hooks
	health error

	lastProgress  int64
	lastFault     int64 // cycle of the most recent fault-timeline event
	failEvents    int64 // fault *failure* events applied (timeline + hazard)
	flitsDropped  int64 // in-flight flits lost to link death
	flitsDegraded int64 // transient corruptions applied on links
}

// New builds the network. It panics on invalid configuration.
func New(cfg Config) *Network {
	if err := cfg.fillDefaults(); err != nil {
		panic(err)
	}
	topo := cfg.Topo
	nodes := topo.Nodes()
	deg := topo.Degree()
	n := &Network{
		cfg:       cfg,
		topo:      topo,
		nodes:     nodes,
		deg:       deg,
		routers:   make([]*router.Router, nodes),
		injectors: make([]*core.Injector, nodes),
		receivers: make([]*core.Receiver, nodes),
		links:     make([]link, nodes*deg),
		rcfg:      cfg.routerConfig(),
		ccfg:      cfg.coreConfig(),
		corrupter: newCorrupter(cfg),
		activeR:   newNodeSet(nodes),
		activeI:   newNodeSet(nodes),
		recvMark:  make([]bool, nodes),
		hooks:     Hooks{Faults: cfg.Faults},
		lastFault: -1,
	}
	for id := 0; id < nodes; id++ {
		node := topology.NodeID(id)
		for p := 0; p < deg; p++ {
			next, ok := topo.Neighbor(node, topology.Port(p))
			if !ok {
				continue
			}
			n.links[id*deg+p] = link{
				exists: true,
				up:     true,
				toNode: int32(next),
				toPort: int16(topo.ReversePort(node, topology.Port(p))),
			}
		}
	}
	if cfg.Hazard != nil {
		n.hazardLinks = n.Links()
		ids := make([]int, nodes)
		for id := range ids {
			ids[id] = id
		}
		n.hazard = faults.NewHazard(*cfg.Hazard, n.hazardLinks, ids)
		n.hazardFlits = make([]int64, len(n.hazardLinks))
		n.hazardLoad = make([]float64, nodes)
	}
	n.initShards(cfg.Shards)
	return n
}

// linkAt returns the link at (node, port) in the flat array.
func (n *Network) linkAt(id, p int) *link { return &n.links[id*n.deg+p] }

// routerAt returns node id's router, constructing it on first touch.
// Stats accessors that only *read* router state skip nil entries
// instead (an untouched router contributes its zero/initial values).
func (n *Network) routerAt(id topology.NodeID) *router.Router {
	r := n.routers[id]
	if r == nil {
		//cr:alloc lazy one-time construction on a node's first flit
		r = router.New(id, n.topo, n.cfg.Alg, n.rcfg)
		if n.rcfg.Org != router.OrgStaticFIFO {
			// Shared organizations advertise window deltas back to the
			// upstream router feeding each input port. Deltas ride the
			// same deterministic credit queues as plain refunds; adverts
			// originate only in phases executed by this node's owner
			// (arrivals, transmit, signals), so sinkFor is race-free.
			node := id
			r.SetAdvertiser(func(port, vc, delta int) {
				up, upPort := n.upstreamOf(node, port)
				n.pushCreditEv(n.sinkFor(node), creditEvent{
					node: int32(up), port: int16(upPort), vc: uint8(vc), w: int32(delta),
				})
			})
		}
		// A link that failed before this router's first touch must be
		// reflected in the fresh router's port state (failLink skips
		// unconstructed routers; they hold no worms to sweep).
		for p := 0; p < n.deg; p++ {
			l := n.linkAt(int(id), p)
			if l.exists && !l.up {
				r.SetLinkDown(p)
			}
		}
		n.routers[id] = r //cr:sharded one-time deterministic store; a node is first-touched only by its owning shard
	}
	return r
}

// injectorAt returns node id's injector, constructing it on first touch.
func (n *Network) injectorAt(id topology.NodeID) *core.Injector {
	in := n.injectors[id]
	if in == nil {
		//cr:alloc lazy one-time construction on a node's first submission
		ports := make([]core.Port, n.cfg.InjectionChannels)
		for ch := range ports {
			ports[ch] = injPort{net: n, node: id, ch: ch}
		}
		in = core.NewInjector(n.ccfg, n.topo, id, ports, n.cfg.Seed)
		n.injectors[id] = in //cr:sharded one-time deterministic store; a node is first-touched only by its owning shard
	}
	return in
}

// receiverAt returns node id's receiver, constructing it on first touch.
func (n *Network) receiverAt(id topology.NodeID) *core.Receiver {
	rc := n.receivers[id]
	if rc == nil {
		//cr:alloc lazy one-time construction on a node's first ejection
		rc = core.NewReceiver(n.ccfg, id, fkillPort{net: n, node: id})
		n.receivers[id] = rc //cr:sharded one-time deterministic store; a node is first-touched only by its owning shard
	}
	return rc
}

// forceConstruct materializes every lazily-constructed component, for
// the paths that need the full population (snapshot encode/decode).
func (n *Network) forceConstruct() {
	for id := 0; id < n.nodes; id++ {
		n.routerAt(topology.NodeID(id))
		n.injectorAt(topology.NodeID(id))
		n.receiverAt(topology.NodeID(id))
	}
}

// newCorrupter builds the configured transient-corruption process; New
// and Reset share it so a reset network replays the same fault stream.
func newCorrupter(cfg Config) faults.Corrupter {
	if cfg.Burst != nil {
		return faults.NewGilbertElliott(*cfg.Burst, cfg.Seed)
	}
	return faults.NewTransient(cfg.TransientRate, cfg.Seed)
}

// injPort adapts a router injection channel to core.Port. Its methods
// run inside the injector phase — under sharding that is the owning
// shard's worker, so all side effects flow through the node's sink.
type injPort struct {
	net  *Network
	node topology.NodeID
	ch   int
}

func (p injPort) Ready() bool {
	return p.net.routerAt(p.node).InjectionReady(p.ch)
}

func (p injPort) Free() int {
	return p.net.routerAt(p.node).InjectionFree(p.ch)
}

func (p injPort) Inject(f flit.Flit) {
	sk := p.net.sinkFor(p.node)
	p.net.traceTo(sk, EvInject, p.node, p.ch, 0, f.Worm, f.Seq)
	sk.flitsInjected++
	p.net.activateRouter(p.node)
	p.net.routerAt(p.node).Inject(p.ch, f)
}

func (p injPort) Kill(worm flit.WormID) {
	sk := p.net.sinkFor(p.node)
	r := p.net.routerAt(p.node)
	sig := router.Signal{Kind: router.KillFwd, Port: r.InjPort(p.ch), VC: 0, Worm: worm}
	sk.emitBuf = r.ApplySignal(sig, sk.emitBuf[:0])
	p.net.routeEmits(sk, p.node, sk.emitBuf)
}

// fkillPort lets a receiver tear worms down backward from its ejection
// channels; requests are queued and applied after the transmit phase.
type fkillPort struct {
	net  *Network
	node topology.NodeID
}

func (p fkillPort) FKill(ch int, worm flit.WormID) {
	sk := p.net.sinkFor(p.node)
	sk.fkills = append(sk.fkills, fkillReq{node: p.node, ch: ch, worm: worm})
}

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// Topology returns the network's topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Injector returns node id's injector (for submitting traffic).
func (n *Network) Injector(id topology.NodeID) *core.Injector { return n.injectorAt(id) }

// Receiver returns node id's receiver.
func (n *Network) Receiver(id topology.NodeID) *core.Receiver { return n.receiverAt(id) }

// SubmitMessage queues m at its source node's injector.
func (n *Network) SubmitMessage(m flit.Message) {
	n.activateInjector(m.Src)
	n.injectorAt(m.Src).Submit(m)
}

// DrainDeliveries returns and clears all messages delivered since the
// last call. The returned slice is only valid until the call after
// next: the network alternates two buffers, so callers must copy
// anything they keep past one drain interval.
func (n *Network) DrainDeliveries() []core.Delivery {
	d := n.deliveries
	n.deliveries = n.drained[:0]
	n.drained = d
	return d
}

// Reset returns the network to its initial post-New state in place,
// retaining allocated buffers: cycle zero, empty queues and worklists,
// all links up, routers/injectors/receivers reset, counters cleared,
// the transient-corruption stream re-seeded and the fault timeline
// rewound. Installed hooks and the tracer are kept. A reset network is
// bit-for-bit equivalent to a freshly constructed one: identical
// traffic yields identical results (see TestResetDeterminism).
//
// Reset panics if the network is latched unhealthy: a watchdog
// violation must not be silently discarded by reuse. Callers that mean
// to reuse the network anyway must acknowledge the violation first via
// ClearHealth.
func (n *Network) Reset() {
	if n.health != nil {
		panic(fmt.Sprintf("network: Reset on a network latched unhealthy (%v); call ClearHealth to acknowledge", n.health))
	}
	n.cycle = 0
	n.sigNow = n.sigNow[:0]
	n.corrupter = newCorrupter(n.cfg)
	n.drained = n.drained[:0]
	n.health = nil
	n.lastProgress = 0
	n.lastFault = -1
	n.failEvents = 0
	n.flitsDropped, n.flitsDegraded = 0, 0
	n.sink.reset()
	if n.hazard != nil {
		n.hazard.Rewind()
	}
	for i := range n.links {
		l := &n.links[i]
		l.up = l.exists
		l.downRefs = 0
		l.busy = false
		l.flits = 0
	}
	for id := 0; id < n.nodes; id++ {
		// Lazily-constructed components that exist are reset in place
		// (keeping their buffers); absent ones are already pristine.
		if r := n.routers[id]; r != nil {
			r.Reset()
		}
		if in := n.injectors[id]; in != nil {
			in.Reset()
		}
		if rc := n.receivers[id]; rc != nil {
			rc.Reset()
		}
	}
	n.linkScratch = n.linkScratch[:0]
	n.activeR.reset()
	n.activeI.reset()
	for _, id := range n.recvPend {
		n.recvMark[id] = false
	}
	n.recvPend = n.recvPend[:0]
	for i := range n.shards {
		n.shards[i].reset()
	}
	n.hooks.Faults.Rewind()
}

// CyclesSinceProgress returns how long no flit has moved or arrived;
// under CR this staying small is the liveness property.
func (n *Network) CyclesSinceProgress() int64 { return n.cycle - n.lastProgress }

// Links returns every existing link's id, for building fault schedules.
func (n *Network) Links() []faults.LinkID {
	var out []faults.LinkID
	for id := 0; id < n.nodes; id++ {
		for p := 0; p < n.deg; p++ {
			if n.linkAt(id, p).exists {
				out = append(out, faults.LinkID{Node: id, Port: p})
			}
		}
	}
	return out
}

// LinksOf enumerates every unidirectional link of a topology without
// constructing a network — the cheap way to build fault schedules
// before the (expensive) network exists.
func LinksOf(topo topology.Topology) []faults.LinkID {
	var out []faults.LinkID
	for id := 0; id < topo.Nodes(); id++ {
		for p := 0; p < topo.Degree(); p++ {
			if _, ok := topo.Neighbor(topology.NodeID(id), topology.Port(p)); ok {
				out = append(out, faults.LinkID{Node: id, Port: p})
			}
		}
	}
	return out
}

// LinkLoad reports one link's traversal count for utilization analysis.
type LinkLoad struct {
	Link  faults.LinkID
	Up    bool
	Flits int64
}

// LinkLoads returns every existing link's traversal count since the
// start of the run, in (node, port) order.
func (n *Network) LinkLoads() []LinkLoad {
	var out []LinkLoad
	for id := 0; id < n.nodes; id++ {
		for p := 0; p < n.deg; p++ {
			l := n.linkAt(id, p)
			if !l.exists {
				continue
			}
			out = append(out, LinkLoad{
				Link:  faults.LinkID{Node: id, Port: p},
				Up:    l.up,
				Flits: l.flits,
			})
		}
	}
	return out
}

// RouterStats returns the sum of all routers' counters. An
// unconstructed (never-touched) router contributes zeros.
func (n *Network) RouterStats() router.Stats {
	var s router.Stats
	for _, r := range n.routers {
		if r != nil {
			s.Add(r.Stats())
		}
	}
	return s
}

// InjectorStats returns the sum of all injectors' counters.
func (n *Network) InjectorStats() core.InjStats {
	var s core.InjStats
	for _, in := range n.injectors {
		if in == nil {
			continue
		}
		o := in.Stats()
		s.Submitted += o.Submitted
		s.Completed += o.Completed
		s.Kills += o.Kills
		s.FKills += o.FKills
		s.StaleFKills += o.StaleFKills
		s.Failed += o.Failed
		s.Retries += o.Retries
		s.DataFlits += o.DataFlits
		s.PadFlits += o.PadFlits
		s.StallCycles += o.StallCycles
		s.LateFKills += o.LateFKills
	}
	return s
}

// ReceiverStats returns the sum of all receivers' counters.
func (n *Network) ReceiverStats() core.RecvStats {
	var s core.RecvStats
	for _, rc := range n.receivers {
		if rc == nil {
			continue
		}
		o := rc.Stats()
		s.Delivered += o.Delivered
		s.CorruptData += o.CorruptData
		s.FKillsSent += o.FKillsSent
		s.KilledPartial += o.KilledPartial
		s.DataFlits += o.DataFlits
		s.PadFlits += o.PadFlits
		s.OrderErrors += o.OrderErrors
	}
	return s
}

// TransientFaults returns how many corruptions the fault process applied.
func (n *Network) TransientFaults() int64 { return n.corrupter.Injected() }

// DroppedKillSignals returns tear-down signals dropped at dead links
// (their work is completed by the dead-link sweep instead).
func (n *Network) DroppedKillSignals() int64 { return n.killsDropped }

// QueuedMessages returns the total backlog across all injectors.
func (n *Network) QueuedMessages() int {
	total := 0
	for _, in := range n.injectors {
		if in != nil {
			total += in.QueueLen()
		}
	}
	return total
}

// PendingWorms returns how many worms currently occupy router resources.
func (n *Network) PendingWorms() int {
	total := 0
	for _, r := range n.routers {
		if r != nil {
			total += r.ActiveWormCount()
		}
	}
	return total
}

// VCs returns the configured virtual-channel count per network port.
func (n *Network) VCs() int { return n.cfg.VCs }

// OccupancyPerVC returns the buffered flit count per network virtual
// channel index, summed across every router's network input ports
// (injection buffers are excluded; see InjectionOccupancy). The
// per-cycle sampler polls it to build occupancy time-series.
func (n *Network) OccupancyPerVC() []int64 {
	return n.OccupancyPerVCInto(make([]int64, 0, n.cfg.VCs))
}

// OccupancyPerVCInto is OccupancyPerVC into a caller-provided buffer
// (grown as needed), so per-cycle pollers can avoid allocating.
func (n *Network) OccupancyPerVCInto(occ []int64) []int64 {
	occ = occ[:0]
	for vc := 0; vc < n.cfg.VCs; vc++ {
		occ = append(occ, 0)
	}
	for _, r := range n.routers {
		if r == nil {
			continue
		}
		for p := 0; p < n.deg; p++ {
			for vc := 0; vc < n.cfg.VCs; vc++ {
				occ[vc] += int64(r.BufferedAt(p, vc))
			}
		}
	}
	return occ
}

// InjectionOccupancy returns the flits buffered in injection channels
// across all routers.
func (n *Network) InjectionOccupancy() int64 {
	var occ int64
	for _, r := range n.routers {
		if r == nil {
			continue
		}
		for ch := 0; ch < n.cfg.InjectionChannels; ch++ {
			occ += int64(r.BufferedAt(n.deg+ch, 0))
		}
	}
	return occ
}

// InFlightFlits returns how many flits are currently crossing links.
func (n *Network) InFlightFlits() int64 {
	var c int64
	for i := range n.links {
		if n.links[i].busy {
			c++
		}
	}
	return c
}

// LinkFlits returns the cumulative flit traversals across all links
// since the start of the run; divided by links x cycles it gives the
// network-wide link utilization.
func (n *Network) LinkFlits() int64 {
	var c int64
	for i := range n.links {
		c += n.links[i].flits
	}
	return c
}

// LinkCount returns the number of existing unidirectional links.
func (n *Network) LinkCount() int {
	c := 0
	for i := range n.links {
		if n.links[i].exists {
			c++
		}
	}
	return c
}
