package network

// nodeSet is a deduplicated worklist of node ids with deterministic
// (ascending) iteration order. Membership is tracked in a dense bitmap so
// add is O(1); prepare sorts the id list in place before a phase iterates
// it, so incidental insertion order (which depends on link directions and
// event arrival order) can never leak into phase order and thus into
// simulation results. The sort is a plain insertion sort: between cycles
// the list stays sorted (pruning preserves order), so only the ids added
// since the last prepare migrate, and no allocation or closure is
// involved.
type nodeSet struct {
	member []bool
	ids    []int32
	dirty  bool // ids has appends since the last prepare
}

func newNodeSet(n int) nodeSet {
	return nodeSet{member: make([]bool, n)}
}

// add inserts id if absent.
func (s *nodeSet) add(id int32) {
	if !s.member[id] {
		s.member[id] = true
		s.ids = append(s.ids, id)
		s.dirty = true
	}
}

// has reports membership.
func (s *nodeSet) has(id int32) bool { return s.member[id] }

// prepare sorts the pending ids ascending; call once before iterating.
// Pruning (compaction during iteration) preserves sortedness, so the
// sort only runs on cycles that added members.
func (s *nodeSet) prepare() {
	if !s.dirty {
		return
	}
	s.dirty = false
	ids := s.ids
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// drop removes id from the bitmap only; the caller compacts ids itself
// while iterating (see phaseTransmit).
func (s *nodeSet) drop(id int32) { s.member[id] = false }

// reset empties the set. The dirty flag is cleared too: an empty list
// is trivially sorted, and leaving the flag set would make the next
// prepare after a Network.Reset run a pointless sort pass.
func (s *nodeSet) reset() {
	for _, id := range s.ids {
		s.member[id] = false
	}
	s.ids = s.ids[:0]
	s.dirty = false
}

// linkRef identifies one directed link by its upstream (node, port).
type linkRef struct {
	node int32
	port int32
}
