package network

import (
	"fmt"
	"testing"

	"crnet/internal/core"
	"crnet/internal/routing"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// Sharded-kernel benchmarks: the per-cycle cost of Network.Step at
// three machine scales, serial (shards0) versus sharded. These are the
// rows `make bench-sharded` records in BENCH_PR8.json.
//
// The interesting row is 256x256 saturated: the shard phases dominate
// the cycle there, so on a multi-core host the sharded kernel should
// approach GOMAXPROCS-way speedup over shards0 (minus barrier costs).
// On a single-core host the sharded rows instead measure pure
// orchestration overhead — goroutine fork/join and mailbox merging with
// no parallelism to pay for it — which is also worth pinning.
//
// The 1024x1024 rows run at low load: a million-node network never runs
// saturated in practice (the memory diet exists so sparse activity on a
// huge fabric is cheap), and the benchmark cost stays bounded.
func BenchmarkStepShard(b *testing.B) {
	cases := []struct {
		k      int
		load   float64
		warmup int64
	}{
		{64, 0.9, 300},
		{256, 0.9, 120},
		{1024, 0.05, 20},
	}
	for _, c := range cases {
		for _, shards := range []int{0, 2, 4, 8} {
			c, shards := c, shards
			b.Run(fmt.Sprintf("k%d/shards%d", c.k, shards), func(b *testing.B) {
				n := New(Config{
					Topo:     topology.NewTorus(c.k, 2),
					Alg:      routing.MinimalAdaptive{},
					Protocol: core.CR,
					Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
					Shards:   shards,
					Seed:     1,
				})
				topo := n.Topology()
				gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, c.load, 16, 1)
				tick := func(cycle int64) {
					for node := 0; node < topo.Nodes(); node++ {
						if m, ok := gen.Tick(topology.NodeID(node), cycle); ok {
							n.SubmitMessage(m)
						}
					}
					n.Step()
					n.DrainDeliveries()
				}
				for cyc := int64(0); cyc < c.warmup; cyc++ {
					tick(cyc)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tick(c.warmup + int64(i))
				}
			})
		}
	}
}
