package network

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/rng"
	"crnet/internal/routing"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
	"crnet/internal/traffic"
)

// shardCounts is the pin matrix from the acceptance criteria, plus a
// count that does not divide any of the random node counts (7) and the
// host's parallelism.
func shardCounts() []int {
	counts := []int{1, 2, 4, 7, 8}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	return counts
}

// TestShardedMatchesSerial is the tentpole pin: the sharded kernel must
// reproduce the serial kernel byte for byte — same per-cycle delivery
// stream, same cycle counts, same stats, same trace event sequence —
// across random topologies with transient corruption, a permanent
// fail/repair timeline, and load-coupled hazard failures all enabled,
// for every shard count including non-dividing ones.
func TestShardedMatchesSerial(t *testing.T) {
	r := rng.New(0x5A4DED)
	const configs = 6
	for i := 0; i < configs; i++ {
		cfg, load, msgLen := randomConfig(r, uint64(i)+8000)
		cfg.TransientRate = 2e-3
		cfg.Hazard = &faults.HazardSpec{
			LinkLambda0: 2e-5,
			NodeLambda0: 8e-6,
			Alpha:       4,
			LinkMTTR:    150,
			NodeMTTR:    200,
			EvalEvery:   32,
			Seed:        uint64(i)*131 + 7,
		}
		timeline := faults.TimelineConfig{
			Links:    LinksOf(cfg.Topo),
			LinkMTBF: 900, LinkMTTR: 60,
			Start: 50, Horizon: 2000,
			Seed: uint64(i)*77 + 3,
		}
		name := fmt.Sprintf("cfg%02d_%s_%s", i, cfg.Topo.Name(), cfg.Protocol)
		t.Run(name, func(t *testing.T) {
			type tracedSnapshot struct {
				kernelSnapshot
				events []Event
			}
			run := func(shards int) tracedSnapshot {
				c := cfg
				c.Shards = shards
				c.Faults = faults.RandomTimeline(timeline)
				n := New(c)
				var snap tracedSnapshot
				n.SetTracer(func(ev Event) { snap.events = append(snap.events, ev) })
				gen := traffic.NewGenerator(c.Topo, traffic.Uniform{Nodes: c.Topo.Nodes()}, load, msgLen, c.Seed+5)
				snap.kernelSnapshot = runKernel(n, gen, 1200, 1200*60)
				return snap
			}
			serial := run(0)
			for _, s := range shardCounts() {
				got := run(s)
				if !reflect.DeepEqual(got.kernelSnapshot, serial.kernelSnapshot) {
					t.Errorf("shards=%d diverged from serial:\nsharded: cycle=%d deliveries=%d inj=%+v flits=%d\nserial:  cycle=%d deliveries=%d inj=%+v flits=%d",
						s, got.cycle, len(got.deliveries), got.inj, got.flits,
						serial.cycle, len(serial.deliveries), serial.inj, serial.flits)
					continue
				}
				if !reflect.DeepEqual(got.events, serial.events) {
					n := len(got.events)
					if len(serial.events) < n {
						n = len(serial.events)
					}
					at := n
					for k := 0; k < n; k++ {
						if got.events[k] != serial.events[k] {
							at = k
							break
						}
					}
					t.Errorf("shards=%d trace diverged at event %d of %d/%d", s, at, len(got.events), len(serial.events))
				}
			}
		})
	}
}

// TestShardedSnapshotCrossMode pins snapshot portability across kernel
// modes: a snapshot taken mid-run from a serial network restores into a
// sharded one (and vice versa), and both then replay the remainder of
// the run identically. This is why ConfigFingerprint excludes Shards.
func TestShardedSnapshotCrossMode(t *testing.T) {
	topo := topology.NewTorus(5, 2)
	base := Config{
		Topo:          topo,
		Alg:           routing.MinimalAdaptive{},
		Protocol:      core.FCR,
		VCs:           2,
		BufDepth:      2,
		TransientRate: 1e-3,
		Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Seed:          17,
		Check:         true,
	}
	timeline := faults.TimelineConfig{
		Links:    LinksOf(topo),
		LinkMTBF: 700, LinkMTTR: 50,
		Start: 20, Horizon: 1200,
		Seed: 5,
	}
	newNet := func(shards int) *Network {
		c := base
		c.Shards = shards
		c.Faults = faults.RandomTimeline(timeline)
		return New(c)
	}
	drive := func(n *Network, from, to int64) []core.Delivery {
		gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.4, 7, 23)
		var out []core.Delivery
		for c := from; c < to; c++ {
			for node := 0; node < topo.Nodes(); node++ {
				if m, ok := gen.Tick(topology.NodeID(node), c); ok {
					n.SubmitMessage(m)
				}
			}
			n.Step()
			out = append(out, n.DrainDeliveries()...)
		}
		return out
	}
	const half, full = 600, 1200
	for _, from := range []int{0, 3} {
		for _, to := range []int{0, 4} {
			if from == to {
				continue
			}
			t.Run(fmt.Sprintf("shards%d_to_%d", from, to), func(t *testing.T) {
				src := newNet(from)
				firstHalf := drive(src, 0, half)
				var e snapshot.Encoder
				src.SaveState(&e)
				rest := newNet(to)
				if err := rest.LoadState(snapshot.NewDecoder(e.Bytes())); err != nil {
					t.Fatalf("cross-mode restore failed: %v", err)
				}
				// The restored network must replay the second half exactly
				// as the unbroken source does.
				wantSecond := drive(src, half, full)
				gotSecond := drive(rest, half, full)
				if !reflect.DeepEqual(gotSecond, wantSecond) {
					t.Fatalf("restored run diverged: %d deliveries vs %d", len(gotSecond), len(wantSecond))
				}
				if src.Cycle() != rest.Cycle() || src.flitsDropped != rest.flitsDropped {
					t.Fatalf("restored counters diverged: cycle %d/%d dropped %d/%d",
						rest.Cycle(), src.Cycle(), rest.flitsDropped, src.flitsDropped)
				}
				_ = firstHalf
			})
		}
	}
}

// TestShardedReset pins that Reset on a sharded network clears the
// shard-local worklists and sinks: a reset sharded network replays the
// same run as a fresh one.
func TestShardedReset(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	newNet := func() *Network {
		return New(Config{
			Topo:          topo,
			Alg:           routing.MinimalAdaptive{},
			Protocol:      core.CR,
			Shards:        3, // does not divide 16
			TransientRate: 1e-3,
			Backoff:       core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			Seed:          42,
			Check:         true,
			Faults: faults.RandomTimeline(faults.TimelineConfig{
				Links:    LinksOf(topo),
				LinkMTBF: 600, LinkMTTR: 40,
				Start: 20, Horizon: 800,
				Seed: 9,
			}),
		})
	}
	run := func(n *Network) kernelSnapshot {
		gen := traffic.NewGenerator(topo, traffic.Uniform{Nodes: topo.Nodes()}, 0.3, 6, 123)
		return runKernel(n, gen, 600, 600*50)
	}
	n := newNet()
	first := run(n)
	n.Reset()
	second := run(n)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("sharded run after Reset diverged: first cycle=%d deliveries=%d, second cycle=%d deliveries=%d",
			first.cycle, len(first.deliveries), second.cycle, len(second.deliveries))
	}
}

// TestShardPartition pins the contiguous partition arithmetic,
// including non-dividing counts and clamping to the node count.
func TestShardPartition(t *testing.T) {
	for _, tc := range []struct{ nodes, shards int }{
		{16, 2}, {16, 7}, {25, 4}, {25, 8}, {5, 9}, {1024, 16},
	} {
		n := New(Config{
			Topo:     topology.NewTorus(tc.nodes, 1),
			Alg:      routing.MinimalAdaptive{},
			Protocol: core.CR,
			Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
			Shards:   tc.shards,
		})
		want := tc.shards
		if want > tc.nodes {
			want = tc.nodes
		}
		if len(n.shards) != want {
			t.Fatalf("nodes=%d shards=%d: got %d shard descriptors, want %d", tc.nodes, tc.shards, len(n.shards), want)
		}
		next := int32(0)
		for i := range n.shards {
			sh := &n.shards[i]
			if sh.lo != next || sh.hi <= sh.lo {
				t.Fatalf("nodes=%d shards=%d: shard %d range [%d,%d) not contiguous after %d",
					tc.nodes, tc.shards, i, sh.lo, sh.hi, next)
			}
			for id := sh.lo; id < sh.hi; id++ {
				if n.nodeShard[id] != int32(i) {
					t.Fatalf("node %d mapped to shard %d, want %d", id, n.nodeShard[id], i)
				}
			}
			next = sh.hi
		}
		if int(next) != tc.nodes {
			t.Fatalf("nodes=%d shards=%d: partition covers %d nodes", tc.nodes, tc.shards, next)
		}
	}
}
