package network

import (
	"errors"
	"fmt"
	"hash/fnv"

	"crnet/internal/core"
	"crnet/internal/flit"
	"crnet/internal/router"
	"crnet/internal/snapshot"
	"crnet/internal/topology"
)

// Checkpoint codec for the whole machine. SaveState captures every
// mutable field the cycle kernel reads — link occupancy, in-flight
// tear-down signals, deferred credits and FKILL requests, undrained
// deliveries, the activity worklists, the transient-corruption process
// position, the fault-timeline cursor, the health latch, the global
// counters, and every router/injector/receiver — so that a network
// restored from the snapshot steps forward byte-identically to one
// that never stopped (see TestResumeByteIdentical).
//
// The payload begins with a fingerprint of the construction-time
// configuration. LoadState verifies it before touching any state: a
// snapshot can only be restored into a network built from the same
// Config, because everything structural (topology, routing algorithm,
// channel geometry, protocol parameters, fault timeline, seeds) is
// reconstructed by New rather than serialized.
//
// Hooks, the tracer and the brute-force flag are runtime attachments,
// not simulation state; they are preserved across LoadState.

// ConfigFingerprint returns a 64-bit digest of the network's effective
// configuration (defaults filled in), covering every knob that shapes
// simulation behavior. Two networks with equal fingerprints are
// structurally interchangeable for checkpoint/restore. Shards is
// deliberately excluded: the sharded kernel is byte-identical to the
// serial one, so a snapshot taken from a serial network restores into a
// sharded twin (and vice versa) — the worklists are saved as their
// merged, sorted union, which both kernels accept (see saveNodeSet).
func (n *Network) ConfigFingerprint() uint64 {
	h := fnv.New64a()
	c := &n.cfg
	fmt.Fprintf(h, "topo=%s nodes=%d alg=%s proto=%d vcs=%d buf=%d inj=%d ej=%d",
		c.Topo.Name(), c.Topo.Nodes(), c.Alg.Name(), c.Protocol, c.VCs, c.BufDepth,
		c.InjectionChannels, c.EjectionChannels)
	if c.BufOrg != router.OrgStaticFIFO || c.BufReserve != 0 || c.BufShare != 0 {
		// Appended conditionally so every pre-seam fingerprint (always
		// static FIFO with default knobs) is unchanged.
		fmt.Fprintf(h, " buforg=%d rsv=%d share=%d", c.BufOrg, c.BufReserve, c.BufShare)
	}
	fmt.Fprintf(h, " timeout=%d rtimeout=%d backoff=%d/%d/%d maxattempts=%d",
		c.Timeout, c.RouterTimeout, c.Backoff.Kind, c.Backoff.Gap, c.Backoff.Cap, c.MaxAttempts)
	fmt.Fprintf(h, " misroute=%d/%d select=%d pad=%d rate=%g seed=%d check=%t",
		c.MisrouteAfter, c.MaxDetours, c.Select, c.PadAdjust, c.TransientRate, c.Seed, c.Check)
	if c.Burst != nil {
		fmt.Fprintf(h, " burst=%+v", *c.Burst)
	}
	if c.Hazard != nil {
		fmt.Fprintf(h, " hazard=%+v", *c.Hazard)
	}
	for _, ev := range c.Faults.Events() {
		fmt.Fprintf(h, " %s", ev)
	}
	return h.Sum64()
}

// SaveState appends the network's complete mutable state to a snapshot.
// Call it between Step calls (any cycle boundary); the encoding also
// covers the queues that are only non-empty mid-step, so the boundary
// requirement is about observational convention, not correctness.
func (n *Network) SaveState(e *snapshot.Encoder) {
	e.U64(n.ConfigFingerprint())
	e.Varint(n.cycle)

	for id := 0; id < n.nodes; id++ {
		for p := 0; p < n.deg; p++ {
			l := n.linkAt(id, p)
			if !l.exists {
				continue
			}
			e.Bool(l.up)
			e.Int(int(l.downRefs))
			e.Bool(l.busy)
			if l.busy {
				e.Int(int(l.vc))
				flit.PutFlit(e, &l.f)
			}
			e.Varint(l.flits)
		}
	}

	e.Uvarint(uint64(len(n.signals)))
	for _, s := range n.signals {
		e.Varint(int64(s.node))
		e.U8(uint8(s.sig.Kind))
		e.Int(s.sig.Port)
		e.Int(s.sig.VC)
		e.U64(uint64(s.sig.Worm))
	}
	e.Uvarint(uint64(len(n.credits)))
	for _, c := range n.credits {
		e.Varint(int64(c.node))
		e.Int(int(c.port))
		e.Int(int(c.vc))
		e.Int(int(c.n))
		e.Int(int(c.w))
	}
	e.Uvarint(uint64(len(n.fkills)))
	for _, f := range n.fkills {
		e.Varint(int64(f.node))
		e.Int(f.ch)
		e.U64(uint64(f.worm))
	}
	e.Uvarint(uint64(len(n.deliveries)))
	for i := range n.deliveries {
		d := &n.deliveries[i]
		e.U64(uint64(d.Msg))
		e.U64(uint64(d.Worm))
		e.Varint(int64(d.Src))
		e.Int(d.DataLen)
		e.Varint(d.Time)
		e.Bool(d.DataOK)
		flit.PutStamps(e, d.Stamps)
		e.Varint(d.HeadArrived)
	}

	// The worklists: in sharded mode they live per shard, holding only
	// owned nodes, so concatenating them in shard order (contiguous
	// ascending ranges) is their merged, globally ordered union — the
	// exact sequence the serial kernel would hold. The per-shard node
	// sets are sorted before the merge so the union is sorted with the
	// needs-sort flag clear, which both kernels accept on load.
	nbusy := len(n.busyLinks)
	for i := range n.shards {
		nbusy += len(n.shards[i].busyLinks)
	}
	e.Uvarint(uint64(nbusy))
	for _, ref := range n.busyLinks {
		e.Varint(int64(ref.node))
		e.Varint(int64(ref.port))
	}
	for i := range n.shards {
		for _, ref := range n.shards[i].busyLinks {
			e.Varint(int64(ref.node))
			e.Varint(int64(ref.port))
		}
	}
	if n.shards == nil {
		saveNodeSet(e, &n.activeR)
		saveNodeSet(e, &n.activeI)
	} else {
		saveMergedNodeSets(e, n.shards, func(sh *shard) *nodeSet { return &sh.activeR })
		saveMergedNodeSets(e, n.shards, func(sh *shard) *nodeSet { return &sh.activeI })
	}
	npend := len(n.recvPend)
	for i := range n.shards {
		npend += len(n.shards[i].recvPend)
	}
	e.Uvarint(uint64(npend))
	for _, id := range n.recvPend {
		e.Varint(int64(id))
	}
	for i := range n.shards {
		for _, id := range n.shards[i].recvPend {
			e.Varint(int64(id))
		}
	}

	n.corrupter.SaveState(e)
	if n.hazard != nil {
		// Presence is config-determined (cfg.Hazard), which the
		// fingerprint already pins, so no presence flag is needed.
		n.hazard.SaveState(e)
	}
	e.Int(n.hooks.Faults.Cursor())
	if n.health != nil {
		e.String(n.health.Error())
	} else {
		e.String("")
	}
	e.Varint(n.lastProgress)
	e.Varint(n.lastFault)
	e.Varint(n.killsDropped)
	e.Varint(n.flitsDropped)
	e.Varint(n.flitsDegraded)
	e.Varint(n.flitsInjected)
	e.Varint(n.flitsEjected)
	e.Varint(n.failEvents)

	// Components are constructed lazily; the snapshot covers the full
	// population, so materialize the stragglers (their state is still
	// pristine, and a pristine component encodes its initial state).
	n.forceConstruct()
	for id := range n.routers {
		n.routers[id].SaveState(e)
		n.injectors[id].SaveState(e)
		n.receivers[id].SaveState(e)
	}
}

// saveMergedNodeSets writes the shard-partitioned node sets as one
// sorted union: each shard's set is sorted in place (prepare is
// idempotent and deterministic), and shard order concatenation of
// contiguous ascending ranges is globally sorted, so the needs-sort
// flag is written clear.
func saveMergedNodeSets(e *snapshot.Encoder, shards []shard, pick func(*shard) *nodeSet) {
	total := 0
	for i := range shards {
		s := pick(&shards[i])
		s.prepare()
		total += len(s.ids)
	}
	e.Uvarint(uint64(total))
	for i := range shards {
		for _, id := range pick(&shards[i]).ids {
			e.Varint(int64(id))
		}
	}
	e.Bool(false)
}

// saveNodeSet encodes an activity worklist verbatim: the pending ids in
// their current order plus the needs-sort flag. The sets are not
// reconstructed from first principles on load because membership is not
// a pure function of the rest of the state (e.g. a stale FKILL leaves
// an idle injector in the set until its next tick prunes it), and any
// divergence would change worklist iteration against an unbroken run.
func saveNodeSet(e *snapshot.Encoder, s *nodeSet) {
	e.Uvarint(uint64(len(s.ids)))
	for _, id := range s.ids {
		e.Varint(int64(id))
	}
	e.Bool(s.dirty)
}

func loadNodeSet(d *snapshot.Decoder, s *nodeSet) error {
	count := d.Count(len(s.member))
	if err := d.Err(); err != nil {
		return err
	}
	s.reset()
	for i := 0; i < count; i++ {
		id := d.Varint()
		if err := d.Err(); err != nil {
			return err
		}
		if id < 0 || id >= int64(len(s.member)) {
			return fmt.Errorf("network: snapshot worklist id %d outside [0,%d)", id, len(s.member))
		}
		s.member[id] = true
		s.ids = append(s.ids, int32(id))
	}
	s.dirty = d.Bool()
	return d.Err()
}

// LoadState restores a state written by SaveState into a network built
// from the same configuration. The fingerprint is checked before any
// mutation; a mismatch (or any container-level corruption, which the
// snapshot file CRC rejects earlier) leaves the network untouched.
// After the fingerprint gate the decode mutates in place — the caller
// (see sim.Service.Restore and crsimd) treats any error as fatal for
// this network instance.
func (n *Network) LoadState(d *snapshot.Decoder) error {
	fp := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if want := n.ConfigFingerprint(); fp != want {
		return fmt.Errorf("network: snapshot fingerprint %016x does not match configuration %016x", fp, want)
	}
	n.cycle = d.Varint()

	for id := 0; id < n.nodes; id++ {
		for p := 0; p < n.deg; p++ {
			l := n.linkAt(id, p)
			if !l.exists {
				continue
			}
			l.up = d.Bool()
			l.downRefs = int16(d.Int())
			l.busy = d.Bool()
			if l.busy {
				l.vc = uint8(d.Int())
				l.f = flit.GetFlit(d)
			}
			l.flits = d.Varint()
		}
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("network: link state: %w", err)
	}

	nsig := d.Count(maxQueueItems)
	if err := d.Err(); err != nil {
		return err
	}
	n.signals = n.signals[:0]
	for i := 0; i < nsig; i++ {
		n.signals = append(n.signals, scheduledSignal{
			node: topology.NodeID(d.Varint()),
			sig: router.Signal{
				Kind: router.SignalKind(d.U8()),
				Port: d.Int(),
				VC:   d.Int(),
				Worm: flit.WormID(d.U64()),
			},
		})
	}
	ncred := d.Count(maxQueueItems)
	if err := d.Err(); err != nil {
		return err
	}
	n.credits = n.credits[:0]
	for i := 0; i < ncred; i++ {
		n.credits = append(n.credits, creditEvent{
			node: int32(d.Varint()),
			port: int16(d.Int()),
			vc:   uint8(d.Int()),
			n:    int32(d.Int()),
			w:    int32(d.Int()),
		})
	}
	nfk := d.Count(maxQueueItems)
	if err := d.Err(); err != nil {
		return err
	}
	n.fkills = n.fkills[:0]
	for i := 0; i < nfk; i++ {
		n.fkills = append(n.fkills, fkillReq{
			node: topology.NodeID(d.Varint()),
			ch:   d.Int(),
			worm: flit.WormID(d.U64()),
		})
	}
	ndel := d.Count(maxQueueItems)
	if err := d.Err(); err != nil {
		return err
	}
	n.deliveries = n.deliveries[:0]
	for i := 0; i < ndel; i++ {
		n.deliveries = append(n.deliveries, core.Delivery{
			Msg:         flit.MessageID(d.U64()),
			Worm:        flit.WormID(d.U64()),
			Src:         topology.NodeID(d.Varint()),
			DataLen:     d.Int(),
			Time:        d.Varint(),
			DataOK:      d.Bool(),
			Stamps:      flit.GetStamps(d),
			HeadArrived: d.Varint(),
		})
	}
	n.drained = n.drained[:0]

	nbusy := d.Count(maxQueueItems)
	if err := d.Err(); err != nil {
		return err
	}
	n.busyLinks = n.busyLinks[:0]
	for i := 0; i < nbusy; i++ {
		n.busyLinks = append(n.busyLinks, linkRef{
			node: int32(d.Varint()),
			port: int32(d.Varint()),
		})
	}
	n.linkScratch = n.linkScratch[:0]
	if err := loadNodeSet(d, &n.activeR); err != nil {
		return fmt.Errorf("network: activeR: %w", err)
	}
	if err := loadNodeSet(d, &n.activeI); err != nil {
		return fmt.Errorf("network: activeI: %w", err)
	}
	npend := d.Count(len(n.recvMark))
	if err := d.Err(); err != nil {
		return err
	}
	for _, id := range n.recvPend {
		n.recvMark[id] = false
	}
	n.recvPend = n.recvPend[:0]
	for i := 0; i < npend; i++ {
		id := d.Varint()
		if err := d.Err(); err != nil {
			return err
		}
		if id < 0 || id >= int64(len(n.recvMark)) {
			return fmt.Errorf("network: snapshot recvPend id %d outside [0,%d)", id, len(n.recvMark))
		}
		n.recvMark[id] = true
		n.recvPend = append(n.recvPend, int32(id))
	}

	if err := n.corrupter.LoadState(d); err != nil {
		return fmt.Errorf("network: corrupter: %w", err)
	}
	if n.hazard != nil {
		if err := n.hazard.LoadState(d); err != nil {
			return fmt.Errorf("network: hazard: %w", err)
		}
	}
	cursor := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if err := n.hooks.Faults.SetCursor(cursor); err != nil {
		return fmt.Errorf("network: fault timeline: %w", err)
	}
	if msg := d.String(); msg != "" {
		n.health = errors.New(msg)
	} else {
		n.health = nil
	}
	n.lastProgress = d.Varint()
	n.lastFault = d.Varint()
	n.killsDropped = d.Varint()
	n.flitsDropped = d.Varint()
	n.flitsDegraded = d.Varint()
	n.flitsInjected = d.Varint()
	n.flitsEjected = d.Varint()
	n.failEvents = d.Varint()
	if err := d.Err(); err != nil {
		return err
	}

	n.forceConstruct()
	for id := range n.routers {
		if err := n.routers[id].LoadState(d); err != nil {
			return err
		}
		if err := n.injectors[id].LoadState(d); err != nil {
			return fmt.Errorf("network: injector %d: %w", id, err)
		}
		if err := n.receivers[id].LoadState(d); err != nil {
			return fmt.Errorf("network: receiver %d: %w", id, err)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	n.redistributeWorklists()
	return nil
}

// redistributeWorklists moves the globally-loaded worklists onto the
// shards that own them (no-op on a serial network). LoadState decodes
// into the global structures exactly as the serial kernel holds them;
// splitting preserves relative order per shard, which is all the
// sharded kernel needs (sets re-sort on prepare, busy-link and recvPend
// entries were saved in globally ascending order).
func (n *Network) redistributeWorklists() {
	if n.shards == nil {
		return
	}
	for i := range n.shards {
		sh := &n.shards[i]
		sh.busyLinks = sh.busyLinks[:0]
		sh.activeR.reset()
		sh.activeI.reset()
		sh.recvPend = sh.recvPend[:0]
	}
	for _, ref := range n.busyLinks {
		sh := &n.shards[n.nodeShard[ref.node]]
		sh.busyLinks = append(sh.busyLinks, ref)
	}
	n.busyLinks = n.busyLinks[:0]
	for _, id := range n.activeR.ids {
		n.shards[n.nodeShard[id]].activeR.add(id)
	}
	n.activeR.reset()
	for _, id := range n.activeI.ids {
		n.shards[n.nodeShard[id]].activeI.add(id)
	}
	n.activeI.reset()
	for _, id := range n.recvPend {
		sh := &n.shards[n.nodeShard[id]]
		sh.recvPend = append(sh.recvPend, id)
	}
	n.recvPend = n.recvPend[:0]
}

// maxQueueItems bounds decoded queue lengths so a corrupt length field
// cannot drive a huge allocation before validation fails.
const maxQueueItems = 1 << 24
