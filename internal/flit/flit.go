// Package flit defines the flow-control units exchanged by wormhole
// routers, the message abstraction above them, and the per-flit checksum
// used by Fault-tolerant Compressionless Routing (FCR).
//
// A message is transmitted as a worm: a HEAD flit carrying routing
// information, zero or more DATA flits, and — under CR/FCR — PAD flits
// appended so the worm length reaches the protocol's minimum injection
// length. The final flit of a worm, whatever its kind, has Tail set.
// Tear-down (KILL/FKILL) is signalled out of band by the router package
// and is not a flit kind.
package flit

import (
	"fmt"

	"crnet/internal/topology"
)

// Kind classifies a flit's role within its worm.
type Kind uint8

// Flit kinds.
const (
	// Head is the first flit; it carries src, dst and framing metadata
	// and claims channels as it advances.
	Head Kind = iota
	// Data carries one payload word.
	Data
	// Pad is protocol padding appended by CR/FCR injectors; receivers
	// discard it.
	Pad
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Head:
		return "HEAD"
	case Data:
		return "DATA"
	case Pad:
		return "PAD"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MessageID identifies a message end to end, across retransmissions.
type MessageID uint64

// WormID identifies one transmission attempt of a message. The low byte
// is the attempt number, the rest the MessageID, so ids are unique per
// attempt and the parent message is recoverable.
type WormID uint64

// MaxAttempts is the number of attempts distinguishable inside a WormID.
const MaxAttempts = 256

// MakeWormID composes a worm id from a message id and an attempt number.
func MakeWormID(m MessageID, attempt int) WormID {
	return WormID(uint64(m)<<8 | uint64(attempt)&0xff)
}

// Message returns the message id a worm belongs to.
func (w WormID) Message() MessageID { return MessageID(uint64(w) >> 8) }

// Attempt returns the transmission attempt number (0 = first try).
func (w WormID) Attempt() int { return int(uint64(w) & 0xff) }

// Flit is one flow-control unit. Flits are passed by value through the
// simulator; the struct is kept small and flat deliberately.
type Flit struct {
	Worm WormID
	Seq  int // position within the worm, 0 = head
	Kind Kind
	Tail bool // set on the worm's final flit

	// Payload is the data word. For Head flits it is the encoded header
	// (see EncodeHeader); for Data flits a payload word; for Pad flits a
	// fixed filler pattern.
	Payload uint64

	// Check is the CRC-8 of the flit's identity and payload, computed by
	// Seal and verified by Verify. Fault injection flips payload or
	// checksum bits; Verify then fails.
	Check uint8

	// Src and Dst are the endpoints. They are carried on every flit for
	// simulator bookkeeping; real hardware keeps them only in the head.
	Src, Dst topology.NodeID

	// Detours counts the non-minimal hops the worm has taken, maintained
	// by routers on head flits to bound misrouting around permanent
	// faults. It is control metadata (like the tail mark) and is not
	// covered by the checksum.
	Detours uint8

	// Hops counts the network channels this worm's head has claimed,
	// maintained by routers for the livelock watchdog. Like Detours it
	// is control metadata outside the checksum, and restarts at zero on
	// each retransmission attempt.
	Hops uint16

	// Stamps carries the source-side phase timestamps used by the
	// observability layer's latency decomposition. The injector sets
	// them on head flits only; like Src/Dst they are simulator
	// bookkeeping outside the checksum (real hardware would not ship
	// them per flit).
	Stamps Stamps
}

// Stamps are the source-side phase timestamps of one transmission
// attempt, stamped onto the attempt's head flit. Together with the
// receiver-side arrival times they partition end-to-end latency into
// queueing, retransmission and network phases (see internal/obs).
type Stamps struct {
	// Create is the cycle the message was offered to the injector
	// (latency accounting starts here).
	Create int64
	// FirstInject is the cycle attempt 0's head flit entered the
	// injection channel — the end of the pure queueing phase.
	FirstInject int64
	// AttemptInject is the cycle this attempt's head flit entered the
	// injection channel; equals FirstInject for first-try deliveries.
	AttemptInject int64
	// Backoff is the cumulative cycles the source spent waiting out
	// retransmission gaps before this attempt (a sub-interval of the
	// FirstInject..AttemptInject retry phase).
	Backoff int64
}

// String implements fmt.Stringer for debugging output.
func (f Flit) String() string {
	tail := ""
	if f.Tail {
		tail = "|TAIL"
	}
	return fmt.Sprintf("{%s%s worm=%d.%d seq=%d %d->%d}",
		f.Kind, tail, f.Worm.Message(), f.Worm.Attempt(), f.Seq, f.Src, f.Dst)
}

// Header is the routing information carried in a head flit's payload.
type Header struct {
	Src, Dst topology.NodeID
	DataLen  int // number of data flits including the head
	Attempt  int
}

// Field widths for header encoding. 20-bit node ids support networks of
// up to ~1M nodes; 16-bit lengths support messages of up to 64K flits.
const (
	headerNodeBits = 20
	headerLenBits  = 16
	headerAttBits  = 8
	maxHeaderNode  = 1<<headerNodeBits - 1
	maxHeaderLen   = 1<<headerLenBits - 1
)

// EncodeHeader packs h into a 64-bit payload word. It returns an error if
// any field exceeds its width.
func EncodeHeader(h Header) (uint64, error) {
	if h.Src < 0 || int(h.Src) > maxHeaderNode {
		return 0, fmt.Errorf("flit: header src %d out of range", h.Src)
	}
	if h.Dst < 0 || int(h.Dst) > maxHeaderNode {
		return 0, fmt.Errorf("flit: header dst %d out of range", h.Dst)
	}
	if h.DataLen < 1 || h.DataLen > maxHeaderLen {
		return 0, fmt.Errorf("flit: header length %d out of range", h.DataLen)
	}
	if h.Attempt < 0 || h.Attempt >= MaxAttempts {
		return 0, fmt.Errorf("flit: header attempt %d out of range", h.Attempt)
	}
	w := uint64(h.Src)
	w |= uint64(h.Dst) << headerNodeBits
	w |= uint64(h.DataLen) << (2 * headerNodeBits)
	w |= uint64(h.Attempt) << (2*headerNodeBits + headerLenBits)
	return w, nil
}

// DecodeHeader unpacks a payload word produced by EncodeHeader.
func DecodeHeader(w uint64) Header {
	return Header{
		Src:     topology.NodeID(w & maxHeaderNode),
		Dst:     topology.NodeID((w >> headerNodeBits) & maxHeaderNode),
		DataLen: int((w >> (2 * headerNodeBits)) & maxHeaderLen),
		Attempt: int((w >> (2*headerNodeBits + headerLenBits)) & (MaxAttempts - 1)),
	}
}

// PadPayload is the filler pattern carried by PAD flits.
const PadPayload uint64 = 0xAAAAAAAAAAAAAAAA

// PayloadWord returns the deterministic payload of data flit seq of
// message m. Receivers regenerate it to verify end-to-end data integrity
// in tests and in the FCR delivery checker.
func PayloadWord(m MessageID, seq int) uint64 {
	x := uint64(m)*0x9e3779b97f4a7c15 + uint64(seq)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// crc8Table is the CRC-8 table for polynomial x^8+x^2+x+1 (0x07).
var crc8Table = makeCRC8Table(0x07)

func makeCRC8Table(poly uint8) [256]uint8 {
	var t [256]uint8
	for i := 0; i < 256; i++ {
		crc := uint8(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// CRC8 returns the CRC-8 (poly 0x07) of data with the given initial value.
func CRC8(init uint8, data ...byte) uint8 {
	crc := init
	for _, b := range data {
		crc = crc8Table[crc^b]
	}
	return crc
}

// checksum computes the flit's CRC over its kind, tail flag, sequence
// number and payload — everything a link fault could corrupt.
func (f *Flit) checksum() uint8 {
	var buf [11]byte
	buf[0] = byte(f.Kind)
	if f.Tail {
		buf[0] |= 0x80
	}
	buf[1] = byte(f.Seq)
	buf[2] = byte(f.Seq >> 8)
	for i := 0; i < 8; i++ {
		buf[3+i] = byte(f.Payload >> (8 * i))
	}
	return CRC8(0xff, buf[:]...)
}

// Seal computes and stores the flit's checksum.
func (f *Flit) Seal() { f.Check = f.checksum() }

// Verify reports whether the flit's checksum matches its contents.
func (f *Flit) Verify() bool { return f.Check == f.checksum() }

// Message is one end-to-end communication request: DataLen flits of data
// (including the head flit) from Src to Dst.
type Message struct {
	ID      MessageID
	Src     topology.NodeID
	Dst     topology.NodeID
	DataLen int // data flits including the head; >= 1

	// CreateTime is the cycle the message was offered to the injector;
	// latency accounting starts here.
	CreateTime int64
}

// Validate reports a descriptive error for malformed messages.
func (m Message) Validate(nodes int) error {
	if m.DataLen < 1 {
		return fmt.Errorf("flit: message %d has length %d", m.ID, m.DataLen)
	}
	if m.Src < 0 || int(m.Src) >= nodes || m.Dst < 0 || int(m.Dst) >= nodes {
		return fmt.Errorf("flit: message %d endpoints %d->%d outside [0,%d)", m.ID, m.Src, m.Dst, nodes)
	}
	if m.Src == m.Dst {
		return fmt.Errorf("flit: message %d is a self-send", m.ID)
	}
	return nil
}

// Frame describes one transmission attempt of a message: DataLen data
// flits followed by PadLen pad flits. TotalLen is their sum; the flit at
// index TotalLen-1 carries the tail mark.
type Frame struct {
	Msg     Message
	Attempt int
	PadLen  int
}

// TotalLen returns the worm length in flits.
func (fr Frame) TotalLen() int { return fr.Msg.DataLen + fr.PadLen }

// WormID returns the id of this attempt's worm.
func (fr Frame) WormID() WormID { return MakeWormID(fr.Msg.ID, fr.Attempt) }

// FlitAt materializes flit seq of the frame. It panics if seq is out of
// range. The flit is sealed (checksummed) and ready for injection.
func (fr Frame) FlitAt(seq int) Flit {
	total := fr.TotalLen()
	if seq < 0 || seq >= total {
		panic(fmt.Sprintf("flit: FlitAt(%d) outside worm of %d flits", seq, total))
	}
	f := Flit{
		Worm: fr.WormID(),
		Seq:  seq,
		Tail: seq == total-1,
		Src:  fr.Msg.Src,
		Dst:  fr.Msg.Dst,
	}
	switch {
	case seq == 0:
		f.Kind = Head
		w, err := EncodeHeader(Header{Src: fr.Msg.Src, Dst: fr.Msg.Dst, DataLen: fr.Msg.DataLen, Attempt: fr.Attempt})
		if err != nil {
			panic(err) // construction validated by the injector
		}
		f.Payload = w
	case seq < fr.Msg.DataLen:
		f.Kind = Data
		f.Payload = PayloadWord(fr.Msg.ID, seq)
	default:
		f.Kind = Pad
		f.Payload = PadPayload
	}
	f.Seal()
	return f
}
