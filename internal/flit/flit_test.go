package flit

import (
	"testing"
	"testing/quick"

	"crnet/internal/rng"
	"crnet/internal/topology"
)

func TestWormIDRoundTrip(t *testing.T) {
	f := func(m uint32, attempt uint8) bool {
		w := MakeWormID(MessageID(m), int(attempt))
		return w.Message() == MessageID(m) && w.Attempt() == int(attempt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(src, dst uint16, length uint16, attempt uint8) bool {
		h := Header{
			Src:     topology.NodeID(src),
			Dst:     topology.NodeID(dst),
			DataLen: int(length%maxHeaderLen) + 1,
			Attempt: int(attempt),
		}
		w, err := EncodeHeader(h)
		if err != nil {
			return false
		}
		return DecodeHeader(w) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderEncodeRejectsBadFields(t *testing.T) {
	bad := []Header{
		{Src: -1, Dst: 1, DataLen: 1},
		{Src: 1, Dst: maxHeaderNode + 1, DataLen: 1},
		{Src: 1, Dst: 2, DataLen: 0},
		{Src: 1, Dst: 2, DataLen: maxHeaderLen + 1},
		{Src: 1, Dst: 2, DataLen: 1, Attempt: MaxAttempts},
		{Src: 1, Dst: 2, DataLen: 1, Attempt: -1},
	}
	for i, h := range bad {
		if _, err := EncodeHeader(h); err == nil {
			t.Errorf("case %d: EncodeHeader(%+v) accepted invalid header", i, h)
		}
	}
}

func TestChecksumDetectsSingleBitFlips(t *testing.T) {
	fr := Frame{Msg: Message{ID: 7, Src: 3, Dst: 9, DataLen: 4}, Attempt: 1, PadLen: 2}
	for seq := 0; seq < fr.TotalLen(); seq++ {
		f := fr.FlitAt(seq)
		if !f.Verify() {
			t.Fatalf("fresh flit %d fails verification", seq)
		}
		for bit := 0; bit < 64; bit++ {
			g := f
			g.Payload ^= 1 << uint(bit)
			if g.Verify() {
				t.Fatalf("flit %d: payload bit %d flip undetected", seq, bit)
			}
		}
		for bit := 0; bit < 8; bit++ {
			g := f
			g.Check ^= 1 << uint(bit)
			if g.Verify() {
				t.Fatalf("flit %d: checksum bit %d flip undetected", seq, bit)
			}
		}
		g := f
		g.Tail = !g.Tail
		if g.Verify() {
			t.Fatalf("flit %d: tail flip undetected", seq)
		}
		g = f
		g.Seq ^= 1
		if g.Verify() {
			t.Fatalf("flit %d: seq flip undetected", seq)
		}
	}
}

// CRC-8 with poly 0x07 detects all double-bit errors within a byte
// payload window much smaller than its 127-bit guarantee span.
func TestChecksumDetectsDoubleBitFlips(t *testing.T) {
	fr := Frame{Msg: Message{ID: 21, Src: 0, Dst: 5, DataLen: 2}}
	f := fr.FlitAt(1)
	for b1 := 0; b1 < 64; b1++ {
		for b2 := b1 + 1; b2 < 64; b2++ {
			g := f
			g.Payload ^= 1<<uint(b1) | 1<<uint(b2)
			if g.Verify() {
				t.Fatalf("double flip (%d,%d) undetected", b1, b2)
			}
		}
	}
}

func TestCRC8KnownVector(t *testing.T) {
	// CRC-8/CCITT ("CRC-8" in the catalog: poly 0x07, init 0x00) of
	// "123456789" is 0xF4.
	data := []byte("123456789")
	if got := CRC8(0, data...); got != 0xf4 {
		t.Fatalf("CRC8(\"123456789\") = %#x, want 0xf4", got)
	}
}

func TestFrameStructure(t *testing.T) {
	msg := Message{ID: 3, Src: 1, Dst: 2, DataLen: 5}
	fr := Frame{Msg: msg, Attempt: 2, PadLen: 3}
	if fr.TotalLen() != 8 {
		t.Fatalf("TotalLen = %d, want 8", fr.TotalLen())
	}
	for seq := 0; seq < fr.TotalLen(); seq++ {
		f := fr.FlitAt(seq)
		wantKind := Data
		switch {
		case seq == 0:
			wantKind = Head
		case seq >= msg.DataLen:
			wantKind = Pad
		}
		if f.Kind != wantKind {
			t.Errorf("seq %d: kind %v, want %v", seq, f.Kind, wantKind)
		}
		if f.Tail != (seq == 7) {
			t.Errorf("seq %d: tail = %v", seq, f.Tail)
		}
		if f.Worm != MakeWormID(3, 2) {
			t.Errorf("seq %d: worm id %d", seq, f.Worm)
		}
		if !f.Verify() {
			t.Errorf("seq %d: bad checksum on fresh flit", seq)
		}
	}
	head := DecodeHeader(fr.FlitAt(0).Payload)
	if head.Src != 1 || head.Dst != 2 || head.DataLen != 5 || head.Attempt != 2 {
		t.Errorf("decoded header %+v", head)
	}
}

func TestFrameSingleFlitMessage(t *testing.T) {
	fr := Frame{Msg: Message{ID: 1, Src: 0, Dst: 1, DataLen: 1}}
	f := fr.FlitAt(0)
	if f.Kind != Head || !f.Tail {
		t.Fatalf("single-flit worm should be HEAD|TAIL, got %v tail=%v", f.Kind, f.Tail)
	}
}

func TestFrameFlitAtPanicsOutOfRange(t *testing.T) {
	fr := Frame{Msg: Message{ID: 1, Src: 0, Dst: 1, DataLen: 2}}
	for _, seq := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FlitAt(%d) did not panic", seq)
				}
			}()
			fr.FlitAt(seq)
		}()
	}
}

func TestPayloadWordDeterministicAndSpread(t *testing.T) {
	if PayloadWord(5, 3) != PayloadWord(5, 3) {
		t.Fatal("PayloadWord not deterministic")
	}
	seen := map[uint64]bool{}
	for m := MessageID(0); m < 50; m++ {
		for s := 0; s < 50; s++ {
			w := PayloadWord(m, s)
			if seen[w] {
				t.Fatalf("payload collision at msg=%d seq=%d", m, s)
			}
			seen[w] = true
		}
	}
}

func TestMessageValidate(t *testing.T) {
	cases := []struct {
		m  Message
		ok bool
	}{
		{Message{ID: 1, Src: 0, Dst: 1, DataLen: 4}, true},
		{Message{ID: 2, Src: 0, Dst: 0, DataLen: 4}, false},
		{Message{ID: 3, Src: 0, Dst: 1, DataLen: 0}, false},
		{Message{ID: 4, Src: -1, Dst: 1, DataLen: 4}, false},
		{Message{ID: 5, Src: 0, Dst: 100, DataLen: 4}, false},
	}
	for _, c := range cases {
		err := c.m.Validate(16)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.m, err, c.ok)
		}
	}
}

func TestKindString(t *testing.T) {
	if Head.String() != "HEAD" || Data.String() != "DATA" || Pad.String() != "PAD" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

// Random corruption of random fields must be detected with overwhelming
// probability (CRC-8 false-accept rate is 1/256 for random garbage; we
// corrupt with structured single-field damage which is always caught for
// <=2-bit flips, so accept zero misses here for up to 2 flipped bits).
func TestQuickRandomCorruptionDetected(t *testing.T) {
	r := rng.New(1)
	fr := Frame{Msg: Message{ID: 99, Src: 2, Dst: 14, DataLen: 8}, PadLen: 4}
	for trial := 0; trial < 5000; trial++ {
		f := fr.FlitAt(r.Intn(fr.TotalLen()))
		nbits := 1 + r.Intn(2)
		for i := 0; i < nbits; i++ {
			f.Payload ^= 1 << uint(r.Intn(64))
		}
		if f.Verify() {
			// The two flips may have cancelled.
			g := fr.FlitAt(f.Seq)
			if g.Payload != f.Payload {
				t.Fatalf("trial %d: %d-bit corruption undetected", trial, nbits)
			}
		}
	}
}

func BenchmarkFlitAtAndSeal(b *testing.B) {
	fr := Frame{Msg: Message{ID: 42, Src: 1, Dst: 200, DataLen: 16}, PadLen: 8}
	total := fr.TotalLen()
	for i := 0; i < b.N; i++ {
		_ = fr.FlitAt(i % total)
	}
}

func BenchmarkVerify(b *testing.B) {
	f := (Frame{Msg: Message{ID: 42, Src: 1, Dst: 200, DataLen: 16}}).FlitAt(3)
	for i := 0; i < b.N; i++ {
		if !f.Verify() {
			b.Fatal("verify failed")
		}
	}
}
