package flit

import (
	"crnet/internal/snapshot"

	"crnet/internal/topology"
)

// Checkpoint codecs for the flit-layer value types. Every field is
// encoded explicitly in declaration order; in-flight worms keep their
// full identity (worm id, checksum, detour/hop control metadata and
// the source-side Stamps) so a restored run's deliveries are
// byte-identical to an unbroken one's.

// PutStamps appends s to a snapshot.
func PutStamps(e *snapshot.Encoder, s Stamps) {
	e.Varint(s.Create)
	e.Varint(s.FirstInject)
	e.Varint(s.AttemptInject)
	e.Varint(s.Backoff)
}

// GetStamps reads a Stamps written by PutStamps.
func GetStamps(d *snapshot.Decoder) Stamps {
	return Stamps{
		Create:        d.Varint(),
		FirstInject:   d.Varint(),
		AttemptInject: d.Varint(),
		Backoff:       d.Varint(),
	}
}

// PutFlit appends f to a snapshot.
func PutFlit(e *snapshot.Encoder, f *Flit) {
	e.U64(uint64(f.Worm))
	e.Int(f.Seq)
	e.U8(uint8(f.Kind))
	e.Bool(f.Tail)
	e.U64(f.Payload)
	e.U8(f.Check)
	e.Varint(int64(f.Src))
	e.Varint(int64(f.Dst))
	e.U8(f.Detours)
	e.U16(f.Hops)
	PutStamps(e, f.Stamps)
}

// GetFlit reads a Flit written by PutFlit.
func GetFlit(d *snapshot.Decoder) Flit {
	return Flit{
		Worm:    WormID(d.U64()),
		Seq:     d.Int(),
		Kind:    Kind(d.U8()),
		Tail:    d.Bool(),
		Payload: d.U64(),
		Check:   d.U8(),
		Src:     topology.NodeID(d.Varint()),
		Dst:     topology.NodeID(d.Varint()),
		Detours: d.U8(),
		Hops:    d.U16(),
		Stamps:  GetStamps(d),
	}
}

// PutMessage appends m to a snapshot.
func PutMessage(e *snapshot.Encoder, m Message) {
	e.U64(uint64(m.ID))
	e.Varint(int64(m.Src))
	e.Varint(int64(m.Dst))
	e.Int(m.DataLen)
	e.Varint(m.CreateTime)
}

// GetMessage reads a Message written by PutMessage.
func GetMessage(d *snapshot.Decoder) Message {
	return Message{
		ID:         MessageID(d.U64()),
		Src:        topology.NodeID(d.Varint()),
		Dst:        topology.NodeID(d.Varint()),
		DataLen:    d.Int(),
		CreateTime: d.Varint(),
	}
}

// PutFrame appends fr to a snapshot.
func PutFrame(e *snapshot.Encoder, fr Frame) {
	PutMessage(e, fr.Msg)
	e.Int(fr.Attempt)
	e.Int(fr.PadLen)
}

// GetFrame reads a Frame written by PutFrame.
func GetFrame(d *snapshot.Decoder) Frame {
	return Frame{
		Msg:     GetMessage(d),
		Attempt: d.Int(),
		PadLen:  d.Int(),
	}
}
