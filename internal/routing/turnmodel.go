package routing

import (
	"fmt"

	"crnet/internal/topology"
)

// WestFirst is Glass & Ni's west-first turn-model routing for 2-D
// meshes (the paper's reference [19]): all -x ("west") hops are taken
// first, deterministically; the remaining +x/+y/-y hops are fully
// adaptive. Prohibiting the four turns into the west direction breaks
// every channel-dependency cycle, so west-first is deadlock-free on
// meshes with no virtual channels — but, as the paper notes, it does
// not extend to tori, where wraparound channels reintroduce cycles.
//
// It is included as the "partially adaptive, no VCs" baseline between
// DOR (no adaptivity) and CR (full adaptivity).
type WestFirst struct{}

// Name implements Algorithm.
func (WestFirst) Name() string { return "west-first" }

// MinVCs implements Algorithm.
func (WestFirst) MinVCs(topo topology.Topology) int {
	mustBe2DMesh(topo)
	return 1
}

func mustBe2DMesh(topo topology.Topology) *topology.Grid {
	g, ok := topo.(*topology.Grid)
	if !ok || g.Wrap() || g.Dims() != 2 {
		panic(fmt.Sprintf("routing: west-first requires a 2-D mesh, got %s", topo.Name()))
	}
	return g
}

// Route implements Algorithm.
func (WestFirst) Route(req Request, buf []Candidate) []Candidate {
	g := mustBe2DMesh(req.Topo)
	cx, cy := g.Coord(req.Cur, 0), g.Coord(req.Cur, 1)
	dx, dy := g.Coord(req.Dst, 0), g.Coord(req.Dst, 1)
	addAll := func(p topology.Port) []Candidate {
		if !req.linkUp(p) {
			return buf
		}
		for vc := 0; vc < req.NumVCs; vc++ {
			buf = append(buf, Candidate{Port: p, VC: vc})
		}
		return buf
	}
	if dx < cx {
		// West hops remain: west only, no other direction may precede
		// them (taking one would need a prohibited turn back west).
		return addAll(topology.PortFor(0, false))
	}
	// West is done (or never needed): adaptive over the productive
	// non-west directions.
	if dx > cx {
		buf = addAll(topology.PortFor(0, true))
	}
	if dy > cy {
		buf = addAll(topology.PortFor(1, true))
	} else if dy < cy {
		buf = addAll(topology.PortFor(1, false))
	}
	return buf
}

var _ Algorithm = WestFirst{}
