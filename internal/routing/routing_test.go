package routing

import (
	"testing"
	"testing/quick"

	"crnet/internal/topology"
)

func req(topo topology.Topology, cur, dst topology.NodeID, vcs int) Request {
	return Request{Topo: topo, Cur: cur, Dst: dst, InPort: topology.InvalidPort, InVC: -1, NumVCs: vcs}
}

// followDOR walks a worm from src to dst using the first candidate at
// each hop and returns the visited nodes (including endpoints).
func followDOR(t *testing.T, alg Algorithm, topo topology.Topology, src, dst topology.NodeID, vcs int) []topology.NodeID {
	t.Helper()
	path := []topology.NodeID{src}
	cur := src
	inPort, inVC := topology.InvalidPort, -1
	for cur != dst {
		cands := alg.Route(Request{Topo: topo, Cur: cur, Dst: dst, InPort: inPort, InVC: inVC, NumVCs: vcs}, nil)
		if len(cands) == 0 {
			t.Fatalf("%s: no candidate at %d toward %d", alg.Name(), cur, dst)
		}
		c := cands[0]
		next, ok := topo.Neighbor(cur, c.Port)
		if !ok {
			t.Fatalf("%s: candidate port %d unconnected at %d", alg.Name(), c.Port, cur)
		}
		inPort = topo.ReversePort(cur, c.Port)
		inVC = c.VC
		cur = next
		path = append(path, cur)
		if len(path) > topo.Nodes() {
			t.Fatalf("%s: path from %d to %d does not terminate", alg.Name(), src, dst)
		}
	}
	return path
}

func TestDORPathLengthIsDistance(t *testing.T) {
	topos := []topology.Topology{
		topology.NewTorus(8, 2),
		topology.NewTorus(5, 2),
		topology.NewMesh(6, 2),
		topology.NewTorus(4, 3),
		topology.NewHypercube(5),
	}
	alg := DOR{}
	for _, topo := range topos {
		vcs := alg.MinVCs(topo)
		n := topo.Nodes()
		step := 1
		if n > 64 {
			step = n / 64
		}
		for a := 0; a < n; a += step {
			for b := 0; b < n; b += step {
				if a == b {
					continue
				}
				path := followDOR(t, alg, topo, topology.NodeID(a), topology.NodeID(b), vcs)
				if got, want := len(path)-1, topo.Distance(topology.NodeID(a), topology.NodeID(b)); got != want {
					t.Fatalf("%s: DOR path %d->%d has %d hops, want %d", topo.Name(), a, b, got, want)
				}
			}
		}
	}
}

func TestDORIsDeterministicSinglePort(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	alg := DOR{}
	vcs := alg.MinVCs(topo)
	cands := alg.Route(req(topo, 3, 42, vcs), nil)
	port := cands[0].Port
	for _, c := range cands {
		if c.Port != port {
			t.Fatalf("DOR offered two ports: %d and %d", port, c.Port)
		}
	}
}

func TestDORLanesProduceOneCandidatePerLane(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	alg := DOR{Lanes: 4}
	vcs := alg.MinVCs(topo) // 8
	if vcs != 8 {
		t.Fatalf("MinVCs = %d, want 8", vcs)
	}
	cands := alg.Route(req(topo, 0, 3, vcs), nil)
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want 4 (one per lane)", len(cands))
	}
	// All candidates share the dateline class (same parity).
	for _, c := range cands {
		if c.VC%2 != cands[0].VC%2 {
			t.Fatalf("lane candidates mix dateline classes: %v", cands)
		}
	}
}

// The Dally-Seitz rule: the VC class changes exactly when the worm
// crosses the wraparound channel, and class-0 usage never includes a
// wrap channel.
func TestDORDatelineClassFlipsAtWrap(t *testing.T) {
	g := topology.NewTorus(8, 1)
	alg := DOR{}
	vcs := alg.MinVCs(g)
	// 6 -> 2 going + crosses the wrap channel 7->0.
	cur := topology.NodeID(6)
	dst := topology.NodeID(2)
	inPort, inVC := topology.InvalidPort, -1
	sawWrapOnClass0 := false
	classes := []int{}
	for cur != dst {
		c := alg.Route(Request{Topo: g, Cur: cur, Dst: dst, InPort: inPort, InVC: inVC, NumVCs: vcs}, nil)[0]
		classes = append(classes, c.VC)
		if g.CrossesDateline(cur, c.Port) && c.VC == 0 {
			sawWrapOnClass0 = true
		}
		next, _ := g.Neighbor(cur, c.Port)
		inPort = g.ReversePort(cur, c.Port)
		inVC = c.VC
		cur = next
	}
	if sawWrapOnClass0 {
		t.Fatal("wraparound channel used with class 0")
	}
	// Expect class 1 before the wrap (6,7) and class 0 after (0,1).
	want := []int{1, 1, 0, 0}
	if len(classes) != len(want) {
		t.Fatalf("path classes %v, want %v", classes, want)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("path classes %v, want %v", classes, want)
		}
	}
}

// Acyclicity check for DOR+dateline on a torus ring: build the channel
// dependency graph over all (channel, class) pairs induced by all
// source/destination pairs and verify it has no cycle.
func TestDORChannelDependencyGraphAcyclic(t *testing.T) {
	for _, k := range []int{4, 5, 8} {
		g := topology.NewTorus(k, 1)
		alg := DOR{}
		vcs := alg.MinVCs(g)
		type chvc struct {
			node topology.NodeID
			port topology.Port
			vc   int
		}
		index := map[chvc]int{}
		id := func(c chvc) int {
			if v, ok := index[c]; ok {
				return v
			}
			index[c] = len(index)
			return index[c]
		}
		edges := map[int]map[int]bool{}
		addEdge := func(a, b int) {
			if edges[a] == nil {
				edges[a] = map[int]bool{}
			}
			edges[a][b] = true
		}
		for s := 0; s < k; s++ {
			for d := 0; d < k; d++ {
				if s == d {
					continue
				}
				cur := topology.NodeID(s)
				inPort, inVC := topology.InvalidPort, -1
				var prev *chvc
				for cur != topology.NodeID(d) {
					c := alg.Route(Request{Topo: g, Cur: cur, Dst: topology.NodeID(d), InPort: inPort, InVC: inVC, NumVCs: vcs}, nil)[0]
					cv := chvc{cur, c.Port, c.VC}
					if prev != nil {
						addEdge(id(*prev), id(cv))
					}
					prev = &cv
					next, _ := g.Neighbor(cur, c.Port)
					inPort = g.ReversePort(cur, c.Port)
					inVC = c.VC
					cur = next
				}
			}
		}
		// DFS cycle detection.
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := make([]int, len(index))
		var visit func(v int) bool
		visit = func(v int) bool {
			color[v] = gray
			for w := range edges[v] {
				if color[w] == gray {
					return false
				}
				if color[w] == white && !visit(w) {
					return false
				}
			}
			color[v] = black
			return true
		}
		for v := range color {
			if color[v] == white && !visit(v) {
				t.Fatalf("k=%d: channel dependency cycle found", k)
			}
		}
	}
}

func TestMinimalAdaptiveCandidatesAreMinimalAndCoverAllVCs(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	alg := MinimalAdaptive{}
	const vcs = 3
	f := func(aRaw, bRaw uint16) bool {
		a := topology.NodeID(int(aRaw) % topo.Nodes())
		b := topology.NodeID(int(bRaw) % topo.Nodes())
		cands := alg.Route(req(topo, a, b, vcs), nil)
		if a == b {
			return len(cands) == 0
		}
		d := topo.Distance(a, b)
		ports := map[topology.Port]int{}
		for _, c := range cands {
			next, ok := topo.Neighbor(a, c.Port)
			if !ok || topo.Distance(next, b) != d-1 {
				return false
			}
			if c.VC < 0 || c.VC >= vcs || c.Escape {
				return false
			}
			ports[c.Port]++
		}
		for _, n := range ports {
			if n != vcs {
				return false
			}
		}
		return len(ports) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalAdaptiveOffersMultiplePortsOffDiagonal(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg := MinimalAdaptive{}
	cands := alg.Route(req(g, g.Node(0, 0), g.Node(3, 3), 1), nil)
	ports := map[topology.Port]bool{}
	for _, c := range cands {
		ports[c.Port] = true
	}
	if len(ports) != 2 {
		t.Fatalf("expected 2 productive ports toward (3,3), got %v", ports)
	}
}

func TestMinimalAdaptiveDeadLinkFiltering(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg := MinimalAdaptive{}
	deadPort := topology.PortFor(0, true) // +x dead
	r := req(g, g.Node(0, 0), g.Node(3, 3), 1)
	r.LinkUp = func(p topology.Port) bool { return p != deadPort }
	cands := alg.Route(r, nil)
	if len(cands) != 1 || cands[0].Port != topology.PortFor(1, true) {
		t.Fatalf("expected only +y candidate, got %v", cands)
	}
}

func TestMinimalAdaptiveMisrouteOnlyWhenAllMinimalDead(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg := MinimalAdaptive{}
	// Destination straight +x; kill the +x link.
	r := req(g, g.Node(0, 0), g.Node(2, 0), 1)
	r.AllowMisroute = true
	r.LinkUp = func(p topology.Port) bool { return p != topology.PortFor(0, true) }
	cands := alg.Route(r, nil)
	if len(cands) == 0 {
		t.Fatal("misrouting produced no candidates")
	}
	for _, c := range cands {
		if c.Port == topology.PortFor(0, true) {
			t.Fatal("dead link offered")
		}
	}
	// Without AllowMisroute the same situation must yield nothing.
	r.AllowMisroute = false
	if cands := alg.Route(r, nil); len(cands) != 0 {
		t.Fatalf("expected no candidates without misroute, got %v", cands)
	}
	// Misroute must never offer the arrival port back.
	r.AllowMisroute = true
	r.InPort = topology.PortFor(1, false)
	for _, c := range alg.Route(r, nil) {
		if c.Port == r.InPort {
			t.Fatal("misroute offered the arrival port")
		}
	}
}

func TestDuatoCandidateStructure(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg := Duato{AdaptiveVCs: 2}
	vcs := alg.MinVCs(g)
	if vcs != 4 {
		t.Fatalf("MinVCs = %d, want 4", vcs)
	}
	cands := alg.Route(req(g, g.Node(0, 0), g.Node(3, 3), vcs), nil)
	// 2 minimal ports x 2 adaptive VCs + 1 escape.
	if len(cands) != 5 {
		t.Fatalf("got %d candidates, want 5: %v", len(cands), cands)
	}
	escapes := 0
	for i, c := range cands {
		if c.Escape {
			escapes++
			if i != len(cands)-1 {
				t.Fatal("escape candidate not last")
			}
			if !InEscapeClass(c.VC) {
				t.Fatal("escape candidate outside escape class")
			}
		} else if InEscapeClass(c.VC) {
			t.Fatal("adaptive candidate inside escape class")
		}
	}
	if escapes != 1 {
		t.Fatalf("got %d escape candidates, want 1", escapes)
	}
}

func TestDuatoWormStaysInEscapeClass(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg := Duato{AdaptiveVCs: 2}
	vcs := alg.MinVCs(g)
	r := req(g, g.Node(1, 0), g.Node(3, 3), vcs)
	r.InPort = topology.PortFor(0, false) // arrived from -x side
	r.InVC = 0                            // on an escape channel
	cands := alg.Route(r, nil)
	if len(cands) != 1 || !cands[0].Escape {
		t.Fatalf("escaped worm got %v, want single escape candidate", cands)
	}
}

func TestDuatoInjectionGetsAdaptive(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg := Duato{AdaptiveVCs: 1}
	vcs := alg.MinVCs(g)
	cands := alg.Route(req(g, g.Node(0, 0), g.Node(1, 0), vcs), nil)
	adaptive := 0
	for _, c := range cands {
		if !c.Escape {
			adaptive++
		}
	}
	if adaptive == 0 {
		t.Fatal("freshly injected worm offered no adaptive candidates")
	}
}

func TestAlgorithmNames(t *testing.T) {
	if (DOR{}).Name() == "" || (MinimalAdaptive{}).Name() == "" || (Duato{}).Name() == "" {
		t.Fatal("empty algorithm name")
	}
	if (DOR{Lanes: 2}).Name() != "DOR(lanes=2)" {
		t.Fatalf("unexpected name %q", (DOR{Lanes: 2}).Name())
	}
}

func TestDORMinVCsByTopology(t *testing.T) {
	if got := (DOR{}).MinVCs(topology.NewTorus(8, 2)); got != 2 {
		t.Errorf("torus MinVCs = %d, want 2", got)
	}
	if got := (DOR{}).MinVCs(topology.NewMesh(8, 2)); got != 1 {
		t.Errorf("mesh MinVCs = %d, want 1", got)
	}
	if got := (DOR{}).MinVCs(topology.NewHypercube(4)); got != 1 {
		t.Errorf("hypercube MinVCs = %d, want 1", got)
	}
}

func TestHypercubeDORRoutesLowestDimensionFirst(t *testing.T) {
	h := topology.NewHypercube(4)
	alg := DOR{}
	cands := alg.Route(req(h, 0b0000, 0b1010, 1), nil)
	if len(cands) != 1 || cands[0].Port != 1 {
		t.Fatalf("expected port 1 (lowest differing bit), got %v", cands)
	}
}
