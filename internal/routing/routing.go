// Package routing implements the routing algorithms evaluated in the
// Compressionless Routing paper:
//
//   - DOR: deterministic dimension-order (e-cube) routing, with the
//     Dally-Seitz two-class virtual-channel discipline on torus wraparound
//     rings and optional extra virtual lanes — the paper's baseline.
//   - MinimalAdaptive: fully adaptive minimal routing with no virtual
//     channel restrictions — the routing freedom CR grants, relying on the
//     CR kill/retry protocol (not the routing function) for deadlock
//     freedom.
//   - Duato: minimal adaptive routing over an adaptive virtual-channel
//     class plus a DOR-routed escape class; used to estimate how often
//     potential deadlock situations (PDS) arise, exactly as the paper's
//     Section 6 does.
//
// A routing algorithm maps a Request (where am I, where is the worm going,
// how did it arrive) to an ordered list of Candidates (output port +
// virtual channel). The router allocates the first free candidate; order
// therefore encodes preference, and adaptivity comes from offering many
// candidates.
package routing

import (
	"fmt"

	"crnet/internal/topology"
)

// Candidate is one legal output assignment for a worm's header.
type Candidate struct {
	Port topology.Port
	VC   int
	// Escape marks dimension-order escape channels in Duato's scheme;
	// the router counts allocations of escape candidates as potential
	// deadlock situations (PDS).
	Escape bool
}

// Request carries everything an algorithm may consult when routing a
// header flit.
type Request struct {
	Topo topology.Topology
	Cur  topology.NodeID
	Dst  topology.NodeID

	// InPort is the port the worm arrived on (the reverse channel's port
	// at Cur), or topology.InvalidPort when the worm is being injected.
	InPort topology.Port

	// InVC is the virtual channel the worm arrived on, or -1 when the
	// worm is being injected. Class-structured algorithms (Duato) use it
	// to keep worms that entered the escape class inside it.
	InVC int

	// NumVCs is the number of virtual channels per physical channel in
	// this network.
	NumVCs int

	// AllowMisroute permits non-minimal candidates when every minimal
	// port is unusable (dead link). CR sets it on late retransmission
	// attempts to route around permanent faults.
	AllowMisroute bool

	// LinkUp reports whether the outgoing link of Cur on a port is
	// operational. A nil LinkUp means all links are up.
	LinkUp func(topology.Port) bool

	// PortBuf is optional caller-provided scratch for MinimalPorts calls.
	// Routers pass a per-router buffer so steady-state routing does not
	// allocate; a nil PortBuf makes the algorithm allocate its own.
	PortBuf []topology.Port
}

// portScratch returns the scratch slice for MinimalPorts, length 0.
func (r Request) portScratch() []topology.Port {
	if r.PortBuf != nil {
		return r.PortBuf[:0]
	}
	return make([]topology.Port, 0, 8)
}

func (r Request) linkUp(p topology.Port) bool {
	if _, ok := r.Topo.Neighbor(r.Cur, p); !ok {
		return false
	}
	return r.LinkUp == nil || r.LinkUp(p)
}

// Algorithm produces candidate outputs for a header flit.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string

	// MinVCs returns the smallest number of virtual channels per physical
	// channel the algorithm needs for correct (deadlock-free where the
	// algorithm promises it) operation on topo.
	MinVCs(topo topology.Topology) int

	// Route appends candidates for the request to buf in preference
	// order and returns the extended slice. An empty result at
	// Cur != Dst means the worm cannot advance (all ports dead and
	// misrouting not allowed); the CR injector will eventually kill and
	// retry it.
	Route(req Request, buf []Candidate) []Candidate
}

// torusClass returns the Dally-Seitz virtual-channel class (0 or 1) for
// travel on port p of a torus at coordinate cur toward coordinate dst in
// p's dimension. Class changes exactly when the ring's wraparound channel
// is crossed, which breaks the ring's channel-dependency cycle.
func torusClass(cur, dst int, plus bool) int {
	if plus {
		if cur < dst {
			return 0
		}
		return 1
	}
	if cur > dst {
		return 0
	}
	return 1
}

// dorPort returns the single dimension-order port for cur->dst on a grid,
// and the VC class to use on it (always 0 on meshes). ok is false when
// cur == dst.
func dorPort(g *topology.Grid, cur, dst topology.NodeID) (p topology.Port, class int, ok bool) {
	for d := 0; d < g.Dims(); d++ {
		cc, dc := g.Coord(cur, d), g.Coord(dst, d)
		if cc == dc {
			continue
		}
		var plus bool
		if g.Wrap() {
			fwd := dc - cc
			if fwd < 0 {
				fwd += g.Radix()
			}
			bwd := g.Radix() - fwd
			// Deterministic tie-break: equidistant goes +.
			plus = fwd <= bwd
			return topology.PortFor(d, plus), torusClass(cc, dc, plus), true
		}
		plus = dc > cc
		return topology.PortFor(d, plus), 0, true
	}
	return topology.InvalidPort, 0, false
}

// DOR is deterministic dimension-order routing. On tori each virtual lane
// is split into the two Dally-Seitz dateline classes, so a torus needs
// 2*Lanes virtual channels and a mesh or hypercube needs Lanes.
//
// Lanes > 1 reproduces the paper's "additional virtual channels used as
// virtual lanes" DOR configurations (Fig. 14(c),(d)): the path is fixed,
// but a header may claim any free lane.
type DOR struct {
	// Lanes is the number of virtual lanes; 0 means 1.
	Lanes int
}

func (d DOR) lanes() int {
	if d.Lanes <= 0 {
		return 1
	}
	return d.Lanes
}

// Name implements Algorithm.
func (d DOR) Name() string { return fmt.Sprintf("DOR(lanes=%d)", d.lanes()) }

// MinVCs implements Algorithm.
func (d DOR) MinVCs(topo topology.Topology) int {
	if needsDateline(topo) {
		return 2 * d.lanes()
	}
	return d.lanes()
}

func needsDateline(topo topology.Topology) bool {
	g, ok := topo.(*topology.Grid)
	return ok && g.Wrap() && g.Radix() > 2
}

// Route implements Algorithm.
func (d DOR) Route(req Request, buf []Candidate) []Candidate {
	switch topo := req.Topo.(type) {
	case *topology.Grid:
		p, class, ok := dorPort(topo, req.Cur, req.Dst)
		if !ok || !req.linkUp(p) {
			return buf
		}
		lanes := d.lanes()
		if !needsDateline(topo) {
			for lane := 0; lane < lanes && lane < req.NumVCs; lane++ {
				buf = append(buf, Candidate{Port: p, VC: lane})
			}
			return buf
		}
		for lane := 0; lane < lanes; lane++ {
			vc := lane*2 + class
			if vc < req.NumVCs {
				buf = append(buf, Candidate{Port: p, VC: vc})
			}
		}
		return buf
	case *topology.Hypercube:
		// e-cube on the hypercube: correct lowest differing dimension.
		diff := uint32(req.Cur ^ req.Dst)
		for dim := 0; diff != 0; dim++ {
			if diff&1 != 0 {
				p := topology.Port(dim)
				if req.linkUp(p) {
					for lane := 0; lane < d.lanes() && lane < req.NumVCs; lane++ {
						buf = append(buf, Candidate{Port: p, VC: lane})
					}
				}
				return buf
			}
			diff >>= 1
		}
		return buf
	default:
		panic(fmt.Sprintf("routing: DOR does not support topology %T", req.Topo))
	}
}

// MinimalAdaptive is the fully adaptive minimal routing function used by
// CR and FCR: any minimal port, any virtual channel. It provides no
// deadlock freedom of its own; CR's source-timeout kill/retry protocol
// supplies it, which is the paper's central point. With AllowMisroute it
// additionally offers live non-minimal ports (never the arrival port)
// when every minimal port's link is dead, enabling routing around
// permanent faults.
type MinimalAdaptive struct{}

// Name implements Algorithm.
func (MinimalAdaptive) Name() string { return "minimal-adaptive" }

// MinVCs implements Algorithm: CR needs no virtual channels at all.
func (MinimalAdaptive) MinVCs(topology.Topology) int { return 1 }

// Route implements Algorithm.
func (MinimalAdaptive) Route(req Request, buf []Candidate) []Candidate {
	minimal := req.Topo.MinimalPorts(req.Cur, req.Dst, req.portScratch())
	anyLive := false
	for _, p := range minimal {
		if !req.linkUp(p) {
			continue
		}
		anyLive = true
		for vc := 0; vc < req.NumVCs; vc++ {
			buf = append(buf, Candidate{Port: p, VC: vc})
		}
	}
	if anyLive || !req.AllowMisroute {
		return buf
	}
	// All minimal links are dead: offer every other live port except the
	// one the worm arrived on (to avoid a trivial bounce).
	for p := topology.Port(0); int(p) < req.Topo.Degree(); p++ {
		if p == req.InPort || !req.linkUp(p) {
			continue
		}
		if isMinimal(minimal, p) {
			continue
		}
		for vc := 0; vc < req.NumVCs; vc++ {
			buf = append(buf, Candidate{Port: p, VC: vc})
		}
	}
	return buf
}

func isMinimal(minimal []topology.Port, p topology.Port) bool {
	for _, m := range minimal {
		if m == p {
			return true
		}
	}
	return false
}

// Duato implements Duato-style deadlock-free adaptive routing: virtual
// channels 2..NumVCs-1 form an unrestricted minimal-adaptive class, and
// channels 0,1 form a dimension-order escape class with the dateline
// discipline. A worm that arrives on an escape channel stays in the
// escape class (the conservative variant of Duato's condition), so the
// escape network alone is deadlock-free and the whole network is.
//
// The paper uses this algorithm to estimate how often potential deadlock
// situations occur: every allocation of an escape candidate is one PDS.
type Duato struct {
	// AdaptiveVCs is the number of adaptive-class virtual channels; 0
	// means 1. Total VCs = AdaptiveVCs + 2 (escape).
	AdaptiveVCs int
}

func (du Duato) adaptive() int {
	if du.AdaptiveVCs <= 0 {
		return 1
	}
	return du.AdaptiveVCs
}

// EscapeVCs is the number of virtual channels reserved for the escape
// class in Duato routing (the two dateline classes).
const EscapeVCs = 2

// Name implements Algorithm.
func (du Duato) Name() string { return fmt.Sprintf("duato(adaptive=%d)", du.adaptive()) }

// MinVCs implements Algorithm.
func (du Duato) MinVCs(topology.Topology) int { return du.adaptive() + EscapeVCs }

// InEscapeClass reports whether vc is an escape-class channel.
func InEscapeClass(vc int) bool { return vc < EscapeVCs }

// Route implements Algorithm. Once a worm has entered the escape class
// (it arrived on an escape channel), it receives only escape candidates.
func (du Duato) Route(req Request, buf []Candidate) []Candidate {
	g, ok := req.Topo.(*topology.Grid)
	if !ok {
		panic(fmt.Sprintf("routing: Duato supports grids only, got %T", req.Topo))
	}
	inEscape := req.InVC >= 0 && InEscapeClass(req.InVC) && req.InPort != topology.InvalidPort
	if !inEscape {
		minimal := g.MinimalPorts(req.Cur, req.Dst, req.portScratch())
		for _, p := range minimal {
			if !req.linkUp(p) {
				continue
			}
			for vc := EscapeVCs; vc < req.NumVCs; vc++ {
				buf = append(buf, Candidate{Port: p, VC: vc})
			}
		}
	}
	// Escape candidate: dimension-order with dateline class.
	p, class, ok := dorPort(g, req.Cur, req.Dst)
	if ok && req.linkUp(p) && class < req.NumVCs {
		buf = append(buf, Candidate{Port: p, VC: class, Escape: true})
	}
	return buf
}

// Compile-time interface checks.
var (
	_ Algorithm = DOR{}
	_ Algorithm = MinimalAdaptive{}
	_ Algorithm = Duato{}
)
