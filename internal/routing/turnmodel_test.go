package routing

import (
	"testing"

	"crnet/internal/topology"
)

func TestWestFirstRequiresMesh(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.NewTorus(4, 2),
		topology.NewMesh(4, 3),
		topology.NewHypercube(3),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted by west-first", topo.Name())
				}
			}()
			WestFirst{}.MinVCs(topo)
		}()
	}
	if got := (WestFirst{}).MinVCs(topology.NewMesh(4, 2)); got != 1 {
		t.Fatalf("MinVCs = %d, want 1", got)
	}
}

func TestWestFirstWestGoesFirstAlone(t *testing.T) {
	g := topology.NewMesh(8, 2)
	alg := WestFirst{}
	// Destination is west and north: only -x offered while west remains.
	cands := alg.Route(req(g, g.Node(5, 2), g.Node(1, 6), 1), nil)
	if len(cands) != 1 || cands[0].Port != topology.PortFor(0, false) {
		t.Fatalf("west-remaining candidates = %v", cands)
	}
	// After west is complete: adaptive north only.
	cands = alg.Route(req(g, g.Node(1, 2), g.Node(1, 6), 1), nil)
	if len(cands) != 1 || cands[0].Port != topology.PortFor(1, true) {
		t.Fatalf("post-west candidates = %v", cands)
	}
}

func TestWestFirstAdaptiveEastQuadrant(t *testing.T) {
	g := topology.NewMesh(8, 2)
	alg := WestFirst{}
	cands := alg.Route(req(g, g.Node(1, 1), g.Node(5, 5), 2), nil)
	ports := map[topology.Port]int{}
	for _, c := range cands {
		ports[c.Port]++
	}
	if len(ports) != 2 || ports[topology.PortFor(0, true)] != 2 || ports[topology.PortFor(1, true)] != 2 {
		t.Fatalf("east-quadrant candidates = %v", cands)
	}
}

func TestWestFirstPathsAreMinimal(t *testing.T) {
	g := topology.NewMesh(6, 2)
	alg := WestFirst{}
	for a := 0; a < g.Nodes(); a++ {
		for b := 0; b < g.Nodes(); b++ {
			if a == b {
				continue
			}
			src, dst := topology.NodeID(a), topology.NodeID(b)
			cur := src
			hops := 0
			for cur != dst {
				cands := alg.Route(req(g, cur, dst, 1), nil)
				if len(cands) == 0 {
					t.Fatalf("stuck at %d en route %d->%d", cur, a, b)
				}
				next, ok := g.Neighbor(cur, cands[0].Port)
				if !ok {
					t.Fatalf("unconnected candidate at %d", cur)
				}
				if g.Distance(next, dst) != g.Distance(cur, dst)-1 {
					t.Fatalf("non-minimal west-first hop %d->%d toward %d", cur, next, dst)
				}
				cur = next
				hops++
			}
			if hops != g.Distance(src, dst) {
				t.Fatalf("path %d->%d took %d hops, distance %d", a, b, hops, g.Distance(src, dst))
			}
		}
	}
}

// No candidate may ever make a turn into the west direction after a
// non-west hop; equivalently, once any candidate set excludes west, no
// later hop may offer west. Verified by walking every adaptive choice.
func TestWestFirstNeverTurnsBackWest(t *testing.T) {
	g := topology.NewMesh(5, 2)
	alg := WestFirst{}
	west := topology.PortFor(0, false)
	var walk func(cur, dst topology.NodeID, movedNonWest bool)
	visited := map[[3]int]bool{}
	walk = func(cur, dst topology.NodeID, movedNonWest bool) {
		key := [3]int{int(cur), int(dst), boolToInt(movedNonWest)}
		if visited[key] || cur == dst {
			return
		}
		visited[key] = true
		for _, c := range alg.Route(req(g, cur, dst, 1), nil) {
			if movedNonWest && c.Port == west {
				t.Fatalf("west offered after a non-west hop at %d toward %d", cur, dst)
			}
			next, _ := g.Neighbor(cur, c.Port)
			walk(next, dst, movedNonWest || c.Port != west)
		}
	}
	for a := 0; a < g.Nodes(); a++ {
		for b := 0; b < g.Nodes(); b++ {
			if a != b {
				walk(topology.NodeID(a), topology.NodeID(b), false)
			}
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
