package snapshot

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint file container.
//
// Layout (all multi-byte integers little-endian):
//
//	offset  size  field
//	0       8     magic "CRSNAP01"
//	8       4     format version (FormatVersion)
//	12      8     cycle the snapshot was taken at
//	20      8     payload length N
//	28      N     payload (opaque to the container; the simulator's
//	              Encoder stream)
//	28+N    4     CRC-32 (IEEE) over bytes [0, 28+N)
//
// The reader validates magic, version, length and CRC over the whole
// file before returning a single byte of payload, so a truncated or
// corrupted checkpoint yields a *FormatError and no state is ever
// partially applied from it. Writes go through a temp file and rename,
// so a crash mid-checkpoint leaves the previous checkpoint intact.

// Magic identifies a checkpoint file; the trailing digits version the
// container framing itself (the payload schema is versioned separately
// by FormatVersion).
const Magic = "CRSNAP01"

// FormatVersion is the payload schema version written into the header.
// Bump it whenever any SaveState encoding changes so old readers refuse
// new checkpoints instead of misreading them.
//
// Version 3 (buffer organizations): the router payload gains a per-VC
// store section, a per-organization window/grant ledger and a window
// field per output VC, and credit events carry a window delta.
const FormatVersion = 3

const headerSize = len(Magic) + 4 + 8 + 8 // magic + version + cycle + length

// FormatError describes a checkpoint file that failed validation:
// truncation, bad magic, unsupported version or checksum mismatch. The
// reader returns it before any payload is exposed, so a corrupt file
// can never partially restore.
type FormatError struct {
	Path   string
	Reason string
}

// Error implements error.
func (e *FormatError) Error() string {
	return fmt.Sprintf("snapshot: %s: %s", e.Path, e.Reason)
}

// Encode frames a payload into the container byte layout.
func Encode(cycle int64, payload []byte) []byte {
	var e Encoder
	e.buf = make([]byte, 0, headerSize+len(payload)+4)
	e.buf = append(e.buf, Magic...)
	e.U32(FormatVersion)
	e.U64(uint64(cycle))
	e.U64(uint64(len(payload)))
	e.buf = append(e.buf, payload...)
	e.U32(crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// Decode validates a container and returns its cycle and payload. The
// payload slice aliases data. name labels errors (a path, or "<mem>").
func Decode(name string, data []byte) (int64, []byte, error) {
	fail := func(reason string, args ...any) (int64, []byte, error) {
		return 0, nil, &FormatError{Path: name, Reason: fmt.Sprintf(reason, args...)}
	}
	if len(data) < headerSize+4 {
		return fail("truncated: %d bytes, header needs %d", len(data), headerSize+4)
	}
	if string(data[:len(Magic)]) != Magic {
		return fail("bad magic %q", data[:len(Magic)])
	}
	d := NewDecoder(data[len(Magic):])
	version := d.U32()
	if version != FormatVersion {
		return fail("format version %d, this build reads %d", version, FormatVersion)
	}
	cycle := int64(d.U64())
	n := d.U64()
	if n != uint64(len(data)-headerSize-4) {
		return fail("payload length %d disagrees with file size %d", n, len(data))
	}
	sum := crc32.ChecksumIEEE(data[:len(data)-4])
	stored := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if sum != stored {
		return fail("checksum mismatch: computed %08x, stored %08x", sum, stored)
	}
	return cycle, data[headerSize : len(data)-4], nil
}

// WriteFile atomically writes a checkpoint: the container is written to
// a temp file in the same directory and renamed into place, so readers
// never observe a half-written checkpoint and a crash preserves the
// previous one.
func WriteFile(path string, cycle int64, payload []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, Encode(cycle, payload), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile reads and fully validates the checkpoint at path, returning
// its cycle and payload. Validation errors are *FormatError.
func ReadFile(path string) (int64, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	return Decode(path, data)
}

// FileName returns the canonical checkpoint file name for a cycle. The
// zero-padded fixed width makes lexicographic order equal cycle order,
// which Latest relies on.
func FileName(cycle int64) string {
	return fmt.Sprintf("ckpt-%016d.crsnap", cycle)
}

// Latest returns the path of the highest-cycle checkpoint in dir, or
// ok=false when the directory holds none. Only canonical FileName-shaped
// entries are considered; temp files and foreign names are skipped.
func Latest(dir string) (path string, cycle int64, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, false
	}
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".crsnap") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return "", 0, false
	}
	sort.Strings(names)
	name := names[len(names)-1]
	c, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".crsnap"), 10, 64)
	if err != nil {
		return "", 0, false
	}
	return filepath.Join(dir, name), c, true
}
