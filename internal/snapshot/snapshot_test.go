package snapshot

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(0xab)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.Uvarint(0)
	e.Uvarint(1 << 60)
	e.Varint(-1)
	e.Varint(math.MaxInt64)
	e.Varint(math.MinInt64)
	e.Int(-42)
	e.Bool(true)
	e.Bool(false)
	e.F64(-0.0)
	e.F64(math.Pi)
	e.String("")
	e.String("worm")

	d := NewDecoder(e.Bytes())
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"u8", d.U8(), uint8(0xab)},
		{"u16", d.U16(), uint16(0xbeef)},
		{"u32", d.U32(), uint32(0xdeadbeef)},
		{"u64", d.U64(), uint64(0x0123456789abcdef)},
		{"uvarint0", d.Uvarint(), uint64(0)},
		{"uvarintBig", d.Uvarint(), uint64(1) << 60},
		{"varint-1", d.Varint(), int64(-1)},
		{"varintMax", d.Varint(), int64(math.MaxInt64)},
		{"varintMin", d.Varint(), int64(math.MinInt64)},
		{"int", d.Int(), -42},
		{"boolT", d.Bool(), true},
		{"boolF", d.Bool(), false},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	if v := d.F64(); math.Float64bits(v) != math.Float64bits(-0.0) {
		t.Errorf("negative zero not bit-exact: got %x", math.Float64bits(v))
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("pi: got %v", v)
	}
	if s := d.String(); s != "" {
		t.Errorf("empty string: got %q", s)
	}
	if s := d.String(); s != "worm" {
		t.Errorf("string: got %q", s)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	var e Encoder
	e.U64(7)
	d := NewDecoder(e.Bytes())
	d.U64()
	d.U64() // past the end: latches the error
	if d.Err() == nil {
		t.Fatal("reading past the end did not latch an error")
	}
	// All subsequent reads return zero values without panicking.
	if d.U8() != 0 || d.Uvarint() != 0 || d.String() != "" || d.Bool() {
		t.Error("post-error reads returned non-zero values")
	}
	if d.Finish() == nil {
		t.Error("Finish ignored the sticky error")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	var e Encoder
	e.U8(1)
	e.U8(2)
	d := NewDecoder(e.Bytes())
	d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestCountGuard(t *testing.T) {
	var e Encoder
	e.Uvarint(1 << 40) // absurd count with no elements behind it
	d := NewDecoder(e.Bytes())
	if n := d.Count(1 << 20); n != 0 {
		t.Fatalf("Count returned %d for an oversized length", n)
	}
	if d.Err() == nil {
		t.Fatal("oversized count did not latch an error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("state bytes of cycle 12345")
	path := filepath.Join(dir, FileName(12345))
	if err := WriteFile(path, 12345, payload); err != nil {
		t.Fatal(err)
	}
	cycle, got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cycle != 12345 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: cycle=%d payload=%q", cycle, got)
	}
}

func TestFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(7))
	if err := WriteFile(path, 7, bytes.Repeat([]byte{0x5a}, 256)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit anywhere: the CRC must catch it.
	mut := append([]byte(nil), data...)
	mut[headerSize+100] ^= 0x01
	if _, _, err := Decode(path, mut); err == nil {
		t.Fatal("bit flip not detected")
	} else {
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("corruption error is %T, want *FormatError", err)
		}
	}
	// Truncate: also a FormatError.
	if _, _, err := Decode(path, data[:len(data)/2]); err == nil {
		t.Fatal("truncation not detected")
	} else {
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncation error is %T, want *FormatError", err)
		}
	}
	// Bad magic.
	mut = append([]byte(nil), data...)
	mut[0] = 'X'
	if _, _, err := Decode(path, mut); err == nil {
		t.Fatal("bad magic not detected")
	}
	// Future format version.
	mut = append([]byte(nil), data...)
	mut[len(Magic)] = FormatVersion + 1
	if _, _, err := Decode(path, mut); err == nil {
		t.Fatal("future version not refused")
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok := Latest(dir); ok {
		t.Fatal("Latest found a checkpoint in an empty dir")
	}
	for _, c := range []int64{100, 2500, 900} {
		if err := WriteFile(filepath.Join(dir, FileName(c)), c, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign files and temp residue are ignored.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("y"), 0o644)
	os.WriteFile(filepath.Join(dir, FileName(99999)+".tmp"), []byte("z"), 0o644)
	path, cycle, ok := Latest(dir)
	if !ok || cycle != 2500 {
		t.Fatalf("Latest = %q cycle=%d ok=%v, want cycle 2500", path, cycle, ok)
	}
	if filepath.Base(path) != FileName(2500) {
		t.Fatalf("Latest path = %q", path)
	}
}
