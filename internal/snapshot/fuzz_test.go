package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode hammers the checkpoint-container reader with arbitrary
// bytes. The contract under test: Decode never panics, rejects every
// malformed container with a *FormatError and no payload, and anything
// it accepts is a container it would itself have produced — re-encoding
// the returned cycle and payload reproduces the input byte-for-byte.
func FuzzDecode(f *testing.F) {
	// Seeds: a valid container, interesting truncations and header
	// corruptions of it, and degenerate inputs.
	valid := Encode(42, []byte("router state bytes"))
	f.Add(valid)
	f.Add(Encode(0, nil))
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:len(valid)-1])                     // chopped CRC
	f.Add(valid[:headerSize])                       // header only
	f.Add(append([]byte("CRSNAP99"), valid[8:]...)) // wrong magic digits

	flip := append([]byte(nil), valid...)
	flip[len(Magic)] ^= 0xff // version byte
	f.Add(flip)
	flip2 := append([]byte(nil), valid...)
	flip2[headerSize+3] ^= 0x01 // payload bit
	f.Add(flip2)

	f.Fuzz(func(t *testing.T, data []byte) {
		cycle, payload, err := Decode("<fuzz>", data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("Decode error is %T, want *FormatError: %v", err, err)
			}
			if payload != nil {
				t.Fatal("rejected container still returned payload bytes")
			}
			return
		}
		// Accepted: the container must round-trip canonically.
		if !bytes.Equal(Encode(cycle, payload), data) {
			t.Fatalf("accepted container is not canonical: cycle %d, %d payload bytes", cycle, len(payload))
		}
	})
}
