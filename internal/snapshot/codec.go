// Package snapshot is the checkpoint/restore subsystem: a deterministic
// binary codec for simulation state and a self-verifying checkpoint
// file container (see file.go).
//
// The codec is the foundation of the deterministic-resume guarantee: a
// network restored from a snapshot and stepped N cycles must be
// byte-identical to an unbroken run (pinned by the resume tests in
// internal/network and internal/sim). Every encoder is therefore a pure
// function of the logical state it serializes — fixed field order, no
// map iteration, no pointers, no wall-clock — so saving the same state
// twice yields the same bytes, and a snapshot taken on one machine
// restores on any other.
//
// Encoding primitives: unsigned varints (counts, ids), zigzag varints
// (signed cycle counters and deltas), fixed-width little-endian words
// (RNG state, float bit patterns) and length-prefixed strings. The
// Decoder carries a sticky error: the first malformed read latches it,
// every later read returns zero values, and callers check Err (or
// Finish) once at the end instead of threading an error through every
// field — misuse cannot be silent because the container's CRC has
// already vouched for the bytes, so a decode error always means a
// version or logic mismatch, which Finish surfaces.
package snapshot

import (
	"fmt"
	"math"
)

// Encoder serializes state into a growable byte buffer. The zero value
// is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload. The slice aliases the encoder's
// buffer; callers must not retain it across further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Raw appends bytes verbatim (no length prefix) — for fixed-size
// framing like magic strings, where the reader knows the length.
//
//cr:hotpath snapshot framing primitive — amortized self-append only
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// U8 appends one byte.
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a fixed-width little-endian 16-bit word.
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) U16(v uint16) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}

// U32 appends a fixed-width little-endian 32-bit word.
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a fixed-width little-endian 64-bit word. RNG state words
// use this (varints would waste bytes on well-mixed values).
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Uvarint appends an unsigned varint (LEB128, as encoding/binary).
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) Uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Varint appends a zigzag-encoded signed varint.
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) Varint(v int64) {
	e.Uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

// Int appends an int as a signed varint.
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a boolean as one byte (0 or 1).
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern (so restored values
// are bit-exact, including signed zeros and NaN payloads).
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
//
//cr:hotpath snapshot encode primitive — amortized self-append only
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads state encoded by Encoder. The first malformed read
// latches a sticky error; subsequent reads return zero values. Check
// Err after a decode group, or Finish once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over the payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns the sticky error, or an error if unread bytes remain —
// a snapshot must be consumed exactly, so trailing bytes mean a
// version/logic mismatch between writer and reader.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if n := d.Remaining(); n != 0 {
		return fmt.Errorf("snapshot: %d trailing bytes after decode", n)
	}
	return nil
}

// fail latches the sticky error (keeping the first one).
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format+" at offset %d", append(args, d.off)...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail("truncated payload: need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a fixed-width little-endian 16-bit word.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 reads a fixed-width little-endian 32-bit word.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a fixed-width little-endian 64-bit word.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if d.off >= len(d.buf) {
			d.fail("truncated varint")
			return 0
		}
		b := d.buf[d.off]
		d.off++
		if shift == 63 && b > 1 {
			d.fail("varint overflows 64 bits")
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			d.fail("varint too long")
			return 0
		}
	}
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	u := d.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Int reads an int encoded with Encoder.Int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a boolean. Any byte other than 0 or 1 is a decode error —
// the strictness catches writer/reader field-order drift early.
func (d *Decoder) Bool() bool {
	b := d.U8()
	if b > 1 {
		d.fail("bool byte 0x%02x", b)
		return false
	}
	return b == 1
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds remaining %d bytes", n, d.Remaining())
		return ""
	}
	return string(d.take(int(n)))
}

// Count reads a collection length and bounds it: a count larger than
// max (or the remaining payload) latches an error instead of driving a
// huge allocation. Collections always encode at least one byte per
// element, so Remaining is a safe universal bound.
func (d *Decoder) Count(max int) int {
	n := d.Uvarint()
	if n > uint64(max) || n > uint64(d.Remaining()) {
		d.fail("collection length %d exceeds bound %d", n, max)
		return 0
	}
	return int(n)
}
