package faults

import (
	"fmt"
	"math"

	"crnet/internal/rng"
	"crnet/internal/snapshot"
)

// Load-coupled failure intensity: real fabrics fail more when hot. The
// Hazard process couples each entity's failure rate to its observed
// utilization with the classic log-linear model
//
//	lambda(t) = lambda0 * exp(alpha * load(t))
//
// where load is the entity's utilization in [0,1] over the last
// evaluation window (link: traversals per cycle; router: buffer
// occupancy fraction). Every EvalEvery cycles each *up* entity makes
// exactly one Bernoulli draw against p = 1 - exp(-lambda*dt) from its
// own splitmix64-derived stream (deterministic thinning), so the
// failure pattern is a pure function of (seed, load history): sweeps
// stay byte-reproducible across worker counts and the whole process
// state serializes through internal/snapshot for checkpoint/resume.
//
// A failed entity draws a repair sojourn (shifted geometric around the
// configured MTTR) from the same stream and stays silent until the
// repair fires, so every hazard failure is eventually repaired and the
// long-run process is a load-modulated alternating renewal process.

// HazardSpec configures the load-coupled failure-intensity process. The
// spec is immutable configuration (state lives in Hazard), so one spec
// value can be shared across sweep points and reconstructed networks.
type HazardSpec struct {
	// LinkLambda0 is the per-link base failure intensity per cycle at
	// zero load; 0 disables link failures.
	LinkLambda0 float64
	// NodeLambda0 is the per-router base failure intensity per cycle at
	// zero load; 0 disables router failures.
	NodeLambda0 float64
	// Alpha is the load-coupling exponent: lambda = lambda0*exp(alpha*load).
	// 0 makes the process load-independent.
	Alpha float64
	// LinkMTTR and NodeMTTR are mean repair sojourns in cycles (>= 1).
	LinkMTTR float64
	NodeMTTR float64
	// EvalEvery is the evaluation period in cycles; 0 means 64.
	EvalEvery int64
	// Seed decorrelates the per-entity thinning streams (splitmix64
	// mixing, like the timeline generator).
	Seed uint64
}

func (s HazardSpec) evalEvery() int64 {
	if s.EvalEvery <= 0 {
		return 64
	}
	return s.EvalEvery
}

// Hazard is the stateful load-coupled failure process over a fixed
// entity set (links first, then nodes). Construct with NewHazard; drive
// with Evaluate once per cycle (it no-ops off the evaluation grid).
type Hazard struct {
	spec  HazardSpec //cr:nosnap configuration, fixed at construction
	links []LinkID   //cr:nosnap entity order, supplied by the constructor and revalidated on restore
	nodes []int      //cr:nosnap entity order, supplied by the constructor and revalidated on restore

	// streams holds one independent thinning stream per entity, links
	// first. downUntil[i] != 0 schedules entity i's repair cycle.
	streams   []rng.Source
	downUntil []int64
	// prevFlits remembers each link's cumulative traversal counter at
	// the previous evaluation, so link load is the window delta.
	prevFlits []int64

	lastEval int64
	failures int64
	repairs  int64
	evBuf    []Event //cr:nosnap per-evaluation scratch handed out by Evaluate
}

// NewHazard builds the process over the given entities. The link and
// node orders define the entity indexing and must match the load
// vectors later passed to Evaluate.
func NewHazard(spec HazardSpec, links []LinkID, nodes []int) *Hazard {
	h := &Hazard{
		spec:      spec,
		links:     append([]LinkID(nil), links...),
		nodes:     append([]int(nil), nodes...),
		streams:   make([]rng.Source, len(links)+len(nodes)),
		downUntil: make([]int64, len(links)+len(nodes)),
		prevFlits: make([]int64, len(links)),
	}
	h.seedStreams()
	return h
}

func (h *Hazard) seedStreams() {
	for i := range h.streams {
		h.streams[i].Reseed(mix(h.spec.Seed, i))
	}
}

// Rewind restores the process to its initial state, so a reset network
// replays the same hazard history under the same load history.
func (h *Hazard) Rewind() {
	h.seedStreams()
	for i := range h.downUntil {
		h.downUntil[i] = 0
	}
	for i := range h.prevFlits {
		h.prevFlits[i] = 0
	}
	h.lastEval, h.failures, h.repairs = 0, 0, 0
	h.evBuf = h.evBuf[:0]
}

// Due reports whether cycle now is on the evaluation grid; callers use
// it to skip the O(links+nodes) signal collection on off-grid cycles.
func (h *Hazard) Due(now int64) bool {
	return now > 0 && now%h.spec.evalEvery() == 0
}

// Failures returns how many hazard failure events have been emitted.
func (h *Hazard) Failures() int64 { return h.failures }

// Repairs returns how many hazard repair events have been emitted.
func (h *Hazard) Repairs() int64 { return h.repairs }

// Down returns how many entities the hazard currently holds down.
func (h *Hazard) Down() int {
	n := 0
	for _, du := range h.downUntil {
		if du != 0 {
			n++
		}
	}
	return n
}

// Evaluate advances the process to cycle now and returns the fault
// events due this cycle (failures and repairs, links before nodes, each
// entity class in its fixed order — deterministic). linkFlits[i] is the
// cumulative traversal counter of links[i]; nodeLoad[j] is nodes[j]'s
// buffer-occupancy fraction in [0,1]. Off the evaluation grid it
// returns nil without consuming any randomness. The returned slice is
// reused by the next call.
//
//cr:hotpath per-EvalEvery hazard evaluation inside the fault-events phase
func (h *Hazard) Evaluate(now int64, linkFlits []int64, nodeLoad []float64) []Event {
	if !h.Due(now) {
		return nil
	}
	dt := float64(now - h.lastEval)
	h.lastEval = now
	h.evBuf = h.evBuf[:0]
	for i := range h.links {
		if h.repairDue(i, now) {
			h.evBuf = append(h.evBuf, Event{Cycle: now, Kind: LinkEvent, Link: h.links[i], Up: true})
			h.prevFlits[i] = linkFlits[i] // discard the down-era window
			continue
		}
		if h.downUntil[i] != 0 {
			continue
		}
		load := float64(linkFlits[i]-h.prevFlits[i]) / dt
		h.prevFlits[i] = linkFlits[i]
		if h.draw(i, h.spec.LinkLambda0, load, dt) {
			h.fail(i, now, h.spec.LinkMTTR)
			h.evBuf = append(h.evBuf, Event{Cycle: now, Kind: LinkEvent, Link: h.links[i]})
		}
	}
	base := len(h.links)
	for j := range h.nodes {
		i := base + j
		if h.repairDue(i, now) {
			h.evBuf = append(h.evBuf, Event{Cycle: now, Kind: NodeEvent, Node: h.nodes[j], Up: true})
			continue
		}
		if h.downUntil[i] != 0 {
			continue
		}
		if h.draw(i, h.spec.NodeLambda0, nodeLoad[j], dt) {
			h.fail(i, now, h.spec.NodeMTTR)
			h.evBuf = append(h.evBuf, Event{Cycle: now, Kind: NodeEvent, Node: h.nodes[j]})
		}
	}
	return h.evBuf
}

// repairDue fires entity i's pending repair if its sojourn has elapsed.
//
//cr:hotpath per-entity repair check on the hazard evaluation grid
func (h *Hazard) repairDue(i int, now int64) bool {
	if h.downUntil[i] == 0 || now < h.downUntil[i] {
		return false
	}
	h.downUntil[i] = 0
	h.repairs++
	return true
}

// draw makes entity i's one thinning draw for this window: fail with
// probability 1-exp(-lambda*dt), lambda = lambda0*exp(alpha*load). A
// disabled entity class (lambda0 <= 0) consumes no randomness, which is
// itself deterministic because it is pure configuration.
//
//cr:hotpath per-entity thinning draw on the hazard evaluation grid
func (h *Hazard) draw(i int, lambda0, load, dt float64) bool {
	if lambda0 <= 0 {
		return false
	}
	if load < 0 {
		load = 0
	} else if load > 1 {
		load = 1
	}
	lambda := lambda0 * math.Exp(h.spec.Alpha*load)
	p := -math.Expm1(-lambda * dt)
	return h.streams[i].Float64() < p
}

// fail marks entity i down and schedules its repair from the entity's
// own stream (shifted geometric around the class MTTR).
func (h *Hazard) fail(i int, now int64, mttr float64) {
	h.failures++
	h.downUntil[i] = now + duration(&h.streams[i], mttr)
}

// SaveState serializes the process position: every entity's stream and
// down-timer, the per-link window counters, and the cumulative event
// counts. The spec and entity sets are configuration and are covered by
// the network's config fingerprint instead.
func (h *Hazard) SaveState(e *snapshot.Encoder) {
	e.Varint(h.lastEval)
	e.Varint(h.failures)
	e.Varint(h.repairs)
	e.Uvarint(uint64(len(h.streams)))
	for i := range h.streams {
		st := h.streams[i].State()
		for _, w := range st {
			e.U64(w)
		}
		e.Varint(h.downUntil[i])
	}
	for _, v := range h.prevFlits {
		e.Varint(v)
	}
}

// LoadState restores a state saved by SaveState into a process built
// over the same entity sets. A count mismatch means the snapshot was
// taken against a different configuration and is refused before any
// mutation.
func (h *Hazard) LoadState(d *snapshot.Decoder) error {
	lastEval := d.Varint()
	failures := d.Varint()
	repairs := d.Varint()
	n := d.Count(len(h.streams))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(h.streams) {
		return fmt.Errorf("faults: hazard snapshot has %d entities, process has %d", n, len(h.streams))
	}
	for i := 0; i < n; i++ {
		var st [4]uint64
		for k := range st {
			st[k] = d.U64()
		}
		du := d.Varint()
		if err := d.Err(); err != nil {
			return err
		}
		if st[0]|st[1]|st[2]|st[3] == 0 {
			return fmt.Errorf("faults: hazard entity %d has all-zero stream state", i)
		}
		h.streams[i].SetState(st)
		h.downUntil[i] = du
	}
	for i := range h.prevFlits {
		h.prevFlits[i] = d.Varint()
	}
	if err := d.Err(); err != nil {
		return err
	}
	h.lastEval, h.failures, h.repairs = lastEval, failures, repairs
	return nil
}
