package faults

import (
	"reflect"
	"strings"
	"testing"

	"crnet/internal/snapshot"
)

func testHazard(spec HazardSpec) *Hazard {
	links := []LinkID{{Node: 0, Port: 0}, {Node: 0, Port: 1}, {Node: 1, Port: 0}, {Node: 1, Port: 1}}
	nodes := []int{0, 1}
	return NewHazard(spec, links, nodes)
}

func driveHazard(h *Hazard, cycles int64, linkLoad int64, nodeLoad float64) []Event {
	flits := make([]int64, 4)
	loads := []float64{nodeLoad, nodeLoad}
	var out []Event
	for c := int64(1); c <= cycles; c++ {
		for i := range flits {
			flits[i] += linkLoad
		}
		out = append(out, h.Evaluate(c, flits, loads)...)
	}
	return out
}

func TestHazardDeterministic(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 2e-4, NodeLambda0: 1e-4, Alpha: 4, LinkMTTR: 100, NodeMTTR: 100, EvalEvery: 32, Seed: 7}
	a := driveHazard(testHazard(spec), 20000, 1, 0.5)
	b := driveHazard(testHazard(spec), 20000, 1, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec and load history produced different event streams")
	}
	if len(a) == 0 {
		t.Fatalf("aggressive spec produced no events over 20000 cycles")
	}
}

func TestHazardLoadCoupling(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 1e-4, Alpha: 6, LinkMTTR: 50, EvalEvery: 32, Seed: 7}
	cold := testHazard(spec)
	hot := testHazard(spec)
	driveHazard(cold, 50000, 0, 0)
	driveHazard(hot, 50000, 1, 0)
	if hot.Failures() <= cold.Failures() {
		t.Fatalf("alpha=6 at full load should fail more than idle: hot=%d cold=%d",
			hot.Failures(), cold.Failures())
	}
}

func TestHazardRepairsFollowFailures(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 5e-4, Alpha: 0, LinkMTTR: 20, EvalEvery: 16, Seed: 3}
	h := testHazard(spec)
	evs := driveHazard(h, 30000, 1, 0)
	var downs, ups int
	for _, ev := range evs {
		if ev.Up {
			ups++
		} else {
			downs++
		}
	}
	if downs == 0 {
		t.Fatalf("no failures emitted")
	}
	// Short MTTR versus a long run: almost every failure must have been
	// repaired; at most the currently-down entities are outstanding.
	if downs-ups > len(h.streams) {
		t.Fatalf("%d failures but only %d repairs", downs, ups)
	}
	if got := int64(downs); got != h.Failures() {
		t.Fatalf("Failures()=%d, counted %d", h.Failures(), got)
	}
	if got := int64(ups); got != h.Repairs() {
		t.Fatalf("Repairs()=%d, counted %d", h.Repairs(), got)
	}
}

func TestHazardDownEntityMakesNoDraws(t *testing.T) {
	// With an MTTR far beyond the horizon, each entity fails at most
	// once: once down it must stay silent until its repair cycle.
	spec := HazardSpec{LinkLambda0: 1e-3, NodeLambda0: 1e-3, LinkMTTR: 1e9, NodeMTTR: 1e9, EvalEvery: 16, Seed: 11}
	h := testHazard(spec)
	evs := driveHazard(h, 20000, 1, 1)
	seen := map[string]int{}
	for _, ev := range evs {
		if ev.Up {
			t.Fatalf("repair emitted despite MTTR >> horizon: %v", ev)
		}
		seen[ev.String()]++
	}
	for k, c := range seen {
		if c > 1 {
			t.Fatalf("entity failed twice while down: %s x%d", k, c)
		}
	}
	if h.Down() == 0 {
		t.Fatalf("nothing down after an aggressive no-repair run")
	}
}

func TestHazardOffGridIsFree(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 1e-3, EvalEvery: 64, Seed: 1}
	h := testHazard(spec)
	if h.Due(0) {
		t.Fatalf("cycle 0 must not be due (resume safety)")
	}
	if h.Due(63) || !h.Due(64) {
		t.Fatalf("Due grid wrong")
	}
	if evs := h.Evaluate(63, make([]int64, 4), make([]float64, 2)); evs != nil {
		t.Fatalf("off-grid Evaluate returned events: %v", evs)
	}
}

func TestHazardRewindReplays(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 3e-4, NodeLambda0: 1e-4, Alpha: 2, LinkMTTR: 64, NodeMTTR: 64, EvalEvery: 32, Seed: 9}
	h := testHazard(spec)
	first := append([]Event(nil), driveHazard(h, 20000, 1, 0.7)...)
	h.Rewind()
	second := driveHazard(h, 20000, 1, 0.7)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("rewound process diverged from its first run")
	}
}

func TestHazardStateRoundTrip(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 3e-4, NodeLambda0: 1e-4, Alpha: 3, LinkMTTR: 64, NodeMTTR: 64, EvalEvery: 32, Seed: 5}
	h := testHazard(spec)
	driveHazard(h, 10000, 1, 0.5)

	var e snapshot.Encoder
	h.SaveState(&e)

	h2 := testHazard(spec)
	d := snapshot.NewDecoder(e.Bytes())
	if err := h2.LoadState(d); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	// Continue both and compare: restored process must replay the
	// original byte for byte.
	flits := make([]int64, 4)
	loads := []float64{0.5, 0.5}
	for i := range flits {
		flits[i] = 10000
	}
	for c := int64(10001); c <= 30000; c++ {
		for i := range flits {
			flits[i]++
		}
		a := append([]Event{}, h.Evaluate(c, flits, loads)...)
		b := append([]Event{}, h2.Evaluate(c, flits, loads)...)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cycle %d: original %v restored %v", c, a, b)
		}
	}
	if h.Failures() != h2.Failures() || h.Repairs() != h2.Repairs() {
		t.Fatalf("counters diverged: %d/%d vs %d/%d", h.Failures(), h.Repairs(), h2.Failures(), h2.Repairs())
	}
}

func TestHazardLoadStateRejectsMismatch(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 1e-4, Seed: 5}
	h := testHazard(spec)
	var e snapshot.Encoder
	h.SaveState(&e)

	other := NewHazard(spec, []LinkID{{Node: 0, Port: 0}}, nil)
	if err := other.LoadState(snapshot.NewDecoder(e.Bytes())); err == nil {
		t.Fatalf("entity-count mismatch accepted")
	}
}

// TestHazardLoadStateRejectsCorruptSnapshots is the regression table
// for the hazard codec's validation: a snapshot taken over a different
// entity set, an entity count past the decoder's bound, a dead rng
// stream, and damaged payloads must all be refused before any stream is
// reseeded.
func TestHazardLoadStateRejectsCorruptSnapshots(t *testing.T) {
	spec := HazardSpec{LinkLambda0: 2e-4, NodeLambda0: 1e-4, Alpha: 4, LinkMTTR: 100, NodeMTTR: 100, EvalEvery: 32, Seed: 7}
	build := func() *Hazard {
		h := testHazard(spec) // 4 links + 2 nodes = 6 streams
		driveHazard(h, 1000, 3, 0.5)
		return h
	}
	save := func(h *Hazard) []byte {
		var e snapshot.Encoder
		h.SaveState(&e)
		return e.Bytes()
	}
	// Sanity: an unmodified snapshot restores cleanly.
	if err := testHazard(spec).LoadState(snapshot.NewDecoder(save(build()))); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	cases := []struct {
		name, wantSub string
		build         func(t *testing.T) []byte
	}{
		{"entity-count-mismatch", "entities", func(t *testing.T) []byte {
			// Two links and one node: 3 streams against the target's 6.
			small := NewHazard(spec, []LinkID{{Node: 0, Port: 0}, {Node: 0, Port: 1}}, []int{0})
			return save(small)
		}},
		{"count-over-bound", "collection length", func(t *testing.T) []byte {
			var e snapshot.Encoder
			e.Varint(0)
			e.Varint(0)
			e.Varint(0)
			e.Uvarint(1 << 21) // entity count far past the process's 6
			return e.Bytes()
		}},
		{"all-zero-stream", "all-zero stream state", func(t *testing.T) []byte {
			var e snapshot.Encoder
			e.Varint(0)
			e.Varint(0)
			e.Varint(0)
			e.Uvarint(6)
			for i := 0; i < 4; i++ {
				e.U64(0) // a dead xoshiro state would emit zeros forever
			}
			e.Varint(0)
			return e.Bytes()
		}},
		{"truncated", "truncated", func(t *testing.T) []byte {
			raw := save(build())
			return raw[:len(raw)-1]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := testHazard(spec).LoadState(snapshot.NewDecoder(tc.build(t)))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
