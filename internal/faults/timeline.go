package faults

import (
	"fmt"

	"crnet/internal/rng"
)

// TimelineConfig parameterizes RandomTimeline: an MTBF/MTTR-driven
// random fail/repair schedule over a set of links and nodes, the chaos
// workload for the E24 soak. Means are in cycles; a zero mean disables
// that entity class.
type TimelineConfig struct {
	// Links are the candidate links; each gets an independent
	// fail/repair process with the link means.
	Links []LinkID
	// Nodes are the candidate routers; each gets an independent
	// fail/repair process with the node means.
	Nodes []int
	// LinkMTBF and LinkMTTR are the mean up and down durations of one
	// link, in cycles.
	LinkMTBF, LinkMTTR float64
	// NodeMTBF and NodeMTTR are the mean up and down durations of one
	// node, in cycles.
	NodeMTBF, NodeMTTR float64
	// Start and Horizon bound failure cycles to [Start, Horizon). Every
	// failure gets a matching repair, which may land past Horizon.
	Start, Horizon int64
	// Seed makes the timeline deterministic. Each entity derives its
	// own decorrelated stream from it (splitmix64 mixing, like
	// harness.PointSeed).
	Seed uint64
}

// mix derives a decorrelated per-entity seed from the timeline seed via
// a splitmix64 round, mirroring harness.PointSeed so entity streams stay
// independent of each other and of the sweep's point seeds.
func mix(base uint64, entity int) uint64 {
	x := base + uint64(entity+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// duration samples one up or down sojourn of the given mean as a
// shifted geometric, so sojourns are >= 1 cycle and memoryless in
// expectation.
func duration(r *rng.Source, mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	return 1 + int64(r.Geometric(1/mean))
}

// RandomTimeline builds a random fail/repair schedule: every entity
// alternates exponential-ish (geometric) up and down sojourns with the
// configured means, starting up at cfg.Start. Failures occurring at or
// after Horizon are discarded; every emitted failure has a matching
// repair event, even if the repair lands past Horizon, so the network
// always returns to full health.
func RandomTimeline(cfg TimelineConfig) *Schedule {
	if cfg.Horizon <= cfg.Start {
		panic(fmt.Sprintf("faults: timeline horizon %d not after start %d", cfg.Horizon, cfg.Start))
	}
	var events []Event
	emit := func(r *rng.Source, mtbf, mttr float64, fail, repair Event) {
		if mtbf <= 0 || mttr <= 0 {
			return
		}
		now := cfg.Start
		for {
			now += duration(r, mtbf)
			if now >= cfg.Horizon {
				return
			}
			fail.Cycle = now
			events = append(events, fail)
			now += duration(r, mttr)
			repair.Cycle = now
			events = append(events, repair)
		}
	}
	for i, l := range cfg.Links {
		r := rng.New(mix(cfg.Seed, i))
		emit(r, cfg.LinkMTBF, cfg.LinkMTTR,
			Event{Kind: LinkEvent, Link: l},
			Event{Kind: LinkEvent, Link: l, Up: true})
	}
	for i, node := range cfg.Nodes {
		r := rng.New(mix(cfg.Seed, len(cfg.Links)+i))
		emit(r, cfg.NodeMTBF, cfg.NodeMTTR,
			Event{Kind: NodeEvent, Node: node},
			Event{Kind: NodeEvent, Node: node, Up: true})
	}
	return NewSchedule(events)
}
