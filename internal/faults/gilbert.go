package faults

import (
	"fmt"

	"crnet/internal/flit"
	"crnet/internal/rng"
)

// BurstSpec parameterizes a Gilbert-Elliott two-state bursty corruption
// process: the channel alternates between a good and a bad state with
// geometrically distributed sojourn times, and corrupts each traversing
// flit with the current state's rate. Real transient failure processes
// (crosstalk episodes, marginal drivers, particle strikes near a link)
// cluster in time; this model reproduces that clustering while keeping
// a closed-form average rate for equal-rate comparisons against the
// i.i.d. Bernoulli process (experiment E22).
//
// BurstSpec is immutable configuration and safe to share across
// simulation points; each network builds its own GilbertElliott process
// from it.
type BurstSpec struct {
	// RateGood and RateBad are the per-traversal corruption
	// probabilities in each state.
	RateGood, RateBad float64
	// MeanGood and MeanBad are the expected state sojourn times, in
	// flit traversals. Both must be >= 1.
	MeanGood, MeanBad float64
}

// Validate reports a descriptive error for out-of-range parameters.
func (s BurstSpec) Validate() error {
	if s.RateGood < 0 || s.RateGood > 1 || s.RateBad < 0 || s.RateBad > 1 {
		return fmt.Errorf("faults: burst rates (%v, %v) outside [0,1]", s.RateGood, s.RateBad)
	}
	if s.MeanGood < 1 || s.MeanBad < 1 {
		return fmt.Errorf("faults: burst sojourns (%v, %v) must be >= 1 traversal", s.MeanGood, s.MeanBad)
	}
	return nil
}

// StationaryRate returns the long-run average corruption probability per
// traversal: the sojourn-weighted mix of the two state rates. Use it to
// build a bursty process with the same average rate as a Bernoulli one.
func (s BurstSpec) StationaryRate() float64 {
	return (s.MeanGood*s.RateGood + s.MeanBad*s.RateBad) / (s.MeanGood + s.MeanBad)
}

// EqualRateBurst returns a spec whose stationary rate equals rate but
// whose corruptions arrive in bursts: the channel is clean in the good
// state and corrupts at the concentrated rate while a bad episode of
// mean length meanBad (out of a meanGood+meanBad cycle) lasts. It panics
// if the concentration pushes the bad-state rate past 1.
func EqualRateBurst(rate, meanGood, meanBad float64) BurstSpec {
	s := BurstSpec{
		RateGood: 0,
		RateBad:  rate * (meanGood + meanBad) / meanBad,
		MeanGood: meanGood,
		MeanBad:  meanBad,
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// GilbertElliott is the bursty corruption process described by a
// BurstSpec. Construct with NewGilbertElliott; it implements Corrupter.
type GilbertElliott struct {
	spec BurstSpec //cr:nosnap configuration, fixed at construction
	bad  bool
	rng  *rng.Source

	injected int64
}

// NewGilbertElliott returns a bursty fault process with its own RNG
// stream, starting in the good state. It panics on invalid spec.
func NewGilbertElliott(spec BurstSpec, seed uint64) *GilbertElliott {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &GilbertElliott{spec: spec, rng: rng.New(seed)}
}

// Apply possibly corrupts f in place and reports whether it did. Each
// call is one channel traversal: the state advances with probability
// 1/MeanState and the flit is corrupted with the (pre-transition)
// state's rate.
func (g *GilbertElliott) Apply(f *flit.Flit) bool {
	if g == nil {
		return false
	}
	rate := g.spec.RateGood
	leave := 1 / g.spec.MeanGood
	if g.bad {
		rate = g.spec.RateBad
		leave = 1 / g.spec.MeanBad
	}
	hit := rate > 0 && g.rng.Bernoulli(rate)
	if g.rng.Bernoulli(leave) {
		g.bad = !g.bad
	}
	if !hit {
		return false
	}
	g.injected++
	corruptFlit(g.rng, f)
	return true
}

// Injected returns how many corruptions have been applied.
func (g *GilbertElliott) Injected() int64 {
	if g == nil {
		return 0
	}
	return g.injected
}
