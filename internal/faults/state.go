package faults

import (
	"fmt"

	"crnet/internal/snapshot"
)

// Checkpoint support: the fault processes are part of the simulation's
// deterministic state, so the schedule cursor, the corruption RNG
// streams and the Gilbert-Elliott channel state must all survive a
// save/restore for a resumed run to be byte-identical to an unbroken
// one.

// Cursor returns the schedule's position: how many events have fired.
// A nil schedule reports 0.
func (s *Schedule) Cursor() int {
	if s == nil {
		return 0
	}
	return s.next
}

// SetCursor restores a position previously returned by Cursor. It
// returns an error (and leaves the schedule unchanged) if the position
// is out of range or the schedule is nil while the position is not 0 —
// either means the checkpoint was taken against a different timeline.
func (s *Schedule) SetCursor(next int) error {
	if s == nil {
		if next != 0 {
			return fmt.Errorf("faults: restoring cursor %d into a nil schedule", next)
		}
		return nil
	}
	if next < 0 || next > len(s.events) {
		return fmt.Errorf("faults: cursor %d outside schedule of %d events", next, len(s.events))
	}
	s.next = next
	return nil
}

// SaveState serializes the transient process: its RNG stream and the
// injected count. Rate is configuration, not state, and is not encoded.
func (t *Transient) SaveState(e *snapshot.Encoder) {
	st := t.rng.State()
	for _, w := range st {
		e.U64(w)
	}
	e.Varint(t.injected)
}

// LoadState restores a state saved by SaveState.
func (t *Transient) LoadState(d *snapshot.Decoder) error {
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	injected := d.Varint()
	if err := d.Err(); err != nil {
		return err
	}
	t.rng.SetState(st)
	t.injected = injected
	return nil
}

// SaveState serializes the bursty process: the channel state bit, the
// RNG stream and the injected count. The BurstSpec is configuration.
func (g *GilbertElliott) SaveState(e *snapshot.Encoder) {
	e.Bool(g.bad)
	st := g.rng.State()
	for _, w := range st {
		e.U64(w)
	}
	e.Varint(g.injected)
}

// LoadState restores a state saved by SaveState.
func (g *GilbertElliott) LoadState(d *snapshot.Decoder) error {
	bad := d.Bool()
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	injected := d.Varint()
	if err := d.Err(); err != nil {
		return err
	}
	g.bad = bad
	g.rng.SetState(st)
	g.injected = injected
	return nil
}
