package faults

import (
	"math"
	"testing"
)

// --- Gilbert-Elliott -------------------------------------------------

func TestGilbertElliottStationaryRate(t *testing.T) {
	spec := EqualRateBurst(1e-2, 900, 100)
	if got := spec.StationaryRate(); math.Abs(got-1e-2) > 1e-12 {
		t.Fatalf("StationaryRate = %v, want 1e-2", got)
	}
	ge := NewGilbertElliott(spec, 11)
	const trials = 400000
	hits := 0
	for i := 0; i < trials; i++ {
		f := freshFlit()
		if ge.Apply(&f) {
			hits++
			if f.Verify() {
				t.Fatal("corrupted flit still verifies")
			}
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-1e-2)/1e-2 > 0.10 {
		t.Fatalf("empirical rate %v, want ~1e-2 (±10%%)", got)
	}
	if ge.Injected() != int64(hits) {
		t.Fatalf("Injected() = %d, want %d", ge.Injected(), hits)
	}
}

func TestGilbertElliottBursty(t *testing.T) {
	// With a clean good state, every corruption lands inside a bad
	// episode: consecutive hits should cluster far more tightly than an
	// i.i.d. process at the same average rate would allow.
	ge := NewGilbertElliott(EqualRateBurst(1e-3, 990, 10), 5)
	const trials = 300000
	var hitAt []int
	for i := 0; i < trials; i++ {
		f := freshFlit()
		if ge.Apply(&f) {
			hitAt = append(hitAt, i)
		}
	}
	if len(hitAt) < 20 {
		t.Fatalf("only %d corruptions in %d trials", len(hitAt), trials)
	}
	short := 0
	for i := 1; i < len(hitAt); i++ {
		if hitAt[i]-hitAt[i-1] <= 20 {
			short++
		}
	}
	frac := float64(short) / float64(len(hitAt)-1)
	// i.i.d. at rate 1e-3 would give P(gap<=20) ~ 2%; the bursty process
	// concentrates hits inside mean-10 bad episodes at rate 0.1.
	if frac < 0.2 {
		t.Fatalf("only %.0f%% of inter-corruption gaps <= 20 cycles; process not bursty", frac*100)
	}
}

func TestGilbertElliottNilAndValidate(t *testing.T) {
	var ge *GilbertElliott
	f := freshFlit()
	if ge.Apply(&f) || ge.Injected() != 0 {
		t.Fatal("nil GilbertElliott corrupted a flit")
	}
	if err := (BurstSpec{RateGood: -0.1, RateBad: 0, MeanGood: 10, MeanBad: 10}).Validate(); err == nil {
		t.Fatal("negative rate validated")
	}
	if err := (BurstSpec{RateGood: 0, RateBad: 0.5, MeanGood: 0.5, MeanBad: 10}).Validate(); err == nil {
		t.Fatal("sub-cycle sojourn validated")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EqualRateBurst with rate concentrating past 1 did not panic")
		}
	}()
	EqualRateBurst(0.5, 99, 1) // bad-state rate would be 50
}

// --- Schedule edge cases ---------------------------------------------

func TestScheduleDuplicateLinksKept(t *testing.T) {
	l := LinkID{Node: 2, Port: 1}
	s := NewSchedule([]Event{
		{Cycle: 10, Link: l},
		{Cycle: 10, Link: l},
	})
	// The schedule is a plain timeline: deduplication is the network's
	// job (via refcounting), so both events must survive.
	if evs := s.Pop(10); len(evs) != 2 {
		t.Fatalf("duplicate link events collapsed: %v", evs)
	}
}

func TestScheduleSameCycleFailRepairOrder(t *testing.T) {
	l := LinkID{Node: 0, Port: 0}
	s := NewSchedule([]Event{
		{Cycle: 5, Link: l, Up: false},
		{Cycle: 5, Link: l, Up: true},
		{Cycle: 5, Kind: NodeEvent, Node: 3, Up: true},
	})
	evs := s.Pop(5)
	if len(evs) != 3 {
		t.Fatalf("Pop(5) = %v", evs)
	}
	// Stable sort: same-cycle events apply in the order given, so the
	// fail-then-repair pair nets to "up".
	if evs[0].Up || !evs[1].Up {
		t.Fatalf("same-cycle order not preserved: %v", evs)
	}
	if evs[2].Kind != NodeEvent || evs[2].Node != 3 {
		t.Fatalf("node event reordered: %v", evs)
	}
}

func TestSchedulePopEmptyAndExhausted(t *testing.T) {
	empty := NewSchedule(nil)
	if evs := empty.Pop(1 << 40); len(evs) != 0 {
		t.Fatalf("empty schedule popped %v", evs)
	}
	if empty.Remaining() != 0 {
		t.Fatalf("empty Remaining = %d", empty.Remaining())
	}
	s := NewSchedule([]Event{{Cycle: 1, Link: LinkID{0, 0}}})
	s.Pop(1)
	for i := 0; i < 3; i++ {
		if evs := s.Pop(100 + int64(i)); len(evs) != 0 {
			t.Fatalf("exhausted schedule popped %v", evs)
		}
	}
	if s.Remaining() != 0 {
		t.Fatalf("exhausted Remaining = %d", s.Remaining())
	}
}

func TestScheduleEventsAccessorIsCopy(t *testing.T) {
	s := NewSchedule([]Event{{Cycle: 3, Link: LinkID{1, 1}}})
	evs := s.Events()
	evs[0].Cycle = 99
	if got := s.Events()[0].Cycle; got != 3 {
		t.Fatalf("Events() leaked internal storage: cycle %d", got)
	}
}

// --- Random timeline -------------------------------------------------

func TestRandomTimelineDeterministicAndPaired(t *testing.T) {
	cfg := TimelineConfig{
		Links:    []LinkID{{0, 0}, {0, 1}, {1, 0}, {2, 3}},
		Nodes:    []int{5, 6},
		LinkMTBF: 200, LinkMTTR: 20,
		NodeMTBF: 500, NodeMTTR: 30,
		Start: 100, Horizon: 5000, Seed: 77,
	}
	a := RandomTimeline(cfg).Events()
	b := RandomTimeline(cfg).Events()
	if len(a) == 0 {
		t.Fatal("timeline generated no events")
	}
	if len(a) != len(b) {
		t.Fatalf("same config gave %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Every failure must have a matching later repair of the same
	// entity, and failures stay inside [Start, Horizon).
	type entity struct {
		kind EventKind
		link LinkID
		node int
	}
	down := map[entity]int{}
	fails := 0
	for _, e := range a {
		k := entity{e.Kind, e.Link, e.Node}
		if e.Kind == NodeEvent {
			k.link = LinkID{}
		} else {
			k.node = 0
		}
		if e.Up {
			if down[k] == 0 {
				t.Fatalf("repair without prior failure: %v", e)
			}
			down[k]--
		} else {
			fails++
			if e.Cycle < cfg.Start || e.Cycle >= cfg.Horizon {
				t.Fatalf("failure outside [start,horizon): %v", e)
			}
			down[k]++
		}
	}
	for k, n := range down {
		if n != 0 {
			t.Fatalf("entity %v left with %d unrepaired failures", k, n)
		}
	}
	if fails == 0 {
		t.Fatal("no failures generated")
	}
}

func TestRandomTimelineSeedsDecorrelated(t *testing.T) {
	cfg := TimelineConfig{
		Links:    []LinkID{{0, 0}},
		LinkMTBF: 100, LinkMTTR: 10,
		Start: 0, Horizon: 4000, Seed: 1,
	}
	a := RandomTimeline(cfg).Events()
	cfg.Seed = 2
	b := RandomTimeline(cfg).Events()
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("adjacent seeds produced identical timelines")
	}
}

func TestRandomTimelineBadHorizonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("horizon <= start did not panic")
		}
	}()
	RandomTimeline(TimelineConfig{Start: 10, Horizon: 10})
}
