package faults

import (
	"math"
	"testing"

	"crnet/internal/flit"
)

func freshFlit() flit.Flit {
	fr := flit.Frame{Msg: flit.Message{ID: 1, Src: 0, Dst: 5, DataLen: 4}}
	return fr.FlitAt(1)
}

func TestTransientRate(t *testing.T) {
	tr := NewTransient(0.1, 1)
	const trials = 50000
	hits := 0
	for i := 0; i < trials; i++ {
		f := freshFlit()
		if tr.Apply(&f) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("corruption rate %v, want ~0.1", got)
	}
	if tr.Injected() != int64(hits) {
		t.Fatalf("Injected() = %d, want %d", tr.Injected(), hits)
	}
}

func TestTransientCorruptionIsDetectable(t *testing.T) {
	tr := NewTransient(1.0, 2)
	for i := 0; i < 1000; i++ {
		f := freshFlit()
		if !tr.Apply(&f) {
			t.Fatal("rate-1.0 process did not corrupt")
		}
		if f.Verify() {
			t.Fatal("corrupted flit still verifies")
		}
	}
}

func TestTransientZeroAndNil(t *testing.T) {
	f := freshFlit()
	var nilT *Transient
	if nilT.Apply(&f) || nilT.Injected() != 0 {
		t.Fatal("nil Transient corrupted a flit")
	}
	zero := NewTransient(0, 3)
	for i := 0; i < 100; i++ {
		if zero.Apply(&f) {
			t.Fatal("rate-0 process corrupted a flit")
		}
	}
	if !f.Verify() {
		t.Fatal("flit damaged by no-op processes")
	}
}

func TestTransientBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1.5 did not panic")
		}
	}()
	NewTransient(1.5, 1)
}

func TestScheduleOrderingAndPop(t *testing.T) {
	s := NewSchedule([]Event{
		{Cycle: 30, Link: LinkID{Node: 3, Port: 0}},
		{Cycle: 10, Link: LinkID{Node: 1, Port: 1}},
		{Cycle: 20, Link: LinkID{Node: 2, Port: 2}},
	})
	if s.Remaining() != 3 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	if evs := s.Pop(5); len(evs) != 0 {
		t.Fatalf("Pop(5) = %v", evs)
	}
	evs := s.Pop(20)
	if len(evs) != 2 || evs[0].Link.Node != 1 || evs[1].Link.Node != 2 {
		t.Fatalf("Pop(20) = %v", evs)
	}
	if evs := s.Pop(20); len(evs) != 0 {
		t.Fatalf("second Pop(20) = %v", evs)
	}
	if evs := s.Pop(100); len(evs) != 1 || evs[0].Cycle != 30 {
		t.Fatalf("Pop(100) = %v", evs)
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", s.Remaining())
	}
}

func TestNilSchedule(t *testing.T) {
	var s *Schedule
	if s.Pop(100) != nil || s.Remaining() != 0 {
		t.Fatal("nil schedule not neutral")
	}
}

func TestRandomLinksDistinct(t *testing.T) {
	var candidates []LinkID
	for n := 0; n < 16; n++ {
		for p := 0; p < 4; p++ {
			candidates = append(candidates, LinkID{Node: n, Port: p})
		}
	}
	s := RandomLinks(candidates, 8, 50, 7)
	evs := s.Pop(50)
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8", len(evs))
	}
	seen := map[LinkID]bool{}
	for _, e := range evs {
		if e.Cycle != 50 {
			t.Fatalf("event at cycle %d, want 50", e.Cycle)
		}
		if seen[e.Link] {
			t.Fatalf("duplicate dead link %v", e.Link)
		}
		seen[e.Link] = true
	}
}

func TestRandomLinksDeterministic(t *testing.T) {
	candidates := []LinkID{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}}
	a := RandomLinks(candidates, 3, 1, 42).Pop(1)
	b := RandomLinks(candidates, 3, 1, 42).Pop(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestRandomLinksTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscribed RandomLinks did not panic")
		}
	}()
	RandomLinks([]LinkID{{0, 0}}, 2, 0, 1)
}
