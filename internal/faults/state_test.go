package faults

import (
	"testing"

	"crnet/internal/flit"
	"crnet/internal/snapshot"
)

func TestScheduleCursor(t *testing.T) {
	s := NewSchedule([]Event{
		{Cycle: 10, Link: LinkID{Node: 1, Port: 0}},
		{Cycle: 20, Link: LinkID{Node: 2, Port: 1}},
		{Cycle: 30, Link: LinkID{Node: 3, Port: 2}, Up: true},
	})
	s.Pop(15)
	if got := s.Cursor(); got != 1 {
		t.Fatalf("cursor after Pop(15) = %d, want 1", got)
	}
	if err := s.SetCursor(3); err != nil {
		t.Fatal(err)
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining after SetCursor(3) = %d", s.Remaining())
	}
	if err := s.SetCursor(4); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}
	s.Rewind()
	if s.Cursor() != 0 || s.Remaining() != 3 {
		t.Fatal("Rewind did not restore the full timeline")
	}

	var nilSched *Schedule
	if nilSched.Cursor() != 0 {
		t.Fatal("nil schedule cursor != 0")
	}
	if err := nilSched.SetCursor(0); err != nil {
		t.Fatal(err)
	}
	if err := nilSched.SetCursor(1); err == nil {
		t.Fatal("nil schedule accepted a non-zero cursor")
	}
}

// corrupterStream advances a corrupter n traversals and returns the
// corruption decisions plus resulting payloads.
func corrupterStream(c Corrupter, n int) []uint64 {
	out := make([]uint64, 0, 2*n)
	for i := 0; i < n; i++ {
		f := flit.Flit{Payload: 0x1234_5678_9abc_def0}
		hit := c.Apply(&f)
		v := f.Payload
		if hit {
			v |= 1 << 63 // fold the decision in (payload bit 63 may flip too, fine for comparison)
		}
		out = append(out, v, uint64(c.Injected()))
	}
	return out
}

func TestCorrupterStateRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		make func() Corrupter
	}{
		{"transient", func() Corrupter { return NewTransient(0.2, 99) }},
		{"gilbert", func() Corrupter {
			return NewGilbertElliott(BurstSpec{RateGood: 0.01, RateBad: 0.5, MeanGood: 20, MeanBad: 5}, 99)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.make()
			corrupterStream(ref, 500) // advance past the initial state

			var e snapshot.Encoder
			ref.SaveState(&e)
			want := corrupterStream(ref, 500)

			clone := tc.make()
			d := snapshot.NewDecoder(e.Bytes())
			if err := clone.LoadState(d); err != nil {
				t.Fatal(err)
			}
			if err := d.Finish(); err != nil {
				t.Fatal(err)
			}
			got := corrupterStream(clone, 500)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("stream diverged at %d: got %#x, want %#x", i, got[i], want[i])
				}
			}
		})
	}
}
